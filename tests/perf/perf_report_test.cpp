// Golden-baseline coverage for the perf harness: the BENCH_simcore report
// schema (one code path produces it; this suite pins what it must contain),
// the regression gate (including the fail-on-2x-slowdown self-test the CI
// tier relies on), and the allocation hook.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "perf/alloc_hook.hpp"
#include "perf/baseline.hpp"
#include "perf/build_info.hpp"
#include "perf/harness.hpp"
#include "perf/simcore_bench.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

namespace perf = scalpel::perf;

/// Tiny but real run of the shared bench code path (seconds, not minutes).
Json tiny_report() {
  perf::SimcoreBenchConfig c;
  c.devices = 4;
  c.servers = 2;
  c.arrival_rate = 2.0;
  c.horizon = 6.0;
  c.warmup = 1.0;
  c.des_reps = 1;
  c.solver_reps = 1;
  return perf::run_simcore_bench(c);
}

/// Minimal structurally-valid report for gate unit tests — hand-built so a
/// 2x-slowdown candidate costs nothing to construct. `sharded_ns > 0` adds
/// the v2 sharded section (and the matching workload shard count).
Json fake_report(double ns_per_event, bool unoptimized,
                 const std::string& cpu, double sharded_ns = 0.0,
                 double solver_us = 10000.0) {
  Json build = Json::object();
  build.set("optimized", Json::boolean(!unoptimized));
  build.set("sanitized", Json::boolean(false));
  build.set("unoptimized", Json::boolean(unoptimized));
  build.set("compiler", Json::string("test"));
  build.set("cpu", Json::string(cpu));

  Json work = Json::object();
  work.set("devices", Json::number(4));
  work.set("servers", Json::number(2));
  work.set("arrival_rate", Json::number(2.0));
  work.set("horizon_seconds", Json::number(6.0));
  work.set("warmup_seconds", Json::number(1.0));
  work.set("cluster_seed", Json::number(7));
  work.set("sim_seed", Json::number(12345));
  work.set("event_queue", Json::string("calendar"));
  work.set("shards", Json::number(sharded_ns > 0.0 ? 4.0 : 0.0));
  work.set("injected_slowdown", Json::number(0.0));

  const double events = 10000.0;
  Json des = Json::object();
  des.set("reps", Json::number(1));
  des.set("events", Json::number(events));
  des.set("tasks_arrived", Json::number(2000));
  des.set("tasks_completed", Json::number(1900));
  des.set("best_seconds", Json::number(ns_per_event * events / 1e9));
  des.set("events_per_sec", Json::number(1e9 / ns_per_event));
  des.set("ns_per_event", Json::number(ns_per_event));
  des.set("alloc_hook", Json::boolean(false));
  des.set("allocs_per_event", Json::number(-1.0));

  Json solver = Json::object();
  solver.set("reps", Json::number(1));
  solver.set("best_seconds", Json::number(solver_us / 1e6));
  solver.set("us_per_solve", Json::number(solver_us));

  Json results = Json::object();
  results.set("des", std::move(des));
  results.set("solver", std::move(solver));
  if (sharded_ns > 0.0) {
    Json sharded = Json::object();
    sharded.set("shards", Json::number(4));
    sharded.set("reps", Json::number(1));
    sharded.set("events", Json::number(events));
    sharded.set("best_seconds", Json::number(sharded_ns * events / 1e9));
    sharded.set("events_per_sec", Json::number(1e9 / sharded_ns));
    sharded.set("ns_per_event", Json::number(sharded_ns));
    sharded.set("bit_identical", Json::boolean(true));
    results.set("sharded", std::move(sharded));
  }

  Json report = Json::object();
  report.set("bench", Json::string("simcore"));
  report.set("schema_version",
             Json::number(static_cast<double>(perf::kSimcoreSchemaVersion)));
  report.set("build", std::move(build));
  report.set("workload", std::move(work));
  report.set("results", std::move(results));
  return report;
}

TEST(SimcoreReport, TinyRunProducesValidSchema) {
  const Json report = tiny_report();
  // Throws on any structural problem.
  perf::validate_simcore_report(report);

  // Spot checks beyond structure: units consistent, values sane.
  const Json& des = report.at("results").at("des");
  const double events = des.at("events").as_number();
  const double best = des.at("best_seconds").as_number();
  EXPECT_GT(events, 100.0);
  EXPECT_NEAR(des.at("events_per_sec").as_number(), events / best,
              events / best * 1e-9);
  EXPECT_NEAR(des.at("ns_per_event").as_number(), best * 1e9 / events,
              1e-6);
  EXPECT_GT(report.at("results").at("solver").at("us_per_solve").as_number(),
            0.0);
  // Default config includes the sharded section; its presence means the
  // tiny run already cleared the bit-identity REQUIRE inside the bench.
  ASSERT_TRUE(report.at("results").contains("sharded"));
  EXPECT_TRUE(
      report.at("results").at("sharded").at("bit_identical").as_bool());
  // A report must always say which build produced it.
  EXPECT_EQ(report.at("build").at("unoptimized").as_bool(),
            !perf::timing_trustworthy());
  // Round-trips through the JSON layer (what ci.sh perf does).
  perf::validate_simcore_report(Json::parse(report.dump()));
}

TEST(SimcoreReport, CommittedBaselineParsesAndValidates) {
  // The checked-in scoreboard must stay loadable by the gate tooling. Skip
  // gracefully when the test runs outside the repo tree.
  // ctest runs this from <build>/tests; direct runs from the repo root or
  // the build dir also work.
  std::ifstream in("BENCH_simcore.json");
  if (!in) in.open("../BENCH_simcore.json");
  if (!in) in.open("../../BENCH_simcore.json");
  if (!in) GTEST_SKIP() << "BENCH_simcore.json not found from cwd";
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json baseline = Json::parse(buf.str());
  perf::validate_simcore_report(baseline);
  EXPECT_FALSE(baseline.at("build").at("unoptimized").as_bool())
      << "the committed baseline must come from an optimized build";
  // The tracked scoreboard must cover the sharded engine and the
  // metro-scale sweep (EXPERIMENTS.md, "P2 metro-scale sharding"): a
  // re-baseline that forgets --shards or --sweep fails here, not later.
  EXPECT_TRUE(baseline.at("results").contains("sharded"));
  ASSERT_TRUE(baseline.at("results").contains("metro_sweep"));
  const Json& sweep = baseline.at("results").at("metro_sweep");
  double max_devices = 0.0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    max_devices =
        std::max(max_devices, sweep.at(i).at("devices").as_number());
  }
  EXPECT_GE(max_devices, 1e6)
      << "the baseline sweep must reach the million-device point";
}

TEST(SimcoreReport, ValidateRejectsBrokenDocuments) {
  EXPECT_THROW(perf::validate_simcore_report(Json::object()),
               ContractViolation);
  // Wrong bench id.
  Json wrong = fake_report(100.0, false, "cpu");
  wrong.set("bench", Json::string("other"));
  EXPECT_THROW(perf::validate_simcore_report(wrong), ContractViolation);
  // Wrong schema version.
  Json old = fake_report(100.0, false, "cpu");
  old.set("schema_version", Json::number(0));
  EXPECT_THROW(perf::validate_simcore_report(old), ContractViolation);
  // Non-positive metric. (Truly non-finite values cannot even be built:
  // the Json layer rejects NaN/inf at construction.)
  EXPECT_THROW(Json::number(std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
  Json neg = fake_report(-5.0, false, "cpu");
  EXPECT_THROW(perf::validate_simcore_report(neg), ContractViolation);
}

TEST(RegressionGate, PassesWithinTolerance) {
  const Json base = fake_report(100.0, false, "cpu-a");
  const auto r =
      perf::check_regression(base, fake_report(110.0, false, "cpu-a"), 0.15);
  EXPECT_TRUE(r.passed);
  EXPECT_FALSE(r.skipped);
  EXPECT_NEAR(r.ratio, 1.10, 1e-12);
}

TEST(RegressionGate, FailsOnTwoTimesSlowdown) {
  // The CI self-test scenario: a 2x-slower candidate must fail a 15% gate.
  const Json base = fake_report(100.0, false, "cpu-a");
  const auto r =
      perf::check_regression(base, fake_report(200.0, false, "cpu-a"), 0.15);
  EXPECT_FALSE(r.passed);
  EXPECT_FALSE(r.skipped);
  EXPECT_NEAR(r.ratio, 2.0, 1e-12);
  EXPECT_NE(r.message.find("FAIL"), std::string::npos);
}

TEST(RegressionGate, FailsJustPastTolerance) {
  const Json base = fake_report(100.0, false, "cpu-a");
  EXPECT_FALSE(
      perf::check_regression(base, fake_report(116.0, false, "cpu-a"), 0.15)
          .passed);
  EXPECT_TRUE(
      perf::check_regression(base, fake_report(114.9, false, "cpu-a"), 0.15)
          .passed);
}

TEST(RegressionGate, GatesShardedSectionWhenBothSidesHaveIt) {
  // Classic loop steady, sharded loop 2x slower: the gate must fail — a
  // regression confined to the sharded engine is still a regression.
  const Json base = fake_report(100.0, false, "cpu-a", 80.0);
  const auto bad =
      perf::check_regression(base, fake_report(100.0, false, "cpu-a", 160.0),
                             0.15);
  EXPECT_FALSE(bad.passed);
  EXPECT_NEAR(bad.ratio_sharded, 2.0, 1e-12);
  EXPECT_NE(bad.message.find("sharded"), std::string::npos);

  const auto good =
      perf::check_regression(base, fake_report(100.0, false, "cpu-a", 85.0),
                             0.15);
  EXPECT_TRUE(good.passed);

  // A candidate without the section is compared on the classic loop only.
  const auto classic_only =
      perf::check_regression(base, fake_report(100.0, false, "cpu-a"), 0.15);
  EXPECT_TRUE(classic_only.passed);
  EXPECT_EQ(classic_only.ratio_sharded, 0.0);
}

TEST(RegressionGate, GatesSolverTiming) {
  // The solver section is mandatory, so it always gates: a joint-optimizer
  // slowdown with a steady DES loop must still fail.
  const Json base = fake_report(100.0, false, "cpu-a");
  const auto bad = perf::check_regression(
      base, fake_report(100.0, false, "cpu-a", 0.0, 20000.0), 0.15);
  EXPECT_FALSE(bad.passed);
  EXPECT_NEAR(bad.ratio_solver, 2.0, 1e-12);
  EXPECT_NE(bad.message.find("solver"), std::string::npos);

  const auto good = perf::check_regression(
      base, fake_report(100.0, false, "cpu-a", 0.0, 10500.0), 0.15);
  EXPECT_TRUE(good.passed);
  EXPECT_NEAR(good.ratio_solver, 1.05, 1e-12);
}

TEST(SimcoreReport, ValidatorEnforcesShardedContract) {
  // Section present iff the workload declares shards.
  Json missing = fake_report(100.0, false, "cpu");
  Json work = missing.at("workload");
  work.set("shards", Json::number(4));
  missing.set("workload", std::move(work));
  EXPECT_THROW(perf::validate_simcore_report(missing), ContractViolation);

  // A sharded timing whose run was NOT bit-identical is unpublishable.
  Json lying = fake_report(100.0, false, "cpu", 80.0);
  Json results = lying.at("results");
  Json sharded = results.at("sharded");
  sharded.set("bit_identical", Json::boolean(false));
  results.set("sharded", std::move(sharded));
  lying.set("results", std::move(results));
  EXPECT_THROW(perf::validate_simcore_report(lying), ContractViolation);
}

TEST(RegressionGate, SkipsUnoptimizedCandidates) {
  // Debug/sanitizer numbers must neither fail nor pass the scoreboard on
  // their merits — the gate steps aside loudly.
  const Json base = fake_report(100.0, false, "cpu-a");
  const auto r =
      perf::check_regression(base, fake_report(5000.0, true, "cpu-a"), 0.15);
  EXPECT_TRUE(r.passed);
  EXPECT_TRUE(r.skipped);
  EXPECT_NE(r.message.find("SKIPPED"), std::string::npos);
}

TEST(RegressionGate, WarnsOnCpuMismatch) {
  const Json base = fake_report(100.0, false, "cpu-a");
  const auto r =
      perf::check_regression(base, fake_report(100.0, false, "cpu-b"), 0.15);
  EXPECT_TRUE(r.passed);  // hardware drift warns, never fails by itself
  EXPECT_NE(r.message.find("differs"), std::string::npos);
}

TEST(AllocHook, CountsAllocationsInThisBinary) {
  // This test binary links scalpel_alloc_hook, so counting must be live.
  ASSERT_TRUE(perf::alloc_hook_linked());
  const std::uint64_t before = perf::alloc_count();
  std::vector<std::unique_ptr<int>> keep;
  for (int i = 0; i < 100; ++i) keep.push_back(std::make_unique<int>(i));
  const std::uint64_t after = perf::alloc_count();
  EXPECT_GE(after - before, 100u);
}

TEST(AllocHook, ReportIncludesAllocsPerEvent) {
  const Json report = tiny_report();
  const Json& des = report.at("results").at("des");
  ASSERT_TRUE(des.at("alloc_hook").as_bool());
  const double ape = des.at("allocs_per_event").as_number();
  EXPECT_TRUE(std::isfinite(ape));
  EXPECT_GE(ape, 0.0);
  // The whole point of the pooled inner loop: steady state well under one
  // allocation per event (warm-start growth amortizes to noise).
  EXPECT_LT(ape, 1.0);
}

TEST(Harness, MinOfRepsIsMinimum) {
  int calls = 0;
  const auto t = perf::time_best_of(5, 2, [&] { ++calls; });
  EXPECT_EQ(calls, 7);  // 2 warmup + 5 timed
  EXPECT_EQ(t.reps, 5u);
  EXPECT_GE(t.mean_seconds, t.best_seconds);
  EXPECT_THROW(perf::time_best_of(0, 0, [] {}), ContractViolation);
}

TEST(BuildInfo, ReportsThisCompiler) {
  const auto b = perf::build_info();
  EXPECT_FALSE(b.compiler.empty());
#ifdef NDEBUG
  EXPECT_TRUE(b.optimized);
#else
  EXPECT_FALSE(b.optimized);
#endif
}

}  // namespace
}  // namespace scalpel
