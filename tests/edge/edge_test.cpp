#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "edge/builders.hpp"
#include "edge/cluster.hpp"
#include "edge/dynamics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

TEST(Cluster, SmallLabIsValid) {
  const auto t = clusters::small_lab();
  t.validate();
  EXPECT_EQ(t.devices().size(), 4u);
  EXPECT_EQ(t.servers().size(), 2u);
  EXPECT_EQ(t.cells().size(), 1u);
}

TEST(Cluster, IdsAssignedSequentially) {
  const auto t = clusters::small_lab();
  for (std::size_t i = 0; i < t.devices().size(); ++i) {
    EXPECT_EQ(t.devices()[i].id, static_cast<DeviceId>(i));
  }
  for (std::size_t i = 0; i < t.servers().size(); ++i) {
    EXPECT_EQ(t.servers()[i].id, static_cast<ServerId>(i));
  }
}

TEST(Cluster, DevicesInCell) {
  const auto t = clusters::small_lab();
  const auto members = t.devices_in_cell(0);
  EXPECT_EQ(members.size(), 4u);
}

TEST(Cluster, PathRttComposesCellAndBackhaul) {
  const auto t = clusters::small_lab();
  const double rtt = t.path_rtt(0, 1);
  EXPECT_NEAR(rtt, t.cell(0).rtt + t.server(1).backhaul_rtt, 1e-12);
}

TEST(Cluster, AccessorsBoundsChecked) {
  const auto t = clusters::small_lab();
  EXPECT_THROW(t.device(99), ContractViolation);
  EXPECT_THROW(t.server(-1), ContractViolation);
  EXPECT_THROW(t.cell(5), ContractViolation);
}

TEST(Cluster, ValidateCatchesProblems) {
  ClusterTopology t;
  EXPECT_THROW(t.validate(), ContractViolation);  // empty
  t.add_cell(Cell{-1, "c", mbps(10.0), 0.001});
  Device d;
  d.name = "d";
  d.compute = profiles::smartphone();
  d.cell = 7;  // dangling cell reference
  d.model = "vgg16";
  t.add_device(d);
  EdgeServer s;
  s.name = "s";
  s.compute = profiles::edge_cpu();
  t.add_server(s);
  EXPECT_THROW(t.validate(), ContractViolation);
}

TEST(Cluster, SetCellBandwidth) {
  auto t = clusters::small_lab();
  t.set_cell_bandwidth(0, mbps(200.0));
  EXPECT_DOUBLE_EQ(t.cell(0).bandwidth, mbps(200.0));
  EXPECT_THROW(t.set_cell_bandwidth(0, 0.0), ContractViolation);
  EXPECT_THROW(t.set_cell_bandwidth(9, mbps(1.0)), ContractViolation);
}

TEST(Campus, DeterministicForSeed) {
  clusters::CampusOptions opts;
  opts.seed = 99;
  const auto a = clusters::campus(opts);
  const auto b = clusters::campus(opts);
  ASSERT_EQ(a.devices().size(), b.devices().size());
  for (std::size_t i = 0; i < a.devices().size(); ++i) {
    EXPECT_EQ(a.devices()[i].model, b.devices()[i].model);
    EXPECT_DOUBLE_EQ(a.devices()[i].arrival_rate,
                     b.devices()[i].arrival_rate);
    EXPECT_DOUBLE_EQ(a.devices()[i].compute.peak_flops,
                     b.devices()[i].compute.peak_flops);
  }
  for (std::size_t j = 0; j < a.servers().size(); ++j) {
    EXPECT_DOUBLE_EQ(a.servers()[j].compute.peak_flops,
                     b.servers()[j].compute.peak_flops);
  }
}

TEST(Campus, HonorsSizes) {
  clusters::CampusOptions opts;
  opts.num_devices = 17;
  opts.num_servers = 3;
  opts.devices_per_cell = 5;
  const auto t = clusters::campus(opts);
  EXPECT_EQ(t.devices().size(), 17u);
  EXPECT_EQ(t.servers().size(), 3u);
  EXPECT_EQ(t.cells().size(), 4u);  // ceil(17/5)
  t.validate();
}

TEST(Campus, HeterogeneityKnobSpreadsServerSpeeds) {
  clusters::CampusOptions homo;
  homo.server_speed_cov = 0.0;
  homo.num_servers = 8;
  const auto th = clusters::campus(homo);
  double min_s = 1e30;
  double max_s = 0.0;
  for (const auto& s : th.servers()) {
    min_s = std::min(min_s, s.compute.peak_flops);
    max_s = std::max(max_s, s.compute.peak_flops);
  }
  EXPECT_NEAR(max_s / min_s, 1.0, 1e-9);

  clusters::CampusOptions hetero = homo;
  hetero.server_speed_cov = 1.0;
  const auto tt = clusters::campus(hetero);
  min_s = 1e30;
  max_s = 0.0;
  for (const auto& s : tt.servers()) {
    min_s = std::min(min_s, s.compute.peak_flops);
    max_s = std::max(max_s, s.compute.peak_flops);
  }
  EXPECT_GT(max_s / min_s, 1.5);
}

TEST(Campus, ModelsComeFromZoo) {
  const auto t = clusters::campus({});
  const std::set<std::string> allowed = {"mobilenet_v1", "resnet18", "alexnet",
                                         "vgg16", "tiny_yolo"};
  for (const auto& d : t.devices()) {
    EXPECT_TRUE(allowed.count(d.model)) << d.model;
  }
}

TEST(BandwidthTrace, ConstantTrace) {
  const auto tr = BandwidthTrace::constant(mbps(42.0));
  EXPECT_DOUBLE_EQ(tr.at(0.0), mbps(42.0));
  EXPECT_DOUBLE_EQ(tr.at(1e6), mbps(42.0));
  EXPECT_DOUBLE_EQ(tr.mean(100.0), mbps(42.0));
}

TEST(BandwidthTrace, LookupPicksActiveSegment) {
  BandwidthTrace tr({{0.0, 10.0}, {5.0, 20.0}, {9.0, 5.0}});
  EXPECT_DOUBLE_EQ(tr.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(tr.at(4.999), 10.0);
  EXPECT_DOUBLE_EQ(tr.at(5.0), 20.0);
  EXPECT_DOUBLE_EQ(tr.at(8.0), 20.0);
  EXPECT_DOUBLE_EQ(tr.at(100.0), 5.0);
}

TEST(BandwidthTrace, MeanIntegratesSegments) {
  BandwidthTrace tr({{0.0, 10.0}, {5.0, 20.0}});
  EXPECT_NEAR(tr.mean(10.0), 15.0, 1e-12);
  EXPECT_NEAR(tr.mean(5.0), 10.0, 1e-12);
}

TEST(BandwidthTrace, ValidatesSegments) {
  EXPECT_THROW(BandwidthTrace({}), ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, 0.0}}), ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, 1.0}, {0.0, 2.0}}), ContractViolation);
  BandwidthTrace ok({{1.0, 5.0}});
  EXPECT_THROW(ok.at(0.5), ContractViolation);
}

TEST(BandwidthTrace, RandomWalkStaysInRange) {
  Rng rng(3);
  const double base = mbps(50.0);
  const auto tr = BandwidthTrace::random_walk(base, 1.0, 0.5, 4.0, 120.0, rng);
  for (const auto& seg : tr.segments()) {
    EXPECT_GE(seg.bandwidth, base / 4.0 - 1e-9);
    EXPECT_LE(seg.bandwidth, base * 4.0 + 1e-9);
  }
  EXPECT_GE(tr.segments().size(), 100u);
}

TEST(BandwidthTrace, GilbertAlternatesStates) {
  Rng rng(4);
  const auto tr =
      BandwidthTrace::gilbert(mbps(100.0), mbps(10.0), 5.0, 2.0, 200.0, rng);
  ASSERT_GE(tr.segments().size(), 4u);
  for (std::size_t i = 1; i < tr.segments().size(); ++i) {
    EXPECT_NE(tr.segments()[i].bandwidth, tr.segments()[i - 1].bandwidth);
  }
  // Time-weighted mean sits strictly between the two states, nearer good.
  const double mean = tr.mean(200.0);
  EXPECT_GT(mean, mbps(10.0));
  EXPECT_LT(mean, mbps(100.0));
}

TEST(FaultSchedule, EventsSortedByTime) {
  FaultSchedule s({{10.0, FaultTarget::Server, 1, false},
                   {2.0, FaultTarget::Link, 0, false},
                   {5.0, FaultTarget::Server, 0, false}});
  ASSERT_EQ(s.events().size(), 3u);
  EXPECT_DOUBLE_EQ(s.events()[0].time, 2.0);
  EXPECT_DOUBLE_EQ(s.events()[1].time, 5.0);
  EXPECT_DOUBLE_EQ(s.events()[2].time, 10.0);
}

TEST(FaultSchedule, LivenessQueries) {
  const auto s = FaultSchedule::server_crash(0, 10.0, 20.0);
  EXPECT_TRUE(s.server_up(0, 0.0));
  EXPECT_TRUE(s.server_up(0, 9.999));
  EXPECT_FALSE(s.server_up(0, 10.0));  // events at exactly t applied
  EXPECT_FALSE(s.server_up(0, 19.999));
  EXPECT_TRUE(s.server_up(0, 20.0));
  // Untouched targets are always up.
  EXPECT_TRUE(s.server_up(1, 15.0));
  EXPECT_TRUE(s.link_up(0, 15.0));
}

TEST(FaultSchedule, AvailabilityIntegratesDowntime) {
  const auto s = FaultSchedule::server_crash(0, 10.0, 20.0);
  EXPECT_NEAR(s.server_availability(0, 100.0), 0.9, 1e-12);
  EXPECT_NEAR(s.server_availability(1, 100.0), 1.0, 1e-12);
  // Downtime clipped at the horizon.
  EXPECT_NEAR(s.server_availability(0, 15.0), 10.0 / 15.0, 1e-12);
  // Permanent crash: down from 10 forever.
  const auto perm = FaultSchedule::server_crash(
      0, 10.0, std::numeric_limits<double>::infinity());
  EXPECT_EQ(perm.events().size(), 1u);
  EXPECT_NEAR(perm.server_availability(0, 40.0), 0.25, 1e-12);
}

TEST(FaultSchedule, ZeroDurationOutageIsInvisibleToAvailability) {
  const auto s = FaultSchedule::link_outage(0, 5.0, 5.0);
  EXPECT_NEAR(s.link_availability(0, 10.0), 1.0, 1e-12);
  // The momentary down state is still observable at the instant itself.
  EXPECT_EQ(s.events().size(), 2u);
}

TEST(FaultSchedule, MergedCombinesScripts) {
  const auto s = FaultSchedule::server_crash(0, 10.0, 20.0)
                     .merged(FaultSchedule::link_outage(0, 5.0, 8.0));
  EXPECT_EQ(s.events().size(), 4u);
  EXPECT_FALSE(s.link_up(0, 6.0));
  EXPECT_FALSE(s.server_up(0, 12.0));
  EXPECT_TRUE(s.server_up(0, 6.0));
}

TEST(FaultSchedule, ExponentialServersDeterministicPerSeed) {
  Rng rng(11);
  const auto a = FaultSchedule::exponential_servers(3, 20.0, 5.0, 200.0, rng);
  // Substream derivation keys off the construction seed, not draw history:
  // a used rng must produce the same script.
  Rng used(11);
  used.next_u64();
  used.uniform();
  const auto b =
      FaultSchedule::exponential_servers(3, 20.0, 5.0, 200.0, used);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].up, b.events()[i].up);
  }
  EXPECT_GT(a.events().size(), 0u);
  for (const auto& ev : a.events()) {
    EXPECT_LT(ev.time, 200.0);
    EXPECT_EQ(ev.target, FaultTarget::Server);
    EXPECT_GE(ev.id, 0);
    EXPECT_LT(ev.id, 3);
  }
  // Per-server events alternate down/up starting with a crash.
  for (std::int32_t s = 0; s < 3; ++s) {
    bool expect_up = false;
    for (const auto& ev : a.events()) {
      if (ev.id != s) continue;
      EXPECT_EQ(ev.up, expect_up);
      expect_up = !expect_up;
    }
  }
}

TEST(FaultSchedule, Validates) {
  EXPECT_THROW(FaultSchedule({{-1.0, FaultTarget::Server, 0, false}}),
               ContractViolation);
  EXPECT_THROW(FaultSchedule({{1.0, FaultTarget::Server, -2, false}}),
               ContractViolation);
  EXPECT_THROW(FaultSchedule::server_crash(0, 10.0, 5.0), ContractViolation);
  Rng rng(1);
  EXPECT_THROW(FaultSchedule::exponential_servers(2, 0.0, 1.0, 10.0, rng),
               ContractViolation);
  EXPECT_TRUE(FaultSchedule().empty());
}

TEST(TelemetryChannelTest, PassThroughDeliversTruthFresh) {
  EXPECT_TRUE(TelemetryChannelOptions{}.pass_through());
  TelemetryChannel ch(TelemetryChannelOptions{}, {mbps(40.0)}, 2, 7);
  std::vector<double> bw = {mbps(25.0)};
  std::vector<bool> alive = {true, false};
  std::vector<bool> bw_fresh, alive_fresh;
  std::vector<double> bw_age;
  ch.sample(1.0, bw, alive, bw_fresh, bw_age, alive_fresh);
  EXPECT_DOUBLE_EQ(bw[0], mbps(25.0));
  EXPECT_TRUE(alive[0]);
  EXPECT_FALSE(alive[1]);
  EXPECT_TRUE(bw_fresh[0]);
  EXPECT_DOUBLE_EQ(bw_age[0], 0.0);
  EXPECT_TRUE(alive_fresh[0]);
}

TEST(TelemetryChannelTest, DeterministicForSeed) {
  TelemetryChannelOptions opts;
  opts.drop_prob = 0.3;
  opts.noise_sigma = 0.2;
  opts.flip_prob = 0.1;
  EXPECT_FALSE(opts.pass_through());
  TelemetryChannel a(opts, {mbps(40.0), mbps(20.0)}, 2, 99);
  TelemetryChannel b(opts, {mbps(40.0), mbps(20.0)}, 2, 99);
  for (int t = 1; t <= 32; ++t) {
    std::vector<double> bw_a = {mbps(40.0), mbps(20.0)};
    std::vector<double> bw_b = bw_a;
    std::vector<bool> alive_a = {true, t % 3 != 0};
    std::vector<bool> alive_b = alive_a;
    std::vector<bool> fa, fb, la, lb;
    std::vector<double> aa, ab;
    a.sample(t, bw_a, alive_a, fa, aa, la);
    b.sample(t, bw_b, alive_b, fb, ab, lb);
    EXPECT_EQ(bw_a, bw_b);
    EXPECT_EQ(alive_a, alive_b);
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(aa, ab);
    EXPECT_EQ(la, lb);
  }
}

TEST(TelemetryChannelTest, DelayServesTheOldWorld) {
  TelemetryChannelOptions opts;
  opts.delay = 5.0;
  TelemetryChannel ch(opts, {100.0}, 0, 1);
  std::vector<bool> alive, fresh, alive_fresh;
  std::vector<double> age;

  // The world changes to 999 at t=3, but nothing that new can be delivered
  // until the 5s propagation delay elapses.
  std::vector<double> bw = {999.0};
  ch.sample(3.0, bw, alive, fresh, age, alive_fresh);
  EXPECT_DOUBLE_EQ(bw[0], 100.0) << "initial value still in flight";
  EXPECT_DOUBLE_EQ(age[0], 3.0);
  EXPECT_TRUE(fresh[0]) << "delay ages readings; it does not drop them";

  bw = {999.0};
  ch.sample(6.0, bw, alive, fresh, age, alive_fresh);
  EXPECT_DOUBLE_EQ(bw[0], 100.0) << "t=3 sample not yet deliverable at t=6";

  bw = {999.0};
  ch.sample(9.0, bw, alive, fresh, age, alive_fresh);
  EXPECT_DOUBLE_EQ(bw[0], 999.0) << "t=3 sample delivered after the delay";
  EXPECT_DOUBLE_EQ(age[0], 6.0);
}

TEST(TelemetryChannelTest, DropsRepeatLastDeliveryAndAge) {
  TelemetryChannelOptions opts;
  opts.drop_prob = 0.5;
  TelemetryChannel ch(opts, {100.0}, 1, 3);
  std::vector<bool> alive = {true};
  std::vector<bool> fresh, alive_fresh;
  std::vector<double> age;
  bool saw_drop = false;
  double last_delivered = 100.0;
  for (int t = 1; t <= 64 && !saw_drop; ++t) {
    std::vector<double> bw = {100.0 + t};
    ch.sample(t, bw, alive, fresh, age, alive_fresh);
    if (fresh[0]) {
      last_delivered = bw[0];
      EXPECT_DOUBLE_EQ(age[0], 0.0);
    } else {
      saw_drop = true;
      EXPECT_DOUBLE_EQ(bw[0], last_delivered)
          << "a dropped report repeats the previous delivery";
      EXPECT_GT(age[0], 0.0) << "and the repeat is visibly aged";
    }
  }
  EXPECT_TRUE(saw_drop) << "p=0.5 over 64 ticks must drop at least once";
}

TEST(TelemetryChannelTest, QuantizationSnapsToGrid) {
  TelemetryChannelOptions opts;
  opts.quantum = 64.0;
  TelemetryChannel ch(opts, {100.0}, 0, 5);
  std::vector<bool> alive, fresh, alive_fresh;
  std::vector<double> age;
  std::vector<double> bw = {100.0};
  ch.sample(1.0, bw, alive, fresh, age, alive_fresh);
  EXPECT_DOUBLE_EQ(bw[0], 128.0) << "100 rounds to the nearest 64 multiple";
  bw = {10.0};
  ch.sample(2.0, bw, alive, fresh, age, alive_fresh);
  EXPECT_DOUBLE_EQ(bw[0], 64.0) << "quantization floors at one quantum";
}

TEST(TelemetryChannelTest, ValidatesOptionsAndArity) {
  TelemetryChannelOptions bad;
  bad.drop_prob = 1.0;
  EXPECT_THROW(TelemetryChannel(bad, {1.0}, 1, 1), ContractViolation);
  bad = TelemetryChannelOptions{};
  bad.delay = -1.0;
  EXPECT_THROW(TelemetryChannel(bad, {1.0}, 1, 1), ContractViolation);

  TelemetryChannel ch(TelemetryChannelOptions{}, {1.0}, 1, 1);
  std::vector<double> bw = {1.0, 2.0};  // two cells, channel built with one
  std::vector<bool> alive = {true};
  std::vector<bool> fresh, alive_fresh;
  std::vector<double> age;
  EXPECT_THROW(ch.sample(1.0, bw, alive, fresh, age, alive_fresh),
               ContractViolation);
}

}  // namespace
}  // namespace scalpel
