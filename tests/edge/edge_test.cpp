#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "edge/builders.hpp"
#include "edge/cluster.hpp"
#include "edge/dynamics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

TEST(Cluster, SmallLabIsValid) {
  const auto t = clusters::small_lab();
  t.validate();
  EXPECT_EQ(t.devices().size(), 4u);
  EXPECT_EQ(t.servers().size(), 2u);
  EXPECT_EQ(t.cells().size(), 1u);
}

TEST(Cluster, IdsAssignedSequentially) {
  const auto t = clusters::small_lab();
  for (std::size_t i = 0; i < t.devices().size(); ++i) {
    EXPECT_EQ(t.devices()[i].id, static_cast<DeviceId>(i));
  }
  for (std::size_t i = 0; i < t.servers().size(); ++i) {
    EXPECT_EQ(t.servers()[i].id, static_cast<ServerId>(i));
  }
}

TEST(Cluster, DevicesInCell) {
  const auto t = clusters::small_lab();
  const auto members = t.devices_in_cell(0);
  EXPECT_EQ(members.size(), 4u);
}

TEST(Cluster, PathRttComposesCellAndBackhaul) {
  const auto t = clusters::small_lab();
  const double rtt = t.path_rtt(0, 1);
  EXPECT_NEAR(rtt, t.cell(0).rtt + t.server(1).backhaul_rtt, 1e-12);
}

TEST(Cluster, AccessorsBoundsChecked) {
  const auto t = clusters::small_lab();
  EXPECT_THROW(t.device(99), ContractViolation);
  EXPECT_THROW(t.server(-1), ContractViolation);
  EXPECT_THROW(t.cell(5), ContractViolation);
}

TEST(Cluster, ValidateCatchesProblems) {
  ClusterTopology t;
  EXPECT_THROW(t.validate(), ContractViolation);  // empty
  t.add_cell(Cell{-1, "c", mbps(10.0), 0.001});
  Device d;
  d.name = "d";
  d.compute = profiles::smartphone();
  d.cell = 7;  // dangling cell reference
  d.model = "vgg16";
  t.add_device(d);
  EdgeServer s;
  s.name = "s";
  s.compute = profiles::edge_cpu();
  t.add_server(s);
  EXPECT_THROW(t.validate(), ContractViolation);
}

TEST(Cluster, SetCellBandwidth) {
  auto t = clusters::small_lab();
  t.set_cell_bandwidth(0, mbps(200.0));
  EXPECT_DOUBLE_EQ(t.cell(0).bandwidth, mbps(200.0));
  EXPECT_THROW(t.set_cell_bandwidth(0, 0.0), ContractViolation);
  EXPECT_THROW(t.set_cell_bandwidth(9, mbps(1.0)), ContractViolation);
}

TEST(Campus, DeterministicForSeed) {
  clusters::CampusOptions opts;
  opts.seed = 99;
  const auto a = clusters::campus(opts);
  const auto b = clusters::campus(opts);
  ASSERT_EQ(a.devices().size(), b.devices().size());
  for (std::size_t i = 0; i < a.devices().size(); ++i) {
    EXPECT_EQ(a.devices()[i].model, b.devices()[i].model);
    EXPECT_DOUBLE_EQ(a.devices()[i].arrival_rate,
                     b.devices()[i].arrival_rate);
    EXPECT_DOUBLE_EQ(a.devices()[i].compute.peak_flops,
                     b.devices()[i].compute.peak_flops);
  }
  for (std::size_t j = 0; j < a.servers().size(); ++j) {
    EXPECT_DOUBLE_EQ(a.servers()[j].compute.peak_flops,
                     b.servers()[j].compute.peak_flops);
  }
}

TEST(Campus, HonorsSizes) {
  clusters::CampusOptions opts;
  opts.num_devices = 17;
  opts.num_servers = 3;
  opts.devices_per_cell = 5;
  const auto t = clusters::campus(opts);
  EXPECT_EQ(t.devices().size(), 17u);
  EXPECT_EQ(t.servers().size(), 3u);
  EXPECT_EQ(t.cells().size(), 4u);  // ceil(17/5)
  t.validate();
}

TEST(Campus, HeterogeneityKnobSpreadsServerSpeeds) {
  clusters::CampusOptions homo;
  homo.server_speed_cov = 0.0;
  homo.num_servers = 8;
  const auto th = clusters::campus(homo);
  double min_s = 1e30;
  double max_s = 0.0;
  for (const auto& s : th.servers()) {
    min_s = std::min(min_s, s.compute.peak_flops);
    max_s = std::max(max_s, s.compute.peak_flops);
  }
  EXPECT_NEAR(max_s / min_s, 1.0, 1e-9);

  clusters::CampusOptions hetero = homo;
  hetero.server_speed_cov = 1.0;
  const auto tt = clusters::campus(hetero);
  min_s = 1e30;
  max_s = 0.0;
  for (const auto& s : tt.servers()) {
    min_s = std::min(min_s, s.compute.peak_flops);
    max_s = std::max(max_s, s.compute.peak_flops);
  }
  EXPECT_GT(max_s / min_s, 1.5);
}

TEST(Campus, ModelsComeFromZoo) {
  const auto t = clusters::campus({});
  const std::set<std::string> allowed = {"mobilenet_v1", "resnet18", "alexnet",
                                         "vgg16", "tiny_yolo"};
  for (const auto& d : t.devices()) {
    EXPECT_TRUE(allowed.count(d.model)) << d.model;
  }
}

TEST(BandwidthTrace, ConstantTrace) {
  const auto tr = BandwidthTrace::constant(mbps(42.0));
  EXPECT_DOUBLE_EQ(tr.at(0.0), mbps(42.0));
  EXPECT_DOUBLE_EQ(tr.at(1e6), mbps(42.0));
  EXPECT_DOUBLE_EQ(tr.mean(100.0), mbps(42.0));
}

TEST(BandwidthTrace, LookupPicksActiveSegment) {
  BandwidthTrace tr({{0.0, 10.0}, {5.0, 20.0}, {9.0, 5.0}});
  EXPECT_DOUBLE_EQ(tr.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(tr.at(4.999), 10.0);
  EXPECT_DOUBLE_EQ(tr.at(5.0), 20.0);
  EXPECT_DOUBLE_EQ(tr.at(8.0), 20.0);
  EXPECT_DOUBLE_EQ(tr.at(100.0), 5.0);
}

TEST(BandwidthTrace, MeanIntegratesSegments) {
  BandwidthTrace tr({{0.0, 10.0}, {5.0, 20.0}});
  EXPECT_NEAR(tr.mean(10.0), 15.0, 1e-12);
  EXPECT_NEAR(tr.mean(5.0), 10.0, 1e-12);
}

TEST(BandwidthTrace, ValidatesSegments) {
  EXPECT_THROW(BandwidthTrace({}), ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, 0.0}}), ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, 1.0}, {0.0, 2.0}}), ContractViolation);
  BandwidthTrace ok({{1.0, 5.0}});
  EXPECT_THROW(ok.at(0.5), ContractViolation);
}

TEST(BandwidthTrace, RandomWalkStaysInRange) {
  Rng rng(3);
  const double base = mbps(50.0);
  const auto tr = BandwidthTrace::random_walk(base, 1.0, 0.5, 4.0, 120.0, rng);
  for (const auto& seg : tr.segments()) {
    EXPECT_GE(seg.bandwidth, base / 4.0 - 1e-9);
    EXPECT_LE(seg.bandwidth, base * 4.0 + 1e-9);
  }
  EXPECT_GE(tr.segments().size(), 100u);
}

TEST(BandwidthTrace, GilbertAlternatesStates) {
  Rng rng(4);
  const auto tr =
      BandwidthTrace::gilbert(mbps(100.0), mbps(10.0), 5.0, 2.0, 200.0, rng);
  ASSERT_GE(tr.segments().size(), 4u);
  for (std::size_t i = 1; i < tr.segments().size(); ++i) {
    EXPECT_NE(tr.segments()[i].bandwidth, tr.segments()[i - 1].bandwidth);
  }
  // Time-weighted mean sits strictly between the two states, nearer good.
  const double mean = tr.mean(200.0);
  EXPECT_GT(mean, mbps(10.0));
  EXPECT_LT(mean, mbps(100.0));
}

}  // namespace
}  // namespace scalpel
