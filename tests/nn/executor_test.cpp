#include "nn/executor.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scalpel {
namespace {

Tensor test_input(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(g.node(0).out_shape, rng, 0.5f);
}

TEST(Executor, DeterministicAcrossInstances) {
  const auto g = models::tiny_cnn();
  const Executor a(g, 42);
  const Executor b(g, 42);
  const auto in = test_input(g, 1);
  EXPECT_EQ(max_abs_diff(a.run(in), b.run(in)), 0.0);
}

TEST(Executor, DifferentSeedsDiffer) {
  const auto g = models::tiny_cnn();
  const Executor a(g, 42);
  const Executor b(g, 43);
  const auto in = test_input(g, 1);
  EXPECT_GT(max_abs_diff(a.run(in), b.run(in)), 0.0);
}

TEST(Executor, SoftmaxOutputIsDistribution) {
  const auto g = models::tiny_cnn();
  const Executor ex(g, 7);
  const auto out = ex.run(test_input(g, 2));
  EXPECT_EQ(out.shape(), (Shape{10}));
  EXPECT_NEAR(out.sum(), 1.0, 1e-5);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    ASSERT_GE(out.at(i), 0.0f);
  }
}

TEST(Executor, RejectsWrongInputShape) {
  const auto g = models::tiny_cnn();
  const Executor ex(g, 7);
  EXPECT_THROW(ex.run(Tensor::zeros(Shape{3, 16, 16})), ContractViolation);
}

/// The property model surgery rests on: executing the prefix up to a clean
/// cut, shipping the activation, and executing the suffix elsewhere must
/// reproduce the full-model output bit-for-bit (same weights).
class PartitionEqualityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PartitionEqualityTest, PrefixPlusSuffixEqualsFullForEveryCleanCut) {
  Graph g = GetParam() == "lenet5" ? models::lenet5()
                                   : models::tiny_cnn(10, 32);
  const Executor ex(g, 99);
  const auto in = test_input(g, 3);
  const auto full = ex.run(in);
  for (const auto& cut : g.clean_cuts()) {
    const auto boundary = ex.run_prefix(in, cut.after);
    EXPECT_EQ(boundary.shape(), g.node(cut.after).out_shape);
    if (cut.after == g.output()) continue;
    const auto suffix = ex.run_range(boundary, cut.after, g.output());
    ASSERT_EQ(max_abs_diff(full, suffix), 0.0)
        << "cut after node " << cut.after;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallModels, PartitionEqualityTest,
                         ::testing::Values("lenet5", "tiny_cnn"));

TEST(Executor, PartitionEqualityOnResidualModel) {
  // Residual blocks restrict clean cuts; the equality must hold across the
  // remaining ones. Tiny resolution keeps this fast.
  const auto g = models::resnet18(10, 32);
  const Executor ex(g, 11);
  const auto in = test_input(g, 4);
  const auto full = ex.run(in);
  const auto cuts = g.clean_cuts();
  ASSERT_GT(cuts.size(), 3u);
  // Spot-check a few cuts across the depth (full sweep would be slow).
  for (std::size_t i = 0; i < cuts.size(); i += cuts.size() / 4) {
    const auto boundary = ex.run_prefix(in, cuts[i].after);
    const auto suffix = ex.run_range(boundary, cuts[i].after, g.output());
    ASSERT_LT(max_abs_diff(full, suffix), 1e-6) << "cut " << cuts[i].after;
  }
}

TEST(Executor, RunRangeRejectsNonCleanCut) {
  const auto g = models::resnet18(10, 32);
  const Executor ex(g, 1);
  // Find a node that is NOT a clean cut (inside a residual block).
  const auto inside = g.find("b1_conv1");
  ASSERT_TRUE(inside.has_value());
  const auto boundary = Tensor::zeros(g.node(*inside).out_shape);
  EXPECT_THROW(ex.run_range(boundary, *inside, g.output()),
               ContractViolation);
}

TEST(Executor, RunRangeValidatesBoundaryShape) {
  const auto g = models::tiny_cnn();
  const Executor ex(g, 1);
  EXPECT_THROW(ex.run_range(Tensor::zeros(Shape{1}), 0, g.output()),
               ContractViolation);
}

TEST(Executor, ThreadedExecutionMatchesSerial) {
  const auto g = models::tiny_cnn();
  ThreadPool pool(4);
  const Executor serial(g, 5, nullptr);
  const Executor threaded(g, 5, &pool);
  const auto in = test_input(g, 6);
  EXPECT_EQ(max_abs_diff(serial.run(in), threaded.run(in)), 0.0);
}

TEST(Executor, WeightsExistOnlyForWeightedLayers) {
  const auto g = models::tiny_cnn();
  const Executor ex(g, 1);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (g.node(id).spec.has_weights()) {
      EXPECT_FALSE(ex.weights(id).empty()) << i;
    } else {
      EXPECT_TRUE(ex.weights(id).empty()) << i;
    }
  }
}

TEST(Executor, MobilenetExecutesAtLowResolution) {
  const auto g = models::mobilenet_v1(10, 64);
  const Executor ex(g, 2);
  const auto out = ex.run(test_input(g, 7));
  EXPECT_EQ(out.shape(), (Shape{10}));
  EXPECT_TRUE(out.all_finite());
  EXPECT_NEAR(out.sum(), 1.0, 1e-5);
}

TEST(Executor, OutputsAreFiniteThroughDeepStacks) {
  const auto g = models::vgg16(10, 32);
  const Executor ex(g, 3);
  const auto out = ex.run(test_input(g, 8));
  EXPECT_TRUE(out.all_finite());
}

}  // namespace
}  // namespace scalpel
