#include "nn/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scalpel {
namespace {

/// Definition-style reference convolution to validate the im2col+GEMM path.
Tensor conv2d_reference(const Tensor& input, const Tensor& weights,
                        const Tensor& bias, std::int64_t stride,
                        std::int64_t pad) {
  const auto c_in = input.shape()[0];
  const auto h_in = input.shape()[1];
  const auto w_in = input.shape()[2];
  const auto c_out = weights.shape()[0];
  const auto k = weights.shape()[2];
  const auto h_out = (h_in + 2 * pad - k) / stride + 1;
  const auto w_out = (w_in + 2 * pad - k) / stride + 1;
  Tensor out(Shape{c_out, h_out, w_out});
  for (std::int64_t oc = 0; oc < c_out; ++oc) {
    for (std::int64_t oh = 0; oh < h_out; ++oh) {
      for (std::int64_t ow = 0; ow < w_out; ++ow) {
        float acc = bias.at(oc);
        for (std::int64_t ic = 0; ic < c_in; ++ic) {
          for (std::int64_t kh = 0; kh < k; ++kh) {
            for (std::int64_t kw = 0; kw < k; ++kw) {
              const auto ih = oh * stride - pad + kh;
              const auto iw = ow * stride - pad + kw;
              if (ih < 0 || ih >= h_in || iw < 0 || iw >= w_in) continue;
              acc += input.at(ic, ih, iw) *
                     weights.at(((oc * c_in + ic) * k + kh) * k + kw);
            }
          }
        }
        out.at(oc, oh, ow) = acc;
      }
    }
  }
  return out;
}

// (c_in, c_out, hw, kernel, stride, pad)
using ConvGeom = std::tuple<int, int, int, int, int, int>;

class ConvGeometryTest : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(ConvGeometryTest, MatchesReference) {
  const auto [c_in, c_out, hw, k, stride, pad] = GetParam();
  Rng rng(static_cast<std::uint64_t>(c_in * 131 + c_out * 17 + hw + k));
  const auto input = Tensor::randn(Shape{c_in, hw, hw}, rng);
  const auto weights = Tensor::randn(Shape{c_out, c_in, k, k}, rng);
  const auto bias = Tensor::randn(Shape{c_out}, rng);
  const auto fast = kernels::conv2d(input, weights, bias, stride, pad, nullptr);
  const auto ref = conv2d_reference(input, weights, bias, stride, pad);
  EXPECT_EQ(fast.shape(), ref.shape());
  EXPECT_LT(max_abs_diff(fast, ref), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometryTest,
    ::testing::Values(ConvGeom{1, 1, 5, 1, 1, 0}, ConvGeom{3, 8, 8, 3, 1, 1},
                      ConvGeom{4, 4, 9, 3, 2, 1}, ConvGeom{2, 6, 12, 5, 1, 2},
                      ConvGeom{8, 16, 7, 3, 1, 0}, ConvGeom{3, 2, 11, 7, 2, 3},
                      ConvGeom{5, 5, 6, 1, 2, 0}, ConvGeom{1, 4, 16, 11, 4, 2},
                      ConvGeom{6, 3, 10, 3, 3, 1}));

TEST(Conv2d, ThreadedMatchesSerial) {
  Rng rng(1);
  const auto input = Tensor::randn(Shape{16, 20, 20}, rng);
  const auto weights = Tensor::randn(Shape{32, 16, 3, 3}, rng);
  const auto bias = Tensor::randn(Shape{32}, rng);
  ThreadPool pool(4);
  const auto serial = kernels::conv2d(input, weights, bias, 1, 1, nullptr);
  const auto threaded = kernels::conv2d(input, weights, bias, 1, 1, &pool);
  EXPECT_EQ(max_abs_diff(serial, threaded), 0.0);
}

TEST(DwConv2d, MatchesPerChannelConv) {
  Rng rng(2);
  const std::int64_t c = 6;
  const auto input = Tensor::randn(Shape{c, 10, 10}, rng);
  const auto weights = Tensor::randn(Shape{c, 3, 3}, rng);
  const auto bias = Tensor::randn(Shape{c}, rng);
  const auto dw = kernels::dwconv2d(input, weights, bias, 1, 1, nullptr);
  // Reference: each channel convolved independently via the dense conv with
  // a 1-channel kernel.
  for (std::int64_t ch = 0; ch < c; ++ch) {
    Tensor one_in(Shape{1, 10, 10});
    for (std::int64_t i = 0; i < 100; ++i) one_in.at(i) = input.at(ch * 100 + i);
    Tensor one_w(Shape{1, 1, 3, 3});
    for (std::int64_t i = 0; i < 9; ++i) one_w.at(i) = weights.at(ch * 9 + i);
    Tensor one_b(Shape{1});
    one_b.at(0) = bias.at(ch);
    const auto ref = kernels::conv2d(one_in, one_w, one_b, 1, 1, nullptr);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_NEAR(dw.at(ch * ref.numel() + i), ref.at(i), 1e-5);
    }
  }
}

TEST(DwConv2d, StrideAndPad) {
  Rng rng(3);
  const auto input = Tensor::randn(Shape{4, 9, 9}, rng);
  const auto weights = Tensor::randn(Shape{4, 3, 3}, rng);
  const auto bias = Tensor::zeros(Shape{4});
  const auto out = kernels::dwconv2d(input, weights, bias, 2, 1, nullptr);
  EXPECT_EQ(out.shape(), (Shape{4, 5, 5}));
  EXPECT_TRUE(out.all_finite());
}

TEST(Fc, MatchesManualDotProduct) {
  Tensor input(Shape{3});
  input.at(0) = 1.0f;
  input.at(1) = 2.0f;
  input.at(2) = 3.0f;
  Tensor w(Shape{2, 3});
  // row 0: [1, 0, -1]; row 1: [0.5, 0.5, 0.5]
  w.at(0) = 1.0f;
  w.at(2) = -1.0f;
  w.at(3) = 0.5f;
  w.at(4) = 0.5f;
  w.at(5) = 0.5f;
  Tensor b(Shape{2});
  b.at(0) = 10.0f;
  const auto out = kernels::fc(input, w, b, nullptr);
  EXPECT_NEAR(out.at(0), 1.0f - 3.0f + 10.0f, 1e-6);
  EXPECT_NEAR(out.at(1), 3.0f, 1e-6);
}

TEST(Gemm, KnownProduct) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4] = {};
  kernels::gemm(a, b, nullptr, c, 2, 2, 2, nullptr);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(MaxPool, BasicAndPadded) {
  Tensor in(Shape{1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) in.at(i) = static_cast<float>(i);
  const auto out = kernels::maxpool2d(in, 2, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 15.0f);
  // Padded: pad cells are ignored by max (never selected over real values
  // when inputs are positive).
  const auto padded = kernels::maxpool2d(in, 3, 2, 1);
  EXPECT_EQ(padded.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(padded.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(padded.at(0, 1, 1), 15.0f);
}

TEST(AvgPool, ExcludesPadFromCount) {
  Tensor in(Shape{1, 2, 2});
  in.at(0) = 4.0f;
  in.at(1) = 4.0f;
  in.at(2) = 4.0f;
  in.at(3) = 4.0f;
  // kernel 3, stride 2, pad 1: each window sees 4 valid cells at the corner.
  const auto out = kernels::avgpool2d(in, 3, 2, 1);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 4.0f);  // mean over valid cells only
}

TEST(AvgPool, SimpleMean) {
  Tensor in(Shape{1, 2, 2});
  in.at(0) = 1.0f;
  in.at(1) = 2.0f;
  in.at(2) = 3.0f;
  in.at(3) = 4.0f;
  const auto out = kernels::avgpool2d(in, 2, 2);
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
}

TEST(GlobalAvgPool, AveragesPerChannel) {
  Tensor in(Shape{2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) in.at(i) = 2.0f;
  for (std::int64_t i = 4; i < 8; ++i) in.at(i) = 6.0f;
  const auto out = kernels::global_avgpool(in);
  EXPECT_EQ(out.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1), 6.0f);
}

TEST(Relu, ClampsNegatives) {
  Tensor in(Shape{4});
  in.at(0) = -1.0f;
  in.at(1) = 0.0f;
  in.at(2) = 2.0f;
  in.at(3) = -0.5f;
  const auto out = kernels::relu(in);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2), 2.0f);
  EXPECT_FLOAT_EQ(out.at(3), 0.0f);
}

TEST(BatchNorm, IdentityParams) {
  Rng rng(4);
  const auto in = Tensor::randn(Shape{3, 4, 4}, rng);
  Tensor params(Shape{4, 3});
  for (std::int64_t c = 0; c < 3; ++c) {
    params.at(0 * 3 + c) = 1.0f;  // gamma
    params.at(1 * 3 + c) = 0.0f;  // beta
    params.at(2 * 3 + c) = 0.0f;  // mean
    params.at(3 * 3 + c) = 1.0f;  // var
  }
  const auto out = kernels::batchnorm(in, params, 0.0f);
  EXPECT_LT(max_abs_diff(in, out), 1e-6);
}

TEST(BatchNorm, NormalizesKnownValues) {
  Tensor in(Shape{1, 1, 2});
  in.at(0) = 3.0f;
  in.at(1) = 5.0f;
  Tensor params(Shape{4, 1});
  params.at(0) = 2.0f;   // gamma
  params.at(1) = 1.0f;   // beta
  params.at(2) = 4.0f;   // mean
  params.at(3) = 4.0f;   // var
  const auto out = kernels::batchnorm(in, params, 0.0f);
  // y = 2*(x-4)/2 + 1 = x - 3
  EXPECT_NEAR(out.at(0), 0.0f, 1e-5);
  EXPECT_NEAR(out.at(1), 2.0f, 1e-5);
}

TEST(Add, Elementwise) {
  const auto a = Tensor::full(Shape{2, 2, 2}, 1.5f);
  const auto b = Tensor::full(Shape{2, 2, 2}, 2.5f);
  const auto out = kernels::add(a, b);
  EXPECT_DOUBLE_EQ(out.sum(), 4.0 * 8);
}

TEST(Concat, StacksChannels) {
  const auto a = Tensor::full(Shape{1, 2, 2}, 1.0f);
  const auto b = Tensor::full(Shape{3, 2, 2}, 2.0f);
  const auto out = kernels::concat_channels({a, b});
  EXPECT_EQ(out.shape(), (Shape{4, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(3, 1, 1), 2.0f);
}

TEST(Softmax, SumsToOneAndOrders) {
  Tensor in(Shape{3});
  in.at(0) = 1.0f;
  in.at(1) = 3.0f;
  in.at(2) = 2.0f;
  const auto out = kernels::softmax(in);
  EXPECT_NEAR(out.sum(), 1.0, 1e-6);
  EXPECT_GT(out.at(1), out.at(2));
  EXPECT_GT(out.at(2), out.at(0));
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor in(Shape{2});
  in.at(0) = 1000.0f;
  in.at(1) = 1001.0f;
  const auto out = kernels::softmax(in);
  EXPECT_TRUE(out.all_finite());
  EXPECT_NEAR(out.sum(), 1.0, 1e-6);
}

}  // namespace
}  // namespace scalpel
