#include "nn/models.hpp"

#include "nn/executor.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace scalpel {
namespace {

/// Published reference figures (FLOPs = 2x MACs convention, params in
/// millions). Tolerances absorb spatial rounding differences (e.g. 55 vs 56
/// after an unpadded pool).
struct Reference {
  const char* name;
  double gflops;
  double mparams;
  double tol_frac;
};

class ZooReferenceTest : public ::testing::TestWithParam<Reference> {};

TEST_P(ZooReferenceTest, FlopsMatchPublished) {
  const auto ref = GetParam();
  const auto g = models::by_name(ref.name);
  const double gflops = static_cast<double>(g.total_flops()) / 1e9;
  EXPECT_NEAR(gflops, ref.gflops, ref.gflops * ref.tol_frac)
      << ref.name << " computed " << gflops << " GFLOPs";
}

TEST_P(ZooReferenceTest, ParamsMatchPublished) {
  const auto ref = GetParam();
  const auto g = models::by_name(ref.name);
  const double mparams = static_cast<double>(g.total_params()) / 1e6;
  EXPECT_NEAR(mparams, ref.mparams, ref.mparams * ref.tol_frac)
      << ref.name << " computed " << mparams << " M params";
}

INSTANTIATE_TEST_SUITE_P(
    Published, ZooReferenceTest,
    // AlexNet: 2.27 GFLOPs is the ungrouped (Caffe bvlc_alexnet) variant at
    // 1.14 GMACs; the often-quoted 0.72 GMACs is the two-GPU grouped net.
    ::testing::Values(Reference{"alexnet", 2.27, 61.0, 0.15},
                      Reference{"vgg16", 30.9, 138.4, 0.10},
                      Reference{"vgg19", 39.2, 143.7, 0.10},
                      Reference{"resnet18", 3.6, 11.7, 0.15},
                      Reference{"resnet34", 7.3, 21.8, 0.15},
                      Reference{"resnet50", 8.2, 25.6, 0.15},
                      Reference{"squeezenet", 1.42, 1.25, 0.25},
                      Reference{"googlenet", 3.0, 6.6, 0.20},
                      Reference{"mobilenet_v1", 1.14, 4.2, 0.15},
                      Reference{"tiny_yolo", 7.5, 15.8, 0.15}));

TEST(Models, LenetShapes) {
  const auto g = models::lenet5();
  EXPECT_EQ(g.node(0).out_shape, (Shape{1, 28, 28}));
  EXPECT_EQ(g.node(g.output()).out_shape, (Shape{10}));
  // LeNet-5 has ~61k params.
  EXPECT_NEAR(static_cast<double>(g.total_params()), 61706.0, 5000.0);
}

TEST(Models, EveryZooModelEndsWithClassesOrDetection) {
  for (const auto& name : models::zoo_names()) {
    const auto g = models::by_name(name);
    const auto& out = g.node(g.output()).out_shape;
    EXPECT_GE(out.numel(), 10) << name;
    EXPECT_GT(g.total_flops(), 0) << name;
  }
}

TEST(Models, ZooMatchesNames) {
  const auto zoo = models::zoo();
  const auto names = models::zoo_names();
  ASSERT_EQ(zoo.size(), names.size());
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(zoo[i].name(), names[i]);
  }
}

TEST(Models, ByNameRejectsUnknown) {
  EXPECT_THROW(models::by_name("resnet999"), ContractViolation);
}

TEST(Models, ResolutionParameterScalesActivations) {
  const auto small = models::mobilenet_v1(1000, 64);
  const auto big = models::mobilenet_v1(1000, 224);
  EXPECT_LT(small.total_flops(), big.total_flops());
  // Parameters of conv layers are resolution independent; only the fc input
  // stays the same here because mobilenet ends in global average pooling.
  EXPECT_EQ(small.total_params(), big.total_params());
}

TEST(Models, VggDepthStructure) {
  const auto g = models::vgg16();
  // 13 conv + 3 fc = 16 weighted layers.
  int convs = 0;
  int fcs = 0;
  for (const auto& n : g.nodes()) {
    if (n.spec.kind == LayerKind::kConv) ++convs;
    if (n.spec.kind == LayerKind::kFC) ++fcs;
  }
  EXPECT_EQ(convs, 13);
  EXPECT_EQ(fcs, 3);
}

TEST(Models, Resnet18Structure) {
  const auto g = models::resnet18();
  int convs = 0;
  int adds = 0;
  for (const auto& n : g.nodes()) {
    if (n.spec.kind == LayerKind::kConv) ++convs;
    if (n.spec.kind == LayerKind::kAdd) ++adds;
  }
  // 1 stem + 16 block convs + 3 downsample convs = 20; 8 residual adds.
  EXPECT_EQ(convs, 20);
  EXPECT_EQ(adds, 8);
}

TEST(Models, MobilenetDepthwiseCount) {
  const auto g = models::mobilenet_v1();
  int dws = 0;
  for (const auto& n : g.nodes()) {
    if (n.spec.kind == LayerKind::kDWConv) ++dws;
  }
  EXPECT_EQ(dws, 13);
}

TEST(Models, TinyCnnIsCheapEnoughToExecuteInTests) {
  const auto g = models::tiny_cnn();
  EXPECT_LT(g.total_flops(), 20e6);
}

TEST(Models, CustomClassCounts) {
  const auto g = models::alexnet(37);
  EXPECT_EQ(g.node(g.output()).out_shape, (Shape{37}));
}

TEST(Models, Resnet50UsesBottlenecks) {
  const auto g = models::resnet50();
  // 1 stem + 3*(3+4+6+3) block convs + 4 downsample convs = 53 convs.
  int convs = 0;
  for (const auto& n : g.nodes()) {
    if (n.spec.kind == LayerKind::kConv) ++convs;
  }
  EXPECT_EQ(convs, 53);
  // Final stage outputs 2048 channels (512 * expansion 4).
  const auto gavg = g.find("gavg");
  ASSERT_TRUE(gavg.has_value());
  EXPECT_EQ(g.node(*gavg).out_shape, (Shape{2048}));
}

TEST(Models, Resnet34DeeperThanResnet18) {
  EXPECT_GT(models::resnet34().total_flops(), models::resnet18().total_flops());
  EXPECT_GT(models::resnet34().total_params(),
            models::resnet18().total_params());
}

TEST(Models, SqueezenetFireModulesConcatenate) {
  const auto g = models::squeezenet();
  int concats = 0;
  for (const auto& n : g.nodes()) {
    if (n.spec.kind == LayerKind::kConcat) ++concats;
  }
  EXPECT_EQ(concats, 8);  // fire2..fire9
  // Fire branches restrict clean cuts: far fewer than node count.
  EXPECT_LE(g.clean_cuts().size(), g.size() / 2);
}

TEST(Models, GooglenetInceptionStructure) {
  const auto g = models::googlenet();
  int concats = 0;
  for (const auto& n : g.nodes()) {
    if (n.spec.kind == LayerKind::kConcat) ++concats;
  }
  EXPECT_EQ(concats, 9);  // 3a-3b, 4a-4e, 5a-5b
  // Four-way concat output channels for 3a: 64+128+32+32 = 256.
  const auto cat = g.find("inc1_cat");
  ASSERT_TRUE(cat.has_value());
  EXPECT_EQ(g.node(*cat).out_shape[0], 256);
}

TEST(Models, GooglenetExecutesAtLowResolution) {
  const auto g = models::googlenet(10, 64);
  const Executor ex(g, 8);
  Rng rng(4);
  const auto out = ex.run(Tensor::randn(g.node(0).out_shape, rng, 0.5f));
  EXPECT_EQ(out.shape(), (Shape{10}));
  EXPECT_NEAR(out.sum(), 1.0, 1e-5);
}

TEST(Models, SqueezenetExecutesAtLowResolution) {
  const auto g = models::squeezenet(10, 64);
  const Executor ex(g, 3);
  Rng rng(1);
  const auto out = ex.run(Tensor::randn(g.node(0).out_shape, rng, 0.5f));
  EXPECT_EQ(out.shape(), (Shape{10}));
  EXPECT_NEAR(out.sum(), 1.0, 1e-5);
}

TEST(Models, Resnet50PartitionEqualityOnSpotCheckedCuts) {
  const auto g = models::resnet50(10, 32);
  const Executor ex(g, 4);
  Rng rng(2);
  const auto in = Tensor::randn(g.node(0).out_shape, rng, 0.5f);
  const auto full = ex.run(in);
  const auto cuts = g.clean_cuts();
  ASSERT_GT(cuts.size(), 2u);
  const auto& mid = cuts[cuts.size() / 2];
  const auto boundary = ex.run_prefix(in, mid.after);
  const auto suffix = ex.run_range(boundary, mid.after, g.output());
  EXPECT_LT(max_abs_diff(full, suffix), 1e-6);
}

}  // namespace
}  // namespace scalpel
