#include "nn/graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nn/models.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

Graph simple_chain() {
  Graph g("chain");
  const auto in = g.add(LayerSpec::input(Shape{3, 8, 8}));
  const auto c1 = g.add(LayerSpec::conv(4, 3, 1, 1, "c1"), {in});
  const auto r1 = g.add(LayerSpec::relu("r1"), {c1});
  const auto f = g.add(LayerSpec::flatten("f"), {r1});
  const auto fc = g.add(LayerSpec::fc(10, "fc"), {f});
  g.add(LayerSpec::softmax("sm"), {fc});
  return g;
}

TEST(Graph, ShapesPropagate) {
  const auto g = simple_chain();
  EXPECT_EQ(g.node(1).out_shape, (Shape{4, 8, 8}));
  EXPECT_EQ(g.node(3).out_shape, (Shape{256}));
  EXPECT_EQ(g.node(5).out_shape, (Shape{10}));
}

TEST(Graph, FlopsAndParams) {
  const auto g = simple_chain();
  // conv: 2*3*3*3*8*8*4 = 13824 FLOPs; params 3*3*3*4+4 = 112.
  EXPECT_EQ(g.node(1).flops, 13824);
  EXPECT_EQ(g.node(1).params, 112);
  // fc: 2*256*10; params 256*10+10.
  EXPECT_EQ(g.node(4).flops, 5120);
  EXPECT_EQ(g.node(4).params, 2570);
  EXPECT_EQ(g.total_params(), 112 + 2570);
}

TEST(Graph, PrefixAndRangeFlopsConsistent) {
  const auto g = simple_chain();
  EXPECT_EQ(g.prefix_flops(g.output()), g.total_flops());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    sum += g.node(static_cast<NodeId>(i)).flops;
  }
  EXPECT_EQ(sum, g.total_flops());
  EXPECT_EQ(g.range_flops(1, 4), g.prefix_flops(4) - g.prefix_flops(1));
  EXPECT_EQ(g.range_flops(-1, g.output()), g.total_flops());
}

TEST(Graph, RejectsForwardReferences) {
  Graph g;
  g.add(LayerSpec::input(Shape{1, 4, 4}));
  EXPECT_THROW(g.add(LayerSpec::relu("r"), {5}), ContractViolation);
  EXPECT_THROW(g.add(LayerSpec::relu("r"), {-1}), ContractViolation);
}

TEST(Graph, RejectsDuplicateNames) {
  Graph g;
  const auto in = g.add(LayerSpec::input(Shape{1, 4, 4}, "in"));
  g.add(LayerSpec::relu("r"), {in});
  EXPECT_THROW(g.add(LayerSpec::relu("r"), {in}), ContractViolation);
}

TEST(Graph, FindByName) {
  const auto g = simple_chain();
  ASSERT_TRUE(g.find("fc").has_value());
  EXPECT_EQ(*g.find("fc"), 4);
  EXPECT_FALSE(g.find("nope").has_value());
}

/// Brute-force clean-cut check: a cut after k is clean iff every edge (u,v)
/// with u <= k < v has u == k.
std::vector<NodeId> brute_force_clean_cuts(const Graph& g) {
  std::vector<NodeId> out;
  const auto n = static_cast<NodeId>(g.size());
  for (NodeId k = 0; k + 1 < n; ++k) {
    bool clean = true;
    for (NodeId v = 0; v < n && clean; ++v) {
      for (NodeId u : g.node(v).inputs) {
        if (u <= k && v > k && u != k) {
          clean = false;
          break;
        }
      }
    }
    if (clean) out.push_back(k);
  }
  return out;
}

class CleanCutModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CleanCutModelTest, MatchesBruteForce) {
  const auto g = models::by_name(GetParam());
  const auto cuts = g.clean_cuts();
  std::vector<NodeId> got;
  for (const auto& c : cuts) got.push_back(c.after);
  EXPECT_EQ(got, brute_force_clean_cuts(g));
}

TEST_P(CleanCutModelTest, CutMetadataConsistent) {
  const auto g = models::by_name(GetParam());
  for (const auto& c : g.clean_cuts()) {
    EXPECT_EQ(c.activation_bytes, g.node(c.after).out_shape.bytes());
    EXPECT_EQ(c.prefix_flops, g.prefix_flops(c.after));
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, CleanCutModelTest,
                         ::testing::Values("lenet5", "alexnet", "vgg16",
                                           "vgg19", "resnet18", "resnet34",
                                           "resnet50", "squeezenet", "googlenet",
                                           "mobilenet_v1", "tiny_yolo",
                                           "tiny_cnn"));

TEST(Graph, ChainModelsEveryNodeIsCleanCut) {
  // A pure chain has a clean cut after every non-final node.
  const auto g = models::vgg16();
  EXPECT_EQ(g.clean_cuts().size(), g.size() - 1);
}

TEST(Graph, ResnetCutsExcludeBlockInteriors) {
  // Inside a residual block the shortcut edge crosses, so interior cuts are
  // not clean; block boundaries are.
  const auto g = models::resnet18();
  const auto cuts = g.clean_cuts();
  std::set<NodeId> cut_set;
  for (const auto& c : cuts) cut_set.insert(c.after);
  // b1_conv1 (inside the first block) must not be a clean cut boundary:
  // the shortcut from pool1 crosses it.
  const auto inside = g.find("b1_conv1");
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(cut_set.count(*inside), 0u);
  // The block output (after b1_relu2) is clean.
  const auto boundary = g.find("b1_out");
  ASSERT_TRUE(boundary.has_value());
  EXPECT_EQ(cut_set.count(*boundary), 1u);
}

TEST(Graph, SummaryMentionsEveryLayer) {
  const auto g = simple_chain();
  const auto s = g.summary();
  EXPECT_NE(s.find("c1"), std::string::npos);
  EXPECT_NE(s.find("fc"), std::string::npos);
  EXPECT_NE(s.find("MFLOPs"), std::string::npos);
}

TEST(LayerSpec, AddRequiresMatchingShapes) {
  Graph g;
  const auto in = g.add(LayerSpec::input(Shape{2, 4, 4}));
  const auto a = g.add(LayerSpec::conv(4, 3, 1, 1, "a"), {in});
  const auto b = g.add(LayerSpec::conv(8, 3, 1, 1, "b"), {in});
  EXPECT_THROW(g.add(LayerSpec::add("bad"), {a, b}), ContractViolation);
}

TEST(LayerSpec, ConcatAddsChannels) {
  Graph g;
  const auto in = g.add(LayerSpec::input(Shape{2, 4, 4}));
  const auto a = g.add(LayerSpec::conv(4, 3, 1, 1, "a"), {in});
  const auto b = g.add(LayerSpec::conv(8, 3, 1, 1, "b"), {in});
  const auto c = g.add(LayerSpec::concat("c"), {a, b});
  EXPECT_EQ(g.node(c).out_shape, (Shape{12, 4, 4}));
}

TEST(LayerSpec, InvalidGeometryRejected) {
  EXPECT_THROW(LayerSpec::conv(0, 3, 1, 1, "x"), ContractViolation);
  EXPECT_THROW(LayerSpec::conv(4, 3, 0, 1, "x"), ContractViolation);
  EXPECT_THROW(LayerSpec::fc(0, "x"), ContractViolation);
  // Output dim would be non-positive.
  Graph g;
  const auto in = g.add(LayerSpec::input(Shape{1, 2, 2}));
  EXPECT_THROW(g.add(LayerSpec::conv(1, 5, 1, 0, "big"), {in}),
               ContractViolation);
}

}  // namespace
}  // namespace scalpel
