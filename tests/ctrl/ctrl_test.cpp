// Unit tests for the distributed control plane: the deterministic faulty
// fabric, the coordinator's tatonnement + epoch log, the per-cell
// controller's robustness ladder (epoch guard, staleness discount, autonomy,
// crash/restart replay), and the plane wiring end to end. Every solver here
// is a stub via the CellControllerOptions::solver seam — these tests pin
// control-plane *protocol* behavior, not optimizer quality.

#include "ctrl/plane.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "edge/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/json.hpp"

namespace scalpel {
namespace {

bool audit_has_cause(const DecisionAuditLog& log, AuditCause cause) {
  for (const auto& r : log.records()) {
    if (r.cause == cause) return true;
  }
  return false;
}

/// Deterministic stand-in for the joint optimizer on a cell sub-instance:
/// offload every member to the first sub-server with equal shares summing
/// to 0.9 and bandwidth summing to 90% of the uplink — always valid, so
/// tests exercise the protocol around the solver, not the solver.
Decision stub_offload(const ProblemInstance& sub) {
  const auto& topo = sub.topology();
  const std::size_t n = topo.devices().size();
  Decision d;
  d.scheme = "stub";
  d.per_device.resize(n);
  const double bw = topo.cell(0).bandwidth;
  for (auto& dd : d.per_device) {
    dd.plan.partition_after = 0;
    dd.server = 0;
    dd.compute_share = 0.9 / static_cast<double>(n);
    dd.bandwidth = 0.9 * bw / static_cast<double>(n);
  }
  return d;
}

CellControllerOptions stub_cell_opts() {
  CellControllerOptions o;
  o.solver = [](const ProblemInstance& sub, const JointOptions&) {
    return stub_offload(sub);
  };
  return o;
}

ClusterTopology four_cell_campus() {
  clusters::CampusOptions copts;
  copts.num_devices = 8;
  copts.num_servers = 3;
  copts.devices_per_cell = 2;
  copts.seed = 7;
  return clusters::campus(copts);
}

Observation observe_all_up(double t, const ClusterTopology& topo,
                           double bw_scale = 1.0) {
  Observation o;
  o.time = t;
  for (const auto& c : topo.cells()) {
    o.cell_bandwidth.push_back(c.bandwidth * bw_scale);
  }
  o.server_alive.assign(topo.servers().size(), true);
  return o;
}

// --- fabric ---------------------------------------------------------------

TEST(CtrlFabric, PassThroughDeliversSameTickInSendOrder) {
  ControlFabric f(ControlFabricOptions{}, 3, 7);
  for (int i = 0; i < 3; ++i) {
    CtrlMessage m;
    m.type = CtrlMsgType::kHeartbeat;
    m.from = 0;
    m.to = 1 + (i % 2);
    m.epoch = static_cast<std::uint64_t>(i);
    f.send(std::move(m), 0.0);
  }
  const auto due = f.deliver(0.0);
  ASSERT_EQ(due.size(), 3u);
  for (std::size_t i = 0; i < due.size(); ++i) {
    EXPECT_EQ(due[i].seq, i);
    EXPECT_EQ(due[i].epoch, i);
    EXPECT_EQ(due[i].deliver_at, 0.0);
  }
  EXPECT_EQ(f.sent(), 3u);
  EXPECT_EQ(f.delivered(), 3u);
  EXPECT_EQ(f.dropped(), 0u);
  EXPECT_EQ(f.in_flight(), 0u);
}

TEST(CtrlFabric, ImpairedFabricReplaysBitIdentically) {
  ControlFabricOptions opts;
  opts.delay = 0.05;
  opts.jitter = 0.2;
  opts.drop_prob = 0.3;
  ControlFabric a(opts, 3, 11);
  ControlFabric b(opts, 3, 11);
  auto drive = [](ControlFabric& f) {
    std::vector<CtrlMessage> out;
    for (int i = 0; i < 200; ++i) {
      CtrlMessage m;
      m.type = CtrlMsgType::kLoadReport;
      m.from = 1 + (i % 2);
      m.to = 0;
      m.payload = {static_cast<double>(i)};
      f.send(std::move(m), 0.01 * i);
      for (const auto& d : f.deliver(0.01 * i)) out.push_back(d);
    }
    for (const auto& d : f.deliver(1e9)) out.push_back(d);
    return out;
  };
  const auto da = drive(a);
  const auto db = drive(b);
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_EQ(a.sent(), b.sent());
  EXPECT_EQ(a.dropped(), b.dropped());
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].seq, db[i].seq);
    EXPECT_EQ(da[i].deliver_at, db[i].deliver_at);  // bitwise, on purpose
    EXPECT_EQ(da[i].payload, db[i].payload);
  }
}

TEST(CtrlFabric, LinkSubstreamsAreIndependent) {
  // Traffic on link 0->1 must not shift the drop/jitter stream of link
  // 0->2: the k-th send on a link has the same fate whether or not other
  // links carried traffic in between.
  ControlFabricOptions opts;
  opts.jitter = 0.5;
  opts.drop_prob = 0.3;
  ControlFabric mixed(opts, 3, 5);
  ControlFabric solo(opts, 3, 5);
  for (int i = 0; i < 100; ++i) {
    CtrlMessage noise;
    noise.from = 0;
    noise.to = 1;
    mixed.send(std::move(noise), 0.1 * i);
    CtrlMessage probe;
    probe.from = 0;
    probe.to = 2;
    probe.payload = {static_cast<double>(i)};
    mixed.send(std::move(probe), 0.1 * i);
    CtrlMessage same;
    same.from = 0;
    same.to = 2;
    same.payload = {static_cast<double>(i)};
    solo.send(std::move(same), 0.1 * i);
  }
  auto probe_fates = [](ControlFabric& f) {
    std::vector<std::pair<double, double>> fates;  // (payload, deliver_at)
    for (const auto& m : f.deliver(1e9)) {
      if (m.to == 2) fates.emplace_back(m.payload[0], m.deliver_at);
    }
    return fates;
  };
  EXPECT_EQ(probe_fates(mixed), probe_fates(solo));
}

TEST(CtrlFabric, JitterLargerThanCadenceReordersSends) {
  ControlFabricOptions opts;
  opts.delay = 0.01;
  opts.jitter = 0.5;  // 5x the send cadence below
  ControlFabric f(opts, 2, 3);
  for (int i = 0; i < 50; ++i) {
    CtrlMessage m;
    m.from = 0;
    m.to = 1;
    f.send(std::move(m), 0.1 * i);
  }
  const auto due = f.deliver(1e9);
  ASSERT_EQ(due.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < due.size(); ++i) {
    if (due[i].seq < due[i - 1].seq) reordered = true;
  }
  EXPECT_TRUE(reordered) << "jitter >> cadence must reorder some deliveries";
}

TEST(CtrlFabric, DropForDeadDiscardsOnlyTheVictimsQueue) {
  ControlFabricOptions opts;
  opts.delay = 1.0;
  ControlFabric f(opts, 3, 9);
  for (int i = 0; i < 6; ++i) {
    CtrlMessage m;
    m.from = 0;
    m.to = 1 + (i % 2);
    f.send(std::move(m), 0.0);
  }
  ASSERT_EQ(f.in_flight(), 6u);
  f.drop_for_dead(1);
  EXPECT_EQ(f.dropped_dead(), 3u);
  const auto due = f.deliver(10.0);
  ASSERT_EQ(due.size(), 3u);
  for (const auto& m : due) EXPECT_EQ(m.to, 2);
}

// --- coordinator ----------------------------------------------------------

TEST(CtrlCoordinator, ConvergesGeometricallyOnStaticWorkload) {
  // The convergence guarantee: with static demand reports the tatonnement
  // target is constant, so max|delta phi| contracts by exactly (1 - alpha)
  // per granting round until it crosses converge_eps.
  CoordinatorOptions co;
  co.alpha = 0.5;
  GlobalCoordinator gc(2, 1, co);
  ControlFabric f(ControlFabricOptions{}, 3, 1);
  std::vector<double> deltas;
  std::uint64_t last_epoch = 0;
  for (int t = 0; t < 20; ++t) {
    CtrlMessage r0;
    r0.type = CtrlMsgType::kLoadReport;
    r0.from = 1;
    r0.to = 0;
    r0.payload = {0.75};
    gc.receive(r0);
    CtrlMessage r1 = r0;
    r1.from = 2;
    r1.payload = {0.25};
    gc.receive(r1);
    gc.tick(static_cast<double>(t), f);
    if (gc.epoch() != last_epoch && gc.last_max_delta() > 0.0) {
      deltas.push_back(gc.last_max_delta());
    }
    last_epoch = gc.epoch();
  }
  ASSERT_GE(deltas.size(), 4u);
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    // Exact (1 - alpha) contraction, up to rounding in the target's
    // floor-reserve arithmetic.
    EXPECT_NEAR(deltas[i] / deltas[i - 1], 1.0 - co.alpha, 1e-12);
  }
  EXPECT_TRUE(gc.converged());
  EXPECT_NEAR(gc.slices()[0][0], 0.75, 5e-3);
  EXPECT_NEAR(gc.slices()[1][0], 0.25, 5e-3);
  // Converged: the epoch counter must have stopped advancing.
  const std::uint64_t settled = gc.epoch();
  for (int t = 20; t < 25; ++t) gc.tick(static_cast<double>(t), f);
  EXPECT_EQ(gc.epoch(), settled);
}

TEST(CtrlCoordinator, EpochAndSlicesSurviveCrashRestart) {
  GlobalCoordinator gc(2, 1, CoordinatorOptions{});
  ControlFabric f(ControlFabricOptions{}, 3, 1);
  for (int t = 0; t < 5; ++t) {
    CtrlMessage r;
    r.type = CtrlMsgType::kLoadReport;
    r.from = 1;
    r.to = 0;
    r.payload = {1.0};
    gc.receive(r);
    gc.tick(static_cast<double>(t), f);
  }
  const std::uint64_t epoch = gc.epoch();
  const auto slices = gc.slices();
  ASSERT_GE(epoch, 2u);

  gc.crash();
  EXPECT_EQ(gc.epoch(), 0u);

  gc.restart(5.0);
  // The state log replays epoch and slice matrix: epoch numbers are never
  // re-issued, so pre-crash grants can never outrank post-restart ones.
  EXPECT_EQ(gc.epoch(), epoch);
  EXPECT_EQ(gc.slices(), slices);
}

TEST(CtrlCoordinator, SilentCellKeepsItsSlice) {
  // A partitioned cell's reports stop arriving; its slice must decay only
  // through column normalization (bounded), never be zeroed outright, and
  // never fall below the floor that lets it re-enter later.
  CoordinatorOptions co;
  GlobalCoordinator gc(2, 1, co);
  ControlFabric f(ControlFabricOptions{}, 3, 1);
  for (int t = 0; t < 10; ++t) {
    CtrlMessage r;
    r.type = CtrlMsgType::kLoadReport;
    r.from = 2;  // only cell 1 reports
    r.to = 0;
    r.payload = {1.0};
    gc.receive(r);
    gc.tick(static_cast<double>(t), f);
  }
  EXPECT_GT(gc.slices()[1][0], gc.slices()[0][0]);
  EXPECT_GE(gc.slices()[0][0], co.min_slice);
  EXPECT_GT(gc.slices()[0][0], 0.1) << "silent cell must not be starved";
}

TEST(CtrlCoordinator, ReGrantsWhenAReportEchoesAnOlderEpoch) {
  // Grants flow only when the slice matrix moves, so a dropped grant would
  // be lost forever without anti-entropy: a load report echoing an epoch
  // behind the coordinator's must trigger a targeted re-grant.
  GlobalCoordinator gc(2, 1, CoordinatorOptions{});
  ControlFabric f(ControlFabricOptions{}, 3, 1);
  for (int t = 0; t < 12; ++t) {
    for (int from = 1; from <= 2; ++from) {
      CtrlMessage r;
      r.type = CtrlMsgType::kLoadReport;
      r.from = from;
      r.to = 0;
      r.epoch = gc.epoch();
      r.payload = {1.0};
      gc.receive(r);
    }
    gc.tick(static_cast<double>(t), f);
  }
  ASSERT_TRUE(gc.converged());
  (void)f.deliver(100.0);  // drain the convergence traffic
  const std::uint64_t settled = gc.epoch();
  ASSERT_GE(settled, 1u);

  CtrlMessage behind;
  behind.type = CtrlMsgType::kLoadReport;
  behind.from = 2;
  behind.to = 0;
  behind.epoch = 0;  // cell 1's grants were all dropped by the fabric
  behind.payload = {1.0};  // same demand: the matrix must not move
  gc.receive(behind);
  gc.tick(6.5, f);
  bool regranted = false;
  for (const auto& m : f.deliver(100.0)) {
    if (m.type == CtrlMsgType::kSliceGrant && m.to == 2) {
      regranted = true;
      EXPECT_EQ(m.epoch, gc.epoch());
    }
  }
  EXPECT_TRUE(regranted);
  EXPECT_EQ(gc.epoch(), settled) << "re-grant must not mint a new epoch";
}

// --- cell controller ------------------------------------------------------

TEST(CtrlCell, RejectsGrantsThatDoNotOutrankTheAdoptedEpoch) {
  const ProblemInstance inst(clusters::small_lab());
  DecisionAuditLog audit;
  CellController cc(inst, 0, stub_cell_opts(), &audit);

  CtrlMessage g;
  g.type = CtrlMsgType::kSliceGrant;
  g.from = 0;
  g.to = 1;
  g.epoch = 2;
  g.sent_at = 0.0;
  g.payload = {0.6, 0.6};
  cc.receive(g, 0.0);
  EXPECT_EQ(cc.adopted_epoch(), 2u);

  // A delayed pre-crash grant (older epoch) and a duplicate (equal epoch)
  // must both bounce off the split-brain guard.
  CtrlMessage stale = g;
  stale.epoch = 1;
  stale.payload = {0.1, 0.1};
  cc.receive(stale, 1.0);
  CtrlMessage dup = g;
  cc.receive(dup, 1.5);
  EXPECT_EQ(cc.epochs_rejected(), 2u);
  EXPECT_EQ(cc.adopted_epoch(), 2u);
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kEpochRejected));
}

TEST(CtrlCell, HeartbeatTimeoutEntersAutonomyThenRejoins) {
  const ProblemInstance inst(clusters::small_lab());
  DecisionAuditLog audit;
  CellController cc(inst, 0, stub_cell_opts(), &audit);
  ControlFabric f(ControlFabricOptions{}, 2, 1);
  const double bw = inst.topology().cell(0).bandwidth;
  const std::vector<bool> alive = {true, true};

  EXPECT_TRUE(cc.tick(0.0, bw, alive, f));  // first local solve
  EXPECT_FALSE(cc.autonomous());

  // Silence past the heartbeat timeout flips the cell into local autonomy;
  // the stale grant then forces a re-solve attributed to local_autonomy.
  cc.tick(4.0, bw, alive, f);
  EXPECT_TRUE(cc.autonomous());
  EXPECT_EQ(cc.coordinator_losses(), 1u);
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kCoordinatorLost));

  cc.tick(6.0, bw, alive, f);
  EXPECT_TRUE(cc.stale());
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kLocalAutonomy));

  CtrlMessage hb;
  hb.type = CtrlMsgType::kHeartbeat;
  hb.from = 0;
  hb.to = 1;
  cc.receive(hb, 6.5);
  EXPECT_FALSE(cc.autonomous());
  EXPECT_EQ(cc.rejoins(), 1u);
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kRejoin));
}

TEST(CtrlCell, StaleGrantDiscountsUsableCapacity) {
  const ProblemInstance inst(clusters::small_lab());
  DecisionAuditLog audit;
  CellControllerOptions opts = stub_cell_opts();
  std::vector<std::vector<double>> seen_peaks;  // per solve, per sub-server
  opts.solver = [&](const ProblemInstance& sub, const JointOptions&) {
    std::vector<double> peaks;
    for (const auto& s : sub.topology().servers()) {
      peaks.push_back(s.compute.peak_flops);
    }
    seen_peaks.push_back(std::move(peaks));
    return stub_offload(sub);
  };
  CellController cc(inst, 0, opts, &audit);
  ControlFabric f(ControlFabricOptions{}, 2, 1);
  const double bw = inst.topology().cell(0).bandwidth;
  const std::vector<bool> alive = {true, true};
  std::vector<double> full;
  for (const auto& s : inst.topology().servers()) {
    full.push_back(s.compute.peak_flops);
  }

  // Single-cell topology: the assumed split grants the full servers.
  cc.tick(0.0, bw, alive, f);
  ASSERT_EQ(seen_peaks.size(), 1u);
  ASSERT_EQ(seen_peaks[0].size(), 2u);
  EXPECT_DOUBLE_EQ(seen_peaks[0][0], full[0]);
  EXPECT_DOUBLE_EQ(seen_peaks[0][1], full[1]);

  // Past fresh_for the grant goes stale: the cell keeps operating but only
  // trusts stale_discount of the granted capacity.
  cc.tick(6.0, bw, alive, f);
  EXPECT_TRUE(cc.stale());
  EXPECT_EQ(cc.stale_transitions(), 1u);
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kStalePrice));
  ASSERT_EQ(seen_peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(seen_peaks[1][0], opts.stale_discount * full[0]);
  EXPECT_DOUBLE_EQ(seen_peaks[1][1], opts.stale_discount * full[1]);

  // A fresh grant clears the staleness and restores the full slice.
  CtrlMessage g;
  g.type = CtrlMsgType::kSliceGrant;
  g.from = 0;
  g.to = 1;
  g.epoch = 1;
  g.sent_at = 6.5;
  g.payload = {1.0, 1.0};
  cc.receive(g, 6.5);
  EXPECT_FALSE(cc.stale());
  cc.tick(7.0, bw, alive, f);
  ASSERT_EQ(seen_peaks.size(), 3u);
  EXPECT_DOUBLE_EQ(seen_peaks[2][0], full[0]);
  EXPECT_DOUBLE_EQ(seen_peaks[2][1], full[1]);
}

TEST(CtrlCell, HeartbeatOnAdoptedEpochKeepsPricesFresh) {
  // A converged coordinator stops granting; its heartbeats (same epoch)
  // must re-anchor freshness, or every cell would drift into a permanent
  // stale discount on a perfectly healthy fabric.
  const ProblemInstance inst(clusters::small_lab());
  DecisionAuditLog audit;
  CellController cc(inst, 0, stub_cell_opts(), &audit);
  ControlFabric f(ControlFabricOptions{}, 2, 1);
  const double bw = inst.topology().cell(0).bandwidth;
  const std::vector<bool> alive = {true, true};

  CtrlMessage g;
  g.type = CtrlMsgType::kSliceGrant;
  g.from = 0;
  g.to = 1;
  g.epoch = 1;
  g.sent_at = 0.0;
  g.payload = {1.0, 1.0};
  cc.receive(g, 0.0);
  cc.tick(0.0, bw, alive, f);

  CtrlMessage hb;
  hb.type = CtrlMsgType::kHeartbeat;
  hb.from = 0;
  hb.to = 1;
  hb.epoch = 1;  // same epoch: the slice matrix has not moved
  hb.sent_at = 4.0;
  cc.receive(hb, 4.0);
  cc.tick(6.0, bw, alive, f);
  EXPECT_FALSE(cc.stale()) << "heartbeat on the adopted epoch must refresh";
  EXPECT_EQ(cc.stale_transitions(), 0u);

  // A heartbeat announcing a NEWER epoch means we missed a grant — it must
  // NOT refresh, and silence past fresh_for from the last anchor goes
  // stale as usual.
  CtrlMessage ahead = hb;
  ahead.epoch = 2;
  ahead.sent_at = 7.0;
  cc.receive(ahead, 7.0);
  cc.tick(10.0, bw, alive, f);
  EXPECT_TRUE(cc.stale());
  EXPECT_EQ(cc.stale_transitions(), 1u);
}

TEST(CtrlCell, CrashRestartReplaysTheStateLog) {
  const ProblemInstance inst(clusters::small_lab());
  DecisionAuditLog audit;
  CellController cc(inst, 0, stub_cell_opts(), &audit);
  ControlFabric f(ControlFabricOptions{}, 2, 1);
  const double bw = inst.topology().cell(0).bandwidth;
  const std::vector<bool> alive = {true, true};

  CtrlMessage g;
  g.type = CtrlMsgType::kSliceGrant;
  g.from = 0;
  g.to = 1;
  g.epoch = 3;
  g.sent_at = 0.0;
  g.payload = {0.8, 0.8};
  cc.receive(g, 0.0);
  cc.tick(0.0, bw, alive, f);
  ASSERT_TRUE(cc.has_plan());
  const std::vector<DeviceDecision> before = cc.local();

  cc.crash();
  EXPECT_FALSE(cc.has_plan());
  EXPECT_EQ(cc.adopted_epoch(), 0u);

  cc.restart(4.0);
  EXPECT_EQ(cc.restarts(), 1u);
  EXPECT_EQ(cc.adopted_epoch(), 3u);
  ASSERT_TRUE(cc.has_plan());
  ASSERT_EQ(cc.local().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(cc.local()[i].server, before[i].server);
    EXPECT_EQ(cc.local()[i].compute_share, before[i].compute_share);
  }
  bool replay_audited = false;
  for (const auto& r : audit.records()) {
    if (r.cause == AuditCause::kFailover &&
        r.detail.find("replayed epoch 3") != std::string::npos) {
      replay_audited = true;
    }
  }
  EXPECT_TRUE(replay_audited);

  // Same conditions, still-fresh replayed grant: the restarted controller
  // resumes the replayed plan without a re-solve.
  const std::uint64_t solves = cc.local_solves();
  EXPECT_FALSE(cc.tick(4.0, bw, alive, f));
  EXPECT_EQ(cc.local_solves(), solves);
}

TEST(CtrlCell, NoUsableServerDegradesToDeviceOnlyAndRecovers) {
  const ProblemInstance inst(clusters::small_lab());
  DecisionAuditLog audit;
  CellController cc(inst, 0, stub_cell_opts(), &audit);
  ControlFabric f(ControlFabricOptions{}, 2, 1);
  const double bw = inst.topology().cell(0).bandwidth;

  EXPECT_TRUE(cc.tick(0.0, bw, {false, false}, f));
  ASSERT_TRUE(cc.has_plan());
  for (const auto& dd : cc.local()) EXPECT_TRUE(dd.plan.device_only);

  // Servers coming back is a liveness flip: the cell re-solves and offloads
  // again without waiting for any coordinator input.
  EXPECT_TRUE(cc.tick(1.0, bw, {true, true}, f));
  bool any_offload = false;
  for (const auto& dd : cc.local()) any_offload |= !dd.plan.device_only;
  EXPECT_TRUE(any_offload);
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kFailover));
}

// --- plane ----------------------------------------------------------------

TEST(CtrlPlane, ConvergesOnCleanFabric) {
  const ClusterTopology topo = four_cell_campus();
  DistributedPlaneOptions po;
  po.cell = stub_cell_opts();
  DistributedControlPlane plane(topo, po);

  bool got_plan = false;
  for (int t = 0; t <= 10; ++t) {
    const ControlAction a = plane.tick(observe_all_up(t, topo));
    got_plan |= a.decision.has_value();
  }
  EXPECT_TRUE(got_plan);
  EXPECT_TRUE(plane.converged());
  EXPECT_GE(plane.coordinator().epoch(), 1u);
  EXPECT_EQ(plane.dead_letters(), 0u);
  EXPECT_EQ(plane.fabric().dropped(), 0u);
  EXPECT_EQ(plane.cell_fallbacks(), 0u);
  // Every cell adopted the final epoch and offloads its members.
  for (const auto& cell : plane.cells()) {
    EXPECT_EQ(cell.adopted_epoch(), plane.coordinator().epoch());
    ASSERT_TRUE(cell.has_plan());
  }
  std::size_t offloaded = 0;
  for (const auto& dd : plane.merged().per_device) {
    if (!dd.plan.device_only) {
      ++offloaded;
      EXPECT_GT(dd.compute_share, 0.0);
      EXPECT_GT(dd.bandwidth, 0.0);
    }
  }
  EXPECT_GT(offloaded, 0u);
}

TEST(CtrlPlane, CoordinatorOutageFallsBackToAutonomyThenRejoins) {
  const ClusterTopology topo = four_cell_campus();
  DistributedPlaneOptions po;
  po.cell = stub_cell_opts();
  po.controller_faults = FaultSchedule::server_crash(0, 3.0, 10.0);
  DistributedControlPlane plane(topo, po);

  for (int t = 0; t <= 20; ++t) {
    // Mid-outage uplink drop: cells must re-plan on their own (validated
    // local autonomy), not block on the dead coordinator.
    const double scale = (t >= 7 && t < 12) ? 0.5 : 1.0;
    plane.tick(observe_all_up(t, topo, scale));
  }
  EXPECT_EQ(plane.coordinator_crashes(), 1u);
  EXPECT_EQ(plane.coordinator_losses(), plane.cells().size());
  EXPECT_GE(plane.rejoins(), plane.cells().size());
  const auto& audit = plane.audit_log();
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kCoordinatorLost));
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kLocalAutonomy));
  EXPECT_TRUE(audit_has_cause(audit, AuditCause::kRejoin));
  // After the restart the replayed coordinator re-announces itself and the
  // plane settles again.
  EXPECT_TRUE(plane.converged());
  EXPECT_EQ(plane.cell_fallbacks(), 0u);
}

TEST(CtrlPlane, CellControllerCrashReplaysItsLogAndCatchesUp) {
  const ClusterTopology topo = four_cell_campus();
  DistributedPlaneOptions po;
  po.cell = stub_cell_opts();
  po.controller_faults = FaultSchedule::server_crash(2, 2.0, 5.0);  // cell 1
  DistributedControlPlane plane(topo, po);

  for (int t = 0; t <= 10; ++t) plane.tick(observe_all_up(t, topo));
  EXPECT_EQ(plane.controller_crashes(), 1u);
  EXPECT_EQ(plane.cells()[1].restarts(), 1u);
  EXPECT_GE(plane.dead_letters(), 1u);  // heartbeats sent into the outage
  // The restarted controller replayed its own log: same epoch as the
  // coordinator without needing a fresh grant.
  EXPECT_EQ(plane.cells()[1].adopted_epoch(), plane.coordinator().epoch());
  EXPECT_TRUE(plane.converged());
}

TEST(CtrlPlane, ImpairedFabricAndChurnReplayBitIdentically) {
  // The whole plane — lossy reordering fabric, coordinator outage, stale
  // grants, epoch rejections — must be a pure function of (options, seed,
  // observation sequence). Two instances, same inputs: identical audit
  // trail and counters.
  const ClusterTopology topo = four_cell_campus();
  DistributedPlaneOptions po;
  po.cell = stub_cell_opts();
  po.fabric.delay = 0.3;
  po.fabric.jitter = 1.5;  // > the 1 s cadence: reorders grants
  po.fabric.drop_prob = 0.2;
  po.seed = 99;
  po.controller_faults = FaultSchedule::server_crash(0, 4.0, 8.0);

  auto run = [&](DistributedControlPlane& plane) {
    for (int t = 0; t <= 25; ++t) {
      const double scale = (t % 5 == 3) ? 0.6 : 1.0;
      plane.tick(observe_all_up(t, topo, scale));
    }
  };
  DistributedControlPlane a(topo, po);
  DistributedControlPlane b(topo, po);
  run(a);
  run(b);

  EXPECT_GT(a.fabric().dropped(), 0u);
  EXPECT_EQ(a.fabric().sent(), b.fabric().sent());
  EXPECT_EQ(a.fabric().dropped(), b.fabric().dropped());
  EXPECT_EQ(a.fabric().delivered(), b.fabric().delivered());
  EXPECT_EQ(a.plan_changes(), b.plan_changes());
  EXPECT_EQ(a.local_solves(), b.local_solves());
  EXPECT_EQ(a.epochs_rejected(), b.epochs_rejected());
  EXPECT_EQ(a.stale_events(), b.stale_events());
  EXPECT_EQ(a.dead_letters(), b.dead_letters());
  EXPECT_EQ(a.coordinator_losses(), b.coordinator_losses());
  EXPECT_EQ(a.rejoins(), b.rejoins());
  EXPECT_EQ(a.audit_log().to_json().dump_pretty(),
            b.audit_log().to_json().dump_pretty());
}

TEST(CtrlSpans, LossyFabricSpanStreamReconcilesAndChainsCausally) {
  // Same churn scenario as the replay test, with span tracing on: the span
  // stream must obey the send conservation law, agree with the fabric's own
  // counters, and chain re-grants causally (a kRegrant reuses the original
  // grant's correlation id, so the mint is findable on the same id).
  const ClusterTopology topo = four_cell_campus();
  DistributedPlaneOptions po;
  po.cell = stub_cell_opts();
  po.fabric.delay = 0.3;
  po.fabric.jitter = 1.5;
  po.fabric.drop_prob = 0.2;
  po.seed = 99;
  po.controller_faults = FaultSchedule::server_crash(0, 4.0, 8.0);
  po.span_capacity = 1u << 16;
  DistributedControlPlane plane(topo, po);
  // Tracing must be purely observational: an untraced twin on the same
  // inputs replays bit-identically.
  DistributedPlaneOptions po_untraced = po;
  po_untraced.span_capacity = 0;
  DistributedControlPlane untraced(topo, po_untraced);

  for (int t = 0; t <= 25; ++t) {
    const double scale = (t % 5 == 3) ? 0.6 : 1.0;
    plane.tick(observe_all_up(t, topo, scale));
    untraced.tick(observe_all_up(t, topo, scale));
  }

  const auto spans = plane.ctrl_trace().snapshot();
  EXPECT_EQ(plane.ctrl_trace().dropped(), 0u);  // ring sized for the run
  const auto counts = ctrl_span_counts(spans);
  const auto count = [&](CtrlSpanEvent e) {
    return static_cast<std::uint64_t>(counts[static_cast<std::size_t>(e)]);
  };

  // The scenario actually exercised loss and recovery, not a quiet fabric.
  EXPECT_GT(count(CtrlSpanEvent::kDropped), 0u);
  EXPECT_GT(count(CtrlSpanEvent::kRegrant), 0u);
  EXPECT_GT(count(CtrlSpanEvent::kAdopted), 0u);

  // Span stream vs the fabric's own counters, exactly.
  EXPECT_EQ(count(CtrlSpanEvent::kSent), plane.fabric().sent());
  EXPECT_EQ(count(CtrlSpanEvent::kDropped), plane.fabric().dropped());
  EXPECT_EQ(count(CtrlSpanEvent::kDelivered), plane.fabric().delivered());
  // Conservation: every send ends in exactly one fabric outcome. The
  // routing-side dead letters (recipient down at delivery) annotate spans
  // that already counted as delivered, so they sit outside the identity.
  EXPECT_EQ(count(CtrlSpanEvent::kSent),
            count(CtrlSpanEvent::kDropped) +
                count(CtrlSpanEvent::kDelivered) +
                plane.fabric().dropped_dead() + plane.fabric().in_flight());
  EXPECT_EQ(count(CtrlSpanEvent::kDeadLetter),
            plane.fabric().dropped_dead() + plane.dead_letters());

  // Causality: every re-grant's correlation id traces back to an earlier
  // kSent (the original mint), never out of thin air.
  for (const auto& sp : spans) {
    if (sp.event != CtrlSpanEvent::kRegrant) continue;
    bool minted = false;
    for (const auto& prior : spans) {
      if (prior.corr == sp.corr && prior.event == CtrlSpanEvent::kSent &&
          prior.time <= sp.time) {
        minted = true;
        break;
      }
    }
    EXPECT_TRUE(minted) << "regrant corr " << sp.corr << " has no mint";
  }

  // The traced plane's trajectory is bit-identical to the untraced twin's.
  EXPECT_EQ(plane.fabric().sent(), untraced.fabric().sent());
  EXPECT_EQ(plane.fabric().dropped(), untraced.fabric().dropped());
  EXPECT_EQ(plane.plan_changes(), untraced.plan_changes());
  EXPECT_EQ(plane.audit_log().to_json().dump_pretty(),
            untraced.audit_log().to_json().dump_pretty());
}

TEST(CtrlPlane, PublishedMetricsReconcileWithPlaneCounters) {
  const ClusterTopology topo = four_cell_campus();
  DistributedPlaneOptions po;
  po.cell = stub_cell_opts();
  po.fabric.delay = 0.3;
  po.fabric.jitter = 1.5;
  po.fabric.drop_prob = 0.2;
  po.seed = 99;
  po.span_capacity = 1u << 12;
  DistributedControlPlane plane(topo, po);
  for (int t = 0; t <= 15; ++t) plane.tick(observe_all_up(t, topo));

  MetricsRegistry reg;
  plane.publish_metrics(reg);

  // Every published ctrl.* value equals the plane's own accessor.
  EXPECT_EQ(reg.counter("ctrl.msg.sent").value(), plane.fabric().sent());
  EXPECT_EQ(reg.counter("ctrl.msg.delivered").value(),
            plane.fabric().delivered());
  EXPECT_EQ(reg.counter("ctrl.msg.dropped").value(),
            plane.fabric().dropped());
  EXPECT_EQ(reg.counter("ctrl.msg.dropped_dead").value(),
            plane.fabric().dropped_dead());
  EXPECT_EQ(reg.counter("ctrl.dead_letters").value(), plane.dead_letters());
  EXPECT_EQ(reg.counter("ctrl.epochs_minted").value(),
            plane.coordinator().epoch());
  EXPECT_EQ(reg.counter("ctrl.regrants").value(),
            plane.coordinator().regrants());
  EXPECT_EQ(reg.counter("ctrl.ticks").value(), plane.ticks());
  EXPECT_EQ(reg.counter("ctrl.plan_changes").value(), plane.plan_changes());
  EXPECT_EQ(reg.counter("ctrl.spans.recorded").value(),
            plane.ctrl_trace().recorded());
  EXPECT_DOUBLE_EQ(reg.gauge("ctrl.in_flight").value(),
                   static_cast<double>(plane.fabric().in_flight()));
  EXPECT_DOUBLE_EQ(reg.gauge("ctrl.converged").value(),
                   plane.converged() ? 1.0 : 0.0);

  // The registry view alone closes the conservation identity — what the
  // validate-trace CLI check relies on.
  EXPECT_EQ(reg.counter("ctrl.msg.sent").value(),
            reg.counter("ctrl.msg.dropped").value() +
                reg.counter("ctrl.msg.delivered").value() +
                reg.counter("ctrl.msg.dropped_dead").value() +
                static_cast<std::uint64_t>(
                    reg.gauge("ctrl.in_flight").value()));
}

}  // namespace
}  // namespace scalpel
