#include "surgery/difficulty.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "surgery/exit_policy.hpp"
#include "surgery/exit_setting.hpp"
#include "surgery/plan.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

TEST(Difficulty, UniformIsIdentity) {
  const DifficultyModel u;
  EXPECT_TRUE(u.is_uniform());
  for (double x : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(u.cdf(x), x);
  }
  EXPECT_DOUBLE_EQ(u.quantile(0.3), 0.3);
}

TEST(Difficulty, CdfIsMonotoneAndNormalized) {
  for (const char* preset : {"easy_heavy", "hard_heavy", "bimodal_easy"}) {
    const auto m = DifficultyModel::preset(preset);
    double prev = -1.0;
    for (double x = 0.0; x <= 1.0; x += 0.01) {
      const double f = m.cdf(x);
      ASSERT_GE(f, prev) << preset;
      ASSERT_GE(f, 0.0);
      ASSERT_LE(f, 1.0);
      prev = f;
    }
    EXPECT_NEAR(m.cdf(0.0), 0.0, 1e-12);
    EXPECT_NEAR(m.cdf(1.0), 1.0, 1e-12);
  }
}

TEST(Difficulty, QuantileInvertsCdf) {
  const auto m = DifficultyModel::preset("easy_heavy");
  for (double u = 0.05; u < 1.0; u += 0.05) {
    EXPECT_NEAR(m.cdf(m.quantile(u)), u, 1e-9);
  }
}

TEST(Difficulty, EasyHeavyPutsMassLow) {
  const auto easy = DifficultyModel::preset("easy_heavy");
  const auto hard = DifficultyModel::preset("hard_heavy");
  EXPECT_GT(easy.cdf(0.3), 0.3);   // more than uniform mass below 0.3
  EXPECT_LT(hard.cdf(0.3), 0.3);
}

TEST(Difficulty, SamplesFollowCdf) {
  const auto m = DifficultyModel::preset("easy_heavy");
  Rng rng(3);
  const int n = 100000;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    const double x = m.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    if (x <= 0.4) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, m.cdf(0.4), 0.01);
}

TEST(Difficulty, ValidatesInputs) {
  EXPECT_THROW(DifficultyModel(0.0, 1.0), ContractViolation);
  EXPECT_THROW(DifficultyModel(1.0, -2.0), ContractViolation);
  EXPECT_THROW(DifficultyModel::preset("nope"), ContractViolation);
  const DifficultyModel m;
  EXPECT_THROW(m.cdf(1.5), ContractViolation);
  EXPECT_THROW(m.quantile(1.0), ContractViolation);
}

struct Fixture {
  Graph g = models::tiny_cnn();
  std::vector<ExitCandidate> cands;
  AccuracyModel acc = AccuracyModel::for_model("tiny_cnn");
  Fixture() {
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    opts.min_spacing = 0.0;
    cands = find_exit_candidates(g, opts);
  }
};

TEST(Difficulty, EasyWorkloadFiresExitsMore) {
  Fixture f;
  ExitPolicy p;
  p.exits = {{0, 0.2}};
  const auto uniform = evaluate_policy(f.g, f.cands, p, f.acc);
  const auto easy = evaluate_policy(f.g, f.cands, p, f.acc,
                                    DifficultyModel::preset("easy_heavy"));
  const auto hard = evaluate_policy(f.g, f.cands, p, f.acc,
                                    DifficultyModel::preset("hard_heavy"));
  EXPECT_GT(easy.fire_prob[0], uniform.fire_prob[0]);
  EXPECT_LT(hard.fire_prob[0], uniform.fire_prob[0]);
  // Probabilities still form a distribution.
  EXPECT_NEAR(easy.fire_prob[0] + easy.final_prob, 1.0, 1e-12);
}

TEST(Difficulty, PlanModelMassesMatchSampledPhases) {
  Fixture f;
  SurgeryPlan plan;
  plan.policy.exits = {{0, 0.2}};
  plan.partition_after = f.cands[0].attach;
  const auto diff = DifficultyModel::preset("easy_heavy");
  const PlanModel pm(f.g, f.cands, plan, f.acc, profiles::raspberry_pi4(),
                     profiles::edge_gpu_t4(), LinkSpec{mbps(20.0), ms(1.0)},
                     diff);
  // Monte Carlo through quantile sampling must match the analytic masses.
  Rng rng(9);
  const int n = 200000;
  double off = 0.0;
  double acc_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto ph = pm.phases_for(diff.sample(rng));
    off += ph.offloaded ? 1.0 : 0.0;
    acc_sum += ph.correct_prob;
  }
  EXPECT_NEAR(off / n, pm.breakdown().offload_prob, 0.005);
  EXPECT_NEAR(acc_sum / n, pm.breakdown().expected_accuracy, 0.005);
}

TEST(Difficulty, ExitSettingAdaptsToWorkloadMix) {
  Fixture f;
  ExitSettingOptions easy_opts;
  easy_opts.min_accuracy = 0.70;
  easy_opts.difficulty = DifficultyModel::preset("easy_heavy");
  ExitSettingOptions hard_opts = easy_opts;
  hard_opts.difficulty = DifficultyModel::preset("hard_heavy");
  const auto device = profiles::raspberry_pi4();
  const auto easy = dp_exit_setting(f.g, f.cands, f.acc, device, easy_opts);
  const auto hard = dp_exit_setting(f.g, f.cands, f.acc, device, hard_opts);
  ASSERT_TRUE(easy.feasible && hard.feasible);
  // Easy-dominated traffic benefits more from exits: lower expected latency
  // at the same accuracy floor.
  EXPECT_LT(easy.expected_latency, hard.expected_latency);
}

}  // namespace
}  // namespace scalpel
