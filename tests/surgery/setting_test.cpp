#include "surgery/exit_setting.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "profile/compute_profile.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

struct Fixture {
  Graph g;
  std::vector<ExitCandidate> cands;
  AccuracyModel acc;
  ComputeProfile profile = profiles::raspberry_pi4();

  explicit Fixture(const std::string& model = "tiny_cnn",
                   std::size_t max_cands = 4) {
    g = models::by_name(model);
    acc = AccuracyModel::for_model(model);
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    opts.min_spacing = 0.0;
    opts.max_candidates = max_cands;
    cands = find_exit_candidates(g, opts);
  }
};

ExitSettingOptions small_opts(double min_accuracy) {
  ExitSettingOptions o;
  o.min_accuracy = min_accuracy;
  o.theta_grid = {0.0, 0.3, 0.6};
  o.max_exits = 3;
  o.coverage_bins = 200;
  return o;
}

TEST(ExitSetting, ExhaustiveFindsFeasibleImprovement) {
  Fixture f;
  const auto opts = small_opts(0.70);
  const auto r = exhaustive_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.stats.expected_accuracy, opts.min_accuracy - 1e-9);
  // Exits must help on a compute-bound device.
  const auto vanilla = evaluate_policy(f.g, f.cands, {}, f.acc);
  const double vanilla_latency = expected_policy_latency(
      f.g, f.cands, {}, vanilla, f.profile);
  EXPECT_LE(r.expected_latency, vanilla_latency + 1e-12);
}

TEST(ExitSetting, DpMatchesExhaustiveWithinTolerance) {
  for (const char* model : {"tiny_cnn", "lenet5"}) {
    Fixture f(model);
    for (double floor : {0.0, 0.60, 0.75}) {
      const auto opts = small_opts(floor);
      const auto ex =
          exhaustive_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
      const auto dp = dp_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
      ASSERT_EQ(ex.feasible, dp.feasible) << model << " floor " << floor;
      if (!ex.feasible) continue;
      // DP is near-optimal up to coverage discretization.
      EXPECT_LE(dp.expected_latency, ex.expected_latency * 1.05 + 1e-9)
          << model << " floor " << floor;
      EXPECT_GE(dp.stats.expected_accuracy, floor - 1e-9);
    }
  }
}

TEST(ExitSetting, GreedyIsFeasibleAndNeverWorseThanVanilla) {
  Fixture f("tiny_cnn", 6);
  const auto opts = small_opts(0.70);
  const auto r = greedy_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.stats.expected_accuracy, opts.min_accuracy - 1e-9);
  const auto vanilla = evaluate_policy(f.g, f.cands, {}, f.acc);
  EXPECT_LE(r.expected_latency,
            expected_policy_latency(f.g, f.cands, {}, vanilla, f.profile) +
                1e-12);
}

TEST(ExitSetting, GreedyNeverBeatsExhaustive) {
  Fixture f;
  const auto opts = small_opts(0.65);
  const auto ex = exhaustive_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
  const auto gr = greedy_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
  ASSERT_TRUE(ex.feasible && gr.feasible);
  EXPECT_GE(gr.expected_latency, ex.expected_latency - 1e-12);
}

TEST(ExitSetting, InfeasibleFloorReported) {
  Fixture f;
  // tiny_cnn a_max = 0.80; a floor above it is unsatisfiable.
  const auto opts = small_opts(0.90);
  EXPECT_FALSE(
      exhaustive_exit_setting(f.g, f.cands, f.acc, f.profile, opts).feasible);
  EXPECT_FALSE(
      dp_exit_setting(f.g, f.cands, f.acc, f.profile, opts).feasible);
  EXPECT_FALSE(
      greedy_exit_setting(f.g, f.cands, f.acc, f.profile, opts).feasible);
}

TEST(ExitSetting, TighterFloorCostsLatency) {
  Fixture f;
  const auto loose = dp_exit_setting(f.g, f.cands, f.acc, f.profile,
                                     small_opts(0.0));
  const auto tight = dp_exit_setting(f.g, f.cands, f.acc, f.profile,
                                     small_opts(0.78));
  ASSERT_TRUE(loose.feasible && tight.feasible);
  EXPECT_LE(loose.expected_latency, tight.expected_latency + 1e-12);
}

TEST(ExitSetting, MaxExitsHonored) {
  Fixture f("tiny_cnn", 6);
  auto opts = small_opts(0.0);
  opts.max_exits = 1;
  const auto r = dp_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.policy.exits.size(), 1u);
}

TEST(ExitSetting, DpScalesBetterThanExhaustive) {
  Fixture f("mobilenet_v1", 8);
  ASSERT_GE(f.cands.size(), 6u);
  // In the regime the DP targets (several exits, fine threshold grid) the
  // exhaustive subset x grid enumeration is combinatorial while the DP stays
  // ~linear in candidates x bins.
  ExitSettingOptions opts;
  opts.min_accuracy = 0.60;
  opts.theta_grid = {0.0, 0.15, 0.30, 0.45, 0.60};
  opts.max_exits = 4;
  opts.coverage_bins = 80;
  const auto dp = dp_exit_setting(f.g, f.cands, f.acc, f.profile, opts);
  const auto ex = exhaustive_exit_setting(f.g, f.cands, f.acc, f.profile,
                                          opts);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(ex.feasible);
  EXPECT_LT(dp.evaluations, ex.evaluations);
  // And it stays near-optimal.
  EXPECT_LE(dp.expected_latency, ex.expected_latency * 1.05 + 1e-9);
}

TEST(ExitSetting, CostTableDpHandlesUniformCosts) {
  Fixture f;
  ExitCostTable costs;
  costs.segment.assign(f.cands.size(), 1.0);
  costs.head.assign(f.cands.size(), 0.1);
  costs.tail = 1.0;
  const auto opts = small_opts(0.0);
  const auto r = dp_exit_setting_costs(f.g, f.cands, f.acc, costs, opts);
  ASSERT_TRUE(r.feasible);
  // With exits nearly free and no accuracy floor, enabling exits must beat
  // running everything.
  const double no_exit_cost =
      static_cast<double>(f.cands.size()) * 1.0 + 1.0;
  EXPECT_LT(r.expected_latency, no_exit_cost);
}

TEST(ExitSetting, PolicyCostAgreesWithStatsIntegration) {
  Fixture f;
  ExitCostTable costs;
  costs.segment.assign(f.cands.size(), 2.0);
  costs.head.assign(f.cands.size(), 0.5);
  costs.tail = 3.0;
  ExitPolicy p;
  p.exits = {{0, 0.2}};
  if (f.cands.size() > 2) p.exits.push_back({2, 0.4});
  const auto stats = evaluate_policy(f.g, f.cands, p, f.acc);
  // Manual: every candidate segment paid by reach at that point.
  double manual = 0.0;
  double reach = 1.0;
  std::size_t next = 0;
  for (std::size_t c = 0; c < f.cands.size(); ++c) {
    manual += reach * 2.0;
    if (next < p.exits.size() && p.exits[next].candidate == c) {
      manual += reach * 0.5;
      reach -= stats.fire_prob[next];
      ++next;
    }
  }
  manual += reach * 3.0;
  EXPECT_NEAR(policy_cost(f.cands, p, stats, costs), manual, 1e-12);
}

}  // namespace
}  // namespace scalpel
