#include "surgery/exit_policy.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "profile/compute_profile.hpp"
#include "profile/latency_model.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

struct Fixture {
  Graph g = models::tiny_cnn();
  std::vector<ExitCandidate> cands;
  AccuracyModel acc = AccuracyModel::for_model("tiny_cnn");
  Fixture() {
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    opts.min_spacing = 0.0;
    cands = find_exit_candidates(g, opts);
  }
};

TEST(Policy, EmptyPolicyIsVanillaModel) {
  Fixture f;
  const ExitPolicy p;
  const auto stats = evaluate_policy(f.g, f.cands, p, f.acc);
  EXPECT_EQ(stats.final_prob, 1.0);
  EXPECT_NEAR(stats.expected_accuracy, f.acc.a_max, 1e-12);
  EXPECT_NEAR(stats.expected_flops,
              static_cast<double>(f.g.total_flops()), 1.0);
}

TEST(Policy, ValidationCatchesBadPolicies) {
  Fixture f;
  ASSERT_GE(f.cands.size(), 2u);
  ExitPolicy bad_order;
  bad_order.exits = {{1, 0.1}, {0, 0.1}};
  EXPECT_THROW(validate_policy(bad_order, f.cands), ContractViolation);
  ExitPolicy dup;
  dup.exits = {{0, 0.1}, {0, 0.2}};
  EXPECT_THROW(validate_policy(dup, f.cands), ContractViolation);
  ExitPolicy out_of_range;
  out_of_range.exits = {{f.cands.size(), 0.1}};
  EXPECT_THROW(validate_policy(out_of_range, f.cands), ContractViolation);
  ExitPolicy bad_theta;
  bad_theta.exits = {{0, 1.0}};
  EXPECT_THROW(validate_policy(bad_theta, f.cands), ContractViolation);
}

TEST(Policy, ProbabilitiesFormDistribution) {
  Fixture f;
  ExitPolicy p;
  for (std::size_t i = 0; i < f.cands.size(); ++i) {
    p.exits.push_back({i, 0.2});
  }
  const auto stats = evaluate_policy(f.g, f.cands, p, f.acc);
  double total = stats.final_prob;
  for (double fp : stats.fire_prob) {
    EXPECT_GE(fp, 0.0);
    total += fp;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Reach probabilities decrease monotonically.
  for (std::size_t i = 1; i < stats.reach_prob.size(); ++i) {
    EXPECT_LE(stats.reach_prob[i], stats.reach_prob[i - 1] + 1e-12);
  }
  EXPECT_EQ(stats.reach_prob.front(), 1.0);
}

TEST(Policy, HigherThetaFiresLess) {
  Fixture f;
  ExitPolicy aggressive;
  aggressive.exits = {{0, 0.0}};
  ExitPolicy conservative;
  conservative.exits = {{0, 0.8}};
  const auto a = evaluate_policy(f.g, f.cands, aggressive, f.acc);
  const auto c = evaluate_policy(f.g, f.cands, conservative, f.acc);
  EXPECT_GT(a.fire_prob[0], c.fire_prob[0]);
  EXPECT_LT(a.final_prob, c.final_prob);
}

TEST(Policy, ExitsReduceExpectedFlopsButMayReduceAccuracy) {
  Fixture f;
  ExitPolicy p;
  p.exits = {{0, 0.0}};
  const auto with = evaluate_policy(f.g, f.cands, p, f.acc);
  const auto without = evaluate_policy(f.g, f.cands, {}, f.acc);
  EXPECT_LT(with.expected_flops, without.expected_flops);
  EXPECT_LE(with.expected_accuracy, without.expected_accuracy + 1e-12);
  EXPECT_GT(with.expected_accuracy, 0.0);
}

TEST(Policy, LaterExitCoveredByEarlierFiresOnlyIncrement) {
  Fixture f;
  ASSERT_GE(f.cands.size(), 2u);
  // If the earlier exit is maximally aggressive, the later exit only takes
  // the incremental coverage between the two capabilities.
  ExitPolicy p;
  p.exits = {{0, 0.0}, {1, 0.0}};
  const auto stats = evaluate_policy(f.g, f.cands, p, f.acc);
  const double cap0 = f.acc.capability(f.cands[0].depth_fraction);
  const double cap1 = f.acc.capability(f.cands[1].depth_fraction);
  EXPECT_NEAR(stats.fire_prob[0], cap0, 1e-12);
  EXPECT_NEAR(stats.fire_prob[1], cap1 - cap0, 1e-12);
}

TEST(Policy, LatencyMatchesManualComputation) {
  Fixture f;
  const auto profile = profiles::smartphone();
  ExitPolicy p;
  p.exits = {{0, 0.3}};
  const auto stats = evaluate_policy(f.g, f.cands, p, f.acc);
  const double latency =
      expected_policy_latency(f.g, f.cands, p, stats, profile);
  const auto& cand = f.cands[0];
  const double seg1 =
      LatencyModel::range_latency(f.g, 0, cand.attach, profile);
  const double head = LatencyModel::graph_latency(cand.head, profile);
  const double seg2 =
      LatencyModel::range_latency(f.g, cand.attach, f.g.output(), profile);
  const double manual = (seg1 + head) + stats.final_prob * seg2;
  EXPECT_NEAR(latency, manual, 1e-12);
}

TEST(Policy, ExpectedFlopsAccountForHeadOverhead) {
  Fixture f;
  // A never-firing exit (theta ~ 1) adds pure head overhead.
  ExitPolicy p;
  p.exits = {{0, 0.999999}};
  const auto stats = evaluate_policy(f.g, f.cands, p, f.acc);
  // The residual fire probability of ~1e-6 shaves a few FLOPs off the
  // expectation; bound the tolerance by that mass times the total.
  const double tol =
      2e-6 * static_cast<double>(f.g.total_flops()) + 1.0;
  EXPECT_NEAR(stats.expected_flops,
              static_cast<double>(f.g.total_flops()) +
                  static_cast<double>(f.cands[0].head_flops),
              tol);
}

}  // namespace
}  // namespace scalpel
