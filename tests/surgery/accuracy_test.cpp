#include "surgery/accuracy_model.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace scalpel {
namespace {

TEST(AccuracyModel, FinalDepthHitsAMax) {
  const auto m = AccuracyModel::for_model("resnet18");
  EXPECT_NEAR(m.accuracy_at(1.0), m.a_max, 1e-12);
}

TEST(AccuracyModel, AccuracyMonotoneInDepth) {
  const auto m = AccuracyModel::for_model("vgg16");
  double prev = 0.0;
  for (double d = 0.05; d <= 1.0; d += 0.05) {
    const double a = m.accuracy_at(d);
    EXPECT_GT(a, prev);
    EXPECT_LE(a, m.a_max + 1e-12);
    prev = a;
  }
}

TEST(AccuracyModel, CapabilityMonotoneAndBounded) {
  const auto m = AccuracyModel::for_model("mobilenet_v1");
  double prev = 0.0;
  for (double d = 0.05; d <= 1.0; d += 0.05) {
    const double c = m.capability(d);
    EXPECT_GT(c, prev);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(m.capability(1.0), 1.0, 1e-12);
}

TEST(AccuracyModel, ConditionalAccuracyRisesWithTheta) {
  const auto m = AccuracyModel::for_model("alexnet");
  const double base = m.conditional_accuracy(0.5, 0.0);
  EXPECT_NEAR(base, m.accuracy_at(0.5), 1e-12);
  double prev = base;
  for (double theta = 0.2; theta < 1.0; theta += 0.2) {
    const double a = m.conditional_accuracy(0.5, theta);
    EXPECT_GT(a, prev);
    EXPECT_LE(a, m.selective_ceiling + 1e-12);
    prev = a;
  }
}

TEST(AccuracyModel, DomainChecks) {
  const AccuracyModel m;
  EXPECT_THROW(m.accuracy_at(0.0), ContractViolation);
  EXPECT_THROW(m.accuracy_at(1.5), ContractViolation);
  EXPECT_THROW(m.capability(-0.1), ContractViolation);
  EXPECT_THROW(m.conditional_accuracy(0.5, 1.0), ContractViolation);
  EXPECT_THROW(m.conditional_accuracy(0.5, -0.1), ContractViolation);
}

TEST(AccuracyModel, PerModelCalibrations) {
  EXPECT_NEAR(AccuracyModel::for_model("lenet5").a_max, 0.992, 1e-9);
  EXPECT_NEAR(AccuracyModel::for_model("vgg16").a_max, 0.715, 1e-9);
  EXPECT_NEAR(AccuracyModel::for_model("alexnet").a_max, 0.565, 1e-9);
  // Unknown models get the generic default.
  EXPECT_NEAR(AccuracyModel::for_model("mystery_net").a_max, 0.75, 1e-9);
}

TEST(AccuracyModel, DeeperModelsSaturateSlower) {
  // The saturation shape means early exits on AlexNet-like curves capture
  // relatively more accuracy than the linear interpolation would.
  const auto m = AccuracyModel::for_model("resnet18");
  EXPECT_GT(m.accuracy_at(0.5), 0.5 * m.a_max);
}

}  // namespace
}  // namespace scalpel
