// Zoo-wide property sweeps: every model in the zoo — chains, residual
// blocks, fire modules, inception modules — must satisfy the same surgery
// invariants. These catch graph-topology edge cases that single-model tests
// miss.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/models.hpp"
#include "profile/latency_model.hpp"
#include "surgery/exit_setting.hpp"
#include "surgery/partition.hpp"
#include "surgery/plan.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

class ZooSweepTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    g_ = models::by_name(GetParam());
    acc_ = AccuracyModel::for_model(GetParam());
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    cands_ = find_exit_candidates(g_, opts);
  }
  Graph g_;
  std::vector<ExitCandidate> cands_;
  AccuracyModel acc_;
};

TEST_P(ZooSweepTest, PlanModelMassesIntegrateToOne) {
  if (cands_.empty()) GTEST_SKIP() << "no exit candidates";
  const auto cuts = g_.clean_cuts();
  ASSERT_FALSE(cuts.empty());
  // Mid-depth cut with one mid exit enabled.
  SurgeryPlan plan;
  plan.partition_after = cuts[cuts.size() / 2].after;
  plan.policy.exits = {{cands_.size() / 2, 0.3}};
  const PlanModel pm(g_, cands_, plan, acc_, profiles::raspberry_pi4(),
                     profiles::edge_gpu_t4(), LinkSpec{mbps(30.0), ms(1.0)});
  const auto& b = pm.breakdown();
  EXPECT_GE(b.offload_prob, 0.0);
  EXPECT_LE(b.offload_prob, 1.0 + 1e-12);
  EXPECT_GT(b.expected_latency, 0.0);
  EXPECT_GT(b.expected_accuracy, 0.0);
  EXPECT_LE(b.expected_accuracy, 1.0);
  // Sampled phases agree with the analytic expectations.
  Rng rng(11);
  const int n = 20000;
  double lat = 0.0;
  double off = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto ph = pm.phases_for(rng.uniform());
    const double upload =
        ph.offloaded
            ? transfer_latency(ph.upload_bytes, mbps(30.0), ms(1.0))
            : 0.0;
    lat += ph.device_time + upload + ph.server_time;
    off += ph.offloaded ? 1.0 : 0.0;
  }
  EXPECT_NEAR(lat / n, b.expected_latency, b.expected_latency * 0.02);
  EXPECT_NEAR(off / n, b.offload_prob, 0.02);
}

TEST_P(ZooSweepTest, PartitionOptimalityHoldsOnEveryTopology) {
  const auto device = profiles::smartphone();
  const auto server = profiles::edge_gpu_t4();
  const LinkSpec link{mbps(25.0), ms(2.0)};
  const auto best = optimal_partition(g_, device, server, link);
  for (const auto& c : partition_curve(g_, device, server, link)) {
    ASSERT_LE(best.total(), c.total() + 1e-9);
  }
}

TEST_P(ZooSweepTest, DpExitSettingFeasibleAtRelaxedFloor) {
  if (cands_.empty()) GTEST_SKIP() << "no exit candidates";
  ExitSettingOptions opts;
  opts.min_accuracy = acc_.a_max * 0.9;
  opts.theta_grid = {0.0, 0.3, 0.6};
  opts.coverage_bins = 60;
  const auto r = dp_exit_setting(g_, cands_, acc_, profiles::raspberry_pi4(),
                                 opts);
  ASSERT_TRUE(r.feasible) << GetParam();
  EXPECT_GE(r.stats.expected_accuracy, opts.min_accuracy - 1e-9);
  // Exits must never make the expected latency worse than vanilla.
  const auto vanilla = evaluate_policy(g_, cands_, {}, acc_);
  const double vanilla_latency = expected_policy_latency(
      g_, cands_, {}, vanilla, profiles::raspberry_pi4());
  EXPECT_LE(r.expected_latency, vanilla_latency + 1e-9) << GetParam();
}

TEST_P(ZooSweepTest, SegmentLatenciesTileTheWholeGraph) {
  // Sum of inter-candidate segments + tail equals the whole-graph latency
  // regardless of graph topology.
  if (cands_.empty()) GTEST_SKIP() << "no exit candidates";
  const auto profile = profiles::edge_cpu();
  double total = 0.0;
  NodeId prev = 0;
  for (const auto& c : cands_) {
    total += LatencyModel::range_latency(g_, prev, c.attach, profile);
    prev = c.attach;
  }
  total += LatencyModel::range_latency(g_, prev, g_.output(), profile);
  EXPECT_NEAR(total, LatencyModel::graph_latency(g_, profile),
              LatencyModel::graph_latency(g_, profile) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooSweepTest,
                         ::testing::Values("lenet5", "alexnet", "vgg16",
                                           "vgg19", "resnet18", "resnet34",
                                           "resnet50", "googlenet",
                                           "squeezenet", "mobilenet_v1",
                                           "tiny_yolo", "tiny_cnn"));

}  // namespace
}  // namespace scalpel
