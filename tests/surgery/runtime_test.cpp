#include "surgery/multi_exit_runtime.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

struct Fixture {
  Graph g = models::tiny_cnn();
  std::vector<ExitCandidate> cands;
  Fixture() {
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    opts.min_spacing = 0.0;
    cands = find_exit_candidates(g, opts);
  }
  Tensor input(std::uint64_t seed) const {
    Rng rng(seed);
    return Tensor::randn(g.node(0).out_shape, rng, 0.5f);
  }
};

TEST(MultiExitRuntime, ProbThresholdMapping) {
  EXPECT_DOUBLE_EQ(MultiExitRuntime::prob_threshold(0.0), 0.5);
  EXPECT_DOUBLE_EQ(MultiExitRuntime::prob_threshold(0.8), 0.9);
  EXPECT_THROW(MultiExitRuntime::prob_threshold(1.0), ContractViolation);
}

TEST(MultiExitRuntime, EmptyPolicyMatchesPlainExecutor) {
  Fixture f;
  const MultiExitRuntime me(f.g, f.cands, {}, 42);
  const Executor plain(f.g, 42);
  const auto in = f.input(1);
  const auto r = me.infer(in);
  EXPECT_EQ(r.exit_index, -1);
  EXPECT_EQ(max_abs_diff(r.probs, plain.run(in)), 0.0);
  EXPECT_EQ(r.executed_flops, f.g.total_flops());
}

TEST(MultiExitRuntime, OutputIsAlwaysDistribution) {
  Fixture f;
  ExitPolicy p;
  p.exits = {{0, 0.0}};
  const MultiExitRuntime me(f.g, f.cands, p, 7);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto r = me.infer(f.input(s));
    EXPECT_NEAR(r.probs.sum(), 1.0, 1e-5);
    EXPECT_GE(r.confidence, 0.0);
    EXPECT_LE(r.confidence, 1.0);
  }
}

TEST(MultiExitRuntime, EarlyExitExecutesFewerFlops) {
  Fixture f;
  ExitPolicy aggressive;
  aggressive.exits = {{0, 0.0}};  // threshold 0.5: fires whenever top1 > 0.5
  const MultiExitRuntime me(f.g, f.cands, aggressive, 9);
  const MultiExitRuntime vanilla(f.g, f.cands, {}, 9);
  // At least some inputs should exit early; when they do, executed flops
  // must be strictly fewer than the full path (head is tiny vs the suffix).
  int early = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    const auto in = f.input(s + 100);
    const auto r = me.infer(in);
    if (r.exit_index >= 0) {
      ++early;
      EXPECT_LT(r.executed_flops, f.g.total_flops());
      EXPECT_GE(r.confidence, MultiExitRuntime::prob_threshold(0.0));
    } else {
      EXPECT_GT(r.executed_flops, f.g.total_flops());  // heads are overhead
    }
  }
  // Untrained heads still produce confident outputs on some inputs; if this
  // ever becomes flaky the threshold can be relaxed, but determinism of the
  // seeded weights makes it stable.
  SUCCEED() << early << "/30 exited early";
}

TEST(MultiExitRuntime, NearImpossibleThresholdNeverExitsEarly) {
  Fixture f;
  ExitPolicy p;
  p.exits = {{0, 0.999999}};  // demands ~certainty from a 10-way softmax
  const MultiExitRuntime me(f.g, f.cands, p, 11);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto r = me.infer(f.input(s + 300));
    EXPECT_EQ(r.exit_index, -1);
  }
}

TEST(MultiExitRuntime, DeterministicAcrossRuns) {
  Fixture f;
  ExitPolicy p;
  p.exits = {{0, 0.2}};
  const MultiExitRuntime a(f.g, f.cands, p, 13);
  const MultiExitRuntime b(f.g, f.cands, p, 13);
  const auto in = f.input(5);
  const auto ra = a.infer(in);
  const auto rb = b.infer(in);
  EXPECT_EQ(ra.exit_index, rb.exit_index);
  EXPECT_EQ(max_abs_diff(ra.probs, rb.probs), 0.0);
}

TEST(MultiExitRuntime, ValidatesPolicy) {
  Fixture f;
  ExitPolicy bad;
  bad.exits = {{f.cands.size() + 3, 0.1}};
  EXPECT_THROW(MultiExitRuntime(f.g, f.cands, bad, 1), ContractViolation);
}

TEST(MultiExitRuntime, MultipleExitsEvaluateInDepthOrder) {
  Fixture f;
  ASSERT_GE(f.cands.size(), 2u);
  ExitPolicy p;
  p.exits = {{0, 0.999999}, {1, 0.0}};  // first never fires, second may
  const MultiExitRuntime me(f.g, f.cands, p, 17);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto r = me.infer(f.input(s + 400));
    EXPECT_NE(r.exit_index, 0);  // exit 0's threshold is unreachable
  }
}

}  // namespace
}  // namespace scalpel
