#include "surgery/dot.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "surgery/exit_candidates.hpp"

namespace scalpel {
namespace {

TEST(Dot, PlainGraphContainsAllNodesAndEdges) {
  const auto g = models::tiny_cnn();
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"tiny_cnn\""), std::string::npos);
  // Every node id appears.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos)
        << i;
  }
  // Edge count matches the graph.
  std::size_t edges = 0;
  for (const auto& n : g.nodes()) edges += n.inputs.size();
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, edges);
}

TEST(Dot, PlanHighlightsCutAndExits) {
  const auto g = models::tiny_cnn();
  ExitCandidateOptions opts;
  opts.num_classes = 10;
  const auto cands = find_exit_candidates(g, opts);
  ASSERT_FALSE(cands.empty());
  SurgeryPlan plan;
  plan.partition_after = cands[0].attach;
  plan.policy.exits = {{0, 0.3}};
  const auto dot = to_dot(g, plan, cands);
  EXPECT_NE(dot.find("label=\"cut\""), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

TEST(Dot, DeviceOnlyPlanHasNoCutMarker) {
  const auto g = models::lenet5();
  SurgeryPlan plan;
  plan.device_only = true;
  const auto dot = to_dot(g, plan, {});
  EXPECT_EQ(dot.find("label=\"cut\""), std::string::npos);
}

TEST(Dot, ResidualModelRendersBranchEdges) {
  const auto g = models::resnet18(10, 64);
  const auto dot = to_dot(g);
  // Residual adds have two incoming edges; sanity: at least one node has
  // two distinct predecessors rendered.
  const auto add_id = g.find("b1_add");
  ASSERT_TRUE(add_id.has_value());
  const std::string target = "-> n" + std::to_string(*add_id);
  std::size_t count = 0;
  for (std::size_t pos = dot.find(target); pos != std::string::npos;
       pos = dot.find(target, pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace scalpel
