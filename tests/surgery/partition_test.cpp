#include "surgery/partition.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "nn/models.hpp"
#include "profile/compute_profile.hpp"
#include "profile/latency_model.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

TEST(Partition, CurveCoversAllCutsPlusDeviceOnly) {
  const auto g = models::mobilenet_v1();
  LinkSpec link{mbps(50.0), ms(2.0)};
  const auto curve = partition_curve(g, profiles::raspberry_pi4(),
                                     profiles::edge_gpu_t4(), link);
  EXPECT_EQ(curve.size(), g.clean_cuts().size() + 1);
  EXPECT_TRUE(curve.back().device_only);
  EXPECT_EQ(curve.back().upload_time, 0.0);
  EXPECT_EQ(curve.back().server_time, 0.0);
}

TEST(Partition, OptimalIsCurveMinimum) {
  const auto g = models::vgg16();
  LinkSpec link{mbps(20.0), ms(1.0)};
  const auto device = profiles::smartphone();
  const auto server = profiles::edge_gpu_t4();
  const auto best = optimal_partition(g, device, server, link);
  double min_total = std::numeric_limits<double>::infinity();
  for (const auto& c : partition_curve(g, device, server, link)) {
    min_total = std::min(min_total, c.total());
  }
  EXPECT_NEAR(best.total(), min_total, 1e-12);
}

TEST(Partition, PieceTimingsConsistentWithModels) {
  const auto g = models::alexnet();
  LinkSpec link{mbps(10.0), ms(5.0)};
  const auto device = profiles::raspberry_pi4();
  const auto server = profiles::edge_cpu();
  for (const auto& c : partition_curve(g, device, server, link)) {
    if (c.device_only) {
      EXPECT_NEAR(c.device_time, LatencyModel::graph_latency(g, device),
                  1e-9);
      continue;
    }
    EXPECT_NEAR(c.device_time,
                LatencyModel::range_latency(g, 0, c.cut_after, device) +
                    LatencyModel::layer_latency(g, 0, device),
                1e-9);
    EXPECT_NEAR(c.upload_time,
                transfer_latency(g.node(c.cut_after).out_shape.bytes(),
                                 link.bandwidth, link.rtt),
                1e-9);
    EXPECT_NEAR(c.server_time,
                LatencyModel::range_latency(g, c.cut_after, g.output(),
                                            server),
                1e-9);
  }
}

TEST(Partition, HighBandwidthPushesCutEarlier) {
  // With a huge pipe, offloading early (small device time) wins; with a
  // trickle, the cut moves deep or to device-only.
  const auto g = models::vgg16();
  const auto device = profiles::smartphone();
  const auto server = profiles::edge_gpu_v100();
  const auto fast = optimal_partition(g, device, server,
                                      LinkSpec{gbps(10.0), ms(0.1)});
  const auto slow = optimal_partition(g, device, server,
                                      LinkSpec{mbps(0.5), ms(0.1)});
  const double fast_device_fraction =
      fast.device_only ? 1.0
                       : static_cast<double>(g.prefix_flops(fast.cut_after)) /
                             static_cast<double>(g.total_flops());
  const double slow_device_fraction =
      slow.device_only ? 1.0
                       : static_cast<double>(g.prefix_flops(slow.cut_after)) /
                             static_cast<double>(g.total_flops());
  EXPECT_LT(fast_device_fraction, slow_device_fraction);
}

TEST(Partition, WeakDeviceOffloadsEverythingOnGoodLink) {
  const auto g = models::vgg16();
  const auto best = optimal_partition(g, profiles::iot_camera(),
                                      profiles::edge_gpu_v100(),
                                      LinkSpec{gbps(1.0), ms(0.5)});
  EXPECT_FALSE(best.device_only);
  EXPECT_EQ(best.cut_after, 0);  // raw input upload
}

TEST(Partition, FastDeviceSlowLinkStaysLocal) {
  const auto g = models::tiny_cnn();
  const auto best = optimal_partition(g, profiles::jetson_nano(),
                                      profiles::edge_cpu(),
                                      LinkSpec{mbps(0.1), ms(50.0)});
  EXPECT_TRUE(best.device_only);
}

/// Property: the returned choice beats (or ties) every manually evaluated
/// alternative across random device/server/link draws.
TEST(Partition, OptimalityPropertyUnderRandomConditions) {
  const auto g = models::resnet18();
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    ComputeProfile device = profiles::raspberry_pi4();
    device.peak_flops *= rng.uniform(0.2, 8.0);
    device.mem_bw *= rng.uniform(0.2, 8.0);
    ComputeProfile server = profiles::edge_gpu_t4();
    server.peak_flops *= rng.uniform(0.05, 2.0);
    LinkSpec link{mbps(rng.uniform(1.0, 500.0)), ms(rng.uniform(0.1, 20.0))};
    const auto best = optimal_partition(g, device, server, link);
    for (const auto& c : partition_curve(g, device, server, link)) {
      ASSERT_LE(best.total(), c.total() + 1e-9) << "trial " << trial;
    }
  }
}

TEST(Partition, RequiresPositiveBandwidth) {
  const auto g = models::tiny_cnn();
  EXPECT_THROW(optimal_partition(g, profiles::smartphone(),
                                 profiles::edge_cpu(), LinkSpec{0.0, 0.0}),
               ContractViolation);
}

}  // namespace
}  // namespace scalpel
