#include "surgery/plan.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "profile/compute_profile.hpp"
#include "profile/latency_model.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

struct Fixture {
  Graph g = models::tiny_cnn();
  std::vector<ExitCandidate> cands;
  AccuracyModel acc = AccuracyModel::for_model("tiny_cnn");
  ComputeProfile device = profiles::raspberry_pi4();
  ComputeProfile server = profiles::edge_gpu_t4();
  LinkSpec link{mbps(30.0), ms(2.0)};

  Fixture() {
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    opts.min_spacing = 0.0;
    cands = find_exit_candidates(g, opts);
  }

  PlanModel make(SurgeryPlan plan) const {
    return PlanModel(g, cands, std::move(plan), acc, device, server, link);
  }
};

TEST(PlanModel, DeviceOnlyNeverOffloads) {
  Fixture f;
  SurgeryPlan plan;
  plan.device_only = true;
  const auto pm = f.make(plan);
  EXPECT_EQ(pm.breakdown().offload_prob, 0.0);
  EXPECT_EQ(pm.breakdown().expected_server_time, 0.0);
  EXPECT_EQ(pm.breakdown().upload_bytes, 0);
  EXPECT_NEAR(pm.breakdown().expected_device_time,
              LatencyModel::graph_latency(f.g, f.device), 1e-9);
  EXPECT_NEAR(pm.breakdown().expected_accuracy, f.acc.a_max, 1e-12);
}

TEST(PlanModel, OffloadAllAlwaysOffloads) {
  Fixture f;
  SurgeryPlan plan;
  plan.partition_after = 0;
  const auto pm = f.make(plan);
  EXPECT_NEAR(pm.breakdown().offload_prob, 1.0, 1e-12);
  EXPECT_EQ(pm.breakdown().upload_bytes, f.g.node(0).out_shape.bytes());
  EXPECT_NEAR(pm.breakdown().expected_device_time, 0.0, 1e-12);
}

TEST(PlanModel, RejectsNonCleanCut) {
  // Use resnet18 where block interiors are not clean cuts.
  Graph g = models::resnet18(10, 32);
  ExitCandidateOptions copts;
  copts.num_classes = 10;
  const auto cands = find_exit_candidates(g, copts);
  const auto acc = AccuracyModel::for_model("resnet18");
  SurgeryPlan plan;
  plan.partition_after = *g.find("b1_conv1");
  EXPECT_THROW(PlanModel(g, cands, plan, acc, profiles::smartphone(),
                         profiles::edge_cpu(), LinkSpec{mbps(10.0), 0.0}),
               ContractViolation);
}

TEST(PlanModel, BreakdownMatchesPhaseIntegration) {
  Fixture f;
  ASSERT_GE(f.cands.size(), 2u);
  SurgeryPlan plan;
  plan.policy.exits = {{0, 0.2}, {1, 0.4}};
  plan.partition_after = f.cands[1].attach;
  const auto pm = f.make(plan);
  const auto& b = pm.breakdown();

  const int grid = 200000;
  double device_time = 0.0;
  double server_time = 0.0;
  double off = 0.0;
  double acc_sum = 0.0;
  for (int i = 0; i < grid; ++i) {
    const double x = (i + 0.5) / grid;
    const auto ph = pm.phases_for(x);
    device_time += ph.device_time;
    server_time += ph.server_time;
    off += ph.offloaded ? 1.0 : 0.0;
    acc_sum += ph.correct_prob;
  }
  EXPECT_NEAR(device_time / grid, b.expected_device_time,
              b.expected_device_time * 1e-3 + 1e-9);
  EXPECT_NEAR(server_time / grid, b.expected_server_time,
              b.expected_server_time * 1e-3 + 1e-9);
  EXPECT_NEAR(off / grid, b.offload_prob, 1e-3);
  EXPECT_NEAR(acc_sum / grid, b.expected_accuracy, 1e-3);
}

TEST(PlanModel, SecondMomentsDominateSquaredMeans) {
  Fixture f;
  SurgeryPlan plan;
  plan.policy.exits = {{0, 0.1}};
  plan.partition_after = 0;
  const auto pm = f.make(plan);
  const auto& b = pm.breakdown();
  EXPECT_GE(b.device_time_m2 + 1e-15,
            b.expected_device_time * b.expected_device_time);
  EXPECT_GE(b.server_time_cond_m2 + 1e-15,
            b.server_time_cond_m1 * b.server_time_cond_m1);
}

TEST(PlanModel, ExitBeforeCutStaysLocal) {
  Fixture f;
  ASSERT_GE(f.cands.size(), 2u);
  SurgeryPlan plan;
  plan.policy.exits = {{0, 0.0}};  // aggressive early exit
  plan.partition_after = f.cands[1].attach;  // cut after candidate 1
  const auto pm = f.make(plan);
  // Tasks firing at exit 0 must not be offloaded.
  const auto early = pm.phases_for(0.01);
  EXPECT_EQ(early.exit_index, 0);
  EXPECT_FALSE(early.offloaded);
  EXPECT_EQ(early.upload_bytes, 0);
  // Hard tasks continue past the cut.
  const auto hard = pm.phases_for(0.99);
  EXPECT_EQ(hard.exit_index, -1);
  EXPECT_TRUE(hard.offloaded);
  EXPECT_GT(hard.server_time, 0.0);
}

TEST(PlanModel, ExitAfterCutRunsHeadOnServer) {
  Fixture f;
  ASSERT_GE(f.cands.size(), 2u);
  SurgeryPlan plan;
  plan.policy.exits = {{1, 0.0}};
  plan.partition_after = 0;  // offload before the exit
  const auto pm = f.make(plan);
  const auto ph = pm.phases_for(0.01);
  // The early-exiting task still crossed the network.
  EXPECT_TRUE(ph.offloaded);
  EXPECT_EQ(ph.exit_index, 0);
  EXPECT_GT(ph.server_time, 0.0);
  EXPECT_NEAR(ph.device_time, 0.0, 1e-12);
}

TEST(PlanModel, MoreExitsReduceExpectedLatencyOnWeakDevice) {
  Fixture f;
  f.device = profiles::iot_camera();
  SurgeryPlan vanilla;
  vanilla.device_only = true;
  SurgeryPlan with_exits;
  with_exits.device_only = true;
  with_exits.policy.exits = {{0, 0.0}};
  const auto a = f.make(vanilla);
  const auto b = f.make(with_exits);
  EXPECT_LT(b.breakdown().expected_latency, a.breakdown().expected_latency);
}

TEST(PlanModel, UploadTimeScalesWithBandwidth) {
  Fixture fast;
  Fixture slow;
  slow.link.bandwidth = mbps(1.0);
  SurgeryPlan plan;
  plan.partition_after = 0;
  const auto pf = fast.make(plan);
  const auto ps = slow.make(plan);
  EXPECT_GT(ps.breakdown().expected_upload_time,
            pf.breakdown().expected_upload_time);
}

TEST(PlanModel, PhasesRejectOutOfRangeDifficulty) {
  Fixture f;
  SurgeryPlan plan;
  plan.device_only = true;
  const auto pm = f.make(plan);
  EXPECT_THROW(pm.phases_for(1.0), ContractViolation);
  EXPECT_THROW(pm.phases_for(-0.1), ContractViolation);
}

TEST(PlanModel, FlopExpectationsMatchSides) {
  Fixture f;
  SurgeryPlan plan;
  plan.partition_after = f.cands[0].attach;
  const auto pm = f.make(plan);
  const auto& b = pm.breakdown();
  const double total = b.expected_device_flops + b.expected_server_flops;
  EXPECT_NEAR(total, static_cast<double>(f.g.total_flops()), 1.0);
  EXPECT_NEAR(b.expected_device_flops,
              static_cast<double>(f.g.prefix_flops(plan.partition_after)),
              1.0);
}

}  // namespace
}  // namespace scalpel
