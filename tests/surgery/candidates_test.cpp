#include "surgery/exit_candidates.hpp"

#include "surgery/exit_policy.hpp"

#include <gtest/gtest.h>

#include "nn/executor.hpp"
#include "nn/models.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

TEST(ExitHead, ChwAttachGetsPoolingHead) {
  const auto head = make_exit_head(Shape{64, 8, 8}, 10);
  EXPECT_EQ(head.node(0).out_shape, (Shape{64, 8, 8}));
  EXPECT_EQ(head.node(head.output()).out_shape, (Shape{10}));
  // gavg -> fc -> softmax plus input = 4 nodes.
  EXPECT_EQ(head.size(), 4u);
}

TEST(ExitHead, FlatAttachSkipsPooling) {
  const auto head = make_exit_head(Shape{256}, 10);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(head.node(head.output()).out_shape, (Shape{10}));
}

TEST(ExitHead, RejectsBadInputs) {
  EXPECT_THROW(make_exit_head(Shape{2, 3}, 10), ContractViolation);
  EXPECT_THROW(make_exit_head(Shape{64, 8, 8}, 0), ContractViolation);
}

TEST(ExitHead, ExecutesToDistribution) {
  const auto head = make_exit_head(Shape{16, 4, 4}, 10);
  const Executor ex(head, 5);
  Rng rng(1);
  const auto out = ex.run(Tensor::randn(Shape{16, 4, 4}, rng));
  EXPECT_NEAR(out.sum(), 1.0, 1e-5);
}

class CandidateModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CandidateModelTest, CandidatesAreValidAndOrdered) {
  const auto g = models::by_name(GetParam());
  ExitCandidateOptions opts;
  opts.num_classes = 10;
  const auto cands = find_exit_candidates(g, opts);
  ASSERT_FALSE(cands.empty()) << GetParam();
  double prev_depth = 0.0;
  for (const auto& c : cands) {
    EXPECT_GT(c.depth_fraction, prev_depth);
    EXPECT_LE(c.depth_fraction, opts.max_depth);
    EXPECT_GT(c.head_flops, 0);
    // Head input must match the attach activation.
    EXPECT_EQ(c.head.node(0).out_shape, g.node(c.attach).out_shape);
    prev_depth = c.depth_fraction;
  }
}

TEST_P(CandidateModelTest, CandidatesRespectSpacing) {
  const auto g = models::by_name(GetParam());
  ExitCandidateOptions opts;
  opts.min_spacing = 0.10;
  const auto cands = find_exit_candidates(g, opts);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i].depth_fraction - cands[i - 1].depth_fraction,
              opts.min_spacing - 1e-12);
  }
}

TEST_P(CandidateModelTest, CandidatesAttachAtCleanCuts) {
  const auto g = models::by_name(GetParam());
  const auto cands = find_exit_candidates(g);
  const auto cuts = g.clean_cuts();
  for (const auto& c : cands) {
    const bool found =
        std::any_of(cuts.begin(), cuts.end(), [&](const Graph::CutPoint& p) {
          return p.after == c.attach;
        });
    EXPECT_TRUE(found) << "candidate at non-cut node " << c.attach;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, CandidateModelTest,
                         ::testing::Values("lenet5", "alexnet", "vgg16",
                                           "resnet18", "mobilenet_v1",
                                           "tiny_cnn"));

TEST(ExitHead, ConvStyleCostsMoreAndBoostsAccuracy) {
  const auto g = models::tiny_cnn();
  ExitCandidateOptions light;
  light.num_classes = 10;
  light.min_spacing = 0.0;
  ExitCandidateOptions conv = light;
  conv.head_style = ExitHeadStyle::kConv;
  const auto lc = find_exit_candidates(g, light);
  const auto cc = find_exit_candidates(g, conv);
  ASSERT_EQ(lc.size(), cc.size());
  for (std::size_t i = 0; i < lc.size(); ++i) {
    EXPECT_GT(cc[i].head_flops, lc[i].head_flops);
    EXPECT_GT(cc[i].accuracy_bonus, lc[i].accuracy_bonus);
    EXPECT_EQ(lc[i].accuracy_bonus, 0.0);
  }
}

TEST(ExitHead, ConvStyleExecutesToDistribution) {
  const auto head = make_exit_head(Shape{16, 4, 4}, 10, ExitHeadStyle::kConv);
  const Executor ex(head, 9);
  Rng rng(2);
  const auto out = ex.run(Tensor::randn(Shape{16, 4, 4}, rng));
  EXPECT_NEAR(out.sum(), 1.0, 1e-5);
}

TEST(ExitHead, ConvBonusRaisesPolicyAccuracy) {
  const auto g = models::tiny_cnn();
  const auto acc = AccuracyModel::for_model("tiny_cnn");
  ExitCandidateOptions light;
  light.num_classes = 10;
  light.min_spacing = 0.0;
  ExitCandidateOptions conv = light;
  conv.head_style = ExitHeadStyle::kConv;
  const auto lc = find_exit_candidates(g, light);
  const auto cc = find_exit_candidates(g, conv);
  ExitPolicy p;
  p.exits = {{0, 0.2}};
  const auto sl = evaluate_policy(g, lc, p, acc);
  const auto sc = evaluate_policy(g, cc, p, acc);
  EXPECT_GT(sc.expected_accuracy, sl.expected_accuracy);
}

TEST(Candidates, MaxCandidatesHonored) {
  const auto g = models::vgg16();
  ExitCandidateOptions opts;
  opts.max_candidates = 3;
  opts.min_spacing = 0.0;
  EXPECT_LE(find_exit_candidates(g, opts).size(), 3u);
}

TEST(Candidates, NoCandidateAtZeroDepth) {
  // An exit before any compute is useless; depth must be strictly positive.
  for (const auto& name : models::zoo_names()) {
    for (const auto& c : find_exit_candidates(models::by_name(name))) {
      EXPECT_GT(c.depth_fraction, 0.0) << name;
    }
  }
}

}  // namespace
}  // namespace scalpel
