#include <gtest/gtest.h>

#include <cmath>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "core/serialize.hpp"
#include "edge/builders.hpp"
#include "nn/kernels.hpp"
#include "nn/models.hpp"
#include "surgery/plan.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

TEST(QuantizeKernel, RoundTripErrorBoundedByHalfScale) {
  Rng rng(5);
  const auto t = Tensor::randn(Shape{16, 8, 8}, rng, 2.0f);
  const auto q = kernels::quantize_int8(t);
  const auto back = kernels::dequantize_int8(q);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_LE(max_abs_diff(t, back), q.scale * 0.5 + 1e-6);
}

TEST(QuantizeKernel, PayloadIsQuarterSizePlusScale) {
  Rng rng(6);
  const auto t = Tensor::randn(Shape{64, 4, 4}, rng);
  const auto q = kernels::quantize_int8(t);
  EXPECT_EQ(q.bytes(), t.numel() + 4);
  EXPECT_EQ(q.bytes() * 4, t.shape().bytes() + 16);
}

TEST(QuantizeKernel, ZeroTensorStaysZero) {
  const auto t = Tensor::zeros(Shape{8});
  const auto q = kernels::quantize_int8(t);
  const auto back = kernels::dequantize_int8(q);
  EXPECT_EQ(back.sum(), 0.0);
}

TEST(QuantizeKernel, ExtremesMapToFullRange) {
  Tensor t(Shape{2});
  t.at(0) = 10.0f;
  t.at(1) = -10.0f;
  const auto q = kernels::quantize_int8(t);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -127);
}

struct PlanFixture {
  Graph g = models::tiny_cnn();
  std::vector<ExitCandidate> cands;
  AccuracyModel acc = AccuracyModel::for_model("tiny_cnn");
  PlanFixture() {
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    cands = find_exit_candidates(g, opts);
  }
};

TEST(QuantizedPlan, ShrinksUploadAndCostsAccuracy) {
  PlanFixture f;
  SurgeryPlan plain;
  plain.partition_after = 0;
  SurgeryPlan quant = plain;
  quant.quantize_upload = true;
  const LinkSpec link{mbps(10.0), ms(1.0)};
  const PlanModel pm_plain(f.g, f.cands, plain, f.acc,
                           profiles::raspberry_pi4(), profiles::edge_gpu_t4(),
                           link);
  const PlanModel pm_quant(f.g, f.cands, quant, f.acc,
                           profiles::raspberry_pi4(), profiles::edge_gpu_t4(),
                           link);
  EXPECT_EQ(pm_quant.breakdown().upload_bytes,
            pm_plain.breakdown().upload_bytes / 4 + 4);
  EXPECT_LT(pm_quant.breakdown().expected_upload_time,
            pm_plain.breakdown().expected_upload_time);
  EXPECT_LT(pm_quant.breakdown().expected_accuracy,
            pm_plain.breakdown().expected_accuracy);
  EXPECT_NEAR(pm_quant.breakdown().expected_accuracy,
              pm_plain.breakdown().expected_accuracy - f.acc.int8_penalty,
              1e-9);
}

TEST(QuantizedPlan, DeviceOnlyUnaffected) {
  PlanFixture f;
  SurgeryPlan plan;
  plan.device_only = true;
  plan.quantize_upload = true;  // moot without a cut
  const PlanModel pm(f.g, f.cands, plan, f.acc, profiles::smartphone(),
                     profiles::edge_cpu(), LinkSpec{1.0, 0.0});
  EXPECT_EQ(pm.breakdown().upload_bytes, 0);
  EXPECT_NEAR(pm.breakdown().expected_accuracy, f.acc.a_max, 1e-12);
}

TEST(QuantizedJoint, NeverWorseThanPlainJoint) {
  // Quantization only adds options; with it enabled the optimizer's
  // predicted latency must not regress (same seeds, same everything else).
  const ProblemInstance instance(clusters::small_lab());
  JointOptions plain;
  plain.max_iterations = 3;
  plain.dp_coverage_bins = 50;
  plain.theta_grid = {0.0, 0.3, 0.6};
  JointOptions quant = plain;
  quant.enable_quantized_upload = true;
  const auto d_plain = JointOptimizer(plain).optimize(instance);
  const auto d_quant = JointOptimizer(quant).optimize(instance);
  ASSERT_TRUE(std::isfinite(d_plain.mean_latency));
  EXPECT_LE(d_quant.mean_latency, d_plain.mean_latency * 1.001);
  // Accuracy floors still hold.
  for (const auto& p : d_quant.predicted) {
    EXPECT_TRUE(p.meets_accuracy);
  }
}

TEST(QuantizedPlan, SerializationRoundTrip) {
  SurgeryPlan plan;
  plan.partition_after = 5;
  plan.quantize_upload = true;
  const auto back = serialize::plan_from_json(serialize::to_json(plan));
  EXPECT_TRUE(back.quantize_upload);
  // Legacy documents without the field default to false.
  auto j = serialize::to_json(plan);
  Json stripped = Json::object();
  stripped.set("device_only", Json::boolean(false));
  stripped.set("partition_after", Json::number(5));
  stripped.set("exits", Json::array());
  EXPECT_FALSE(serialize::plan_from_json(stripped).quantize_upload);
}

}  // namespace
}  // namespace scalpel
