#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "profile/compute_profile.hpp"
#include "profile/energy_model.hpp"
#include "profile/latency_model.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

TEST(ComputeProfile, PresetsArePositive) {
  for (const char* name :
       {"iot_camera", "raspberry_pi4", "smartphone", "jetson_nano", "edge_cpu",
        "edge_gpu_t4", "edge_gpu_v100"}) {
    const auto p = profiles::by_name(name);
    EXPECT_GT(p.peak_flops, 0.0) << name;
    EXPECT_GT(p.mem_bw, 0.0) << name;
    EXPECT_GE(p.layer_overhead, 0.0) << name;
    EXPECT_EQ(p.name, name);
  }
}

TEST(ComputeProfile, UnknownPresetThrows) {
  EXPECT_THROW(profiles::by_name("tpu_v9"), ContractViolation);
}

TEST(ComputeProfile, DeviceClassOrdering) {
  EXPECT_LT(profiles::iot_camera().peak_flops,
            profiles::raspberry_pi4().peak_flops);
  EXPECT_LT(profiles::raspberry_pi4().peak_flops,
            profiles::smartphone().peak_flops);
  EXPECT_LT(profiles::smartphone().peak_flops,
            profiles::jetson_nano().peak_flops);
  EXPECT_LT(profiles::edge_cpu().peak_flops,
            profiles::edge_gpu_t4().peak_flops);
  EXPECT_LT(profiles::edge_gpu_t4().peak_flops,
            profiles::edge_gpu_v100().peak_flops);
}

TEST(ComputeProfile, EffectiveFlopsUsesEfficiency) {
  const auto p = profiles::edge_cpu();
  EXPECT_LT(p.effective_flops(LayerKind::kConv), p.peak_flops);
  EXPECT_GT(p.effective_flops(LayerKind::kConv),
            p.effective_flops(LayerKind::kDWConv));
}

TEST(ComputeProfile, ScaledCutsBothRates) {
  const auto p = profiles::edge_gpu_t4();
  const auto half = p.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.peak_flops, p.peak_flops * 0.5);
  EXPECT_DOUBLE_EQ(half.mem_bw, p.mem_bw * 0.5);
  EXPECT_THROW(p.scaled(0.0), ContractViolation);
  EXPECT_THROW(p.scaled(1.5), ContractViolation);
}

TEST(LatencyModel, InputLayerIsFree) {
  const auto g = models::tiny_cnn();
  EXPECT_EQ(LatencyModel::layer_latency(g, 0, profiles::smartphone()), 0.0);
}

TEST(LatencyModel, FasterDeviceIsNeverSlower) {
  const auto g = models::mobilenet_v1();
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    EXPECT_LE(LatencyModel::layer_latency(g, id, profiles::jetson_nano()),
              LatencyModel::layer_latency(g, id, profiles::iot_camera()) +
                  1e-12)
        << "node " << i;
  }
}

class WholeGraphOrderingTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WholeGraphOrderingTest, GraphLatencyDecreasesWithCapability) {
  const auto g = models::by_name(GetParam());
  const double slow = LatencyModel::graph_latency(g, profiles::iot_camera());
  const double mid = LatencyModel::graph_latency(g, profiles::smartphone());
  const double fast =
      LatencyModel::graph_latency(g, profiles::edge_gpu_v100());
  EXPECT_GT(slow, mid);
  EXPECT_GT(mid, fast);
  EXPECT_GT(fast, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, WholeGraphOrderingTest,
                         ::testing::Values("alexnet", "vgg16", "resnet18",
                                           "mobilenet_v1", "tiny_yolo"));

TEST(LatencyModel, PrefixMatchesPerLayerSums) {
  const auto g = models::resnet18();
  const auto profile = profiles::edge_cpu();
  const auto per = LatencyModel::per_layer(g, profile);
  const auto prefix = LatencyModel::prefix(g, profile);
  double acc = 0.0;
  for (std::size_t i = 0; i < per.size(); ++i) {
    acc += per[i];
    ASSERT_NEAR(prefix[i], acc, 1e-12);
  }
  EXPECT_NEAR(prefix.back(), LatencyModel::graph_latency(g, profile), 1e-12);
}

TEST(LatencyModel, RangeLatencyAdditive) {
  const auto g = models::vgg16();
  const auto profile = profiles::smartphone();
  const NodeId mid = 20;
  const double a = LatencyModel::range_latency(g, 0, mid, profile);
  const double b = LatencyModel::range_latency(g, mid, g.output(), profile);
  const double whole =
      LatencyModel::range_latency(g, 0, g.output(), profile);
  EXPECT_NEAR(a + b, whole, 1e-12);
}

TEST(LatencyModel, RooflineMemoryBound) {
  // A memory-starved profile must be limited by bytes, not FLOPs.
  ComputeProfile starved = profiles::edge_cpu();
  starved.mem_bw = 1e6;  // 1 MB/s
  starved.layer_overhead = 0.0;
  const auto g = models::tiny_cnn();
  const auto& node = g.node(1);  // first conv
  const std::int64_t bytes = node.out_shape.bytes() + node.params * 4 +
                             g.node(0).out_shape.bytes();
  const double expect = static_cast<double>(bytes) / starved.mem_bw;
  EXPECT_NEAR(LatencyModel::layer_latency(g, 1, starved), expect, 1e-9);
}

TEST(TransferLatency, LinearInBytesPlusRtt) {
  EXPECT_NEAR(transfer_latency(1'000'000, mbps(8.0), 0.002), 1.0 + 0.002,
              1e-9);
  EXPECT_NEAR(transfer_latency(0, mbps(8.0), 0.002), 0.002, 1e-12);
  EXPECT_THROW(transfer_latency(10, 0.0, 0.0), ContractViolation);
  EXPECT_THROW(transfer_latency(-1, 1.0, 0.0), ContractViolation);
}

TEST(EnergyModel, TaskEnergyComposition) {
  const auto e = profiles::energy_phone();
  const double j = e.task_energy(0.1, 0.2, 0.3);
  EXPECT_NEAR(j, e.p_active * 0.1 + e.p_tx * 0.2 + e.p_idle * 0.3, 1e-12);
  EXPECT_THROW(e.task_energy(-0.1, 0.0, 0.0), ContractViolation);
}

TEST(EnergyModel, PresetsOrdered) {
  EXPECT_LT(profiles::energy_iot().p_active,
            profiles::energy_phone().p_active);
  EXPECT_LT(profiles::energy_phone().p_active,
            profiles::energy_jetson().p_active);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mbps(8.0), 1e6);
  EXPECT_DOUBLE_EQ(gbps(8.0), 1e9);
  EXPECT_DOUBLE_EQ(gflops(2.0), 2e9);
  EXPECT_DOUBLE_EQ(ms(250.0), 0.25);
  EXPECT_DOUBLE_EQ(to_ms(0.25), 250.0);
  EXPECT_DOUBLE_EQ(kib(2.0), 2048.0);
  EXPECT_DOUBLE_EQ(mib(1.0), 1048576.0);
}

}  // namespace
}  // namespace scalpel
