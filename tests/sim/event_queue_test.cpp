#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

std::vector<SimEvent> drain(EventQueue& q) {
  std::vector<SimEvent> out;
  while (!q.empty()) out.push_back(q.pop_min());
  return out;
}

TEST(CalendarQueue, PopsInTimeOrder) {
  EventQueue q(EventQueueImpl::kCalendar);
  Rng rng(42);
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) {
    const double t = 100.0 * rng.uniform();
    times.push_back(t);
    q.push(t, 0, i, 0);
  }
  std::sort(times.begin(), times.end());
  const auto popped = drain(q);
  ASSERT_EQ(popped.size(), times.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].time, times[i]);
    if (i > 0) {
      EXPECT_TRUE(sim_event_before(popped[i - 1], popped[i]));
    }
  }
}

TEST(CalendarQueue, EqualTimesPopInPushOrder) {
  // The seq tiebreak makes (time, seq) a strict total order: ties resolve
  // to push order, exactly like the reference heap.
  EventQueue q(EventQueueImpl::kCalendar);
  for (int i = 0; i < 100; ++i) q.push(1.5, 0, i, 0);
  const auto popped = drain(q);
  ASSERT_EQ(popped.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(popped[static_cast<std::size_t>(i)].a, i);
}

TEST(CalendarQueue, GrowsAndShrinksWithLoad) {
  EventQueue q(EventQueueImpl::kCalendar);
  Rng rng(7);
  // Interleave pushes with pops so the width estimator sees real pop gaps.
  double now = 0.0;
  std::size_t pushed = 0;
  for (int i = 0; i < 5000; ++i) {
    q.push(now + rng.exponential(1.0), 0, i, 0);
    ++pushed;
    if (i % 3 == 0 && !q.empty()) {
      now = q.pop_min().time;
      --pushed;
    }
  }
  EXPECT_EQ(q.size(), pushed);
  double last = 0.0;
  while (!q.empty()) {
    const SimEvent ev = q.pop_min();
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }
}

TEST(CalendarQueue, SparseFarFutureEventsAreFound) {
  // A near cluster plus events days beyond the ring's span: after the near
  // ones drain, the global-min fallback must land on the far ones instead
  // of spinning over empty buckets.
  EventQueue q(EventQueueImpl::kCalendar);
  for (int i = 0; i < 64; ++i) q.push(0.001 * i, 0, i, 0);
  q.push(1e6, 0, -2, 0);
  q.push(2e6, 0, -3, 0);
  const auto popped = drain(q);
  ASSERT_EQ(popped.size(), 66u);
  EXPECT_EQ(popped[64].a, -2);
  EXPECT_EQ(popped[65].a, -3);
}

TEST(CalendarQueue, PushBehindScanPointerStillPops) {
  // The simulator may schedule an event at (or barely after) the time of
  // the event being dispatched — a day the scan pointer already passed if
  // widths shrank. The queue must rewind rather than lose it.
  EventQueue q(EventQueueImpl::kCalendar);
  for (int i = 0; i < 256; ++i) {
    q.push(10.0 + 0.1 * i, 0, i, 0);
  }
  // Drain half (advances cur_day_ deep into the ring), then push earlier.
  for (int i = 0; i < 128; ++i) (void)q.pop_min();
  q.push(10.0 + 0.1 * 127, 0, -5, 0);  // behind the scan pointer
  const SimEvent next = q.pop_min();
  EXPECT_EQ(next.a, -5);
}

TEST(CalendarQueue, AllEventsAtOneInstant) {
  // Zero pop-time spread drives the width estimate to its clamp; ordering
  // must survive.
  EventQueue q(EventQueueImpl::kCalendar);
  for (int i = 0; i < 300; ++i) q.push(7.25, 0, i, 0);
  const auto popped = drain(q);
  ASSERT_EQ(popped.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(popped[static_cast<std::size_t>(i)].a, i);
  }
}

TEST(CalendarQueue, RejectsNonFiniteAndNegativeTimes) {
  EventQueue q(EventQueueImpl::kCalendar);
  EXPECT_THROW(q.push(-1.0, 0, 0, 0), ContractViolation);
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), 0, 0, 0),
               ContractViolation);
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), 0, 0, 0),
               ContractViolation);
}

TEST(EventQueue, CalendarMatchesHeapOracleOnRandomStreams) {
  // Property check: identical interleaved push/pop streams through both
  // implementations produce identical pop sequences (time, seq, payload).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    EventQueue cal(EventQueueImpl::kCalendar);
    EventQueue heap(EventQueueImpl::kBinaryHeap);
    Rng rng(seed);
    double now = 0.0;
    for (int step = 0; step < 4000; ++step) {
      const double u = rng.uniform();
      if (u < 0.55 || cal.empty()) {
        // Mix of near-future, same-instant and far-future pushes, on a few
        // different time scales to stress the width estimator.
        double t = now;
        const double v = rng.uniform();
        if (v < 0.4) {
          t = now + rng.exponential(2.0);
        } else if (v < 0.7) {
          t = now + rng.exponential(0.01);
        } else if (v < 0.9) {
          t = now;  // same instant: seq tiebreak
        } else {
          t = now + 1000.0 * rng.uniform();  // far future
        }
        const auto kind = static_cast<std::uint32_t>(step % 7);
        cal.push(t, kind, step, seed);
        heap.push(t, kind, step, seed);
      } else {
        const SimEvent a = cal.pop_min();
        const SimEvent b = heap.pop_min();
        ASSERT_EQ(a.time, b.time) << "seed " << seed << " step " << step;
        ASSERT_EQ(a.seq, b.seq) << "seed " << seed << " step " << step;
        ASSERT_EQ(a.kind, b.kind);
        ASSERT_EQ(a.a, b.a);
        ASSERT_EQ(a.b, b.b);
        ASSERT_GE(a.time, now);
        now = a.time;
      }
      ASSERT_EQ(cal.size(), heap.size());
    }
    while (!cal.empty()) {
      const SimEvent a = cal.pop_min();
      const SimEvent b = heap.pop_min();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventQueue, PeriodicTelemetryQuietZonesMatchHeapOracle) {
  // The telemetry access pattern that made quiet-zone scans expensive: a
  // sparse periodic stream (obs samples every 0.5 s) threaded between dense
  // event bursts, plus far-future stragglers that alias into the same ring
  // buckets. The per-bucket min-day bound must skip quiet days without ever
  // skipping a due event — held to the heap oracle pop for pop.
  EventQueue cal(EventQueueImpl::kCalendar);
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  auto push_both = [&](double t, std::uint32_t kind, std::int32_t a) {
    cal.push(t, kind, a, 0);
    heap.push(t, kind, a, 0);
  };
  // Periodic grid over the whole horizon, far-future completions up front
  // (they go stale in min_day_ as earlier occupants of their buckets pop).
  for (int i = 0; i < 200; ++i) {
    push_both(0.5 * i, 1, i);
    push_both(100.0 + 0.37 * i, 2, i);
  }
  // Dense bursts around a few instants, pushed while draining.
  int popped = 0;
  double now = 0.0;
  while (!cal.empty()) {
    const SimEvent a = cal.pop_min();
    const SimEvent b = heap.pop_min();
    ASSERT_EQ(a.time, b.time) << "pop " << popped;
    ASSERT_EQ(a.seq, b.seq) << "pop " << popped;
    ASSERT_GE(a.time, now);
    now = a.time;
    if (popped < 300 && popped % 10 == 3) {
      for (int j = 0; j < 5; ++j) push_both(now + 0.001 * j, 3, popped);
    }
    ++popped;
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_GT(popped, 400);
}

TEST(CalendarQueue, ShrinkReanchorThenPushAtPointerStillSorted) {
  // Drive the shrink path hard (drain far below a grown ring's quarter
  // occupancy, so rebucket halves repeatedly and re-anchors the scan
  // pointer), then push new events at and just after the drain frontier —
  // including exactly the last popped instant, which lands at or behind the
  // re-anchored pointer and must rewind it rather than be skipped.
  EventQueue q(EventQueueImpl::kCalendar);
  Rng rng(99);
  std::vector<SimEvent> expected;
  for (int i = 0; i < 2000; ++i) {
    q.push(100.0 * rng.uniform(), 0, i, 0);
  }
  double frontier = 0.0;
  for (int i = 0; i < 1900; ++i) frontier = q.pop_min().time;
  for (int i = 0; i < 50; ++i) {
    // Half exactly at the frontier (behind/at the pointer), half just past.
    const double t = (i % 2 == 0) ? frontier
                                  : frontier + rng.uniform() * 0.5;
    q.push(t, 1, 2000 + i, 0);
  }
  const auto popped = drain(q);
  ASSERT_EQ(popped.size(), 150u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    ASSERT_TRUE(sim_event_before(popped[i - 1], popped[i]))
        << "event " << i << " out of order after shrink + rewind";
  }
  for (const auto& ev : popped) EXPECT_GE(ev.time, frontier);
}

TEST(EventQueue, PushRawPreservesSeqAcrossDeferral) {
  // The sharded epoch loop bounds an epoch by popping the minimum and
  // pushing it back (push_raw) when it lies at/past the barrier. The
  // re-inserted event must keep its original seq: deferral then resumption
  // yields the identical pop sequence on both implementations.
  for (const auto impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    EventQueue q(impl);
    Rng rng(7);
    std::vector<SimEvent> reference;
    for (int i = 0; i < 300; ++i) q.push(10.0 * rng.uniform(), 0, i, 0);
    // Walk barriers over the horizon; at each, defer the first beyond-
    // barrier event the way ShardCore::run_until does.
    std::vector<SimEvent> popped;
    for (double barrier = 1.0; barrier <= 11.0; barrier += 1.0) {
      while (!q.empty()) {
        const SimEvent ev = q.pop_min();
        if (ev.time >= barrier) {
          q.push_raw(ev);
          break;
        }
        popped.push_back(ev);
      }
    }
    while (!q.empty()) popped.push_back(q.pop_min());
    ASSERT_EQ(popped.size(), 300u);
    for (std::size_t i = 1; i < popped.size(); ++i) {
      ASSERT_TRUE(sim_event_before(popped[i - 1], popped[i]))
          << "impl " << static_cast<int>(impl) << " event " << i;
    }
    // Seqs are a permutation of push order and strictly increasing at equal
    // times — push_raw must not have re-sequenced anything.
    std::vector<std::uint64_t> seqs;
    for (const auto& ev : popped) seqs.push_back(ev.seq);
    std::sort(seqs.begin(), seqs.end());
    for (std::size_t i = 0; i < seqs.size(); ++i) ASSERT_EQ(seqs[i], i);
  }
}

}  // namespace
}  // namespace scalpel
