// End-to-end tracing guarantees: the event stream of a traced run must
// reconcile exactly with the simulator's conservation counters, the registry
// must agree with SimMetrics, and a fixed seed must produce a bit-identical
// trace regardless of how many threads the replicated runner fans out over.

#include <gtest/gtest.h>

#include <vector>

#include "core/objective.hpp"
#include "ctrl/plane.hpp"
#include "edge/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "profile/compute_profile.hpp"
#include "profile/energy_model.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

ClusterTopology two_devices(double rate, double deadline = 0.0) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "c", mbps(100.0), ms(1.0)});
  for (int i = 0; i < 2; ++i) {
    Device d;
    d.name = "dev" + std::to_string(i);
    d.compute = profiles::smartphone();
    d.energy = profiles::energy_phone();
    d.cell = cell;
    d.model = "tiny_cnn";
    d.arrival_rate = rate;
    d.deadline = deadline;
    t.add_device(d);
  }
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = ms(0.5);
  t.add_server(s);
  return t;
}

Decision offload_decision(const ProblemInstance& instance,
                          double share = 0.4, double bw = mbps(40.0)) {
  Decision d;
  d.scheme = "test_offload";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) {
    dd.plan.partition_after = 0;
    dd.server = 0;
    dd.compute_share = share;
    dd.bandwidth = bw;
  }
  evaluate_decision(instance, d);
  return d;
}

std::size_t count(const std::vector<std::size_t>& counts,
                  TraceEventType type) {
  return counts[static_cast<std::size_t>(type)];
}

TEST(Trace, EventsReconcileWithConservationCounters) {
  const ClusterTopology topo = two_devices(300.0, 0.1);
  const ProblemInstance instance(topo);
  // A starved uplink grant makes the upload queue the bottleneck, so the
  // bounded queues actually shed under the offered load.
  const Decision d = offload_decision(instance, 0.05, mbps(2.0));

  Simulator::Options o;
  o.horizon = 40.0;
  o.warmup = 4.0;
  o.seed = 23;
  o.trace_capacity = 1 << 18;
  // Tight bounds + expiry shedding so shed/expire terminals appear too.
  o.overload.policy = OverloadPolicy::ShedExpired;
  o.overload.device_queue_limit = 4;
  o.overload.upload_queue_limit = 2;
  o.overload.server_queue_limit = 2;

  Simulator sim(instance, d, o);
  const SimMetrics m = sim.run();
  ASSERT_EQ(sim.trace().dropped(), 0u);
  const auto counts = trace_event_counts(sim.trace().snapshot());

  EXPECT_EQ(count(counts, TraceEventType::kArrive), m.arrived);
  EXPECT_EQ(count(counts, TraceEventType::kComplete), m.completed_all);
  EXPECT_EQ(count(counts, TraceEventType::kFail), m.failed_all);
  EXPECT_EQ(count(counts, TraceEventType::kShed) +
                count(counts, TraceEventType::kExpire),
            m.shed_all);
  // Every arrival ends in exactly one terminal event or is still in flight.
  EXPECT_EQ(count(counts, TraceEventType::kArrive),
            count(counts, TraceEventType::kComplete) +
                count(counts, TraceEventType::kFail) +
                count(counts, TraceEventType::kShed) +
                count(counts, TraceEventType::kExpire) + m.in_flight_end);
  EXPECT_GT(m.shed_all, 0u);  // the bounds were tight enough to matter
}

TEST(Trace, RegistryCountersMatchSimMetrics) {
  const ClusterTopology topo = two_devices(3.0);
  const ProblemInstance instance(topo);
  const Decision d = offload_decision(instance);

  Simulator::Options o;
  o.horizon = 30.0;
  o.warmup = 3.0;
  o.seed = 5;
  Simulator sim(instance, d, o);
  const SimMetrics m = sim.run();
  const auto& counters = sim.registry().counters();
  EXPECT_EQ(counters.at("sim.task.arrived").value(), m.arrived);
  EXPECT_EQ(counters.at("sim.task.completed").value(), m.completed_all);
  EXPECT_EQ(counters.at("sim.task.failed").value(), m.failed_all);
  EXPECT_EQ(counters.at("sim.task.shed").value() +
                counters.at("sim.task.expired").value(),
            m.shed_all);
  EXPECT_EQ(sim.registry().gauges().at("sim.task.in_flight_end").value(),
            static_cast<double>(m.in_flight_end));
  EXPECT_EQ(sim.registry().histograms().at("sim.task.latency_seconds").total(),
            m.latency.count());
}

TEST(Trace, RingOverflowInARealRunKeepsCapacityEvents) {
  const ClusterTopology topo = two_devices(4.0);
  const ProblemInstance instance(topo);
  const Decision d = offload_decision(instance);

  Simulator::Options o;
  o.horizon = 20.0;
  o.warmup = 2.0;
  o.seed = 3;
  o.trace_capacity = 64;  // far fewer than the run emits
  Simulator sim(instance, d, o);
  sim.run();
  EXPECT_EQ(sim.trace().size(), 64u);
  EXPECT_GT(sim.trace().dropped(), 0u);
  EXPECT_EQ(sim.trace().snapshot().size(), 64u);
}

TEST(Trace, BitIdenticalAcrossThreadCounts) {
  const ClusterTopology topo = two_devices(5.0, 0.3);
  const ProblemInstance instance(topo);
  const Decision d = offload_decision(instance);

  ScenarioRunner::Options ro;
  ro.replications = 6;
  ro.sim.horizon = 25.0;
  ro.sim.warmup = 2.5;
  ro.sim.seed = 99;
  ro.sim.trace_capacity = 1 << 18;
  ro.sim.overload.policy = OverloadPolicy::ShedExpired;
  ro.sim.overload.device_queue_limit = 8;

  ro.threads = 1;
  const auto serial = ScenarioRunner(instance, d, ro).run();
  ro.threads = 4;
  const auto parallel = ScenarioRunner(instance, d, ro).run();

  ASSERT_EQ(serial.traces.size(), ro.replications);
  ASSERT_EQ(parallel.traces.size(), ro.replications);
  bool nonempty = false;
  for (std::size_t r = 0; r < ro.replications; ++r) {
    ASSERT_EQ(serial.traces[r].size(), parallel.traces[r].size())
        << "replication " << r;
    for (std::size_t i = 0; i < serial.traces[r].size(); ++i) {
      ASSERT_TRUE(serial.traces[r][i] == parallel.traces[r][i])
          << "replication " << r << " event " << i;
    }
    nonempty = nonempty || !serial.traces[r].empty();
  }
  EXPECT_TRUE(nonempty);
  // Different replications must not share an event stream (distinct seeds).
  EXPECT_FALSE(serial.traces[0] == serial.traces[1]);
}

TEST(Trace, MergedChromeTraceRoundTripsTaskAndCtrlLanes) {
  // A controller-driven run over a lossy fabric, task tracing and span
  // tracing both on: the merged Chrome document must round-trip through the
  // project's parser with every task event on a device pid and every
  // control-plane span on the dedicated kCtrlChromePid lane, and the span
  // stream must reconcile with the published ctrl.* metrics.
  const ClusterTopology topo = two_devices(3.0, 0.3);
  const ProblemInstance instance(topo);
  const Decision d = offload_decision(instance);

  DistributedPlaneOptions po;
  po.cell.solver = [&](const ProblemInstance& sub, const JointOptions&) {
    return offload_decision(sub);
  };
  po.fabric.delay = 0.1;
  po.fabric.jitter = 0.4;
  po.fabric.drop_prob = 0.1;
  po.seed = 7;
  po.span_capacity = 1 << 12;
  DistributedControlPlane plane(topo, po);

  Simulator::Options o;
  o.horizon = 20.0;
  o.warmup = 2.0;
  o.seed = 11;
  o.control_interval = 1.0;
  o.trace_capacity = 1 << 16;
  Simulator sim(instance, d, o);
  sim.set_controller(plane.callback());
  sim.run();

  const auto spans = plane.ctrl_trace().snapshot();
  ASSERT_GT(spans.size(), 0u);
  ASSERT_GT(sim.trace().size(), 0u);

  const Json doc = Json::parse(
      merged_trace_to_chrome_json(sim.trace(), plane.ctrl_trace()).dump());
  const Json& arr = doc.at("traceEvents");
  std::size_t ctrl_lane = 0;
  std::size_t task_lane = 0;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (arr.at(i).at("pid").as_int() == kCtrlChromePid) {
      ++ctrl_lane;
      // Every span event carries its causal identity on the shared clock.
      EXPECT_GE(arr.at(i).at("args").at("corr").as_int(), 0);
      EXPECT_GE(arr.at(i).at("ts").as_number(), 0.0);
    } else {
      ++task_lane;
    }
  }
  EXPECT_EQ(ctrl_lane, spans.size());
  EXPECT_GT(task_lane, 0u);
  EXPECT_EQ(doc.at("droppedSpans").as_int(), 0);

  // The same reconciliation validate-trace performs: span counts close the
  // conservation identity against the published ctrl.* registry view.
  MetricsRegistry reg;
  plane.publish_metrics(reg);
  const auto counts = ctrl_span_counts(spans);
  const auto count_of = [&](CtrlSpanEvent e) {
    return static_cast<std::uint64_t>(counts[static_cast<std::size_t>(e)]);
  };
  EXPECT_EQ(count_of(CtrlSpanEvent::kSent),
            reg.counter("ctrl.msg.sent").value());
  EXPECT_EQ(count_of(CtrlSpanEvent::kSent),
            count_of(CtrlSpanEvent::kDropped) +
                count_of(CtrlSpanEvent::kDelivered) +
                reg.counter("ctrl.msg.dropped_dead").value() +
                static_cast<std::uint64_t>(
                    reg.gauge("ctrl.in_flight").value()));
  EXPECT_GT(count_of(CtrlSpanEvent::kDropped), 0u);  // the fabric was lossy
}

TEST(Trace, DisabledByDefaultAndEmpty) {
  const ClusterTopology topo = two_devices(2.0);
  const ProblemInstance instance(topo);
  const Decision d = offload_decision(instance);
  Simulator::Options o;
  o.horizon = 10.0;
  o.warmup = 1.0;
  Simulator sim(instance, d, o);
  sim.run();
  EXPECT_FALSE(sim.trace().enabled());
  EXPECT_EQ(sim.trace().size(), 0u);
}

}  // namespace
}  // namespace scalpel
