// Shard fuzzer: random topologies, random decisions, random fault schedules
// and overload bursts, then the shard-count-invariance contract — the
// whole-run conservation counters (and conservation identity itself, with
// tasks mid-flight across shards at the end) must not depend on how the
// topology was partitioned or how many workers ran the epochs. The bitwise
// equivalence matrix lives in shard_equivalence_test.cpp; this file hunts
// the configurations nobody thought to enumerate there.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/objective.hpp"
#include "ctrl/plane.hpp"
#include "edge/builders.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

ProblemInstance random_instance(Rng& rng) {
  clusters::CampusOptions copts;
  copts.seed = rng.next_u64();
  copts.num_devices = 4 + static_cast<std::size_t>(rng.uniform(0.0, 6.0));
  copts.num_servers = 1 + static_cast<std::size_t>(rng.uniform(0.0, 3.0));
  copts.devices_per_cell = 1 + static_cast<std::size_t>(rng.uniform(0.0, 3.0));
  copts.cell_rtt = rng.uniform(1e-3, 20e-3);
  copts.mean_arrival_rate = rng.uniform(0.5, 4.0);
  copts.deadline = rng.uniform() < 0.3 ? 0.0 : rng.uniform(0.1, 0.5);
  return ProblemInstance(clusters::campus(copts));
}

Decision random_decision(const ProblemInstance& instance, Rng& rng) {
  Decision d;
  d.scheme = "fuzz";
  const auto& topo = instance.topology();
  // Bandwidth grants summed per cell must stay within the cell uplink even
  // if every device in the cell offloads.
  std::vector<std::size_t> cell_population(topo.cells().size(), 0);
  for (const auto& dev : topo.devices()) {
    ++cell_population[static_cast<std::size_t>(dev.cell)];
  }
  d.per_device.resize(topo.devices().size());
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    auto& dd = d.per_device[i];
    if (rng.uniform() < 0.3 || topo.servers().empty()) {
      dd.plan.device_only = true;
      continue;
    }
    dd.plan.partition_after = 0;
    dd.server = static_cast<ServerId>(
        rng.uniform(0.0, static_cast<double>(topo.servers().size()) - 0.01));
    // Shares summed per server must stay within capacity even if every
    // device lands on the same one.
    dd.compute_share =
        rng.uniform(0.2, 0.9) / static_cast<double>(d.per_device.size());
    const Cell& cell = topo.cell(topo.devices()[i].cell);
    const double cap =
        cell.bandwidth /
        static_cast<double>(cell_population[static_cast<std::size_t>(cell.id)]);
    dd.bandwidth = std::min(mbps(rng.uniform(10.0, 60.0)), cap);
  }
  evaluate_decision(instance, d);
  return d;
}

Simulator::Options random_options(const ProblemInstance& instance, Rng& rng) {
  Simulator::Options opts;
  opts.horizon = rng.uniform(4.0, 8.0);
  opts.warmup = rng.uniform(0.0, 1.0);
  opts.seed = rng.next_u64();
  if (rng.uniform() < 0.5) opts.series_window = rng.uniform(0.3, 1.0);
  if (rng.uniform() < 0.5) opts.burst_factor = rng.uniform(0.1, 0.7);

  // Random fault schedule over real targets.
  const auto& topo = instance.topology();
  if (rng.uniform() < 0.7) {
    std::vector<FaultEvent> events;
    const int n = 1 + static_cast<int>(rng.uniform(0.0, 4.0));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.time = rng.uniform(0.5, opts.horizon);
      const bool server = !topo.servers().empty() && rng.uniform() < 0.6;
      ev.target = server ? FaultTarget::Server : FaultTarget::Link;
      const std::size_t limit =
          server ? topo.servers().size() : topo.cells().size();
      ev.id = static_cast<std::int32_t>(
          rng.uniform(0.0, static_cast<double>(limit) - 0.01));
      ev.up = rng.uniform() < 0.4;
      events.push_back(ev);
    }
    std::sort(events.begin(), events.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                return a.time < b.time;
              });
    opts.faults.schedule = FaultSchedule(events);
    const FaultPolicy policies[] = {FaultPolicy::Drop,
                                    FaultPolicy::RetryOnDevice,
                                    FaultPolicy::RetryOffload};
    opts.faults.policy = policies[rng.next_u64() % 3];
  }

  // Random telemetry impairment. The channel is only sampled on controller
  // ticks, so a control interval rides along; the controller itself is
  // attached by the test body.
  if (rng.uniform() < 0.5) {
    opts.control_interval = rng.uniform(0.3, 1.5);
    if (rng.uniform() < 0.6) opts.telemetry.delay = rng.uniform(0.0, 1.0);
    if (rng.uniform() < 0.6) opts.telemetry.drop_prob = rng.uniform(0.0, 0.6);
    if (rng.uniform() < 0.6) opts.telemetry.noise_sigma = rng.uniform(0.0, 0.5);
    if (rng.uniform() < 0.4) opts.telemetry.quantum = mbps(rng.uniform(0.5, 4.0));
    if (rng.uniform() < 0.6) opts.telemetry.flip_prob = rng.uniform(0.0, 0.3);
  }

  // Random overload posture and a burst window.
  if (rng.uniform() < 0.7) {
    const OverloadPolicy policies[] = {OverloadPolicy::Block,
                                       OverloadPolicy::ShedNewest,
                                       OverloadPolicy::ShedExpired};
    opts.overload.policy = policies[rng.next_u64() % 3];
    opts.overload.device_queue_limit =
        static_cast<std::size_t>(rng.uniform(0.0, 5.0));
    opts.overload.upload_queue_limit =
        static_cast<std::size_t>(rng.uniform(0.0, 4.0));
    opts.overload.server_queue_limit =
        static_cast<std::size_t>(rng.uniform(0.0, 4.0));
    const double start = rng.uniform(0.5, opts.horizon * 0.6);
    opts.rate_bursts.push_back(
        RateBurst{start, start + rng.uniform(0.5, opts.horizon * 0.4),
                  rng.uniform(2.0, 6.0)});
  }
  return opts;
}

TEST(ShardFuzz, ConservationIsShardCountInvariant) {
  Rng rng(20260808);
  for (int iter = 0; iter < 12; ++iter) {
    SCOPED_TRACE(::testing::Message() << "iteration " << iter);
    const ProblemInstance instance = random_instance(rng);
    const Decision d = random_decision(instance, rng);
    const Simulator::Options opts = random_options(instance, rng);

    std::vector<double> gate;
    if (rng.uniform() < 0.4) {
      for (std::size_t i = 0; i < instance.topology().devices().size(); ++i) {
        gate.push_back(rng.uniform(0.4, 1.0));
      }
    }

    // When telemetry rode along, close the loop: a stateless policy keyed
    // off the (possibly impaired) readings, shared across all runs so any
    // divergence in what the channel delivered diverges the counters.
    Simulator::RichController rich;
    if (opts.control_interval > 0.0) {
      Decision d_local;
      d_local.scheme = "fuzz-local";
      d_local.per_device.resize(instance.topology().devices().size());
      for (auto& dd : d_local.per_device) dd.plan.device_only = true;
      evaluate_decision(instance, d_local);
      rich = [d, d_local](double, const std::vector<double>& bw,
                          const std::vector<bool>& alive,
                          const std::vector<double>&,
                          const std::vector<double>&) {
        ControlAction a;
        double sum = 0.0;
        for (const double v : bw) sum += v / mbps(1.0);
        bool any_down = false;
        for (const bool up : alive) any_down = any_down || !up;
        a.decision = (any_down || std::fmod(sum, 2.0) < 1.0) ? d_local : d;
        return a;
      };
    }

    Simulator ref(instance, d, opts);
    if (!gate.empty()) ref.set_admission(gate);
    if (rich) ref.set_controller(rich);
    const SimMetrics ref_m = ref.run();

    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      for (const std::size_t threads : {1u, 2u}) {
        SCOPED_TRACE(::testing::Message()
                     << "shards=" << shards << " threads=" << threads);
        ShardOptions sopts;
        sopts.shards = shards;
        sopts.threads = threads;
        ShardedSimulator sim(instance, d, opts, sopts);
        if (!gate.empty()) sim.set_admission(gate);
        if (rich) sim.set_controller(rich);
        const SimMetrics m = sim.run();

        // Conservation with cross-shard in-flight tasks at the end: every
        // arrival is terminal or live, exactly once, however sharded.
        EXPECT_EQ(m.arrived, m.completed_all + m.failed_all + m.shed_all +
                                 m.in_flight_end);
        EXPECT_EQ(ref_m.arrived, m.arrived);
        EXPECT_EQ(ref_m.completed_all, m.completed_all);
        EXPECT_EQ(ref_m.failed_all, m.failed_all);
        EXPECT_EQ(ref_m.shed_all, m.shed_all);
        EXPECT_EQ(ref_m.in_flight_end, m.in_flight_end);
        EXPECT_EQ(ref_m.retried, m.retried);
        EXPECT_EQ(ref_m.resteered, m.resteered);
        EXPECT_EQ(ref_m.events_processed, m.events_processed);
      }
    }
  }
}

// Distributed-control fuzz: random fabrics (loss, reorder), random
// coordinator/controller churn, random data-plane faults — a fresh
// DistributedControlPlane per run must leave conservation shard-count
// invariant AND replay the identical protocol history (audit trail,
// epoch rejections, dead letters) for every shard x thread configuration.
TEST(ShardFuzz, DistributedPlaneIsShardCountInvariant) {
  Rng rng(20260809);
  for (int iter = 0; iter < 8; ++iter) {
    SCOPED_TRACE(::testing::Message() << "iteration " << iter);
    const ProblemInstance instance = random_instance(rng);
    const Decision d = random_decision(instance, rng);
    Simulator::Options opts = random_options(instance, rng);
    // The plane is the controller here; make sure it actually ticks.
    if (opts.control_interval <= 0.0) {
      opts.control_interval = rng.uniform(0.3, 1.5);
    }

    DistributedPlaneOptions popts;
    popts.seed = rng.next_u64();
    if (rng.uniform() < 0.7) {
      popts.fabric.delay = rng.uniform(0.0, 0.5);
      popts.fabric.jitter = rng.uniform(0.0, 2.0);
      popts.fabric.drop_prob = rng.uniform(0.0, 0.4);
    }
    popts.cell.solver = [](const ProblemInstance& sub, const JointOptions&) {
      Decision plan;
      plan.scheme = "stub";
      const auto& topo = sub.topology();
      const auto n = static_cast<double>(topo.devices().size());
      plan.per_device.resize(topo.devices().size());
      for (auto& dd : plan.per_device) {
        dd.plan.partition_after = 0;
        dd.server = 0;
        dd.compute_share = 0.9 / n;
        dd.bandwidth = 0.9 * topo.cell(0).bandwidth / n;
      }
      return plan;
    };
    // Controller churn over endpoint ids 0..num_cells (0 = coordinator).
    if (rng.uniform() < 0.8) {
      const std::size_t endpoints = 1 + instance.topology().cells().size();
      std::vector<FaultEvent> churn;
      const int n = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
      for (int i = 0; i < n; ++i) {
        const double down = rng.uniform(0.5, opts.horizon * 0.7);
        const auto victim = static_cast<std::int32_t>(
            rng.uniform(0.0, static_cast<double>(endpoints) - 0.01));
        churn.push_back({down, FaultTarget::Server, victim, false});
        churn.push_back({down + rng.uniform(0.5, opts.horizon * 0.4),
                         FaultTarget::Server, victim, true});
      }
      std::sort(churn.begin(), churn.end(),
                [](const FaultEvent& a, const FaultEvent& b) {
                  return a.time < b.time;
                });
      popts.controller_faults = FaultSchedule(churn);
    }

    DistributedControlPlane ref_plane(instance.topology(), popts);
    Simulator ref(instance, d, opts);
    ref.set_controller(ref_plane.callback());
    const SimMetrics ref_m = ref.run();
    const std::string ref_audit =
        ref_plane.audit_log().to_json().dump_pretty();

    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      for (const std::size_t threads : {1u, 2u}) {
        SCOPED_TRACE(::testing::Message()
                     << "shards=" << shards << " threads=" << threads);
        ShardOptions sopts;
        sopts.shards = shards;
        sopts.threads = threads;
        DistributedControlPlane plane(instance.topology(), popts);
        ShardedSimulator sim(instance, d, opts, sopts);
        sim.set_controller(plane.callback());
        const SimMetrics m = sim.run();

        EXPECT_EQ(m.arrived, m.completed_all + m.failed_all + m.shed_all +
                                 m.in_flight_end);
        EXPECT_EQ(ref_m.arrived, m.arrived);
        EXPECT_EQ(ref_m.completed_all, m.completed_all);
        EXPECT_EQ(ref_m.failed_all, m.failed_all);
        EXPECT_EQ(ref_m.shed_all, m.shed_all);
        EXPECT_EQ(ref_m.in_flight_end, m.in_flight_end);
        EXPECT_EQ(ref_m.events_processed, m.events_processed);
        EXPECT_EQ(plane.audit_log().to_json().dump_pretty(), ref_audit);
        EXPECT_EQ(plane.plan_changes(), ref_plane.plan_changes());
        EXPECT_EQ(plane.local_solves(), ref_plane.local_solves());
        EXPECT_EQ(plane.epochs_rejected(), ref_plane.epochs_rejected());
        EXPECT_EQ(plane.dead_letters(), ref_plane.dead_letters());
        EXPECT_EQ(plane.fabric().dropped(), ref_plane.fabric().dropped());
      }
    }
  }
}

}  // namespace
}  // namespace scalpel
