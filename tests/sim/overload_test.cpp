// Overload-protection scenarios: bounded queues with the three shedding
// policies, deadline-expiry drops, the runtime admission gate, scripted rate
// bursts, and the rich controller plumbing. Every scenario asserts the
// whole-run conservation identity
//   arrived == completed_all + failed_all + shed_all + in_flight_end
// — overload may refuse or drop tasks, never lose them.

#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "profile/compute_profile.hpp"
#include "profile/energy_model.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

ClusterTopology single_device(double rate, double deadline = 0.0,
                              double bandwidth = mbps(100.0)) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "c", bandwidth, ms(1.0)});
  Device d;
  d.name = "dev";
  d.compute = profiles::smartphone();
  d.energy = profiles::energy_phone();
  d.cell = cell;
  d.model = "tiny_cnn";
  d.arrival_rate = rate;
  d.deadline = deadline;
  t.add_device(d);
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = ms(0.5);
  t.add_server(s);
  return t;
}

Decision local_decision(const ProblemInstance& instance) {
  Decision d;
  d.scheme = "test_local";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);
  return d;
}

Decision offload_decision(const ProblemInstance& instance, double share,
                          double bw) {
  Decision d;
  d.scheme = "test_offload";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) {
    dd.plan.partition_after = 0;
    dd.server = 0;
    dd.compute_share = share;
    dd.bandwidth = bw;
  }
  evaluate_decision(instance, d);
  return d;
}

Simulator::Options fast_run(double horizon = 60.0, std::uint64_t seed = 11) {
  Simulator::Options o;
  o.horizon = horizon;
  o.warmup = horizon * 0.1;
  o.seed = seed;
  return o;
}

void expect_conserved(const SimMetrics& m) {
  EXPECT_EQ(m.arrived,
            m.completed_all + m.failed_all + m.shed_all + m.in_flight_end);
}

TEST(Overload, DefaultOptionsMatchUnboundedBehavior) {
  const ProblemInstance inst(single_device(30.0));
  const auto d = offload_decision(inst, 0.5, mbps(40.0));
  Simulator base(inst, d, fast_run());
  auto bounded_opts = fast_run();
  bounded_opts.overload = OverloadOptions{};  // all limits zero
  Simulator bounded(inst, d, bounded_opts);
  const auto ma = base.run();
  const auto mb = bounded.run();
  EXPECT_EQ(ma.arrived, mb.arrived);
  EXPECT_EQ(ma.completed, mb.completed);
  EXPECT_DOUBLE_EQ(ma.latency.mean(), mb.latency.mean());
  EXPECT_EQ(mb.shed_all, 0u);
  expect_conserved(mb);
}

TEST(Overload, BoundedDeviceQueueSheds) {
  // Offered load far beyond the device's service capacity: without a bound
  // the backlog grows without limit; with one, the excess is shed and the
  // survivors' latency stays bounded by the queue length.
  const ProblemInstance inst(single_device(3000.0));
  const auto d = local_decision(inst);
  auto opts = fast_run();
  opts.overload.device_queue_limit = 8;
  Simulator sim(inst, d, opts);
  const auto m = sim.run();
  EXPECT_GT(m.shed, 0u);
  EXPECT_GT(m.completed, 0u);
  expect_conserved(m);

  Simulator unbounded(inst, d, fast_run());
  const auto mu = unbounded.run();
  EXPECT_LT(m.latency.p99(), mu.latency.p99());
}

TEST(Overload, ConservationAcrossPoliciesAndFaults) {
  const ProblemInstance inst(single_device(120.0, 0.25, mbps(20.0)));
  const auto d = offload_decision(inst, 0.3, mbps(8.0));
  for (const auto policy : {OverloadPolicy::Block, OverloadPolicy::ShedNewest,
                            OverloadPolicy::ShedExpired}) {
    for (const auto fp : {FaultPolicy::Drop, FaultPolicy::RetryOnDevice,
                          FaultPolicy::RetryOffload}) {
      auto opts = fast_run(80.0);
      opts.overload.policy = policy;
      opts.overload.device_queue_limit = 16;
      opts.overload.upload_queue_limit = 4;
      opts.overload.server_queue_limit = 4;
      opts.faults.policy = fp;
      opts.faults.schedule = FaultSchedule::server_crash(0, 20.0, 30.0);
      Simulator sim(inst, d, opts);
      const auto m = sim.run();
      expect_conserved(m);
      EXPECT_GT(m.completed, 0u);
      EXPECT_GT(m.shed_all, 0u);
    }
  }
}

TEST(Overload, ShedExpiredDropsProvablyLateTasks) {
  // Tight deadline + heavy backlog: once the committed device backlog alone
  // overruns the deadline, ShedExpired refuses tasks at the door instead of
  // executing work that is already provably late.
  const ProblemInstance inst(single_device(3000.0, 0.01));
  const auto d = local_decision(inst);
  auto opts = fast_run();
  opts.overload.policy = OverloadPolicy::ShedExpired;
  Simulator sim(inst, d, opts);
  const auto m = sim.run();
  EXPECT_GT(m.expired, 0u);
  EXPECT_GT(m.completed, 0u);
  expect_conserved(m);

  // Expiry shedding only ever drops tasks that could not have met the
  // deadline, so satisfaction cannot be worse than letting them run.
  Simulator plain(inst, d, fast_run());
  const auto mp = plain.run();
  EXPECT_GE(m.deadline_satisfaction, mp.deadline_satisfaction);
}

TEST(Overload, ShedTasksCountAsDeadlineMisses) {
  const ProblemInstance inst(single_device(3000.0, 0.01));
  const auto d = local_decision(inst);
  auto opts = fast_run();
  opts.overload.policy = OverloadPolicy::ShedNewest;
  opts.overload.device_queue_limit = 6;
  Simulator sim(inst, d, opts);
  const auto m = sim.run();
  EXPECT_GT(m.shed, 0u);
  const auto& dm = m.per_device[0];
  // Every settled post-warmup task of a deadline-bearing device enters the
  // satisfaction denominator — shed and expired included.
  EXPECT_EQ(dm.deadline_total,
            dm.completed + dm.failed + dm.shed + dm.expired);
  EXPECT_LT(m.deadline_satisfaction, 1.0);
  expect_conserved(m);
}

TEST(Overload, AdmissionGatePreservesArrivalStream) {
  const ProblemInstance inst(single_device(50.0));
  const auto d = local_decision(inst);
  Simulator open(inst, d, fast_run(100.0, 21));
  const auto mo = open.run();

  Simulator gated(inst, d, fast_run(100.0, 21));
  gated.set_admission({0.5});
  const auto mg = gated.run();

  // The gate draws from its own RNG substream, so the arrival process (and
  // everything downstream of admitted tasks) is bit-identical.
  EXPECT_EQ(mo.arrived, mg.arrived);
  EXPECT_GT(mg.shed_all, 0u);
  EXPECT_LT(mg.completed, mo.completed);
  expect_conserved(mg);

  // Roughly half the traffic should be admitted.
  const double admitted = static_cast<double>(mg.completed_all) /
                          static_cast<double>(mg.arrived);
  EXPECT_NEAR(admitted, 0.5, 0.1);
}

TEST(Overload, AdmissionGateValidates) {
  const ProblemInstance inst(single_device(5.0));
  Simulator sim(inst, local_decision(inst), fast_run());
  EXPECT_THROW(sim.set_admission({0.5, 0.5}), ContractViolation);
  EXPECT_THROW(sim.set_admission({1.5}), ContractViolation);
  sim.set_admission({1.0});
  sim.set_admission({});  // clears
}

TEST(Overload, RateBurstScalesOfferedLoad) {
  const ProblemInstance inst(single_device(10.0));
  const auto d = local_decision(inst);
  Simulator plain(inst, d, fast_run(100.0, 33));
  const auto mp = plain.run();

  auto opts = fast_run(100.0, 33);
  opts.rate_bursts.push_back(RateBurst{20.0, 60.0, 3.0});
  Simulator burst(inst, d, opts);
  const auto mb = burst.run();
  EXPECT_GT(mb.arrived, mp.arrived + mp.arrived / 4);
  expect_conserved(mb);

  // Scripted bursts are deterministic for a seed.
  Simulator again(inst, d, opts);
  EXPECT_EQ(again.run().arrived, mb.arrived);
}

TEST(Overload, RateBurstValidates) {
  const ProblemInstance inst(single_device(5.0));
  auto opts = fast_run();
  opts.rate_bursts.push_back(RateBurst{10.0, 5.0, 2.0});  // end < start
  EXPECT_THROW(Simulator(inst, local_decision(inst), opts), ContractViolation);
  opts.rate_bursts = {RateBurst{0.0, 10.0, 0.0}};  // factor must be positive
  EXPECT_THROW(Simulator(inst, local_decision(inst), opts), ContractViolation);
}

TEST(Overload, RichControllerSeesLoadAndDrivesGate) {
  const ProblemInstance inst(single_device(3000.0));
  const auto d = local_decision(inst);
  auto opts = fast_run(60.0);
  opts.control_interval = 2.0;
  Simulator sim(inst, d, opts);
  std::size_t ticks = 0;
  double max_offered = 0.0;
  double max_depth = 0.0;
  sim.set_controller([&](double, const std::vector<double>&,
                         const std::vector<bool>&,
                         const std::vector<double>& offered,
                         const std::vector<double>& depth) {
    ++ticks;
    EXPECT_EQ(offered.size(), 1u);
    EXPECT_EQ(depth.size(), 1u);
    max_offered = std::max(max_offered, offered[0]);
    max_depth = std::max(max_depth, depth[0]);
    ControlAction action;
    action.admit_fraction = std::vector<double>{0.1};
    return action;
  });
  const auto m = sim.run();
  EXPECT_GT(ticks, 10u);
  // Offered-rate estimate should be near the true 200/s; the queue was deep
  // before the gate engaged.
  EXPECT_GT(max_offered, 100.0);
  EXPECT_GT(max_depth, 10.0);
  EXPECT_GT(m.shed_all, 0u);
  expect_conserved(m);
}

TEST(Overload, BoundedUploadAndServerQueuesShed) {
  // Starve the uplink and the server slice so the offload-side queues (not
  // the device stage) are the bottleneck.
  const ProblemInstance inst(single_device(60.0, 0.0, mbps(4.0)));
  const auto d = offload_decision(inst, 0.05, mbps(2.0));
  for (const auto policy :
       {OverloadPolicy::Block, OverloadPolicy::ShedNewest}) {
    auto opts = fast_run(80.0);
    opts.overload.policy = policy;
    opts.overload.upload_queue_limit = 3;
    opts.overload.server_queue_limit = 3;
    Simulator sim(inst, d, opts);
    const auto m = sim.run();
    EXPECT_GT(m.shed, 0u) << "policy " << static_cast<int>(policy);
    EXPECT_GT(m.completed, 0u);
    expect_conserved(m);
  }
}

}  // namespace
}  // namespace scalpel
