// Deterministic crash-script scenarios for the fault-injection subsystem:
// tasks caught mid-pipeline by a crash, crash during upload vs server
// compute, recovery mid-queue, and the all-servers-dead device-only
// degradation. Every scenario asserts the whole-run conservation invariant
//   arrived == completed_all + failed_all + in_flight_end
// — the simulator may fail or resteer tasks, never lose them.

#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.hpp"
#include "core/online.hpp"
#include "edge/builders.hpp"
#include "profile/compute_profile.hpp"
#include "profile/energy_model.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

/// One device / one server / one cell topology with controllable rate.
ClusterTopology single_device(double rate, double deadline = 0.0,
                              double bandwidth = mbps(100.0)) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "c", bandwidth, ms(1.0)});
  Device d;
  d.name = "dev";
  d.compute = profiles::smartphone();
  d.energy = profiles::energy_phone();
  d.cell = cell;
  d.model = "tiny_cnn";
  d.arrival_rate = rate;
  d.deadline = deadline;
  t.add_device(d);
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = ms(0.5);
  t.add_server(s);
  return t;
}

Decision offload_decision(const ProblemInstance& instance, double share,
                          double bw) {
  Decision d;
  d.scheme = "test_offload";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) {
    dd.plan.partition_after = 0;
    dd.server = 0;
    dd.compute_share = share;
    dd.bandwidth = bw;
  }
  evaluate_decision(instance, d);
  return d;
}

void expect_conservation(const SimMetrics& m) {
  EXPECT_EQ(m.arrived, m.completed_all + m.failed_all + m.in_flight_end)
      << "arrived=" << m.arrived << " completed_all=" << m.completed_all
      << " failed_all=" << m.failed_all
      << " in_flight_end=" << m.in_flight_end;
}

Simulator::Options fault_run(double horizon, std::uint64_t seed,
                             FaultSchedule schedule, FaultPolicy policy) {
  Simulator::Options o;
  o.horizon = horizon;
  o.warmup = 1.0;
  o.seed = seed;
  o.faults.schedule = std::move(schedule);
  o.faults.policy = policy;
  return o;
}

TEST(Faults, DropPolicyFailsTasksCaughtByCrash) {
  // Steady offloaded stream; the server dies mid-run and never recovers.
  auto topo = single_device(4.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto m =
      Simulator(inst, d,
                fault_run(60.0, 3,
                          FaultSchedule::server_crash(
                              0, 30.0, std::numeric_limits<double>::infinity()),
                          FaultPolicy::Drop))
          .run();
  EXPECT_GT(m.completed, 0u);       // the pre-crash half of the run
  EXPECT_GT(m.failed, 10u);         // everything offloaded after the crash
  EXPECT_EQ(m.retried, 0u);
  EXPECT_EQ(m.resteered, 0u);
  EXPECT_NEAR(m.availability, 0.5, 1e-12);
  expect_conservation(m);
}

TEST(Faults, RetryOnDeviceResteersAndLosesNothing) {
  auto topo = single_device(4.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto m =
      Simulator(inst, d,
                fault_run(60.0, 3,
                          FaultSchedule::server_crash(
                              0, 30.0, std::numeric_limits<double>::infinity()),
                          FaultPolicy::RetryOnDevice))
          .run();
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.resteered, 10u);  // post-crash stream re-executed on-device
  EXPECT_GT(m.completed, 50u);
  // Resteered completions land in the outage latency tail.
  EXPECT_GE(m.outage_latency.count(), m.resteered);
  EXPECT_GT(m.outage_latency.p99(), 0.0);
  expect_conservation(m);
}

TEST(Faults, CrashDuringUploadVsServerCompute) {
  // Slow uplink: tasks spend real time uploading, so a crash catches some
  // mid-upload (caught at start_server_phase) and some mid-service (caught
  // by the fluid clear). Both populations must be resteered, not lost.
  auto topo = single_device(2.0, 0.0, mbps(6.0));
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto m =
      Simulator(inst, d,
                fault_run(40.0, 7,
                          FaultSchedule::server_crash(
                              0, 20.0, std::numeric_limits<double>::infinity()),
                          FaultPolicy::RetryOnDevice))
          .run();
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.resteered, 0u);
  expect_conservation(m);
}

TEST(Faults, LinkOutageSeversUploadsInFlight) {
  auto topo = single_device(3.0, 0.0, mbps(8.0));
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto m = Simulator(inst, d,
                           fault_run(40.0, 11,
                                     FaultSchedule::link_outage(0, 15.0, 25.0),
                                     FaultPolicy::RetryOnDevice))
                     .run();
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.resteered, 0u);
  // Link faults don't count against server availability.
  EXPECT_DOUBLE_EQ(m.availability, 1.0);
  expect_conservation(m);
}

TEST(Faults, RecoveryMidQueueDrainsRetries) {
  // Server down for a 10 s window; RetryOffload with a generous budget must
  // carry every interrupted task across the outage: zero failures, and the
  // offloaded stream resumes after recovery.
  auto topo = single_device(2.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  auto opts = fault_run(80.0, 13, FaultSchedule::server_crash(0, 30.0, 40.0),
                        FaultPolicy::RetryOffload);
  opts.faults.max_retries = 100;
  opts.faults.retry_backoff = 0.5;
  opts.faults.retry_timeout = 60.0;
  const auto m = Simulator(inst, d, opts).run();
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.retried, 0u);
  EXPECT_GT(m.completed, 100u);
  // Every arrival eventually completed (or was still in flight at horizon).
  expect_conservation(m);
  EXPECT_NEAR(m.availability, 1.0 - 10.0 / 80.0, 1e-12);
}

TEST(Faults, RetryBudgetExhaustionFailsTasks) {
  // Permanent crash + small retry budget: every post-crash offloaded task
  // burns its retries against the dead server and is dropped.
  auto topo = single_device(3.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  auto opts = fault_run(40.0, 17,
                        FaultSchedule::server_crash(
                            0, 20.0, std::numeric_limits<double>::infinity()),
                        FaultPolicy::RetryOffload);
  opts.faults.max_retries = 2;
  opts.faults.retry_backoff = 0.2;
  opts.faults.retry_timeout = 5.0;
  const auto m = Simulator(inst, d, opts).run();
  EXPECT_GT(m.failed, 0u);
  EXPECT_GT(m.retried, 0u);
  expect_conservation(m);
}

TEST(Faults, AllServersDeadDegradesToDeviceOnlyViaController) {
  // small_lab has two servers; both die at t=20 and stay dead. The online
  // controller observes the liveness collapse and swaps in a device-only
  // decision — tasks keep completing, nothing crashes, nothing leaks.
  const auto topo = clusters::small_lab();
  const ProblemInstance inst(topo);
  OnlineController::Options copts;
  copts.joint.max_iterations = 2;
  copts.joint.dp_coverage_bins = 40;
  copts.joint.theta_grid = {0.0, 0.3, 0.6};
  OnlineController controller(topo, copts);
  const Decision initial = controller.decision();

  Simulator::Options opts;
  opts.horizon = 60.0;
  opts.warmup = 1.0;
  opts.seed = 19;
  opts.control_interval = 2.0;
  opts.faults.policy = FaultPolicy::RetryOffload;
  opts.faults.max_retries = 50;
  opts.faults.retry_backoff = 0.5;
  opts.faults.retry_timeout = 30.0;
  opts.faults.schedule =
      FaultSchedule::server_crash(0, 20.0,
                                  std::numeric_limits<double>::infinity())
          .merged(FaultSchedule::server_crash(
              1, 20.0, std::numeric_limits<double>::infinity()));
  Simulator sim(inst, initial, opts);
  sim.set_controller([&](double, const std::vector<double>& bw,
                         const std::vector<bool>& alive)
                         -> std::optional<Decision> {
    if (controller.observe(bw, alive)) return controller.decision();
    return std::nullopt;
  });
  const auto m = sim.run();
  EXPECT_GE(controller.failovers(), 1u);
  // The controller's post-crash plan is device-only for every device.
  for (const auto& dd : controller.decision().per_device) {
    EXPECT_TRUE(dd.plan.device_only);
  }
  EXPECT_GT(m.completed, 100u);  // service continued through the blackout
  EXPECT_EQ(m.failed, 0u);       // retries bridged into the device fallback
  expect_conservation(m);
}

TEST(Faults, ZeroDurationOutageIsHarmless) {
  auto topo = single_device(4.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto down_up = FaultSchedule({{20.0, FaultTarget::Server, 0, false},
                                      {20.0, FaultTarget::Server, 0, true}});
  const auto m = Simulator(inst, d,
                           fault_run(60.0, 23, down_up,
                                     FaultPolicy::RetryOnDevice))
          .run();
  // Tasks in flight at the instant are resteered; everything else proceeds.
  EXPECT_EQ(m.failed, 0u);
  EXPECT_NEAR(m.availability, 1.0, 1e-12);
  expect_conservation(m);
}

TEST(Faults, CrashAtTimeZeroNeverOffloads) {
  auto topo = single_device(3.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto m =
      Simulator(inst, d,
                fault_run(30.0, 29,
                          FaultSchedule::server_crash(
                              0, 0.0, std::numeric_limits<double>::infinity()),
                          FaultPolicy::RetryOnDevice))
          .run();
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.completed, 50u);
  EXPECT_DOUBLE_EQ(m.offload_fraction, 0.0);  // nothing ever reached a server
  EXPECT_NEAR(m.availability, 0.0, 1e-12);
  expect_conservation(m);
}

TEST(Faults, DroppedDeadlineTasksCountAsMisses) {
  // Loose deadline: every completion meets it, so deadline satisfaction is
  // exactly the completed fraction under the Drop policy.
  auto topo = single_device(3.0, 5.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto m =
      Simulator(inst, d,
                fault_run(60.0, 31,
                          FaultSchedule::server_crash(
                              0, 30.0, std::numeric_limits<double>::infinity()),
                          FaultPolicy::Drop))
          .run();
  ASSERT_GT(m.failed, 0u);
  const auto& dm = m.per_device[0];
  EXPECT_EQ(dm.deadline_total, dm.completed + dm.failed);
  EXPECT_LT(m.deadline_satisfaction, 1.0);
  EXPECT_NEAR(m.deadline_satisfaction,
              static_cast<double>(dm.deadline_met) /
                  static_cast<double>(dm.deadline_total),
              1e-12);
}

TEST(Faults, DeterministicForSeedWithScheduleActive) {
  auto topo = single_device(4.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto schedule = FaultSchedule::server_crash(0, 20.0, 35.0);
  const auto a = Simulator(inst, d, fault_run(80.0, 37, schedule,
                                              FaultPolicy::RetryOnDevice))
                     .run();
  const auto b = Simulator(inst, d, fault_run(80.0, 37, schedule,
                                              FaultPolicy::RetryOnDevice))
                     .run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.resteered, b.resteered);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_DOUBLE_EQ(a.outage_latency.p99(), b.outage_latency.p99());
}

TEST(Faults, ValidatesScheduleTargetsAndOptions) {
  auto topo = single_device(1.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  {
    auto o = fault_run(10.0, 1, FaultSchedule::server_crash(7, 1.0, 2.0),
                       FaultPolicy::Drop);
    EXPECT_THROW(Simulator(inst, d, o), ContractViolation);
  }
  {
    auto o = fault_run(10.0, 1, FaultSchedule::link_outage(3, 1.0, 2.0),
                       FaultPolicy::Drop);
    EXPECT_THROW(Simulator(inst, d, o), ContractViolation);
  }
  {
    auto o = fault_run(10.0, 1, FaultSchedule(), FaultPolicy::RetryOffload);
    o.faults.retry_backoff = 0.0;
    EXPECT_THROW(Simulator(inst, d, o), ContractViolation);
  }
}

}  // namespace
}  // namespace scalpel
