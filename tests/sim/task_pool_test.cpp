// Unit backfill for the task-pool layer the simulators (single-loop and
// sharded) build on: the SoA free-list discipline and the IndexDeque's
// head-cursor compaction — edge cases the integration suites only hit
// probabilistically.

#include "sim/task_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scalpel {
namespace {

TEST(TaskPool, AcquireGrowsAndRecyclesLifo) {
  TaskPool pool;
  const TaskIndex a = pool.acquire();
  const TaskIndex b = pool.acquire();
  const TaskIndex c = pool.acquire();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(pool.live(), 3u);
  EXPECT_EQ(pool.capacity(), 3u);

  pool.release(b);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.capacity(), 3u);  // slots recycle; the arrays never shrink

  // LIFO: the most recently released slot comes back first.
  EXPECT_EQ(pool.acquire(), a);
  EXPECT_EQ(pool.acquire(), b);
  EXPECT_EQ(pool.live(), 3u);
  EXPECT_EQ(pool.capacity(), 3u);  // no growth while the free list serves
}

TEST(TaskPool, AcquireResetsRecycledSlotState) {
  TaskPool pool;
  const TaskIndex t = pool.acquire();
  pool.device_done[t] = 4.5;
  pool.upload_done[t] = 5.5;
  pool.retries[t] = 7;
  pool.flags[t] = TaskPool::kCounted | TaskPool::kFaulted;
  pool.arrival[t] = 1.25;  // NOT reset: the arrival path always overwrites
  pool.release(t);

  const TaskIndex r = pool.acquire();
  ASSERT_EQ(r, t);
  EXPECT_EQ(pool.device_done[r], 0.0);
  EXPECT_EQ(pool.upload_done[r], 0.0);
  EXPECT_EQ(pool.retries[r], 0);
  EXPECT_EQ(pool.flags[r], 0);
  EXPECT_FALSE(pool.counted(r));
  EXPECT_FALSE(pool.faulted(r));
}

TEST(TaskPool, FlagQueries) {
  TaskPool pool;
  const TaskIndex t = pool.acquire();
  pool.flags[t] |= TaskPool::kCounted;
  EXPECT_TRUE(pool.counted(t));
  EXPECT_FALSE(pool.faulted(t));
  pool.flags[t] |= TaskPool::kFaulted;
  EXPECT_TRUE(pool.faulted(t));
}

TEST(TaskPool, LiveTracksAcquireRelease) {
  TaskPool pool;
  std::vector<TaskIndex> held;
  for (int i = 0; i < 10; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.live(), 10u);
  for (const TaskIndex t : held) pool.release(t);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), 10u);
}

TEST(IndexDeque, FifoOrder) {
  IndexDeque q;
  EXPECT_TRUE(q.empty());
  for (TaskIndex t = 0; t < 5; ++t) q.push_back(t);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.front(), 0u);
  for (TaskIndex t = 0; t < 5; ++t) EXPECT_EQ(q.pop_front(), t);
  EXPECT_TRUE(q.empty());
}

TEST(IndexDeque, CompactionPreservesOrderAcrossThreshold) {
  // Drive head_ past the compaction trigger (head_ >= 64 and dead prefix >=
  // half the buffer) while the queue stays non-empty, and check the stream
  // comes out in exact FIFO order anyway.
  IndexDeque q;
  TaskIndex next_push = 0;
  TaskIndex next_pop = 0;
  for (int i = 0; i < 200; ++i) q.push_back(next_push++);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.pop_front(), next_pop++);
    }
    q.push_back(next_push++);
  }
  while (!q.empty()) ASSERT_EQ(q.pop_front(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(IndexDeque, EraseAtLivePositions) {
  IndexDeque q;
  for (TaskIndex t = 0; t < 6; ++t) q.push_back(t);
  // Shift the live window so positions are relative to the head cursor, not
  // the backing buffer.
  EXPECT_EQ(q.pop_front(), 0u);
  EXPECT_EQ(q.pop_front(), 1u);
  // Live: 2 3 4 5
  q.erase_at(1);  // removes 3
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.at(0), 2u);
  EXPECT_EQ(q.at(1), 4u);
  EXPECT_EQ(q.at(2), 5u);
  q.erase_at(0);  // removes the front
  EXPECT_EQ(q.front(), 4u);
  q.erase_at(q.size() - 1);  // removes the back
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop_front(), 4u);
  EXPECT_TRUE(q.empty());
}

TEST(IndexDeque, ClearResetsHeadCursor) {
  IndexDeque q;
  for (TaskIndex t = 0; t < 8; ++t) q.push_back(t);
  for (int i = 0; i < 3; ++i) q.pop_front();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push_back(42);
  EXPECT_EQ(q.front(), 42u);
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace scalpel
