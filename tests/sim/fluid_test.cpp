#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace scalpel {
namespace {

TEST(Fluid, SingleJobFinishesAtDemandOverCapacity) {
  FluidResource r(10.0);
  double done_at = -1.0;
  r.add_job(0.0, 50.0, 1.0, [&](double t) { done_at = t; });
  EXPECT_NEAR(r.next_completion(), 5.0, 1e-9);
  r.complete_due(5.0);
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_TRUE(r.idle());
}

TEST(Fluid, EqualWeightsShareEqually) {
  FluidResource r(10.0);
  std::vector<double> done(2, -1.0);
  r.add_job(0.0, 50.0, 1.0, [&](double t) { done[0] = t; });
  r.add_job(0.0, 50.0, 1.0, [&](double t) { done[1] = t; });
  // Each gets 5.0/s: both finish at t=10.
  EXPECT_NEAR(r.next_completion(), 10.0, 1e-9);
  r.complete_due(10.0);
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST(Fluid, WeightsBiasRates) {
  FluidResource r(12.0);
  double heavy = -1.0;
  double light = -1.0;
  r.add_job(0.0, 60.0, 2.0, [&](double t) { heavy = t; });  // rate 8
  r.add_job(0.0, 60.0, 1.0, [&](double t) { light = t; });  // rate 4
  // Heavy finishes at t=7.5; then light runs at full 12: remaining
  // 60-4*7.5=30 -> +2.5s -> t=10.
  EXPECT_NEAR(r.next_completion(), 7.5, 1e-9);
  r.complete_due(7.5);
  EXPECT_NEAR(heavy, 7.5, 1e-9);
  EXPECT_LT(light, 0.0);  // still running
  EXPECT_NEAR(r.next_completion(), 10.0, 1e-9);
  r.complete_due(10.0);
  EXPECT_NEAR(light, 10.0, 1e-9);
}

TEST(Fluid, WorkConservingAfterDeparture) {
  // The surviving job accelerates once the other leaves — total finish time
  // must equal the work-conserving schedule, not the static-share one.
  FluidResource r(10.0);
  double a = -1.0;
  double b = -1.0;
  r.add_job(0.0, 20.0, 1.0, [&](double t) { a = t; });
  r.add_job(0.0, 80.0, 1.0, [&](double t) { b = t; });
  r.complete_due(4.0);  // a done at 4 (5/s each)
  EXPECT_NEAR(a, 4.0, 1e-9);
  // b has 60 left, now at 10/s -> finishes at 10. Static half-share would
  // have taken until 16.
  EXPECT_NEAR(r.next_completion(), 10.0, 1e-9);
  r.complete_due(10.0);
  EXPECT_NEAR(b, 10.0, 1e-9);
}

TEST(Fluid, LateArrivalSlowsIncumbent) {
  FluidResource r(10.0);
  double a = -1.0;
  r.add_job(0.0, 100.0, 1.0, [&](double t) { a = t; });
  // At t=5, 50 demand left; a second equal job arrives.
  r.add_job(5.0, 200.0, 1.0, [](double) {});
  // a now progresses at 5/s: 50/5 = 10 more seconds.
  EXPECT_NEAR(r.next_completion(), 15.0, 1e-9);
  r.complete_due(15.0);
  EXPECT_NEAR(a, 15.0, 1e-9);
}

TEST(Fluid, CapacityChangeMidFlight) {
  FluidResource r(10.0);
  double done = -1.0;
  r.add_job(0.0, 100.0, 1.0, [&](double t) { done = t; });
  r.set_capacity(5.0, 2.0);  // 50 demand left at 2/s -> +25s
  EXPECT_NEAR(r.next_completion(), 30.0, 1e-9);
  r.complete_due(30.0);
  EXPECT_NEAR(done, 30.0, 1e-9);
}

TEST(Fluid, EpochBumpsOnMutation) {
  FluidResource r(1.0);
  const auto e0 = r.epoch();
  r.add_job(0.0, 1.0, 1.0, [](double) {});
  EXPECT_GT(r.epoch(), e0);
  const auto e1 = r.epoch();
  r.set_capacity(0.1, 2.0);
  EXPECT_GT(r.epoch(), e1);
  const auto e2 = r.epoch();
  r.complete_due(0.6);  // job finishes
  EXPECT_GT(r.epoch(), e2);
}

TEST(Fluid, IdleWhenEmpty) {
  FluidResource r(5.0);
  EXPECT_TRUE(r.idle());
  EXPECT_TRUE(std::isinf(r.next_completion()));
  r.complete_due(3.0);  // harmless on idle
  EXPECT_TRUE(r.idle());
}

TEST(Fluid, BusyTimeAccounting) {
  FluidResource r(10.0);
  EXPECT_EQ(r.busy_time(5.0), 0.0);
  r.add_job(5.0, 50.0, 1.0, [](double) {});
  r.complete_due(10.0);
  EXPECT_NEAR(r.busy_time(20.0), 5.0, 1e-9);  // busy only 5..10
}

TEST(Fluid, CompletionCallbackMayAddJobs) {
  FluidResource r(10.0);
  double second_done = -1.0;
  r.add_job(0.0, 10.0, 1.0, [&](double t) {
    r.add_job(t, 10.0, 1.0, [&](double t2) { second_done = t2; });
  });
  r.complete_due(1.0);
  EXPECT_NEAR(r.next_completion(), 2.0, 1e-9);
  r.complete_due(2.0);
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(Fluid, ValidatesInputs) {
  EXPECT_THROW(FluidResource(0.0), ContractViolation);
  FluidResource r(1.0);
  EXPECT_THROW(r.add_job(0.0, 0.0, 1.0, [](double) {}), ContractViolation);
  EXPECT_THROW(r.add_job(0.0, 1.0, 0.0, [](double) {}), ContractViolation);
  EXPECT_THROW(r.set_capacity(0.0, -1.0), ContractViolation);
}

TEST(Fluid, ManyJobsConservation) {
  // Total service delivered equals capacity x busy time.
  FluidResource r(7.0);
  double total_demand = 0.0;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    const double demand = 3.0 + i;
    total_demand += demand;
    r.add_job(0.0, demand, 1.0 + (i % 3), [&](double) { ++completed; });
  }
  // Everything must drain by total_demand / capacity.
  const double drain = total_demand / 7.0;
  double t = 0.0;
  while (!r.idle()) {
    t = r.next_completion();
    r.complete_due(t);
  }
  EXPECT_EQ(completed, 20);
  EXPECT_NEAR(t, drain, 1e-6);
}

}  // namespace
}  // namespace scalpel
