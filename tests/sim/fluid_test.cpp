#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace scalpel {
namespace {

/// Test sink: records every completion as (tag, time) in fire order.
struct RecordingSink : FluidSink {
  std::vector<std::pair<std::uint64_t, double>> done;

  void fluid_job_done(std::uint64_t tag, double now) override {
    done.emplace_back(tag, now);
  }

  /// Completion time of `tag`, or -1 when it has not fired.
  double time_of(std::uint64_t tag) const {
    for (const auto& [t, at] : done) {
      if (t == tag) return at;
    }
    return -1.0;
  }
};

TEST(Fluid, SingleJobFinishesAtDemandOverCapacity) {
  FluidResource r(10.0);
  RecordingSink sink;
  r.add_job(0.0, 50.0, 1.0, 7);
  EXPECT_NEAR(r.next_completion(), 5.0, 1e-9);
  r.complete_due(5.0, sink);
  EXPECT_NEAR(sink.time_of(7), 5.0, 1e-9);
  EXPECT_TRUE(r.idle());
}

TEST(Fluid, EqualWeightsShareEqually) {
  FluidResource r(10.0);
  RecordingSink sink;
  r.add_job(0.0, 50.0, 1.0, 0);
  r.add_job(0.0, 50.0, 1.0, 1);
  // Each gets 5.0/s: both finish at t=10.
  EXPECT_NEAR(r.next_completion(), 10.0, 1e-9);
  r.complete_due(10.0, sink);
  EXPECT_NEAR(sink.time_of(0), 10.0, 1e-9);
  EXPECT_NEAR(sink.time_of(1), 10.0, 1e-9);
}

TEST(Fluid, WeightsBiasRates) {
  FluidResource r(12.0);
  RecordingSink sink;
  r.add_job(0.0, 60.0, 2.0, 0);  // heavy: rate 8
  r.add_job(0.0, 60.0, 1.0, 1);  // light: rate 4
  // Heavy finishes at t=7.5; then light runs at full 12: remaining
  // 60-4*7.5=30 -> +2.5s -> t=10.
  EXPECT_NEAR(r.next_completion(), 7.5, 1e-9);
  r.complete_due(7.5, sink);
  EXPECT_NEAR(sink.time_of(0), 7.5, 1e-9);
  EXPECT_LT(sink.time_of(1), 0.0);  // still running
  EXPECT_NEAR(r.next_completion(), 10.0, 1e-9);
  r.complete_due(10.0, sink);
  EXPECT_NEAR(sink.time_of(1), 10.0, 1e-9);
}

TEST(Fluid, WorkConservingAfterDeparture) {
  // The surviving job accelerates once the other leaves — total finish time
  // must equal the work-conserving schedule, not the static-share one.
  FluidResource r(10.0);
  RecordingSink sink;
  r.add_job(0.0, 20.0, 1.0, 0);
  r.add_job(0.0, 80.0, 1.0, 1);
  r.complete_due(4.0, sink);  // job 0 done at 4 (5/s each)
  EXPECT_NEAR(sink.time_of(0), 4.0, 1e-9);
  // Job 1 has 60 left, now at 10/s -> finishes at 10. Static half-share
  // would have taken until 16.
  EXPECT_NEAR(r.next_completion(), 10.0, 1e-9);
  r.complete_due(10.0, sink);
  EXPECT_NEAR(sink.time_of(1), 10.0, 1e-9);
}

TEST(Fluid, LateArrivalSlowsIncumbent) {
  FluidResource r(10.0);
  RecordingSink sink;
  r.add_job(0.0, 100.0, 1.0, 0);
  // At t=5, 50 demand left; a second equal job arrives.
  r.add_job(5.0, 200.0, 1.0, 1);
  // Job 0 now progresses at 5/s: 50/5 = 10 more seconds.
  EXPECT_NEAR(r.next_completion(), 15.0, 1e-9);
  r.complete_due(15.0, sink);
  EXPECT_NEAR(sink.time_of(0), 15.0, 1e-9);
}

TEST(Fluid, CapacityChangeMidFlight) {
  FluidResource r(10.0);
  RecordingSink sink;
  r.add_job(0.0, 100.0, 1.0, 0);
  r.set_capacity(5.0, 2.0);  // 50 demand left at 2/s -> +25s
  EXPECT_NEAR(r.next_completion(), 30.0, 1e-9);
  r.complete_due(30.0, sink);
  EXPECT_NEAR(sink.time_of(0), 30.0, 1e-9);
}

TEST(Fluid, EpochBumpsOnMutation) {
  FluidResource r(1.0);
  RecordingSink sink;
  const auto e0 = r.epoch();
  r.add_job(0.0, 1.0, 1.0, 0);
  EXPECT_GT(r.epoch(), e0);
  const auto e1 = r.epoch();
  r.set_capacity(0.1, 2.0);
  EXPECT_GT(r.epoch(), e1);
  const auto e2 = r.epoch();
  r.complete_due(0.6, sink);  // job finishes
  EXPECT_GT(r.epoch(), e2);
}

TEST(Fluid, IdleWhenEmpty) {
  FluidResource r(5.0);
  RecordingSink sink;
  EXPECT_TRUE(r.idle());
  EXPECT_TRUE(std::isinf(r.next_completion()));
  r.complete_due(3.0, sink);  // harmless on idle
  EXPECT_TRUE(r.idle());
  EXPECT_TRUE(sink.done.empty());
}

TEST(Fluid, BusyTimeAccounting) {
  FluidResource r(10.0);
  RecordingSink sink;
  EXPECT_EQ(r.busy_time(5.0), 0.0);
  r.add_job(5.0, 50.0, 1.0, 0);
  r.complete_due(10.0, sink);
  EXPECT_NEAR(r.busy_time(20.0), 5.0, 1e-9);  // busy only 5..10
}

TEST(Fluid, SinkMayAddJobsFromCompletion) {
  // The simulator's sink schedules follow-up work from inside
  // fluid_job_done — sometimes straight back onto the same resource.
  struct ChainingSink : FluidSink {
    FluidResource* r = nullptr;
    double second_done = -1.0;

    void fluid_job_done(std::uint64_t tag, double now) override {
      if (tag == 0) {
        r->add_job(now, 10.0, 1.0, 1);
      } else {
        second_done = now;
      }
    }
  };
  FluidResource r(10.0);
  ChainingSink sink;
  sink.r = &r;
  r.add_job(0.0, 10.0, 1.0, 0);
  r.complete_due(1.0, sink);
  EXPECT_NEAR(r.next_completion(), 2.0, 1e-9);
  r.complete_due(2.0, sink);
  EXPECT_NEAR(sink.second_done, 2.0, 1e-9);
}

TEST(Fluid, CompletionsFireInAddOrder) {
  // Jobs finishing in the same settle fire their tags in add order — part
  // of the simulator's determinism contract.
  FluidResource r(10.0);
  RecordingSink sink;
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    r.add_job(0.0, 10.0, 1.0, tag);
  }
  r.complete_due(4.0, sink);
  ASSERT_EQ(sink.done.size(), 4u);
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    EXPECT_EQ(sink.done[tag].first, tag);
  }
}

TEST(Fluid, ValidatesInputs) {
  EXPECT_THROW(FluidResource(0.0), ContractViolation);
  FluidResource r(1.0);
  EXPECT_THROW(r.add_job(0.0, 0.0, 1.0, 0), ContractViolation);
  EXPECT_THROW(r.add_job(0.0, 1.0, 0.0, 0), ContractViolation);
  EXPECT_THROW(r.set_capacity(0.0, -1.0), ContractViolation);
}

TEST(Fluid, ManyJobsConservation) {
  // Total service delivered equals capacity x busy time.
  FluidResource r(7.0);
  RecordingSink sink;
  double total_demand = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double demand = 3.0 + i;
    total_demand += demand;
    r.add_job(0.0, demand, 1.0 + (i % 3), static_cast<std::uint64_t>(i));
  }
  // Everything must drain by total_demand / capacity.
  const double drain = total_demand / 7.0;
  double t = 0.0;
  while (!r.idle()) {
    t = r.next_completion();
    r.complete_due(t, sink);
  }
  EXPECT_EQ(sink.done.size(), 20u);
  EXPECT_NEAR(t, drain, 1e-6);
}

}  // namespace
}  // namespace scalpel
