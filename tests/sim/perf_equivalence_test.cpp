// Differential determinism suite for the event-queue swap: the calendar
// queue (production) and the retained binary-heap reference must drive the
// simulator to BIT-IDENTICAL results — metrics aggregates, trace streams,
// conservation counters, and events_processed — on scenarios shaped like
// the paper benches (F4 arrival sweep, F16 faults, F17 overload). This is
// the safety net that lets the hot-path engineering claim "same simulator,
// just faster".

#include <gtest/gtest.h>

#include <vector>

#include "core/joint.hpp"
#include "edge/builders.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace scalpel {
namespace {

JointOptions fast_opts() {
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

void expect_samples_identical(const Samples& a, const Samples& b) {
  ASSERT_EQ(a.count(), b.count());
  const auto& va = a.values();
  const auto& vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i], vb[i]) << "sample " << i;  // bitwise, not approximate
  }
}

/// Every field of SimMetrics, bit-for-bit. EXPECT_EQ on doubles is exact
/// equality on purpose — the determinism bar is "identical", not "close".
void expect_metrics_identical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.resteered, b.resteered);
  EXPECT_EQ(a.completed_all, b.completed_all);
  EXPECT_EQ(a.failed_all, b.failed_all);
  EXPECT_EQ(a.shed_all, b.shed_all);
  EXPECT_EQ(a.in_flight_end, b.in_flight_end);
  EXPECT_EQ(a.deadline_satisfaction, b.deadline_satisfaction);
  EXPECT_EQ(a.measured_accuracy, b.measured_accuracy);
  EXPECT_EQ(a.mean_task_energy, b.mean_task_energy);
  EXPECT_EQ(a.offload_fraction, b.offload_fraction);
  EXPECT_EQ(a.availability, b.availability);
  expect_samples_identical(a.latency, b.latency);
  expect_samples_identical(a.outage_latency, b.outage_latency);
  ASSERT_EQ(a.server_utilization.size(), b.server_utilization.size());
  for (std::size_t s = 0; s < a.server_utilization.size(); ++s) {
    EXPECT_EQ(a.server_utilization[s], b.server_utilization[s]);
  }
  ASSERT_EQ(a.per_device.size(), b.per_device.size());
  for (std::size_t i = 0; i < a.per_device.size(); ++i) {
    const auto& da = a.per_device[i];
    const auto& db = b.per_device[i];
    EXPECT_EQ(da.arrived, db.arrived) << "device " << i;
    EXPECT_EQ(da.completed, db.completed) << "device " << i;
    EXPECT_EQ(da.failed, db.failed) << "device " << i;
    EXPECT_EQ(da.shed, db.shed) << "device " << i;
    EXPECT_EQ(da.expired, db.expired) << "device " << i;
    EXPECT_EQ(da.retries, db.retries) << "device " << i;
    EXPECT_EQ(da.resteered, db.resteered) << "device " << i;
    EXPECT_EQ(da.deadline_met, db.deadline_met) << "device " << i;
    EXPECT_EQ(da.deadline_total, db.deadline_total) << "device " << i;
    EXPECT_EQ(da.accuracy_sum, db.accuracy_sum) << "device " << i;
    EXPECT_EQ(da.energy_sum, db.energy_sum) << "device " << i;
    EXPECT_EQ(da.exit_histogram, db.exit_histogram) << "device " << i;
  }
  ASSERT_EQ(a.series.tasks_in_flight.size(), b.series.tasks_in_flight.size());
  for (std::size_t w = 0; w < a.series.tasks_in_flight.size(); ++w) {
    EXPECT_EQ(a.series.tasks_in_flight[w], b.series.tasks_in_flight[w]);
    EXPECT_EQ(a.series.completion_rate[w], b.series.completion_rate[w]);
    EXPECT_EQ(a.series.mean_accuracy[w], b.series.mean_accuracy[w]);
    EXPECT_EQ(a.series.shed_rate[w], b.series.shed_rate[w]);
  }
}

/// Runs the scenario under both queue implementations and holds them to
/// bit-identical metrics, full trace streams, and conservation.
void expect_queue_equivalence(const ProblemInstance& instance,
                              const Decision& d, Simulator::Options opts) {
  opts.trace_capacity = 1 << 18;  // large enough that nothing is dropped

  opts.event_queue = EventQueueImpl::kBinaryHeap;
  Simulator heap_sim(instance, d, opts);
  const SimMetrics heap_m = heap_sim.run();
  const std::vector<TraceEvent> heap_trace = heap_sim.trace().snapshot();
  const std::uint64_t heap_recorded = heap_sim.trace().recorded();

  opts.event_queue = EventQueueImpl::kCalendar;
  Simulator cal_sim(instance, d, opts);
  const SimMetrics cal_m = cal_sim.run();
  const std::vector<TraceEvent> cal_trace = cal_sim.trace().snapshot();

  expect_metrics_identical(heap_m, cal_m);

  // Trace streams: same number of recorded events, and every retained
  // record identical in content AND order.
  EXPECT_EQ(heap_recorded, cal_sim.trace().recorded());
  ASSERT_EQ(heap_trace.size(), cal_trace.size());
  EXPECT_EQ(heap_sim.trace().dropped(), 0u) << "ring too small for scenario";
  for (std::size_t i = 0; i < heap_trace.size(); ++i) {
    ASSERT_TRUE(heap_trace[i] == cal_trace[i]) << "trace event " << i;
  }

  // Conservation, independently for both runs.
  EXPECT_EQ(heap_m.arrived, heap_m.completed_all + heap_m.failed_all +
                                heap_m.shed_all + heap_m.in_flight_end);
  EXPECT_EQ(cal_m.arrived, cal_m.completed_all + cal_m.failed_all +
                               cal_m.shed_all + cal_m.in_flight_end);
  EXPECT_GT(cal_m.events_processed, 0u);
}

class PerfEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

// F4-shaped: plain arrival sweep — the seed scales the offered load from
// light to past saturation.
TEST_P(PerfEquivalenceTest, ArrivalSweepBitIdentical) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 8;
  copts.num_servers = 3;
  copts.mean_arrival_rate = 1.0 + 1.5 * static_cast<double>(seed % 4);
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options opts;
  opts.horizon = 20.0;
  opts.warmup = 2.0;
  opts.seed = seed;
  opts.series_window = 1.0;
  expect_queue_equivalence(instance, d, opts);
}

// F16-shaped: server/link outages under each fault policy. Fault handling
// reorders queues, schedules retry backoffs, and clears fluid resources —
// the paths most likely to betray an event-order difference.
TEST_P(PerfEquivalenceTest, FaultScheduleBitIdentical) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 6;
  copts.num_servers = 2;
  copts.mean_arrival_rate = 2.0;
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options opts;
  opts.horizon = 20.0;
  opts.warmup = 2.0;
  opts.seed = seed;
  std::vector<FaultEvent> events;
  events.push_back({5.0, FaultTarget::Server, 0, false});
  events.push_back({9.0, FaultTarget::Server, 0, true});
  events.push_back({12.0, FaultTarget::Link, 0, false});
  events.push_back({14.0, FaultTarget::Link, 0, true});
  opts.faults.schedule = FaultSchedule(events);
  const FaultPolicy policies[] = {FaultPolicy::Drop,
                                  FaultPolicy::RetryOnDevice,
                                  FaultPolicy::RetryOffload};
  opts.faults.policy = policies[seed % 3];
  expect_queue_equivalence(instance, d, opts);
}

// F17-shaped: bounded queues, shedding policy, a scripted rate burst and an
// admission gate — heavy queue-victim selection and gate RNG traffic.
TEST_P(PerfEquivalenceTest, OverloadBitIdentical) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 6;
  copts.num_servers = 2;
  copts.mean_arrival_rate = 2.5;
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options opts;
  opts.horizon = 18.0;
  opts.warmup = 2.0;
  opts.seed = seed;
  const OverloadPolicy policies[] = {OverloadPolicy::Block,
                                     OverloadPolicy::ShedNewest,
                                     OverloadPolicy::ShedExpired};
  opts.overload.policy = policies[seed % 3];
  opts.overload.device_queue_limit = 3;
  opts.overload.upload_queue_limit = 2;
  opts.overload.server_queue_limit = 2;
  opts.rate_bursts.push_back(RateBurst{4.0, 10.0, 12.0});
  opts.trace_capacity = 1 << 18;

  opts.event_queue = EventQueueImpl::kBinaryHeap;
  Simulator heap_sim(instance, d, opts);
  std::vector<double> gate;
  for (std::size_t i = 0; i < instance.topology().devices().size(); ++i) {
    gate.push_back(0.5 + 0.05 * static_cast<double>(i));
  }
  heap_sim.set_admission(gate);
  const SimMetrics heap_m = heap_sim.run();
  const auto heap_trace = heap_sim.trace().snapshot();

  opts.event_queue = EventQueueImpl::kCalendar;
  Simulator cal_sim(instance, d, opts);
  cal_sim.set_admission(gate);
  const SimMetrics cal_m = cal_sim.run();
  const auto cal_trace = cal_sim.trace().snapshot();

  expect_metrics_identical(heap_m, cal_m);
  ASSERT_EQ(heap_trace.size(), cal_trace.size());
  for (std::size_t i = 0; i < heap_trace.size(); ++i) {
    ASSERT_TRUE(heap_trace[i] == cal_trace[i]) << "trace event " << i;
  }
  // The burst over tight limits must actually shed, or this exercises
  // nothing beyond the arrival sweep.
  EXPECT_GT(cal_m.shed_all, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerfEquivalenceTest,
                         ::testing::Values(3, 17, 42, 99, 123, 256));

// Replication fan-out: per-replication counters must be identical across
// BOTH thread counts AND queue implementations — the full determinism
// matrix the header promises.
TEST(PerfEquivalence, ReplicatedMatrixBitIdentical) {
  clusters::CampusOptions copts;
  copts.seed = 11;
  copts.num_devices = 5;
  copts.num_servers = 2;
  copts.mean_arrival_rate = 2.0;
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  ScenarioRunner::Options ropts;
  ropts.replications = 4;
  ropts.sim.horizon = 12.0;
  ropts.sim.warmup = 1.0;
  ropts.sim.seed = 11;
  ropts.sim.faults.schedule = FaultSchedule::server_crash(0, 4.0, 7.0);

  std::vector<ReplicatedMetrics> runs;
  for (const auto impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ropts.sim.event_queue = impl;
      ropts.threads = threads;
      runs.push_back(ScenarioRunner(instance, d, ropts).run());
    }
  }
  const auto& ref = runs.front();
  for (std::size_t k = 1; k < runs.size(); ++k) {
    const auto& other = runs[k];
    EXPECT_EQ(ref.arrived, other.arrived) << "run " << k;
    EXPECT_EQ(ref.completed, other.completed) << "run " << k;
    ASSERT_EQ(ref.replications.size(), other.replications.size());
    for (std::size_t r = 0; r < ref.replications.size(); ++r) {
      const auto& a = ref.replications[r];
      const auto& b = other.replications[r];
      EXPECT_EQ(a.arrived, b.arrived) << "run " << k << " rep " << r;
      EXPECT_EQ(a.completed, b.completed) << "run " << k << " rep " << r;
      EXPECT_EQ(a.failed, b.failed) << "run " << k << " rep " << r;
      EXPECT_EQ(a.events_processed, b.events_processed)
          << "run " << k << " rep " << r;
      if (!a.latency.empty()) {
        EXPECT_EQ(a.latency.mean(), b.latency.mean())
            << "run " << k << " rep " << r;
      }
    }
  }
}

}  // namespace
}  // namespace scalpel
