#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "profile/compute_profile.hpp"
#include "profile/energy_model.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

/// One device / one server / one cell topology with controllable rate.
ClusterTopology single_device(double rate) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "c", mbps(100.0), ms(1.0)});
  Device d;
  d.name = "dev";
  d.compute = profiles::smartphone();
  d.energy = profiles::energy_phone();
  d.cell = cell;
  d.model = "tiny_cnn";
  d.arrival_rate = rate;
  t.add_device(d);
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = ms(0.5);
  t.add_server(s);
  return t;
}

Decision local_decision(const ProblemInstance& instance) {
  Decision d;
  d.scheme = "test_local";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);
  return d;
}

ScenarioRunner::Options runner_opts(std::size_t replications,
                                    std::size_t threads,
                                    std::uint64_t seed = 21,
                                    double horizon = 60.0) {
  ScenarioRunner::Options o;
  o.replications = replications;
  o.threads = threads;
  o.sim.horizon = horizon;
  o.sim.warmup = horizon * 0.1;
  o.sim.seed = seed;
  return o;
}

TEST(ScenarioRunner, AggregateBitIdenticalAcrossThreadCounts) {
  // The acceptance contract: same seed + replication count => the aggregate
  // SimMetrics fold is bit-identical no matter how the fan-out is scheduled.
  const ProblemInstance inst(single_device(4.0));
  const auto d = local_decision(inst);
  const auto base =
      ScenarioRunner(inst, d, runner_opts(8, 1)).run();
  for (std::size_t threads : {2ul, 8ul}) {
    const auto m =
        ScenarioRunner(inst, d, runner_opts(8, threads)).run();
    EXPECT_EQ(m.arrived, base.arrived);
    EXPECT_EQ(m.completed, base.completed);
    // values() preserves replication order, so bitwise equality is exact.
    EXPECT_EQ(m.mean_latency.values(), base.mean_latency.values());
    EXPECT_EQ(m.p99_latency.values(), base.p99_latency.values());
    EXPECT_EQ(m.throughput.values(), base.throughput.values());
    EXPECT_EQ(m.deadline_satisfaction.values(),
              base.deadline_satisfaction.values());
    EXPECT_DOUBLE_EQ(summarize(m.mean_latency).ci95,
                     summarize(base.mean_latency).ci95);
    ASSERT_EQ(m.replications.size(), base.replications.size());
    for (std::size_t r = 0; r < m.replications.size(); ++r) {
      EXPECT_EQ(m.replications[r].completed, base.replications[r].completed);
    }
  }
}

TEST(ScenarioRunner, FaultScheduleAggregatesBitIdenticalAcrossThreads) {
  // Fault injection must not break the determinism contract: with a crash /
  // recovery script active, per-replication and folded aggregates are still
  // bit-identical for 1, 2, and 8 worker threads.
  const ProblemInstance inst(single_device(4.0));
  Decision d;
  d.scheme = "test_offload";
  d.per_device.resize(1);
  d.per_device[0].plan.partition_after = 0;
  d.per_device[0].server = 0;
  d.per_device[0].compute_share = 1.0;
  d.per_device[0].bandwidth = inst.topology().cell(0).bandwidth;
  evaluate_decision(inst, d);

  auto with_faults = [&](std::size_t threads) {
    auto o = runner_opts(8, threads);
    o.sim.faults.schedule = FaultSchedule::server_crash(0, 20.0, 35.0);
    o.sim.faults.policy = FaultPolicy::RetryOffload;
    o.sim.faults.max_retries = 50;
    o.sim.faults.retry_timeout = 40.0;
    return ScenarioRunner(inst, d, o).run();
  };
  const auto base = with_faults(1);
  EXPECT_GT(base.failed + base.arrived - base.completed, 0u);
  EXPECT_EQ(base.availability.count(), 8u);
  for (std::size_t threads : {2ul, 8ul}) {
    const auto m = with_faults(threads);
    EXPECT_EQ(m.arrived, base.arrived);
    EXPECT_EQ(m.completed, base.completed);
    EXPECT_EQ(m.failed, base.failed);
    EXPECT_EQ(m.mean_latency.values(), base.mean_latency.values());
    EXPECT_EQ(m.availability.values(), base.availability.values());
    EXPECT_EQ(m.failed_fraction.values(), base.failed_fraction.values());
    ASSERT_EQ(m.replications.size(), base.replications.size());
    for (std::size_t r = 0; r < m.replications.size(); ++r) {
      EXPECT_EQ(m.replications[r].completed, base.replications[r].completed);
      EXPECT_EQ(m.replications[r].failed, base.replications[r].failed);
      EXPECT_EQ(m.replications[r].retried, base.replications[r].retried);
    }
  }
}

TEST(ScenarioRunner, DistinctSubstreamsPerReplicationId) {
  std::set<std::uint64_t> seeds;
  for (std::size_t r = 0; r < 64; ++r) {
    seeds.insert(ScenarioRunner::replication_seed(21, r));
  }
  EXPECT_EQ(seeds.size(), 64u);

  // Distinct substreams must actually decorrelate the trajectories: across 8
  // replications the completion counts cannot all collapse to one value.
  const ProblemInstance inst(single_device(4.0));
  const auto m =
      ScenarioRunner(inst, local_decision(inst), runner_opts(8, 4)).run();
  std::set<std::size_t> completed;
  for (const auto& rep : m.replications) completed.insert(rep.completed);
  EXPECT_GT(completed.size(), 1u);
}

TEST(ScenarioRunner, ReplicationReproducibleAsSingleRun) {
  // Any replication can be re-run standalone with its published seed — the
  // debugging workflow the substream design exists for.
  const ProblemInstance inst(single_device(4.0));
  const auto d = local_decision(inst);
  const auto opts = runner_opts(4, 4);
  const auto m = ScenarioRunner(inst, d, opts).run();
  for (std::size_t r = 0; r < 4; ++r) {
    Simulator::Options o = opts.sim;
    o.seed = ScenarioRunner::replication_seed(opts.sim.seed, r);
    Simulator solo(inst, d, o);
    const auto sm = solo.run();
    EXPECT_EQ(sm.completed, m.replications[r].completed);
    EXPECT_DOUBLE_EQ(sm.latency.mean(), m.replications[r].latency.mean());
  }
}

TEST(ScenarioRunner, BaseSeedChangesEveryReplication) {
  const ProblemInstance inst(single_device(4.0));
  const auto d = local_decision(inst);
  const auto a = ScenarioRunner(inst, d, runner_opts(4, 2, 21)).run();
  const auto b = ScenarioRunner(inst, d, runner_opts(4, 2, 22)).run();
  EXPECT_NE(a.mean_latency.values(), b.mean_latency.values());
}

TEST(ScenarioRunner, SummaryShapesMatchReplicationCount) {
  const ProblemInstance inst(single_device(4.0));
  const auto m =
      ScenarioRunner(inst, local_decision(inst), runner_opts(8, 0)).run();
  const Summary s = m.latency_summary();
  EXPECT_EQ(s.n, 8u);
  EXPECT_GT(s.mean, 0.0);
  EXPECT_GT(s.ci95, 0.0);
  EXPECT_EQ(m.mean_latency.count(), 8u);
  EXPECT_EQ(m.accuracy.count(), 8u);
  EXPECT_EQ(m.task_energy.count(), 8u);
  EXPECT_EQ(m.offload_fraction.count(), 8u);
  EXPECT_EQ(m.replications.size(), 8u);
}

TEST(ScenarioRunner, RequireCompletionsRejectsEmptyReplications) {
  // Arrivals at 0.001/s essentially never land inside a 1 s horizon: with
  // require_completions the runner must refuse to aggregate zeros.
  const ProblemInstance inst(single_device(0.001));
  const auto d = local_decision(inst);
  auto opts = runner_opts(2, 1, 5, 1.0);
  EXPECT_THROW(ScenarioRunner(inst, d, opts).run(), ContractViolation);
  opts.require_completions = false;
  const auto m = ScenarioRunner(inst, d, opts).run();
  EXPECT_EQ(m.completed, 0u);
  EXPECT_TRUE(m.mean_latency.empty());
  EXPECT_EQ(m.replications.size(), 2u);
}

TEST(ScenarioRunner, ValidatesOptions) {
  const ProblemInstance inst(single_device(1.0));
  const auto d = local_decision(inst);
  {
    auto o = runner_opts(0, 1);
    EXPECT_THROW(ScenarioRunner(inst, d, o), ContractViolation);
  }
  {
    auto o = runner_opts(2, 1);
    o.sim.warmup = o.sim.horizon;
    EXPECT_THROW(ScenarioRunner(inst, d, o), ContractViolation);
  }
}

}  // namespace
}  // namespace scalpel
