#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.hpp"
#include "util/assert.hpp"
#include "edge/builders.hpp"
#include "profile/latency_model.hpp"
#include "sched/queueing.hpp"
#include "sim/runner.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

/// One device / one server / one cell topology with controllable rate.
ClusterTopology single_device(double rate, double deadline = 0.0) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "c", mbps(100.0), ms(1.0)});
  Device d;
  d.name = "dev";
  d.compute = profiles::smartphone();
  d.energy = profiles::energy_phone();
  d.cell = cell;
  d.model = "tiny_cnn";
  d.arrival_rate = rate;
  d.deadline = deadline;
  t.add_device(d);
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = ms(0.5);
  t.add_server(s);
  return t;
}

Decision local_decision(const ProblemInstance& instance) {
  Decision d;
  d.scheme = "test_local";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);
  return d;
}

Decision offload_decision(const ProblemInstance& instance, double share,
                          double bw) {
  Decision d;
  d.scheme = "test_offload";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) {
    dd.plan.partition_after = 0;
    dd.server = 0;
    dd.compute_share = share;
    dd.bandwidth = bw;
  }
  evaluate_decision(instance, d);
  return d;
}

Simulator::Options fast_run(double horizon = 200.0, std::uint64_t seed = 3) {
  Simulator::Options o;
  o.horizon = horizon;
  o.warmup = horizon * 0.1;
  o.seed = seed;
  return o;
}

TEST(Simulator, ConservationAndCounting) {
  const ProblemInstance inst(single_device(4.0));
  Simulator sim(inst, local_decision(inst), fast_run());
  const auto m = sim.run();
  EXPECT_GT(m.completed, 0u);
  EXPECT_GE(m.arrived, m.completed);
  EXPECT_EQ(m.per_device.size(), 1u);
  EXPECT_EQ(m.per_device[0].completed, m.completed);
  EXPECT_EQ(m.latency.count(), m.completed);
}

TEST(Simulator, DeterministicForSeed) {
  const ProblemInstance inst(single_device(4.0));
  const auto d = local_decision(inst);
  Simulator a(inst, d, fast_run(100.0, 42));
  Simulator b(inst, d, fast_run(100.0, 42));
  const auto ma = a.run();
  const auto mb = b.run();
  EXPECT_EQ(ma.completed, mb.completed);
  EXPECT_DOUBLE_EQ(ma.latency.mean(), mb.latency.mean());
}

TEST(Simulator, DifferentSeedsDiffer) {
  const ProblemInstance inst(single_device(4.0));
  const auto d = local_decision(inst);
  Simulator a(inst, d, fast_run(100.0, 1));
  Simulator b(inst, d, fast_run(100.0, 2));
  EXPECT_NE(a.run().completed, b.run().completed);
}

TEST(Simulator, LocalServiceMatchesMD1Theory) {
  // Deterministic on-device service + Poisson arrivals = M/D/1 exactly.
  const ProblemInstance inst(single_device(1.0));
  const auto& bundle = inst.bundle_for(0);
  const double service = LatencyModel::graph_latency(
      bundle.graph, inst.topology().device(0).compute);
  // Pick a rate for rho ~ 0.6.
  const double rate = 0.6 / service;
  const ProblemInstance inst2(single_device(rate));
  Simulator sim(inst2, local_decision(inst2), fast_run(4000.0 * service, 9));
  const auto m = sim.run();
  const double predicted = queueing::md1_sojourn(rate, service);
  ASSERT_GT(m.completed, 1000u);
  EXPECT_NEAR(m.latency.mean(), predicted, predicted * 0.12)
      << "rho=0.6 M/D/1 check";
}

TEST(Simulator, UnloadedOffloadPipelineMatchesDeterministicSum) {
  // Very low rate: no queueing anywhere; end-to-end latency must equal the
  // queueing-free analytical prediction (full shares, full bandwidth).
  auto topo = single_device(0.05);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  Simulator sim(inst, d, fast_run(2000.0, 5));
  const auto m = sim.run();
  ASSERT_GT(m.completed, 30u);
  DeviceDecision dd = d.per_device[0];
  EvalOptions no_q;
  no_q.queueing = false;
  const auto pred = evaluate_device(inst, 0, dd, no_q);
  EXPECT_NEAR(m.latency.mean(), pred.expected_latency,
              pred.expected_latency * 0.05);
  EXPECT_NEAR(m.offload_fraction, 1.0, 1e-12);
}

TEST(Simulator, QueueingRaisesLatencyWithLoad) {
  const ProblemInstance low(single_device(0.2));
  const ProblemInstance high(single_device(30.0));
  Simulator a(low, local_decision(low), fast_run(300.0, 7));
  Simulator b(high, local_decision(high), fast_run(300.0, 7));
  const auto ma = a.run();
  const auto mb = b.run();
  EXPECT_GT(mb.latency.mean(), ma.latency.mean());
}

TEST(Simulator, DeadlineMetric) {
  // Deterministic local service at negligible load.
  const ProblemInstance inst(single_device(1.0));
  const auto& bundle = inst.bundle_for(0);
  const double service = LatencyModel::graph_latency(
      bundle.graph, inst.topology().device(0).compute);
  {
    const ProblemInstance loose(single_device(0.1, service * 10.0));
    Simulator sim(loose, local_decision(loose), fast_run(400.0, 11));
    EXPECT_NEAR(sim.run().deadline_satisfaction, 1.0, 1e-12);
  }
  {
    const ProblemInstance tight(single_device(0.1, service * 0.5));
    Simulator sim(tight, local_decision(tight), fast_run(400.0, 11));
    EXPECT_NEAR(sim.run().deadline_satisfaction, 0.0, 1e-12);
  }
}

TEST(Simulator, ExitHistogramTracksAnalyticFireProbabilities) {
  auto topo = single_device(1.0);
  const ProblemInstance inst(topo);
  const auto& bundle = inst.bundle_for(0);
  ASSERT_GE(bundle.candidates.size(), 1u);
  Decision d;
  d.per_device.resize(1);
  d.per_device[0].plan.device_only = true;
  d.per_device[0].plan.policy.exits = {{0, 0.2}};
  evaluate_decision(inst, d);
  Simulator sim(inst, d, fast_run(3000.0, 13));
  const auto m = sim.run();
  const auto stats = evaluate_policy(bundle.graph, bundle.candidates,
                                     d.per_device[0].plan.policy,
                                     bundle.accuracy);
  ASSERT_GE(m.per_device[0].exit_histogram.size(), 2u);
  const double measured_fire =
      static_cast<double>(m.per_device[0].exit_histogram[1]) /
      static_cast<double>(m.completed);
  EXPECT_NEAR(measured_fire, stats.fire_prob[0], 0.03);
}

TEST(Simulator, MeasuredAccuracyNearAnalytic) {
  const ProblemInstance inst(single_device(1.0));
  const auto d = local_decision(inst);
  Simulator sim(inst, d, fast_run(2000.0, 17));
  const auto m = sim.run();
  EXPECT_NEAR(m.measured_accuracy, d.predicted[0].expected_accuracy, 0.02);
}

TEST(Simulator, ServerUtilizationTracksLoad) {
  auto topo = single_device(2.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  Simulator sim(inst, d, fast_run(500.0, 19));
  const auto m = sim.run();
  ASSERT_EQ(m.server_utilization.size(), 1u);
  EXPECT_GT(m.server_utilization[0], 0.0);
  EXPECT_LT(m.server_utilization[0], 1.0);
}

TEST(Simulator, BandwidthTraceSlowsUploads) {
  auto topo = single_device(2.0);
  const ProblemInstance inst(topo);
  const auto d = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  Simulator steady(inst, d, fast_run(400.0, 23));
  const auto ms_steady = steady.run();
  Simulator throttled(inst, d, fast_run(400.0, 23));
  throttled.set_cell_trace(0, BandwidthTrace::constant(mbps(3.0)));
  const auto ms_throttled = throttled.run();
  EXPECT_GT(ms_throttled.latency.mean(), ms_steady.latency.mean());
}

TEST(Simulator, ControllerSwapsDecisionMidRun) {
  auto topo = single_device(2.0);
  const ProblemInstance inst(topo);
  const auto offload = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  const auto local = local_decision(inst);

  Simulator::Options opts = fast_run(300.0, 29);
  opts.control_interval = 10.0;
  Simulator sim(inst, offload, opts);
  bool swapped = false;
  sim.set_controller([&](double now, const std::vector<double>&,
                         const std::vector<bool>&)
                         -> std::optional<Decision> {
    if (now >= 150.0 && !swapped) {
      swapped = true;
      return local;
    }
    return std::nullopt;
  });
  const auto m = sim.run();
  EXPECT_TRUE(swapped);
  // Some tasks offloaded (first half), some local (second half).
  EXPECT_GT(m.offload_fraction, 0.1);
  EXPECT_LT(m.offload_fraction, 0.9);
}

TEST(Simulator, ValidatesOptions) {
  const ProblemInstance inst(single_device(1.0));
  const auto d = local_decision(inst);
  Simulator::Options bad;
  bad.horizon = 10.0;
  bad.warmup = 20.0;
  EXPECT_THROW(Simulator(inst, d, bad), ContractViolation);
  Simulator::Options ok = fast_run();
  Simulator sim(inst, d, ok);
  EXPECT_THROW(
      sim.set_controller([](double, const std::vector<double>&,
                            const std::vector<bool>&) {
        return std::optional<Decision>{};
      }),
      ContractViolation);  // no control_interval configured
  EXPECT_THROW(sim.set_cell_trace(7, BandwidthTrace::constant(1.0)),
               ContractViolation);
}

TEST(Simulator, ZeroBurstFactorPreservesPoissonStreams) {
  const ProblemInstance inst(single_device(3.0));
  const auto d = local_decision(inst);
  Simulator::Options a = fast_run(200.0, 51);
  Simulator::Options b = fast_run(200.0, 51);
  b.burst_factor = 0.0;  // explicit default
  Simulator sa(inst, d, a);
  Simulator sb(inst, d, b);
  const auto ma = sa.run();
  const auto mb = sb.run();
  EXPECT_EQ(ma.completed, mb.completed);
  EXPECT_DOUBLE_EQ(ma.latency.mean(), mb.latency.mean());
}

TEST(Simulator, BurstinessGrowsTheTail) {
  // Load the device moderately so bursts actually queue.
  const ProblemInstance probe_instance(single_device(1.0));
  const double service = LatencyModel::graph_latency(
      probe_instance.bundle_for(0).graph, profiles::smartphone());
  const double rate = 0.7 / service;
  const ProblemInstance inst(single_device(rate));
  const auto d = local_decision(inst);
  Simulator::Options plain = fast_run(1500.0 * service, 53);
  Simulator::Options bursty = plain;
  bursty.burst_factor = 0.9;
  bursty.burst_hold = 40.0 * service;
  Simulator sa(inst, d, plain);
  Simulator sb(inst, d, bursty);
  const auto ma = sa.run();
  const auto mb = sb.run();
  ASSERT_GT(ma.completed, 300u);
  ASSERT_GT(mb.completed, 300u);
  EXPECT_GT(mb.latency.p99(), ma.latency.p99());
}

TEST(Simulator, BurstFactorValidated) {
  const ProblemInstance inst(single_device(1.0));
  const auto d = local_decision(inst);
  Simulator::Options opts = fast_run(50.0, 55);
  opts.burst_factor = 1.0;  // invalid: low state would have rate 0
  Simulator sim(inst, d, opts);
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(Simulator, EnergyAccountingPositiveAndComposable) {
  const ProblemInstance inst(single_device(1.0));
  const auto d = local_decision(inst);
  Simulator sim(inst, d, fast_run(500.0, 41));
  const auto m = sim.run();
  ASSERT_GT(m.completed, 100u);
  EXPECT_GT(m.mean_task_energy, 0.0);
  // Local execution: energy == p_active * device_time exactly.
  const auto& dev = inst.topology().device(0);
  const double per_task =
      m.per_device[0].energy_sum / static_cast<double>(m.completed);
  const auto& bundle = inst.bundle_for(0);
  const double service = LatencyModel::graph_latency(bundle.graph, dev.compute);
  EXPECT_NEAR(per_task, dev.energy.p_active * service, 1e-9);
}

TEST(Simulator, OffloadingShiftsEnergyFromComputeToTxIdle) {
  auto topo = single_device(0.5);
  const ProblemInstance inst(topo);
  const auto local = local_decision(inst);
  const auto off = offload_decision(inst, 1.0, topo.cell(0).bandwidth);
  Simulator a(inst, local, fast_run(800.0, 43));
  Simulator b(inst, off, fast_run(800.0, 43));
  const auto ma = a.run();
  const auto mb = b.run();
  ASSERT_GT(ma.completed, 100u);
  ASSERT_GT(mb.completed, 100u);
  // Offloading a tiny model from a capable phone costs little active energy
  // but pays tx+idle; both must be positive and differ.
  EXPECT_GT(ma.mean_task_energy, 0.0);
  EXPECT_GT(mb.mean_task_energy, 0.0);
  EXPECT_NE(ma.mean_task_energy, mb.mean_task_energy);
}

TEST(Simulator, TimeSeriesSatisfiesLittlesLaw) {
  // L = lambda * W over the steady-state window, with L the time-average
  // number in system from the recorded series.
  const ProblemInstance inst(single_device(2.0));
  const auto d = local_decision(inst);
  Simulator::Options opts = fast_run(2000.0, 61);
  opts.series_window = 5.0;
  Simulator sim(inst, d, opts);
  const auto m = sim.run();
  ASSERT_GT(m.series.tasks_in_flight.size(), 100u);
  // Skip the warmup windows.
  double l_sum = 0.0;
  std::size_t count = 0;
  const std::size_t skip = m.series.tasks_in_flight.size() / 10;
  for (std::size_t i = skip; i < m.series.tasks_in_flight.size(); ++i) {
    l_sum += m.series.tasks_in_flight[i];
    ++count;
  }
  const double l_avg = l_sum / static_cast<double>(count);
  const double throughput =
      static_cast<double>(m.completed) /
      (opts.horizon - opts.warmup);
  const double littles = throughput * m.latency.mean();
  EXPECT_NEAR(l_avg, littles, littles * 0.1 + 0.02);
}

TEST(Simulator, TimeSeriesCompletionRatesMatchTotals) {
  const ProblemInstance inst(single_device(3.0));
  const auto d = local_decision(inst);
  Simulator::Options opts = fast_run(300.0, 63);
  opts.warmup = 0.0;
  opts.series_window = 2.0;
  Simulator sim(inst, d, opts);
  const auto m = sim.run();
  double from_series = 0.0;
  for (double r : m.series.completion_rate) r > 0 ? from_series += r * 2.0
                                                  : 0.0;
  // The series covers full windows only; allow the last partial window.
  EXPECT_NEAR(from_series, static_cast<double>(m.completed),
              static_cast<double>(m.completed) * 0.05 + 10.0);
}

TEST(Simulator, SeriesDisabledByDefault) {
  const ProblemInstance inst(single_device(1.0));
  Simulator sim(inst, local_decision(inst), fast_run(50.0, 65));
  const auto m = sim.run();
  EXPECT_TRUE(m.series.tasks_in_flight.empty());
}

TEST(Simulator, ReplicatedCiCoversQueueingTheory) {
  // Statistical validity of the replicated runner: Poisson arrivals into a
  // deterministic on-device service are an M/D/1 queue exactly, so the 95%
  // CI over independent replications must cover the analytical sojourn
  // prediction from queueing.hpp (deterministic given the fixed base seed).
  const ProblemInstance probe(single_device(1.0));
  const double service = LatencyModel::graph_latency(
      probe.bundle_for(0).graph, probe.topology().device(0).compute);
  const double rate = 0.6 / service;  // rho = 0.6
  const ProblemInstance inst(single_device(rate));
  const auto d = local_decision(inst);

  ScenarioRunner::Options opts;
  opts.replications = 10;
  opts.threads = 4;
  opts.sim.horizon = 1500.0 * service;
  opts.sim.warmup = 150.0 * service;
  opts.sim.seed = 67;
  const auto m = ScenarioRunner(inst, d, opts).run();
  ASSERT_GT(m.completed, 5000u);

  const double predicted = queueing::md1_sojourn(rate, service);
  const Summary lat = m.latency_summary();
  EXPECT_TRUE(lat.covers(predicted))
      << "95% CI [" << lat.mean - lat.ci95 << ", " << lat.mean + lat.ci95
      << "] misses the M/D/1 prediction " << predicted;
  // The CI must also be informative, not vacuously wide.
  EXPECT_LT(lat.ci95, predicted * 0.2);
}

TEST(Simulator, ReplicatedTimeSeriesSatisfiesLittlesLaw) {
  // L = lambda * W must hold within tolerance on every replication's
  // recorded TimeSeries, not just on one lucky seed.
  const ProblemInstance inst(single_device(2.0));
  const auto d = local_decision(inst);
  ScenarioRunner::Options opts;
  opts.replications = 4;
  opts.threads = 2;
  opts.sim.horizon = 800.0;
  opts.sim.warmup = 80.0;
  opts.sim.seed = 71;
  opts.sim.series_window = 5.0;
  const auto m = ScenarioRunner(inst, d, opts).run();
  ASSERT_EQ(m.replications.size(), 4u);
  for (const auto& rep : m.replications) {
    ASSERT_GT(rep.series.tasks_in_flight.size(), 100u);
    double l_sum = 0.0;
    std::size_t count = 0;
    const std::size_t skip = rep.series.tasks_in_flight.size() / 10;
    for (std::size_t i = skip; i < rep.series.tasks_in_flight.size(); ++i) {
      l_sum += rep.series.tasks_in_flight[i];
      ++count;
    }
    const double l_avg = l_sum / static_cast<double>(count);
    const double throughput = static_cast<double>(rep.completed) /
                              (opts.sim.horizon - opts.sim.warmup);
    const double littles = throughput * rep.latency.mean();
    EXPECT_NEAR(l_avg, littles, littles * 0.1 + 0.02);
  }
}

TEST(Simulator, MultiDeviceSmallLabRuns) {
  const ProblemInstance inst(clusters::small_lab());
  Decision d;
  d.per_device.resize(4);
  for (std::size_t i = 0; i < 3; ++i) {
    d.per_device[i].plan.partition_after = 0;
    d.per_device[i].server = 1;
    d.per_device[i].compute_share = 0.3;
    d.per_device[i].bandwidth = mbps(25.0);
  }
  d.per_device[3].plan.device_only = true;
  evaluate_decision(inst, d);
  Simulator sim(inst, d, fast_run(60.0, 31));
  const auto m = sim.run();
  EXPECT_GT(m.completed, 100u);
  EXPECT_EQ(m.server_utilization.size(), 2u);
  // Server 0 has no assignees.
  EXPECT_EQ(m.server_utilization[0], 0.0);
  EXPECT_GT(m.server_utilization[1], 0.0);
}

}  // namespace
}  // namespace scalpel
