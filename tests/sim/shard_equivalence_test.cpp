// Differential determinism matrix for the cell-sharded simulator: for any
// shard count and any worker-thread count, ShardedSimulator must reproduce
// the single-loop Simulator BIT-IDENTICALLY — every SimMetrics field, the
// merged metrics registry, the reconciled trace stream, conservation
// counters, and events_processed. Scenarios are shaped like the paper
// benches (F4 arrival sweep, F16 fault schedules, F17 overload) plus the
// cross-shard-specific paths: online replans, admission changes, and tasks
// in flight across epoch barriers and the horizon.

#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "core/online.hpp"
#include "ctrl/plane.hpp"
#include "edge/builders.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

const std::size_t kShardCounts[] = {1, 2, 4, 8};
const std::size_t kThreadCounts[] = {1, 2, 8};

JointOptions fast_opts() {
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

/// Multi-cell campus with few devices per cell, so 4 distinct shards exist
/// and most offloads cross a shard boundary.
ProblemInstance sharded_campus(std::uint64_t seed, double rate,
                               std::size_t num_devices = 8,
                               std::size_t num_servers = 3) {
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = num_devices;
  copts.num_servers = num_servers;
  copts.devices_per_cell = 2;
  copts.mean_arrival_rate = rate;
  return ProblemInstance(clusters::campus(copts));
}

Decision offload_decision(const ProblemInstance& instance, double share,
                          double bw) {
  Decision d;
  d.scheme = "test_offload";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) {
    dd.plan.partition_after = 0;
    dd.server = 0;
    dd.compute_share = share;
    dd.bandwidth = bw;
  }
  evaluate_decision(instance, d);
  return d;
}

Decision local_decision(const ProblemInstance& instance) {
  Decision d;
  d.scheme = "test_local";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);
  return d;
}

void expect_samples_identical(const Samples& a, const Samples& b) {
  ASSERT_EQ(a.count(), b.count());
  const auto& va = a.values();
  const auto& vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i], vb[i]) << "sample " << i;  // bitwise, not approximate
  }
}

/// Every field of SimMetrics, bit-for-bit (EXPECT_EQ on doubles is exact on
/// purpose — the bar is "identical", not "close").
void expect_metrics_identical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.resteered, b.resteered);
  EXPECT_EQ(a.completed_all, b.completed_all);
  EXPECT_EQ(a.failed_all, b.failed_all);
  EXPECT_EQ(a.shed_all, b.shed_all);
  EXPECT_EQ(a.in_flight_end, b.in_flight_end);
  EXPECT_EQ(a.deadline_satisfaction, b.deadline_satisfaction);
  EXPECT_EQ(a.measured_accuracy, b.measured_accuracy);
  EXPECT_EQ(a.mean_task_energy, b.mean_task_energy);
  EXPECT_EQ(a.offload_fraction, b.offload_fraction);
  EXPECT_EQ(a.availability, b.availability);
  expect_samples_identical(a.latency, b.latency);
  expect_samples_identical(a.outage_latency, b.outage_latency);
  ASSERT_EQ(a.server_utilization.size(), b.server_utilization.size());
  for (std::size_t s = 0; s < a.server_utilization.size(); ++s) {
    EXPECT_EQ(a.server_utilization[s], b.server_utilization[s]) << "srv " << s;
  }
  ASSERT_EQ(a.per_device.size(), b.per_device.size());
  for (std::size_t i = 0; i < a.per_device.size(); ++i) {
    const auto& da = a.per_device[i];
    const auto& db = b.per_device[i];
    EXPECT_EQ(da.arrived, db.arrived) << "device " << i;
    EXPECT_EQ(da.completed, db.completed) << "device " << i;
    EXPECT_EQ(da.failed, db.failed) << "device " << i;
    EXPECT_EQ(da.shed, db.shed) << "device " << i;
    EXPECT_EQ(da.expired, db.expired) << "device " << i;
    EXPECT_EQ(da.retries, db.retries) << "device " << i;
    EXPECT_EQ(da.resteered, db.resteered) << "device " << i;
    EXPECT_EQ(da.deadline_met, db.deadline_met) << "device " << i;
    EXPECT_EQ(da.deadline_total, db.deadline_total) << "device " << i;
    EXPECT_EQ(da.accuracy_sum, db.accuracy_sum) << "device " << i;
    EXPECT_EQ(da.energy_sum, db.energy_sum) << "device " << i;
    EXPECT_EQ(da.offloaded, db.offloaded) << "device " << i;
    EXPECT_EQ(da.exit_histogram, db.exit_histogram) << "device " << i;
    expect_samples_identical(da.latency, db.latency);
  }
  ASSERT_EQ(a.series.tasks_in_flight.size(), b.series.tasks_in_flight.size());
  for (std::size_t w = 0; w < a.series.tasks_in_flight.size(); ++w) {
    EXPECT_EQ(a.series.tasks_in_flight[w], b.series.tasks_in_flight[w]);
    EXPECT_EQ(a.series.completion_rate[w], b.series.completion_rate[w]);
    EXPECT_EQ(a.series.mean_accuracy[w], b.series.mean_accuracy[w]);
    EXPECT_EQ(a.series.shed_rate[w], b.series.shed_rate[w]);
  }
}

/// Merged registry vs. single-loop registry: same counter/gauge key sets,
/// same values; the latency histogram agrees in mass and quantiles.
void expect_registries_identical(const MetricsRegistry& a,
                                 const MetricsRegistry& b) {
  ASSERT_EQ(a.counters().size(), b.counters().size());
  auto ib = b.counters().begin();
  for (const auto& [name, ctr] : a.counters()) {
    EXPECT_EQ(name, ib->first);
    EXPECT_EQ(ctr.value(), ib->second.value()) << "counter " << name;
    ++ib;
  }
  ASSERT_EQ(a.gauges().size(), b.gauges().size());
  auto gb = b.gauges().begin();
  for (const auto& [name, g] : a.gauges()) {
    EXPECT_EQ(name, gb->first);
    EXPECT_EQ(g.value(), gb->second.value()) << "gauge " << name;
    ++gb;
  }
  const auto& ha = a.histograms();
  const auto& hb = b.histograms();
  ASSERT_EQ(ha.size(), hb.size());
  auto hbi = hb.begin();
  for (const auto& [name, h] : ha) {
    EXPECT_EQ(name, hbi->first);
    EXPECT_EQ(h.total(), hbi->second.total()) << "histogram " << name;
    EXPECT_EQ(h.p50(), hbi->second.p50()) << "histogram " << name;
    EXPECT_EQ(h.p99(), hbi->second.p99()) << "histogram " << name;
    ++hbi;
  }
}

struct ShardHooks {
  std::vector<double> admission;
  Simulator::RichController rich;
};

/// Runs the scenario on the single loop, then across the full shard x thread
/// matrix, and holds every run to the single loop's exact outputs.
void expect_shard_equivalence(const ProblemInstance& instance,
                              const Decision& d, Simulator::Options opts,
                              const ShardHooks& hooks = {}) {
  opts.trace_capacity = 1 << 18;  // ample: no ring drops, full stream compare

  Simulator ref(instance, d, opts);
  if (!hooks.admission.empty()) ref.set_admission(hooks.admission);
  if (hooks.rich) ref.set_controller(hooks.rich);
  const SimMetrics ref_m = ref.run();
  const std::vector<TraceEvent> ref_trace =
      reconcile_trace(ref.trace().snapshot());
  EXPECT_EQ(ref.trace().dropped(), 0u) << "ring too small for scenario";

  for (const std::size_t shards : kShardCounts) {
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ShardOptions sopts;
      sopts.shards = shards;
      sopts.threads = threads;
      ShardedSimulator sim(instance, d, opts, sopts);
      if (!hooks.admission.empty()) sim.set_admission(hooks.admission);
      if (hooks.rich) sim.set_controller(hooks.rich);
      const SimMetrics m = sim.run();
      expect_metrics_identical(ref_m, m);
      expect_registries_identical(ref.registry(), sim.registry());
      const std::vector<TraceEvent> trace = sim.trace_events();
      ASSERT_EQ(ref_trace.size(), trace.size());
      for (std::size_t i = 0; i < ref_trace.size(); ++i) {
        ASSERT_TRUE(ref_trace[i] == trace[i]) << "trace event " << i;
      }
    }
  }
}

class ShardEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

// F4-shaped: plain arrival sweep over an optimized decision, time series on.
TEST_P(ShardEquivalenceTest, ArrivalSweepBitIdentical) {
  const std::uint64_t seed = GetParam();
  const ProblemInstance instance =
      sharded_campus(seed, 1.0 + 1.5 * static_cast<double>(seed % 4));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options opts;
  opts.horizon = 12.0;
  opts.warmup = 1.0;
  opts.seed = seed;
  opts.series_window = 1.0;
  expect_shard_equivalence(instance, d, opts);
}

// F16-shaped: server/link outages under each fault policy — fault sweeps
// reorder queues, migrate victims home across shards, and clear fluid state.
TEST_P(ShardEquivalenceTest, FaultScheduleBitIdentical) {
  const std::uint64_t seed = GetParam();
  const ProblemInstance instance = sharded_campus(seed, 2.0, 6, 2);
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options opts;
  opts.horizon = 12.0;
  opts.warmup = 1.0;
  opts.seed = seed;
  std::vector<FaultEvent> events;
  events.push_back({3.0, FaultTarget::Server, 0, false});
  events.push_back({5.5, FaultTarget::Server, 0, true});
  events.push_back({7.0, FaultTarget::Link, 0, false});
  events.push_back({9.0, FaultTarget::Link, 0, true});
  opts.faults.schedule = FaultSchedule(events);
  const FaultPolicy policies[] = {FaultPolicy::Drop,
                                  FaultPolicy::RetryOnDevice,
                                  FaultPolicy::RetryOffload};
  opts.faults.policy = policies[seed % 3];
  expect_shard_equivalence(instance, d, opts);
}

// F17-shaped: bounded queues, shedding, a scripted rate burst, MMPP arrival
// modulation and an admission gate — heavy victim selection and gate RNG.
TEST_P(ShardEquivalenceTest, OverloadBitIdentical) {
  const std::uint64_t seed = GetParam();
  const ProblemInstance instance = sharded_campus(seed, 2.5, 6, 2);
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options opts;
  opts.horizon = 10.0;
  opts.warmup = 1.0;
  opts.seed = seed;
  opts.series_window = 0.5;
  opts.burst_factor = 0.4;
  const OverloadPolicy policies[] = {OverloadPolicy::Block,
                                     OverloadPolicy::ShedNewest,
                                     OverloadPolicy::ShedExpired};
  opts.overload.policy = policies[seed % 3];
  opts.overload.device_queue_limit = 3;
  opts.overload.upload_queue_limit = 2;
  opts.overload.server_queue_limit = 2;
  opts.rate_bursts.push_back(RateBurst{3.0, 6.0, 4.0});

  ShardHooks hooks;
  for (std::size_t i = 0; i < instance.topology().devices().size(); ++i) {
    hooks.admission.push_back(0.5 + 0.05 * static_cast<double>(i));
  }
  expect_shard_equivalence(instance, d, opts, hooks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalenceTest,
                         ::testing::Values(3, 17, 42, 99));

// Online replanning: a rich controller that alternates every device between
// offload and device-only and tightens admission — the controller runs in
// the serial phase, and replans retarget in-flight chains across shards.
TEST(ShardEquivalence, ControllerReplanBitIdentical) {
  const ProblemInstance instance = sharded_campus(7, 2.0);
  const Decision d_off = offload_decision(instance, 0.1, mbps(40.0));
  const Decision d_loc = local_decision(instance);

  Simulator::Options opts;
  opts.horizon = 10.0;
  opts.warmup = 1.0;
  opts.seed = 7;
  opts.control_interval = 0.75;
  opts.series_window = 1.0;

  ShardHooks hooks;
  hooks.rich = [d_off, d_loc](double now, const std::vector<double>&,
                              const std::vector<bool>&,
                              const std::vector<double>&,
                              const std::vector<double>& qdepth) {
    ControlAction a;
    const bool odd = static_cast<int>(now / 0.75 + 0.5) % 2 != 0;
    a.decision = odd ? d_loc : d_off;
    std::vector<double> gate(qdepth.size());
    for (std::size_t i = 0; i < gate.size(); ++i) {
      gate[i] = qdepth[i] > 4.0 ? 0.6 : 1.0;
    }
    a.admit_fraction = std::move(gate);
    return a;
  };
  expect_shard_equivalence(instance, offload_decision(instance, 0.1, mbps(40.0)),
                           opts, hooks);
}

// Telemetry impairment in the loop: the channel delays, drops, perturbs,
// quantizes, and flips what the controller sees. The channel is sampled only
// in the serial phase on seed-derived substreams, so a stateless controller
// fed impaired readings must still be bit-identical across the matrix.
TEST(ShardEquivalence, AdverseTelemetryChannelBitIdentical) {
  const ProblemInstance instance = sharded_campus(19, 2.0);
  const Decision d_off = offload_decision(instance, 0.1, mbps(40.0));
  const Decision d_loc = local_decision(instance);

  Simulator::Options opts;
  opts.horizon = 10.0;
  opts.warmup = 1.0;
  opts.seed = 19;
  opts.control_interval = 0.75;
  opts.series_window = 1.0;
  opts.telemetry.delay = 0.5;
  opts.telemetry.drop_prob = 0.2;
  opts.telemetry.noise_sigma = 0.3;
  opts.telemetry.quantum = mbps(1.0);
  opts.telemetry.flip_prob = 0.1;

  ShardHooks hooks;
  // Stateless policy, but keyed off the *impaired* readings: noise and
  // liveness flips steer the replans, so any divergence in what the channel
  // delivered shows up as divergent decisions and fails the bit-compare.
  hooks.rich = [d_off, d_loc](double, const std::vector<double>& bw,
                              const std::vector<bool>& alive,
                              const std::vector<double>&,
                              const std::vector<double>&) {
    ControlAction a;
    double sum = 0.0;
    for (const double v : bw) sum += v / mbps(1.0);
    bool any_down = false;
    for (const bool up : alive) any_down = any_down || !up;
    a.decision = (any_down || std::fmod(sum, 2.0) < 1.0) ? d_loc : d_off;
    return a;
  };
  expect_shard_equivalence(instance, d_off, opts, hooks);
}

// The full hardened stack end-to-end: channel impairments -> Observation
// freshness metadata -> sanitizer -> watchdog-guarded re-solves, with a
// FRESH stateful OnlineController per run. Decisions, metrics, and the
// controller's own audit trail must be bit-identical across the matrix.
TEST(ShardEquivalence, HardenedOnlineControllerBitIdentical) {
  const ProblemInstance instance = sharded_campus(5, 2.0, 6, 2);
  const Decision d = JointOptimizer(fast_opts()).optimize(instance);

  OnlineController::Options copts;
  copts.hysteresis = 0.25;
  copts.joint = fast_opts();
  copts.robustness.sanitizer.confirm_windows = 2;
  copts.robustness.sanitizer.outlier_band = 0.8;
  copts.robustness.sanitizer.median_window = 3;
  copts.robustness.sanitizer.max_age = 3.0;
  copts.robustness.sanitizer.flap_threshold = 3;

  Simulator::Options opts;
  opts.horizon = 10.0;
  opts.warmup = 1.0;
  opts.seed = 5;
  opts.control_interval = 1.0;
  opts.trace_capacity = 1 << 18;
  opts.telemetry.delay = 0.5;
  opts.telemetry.drop_prob = 0.25;
  opts.telemetry.noise_sigma = 0.25;
  opts.telemetry.flip_prob = 0.15;

  auto observing = [](OnlineController* ctl) {
    return [ctl](const Observation& o) {
      ControlAction a;
      if (ctl->observe(o)) {
        a.decision = ctl->decision();
        a.admit_fraction = ctl->admit_fraction();
      }
      return a;
    };
  };

  OnlineController ref_ctl(instance.topology(), copts);
  Simulator ref(instance, d, opts);
  ref.set_controller(observing(&ref_ctl));
  const SimMetrics ref_m = ref.run();
  const std::vector<TraceEvent> ref_trace =
      reconcile_trace(ref.trace().snapshot());
  const std::string ref_audit = ref_ctl.audit_log().to_json().dump_pretty();
  // The impairments must actually bite, or this test is a no-op.
  EXPECT_GT(ref_ctl.telemetry_rejections() + ref_ctl.reoptimizations(), 0u);

  for (const std::size_t shards : kShardCounts) {
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ShardOptions sopts;
      sopts.shards = shards;
      sopts.threads = threads;
      OnlineController ctl(instance.topology(), copts);
      ShardedSimulator sim(instance, d, opts, sopts);
      sim.set_controller(observing(&ctl));
      const SimMetrics m = sim.run();
      expect_metrics_identical(ref_m, m);
      expect_registries_identical(ref.registry(), sim.registry());
      const std::vector<TraceEvent> trace = sim.trace_events();
      ASSERT_EQ(ref_trace.size(), trace.size());
      for (std::size_t i = 0; i < ref_trace.size(); ++i) {
        ASSERT_TRUE(ref_trace[i] == trace[i]) << "trace event " << i;
      }
      // The controller saw the same world: same audited decision history.
      EXPECT_EQ(ctl.audit_log().to_json().dump_pretty(), ref_audit);
      EXPECT_EQ(ctl.telemetry_rejections(), ref_ctl.telemetry_rejections());
      EXPECT_EQ(ctl.reoptimizations(), ref_ctl.reoptimizations());
      EXPECT_EQ(ctl.failovers(), ref_ctl.failovers());
    }
  }
}

// The distributed control plane in the loop: per-cell controllers and the
// global coordinator exchanging messages over a lossy, reordering fabric,
// with the coordinator crashing mid-epoch, one cell controller partitioned
// away, and a data-plane server outage forcing per-cell failover solves.
// The plane runs entirely in the serial control phase on dedicated fabric
// substreams, so a FRESH stateful plane per run must reproduce the single
// loop bit-identically — metrics, registries, traces, AND the plane's own
// audit trail and protocol counters.
TEST(ShardEquivalence, DistributedControlPlaneBitIdentical) {
  const ProblemInstance instance = sharded_campus(9, 2.0, 8, 3);
  Decision d;
  d.scheme = "seed_local";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);

  DistributedPlaneOptions popts;
  popts.seed = 9;
  popts.fabric.delay = 0.3;
  popts.fabric.jitter = 1.5;  // > the 1 s control cadence: grants reorder
  popts.fabric.drop_prob = 0.15;
  // Stub cell solver: protocol determinism is under test, not the
  // optimizer. Offloads every member to the first usable server.
  popts.cell.solver = [](const ProblemInstance& sub, const JointOptions&) {
    Decision plan;
    plan.scheme = "stub";
    const auto& topo = sub.topology();
    const auto n = static_cast<double>(topo.devices().size());
    plan.per_device.resize(topo.devices().size());
    for (auto& dd : plan.per_device) {
      dd.plan.partition_after = 0;
      dd.server = 0;
      dd.compute_share = 0.9 / n;
      dd.bandwidth = 0.9 * topo.cell(0).bandwidth / n;
    }
    return plan;
  };
  std::vector<FaultEvent> churn;
  churn.push_back({4.0, FaultTarget::Server, 0, false});  // coordinator dies
  churn.push_back({9.0, FaultTarget::Server, 0, true});   //   ...mid-epoch
  churn.push_back({6.0, FaultTarget::Server, 3, false});  // cell 2 cut off
  churn.push_back({11.0, FaultTarget::Server, 3, true});
  popts.controller_faults = FaultSchedule(churn);

  Simulator::Options opts;
  opts.horizon = 16.0;
  opts.warmup = 1.0;
  opts.seed = 9;
  opts.control_interval = 1.0;
  opts.trace_capacity = 1 << 18;
  opts.faults.schedule = FaultSchedule::server_crash(1, 7.0, 12.0);
  opts.faults.policy = FaultPolicy::RetryOnDevice;

  DistributedControlPlane ref_plane(instance.topology(), popts);
  Simulator ref(instance, d, opts);
  ref.set_controller(ref_plane.callback());
  const SimMetrics ref_m = ref.run();
  const std::vector<TraceEvent> ref_trace =
      reconcile_trace(ref.trace().snapshot());
  const std::string ref_audit =
      ref_plane.audit_log().to_json().dump_pretty();
  // The chaos must actually bite, or this scenario tests nothing.
  EXPECT_EQ(ref_plane.coordinator_crashes(), 1u);
  EXPECT_EQ(ref_plane.controller_crashes(), 1u);
  EXPECT_GT(ref_plane.fabric().dropped(), 0u);
  EXPECT_GT(ref_plane.coordinator_losses(), 0u);
  EXPECT_GT(ref_plane.stale_events(), 0u);

  for (const std::size_t shards : kShardCounts) {
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ShardOptions sopts;
      sopts.shards = shards;
      sopts.threads = threads;
      DistributedControlPlane plane(instance.topology(), popts);
      ShardedSimulator sim(instance, d, opts, sopts);
      sim.set_controller(plane.callback());
      const SimMetrics m = sim.run();
      expect_metrics_identical(ref_m, m);
      expect_registries_identical(ref.registry(), sim.registry());
      const std::vector<TraceEvent> trace = sim.trace_events();
      ASSERT_EQ(ref_trace.size(), trace.size());
      for (std::size_t i = 0; i < ref_trace.size(); ++i) {
        ASSERT_TRUE(ref_trace[i] == trace[i]) << "trace event " << i;
      }
      // The plane saw the same world: same protocol history, bit for bit.
      EXPECT_EQ(plane.audit_log().to_json().dump_pretty(), ref_audit);
      EXPECT_EQ(plane.plan_changes(), ref_plane.plan_changes());
      EXPECT_EQ(plane.local_solves(), ref_plane.local_solves());
      EXPECT_EQ(plane.epochs_rejected(), ref_plane.epochs_rejected());
      EXPECT_EQ(plane.stale_events(), ref_plane.stale_events());
      EXPECT_EQ(plane.dead_letters(), ref_plane.dead_letters());
      EXPECT_EQ(plane.coordinator_losses(), ref_plane.coordinator_losses());
      EXPECT_EQ(plane.rejoins(), ref_plane.rejoins());
      EXPECT_EQ(plane.fabric().sent(), ref_plane.fabric().sent());
      EXPECT_EQ(plane.fabric().dropped(), ref_plane.fabric().dropped());
    }
  }
}

/// Every retained row of both recorders, bitwise — column layout included.
void expect_series_identical(const TimeSeriesRecorder& a,
                             const TimeSeriesRecorder& b) {
  ASSERT_EQ(a.columns(), b.columns());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.dropped(), b.dropped());
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < a.columns().size(); ++c) {
      ASSERT_EQ(a.value(r, c), b.value(r, c))
          << "row " << r << " col " << a.columns()[c];
    }
  }
}

TEST(ShardEquivalence, ObservabilityPipelineBitIdentical) {
  // The full observability stack at once — causal span tracing on a lossy
  // control fabric, the time-series recorder fed engine counters plus the
  // plane's registered sources, and SLO burn-rate alerting writing into the
  // shared audit log. Everything it emits must be bit-identical between the
  // single loop and every shard x thread configuration: the sharded engine
  // samples at epoch barriers laid on the same exact time grid.
  const ProblemInstance instance = sharded_campus(9, 2.5, 8, 3);
  Decision d;
  d.scheme = "seed_local";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);

  DistributedPlaneOptions popts;
  popts.seed = 9;
  popts.fabric.delay = 0.3;
  popts.fabric.jitter = 1.5;
  popts.fabric.drop_prob = 0.15;
  popts.span_capacity = 1 << 14;
  popts.cell.solver = [](const ProblemInstance& sub, const JointOptions&) {
    Decision plan;
    plan.scheme = "stub";
    const auto& topo = sub.topology();
    const auto n = static_cast<double>(topo.devices().size());
    plan.per_device.resize(topo.devices().size());
    for (auto& dd : plan.per_device) {
      dd.plan.partition_after = 0;
      dd.server = 0;
      dd.compute_share = 0.9 / n;
      dd.bandwidth = 0.9 * topo.cell(0).bandwidth / n;
    }
    return plan;
  };
  std::vector<FaultEvent> churn;
  churn.push_back({4.0, FaultTarget::Server, 0, false});
  churn.push_back({9.0, FaultTarget::Server, 0, true});
  popts.controller_faults = FaultSchedule(churn);

  Simulator::Options opts;
  opts.horizon = 16.0;
  opts.warmup = 1.0;
  opts.seed = 9;
  opts.control_interval = 1.0;
  opts.trace_capacity = 1 << 18;
  opts.obs_interval = 0.5;
  opts.faults.schedule = FaultSchedule::server_crash(1, 7.0, 12.0);
  opts.faults.policy = FaultPolicy::RetryOnDevice;

  SloSpec spec;
  spec.name = "deadline";
  spec.good = "sim.deadline_met";
  spec.total = "sim.deadline_total";
  spec.objective = 0.9;
  spec.windows = {{4.0, 1.0}, {12.0, 0.5}};

  // Fresh plane + recorder + monitor per run: registered sources close over
  // the plane, and the audit log is shared between plane and SLO monitor.
  DistributedControlPlane ref_plane(instance.topology(), popts);
  TimeSeriesRecorder ref_rec(1 << 10);
  ref_plane.register_sources(ref_rec);
  SloMonitor ref_slo(&ref_rec, &ref_plane.audit_log());
  ref_slo.add(spec);
  Simulator::Options ref_opts = opts;
  ref_opts.recorder = &ref_rec;
  ref_opts.slo = &ref_slo;
  Simulator ref(instance, d, ref_opts);
  ref.set_controller(ref_plane.callback());
  const SimMetrics ref_m = ref.run();
  const auto ref_spans = ref_plane.ctrl_trace().snapshot();
  const std::string ref_audit =
      ref_plane.audit_log().to_json().dump_pretty();
  // The scenario must actually exercise the pipeline under test.
  EXPECT_GT(ref_rec.size(), 0u);
  EXPECT_GT(ref_spans.size(), 0u);
  EXPECT_GT(ref_plane.fabric().dropped(), 0u);

  for (const std::size_t shards : kShardCounts) {
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ShardOptions sopts;
      sopts.shards = shards;
      sopts.threads = threads;
      DistributedControlPlane plane(instance.topology(), popts);
      TimeSeriesRecorder rec(1 << 10);
      plane.register_sources(rec);
      SloMonitor slo(&rec, &plane.audit_log());
      slo.add(spec);
      Simulator::Options run_opts = opts;
      run_opts.recorder = &rec;
      run_opts.slo = &slo;
      ShardedSimulator sim(instance, d, run_opts, sopts);
      sim.set_controller(plane.callback());
      const SimMetrics m = sim.run();
      expect_metrics_identical(ref_m, m);

      // Time series: every row and column, bitwise.
      expect_series_identical(ref_rec, rec);

      // Span stream: same spans in the same order.
      const auto spans = plane.ctrl_trace().snapshot();
      ASSERT_EQ(ref_spans.size(), spans.size());
      for (std::size_t i = 0; i < spans.size(); ++i) {
        ASSERT_TRUE(ref_spans[i] == spans[i]) << "span " << i;
      }

      // SLO alert stream and the audit trail it writes into.
      EXPECT_EQ(slo.alerts_started(), ref_slo.alerts_started());
      EXPECT_EQ(slo.alerts_stopped(), ref_slo.alerts_stopped());
      ASSERT_EQ(slo.specs(), ref_slo.specs());
      for (std::size_t w = 0; w < spec.windows.size(); ++w) {
        EXPECT_EQ(slo.burn_rate(0, w), ref_slo.burn_rate(0, w));
      }
      EXPECT_EQ(plane.audit_log().to_json().dump_pretty(), ref_audit);

      // Published ctrl.* registries agree too.
      MetricsRegistry ref_reg;
      MetricsRegistry reg;
      ref_plane.publish_metrics(ref_reg);
      plane.publish_metrics(reg);
      expect_registries_identical(ref_reg, reg);
    }
  }
}

// Tasks still crossing shards when the run ends: a long-RTT offload whose
// kServerArrive lands past the horizon must stay in flight (never delivered,
// never double-counted), exactly like the single loop dropping the event.
TEST(ShardEquivalence, CrossShardInFlightAtHorizonBitIdentical) {
  clusters::CampusOptions copts;
  copts.seed = 13;
  copts.num_devices = 8;
  copts.num_servers = 2;
  copts.devices_per_cell = 2;
  copts.cell_rtt = ms(40.0);  // long flight: many arrivals stranded mid-RTT
  copts.mean_arrival_rate = 6.0;
  const ProblemInstance instance(clusters::campus(copts));
  const Decision d = offload_decision(instance, 0.1, mbps(40.0));

  Simulator::Options opts;
  opts.horizon = 4.0;
  opts.warmup = 0.5;
  opts.seed = 13;

  Simulator ref(instance, d, opts);
  const SimMetrics ref_m = ref.run();
  // The scenario must actually exercise the boundary path.
  EXPECT_GT(ref_m.in_flight_end, 0u);
  EXPECT_GT(ref_m.offload_fraction, 0.0);
  expect_shard_equivalence(instance, d, opts);
}

// The shard plan itself: pure function of the topology, clamped to the cell
// count, devices co-located with their cells, zero-RTT pairs merged.
TEST(ShardPlan, DeterministicAndClamped) {
  const ProblemInstance instance = sharded_campus(21, 1.0);
  const auto& topo = instance.topology();
  const ShardPlan a = ShardPlan::build(topo, 64);
  const ShardPlan b = ShardPlan::build(topo, 64);
  EXPECT_EQ(a.cell_shard, b.cell_shard);
  EXPECT_EQ(a.server_shard, b.server_shard);
  EXPECT_EQ(a.device_shard, b.device_shard);
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.lookahead, b.lookahead);
  EXPECT_LE(a.num_shards, topo.cells().size());
  for (std::size_t d = 0; d < topo.devices().size(); ++d) {
    EXPECT_EQ(a.device_shard[d],
              a.cell_shard[static_cast<std::size_t>(topo.devices()[d].cell)]);
  }
  EXPECT_TRUE(std::isfinite(a.lookahead));
  EXPECT_GT(a.lookahead, 0.0);

  const ShardPlan one = ShardPlan::build(topo, 1);
  EXPECT_EQ(one.num_shards, 1u);
  // One shard has no cross pairs: infinite lookahead, no filler barriers.
  EXPECT_FALSE(std::isfinite(one.lookahead));
}

// The runner's sharded path: per-replication aggregates must match the
// classic single-loop fan-out exactly, for any shard count.
TEST(ShardEquivalence, RunnerShardedPathBitIdentical) {
  const ProblemInstance instance = sharded_campus(11, 2.0, 6, 2);
  const Decision d = offload_decision(instance, 0.1, mbps(40.0));

  ScenarioRunner::Options ropts;
  ropts.replications = 3;
  ropts.threads = 1;
  ropts.sim.horizon = 8.0;
  ropts.sim.warmup = 1.0;
  ropts.sim.seed = 11;
  ropts.sim.faults.schedule = FaultSchedule::server_crash(0, 3.0, 5.0);
  const ReplicatedMetrics classic =
      ScenarioRunner(instance, d, ropts).run();

  for (const std::size_t shards : {2u, 4u}) {
    ropts.shards = shards;
    ropts.shard_threads = 2;
    const ReplicatedMetrics sharded =
        ScenarioRunner(instance, d, ropts).run();
    EXPECT_EQ(classic.arrived, sharded.arrived) << "shards=" << shards;
    EXPECT_EQ(classic.completed, sharded.completed) << "shards=" << shards;
    ASSERT_EQ(classic.replications.size(), sharded.replications.size());
    for (std::size_t r = 0; r < classic.replications.size(); ++r) {
      expect_metrics_identical(classic.replications[r],
                               sharded.replications[r]);
    }
  }
}

TEST(ShardPlan, ZeroRttPairsMergeShards) {
  ClusterTopology t;
  // Two cells, both at zero access RTT, and a zero-backhaul server: the
  // server binds to cell 0 (lowest id), leaving (cell 1, server) a zero-RTT
  // CROSS-shard pair — splitting would need zero lookahead, so they merge.
  t.add_cell(Cell{-1, "a", mbps(100.0), 0.0});
  t.add_cell(Cell{-1, "b", mbps(100.0), 0.0});
  for (int i = 0; i < 2; ++i) {
    Device d;
    d.name = "dev" + std::to_string(i);
    d.compute = profiles::smartphone();
    d.energy = profiles::energy_phone();
    d.cell = i;
    d.model = "tiny_cnn";
    d.arrival_rate = 1.0;
    t.add_device(d);
  }
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = 0.0;
  t.add_server(s);
  const ShardPlan p = ShardPlan::build(t, 2);
  EXPECT_EQ(p.num_shards, 1u);
  EXPECT_EQ(p.cell_shard[0], p.cell_shard[1]);
  EXPECT_EQ(p.server_shard[0], p.cell_shard[0]);
}

}  // namespace
}  // namespace scalpel
