#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.hpp"

namespace scalpel {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalMeanAndCov) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.lognormal_mean_cov(5.0, 0.4);
    ASSERT_GT(v, 0.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double cov = std::sqrt(sq / n - mean * mean) / mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(cov, 0.4, 0.02);
}

TEST(Rng, LognormalZeroCovIsDeterministic) {
  Rng rng(41);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cov(3.0, 0.0), 3.0);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Rng rng(43);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.poisson(mean);
    ASSERT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 30.0, 100.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(53);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), ContractViolation);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), ContractViolation);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(61);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace scalpel
