#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.hpp"

namespace scalpel {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalMeanAndCov) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.lognormal_mean_cov(5.0, 0.4);
    ASSERT_GT(v, 0.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double cov = std::sqrt(sq / n - mean * mean) / mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(cov, 0.4, 0.02);
}

TEST(Rng, LognormalZeroCovIsDeterministic) {
  Rng rng(41);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cov(3.0, 0.0), 3.0);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Rng rng(43);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.poisson(mean);
    ASSERT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 30.0, 100.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(53);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), ContractViolation);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), ContractViolation);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// Golden values pin the cross-platform bit-identical contract documented in
// rng.hpp: any change to the generator, the seeding procedure, or the
// substream derivation invalidates every recorded simulation result and must
// be made deliberately (regenerate with a throwaway main()).
TEST(Rng, GoldenNextU64DefaultSeed) {
  Rng rng;
  const std::uint64_t expected[] = {
      0x422ea740d0977210ULL, 0xe062b061b42e2928ULL, 0x5a071fc5930841b6ULL,
      0x01334ef8ed3cc2bdULL, 0xe45cbd6a2d9e96dbULL};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, GoldenNextU64Seed123) {
  Rng rng(123);
  const std::uint64_t expected[] = {
      0x325a8fa1d1a069f9ULL, 0xf835e3c7656d4d5eULL, 0x77aa2b46c3f2a62fULL,
      0x20820299aacf8206ULL, 0x5678d8b3959d78deULL};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, GoldenSubstreamSeeds) {
  EXPECT_EQ(Rng::substream_seed(1, 0), 0x215e73fdcd7e7f20ULL);
  EXPECT_EQ(Rng::substream_seed(1, 1), 0xaafc5bb17b9c470bULL);
  EXPECT_EQ(Rng::substream_seed(1, 2), 0x720769ed6fa476e1ULL);
  EXPECT_EQ(Rng::substream_seed(7, 0), 0xd18cc42759cabfdeULL);
  EXPECT_EQ(Rng::substream_seed(7, 1000000), 0x942ffe8144b26942ULL);
}

TEST(Rng, GoldenSubstreamDraws) {
  Rng sub = Rng(42).substream(3);
  const std::uint64_t expected[] = {
      0x65feeef7f195f0cfULL, 0xe391a3b27f30c0d8ULL, 0x4fd5b71b2f0ad514ULL};
  for (std::uint64_t e : expected) EXPECT_EQ(sub.next_u64(), e);
}

TEST(Rng, GoldenJump) {
  Rng rng(99);
  rng.jump();
  const std::uint64_t expected[] = {
      0xb193d099972f6eaaULL, 0xb85a11383ff56dd2ULL, 0xc1def13336c81e0aULL};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, SubstreamIgnoresDrawHistory) {
  // The substream is keyed on the construction seed, not the current state:
  // the fan-out must hand replication r the same stream no matter how much
  // of the parent was consumed first.
  Rng fresh(77);
  Rng used(77);
  for (int i = 0; i < 1000; ++i) used.next_u64();
  Rng a = fresh.substream(5);
  Rng b = used.substream(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SubstreamsDistinctPerId) {
  Rng parent(7);
  Rng s0 = parent.substream(0);
  Rng s1 = parent.substream(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SubstreamZeroDiffersFromRoot) {
  Rng root(7);
  Rng s0 = root.substream(0);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (root.next_u64() == s0.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SubstreamSeedsCollisionFreeOverManyIds) {
  Rng parent(13);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    seeds.insert(Rng::substream_seed(13, id));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(Rng, JumpDivergesFromUnjumpedStream) {
  Rng a(3);
  Rng b(3);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SeedAccessorReturnsConstructionSeed) {
  Rng rng(1234);
  rng.next_u64();
  rng.jump();
  EXPECT_EQ(rng.seed(), 1234u);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(61);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace scalpel
