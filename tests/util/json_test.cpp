#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace scalpel {
namespace {

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(42).dump(), "42");
  EXPECT_EQ(Json::number(-3.5).dump(), "-3.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, TypedAccessors) {
  EXPECT_TRUE(Json::boolean(true).as_bool());
  EXPECT_DOUBLE_EQ(Json::number(2.5).as_number(), 2.5);
  EXPECT_EQ(Json::number(7).as_int(), 7);
  EXPECT_EQ(Json::string("x").as_string(), "x");
  EXPECT_THROW(Json::number(1).as_string(), ContractViolation);
  EXPECT_THROW(Json::string("x").as_number(), ContractViolation);
  EXPECT_THROW(Json::number(1.5).as_int(), ContractViolation);
}

TEST(Json, ArrayOperations) {
  Json a = Json::array();
  a.push_back(Json::number(1));
  a.push_back(Json::string("two"));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(0).as_int(), 1);
  EXPECT_EQ(a.at(1).as_string(), "two");
  EXPECT_THROW(a.at(2), ContractViolation);
  EXPECT_EQ(a.dump(), "[1,\"two\"]");
}

TEST(Json, ObjectOperationsPreserveInsertionOrder) {
  Json o = Json::object();
  o.set("z", Json::number(1));
  o.set("a", Json::number(2));
  o.set("z", Json::number(3));  // overwrite keeps position
  EXPECT_EQ(o.size(), 2u);
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("b"));
  EXPECT_EQ(o.at("z").as_int(), 3);
  EXPECT_EQ(o.dump(), "{\"z\":3,\"a\":2}");
  EXPECT_THROW(o.at("missing"), ContractViolation);
}

TEST(Json, StringEscaping) {
  const Json s = Json::string("a\"b\\c\nd\te\x01");
  const std::string dumped = s.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(Json::parse(dumped).as_string(), s.as_string());
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse(" true ").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.25e1").as_number(), -122.5);
  EXPECT_EQ(Json::parse("\"x\\u0041y\"").as_string(), "xAy");
}

TEST(Json, ParseNested) {
  const auto j = Json::parse(
      R"({"name":"lab","devices":[{"id":0,"rate":2.5},{"id":1,"rate":1.0}],)"
      R"("ok":true})");
  EXPECT_EQ(j.at("name").as_string(), "lab");
  EXPECT_EQ(j.at("devices").size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("devices").at(0).at("rate").as_number(), 2.5);
  EXPECT_TRUE(j.at("ok").as_bool());
}

TEST(Json, RoundTripComplexDocument) {
  Json o = Json::object();
  Json& arr = o.set("list", Json::array());
  for (int i = 0; i < 5; ++i) {
    Json item = Json::object();
    item.set("i", Json::number(i));
    item.set("sq", Json::number(i * i));
    arr.push_back(std::move(item));
  }
  o.set("meta", Json::string("round trip"));
  const Json parsed = Json::parse(o.dump());
  EXPECT_EQ(parsed, o);
  const Json pretty_parsed = Json::parse(o.dump_pretty());
  EXPECT_EQ(pretty_parsed, o);
}

TEST(Json, PrettyPrintShape) {
  Json o = Json::object();
  o.set("a", Json::number(1));
  Json arr = Json::array();
  arr.push_back(Json::number(2));
  o.set("b", std::move(arr));
  const std::string s = o.dump_pretty();
  EXPECT_NE(s.find("{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"),
            std::string::npos);
}

TEST(Json, ParseErrorsAreDiagnosed) {
  EXPECT_THROW(Json::parse(""), ContractViolation);
  EXPECT_THROW(Json::parse("{"), ContractViolation);
  EXPECT_THROW(Json::parse("[1,]"), ContractViolation);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), ContractViolation);
  EXPECT_THROW(Json::parse("tru"), ContractViolation);
  EXPECT_THROW(Json::parse("1 2"), ContractViolation);
  EXPECT_THROW(Json::parse("\"unterminated"), ContractViolation);
  EXPECT_THROW(Json::parse("{a:1}"), ContractViolation);
}

TEST(Json, NumbersPrintIntegersCleanly) {
  EXPECT_EQ(Json::number(1e6).dump(), "1000000");
  EXPECT_EQ(Json::number(0.5).dump(), "0.5");
  // Round-trips preserve value.
  EXPECT_DOUBLE_EQ(Json::parse(Json::number(0.1).dump()).as_number(), 0.1);
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()),
               ContractViolation);
}

TEST(Json, EqualityIsStructural) {
  const auto a = Json::parse(R"({"x":[1,2],"y":"s"})");
  const auto b = Json::parse(R"({ "x" : [ 1 , 2 ] , "y" : "s" })");
  EXPECT_EQ(a, b);
  const auto c = Json::parse(R"({"x":[1,3],"y":"s"})");
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace scalpel
