#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace scalpel {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ContractViolation);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2     |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
}

TEST(Table, RowAccessors) {
  Table t({"a"});
  t.add_row({"v0"});
  t.add_row({"v1"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.row(1)[0], "v1");
}

TEST(Csv, WritesFile) {
  Table t({"h"});
  t.add_row({"v"});
  const auto path =
      std::filesystem::temp_directory_path() / "scalpel_csv_test.csv";
  ASSERT_TRUE(write_csv(t, path.string()));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::getline(in, line);
  EXPECT_EQ(line, "v");
  std::filesystem::remove(path);
}

TEST(Csv, FailsGracefullyOnBadPath) {
  Table t({"h"});
  EXPECT_FALSE(write_csv(t, "/nonexistent_dir_xyz/file.csv"));
}

}  // namespace
}  // namespace scalpel
