#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStat s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(6);
  RunningStat whole;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 9.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(RunningStat, CovAndCi) {
  RunningStat s;
  for (int i = 0; i < 100; ++i) s.add(i % 2 ? 9.0 : 11.0);
  EXPECT_NEAR(s.mean(), 10.0, 1e-12);
  EXPECT_GT(s.cov(), 0.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
  EXPECT_LT(s.ci95_halfwidth(), 1.0);
}

TEST(Samples, QuantilesExactSmallSet) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.p50(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Samples, QuantileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 3.0);
}

TEST(Samples, QuantileAfterMoreAdds) {
  // Adding after a quantile query must re-sort correctly.
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.p50(), 3.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(Samples, RejectsEmptyQueries) {
  Samples s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.quantile(0.5), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Samples, RejectsBadQuantile) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), ContractViolation);
  EXPECT_THROW(s.quantile(1.1), ContractViolation);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Samples, MergeConcatenatesAndResorts) {
  Samples a;
  a.add(3.0);
  a.add(1.0);
  EXPECT_DOUBLE_EQ(a.p50(), 2.0);  // forces the sorted state
  Samples b;
  b.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.p50(), 2.5);
  Samples empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Samples, VarianceMatchesStddev) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
  Samples single;
  single.add(1.0);
  EXPECT_EQ(single.variance(), 0.0);
}

TEST(StudentT, CriticalValues) {
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical_975(7), 2.365, 1e-9);   // 8 replications
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-9);
  EXPECT_NEAR(t_critical_975(1000), 1.95996, 1e-4);
  EXPECT_THROW(t_critical_975(0), ContractViolation);
}

TEST(Samples, Ci95UsesStudentT) {
  // n=8 -> df=7 -> t=2.365; stddev of {1..8} is sqrt(6).
  Samples s;
  for (int i = 1; i <= 8; ++i) s.add(static_cast<double>(i));
  const double expected = 2.365 * std::sqrt(6.0) / std::sqrt(8.0);
  EXPECT_NEAR(s.ci95_halfwidth(), expected, 1e-9);
  Samples single;
  single.add(5.0);
  EXPECT_EQ(single.ci95_halfwidth(), 0.0);
}

TEST(Summary, SummarizeAndCovers) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.ci95, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  EXPECT_TRUE(s.covers(3.0));
  EXPECT_TRUE(s.covers(3.0 + s.ci95));
  EXPECT_FALSE(s.covers(3.0 + s.ci95 * 1.01));
  EXPECT_FALSE(s.covers(-10.0));
  const Summary empty = summarize(Samples{});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(50.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

}  // namespace
}  // namespace scalpel
