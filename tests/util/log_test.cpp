// Logging satellite: level parsing (the SCALPEL_LOG_LEVEL grammar), the
// thread-local sim-time stamp, and the ring-buffered LogCapture test helper.

#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace scalpel {
namespace {

/// Restores the global level on scope exit so tests don't leak state.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(LogLevelParse, AcceptsNamesCaseInsensitive) {
  LogLevel l = LogLevel::kOff;
  EXPECT_TRUE(parse_log_level("debug", &l));
  EXPECT_EQ(l, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("WARN", &l));
  EXPECT_EQ(l, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("Warning", &l));
  EXPECT_EQ(l, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("none", &l));
  EXPECT_EQ(l, LogLevel::kOff);
}

TEST(LogLevelParse, AcceptsNumericLevels) {
  LogLevel l = LogLevel::kOff;
  EXPECT_TRUE(parse_log_level("0", &l));
  EXPECT_EQ(l, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("3", &l));
  EXPECT_EQ(l, LogLevel::kError);
}

TEST(LogLevelParse, RejectsGarbageLeavingOutputUntouched) {
  LogLevel l = LogLevel::kWarn;
  EXPECT_FALSE(parse_log_level("loud", &l));
  EXPECT_FALSE(parse_log_level("", &l));
  EXPECT_FALSE(parse_log_level("5", &l));
  EXPECT_EQ(l, LogLevel::kWarn);
}

TEST(LogCapture, CapturesFormattedLinesInsteadOfStderr) {
  LevelGuard guard;
  set_log_level(LogLevel::kInfo);
  LogCapture cap;
  log_info("hello from the test");
  log_debug("below the level; not recorded");
  const auto lines = cap.entries();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[scalpel info] hello from the test");
  EXPECT_TRUE(cap.contains("hello"));
  EXPECT_FALSE(cap.contains("not recorded"));
}

TEST(LogCapture, SimTimeStampAppearsWhileSet) {
  LevelGuard guard;
  set_log_level(LogLevel::kInfo);
  LogCapture cap;
  set_log_sim_time(12.25);
  log_warn("queue full");
  clear_log_sim_time();
  log_warn("after the run");
  const auto lines = cap.entries();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[scalpel warn t=12.250s] queue full");
  EXPECT_EQ(lines[1], "[scalpel warn] after the run");
}

TEST(LogCapture, RingOverflowKeepsNewest) {
  LevelGuard guard;
  set_log_level(LogLevel::kInfo);
  LogCapture cap(2);
  log_info("one");
  log_info("two");
  log_info("three");
  const auto lines = cap.entries();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(cap.dropped(), 1u);
  EXPECT_TRUE(cap.contains("two"));
  EXPECT_TRUE(cap.contains("three"));
  EXPECT_FALSE(cap.contains("one"));
  cap.clear();
  EXPECT_TRUE(cap.entries().empty());
  EXPECT_EQ(cap.dropped(), 0u);
}

TEST(LogCapture, InnermostCaptureWinsAndRestores) {
  LevelGuard guard;
  set_log_level(LogLevel::kInfo);
  LogCapture outer;
  {
    LogCapture inner;
    log_info("inner message");
    EXPECT_TRUE(inner.contains("inner message"));
  }
  EXPECT_FALSE(outer.contains("inner message"));
  log_info("outer message");
  EXPECT_TRUE(outer.contains("outer message"));
}

}  // namespace
}  // namespace scalpel
