#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace scalpel::flags {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ParseSize, AcceptsPlainIntegers) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_size("0", 0, kU64Max, &v, nullptr));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_size("42", 0, kU64Max, &v, nullptr));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_size("18446744073709551615", 0, kU64Max, &v, nullptr));
  EXPECT_EQ(v, kU64Max);
}

TEST(ParseSize, RejectsGarbageWholeToken) {
  std::uint64_t v = 99;
  std::string err;
  for (const char* bad : {"", "abc", "12abc", "1.5", "0x10", " 8", "8 ",
                          "+8", "--3", "1e3"}) {
    EXPECT_FALSE(parse_size(bad, 0, kU64Max, &v, &err)) << bad;
    EXPECT_NE(err.find('\''), std::string::npos) << bad;
  }
  EXPECT_EQ(v, 99u) << "failed parse must not touch *out";
}

TEST(ParseSize, RejectsNegatives) {
  std::uint64_t v = 0;
  std::string err;
  EXPECT_FALSE(parse_size("-3", 0, kU64Max, &v, &err));
  EXPECT_NE(err.find("-3"), std::string::npos);
}

TEST(ParseSize, EnforcesInclusiveBounds) {
  std::uint64_t v = 0;
  std::string err;
  EXPECT_FALSE(parse_size("0", 1, 8, &v, &err));
  EXPECT_NE(err.find("[1, 8]"), std::string::npos);
  EXPECT_TRUE(parse_size("1", 1, 8, &v, nullptr));
  EXPECT_TRUE(parse_size("8", 1, 8, &v, nullptr));
  EXPECT_FALSE(parse_size("9", 1, 8, &v, &err));
}

TEST(ParseSize, RejectsOverflow) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_size("18446744073709551616", 0, kU64Max, &v, nullptr));
}

TEST(ParseSize, NullErrorPointerIsSafe) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_size("junk", 0, kU64Max, &v, nullptr));
}

TEST(ParseDouble, AcceptsDecimalsAndExponents) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("0.15", 0.0, 1.0, &v, nullptr));
  EXPECT_DOUBLE_EQ(v, 0.15);
  EXPECT_TRUE(parse_double("-2.5", -10.0, 0.0, &v, nullptr));
  EXPECT_DOUBLE_EQ(v, -2.5);
  EXPECT_TRUE(parse_double("1e3", 0.0, kInf, &v, nullptr));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(ParseDouble, RejectsGarbageWholeToken) {
  double v = 7.0;
  std::string err;
  for (const char* bad : {"", "banana", "1.5x", "0.1.2", " 1", "1 "}) {
    EXPECT_FALSE(parse_double(bad, -kInf, kInf, &v, &err)) << bad;
  }
  EXPECT_DOUBLE_EQ(v, 7.0) << "failed parse must not touch *out";
}

TEST(ParseDouble, RejectsNonFinite) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("inf", -kInf, kInf, &v, nullptr));
  EXPECT_FALSE(parse_double("nan", -kInf, kInf, &v, nullptr));
}

TEST(ParseDouble, EnforcesInclusiveBounds) {
  double v = 0.0;
  std::string err;
  EXPECT_FALSE(parse_double("-0.1", 0.0, 1.0, &v, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
  EXPECT_TRUE(parse_double("0", 0.0, 1.0, &v, nullptr));
  EXPECT_TRUE(parse_double("1", 0.0, 1.0, &v, nullptr));
  EXPECT_FALSE(parse_double("1.0001", 0.0, 1.0, &v, nullptr));
}

TEST(ParseDouble, InfiniteBoundFormatsAsInf) {
  double v = 0.0;
  std::string err;
  EXPECT_FALSE(parse_double("-1", 0.0, kInf, &v, &err));
  EXPECT_NE(err.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace scalpel::flags
