#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace scalpel {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.submit([&] { value = 42; });
  f.get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.parallel_for(10, 11, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 10);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    std::int64_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<std::int64_t>(i);
    total += local;
  });
  EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("chunk fail");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 200; ++i) {
    fs.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(count, 200);
}

}  // namespace
}  // namespace scalpel
