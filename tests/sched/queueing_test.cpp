#include "sched/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

TEST(Mm1, SojournFormula) {
  // lambda=2, mu=5: W = 1/(5-2).
  EXPECT_NEAR(queueing::mm1_sojourn(2.0, 5.0), 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(std::isinf(queueing::mm1_sojourn(5.0, 5.0)));
  EXPECT_TRUE(std::isinf(queueing::mm1_sojourn(6.0, 5.0)));
}

TEST(Mm1, WaitPlusServiceEqualsSojourn) {
  const double lambda = 3.0;
  const double mu = 7.0;
  EXPECT_NEAR(queueing::mm1_wait(lambda, mu) + 1.0 / mu,
              queueing::mm1_sojourn(lambda, mu), 1e-12);
}

TEST(Mm1, TailIsExponential) {
  const double lambda = 1.0;
  const double mu = 3.0;
  EXPECT_NEAR(queueing::mm1_sojourn_tail(lambda, mu, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(queueing::mm1_sojourn_tail(lambda, mu, 0.5),
              std::exp(-1.0), 1e-12);
  EXPECT_EQ(queueing::mm1_sojourn_tail(5.0, 5.0, 1.0), 1.0);  // unstable
}

TEST(Mg1, ReducesToMm1ForExponentialService) {
  // Exponential service: m1 = 1/mu, m2 = 2/mu^2.
  const double lambda = 2.0;
  const double mu = 5.0;
  EXPECT_NEAR(queueing::mg1_sojourn(lambda, 1.0 / mu, 2.0 / (mu * mu)),
              queueing::mm1_sojourn(lambda, mu), 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWait) {
  // M/D/1 waiting time is half of M/M/1's at the same rate.
  const double lambda = 4.0;
  const double s = 0.2;  // rho = 0.8
  const double md1_wait = queueing::md1_sojourn(lambda, s) - s;
  const double mm1_wait = queueing::mm1_wait(lambda, 1.0 / s);
  EXPECT_NEAR(md1_wait, 0.5 * mm1_wait, 1e-12);
}

TEST(Mg1, UnstableIsInf) {
  EXPECT_TRUE(std::isinf(queueing::mg1_sojourn(10.0, 0.1, 0.01)));
  EXPECT_TRUE(std::isinf(queueing::md1_sojourn(10.0, 0.1)));
}

TEST(Mg1, ZeroServiceIsZero) {
  EXPECT_EQ(queueing::mg1_sojourn(5.0, 0.0, 0.0), 0.0);
}

TEST(Mg1, RejectsInvalidMoments) {
  EXPECT_THROW(queueing::mg1_sojourn(-1.0, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(queueing::mg1_sojourn(1.0, -1.0, 1.0), ContractViolation);
}

TEST(Mg1, ClampsSubDeterministicVariance) {
  // m2 < m1^2 is physically impossible; fp scaling can produce it, so the
  // implementation clamps to deterministic service rather than rejecting.
  const double got = queueing::mg1_sojourn(1.0, 0.2, 0.2 * 0.2 * 0.999999);
  EXPECT_NEAR(got, queueing::md1_sojourn(1.0, 0.2), 1e-9);
}

TEST(Kleinrock, SplitsSumToCapacity) {
  const auto c = queueing::kleinrock({1.0, 2.0}, {0.5, 0.25}, 3.0);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0] + c[1], 3.0, 1e-12);
  // Every class is stable: c_i / w_i > lambda_i.
  EXPECT_GT(c[0] / 0.5, 1.0);
  EXPECT_GT(c[1] / 0.25, 2.0);
}

TEST(Kleinrock, InfeasibleLoadReturnsEmpty) {
  EXPECT_TRUE(queueing::kleinrock({10.0}, {1.0}, 5.0).empty());
  EXPECT_TRUE(queueing::kleinrock({1.0, 1.0}, {1.0, 1.0}, 2.0).empty());
}

TEST(Kleinrock, ZeroRateClassGetsNothing) {
  const auto c = queueing::kleinrock({0.0, 2.0}, {0.0, 0.5}, 4.0);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 0.0);
  EXPECT_NEAR(c[1], 4.0, 1e-12);
}

/// Kleinrock's closed form is the exact minimizer of the rate-weighted mean
/// sojourn; verify against a dense grid on two-class instances.
TEST(Kleinrock, OptimalityProperty) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> lambda = {rng.uniform(0.5, 3.0),
                                        rng.uniform(0.5, 3.0)};
    const std::vector<double> work = {rng.uniform(0.05, 0.3),
                                      rng.uniform(0.05, 0.3)};
    const double cap =
        (lambda[0] * work[0] + lambda[1] * work[1]) * rng.uniform(1.3, 3.0);
    const auto opt = queueing::kleinrock(lambda, work, cap);
    ASSERT_FALSE(opt.empty());
    const double opt_cost = queueing::mean_sojourn(lambda, work, opt);
    for (int g = 1; g < 300; ++g) {
      const double c0 = cap * g / 300.0;
      const double cost =
          queueing::mean_sojourn(lambda, work, {c0, cap - c0});
      ASSERT_GE(cost, opt_cost - 1e-9) << "trial " << trial;
    }
  }
}

TEST(Kleinrock, MeanSojournInfForUnderProvisionedClass) {
  // Give class 0 less capacity than stability requires.
  const std::vector<double> lambda = {2.0, 1.0};
  const std::vector<double> work = {0.5, 0.1};
  const double cost = queueing::mean_sojourn(lambda, work, {0.9, 1.0});
  EXPECT_TRUE(std::isinf(cost));
}

TEST(Kleinrock, MeanSojournZeroWhenNoTraffic) {
  EXPECT_EQ(queueing::mean_sojourn({0.0}, {1.0}, {0.0}), 0.0);
}

}  // namespace
}  // namespace scalpel
