#include "sched/offloading.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sched/queueing.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

/// Random feasible instance: total load comfortably below total capacity.
OffloadingProblem random_problem(std::size_t n, std::size_t m, Rng& rng) {
  OffloadingProblem p;
  p.capacity.assign(m, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    p.rate.push_back(rng.uniform(0.5, 2.0));
    std::vector<double> base;
    std::vector<double> work;
    for (std::size_t j = 0; j < m; ++j) {
      base.push_back(rng.uniform(0.005, 0.05));
      work.push_back(rng.uniform(0.01, 0.08));
    }
    p.base_latency.push_back(std::move(base));
    p.work.push_back(std::move(work));
  }
  return p;
}

TEST(Offloading, ValidateCatchesArityErrors) {
  OffloadingProblem p;
  EXPECT_THROW(p.validate(), ContractViolation);
  p.capacity = {1.0};
  p.rate = {1.0};
  p.base_latency = {{0.1, 0.2}};  // two servers but capacity has one
  p.work = {{0.1}};
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(Offloading, EvaluateSingleDeviceMatchesClosedForm) {
  OffloadingProblem p;
  p.capacity = {1.0};
  p.rate = {2.0};
  p.base_latency = {{0.01}};
  p.work = {{0.1}};  // mu = 1/0.1 = 10 with full capacity
  std::vector<double> lat;
  const double cost = evaluate_assignment(p, {0}, &lat);
  const double expect = 0.01 + queueing::mm1_sojourn(2.0, 10.0);
  EXPECT_NEAR(cost, expect, 1e-9);
  EXPECT_NEAR(lat[0], expect, 1e-9);
}

TEST(Offloading, EvaluateDetectsOverload) {
  OffloadingProblem p;
  p.capacity = {1.0};
  p.rate = {20.0};
  p.base_latency = {{0.01}};
  p.work = {{0.1}};  // load 2.0 > 1
  const double cost = evaluate_assignment(p, {0}, nullptr);
  EXPECT_TRUE(std::isinf(cost));
}

TEST(Offloading, EvaluateRejectsForbiddenPair) {
  OffloadingProblem p;
  p.capacity = {1.0, 1.0};
  p.rate = {1.0};
  p.base_latency = {
      {std::numeric_limits<double>::infinity(), 0.01}};
  p.work = {{0.1, 0.1}};
  EXPECT_TRUE(std::isinf(evaluate_assignment(p, {0}, nullptr)));
  EXPECT_FALSE(std::isinf(evaluate_assignment(p, {1}, nullptr)));
}

TEST(Offloading, GreedyProducesFeasibleSolutions) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = random_problem(6, 3, rng);
    const auto s = greedy_offloading(p);
    EXPECT_TRUE(s.feasible) << trial;
    EXPECT_EQ(s.server_of.size(), 6u);
    EXPECT_TRUE(std::isfinite(s.social_cost));
  }
}

TEST(Offloading, BestResponseConvergesAndImprovesOnGreedy) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = random_problem(5, 3, rng);
    const auto greedy = greedy_offloading(p);
    const auto br = best_response_offloading(p);
    EXPECT_TRUE(br.converged) << trial;
    EXPECT_TRUE(br.feasible) << trial;
    // Best-response starts from greedy; each move strictly improves the
    // mover, and with the Kleinrock-shared latency this improves the
    // potential, so social cost should rarely regress. Allow slack for the
    // pathological cases game theory permits.
    EXPECT_LE(br.social_cost, greedy.social_cost * 1.25 + 1e-9) << trial;
  }
}

TEST(Offloading, BestResponseIsNashEquilibrium) {
  Rng rng(7);
  const auto p = random_problem(4, 3, rng);
  const auto br = best_response_offloading(p);
  ASSERT_TRUE(br.converged);
  // No unilateral move may improve the mover by more than epsilon.
  for (std::size_t i = 0; i < p.num_devices(); ++i) {
    std::vector<double> lat;
    evaluate_assignment(p, br.server_of, &lat);
    for (std::size_t j = 0; j < p.num_servers(); ++j) {
      if (static_cast<int>(j) == br.server_of[i]) continue;
      auto trial_assign = br.server_of;
      trial_assign[i] = static_cast<int>(j);
      std::vector<double> trial_lat;
      const double c = evaluate_assignment(p, trial_assign, &trial_lat);
      if (!std::isfinite(c)) continue;
      EXPECT_GE(trial_lat[i], lat[i] * (1.0 - 1e-5))
          << "device " << i << " would move to " << j;
    }
  }
}

TEST(Offloading, BestResponseNearOptimalOnSmallInstances) {
  Rng rng(8);
  for (int trial = 0; trial < 8; ++trial) {
    const auto p = random_problem(4, 2, rng);
    const auto opt = exhaustive_offloading(p);
    const auto br = best_response_offloading(p);
    ASSERT_TRUE(opt.feasible);
    ASSERT_TRUE(br.feasible);
    EXPECT_LE(br.social_cost, opt.social_cost * 1.6 + 1e-9)
        << "trial " << trial;
    EXPECT_GE(br.social_cost, opt.social_cost - 1e-9);
  }
}

TEST(Offloading, ExhaustiveGuardsAgainstExplosion) {
  Rng rng(9);
  const auto p = random_problem(20, 10, rng);
  EXPECT_THROW(exhaustive_offloading(p), ContractViolation);
}

TEST(Offloading, KleinrockSharesSumWithinServerCapacity) {
  Rng rng(10);
  const auto p = random_problem(8, 3, rng);
  const auto s = best_response_offloading(p);
  const auto shares = kleinrock_shares(p, s.server_of);
  std::vector<double> per_server(p.num_servers(), 0.0);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_GT(shares[i], 0.0);
    per_server[static_cast<std::size_t>(s.server_of[i])] += shares[i];
  }
  for (double total : per_server) {
    EXPECT_LE(total, 1.0 + 1e-9);
  }
}

TEST(Offloading, KleinrockSharesZeroOnOverload) {
  OffloadingProblem p;
  p.capacity = {1.0};
  p.rate = {20.0};
  p.base_latency = {{0.0}};
  p.work = {{0.1}};
  const auto shares = kleinrock_shares(p, {0});
  EXPECT_EQ(shares[0], 0.0);
}

TEST(Offloading, HeavyDeviceGetsFasterServerUnderContention) {
  // Two servers, one 4x the capacity; the heavy class should end up on the
  // big one after best-response.
  OffloadingProblem p;
  p.capacity = {4.0, 1.0};
  p.rate = {10.0, 0.5};
  p.base_latency = {{0.001, 0.001}, {0.001, 0.001}};
  p.work = {{0.3, 0.3}, {0.05, 0.05}};
  const auto s = best_response_offloading(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.server_of[0], 0);  // heavy -> big server
}

}  // namespace
}  // namespace scalpel
