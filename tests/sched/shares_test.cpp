#include "sched/shares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

TEST(Shares, SqrtRuleSumsToCapacity) {
  const auto s = shares::sqrt_rule({1.0, 4.0, 9.0}, 12.0);
  EXPECT_NEAR(s[0] + s[1] + s[2], 12.0, 1e-12);
  // sqrt(1):sqrt(4):sqrt(9) = 1:2:3
  EXPECT_NEAR(s[0], 2.0, 1e-12);
  EXPECT_NEAR(s[1], 4.0, 1e-12);
  EXPECT_NEAR(s[2], 6.0, 1e-12);
}

TEST(Shares, SqrtRuleZeroDemandGetsZero) {
  const auto s = shares::sqrt_rule({0.0, 4.0}, 10.0);
  EXPECT_EQ(s[0], 0.0);
  EXPECT_NEAR(s[1], 10.0, 1e-12);
}

TEST(Shares, InputValidation) {
  EXPECT_THROW(shares::sqrt_rule({}, 1.0), ContractViolation);
  EXPECT_THROW(shares::sqrt_rule({1.0}, 0.0), ContractViolation);
  EXPECT_THROW(shares::sqrt_rule({-1.0, 1.0}, 1.0), ContractViolation);
  EXPECT_THROW(shares::sqrt_rule({0.0, 0.0}, 1.0), ContractViolation);
}

TEST(Shares, EqualSplitSkipsZeroDemand) {
  const auto s = shares::equal_split({1.0, 0.0, 5.0}, 10.0);
  EXPECT_NEAR(s[0], 5.0, 1e-12);
  EXPECT_EQ(s[1], 0.0);
  EXPECT_NEAR(s[2], 5.0, 1e-12);
}

TEST(Shares, ProportionalMatchesWeights) {
  const auto s = shares::proportional({1.0, 3.0}, 8.0);
  EXPECT_NEAR(s[0], 2.0, 1e-12);
  EXPECT_NEAR(s[1], 6.0, 1e-12);
}

TEST(Shares, InverseCostComputes) {
  const double c = shares::inverse_cost({2.0, 8.0}, {1.0, 4.0});
  EXPECT_NEAR(c, 2.0 + 2.0, 1e-12);
  EXPECT_TRUE(std::isinf(shares::inverse_cost({1.0}, {0.0})));
  EXPECT_EQ(shares::inverse_cost({0.0}, {0.0}), 0.0);
}

/// The square-root rule is the exact minimizer of sum w_i / c_i subject to
/// sum c_i = C — verify against dense grid search on random instances.
TEST(Shares, SqrtRuleOptimalityProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w = {rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)};
    const double cap = rng.uniform(1.0, 20.0);
    const auto opt = shares::sqrt_rule(w, cap);
    const double opt_cost = shares::inverse_cost(w, opt);
    for (int g = 1; g < 200; ++g) {
      const double c0 = cap * g / 200.0;
      const double cost = shares::inverse_cost(w, {c0, cap - c0});
      ASSERT_GE(cost, opt_cost - 1e-9)
          << "trial " << trial << " grid point " << g;
    }
  }
}

TEST(Shares, MaxMinFairUncappedSplitsEqually) {
  const auto a = shares::max_min_fair({100.0, 100.0, 100.0}, 9.0);
  for (double v : a) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Shares, MaxMinFairRespectsCapsAndRedistributes) {
  // Class 0 capped at 1; its surplus flows to the others.
  const auto a = shares::max_min_fair({1.0, 100.0, 100.0}, 9.0);
  EXPECT_NEAR(a[0], 1.0, 1e-12);
  EXPECT_NEAR(a[1], 4.0, 1e-12);
  EXPECT_NEAR(a[2], 4.0, 1e-12);
}

TEST(Shares, MaxMinFairCapacityExceedsDemand) {
  const auto a = shares::max_min_fair({1.0, 2.0}, 10.0);
  EXPECT_NEAR(a[0], 1.0, 1e-12);
  EXPECT_NEAR(a[1], 2.0, 1e-12);
}

TEST(Shares, MaxMinFairConservesCapacityWhenSaturated) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> caps;
    double total_cap = 0.0;
    for (int i = 0; i < 5; ++i) {
      caps.push_back(rng.uniform(0.5, 5.0));
      total_cap += caps.back();
    }
    const double capacity = total_cap * 0.7;  // demand exceeds capacity
    const auto a = shares::max_min_fair(caps, capacity);
    double sum = 0.0;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      ASSERT_LE(a[i], caps[i] + 1e-9);
      sum += a[i];
    }
    EXPECT_NEAR(sum, capacity, 1e-9);
    // Max-min property: any class below its cap gets at least as much as
    // every other class (no one below cap is starved relative to others).
    for (std::size_t i = 0; i < caps.size(); ++i) {
      if (a[i] < caps[i] - 1e-9) {
        for (std::size_t j = 0; j < caps.size(); ++j) {
          ASSERT_GE(a[i], a[j] - 1e-9);
        }
      }
    }
  }
}

TEST(Shares, MaxMinFairValidates) {
  EXPECT_THROW(shares::max_min_fair({}, 1.0), ContractViolation);
  EXPECT_THROW(shares::max_min_fair({1.0}, 0.0), ContractViolation);
  EXPECT_THROW(shares::max_min_fair({-1.0}, 1.0), ContractViolation);
}

TEST(Shares, SqrtRuleBeatsEqualAndProportionalOnSkewedDemands) {
  const std::vector<double> w = {1.0, 100.0};
  const double cap = 10.0;
  const double sqrt_cost = shares::inverse_cost(w, shares::sqrt_rule(w, cap));
  const double equal_cost =
      shares::inverse_cost(w, shares::equal_split(w, cap));
  const double prop_cost =
      shares::inverse_cost(w, shares::proportional(w, cap));
  EXPECT_LT(sqrt_cost, equal_cost);
  EXPECT_LT(sqrt_cost, prop_cost);
}

}  // namespace
}  // namespace scalpel
