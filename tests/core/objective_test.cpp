#include "core/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "edge/builders.hpp"
#include "profile/latency_model.hpp"
#include "sched/queueing.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

struct Fixture {
  ClusterTopology topo = clusters::small_lab();
  ProblemInstance instance{topo};
};

DeviceDecision local_decision() {
  DeviceDecision d;
  d.plan.device_only = true;
  return d;
}

DeviceDecision offload_decision(ServerId server, double share, double bw) {
  DeviceDecision d;
  d.plan.partition_after = 0;
  d.server = server;
  d.compute_share = share;
  d.bandwidth = bw;
  return d;
}

TEST(Instance, BundlesBuiltPerModel) {
  Fixture f;
  for (const auto& dev : f.topo.devices()) {
    const auto& b = f.instance.bundle_for(dev.id);
    EXPECT_EQ(b.graph.name(), dev.model);
    EXPECT_FALSE(b.candidates.empty());
  }
  EXPECT_THROW(f.instance.bundle_by_model("nope"), ContractViolation);
}

TEST(Objective, DeviceOnlyNoQueueingMatchesPlanModel) {
  Fixture f;
  EvalOptions opts;
  opts.queueing = false;
  const auto pred =
      evaluate_device(f.instance, 3, local_decision(), opts);  // jetson
  const auto& bundle = f.instance.bundle_for(3);
  const double expect = LatencyModel::graph_latency(
      bundle.graph, f.topo.device(3).compute);
  EXPECT_NEAR(pred.expected_latency, expect, 1e-9);
  EXPECT_EQ(pred.offload_prob, 0.0);
  EXPECT_TRUE(pred.stable);
}

TEST(Objective, QueueingInflatesLatency) {
  Fixture f;
  EvalOptions with;
  EvalOptions without;
  without.queueing = false;
  const auto dd = local_decision();
  const auto a = evaluate_device(f.instance, 3, dd, with);
  const auto b = evaluate_device(f.instance, 3, dd, without);
  ASSERT_TRUE(a.stable);
  EXPECT_GT(a.expected_latency, b.expected_latency);
}

TEST(Objective, OverloadedDeviceIsUnstable) {
  Fixture f;
  // cam0 (iot_camera, mobilenet, 2 tasks/s) cannot run locally: service time
  // ~1s at rate 2/s.
  const auto pred = evaluate_device(f.instance, 0, local_decision(), {});
  EXPECT_FALSE(pred.stable);
  EXPECT_TRUE(std::isinf(pred.expected_latency));
}

TEST(Objective, StarvedBandwidthIsUnstable) {
  Fixture f;
  // Uploading 600 KB per task at 2/s over 1 Mbps cannot drain.
  const auto pred = evaluate_device(
      f.instance, 0, offload_decision(1, 0.5, mbps(1.0)), {});
  EXPECT_FALSE(pred.stable);
}

TEST(Objective, TinyComputeShareIsUnstable) {
  Fixture f;
  const auto pred = evaluate_device(
      f.instance, 0, offload_decision(1, 1e-6, mbps(40.0)), {});
  EXPECT_FALSE(pred.stable);
}

TEST(Objective, ReasonableOffloadIsStable) {
  Fixture f;
  const auto pred = evaluate_device(
      f.instance, 0, offload_decision(1, 0.5, mbps(40.0)), {});
  EXPECT_TRUE(pred.stable);
  EXPECT_GT(pred.expected_latency, 0.0);
  EXPECT_NEAR(pred.offload_prob, 1.0, 1e-12);
}

TEST(Objective, MoreBandwidthNeverHurts) {
  Fixture f;
  double prev = std::numeric_limits<double>::infinity();
  for (double mb : {10.0, 20.0, 40.0, 79.0}) {
    const auto pred = evaluate_device(
        f.instance, 0, offload_decision(1, 0.5, mbps(mb)), {});
    if (pred.stable) {
      EXPECT_LE(pred.expected_latency, prev + 1e-12) << mb;
      prev = pred.expected_latency;
    }
  }
  EXPECT_TRUE(std::isfinite(prev));
}

TEST(Objective, MoreComputeShareNeverHurts) {
  Fixture f;
  double prev = std::numeric_limits<double>::infinity();
  for (double share : {0.1, 0.3, 0.6, 1.0}) {
    const auto pred = evaluate_device(
        f.instance, 2, offload_decision(1, share, mbps(40.0)), {});
    if (pred.stable) {
      EXPECT_LE(pred.expected_latency, prev + 1e-12) << share;
      prev = pred.expected_latency;
    }
  }
}

TEST(Objective, DecisionValidatesOversubscription) {
  Fixture f;
  Decision d;
  d.per_device.resize(4);
  for (auto& dd : d.per_device) dd = offload_decision(0, 0.5, mbps(40.0));
  // 4 x 0.5 shares on one server = 2.0 > 1.
  EXPECT_THROW(evaluate_decision(f.instance, d), ContractViolation);

  Decision d2;
  d2.per_device.resize(4);
  for (auto& dd : d2.per_device) dd = offload_decision(0, 0.25, mbps(40.0));
  // 4 x 40 Mbps on an 80 Mbps cell.
  EXPECT_THROW(evaluate_decision(f.instance, d2), ContractViolation);
}

TEST(Objective, DecisionAggregatesRateWeightedMean) {
  Fixture f;
  Decision d;
  d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));  // cam
  d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));  // pi
  d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));  // phone
  d.per_device.push_back(local_decision());                      // jetson
  evaluate_decision(f.instance, d);
  ASSERT_EQ(d.predicted.size(), 4u);
  double weighted = 0.0;
  double rate = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    weighted += f.topo.device(static_cast<DeviceId>(i)).arrival_rate *
                d.predicted[i].expected_latency;
    rate += f.topo.device(static_cast<DeviceId>(i)).arrival_rate;
  }
  if (std::isfinite(d.mean_latency)) {
    EXPECT_NEAR(d.mean_latency, weighted / rate, 1e-9);
  }
}

TEST(Objective, AccuracyFloorFlagged) {
  Fixture f;
  // Raise cam0's floor beyond mobilenet's a_max via a fresh topology.
  auto topo = clusters::small_lab();
  Device dev = topo.device(0);
  ClusterTopology strict;
  strict.add_cell(topo.cell(0));
  dev.min_accuracy = 0.99;
  dev.cell = 0;
  strict.add_device(dev);
  EdgeServer s = topo.server(0);
  strict.add_server(s);
  const ProblemInstance inst(strict);
  const auto pred = evaluate_device(inst, 0, local_decision(), {});
  EXPECT_FALSE(pred.meets_accuracy);
}

TEST(Objective, DeadlineSatisfactionBounds) {
  Fixture f;
  Decision d;
  d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));
  d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));
  d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));
  d.per_device.push_back(local_decision());
  evaluate_decision(f.instance, d);
  const double sat = predicted_deadline_satisfaction(f.instance, d);
  EXPECT_GE(sat, 0.0);
  EXPECT_LE(sat, 1.0);
}

TEST(Objective, TighterDeadlineLowersSatisfaction) {
  auto topo_loose = clusters::small_lab();
  auto topo_tight = clusters::small_lab();
  // Same cluster, different deadlines: rebuild devices.
  ClusterTopology loose;
  ClusterTopology tight;
  loose.add_cell(topo_loose.cell(0));
  tight.add_cell(topo_tight.cell(0));
  for (const auto& dev : topo_loose.devices()) {
    Device dl = dev;
    dl.deadline = 2.0;
    loose.add_device(dl);
    Device dt = dev;
    dt.deadline = 0.02;
    tight.add_device(dt);
  }
  for (const auto& s : topo_loose.servers()) {
    loose.add_server(s);
    tight.add_server(s);
  }
  const ProblemInstance il(loose);
  const ProblemInstance it(tight);
  Decision d;
  for (int i = 0; i < 3; ++i) {
    d.per_device.push_back(offload_decision(1, 0.3, mbps(20.0)));
  }
  d.per_device.push_back(local_decision());
  Decision d2 = d;
  evaluate_decision(il, d);
  evaluate_decision(it, d2);
  EXPECT_GE(predicted_deadline_satisfaction(il, d),
            predicted_deadline_satisfaction(it, d2));
}

}  // namespace
}  // namespace scalpel
