#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

TEST(Serialize, SurgeryPlanRoundTrip) {
  SurgeryPlan plan;
  plan.partition_after = 17;
  plan.policy.exits = {{0, 0.15}, {3, 0.60}};
  const auto j = serialize::to_json(plan);
  const auto back = serialize::plan_from_json(j);
  EXPECT_EQ(back.device_only, plan.device_only);
  EXPECT_EQ(back.partition_after, plan.partition_after);
  ASSERT_EQ(back.policy.exits.size(), 2u);
  EXPECT_EQ(back.policy.exits[1].candidate, 3u);
  EXPECT_DOUBLE_EQ(back.policy.exits[1].theta, 0.60);
}

TEST(Serialize, DeviceOnlyPlanRoundTrip) {
  SurgeryPlan plan;
  plan.device_only = true;
  const auto back = serialize::plan_from_json(serialize::to_json(plan));
  EXPECT_TRUE(back.device_only);
  EXPECT_TRUE(back.policy.exits.empty());
}

TEST(Serialize, TopologyRoundTripPreservesEverything) {
  const auto topo = clusters::small_lab();
  const auto j = serialize::to_json(topo);
  const auto back = serialize::topology_from_json(j);
  ASSERT_EQ(back.devices().size(), topo.devices().size());
  ASSERT_EQ(back.servers().size(), topo.servers().size());
  ASSERT_EQ(back.cells().size(), topo.cells().size());
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    const auto& a = topo.devices()[i];
    const auto& b = back.devices()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_DOUBLE_EQ(a.arrival_rate, b.arrival_rate);
    EXPECT_DOUBLE_EQ(a.deadline, b.deadline);
    EXPECT_DOUBLE_EQ(a.min_accuracy, b.min_accuracy);
    EXPECT_DOUBLE_EQ(a.compute.peak_flops, b.compute.peak_flops);
    EXPECT_EQ(a.compute.efficiency.size(), b.compute.efficiency.size());
    EXPECT_DOUBLE_EQ(a.energy.p_active, b.energy.p_active);
  }
  for (std::size_t i = 0; i < topo.servers().size(); ++i) {
    EXPECT_DOUBLE_EQ(topo.servers()[i].compute.peak_flops,
                     back.servers()[i].compute.peak_flops);
    EXPECT_DOUBLE_EQ(topo.servers()[i].backhaul_rtt,
                     back.servers()[i].backhaul_rtt);
  }
}

TEST(Serialize, TopologyRoundTripThroughText) {
  const auto topo = clusters::campus({});
  const auto text = serialize::to_json(topo).dump_pretty();
  const auto back = serialize::topology_from_json(Json::parse(text));
  EXPECT_EQ(back.devices().size(), topo.devices().size());
  // Round-trip once more and require textual fixpoint.
  EXPECT_EQ(serialize::to_json(back).dump(), serialize::to_json(topo).dump());
}

TEST(Serialize, DecisionRoundTripIsReevaluable) {
  const ProblemInstance instance(clusters::small_lab());
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  const auto original = JointOptimizer(o).optimize(instance);

  const auto text = serialize::to_json(original).dump();
  Decision restored = serialize::decision_from_json(Json::parse(text));
  ASSERT_EQ(restored.per_device.size(), original.per_device.size());
  for (std::size_t i = 0; i < restored.per_device.size(); ++i) {
    EXPECT_EQ(restored.per_device[i].plan.partition_after,
              original.per_device[i].plan.partition_after);
    EXPECT_EQ(restored.per_device[i].server, original.per_device[i].server);
    EXPECT_DOUBLE_EQ(restored.per_device[i].bandwidth,
                     original.per_device[i].bandwidth);
  }
  // Predictions are re-derived, not deserialized.
  evaluate_decision(instance, restored);
  if (std::isfinite(original.mean_latency)) {
    EXPECT_NEAR(restored.mean_latency, original.mean_latency,
                original.mean_latency * 1e-9);
  }
}

TEST(Serialize, FromJsonValidates) {
  auto j = serialize::to_json(clusters::small_lab());
  j.set("devices", Json::array());  // no devices -> invalid topology
  EXPECT_THROW(serialize::topology_from_json(j), ContractViolation);
}

}  // namespace
}  // namespace scalpel
