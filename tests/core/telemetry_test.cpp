#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include "core/joint.hpp"
#include "core/validate.hpp"
#include "edge/builders.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

// A *measured* observation: fresh channel metadata attached, so the trust
// policy engages. Observations without metadata are ground truth (no
// channel in the loop) and bypass the policy entirely — see
// GroundTruthBypassesTrustPolicy.
Observation obs(std::vector<double> bw, std::vector<bool> alive) {
  Observation o;
  o.bw_fresh.assign(bw.size(), true);
  o.bw_age.assign(bw.size(), 0.0);
  o.alive_fresh.assign(alive.size(), true);
  o.cell_bandwidth = std::move(bw);
  o.server_alive = std::move(alive);
  return o;
}

TEST(Sanitizer, TransparentDefaultsChangeNothing) {
  TelemetrySanitizer san(SanitizerOptions{}, 2, 2);
  for (int i = 0; i < 5; ++i) {
    auto o = obs({100.0 + i, 50.0}, {true, i % 2 == 0});
    const auto before = o;
    const auto rep = san.apply(o);
    EXPECT_FALSE(rep.any());
    EXPECT_EQ(o.cell_bandwidth, before.cell_bandwidth);
    // confirm_windows = 1: every liveness flip believed immediately.
    EXPECT_EQ(o.server_alive, before.server_alive);
  }
}

TEST(Sanitizer, StaleReadingHeldAtLastGood) {
  SanitizerOptions so;
  so.max_age = 5.0;
  TelemetrySanitizer san(so, 1, 0);
  auto fresh = obs({100.0}, {});
  EXPECT_FALSE(san.apply(fresh).any());

  auto stale = obs({42.0}, {});
  stale.bw_fresh = {false};
  stale.bw_age = {12.0};
  const auto rep = san.apply(stale);
  EXPECT_EQ(rep.stale_held, 1u);
  EXPECT_DOUBLE_EQ(stale.cell_bandwidth[0], 100.0);
}

TEST(Sanitizer, DroppedReadingWithinTrustWindowPassesQuietly) {
  SanitizerOptions so;
  so.max_age = 5.0;
  TelemetrySanitizer san(so, 1, 0);
  auto fresh = obs({100.0}, {});
  san.apply(fresh);
  // A drop repeats the last delivery; while young it is already the
  // believed value, so there is nothing to reject.
  auto dropped = obs({100.0}, {});
  dropped.bw_fresh = {false};
  dropped.bw_age = {2.0};
  EXPECT_FALSE(san.apply(dropped).any());
}

TEST(Sanitizer, OutlierRejectedThenCapitulates) {
  SanitizerOptions so;
  so.outlier_band = 0.5;
  so.median_window = 3;
  so.distrust_limit = 2;
  TelemetrySanitizer san(so, 1, 0);
  for (int i = 0; i < 3; ++i) {
    auto o = obs({100.0}, {});
    EXPECT_FALSE(san.apply(o).any());
  }
  // |500 - 100| > 0.5 * 100: rejected, held at the reference, twice.
  for (int i = 0; i < 2; ++i) {
    auto spike = obs({500.0}, {});
    const auto rep = san.apply(spike);
    EXPECT_EQ(rep.outliers_rejected, 1u);
    EXPECT_DOUBLE_EQ(spike.cell_bandwidth[0], 100.0);
  }
  // Third consecutive "outlier" exceeds distrust_limit: a level shift, not
  // noise — the sanitizer capitulates and accepts the new reality.
  auto shift = obs({500.0}, {});
  const auto rep = san.apply(shift);
  EXPECT_EQ(rep.outliers_rejected, 0u);
  EXPECT_DOUBLE_EQ(shift.cell_bandwidth[0], 500.0);
}

TEST(Sanitizer, EwmaReferenceTracksDrift) {
  SanitizerOptions so;
  so.outlier_band = 0.5;
  so.ewma_alpha = 0.5;
  TelemetrySanitizer san(so, 1, 0);
  auto first = obs({100.0}, {});
  san.apply(first);  // seeds the EWMA
  // 20% steps stay inside the band against the moving reference.
  double v = 100.0;
  for (int i = 0; i < 3; ++i) {
    v *= 1.2;
    auto o = obs({v}, {});
    EXPECT_FALSE(san.apply(o).any()) << "step " << i;
    EXPECT_DOUBLE_EQ(o.cell_bandwidth[0], v);
  }
  // A 10x jump against the tracked reference is rejected.
  auto spike = obs({v * 10.0}, {});
  EXPECT_EQ(san.apply(spike).outliers_rejected, 1u);
}

TEST(Sanitizer, ConfirmWindowsDebounceLivenessFlips) {
  SanitizerOptions so;
  so.confirm_windows = 2;
  TelemetrySanitizer san(so, 0, 1);
  auto blip = obs({}, {false});
  const auto rep = san.apply(blip);
  EXPECT_EQ(rep.flips_deferred, 1u);
  EXPECT_TRUE(blip.server_alive[0]) << "one reading is not yet believed";
  EXPECT_TRUE(san.believed_alive()[0]);

  auto confirm = obs({}, {false});
  EXPECT_FALSE(san.apply(confirm).any());
  EXPECT_FALSE(confirm.server_alive[0]) << "second consecutive reading flips";
  EXPECT_FALSE(san.believed_alive()[0]);
}

TEST(Sanitizer, ContradictedFlipStreakResets) {
  SanitizerOptions so;
  so.confirm_windows = 2;
  TelemetrySanitizer san(so, 0, 1);
  auto down = obs({}, {false});
  san.apply(down);
  auto up = obs({}, {true});  // contradiction: streak resets
  EXPECT_FALSE(san.apply(up).any());
  auto down2 = obs({}, {false});
  EXPECT_EQ(san.apply(down2).flips_deferred, 1u);
  EXPECT_TRUE(down2.server_alive[0]) << "streak restarted from zero";
}

TEST(Sanitizer, FlappingServerFreezesUntilStable) {
  SanitizerOptions so;
  so.flap_threshold = 2;
  so.flap_window = 10;
  so.flap_hold = 3;
  TelemetrySanitizer san(so, 0, 1);

  auto down = obs({}, {false});
  EXPECT_FALSE(san.apply(down).any());
  EXPECT_FALSE(san.believed_alive()[0]);

  // Second transition inside the window trips the flap detector: the belief
  // freezes at "down" instead of following the blink back up.
  auto up = obs({}, {true});
  EXPECT_EQ(san.apply(up).flaps_suppressed, 1u);
  EXPECT_FALSE(up.server_alive[0]);

  // Readings that keep blinking while frozen are suppressed, not believed;
  // alternation resets the stability streak so nothing unfreezes.
  for (const bool raw : {true, false, true, false}) {
    auto blink = obs({}, {raw});
    const auto rep = san.apply(blink);
    EXPECT_EQ(rep.flaps_suppressed, raw ? 1u : 0u);
    EXPECT_FALSE(blink.server_alive[0]);
  }

  // flap_hold consecutive *self-consistent* readings unfreeze and are
  // adopted — here they happen to agree with the frozen belief.
  for (int i = 0; i < 3; ++i) {
    auto agree = obs({}, {false});
    EXPECT_FALSE(san.apply(agree).any());
  }
  // Unfrozen: a (single) flip is believed again.
  auto recover = obs({}, {true});
  EXPECT_FALSE(san.apply(recover).any());
  EXPECT_TRUE(san.believed_alive()[0]);
}

TEST(Sanitizer, FrozenWrongBeliefRecoversFromStableTruth) {
  SanitizerOptions so;
  so.flap_threshold = 3;
  so.flap_window = 10;
  so.flap_hold = 3;
  TelemetrySanitizer san(so, 0, 1);

  // Blink down-up-down: the third transition trips the detector mid-blink,
  // freezing the belief at "up" — while the server is actually down.
  for (const bool raw : {false, true, false}) {
    auto o = obs({}, {raw});
    san.apply(o);
  }
  EXPECT_TRUE(san.believed_alive()[0]);

  // A real outage now speaks with one voice. The stable "down" stream must
  // unfreeze the belief and be adopted — not be suppressed forever for
  // disagreeing with the frozen state.
  for (int i = 0; i < 3; ++i) {
    auto o = obs({}, {false});
    san.apply(o);
  }
  EXPECT_FALSE(san.believed_alive()[0]);
  auto confirm = obs({}, {false});
  EXPECT_FALSE(san.apply(confirm).any());
  EXPECT_FALSE(confirm.server_alive[0]);
}

TEST(Sanitizer, DroppedLivenessKeepsBelief) {
  TelemetrySanitizer san(SanitizerOptions{}, 0, 1);
  auto down = obs({}, {false});
  san.apply(down);
  auto dropped = obs({}, {true});
  dropped.alive_fresh = {false};
  EXPECT_FALSE(san.apply(dropped).any());
  EXPECT_FALSE(dropped.server_alive[0]) << "a drop is not evidence of life";
}

TEST(Sanitizer, GroundTruthBypassesTrustPolicy) {
  SanitizerOptions so;
  so.outlier_band = 0.2;
  so.median_window = 1;
  so.confirm_windows = 3;
  so.flap_threshold = 2;
  TelemetrySanitizer san(so, 1, 1);

  // No freshness/age metadata: nothing measured these values through a
  // channel that can lie, so even hardened options believe them as-is —
  // a 10x bandwidth shift and a liveness flip land on the first reading.
  Observation o;
  o.cell_bandwidth = {100.0};
  o.server_alive = {true};
  EXPECT_FALSE(san.apply(o).any());

  Observation shifted;
  shifted.cell_bandwidth = {1000.0};
  shifted.server_alive = {false};
  EXPECT_FALSE(san.apply(shifted).any());
  EXPECT_DOUBLE_EQ(shifted.cell_bandwidth[0], 1000.0);
  EXPECT_FALSE(shifted.server_alive[0]);
  EXPECT_FALSE(san.believed_alive()[0]);
}

TEST(Sanitizer, RequiresFullCoverage) {
  TelemetrySanitizer san(SanitizerOptions{}, 2, 1);
  auto short_obs = obs({1.0}, {true});
  EXPECT_THROW(san.apply(short_obs), ContractViolation);
  auto extra_servers = obs({1.0, 1.0}, {true, true});
  EXPECT_THROW(san.apply(extra_servers), ContractViolation);
}

TEST(Sanitizer, RejectsNonsenseOptions) {
  SanitizerOptions bad;
  bad.max_age = 0.0;
  EXPECT_THROW(TelemetrySanitizer(bad, 1, 1), ContractViolation);
  bad = SanitizerOptions{};
  bad.confirm_windows = 0;
  EXPECT_THROW(TelemetrySanitizer(bad, 1, 1), ContractViolation);
  bad = SanitizerOptions{};
  bad.ewma_alpha = 1.5;
  EXPECT_THROW(TelemetrySanitizer(bad, 1, 1), ContractViolation);
}

TEST(SanitizeReportTest, SummaryIsOneAuditLine) {
  SanitizeReport rep;
  rep.stale_held = 1;
  rep.outliers_rejected = 2;
  rep.flaps_suppressed = 3;
  EXPECT_TRUE(rep.any());
  EXPECT_EQ(rep.summary(), "stale=1 outlier=2 deferred=0 flap=3");
  EXPECT_FALSE(SanitizeReport{}.any());
}

// --- validate_plan -------------------------------------------------------

JointOptions fast_joint() {
  JointOptions jo;
  jo.max_iterations = 2;
  jo.dp_coverage_bins = 40;
  jo.theta_grid = {0.0, 0.3, 0.6};
  return jo;
}

struct ValidateFixture : ::testing::Test {
  ValidateFixture()
      : instance(clusters::small_lab()),
        decision(JointOptimizer(fast_joint()).optimize(instance)) {}
  ProblemInstance instance;
  Decision decision;
};

TEST_F(ValidateFixture, AcceptsTheSolverOutput) {
  const auto v = validate_plan(instance, decision, {});
  EXPECT_TRUE(v.ok) << v.reason;
  // Explicit all-alive vector is equivalent to the empty default.
  EXPECT_TRUE(validate_plan(instance, decision, {true, true}).ok);
}

TEST_F(ValidateFixture, RejectsArityMismatch) {
  decision.per_device.pop_back();
  const auto v = validate_plan(instance, decision, {});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("devices"), std::string::npos);
}

TEST_F(ValidateFixture, RejectsUnknownAndDeadServers) {
  Decision unknown = decision;
  bool mutated = false;
  for (auto& dd : unknown.per_device) {
    if (dd.plan.device_only) continue;
    dd.server = 9;
    mutated = true;
    break;
  }
  ASSERT_TRUE(mutated) << "small_lab joint plan should offload something";
  EXPECT_FALSE(validate_plan(instance, unknown, {}).ok);

  // Find a server actually used and declare it dead.
  int used = -1;
  for (const auto& dd : decision.per_device) {
    if (!dd.plan.device_only) {
      used = dd.server;
      break;
    }
  }
  ASSERT_GE(used, 0);
  std::vector<bool> alive(instance.topology().servers().size(), true);
  alive[static_cast<std::size_t>(used)] = false;
  const auto v = validate_plan(instance, decision, alive);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("dead server"), std::string::npos);
}

TEST_F(ValidateFixture, RejectsBadShareAndBandwidth) {
  Decision bad = decision;
  for (auto& dd : bad.per_device) {
    if (dd.plan.device_only) continue;
    dd.compute_share = 1.5;
    break;
  }
  EXPECT_FALSE(validate_plan(instance, bad, {}).ok);

  bad = decision;
  for (auto& dd : bad.per_device) {
    if (dd.plan.device_only) continue;
    dd.bandwidth = 0.0;
    break;
  }
  EXPECT_FALSE(validate_plan(instance, bad, {}).ok);
}

TEST_F(ValidateFixture, RejectsOversubscribedServerAndCell) {
  Decision bad = decision;
  // Pile every offloading device onto one server with a large share each:
  // the per-server sum check must fire even though each share is legal.
  std::size_t offloaders = 0;
  for (auto& dd : bad.per_device) {
    if (dd.plan.device_only) continue;
    dd.server = 0;
    dd.compute_share = 0.9;
    ++offloaders;
  }
  if (offloaders >= 2) {
    const auto v = validate_plan(instance, bad, {});
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("sum"), std::string::npos);
  }

  bad = decision;
  const double cap = instance.topology().cell(0).bandwidth;
  for (auto& dd : bad.per_device) {
    if (dd.plan.device_only) continue;
    dd.bandwidth = cap * 2.0;
    break;
  }
  const auto v = validate_plan(instance, bad, {});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("capacity"), std::string::npos);
}

TEST_F(ValidateFixture, AccuracyFloorIsOptIn) {
  Decision bad = decision;
  ASSERT_FALSE(bad.predicted.empty());
  for (auto& p : bad.predicted) p.expected_accuracy = 0.0;
  // Default: accuracy is advisory (the ladder lowers floors on purpose).
  EXPECT_TRUE(validate_plan(instance, bad, {}).ok);
  PlanValidationOptions strict;
  strict.check_accuracy = true;
  const auto v = validate_plan(instance, bad, {}, strict);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("accuracy"), std::string::npos);
}

TEST_F(ValidateFixture, DeviceOnlyPlansAreAlwaysRoutable) {
  for (auto& dd : decision.per_device) {
    dd.plan.device_only = true;
    dd.server = -1;
    dd.compute_share = 0.0;
    dd.bandwidth = 0.0;
  }
  // No liveness vector can strand a device-only plan — even all-dead.
  EXPECT_TRUE(validate_plan(instance, decision, {false, false}).ok);
}

}  // namespace
}  // namespace scalpel
