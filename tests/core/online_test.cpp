#include "core/online.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "edge/builders.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

OnlineController::Options fast_opts(double hysteresis = 0.25) {
  OnlineController::Options o;
  o.hysteresis = hysteresis;
  o.joint.max_iterations = 2;
  o.joint.dp_coverage_bins = 40;
  o.joint.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

TEST(Online, SolvesLazilyOnFirstAccess) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  EXPECT_EQ(ctl.reoptimizations(), 0u);
  const auto& d = ctl.decision();
  EXPECT_EQ(d.per_device.size(), 4u);
  EXPECT_EQ(ctl.reoptimizations(), 0u);  // initial solve is not a re-opt
}

TEST(Online, SmallDriftIgnored) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.25));
  ctl.decision();
  const double base = clusters::small_lab().cell(0).bandwidth;
  EXPECT_FALSE(ctl.observe({base * 1.1}));
  EXPECT_FALSE(ctl.observe({base * 0.9}));
  EXPECT_EQ(ctl.reoptimizations(), 0u);
}

TEST(Online, LargeDriftTriggersReoptimization) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.25));
  ctl.decision();
  const double base = clusters::small_lab().cell(0).bandwidth;
  EXPECT_TRUE(ctl.observe({base * 0.4}));
  EXPECT_EQ(ctl.reoptimizations(), 1u);
  // The instance now reflects the observed bandwidth.
  EXPECT_NEAR(ctl.instance().topology().cell(0).bandwidth, base * 0.4, 1e-6);
  // Observing the same value again is within hysteresis of the new solve.
  EXPECT_FALSE(ctl.observe({base * 0.4}));
}

TEST(Online, DecisionAdaptsToBandwidthCollapse) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.1));
  const auto before = ctl.decision();
  double offload_before = 0.0;
  for (const auto& p : before.predicted) offload_before += p.offload_prob;
  // Collapse the uplink to 2 Mbps: offloading must shrink.
  ctl.observe({mbps(2.0)});
  const auto after = ctl.decision();
  double offload_after = 0.0;
  for (const auto& p : after.predicted) offload_after += p.offload_prob;
  EXPECT_LT(offload_after, offload_before);
}

TEST(Online, ValidatesObservationArity) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  EXPECT_THROW(ctl.observe({1.0, 2.0}), ContractViolation);
  EXPECT_THROW(ctl.observe({0.0}), ContractViolation);
}

TEST(Online, ValidatesLivenessArity) {
  const auto topo = clusters::small_lab();  // 1 cell, 2 servers
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_THROW(ctl.observe(bw, {true}), ContractViolation);
  EXPECT_THROW(ctl.observe(bw, {true, true, true}), ContractViolation);
  EXPECT_NO_THROW(ctl.observe(bw, {true, true}));
}

TEST(Online, DeadServerExcludedFromAssignment) {
  // small_lab has 2 servers; kill server 0 and every offloaded device must
  // land on server 1, with a failover recorded.
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  ctl.decision();
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, true}));
  EXPECT_EQ(ctl.failovers(), 1u);
  const auto& d = ctl.decision();
  bool any_offload = false;
  for (const auto& dd : d.per_device) {
    if (dd.plan.device_only) continue;
    any_offload = true;
    EXPECT_EQ(dd.server, 1);
  }
  // The surviving T4 still beats pure on-device execution for this lab.
  EXPECT_TRUE(any_offload);
}

TEST(Online, AllServersDeadFallsBackToDeviceOnly) {
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, false}));
  const auto& d = ctl.decision();
  EXPECT_EQ(d.scheme, "device_fallback");
  for (const auto& dd : d.per_device) {
    EXPECT_TRUE(dd.plan.device_only);
  }
  // Degraded, never crashed: the decision is still fully evaluated.
  EXPECT_EQ(d.predicted.size(), d.per_device.size());
}

TEST(Online, RecoveryRestoresOffloading) {
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  ASSERT_TRUE(ctl.observe(bw, {false, false}));
  for (const auto& dd : ctl.decision().per_device) {
    ASSERT_TRUE(dd.plan.device_only);
  }
  // Both servers come back: the controller must re-solve and offload again.
  EXPECT_TRUE(ctl.observe(bw, {true, true}));
  bool any_offload = false;
  for (const auto& dd : ctl.decision().per_device) {
    if (!dd.plan.device_only) any_offload = true;
  }
  EXPECT_TRUE(any_offload);
  EXPECT_GE(ctl.failovers(), 2u);
}

OnlineController::Options overload_opts() {
  auto o = fast_opts();
  o.overload.ladder.rungs = 3;
  o.overload.ladder.accuracy_step = 0.1;
  o.overload.trigger_windows = 2;
  o.overload.recovery_windows = 2;
  return o;
}

std::vector<double> lab_bw() {
  return {clusters::small_lab().cell(0).bandwidth};
}

TEST(Online, LadderIsMonotone) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(lab_bw(), {true, true}, zeros, zeros);
  const auto& ladder = ctl.ladder();
  ASSERT_GE(ladder.size(), 2u);
  EXPECT_EQ(ctl.current_rung(), 0u);
  for (std::size_t k = 1; k < ladder.size(); ++k) {
    EXPECT_LE(ladder[k].predicted_accuracy,
              ladder[k - 1].predicted_accuracy + 1e-9);
    ASSERT_EQ(ladder[k].sustainable.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(ladder[k].sustainable[i],
                ladder[k - 1].sustainable[i] - 1e-9);
    }
  }
  // Lower rungs buy real capacity somewhere, not just lower accuracy.
  double gain = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    gain = std::max(gain, ladder.back().sustainable[i] -
                              ladder.front().sustainable[i]);
  }
  EXPECT_GT(gain, 0.0);
}

TEST(Online, SustainedOverloadWalksDownLadderThenThrottles) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> flood(4, 1e4);
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(bw, {true, true}, zeros, zeros);
  const std::size_t bottom = ctl.ladder().size() - 1;

  // Two overloaded windows per step-down, then two more to engage the gate.
  for (std::size_t w = 0; w < 2 * (bottom + 1); ++w) {
    ctl.observe(bw, {true, true}, flood, zeros);
  }
  EXPECT_EQ(ctl.current_rung(), bottom);
  EXPECT_EQ(ctl.degradations(), bottom);
  EXPECT_EQ(ctl.throttle_activations(), 1u);
  ASSERT_EQ(ctl.admit_fraction().size(), 4u);
  for (const double f : ctl.admit_fraction()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_LT(f, 0.5);  // flood is far beyond any rung's capacity
  }
  // The active decision runs the bottom rung's plans.
  EXPECT_EQ(ctl.decision().per_device.size(), 4u);
}

TEST(Online, RecoveryUnwindsGateFirstThenRungs) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> flood(4, 1e4);
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(bw, {true, true}, zeros, zeros);
  const std::size_t bottom = ctl.ladder().size() - 1;
  for (std::size_t w = 0; w < 2 * (bottom + 1); ++w) {
    ctl.observe(bw, {true, true}, flood, zeros);
  }
  ASSERT_FALSE(ctl.admit_fraction().empty());

  // Calm traffic: the gate clears before any rung climbs, then the ladder
  // unwinds one rung per recovery streak until the base plan is back.
  ctl.observe(bw, {true, true}, zeros, zeros);
  ctl.observe(bw, {true, true}, zeros, zeros);
  EXPECT_TRUE(ctl.admit_fraction().empty());
  EXPECT_EQ(ctl.current_rung(), bottom);
  for (std::size_t w = 0; w < 2 * bottom; ++w) {
    ctl.observe(bw, {true, true}, zeros, zeros);
  }
  EXPECT_EQ(ctl.current_rung(), 0u);
  EXPECT_EQ(ctl.recoveries(), bottom);
}

TEST(Online, BriefSpikesDoNotDegrade) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> flood(4, 1e4);
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(bw, {true, true}, zeros, zeros);
  // Alternating spike/calm never reaches trigger_windows consecutive hits.
  for (int w = 0; w < 6; ++w) {
    ctl.observe(bw, {true, true}, flood, zeros);
    ctl.observe(bw, {true, true}, zeros, zeros);
  }
  EXPECT_EQ(ctl.current_rung(), 0u);
  EXPECT_EQ(ctl.degradations(), 0u);
}

TEST(Online, QueueDepthAloneTriggersDegradation) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> zeros(4, 0.0);
  std::vector<double> deep(4, 0.0);
  deep[0] = 100.0;  // stale rate estimate, but the backlog is undeniable
  ctl.observe(bw, {true, true}, zeros, zeros);
  ctl.observe(bw, {true, true}, zeros, deep);
  ctl.observe(bw, {true, true}, zeros, deep);
  EXPECT_GE(ctl.degradations(), 1u);
}

TEST(Online, ValidatesOverloadObservationArity) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  EXPECT_THROW(ctl.observe(bw, {true, true}, {1.0}, {0.0, 0.0, 0.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(ctl.observe(bw, {true, true}, {1.0, 1.0, 1.0, 1.0}, {0.0}),
               ContractViolation);
}

TEST(Online, SustainableRatesSurviveFailover) {
  // Satellite of the overload work: admission control must stay coherent on
  // the liveness-reduced topology after a crash failover.
  OnlineController ctl(clusters::small_lab(), fast_opts());
  ctl.decision();
  ASSERT_TRUE(ctl.observe(lab_bw(), {false, true}));
  const auto& d = ctl.decision();
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const double rate = admission::max_sustainable_rate(
        ctl.instance(), static_cast<DeviceId>(i), d.per_device[i], 0.95);
    EXPECT_GT(rate, 0.0);
  }
  const auto plan =
      admission::propose_throttle_fixed_point(ctl.instance(), d, 0.9);
  for (const double r : plan.admitted_rate) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
  EXPECT_GT(plan.admitted_fraction, 0.0);
  EXPECT_LE(plan.admitted_fraction, 1.0);
}

TEST(Online, AllDeadFallbackKeepsAdmissionFinite) {
  // Even the device-only fallback must quote finite sustainable rates (no
  // division blow-ups on the degenerate no-server deployment).
  OnlineController ctl(clusters::small_lab(), fast_opts());
  ASSERT_TRUE(ctl.observe(lab_bw(), {false, false}));
  const auto& d = ctl.decision();
  ASSERT_EQ(d.scheme, "device_fallback");
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const double rate = admission::max_sustainable_rate(
        ctl.instance(), static_cast<DeviceId>(i), d.per_device[i], 0.95);
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GT(rate, 0.0);
  }
  const auto plan =
      admission::propose_throttle_fixed_point(ctl.instance(), d, 0.9);
  EXPECT_TRUE(plan.throttled);  // small_lab overloads some device on-device
  for (const double r : plan.admitted_rate) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(Online, UnchangedLivenessDoesNotResolve) {
  // Liveness re-solves are edge-triggered: repeating the same alive vector
  // (with steady bandwidth) must not burn another optimization.
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, true}));
  const auto n = ctl.reoptimizations();
  EXPECT_FALSE(ctl.observe(bw, {false, true}));
  EXPECT_EQ(ctl.reoptimizations(), n);
}

}  // namespace
}  // namespace scalpel
