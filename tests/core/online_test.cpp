#include "core/online.hpp"

#include <gtest/gtest.h>

#include "edge/builders.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

OnlineController::Options fast_opts(double hysteresis = 0.25) {
  OnlineController::Options o;
  o.hysteresis = hysteresis;
  o.joint.max_iterations = 2;
  o.joint.dp_coverage_bins = 40;
  o.joint.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

TEST(Online, SolvesLazilyOnFirstAccess) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  EXPECT_EQ(ctl.reoptimizations(), 0u);
  const auto& d = ctl.decision();
  EXPECT_EQ(d.per_device.size(), 4u);
  EXPECT_EQ(ctl.reoptimizations(), 0u);  // initial solve is not a re-opt
}

TEST(Online, SmallDriftIgnored) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.25));
  ctl.decision();
  const double base = clusters::small_lab().cell(0).bandwidth;
  EXPECT_FALSE(ctl.observe({base * 1.1}));
  EXPECT_FALSE(ctl.observe({base * 0.9}));
  EXPECT_EQ(ctl.reoptimizations(), 0u);
}

TEST(Online, LargeDriftTriggersReoptimization) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.25));
  ctl.decision();
  const double base = clusters::small_lab().cell(0).bandwidth;
  EXPECT_TRUE(ctl.observe({base * 0.4}));
  EXPECT_EQ(ctl.reoptimizations(), 1u);
  // The instance now reflects the observed bandwidth.
  EXPECT_NEAR(ctl.instance().topology().cell(0).bandwidth, base * 0.4, 1e-6);
  // Observing the same value again is within hysteresis of the new solve.
  EXPECT_FALSE(ctl.observe({base * 0.4}));
}

TEST(Online, DecisionAdaptsToBandwidthCollapse) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.1));
  const auto before = ctl.decision();
  double offload_before = 0.0;
  for (const auto& p : before.predicted) offload_before += p.offload_prob;
  // Collapse the uplink to 2 Mbps: offloading must shrink.
  ctl.observe({mbps(2.0)});
  const auto after = ctl.decision();
  double offload_after = 0.0;
  for (const auto& p : after.predicted) offload_after += p.offload_prob;
  EXPECT_LT(offload_after, offload_before);
}

TEST(Online, ValidatesObservationArity) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  EXPECT_THROW(ctl.observe({1.0, 2.0}), ContractViolation);
  EXPECT_THROW(ctl.observe({0.0}), ContractViolation);
}

TEST(Online, ValidatesLivenessArity) {
  const auto topo = clusters::small_lab();  // 1 cell, 2 servers
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_THROW(ctl.observe(bw, {true}), ContractViolation);
  EXPECT_THROW(ctl.observe(bw, {true, true, true}), ContractViolation);
  EXPECT_NO_THROW(ctl.observe(bw, {true, true}));
}

TEST(Online, DeadServerExcludedFromAssignment) {
  // small_lab has 2 servers; kill server 0 and every offloaded device must
  // land on server 1, with a failover recorded.
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  ctl.decision();
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, true}));
  EXPECT_EQ(ctl.failovers(), 1u);
  const auto& d = ctl.decision();
  bool any_offload = false;
  for (const auto& dd : d.per_device) {
    if (dd.plan.device_only) continue;
    any_offload = true;
    EXPECT_EQ(dd.server, 1);
  }
  // The surviving T4 still beats pure on-device execution for this lab.
  EXPECT_TRUE(any_offload);
}

TEST(Online, AllServersDeadFallsBackToDeviceOnly) {
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, false}));
  const auto& d = ctl.decision();
  EXPECT_EQ(d.scheme, "device_fallback");
  for (const auto& dd : d.per_device) {
    EXPECT_TRUE(dd.plan.device_only);
  }
  // Degraded, never crashed: the decision is still fully evaluated.
  EXPECT_EQ(d.predicted.size(), d.per_device.size());
}

TEST(Online, RecoveryRestoresOffloading) {
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  ASSERT_TRUE(ctl.observe(bw, {false, false}));
  for (const auto& dd : ctl.decision().per_device) {
    ASSERT_TRUE(dd.plan.device_only);
  }
  // Both servers come back: the controller must re-solve and offload again.
  EXPECT_TRUE(ctl.observe(bw, {true, true}));
  bool any_offload = false;
  for (const auto& dd : ctl.decision().per_device) {
    if (!dd.plan.device_only) any_offload = true;
  }
  EXPECT_TRUE(any_offload);
  EXPECT_GE(ctl.failovers(), 2u);
}

TEST(Online, UnchangedLivenessDoesNotResolve) {
  // Liveness re-solves are edge-triggered: repeating the same alive vector
  // (with steady bandwidth) must not burn another optimization.
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, true}));
  const auto n = ctl.reoptimizations();
  EXPECT_FALSE(ctl.observe(bw, {false, true}));
  EXPECT_EQ(ctl.reoptimizations(), n);
}

}  // namespace
}  // namespace scalpel
