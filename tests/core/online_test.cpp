#include "core/online.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "edge/builders.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

OnlineController::Options fast_opts(double hysteresis = 0.25) {
  OnlineController::Options o;
  o.hysteresis = hysteresis;
  o.joint.max_iterations = 2;
  o.joint.dp_coverage_bins = 40;
  o.joint.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

TEST(Online, SolvesLazilyOnFirstAccess) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  EXPECT_EQ(ctl.reoptimizations(), 0u);
  const auto& d = ctl.decision();
  EXPECT_EQ(d.per_device.size(), 4u);
  EXPECT_EQ(ctl.reoptimizations(), 0u);  // initial solve is not a re-opt
}

TEST(Online, SmallDriftIgnored) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.25));
  ctl.decision();
  const double base = clusters::small_lab().cell(0).bandwidth;
  EXPECT_FALSE(ctl.observe({base * 1.1}));
  EXPECT_FALSE(ctl.observe({base * 0.9}));
  EXPECT_EQ(ctl.reoptimizations(), 0u);
}

TEST(Online, LargeDriftTriggersReoptimization) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.25));
  ctl.decision();
  const double base = clusters::small_lab().cell(0).bandwidth;
  EXPECT_TRUE(ctl.observe({base * 0.4}));
  EXPECT_EQ(ctl.reoptimizations(), 1u);
  // The instance now reflects the observed bandwidth.
  EXPECT_NEAR(ctl.instance().topology().cell(0).bandwidth, base * 0.4, 1e-6);
  // Observing the same value again is within hysteresis of the new solve.
  EXPECT_FALSE(ctl.observe({base * 0.4}));
}

TEST(Online, DecisionAdaptsToBandwidthCollapse) {
  OnlineController ctl(clusters::small_lab(), fast_opts(0.1));
  const auto before = ctl.decision();
  double offload_before = 0.0;
  for (const auto& p : before.predicted) offload_before += p.offload_prob;
  // Collapse the uplink to 2 Mbps: offloading must shrink.
  ctl.observe({mbps(2.0)});
  const auto after = ctl.decision();
  double offload_after = 0.0;
  for (const auto& p : after.predicted) offload_after += p.offload_prob;
  EXPECT_LT(offload_after, offload_before);
}

TEST(Online, ValidatesObservationArity) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  EXPECT_THROW(ctl.observe({1.0, 2.0}), ContractViolation);
  EXPECT_THROW(ctl.observe({0.0}), ContractViolation);
}

TEST(Online, ValidatesLivenessArity) {
  const auto topo = clusters::small_lab();  // 1 cell, 2 servers
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_THROW(ctl.observe(bw, {true}), ContractViolation);
  EXPECT_THROW(ctl.observe(bw, {true, true, true}), ContractViolation);
  EXPECT_NO_THROW(ctl.observe(bw, {true, true}));
}

TEST(Online, DeadServerExcludedFromAssignment) {
  // small_lab has 2 servers; kill server 0 and every offloaded device must
  // land on server 1, with a failover recorded.
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  ctl.decision();
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, true}));
  EXPECT_EQ(ctl.failovers(), 1u);
  const auto& d = ctl.decision();
  bool any_offload = false;
  for (const auto& dd : d.per_device) {
    if (dd.plan.device_only) continue;
    any_offload = true;
    EXPECT_EQ(dd.server, 1);
  }
  // The surviving T4 still beats pure on-device execution for this lab.
  EXPECT_TRUE(any_offload);
}

TEST(Online, AllServersDeadFallsBackToDeviceOnly) {
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, false}));
  const auto& d = ctl.decision();
  EXPECT_EQ(d.scheme, "device_fallback");
  for (const auto& dd : d.per_device) {
    EXPECT_TRUE(dd.plan.device_only);
  }
  // Degraded, never crashed: the decision is still fully evaluated.
  EXPECT_EQ(d.predicted.size(), d.per_device.size());
}

TEST(Online, RecoveryRestoresOffloading) {
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  ASSERT_TRUE(ctl.observe(bw, {false, false}));
  for (const auto& dd : ctl.decision().per_device) {
    ASSERT_TRUE(dd.plan.device_only);
  }
  // Both servers come back: the controller must re-solve and offload again.
  EXPECT_TRUE(ctl.observe(bw, {true, true}));
  bool any_offload = false;
  for (const auto& dd : ctl.decision().per_device) {
    if (!dd.plan.device_only) any_offload = true;
  }
  EXPECT_TRUE(any_offload);
  EXPECT_GE(ctl.failovers(), 2u);
}

OnlineController::Options overload_opts() {
  auto o = fast_opts();
  o.overload.ladder.rungs = 3;
  o.overload.ladder.accuracy_step = 0.1;
  o.overload.trigger_windows = 2;
  o.overload.recovery_windows = 2;
  return o;
}

std::vector<double> lab_bw() {
  return {clusters::small_lab().cell(0).bandwidth};
}

TEST(Online, LadderIsMonotone) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(lab_bw(), {true, true}, zeros, zeros);
  const auto& ladder = ctl.ladder();
  ASSERT_GE(ladder.size(), 2u);
  EXPECT_EQ(ctl.current_rung(), 0u);
  for (std::size_t k = 1; k < ladder.size(); ++k) {
    EXPECT_LE(ladder[k].predicted_accuracy,
              ladder[k - 1].predicted_accuracy + 1e-9);
    ASSERT_EQ(ladder[k].sustainable.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(ladder[k].sustainable[i],
                ladder[k - 1].sustainable[i] - 1e-9);
    }
  }
  // Lower rungs buy real capacity somewhere, not just lower accuracy.
  double gain = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    gain = std::max(gain, ladder.back().sustainable[i] -
                              ladder.front().sustainable[i]);
  }
  EXPECT_GT(gain, 0.0);
}

TEST(Online, SustainedOverloadWalksDownLadderThenThrottles) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> flood(4, 1e4);
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(bw, {true, true}, zeros, zeros);
  const std::size_t bottom = ctl.ladder().size() - 1;

  // Two overloaded windows per step-down, then two more to engage the gate.
  for (std::size_t w = 0; w < 2 * (bottom + 1); ++w) {
    ctl.observe(bw, {true, true}, flood, zeros);
  }
  EXPECT_EQ(ctl.current_rung(), bottom);
  EXPECT_EQ(ctl.degradations(), bottom);
  EXPECT_EQ(ctl.throttle_activations(), 1u);
  ASSERT_EQ(ctl.admit_fraction().size(), 4u);
  for (const double f : ctl.admit_fraction()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_LT(f, 0.5);  // flood is far beyond any rung's capacity
  }
  // The active decision runs the bottom rung's plans.
  EXPECT_EQ(ctl.decision().per_device.size(), 4u);
}

TEST(Online, RecoveryUnwindsGateFirstThenRungs) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> flood(4, 1e4);
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(bw, {true, true}, zeros, zeros);
  const std::size_t bottom = ctl.ladder().size() - 1;
  for (std::size_t w = 0; w < 2 * (bottom + 1); ++w) {
    ctl.observe(bw, {true, true}, flood, zeros);
  }
  ASSERT_FALSE(ctl.admit_fraction().empty());

  // Calm traffic: the gate clears before any rung climbs, then the ladder
  // unwinds one rung per recovery streak until the base plan is back.
  ctl.observe(bw, {true, true}, zeros, zeros);
  ctl.observe(bw, {true, true}, zeros, zeros);
  EXPECT_TRUE(ctl.admit_fraction().empty());
  EXPECT_EQ(ctl.current_rung(), bottom);
  for (std::size_t w = 0; w < 2 * bottom; ++w) {
    ctl.observe(bw, {true, true}, zeros, zeros);
  }
  EXPECT_EQ(ctl.current_rung(), 0u);
  EXPECT_EQ(ctl.recoveries(), bottom);
}

TEST(Online, BriefSpikesDoNotDegrade) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> flood(4, 1e4);
  const std::vector<double> zeros(4, 0.0);
  ctl.observe(bw, {true, true}, zeros, zeros);
  // Alternating spike/calm never reaches trigger_windows consecutive hits.
  for (int w = 0; w < 6; ++w) {
    ctl.observe(bw, {true, true}, flood, zeros);
    ctl.observe(bw, {true, true}, zeros, zeros);
  }
  EXPECT_EQ(ctl.current_rung(), 0u);
  EXPECT_EQ(ctl.degradations(), 0u);
}

TEST(Online, QueueDepthAloneTriggersDegradation) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  const std::vector<double> zeros(4, 0.0);
  std::vector<double> deep(4, 0.0);
  deep[0] = 100.0;  // stale rate estimate, but the backlog is undeniable
  ctl.observe(bw, {true, true}, zeros, zeros);
  ctl.observe(bw, {true, true}, zeros, deep);
  ctl.observe(bw, {true, true}, zeros, deep);
  EXPECT_GE(ctl.degradations(), 1u);
}

TEST(Online, ValidatesOverloadObservationArity) {
  OnlineController ctl(clusters::small_lab(), overload_opts());
  const std::vector<double> bw = lab_bw();
  EXPECT_THROW(ctl.observe(bw, {true, true}, {1.0}, {0.0, 0.0, 0.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(ctl.observe(bw, {true, true}, {1.0, 1.0, 1.0, 1.0}, {0.0}),
               ContractViolation);
}

TEST(Online, SustainableRatesSurviveFailover) {
  // Satellite of the overload work: admission control must stay coherent on
  // the liveness-reduced topology after a crash failover.
  OnlineController ctl(clusters::small_lab(), fast_opts());
  ctl.decision();
  ASSERT_TRUE(ctl.observe(lab_bw(), {false, true}));
  const auto& d = ctl.decision();
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const double rate = admission::max_sustainable_rate(
        ctl.instance(), static_cast<DeviceId>(i), d.per_device[i], 0.95);
    EXPECT_GT(rate, 0.0);
  }
  const auto plan =
      admission::propose_throttle_fixed_point(ctl.instance(), d, 0.9);
  for (const double r : plan.admitted_rate) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
  EXPECT_GT(plan.admitted_fraction, 0.0);
  EXPECT_LE(plan.admitted_fraction, 1.0);
}

TEST(Online, AllDeadFallbackKeepsAdmissionFinite) {
  // Even the device-only fallback must quote finite sustainable rates (no
  // division blow-ups on the degenerate no-server deployment).
  OnlineController ctl(clusters::small_lab(), fast_opts());
  ASSERT_TRUE(ctl.observe(lab_bw(), {false, false}));
  const auto& d = ctl.decision();
  ASSERT_EQ(d.scheme, "device_fallback");
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const double rate = admission::max_sustainable_rate(
        ctl.instance(), static_cast<DeviceId>(i), d.per_device[i], 0.95);
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GT(rate, 0.0);
  }
  const auto plan =
      admission::propose_throttle_fixed_point(ctl.instance(), d, 0.9);
  EXPECT_TRUE(plan.throttled);  // small_lab overloads some device on-device
  for (const double r : plan.admitted_rate) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

// --- robustness: sanitizer wiring, solver watchdog, fallback chain -------

bool audit_has_cause(const DecisionAuditLog& log, AuditCause cause) {
  for (const auto& r : log.records()) {
    if (r.cause == cause) return true;
  }
  return false;
}

TEST(OnlineRobust, ThrowingSolverKeepsLastGoodPlan) {
  int calls = 0;
  auto o = fast_opts();
  o.solver = [&](const ProblemInstance& inst, const JointOptions& jo) {
    if (++calls > 1) throw std::runtime_error("solver exploded");
    return JointOptimizer(jo).optimize(inst);
  };
  OnlineController ctl(clusters::small_lab(), o);
  const Decision before = ctl.decision();
  ASSERT_EQ(calls, 1);

  // Bandwidth *rises* 50%: drift triggers a re-solve, the solver throws,
  // and the last-good plan (still valid under more capacity) survives.
  EXPECT_FALSE(ctl.observe({lab_bw()[0] * 1.5}));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(ctl.solver_timeouts(), 1u);
  EXPECT_EQ(ctl.fallbacks(), 1u);
  EXPECT_EQ(ctl.plans_rejected(), 0u);
  EXPECT_EQ(ctl.decision().scheme, before.scheme);
  EXPECT_TRUE(audit_has_cause(ctl.audit_log(), AuditCause::kSolverTimeout));
  EXPECT_TRUE(audit_has_cause(ctl.audit_log(), AuditCause::kFallbackApplied));
}

TEST(OnlineRobust, BudgetOverrunOnFirstSolveDegradesToDeviceOnly) {
  auto o = fast_opts();
  // Sub-nanosecond budget: every real solve overruns. With no last-good
  // plan to keep, the chain must land on device-only, never unroutable.
  o.robustness.solve_budget_seconds = 1e-12;
  OnlineController ctl(clusters::small_lab(), o);
  const auto& d = ctl.decision();
  EXPECT_EQ(d.scheme, "device_fallback");
  for (const auto& dd : d.per_device) EXPECT_TRUE(dd.plan.device_only);
  EXPECT_GE(ctl.solver_timeouts(), 1u);
  EXPECT_EQ(ctl.fallbacks(), 1u);
  EXPECT_TRUE(audit_has_cause(ctl.audit_log(), AuditCause::kSolverTimeout));
}

TEST(OnlineRobust, GarbagePlanIsRejectedBeforeAdoption) {
  int calls = 0;
  auto o = fast_opts();
  o.solver = [&](const ProblemInstance& inst, const JointOptions& jo) {
    Decision d = JointOptimizer(jo).optimize(inst);
    if (++calls > 1) {
      // Point an offloading device at a server that does not exist.
      for (auto& dd : d.per_device) {
        if (dd.plan.device_only) continue;
        dd.server = 99;
        break;
      }
    }
    return d;
  };
  OnlineController ctl(clusters::small_lab(), o);
  const Decision before = ctl.decision();
  EXPECT_FALSE(ctl.observe({lab_bw()[0] * 1.5}));
  EXPECT_EQ(ctl.plans_rejected(), 1u);
  EXPECT_EQ(ctl.solver_timeouts(), 0u);
  EXPECT_EQ(ctl.fallbacks(), 1u);
  EXPECT_EQ(ctl.decision().scheme, before.scheme);
  EXPECT_TRUE(audit_has_cause(ctl.audit_log(), AuditCause::kPlanRejected));
}

TEST(OnlineRobust, BackoffSkipsDriftResolvesButNotFailovers) {
  int calls = 0;
  auto o = fast_opts();
  o.robustness.solver_backoff_windows = 2;
  o.solver = [&](const ProblemInstance& inst, const JointOptions& jo) {
    if (++calls > 1) throw std::runtime_error("still broken");
    return JointOptimizer(jo).optimize(inst);
  };
  OnlineController ctl(clusters::small_lab(), o);
  ctl.decision();
  const double base = lab_bw()[0];

  EXPECT_FALSE(ctl.observe({base * 1.5}));  // trips the watchdog
  ASSERT_EQ(calls, 2);

  // Two backoff windows: persistent drift must not hammer the broken
  // solver (the bandwidth anchor stays stale, so drift keeps signaling).
  EXPECT_FALSE(ctl.observe({base * 2.0}));
  EXPECT_FALSE(ctl.observe({base * 2.0}));
  EXPECT_EQ(calls, 2) << "backoff windows must skip the solver entirely";

  EXPECT_FALSE(ctl.observe({base * 2.0}));  // backoff exhausted: retry
  EXPECT_EQ(calls, 3);

  // A liveness flip is a hard signal: it re-solves through any backoff.
  // Kill a server the current plan actually uses, so the (still throwing)
  // solver forces the fallback chain to repair the plan.
  int used = -1;
  for (const auto& dd : ctl.decision().per_device) {
    if (!dd.plan.device_only) {
      used = dd.server;
      break;
    }
  }
  ASSERT_GE(used, 0);
  std::vector<bool> alive = {true, true};
  alive[static_cast<std::size_t>(used)] = false;
  EXPECT_TRUE(ctl.observe({base * 2.0}, alive));
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(ctl.failovers(), 1u);
  // Nothing may still point at the dead server.
  for (const auto& dd : ctl.decision().per_device) {
    if (!dd.plan.device_only) {
      EXPECT_NE(dd.server, used);
    }
  }
}

TEST(OnlineRobust, BackoffResetsAfterAcceptedSolve) {
  // Regression: an accepted solve — here the liveness-flip failover — must
  // clear any pending backoff windows, not leave them smoldering to swallow
  // the next legitimate drift re-solve.
  int calls = 0;
  auto o = fast_opts();
  o.robustness.solver_backoff_windows = 3;
  o.solver = [&](const ProblemInstance& inst, const JointOptions& jo) {
    if (++calls == 2) throw std::runtime_error("one bad solve");
    return JointOptimizer(jo).optimize(inst);
  };
  OnlineController ctl(clusters::small_lab(), o);
  ctl.decision();
  const double base = lab_bw()[0];

  EXPECT_FALSE(ctl.observe({base * 1.5}));  // trips the watchdog, backoff = 3
  ASSERT_EQ(calls, 2);
  EXPECT_FALSE(ctl.observe({base * 2.0}));  // skipped, backoff decays to 2
  ASSERT_EQ(calls, 2);

  // A liveness flip punches through the backoff and succeeds...
  EXPECT_TRUE(ctl.observe({base * 2.0}, {true, false}));
  ASSERT_EQ(calls, 3);

  // ...so the next drift window must reach the solver immediately. If the
  // backoff survived the accepted solve, this observe would be skipped.
  EXPECT_TRUE(ctl.observe({base * 4.0}, {true, false}));
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(ctl.fallbacks(), 1u);
}

TEST(OnlineRobust, QuietWindowsDoNotConsumeBackoff) {
  // Backoff counts *drift* windows (windows that would have re-solved), not
  // wall-clock observations: a calm window leaves the budget untouched.
  int calls = 0;
  auto o = fast_opts();
  o.robustness.solver_backoff_windows = 1;
  o.solver = [&](const ProblemInstance& inst, const JointOptions& jo) {
    if (++calls == 2) throw std::runtime_error("one bad solve");
    return JointOptimizer(jo).optimize(inst);
  };
  OnlineController ctl(clusters::small_lab(), o);
  ctl.decision();
  const double base = lab_bw()[0];

  EXPECT_FALSE(ctl.observe({base * 1.5}));  // trips the watchdog, backoff = 1
  ASSERT_EQ(calls, 2);

  // Calm windows (within hysteresis of the stale anchor): no decay.
  EXPECT_FALSE(ctl.observe({base}));
  EXPECT_FALSE(ctl.observe({base}));
  ASSERT_EQ(calls, 2);

  // First drift window is skipped (consumes the one backoff window)...
  EXPECT_FALSE(ctl.observe({base * 2.0}));
  ASSERT_EQ(calls, 2);
  // ...the second one retries the solver.
  EXPECT_TRUE(ctl.observe({base * 2.0}));
  EXPECT_EQ(calls, 3);
}

TEST(OnlineRobust, FallbackNeverLeavesTasksUnroutable) {
  auto o = fast_opts();
  o.solver = [](const ProblemInstance&,
                const JointOptions&) -> Decision {
    throw std::runtime_error("permanently down");
  };
  OnlineController ctl(clusters::small_lab(), o);
  // Even with the solver dead from the start and every server lost, the
  // controller must produce a complete, evaluated, device-only deployment.
  ctl.observe(lab_bw(), {false, false});
  const auto& d = ctl.decision();
  EXPECT_EQ(d.scheme, "device_fallback");
  ASSERT_EQ(d.per_device.size(), 4u);
  ASSERT_EQ(d.predicted.size(), 4u);
  for (const auto& dd : d.per_device) EXPECT_TRUE(dd.plan.device_only);
  const auto v = validate_plan(ctl.instance(), d, {false, false});
  EXPECT_TRUE(v.ok) << v.reason;
}

TEST(OnlineRobust, SanitizerDefersUnconfirmedFailover) {
  auto o = fast_opts();
  o.robustness.sanitizer.confirm_windows = 2;
  OnlineController ctl(clusters::small_lab(), o);
  ctl.decision();

  // Debounce applies to *measured* liveness (alive_fresh metadata present);
  // a metadata-free observation is ground truth and bypasses it.
  auto measured = [](std::vector<double> bw, std::vector<bool> alive) {
    Observation obs;
    obs.alive_fresh.assign(alive.size(), true);
    obs.cell_bandwidth = std::move(bw);
    obs.server_alive = std::move(alive);
    return obs;
  };

  // One measured "down" reading: deferred, audited, no failover burned.
  EXPECT_FALSE(ctl.observe(measured(lab_bw(), {false, true})));
  EXPECT_EQ(ctl.telemetry_rejections(), 1u);
  EXPECT_EQ(ctl.failovers(), 0u);
  EXPECT_TRUE(
      audit_has_cause(ctl.audit_log(), AuditCause::kTelemetryRejected));

  // The second consecutive reading confirms: now the failover happens.
  EXPECT_TRUE(ctl.observe(measured(lab_bw(), {false, true})));
  EXPECT_EQ(ctl.failovers(), 1u);
}

TEST(OnlineRobust, GroundTruthLivenessBypassesDebounce) {
  auto o = fast_opts();
  o.robustness.sanitizer.confirm_windows = 3;
  o.robustness.sanitizer.flap_threshold = 2;
  OnlineController ctl(clusters::small_lab(), o);
  ctl.decision();

  // No channel metadata: the observation IS the cluster state, so even
  // hardened trust options believe the flip on the first reading.
  EXPECT_TRUE(ctl.observe(lab_bw(), {false, true}));
  EXPECT_EQ(ctl.failovers(), 1u);
  EXPECT_EQ(ctl.telemetry_rejections(), 0u);
}

TEST(OnlineRobust, ObservationStructMatchesShimBehavior) {
  OnlineController via_shim(clusters::small_lab(), fast_opts());
  OnlineController via_struct(clusters::small_lab(), fast_opts());
  via_shim.decision();
  via_struct.decision();

  const double collapsed = lab_bw()[0] * 0.4;
  EXPECT_TRUE(via_shim.observe({collapsed}, {true, true}));

  Observation obs;
  obs.cell_bandwidth = {collapsed};
  obs.server_alive = {true, true};
  EXPECT_TRUE(via_struct.observe(obs));

  EXPECT_EQ(via_shim.reoptimizations(), via_struct.reoptimizations());
  EXPECT_EQ(via_shim.decision().scheme, via_struct.decision().scheme);
  EXPECT_EQ(via_shim.decision().per_device.size(),
            via_struct.decision().per_device.size());
  for (std::size_t i = 0; i < via_shim.decision().per_device.size(); ++i) {
    EXPECT_EQ(via_shim.decision().per_device[i].server,
              via_struct.decision().per_device[i].server);
  }
}

TEST(OnlineRobust, ObservationTimeAdvancesAuditClock) {
  OnlineController ctl(clusters::small_lab(), fast_opts());
  ctl.decision();
  Observation obs;
  obs.time = 42.0;
  obs.cell_bandwidth = {lab_bw()[0] * 0.4};
  obs.server_alive = {true, true};
  EXPECT_TRUE(ctl.observe(obs));
  EXPECT_DOUBLE_EQ(ctl.audit_log().time(), 42.0);
  EXPECT_DOUBLE_EQ(ctl.audit_log().records().back().time, 42.0);
}

TEST(OnlineRobust, RejectsNonsenseRobustnessOptions) {
  auto o = fast_opts();
  o.robustness.solve_budget_seconds = 0.0;
  EXPECT_THROW(OnlineController(clusters::small_lab(), o),
               ContractViolation);
}

TEST(Online, UnchangedLivenessDoesNotResolve) {
  // Liveness re-solves are edge-triggered: repeating the same alive vector
  // (with steady bandwidth) must not burn another optimization.
  const auto topo = clusters::small_lab();
  OnlineController ctl(topo, fast_opts());
  const std::vector<double> bw = {topo.cell(0).bandwidth};
  EXPECT_TRUE(ctl.observe(bw, {false, true}));
  const auto n = ctl.reoptimizations();
  EXPECT_FALSE(ctl.observe(bw, {false, true}));
  EXPECT_EQ(ctl.reoptimizations(), n);
}

}  // namespace
}  // namespace scalpel
