#include "core/joint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"

namespace scalpel {
namespace {

JointOptions fast_opts() {
  JointOptions o;
  o.max_iterations = 3;
  o.dp_coverage_bins = 50;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

TEST(Joint, ProducesCompleteValidatedDecision) {
  const ProblemInstance instance(clusters::small_lab());
  JointReport report;
  const auto d = JointOptimizer(fast_opts()).optimize(instance, &report);
  ASSERT_EQ(d.per_device.size(), 4u);
  ASSERT_EQ(d.predicted.size(), 4u);
  EXPECT_TRUE(std::isfinite(d.mean_latency));
  EXPECT_GE(report.iterations, 1u);
  EXPECT_GT(report.surgery_evaluations, 0u);
  EXPECT_EQ(report.objective_history.size(), report.iterations);
  for (const auto& dd : d.per_device) {
    if (!dd.plan.device_only) {
      EXPECT_GE(dd.server, 0);
      EXPECT_GT(dd.bandwidth, 0.0);
      EXPECT_GT(dd.compute_share, 0.0);
      EXPECT_LE(dd.compute_share, 1.0);
    }
  }
}

TEST(Joint, Deterministic) {
  const ProblemInstance instance(clusters::small_lab());
  const auto a = JointOptimizer(fast_opts()).optimize(instance);
  const auto b = JointOptimizer(fast_opts()).optimize(instance);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  for (std::size_t i = 0; i < a.per_device.size(); ++i) {
    EXPECT_EQ(a.per_device[i].plan.device_only,
              b.per_device[i].plan.device_only);
    EXPECT_EQ(a.per_device[i].plan.partition_after,
              b.per_device[i].plan.partition_after);
    EXPECT_EQ(a.per_device[i].server, b.per_device[i].server);
  }
}

TEST(Joint, RespectsAccuracyFloors) {
  const ProblemInstance instance(clusters::small_lab());
  const auto d = JointOptimizer(fast_opts()).optimize(instance);
  for (std::size_t i = 0; i < d.predicted.size(); ++i) {
    EXPECT_TRUE(d.predicted[i].meets_accuracy) << "device " << i;
  }
}

class JointVsBaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(JointVsBaselineTest, JointNeverLosesOnSmallLab) {
  const ProblemInstance instance(clusters::small_lab());
  const auto joint = JointOptimizer(fast_opts()).optimize(instance);
  const auto base = baselines::by_name(instance, GetParam());
  ASSERT_TRUE(std::isfinite(joint.mean_latency));
  if (std::isfinite(base.mean_latency)) {
    // Small slack: baselines get the same allocation machinery, and the
    // alternation is a heuristic, but it should win or tie.
    EXPECT_LE(joint.mean_latency, base.mean_latency * 1.02)
        << GetParam() << " beat joint";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, JointVsBaselineTest,
                         ::testing::Values("device_only", "edge_only",
                                           "neurosurgeon", "local_multi_exit",
                                           "random"));

TEST(Joint, BeatsBaselinesOnCampusSeeds) {
  for (std::uint64_t seed : {1ull, 7ull}) {
    clusters::CampusOptions copts;
    copts.num_devices = 10;
    copts.num_servers = 3;
    copts.seed = seed;
    const ProblemInstance instance(clusters::campus(copts));
    const auto joint = JointOptimizer(fast_opts()).optimize(instance);
    ASSERT_TRUE(std::isfinite(joint.mean_latency)) << "seed " << seed;
    for (const auto& name : baselines::names()) {
      const auto base = baselines::by_name(instance, name);
      if (std::isfinite(base.mean_latency)) {
        EXPECT_LE(joint.mean_latency, base.mean_latency * 1.05)
            << name << " seed " << seed;
      }
    }
  }
}

TEST(Joint, AblationsCoverSpectrum) {
  const ProblemInstance instance(clusters::small_lab());
  JointOptions full = fast_opts();
  JointOptions no_surgery = fast_opts();
  no_surgery.enable_surgery = false;
  JointOptions no_alloc = fast_opts();
  no_alloc.enable_allocation = false;
  JointOptions no_exits = fast_opts();
  no_exits.enable_exits = false;

  const auto d_full = JointOptimizer(full).optimize(instance);
  const auto d_ns = JointOptimizer(no_surgery).optimize(instance);
  const auto d_na = JointOptimizer(no_alloc).optimize(instance);
  const auto d_ne = JointOptimizer(no_exits).optimize(instance);

  ASSERT_TRUE(std::isfinite(d_full.mean_latency));
  // Joint with everything on must not lose to its own ablations.
  if (std::isfinite(d_ns.mean_latency)) {
    EXPECT_LE(d_full.mean_latency, d_ns.mean_latency * 1.05);
  }
  if (std::isfinite(d_na.mean_latency)) {
    EXPECT_LE(d_full.mean_latency, d_na.mean_latency * 1.05);
  }
  if (std::isfinite(d_ne.mean_latency)) {
    EXPECT_LE(d_full.mean_latency, d_ne.mean_latency * 1.05);
  }
  // Ablated runs must still produce complete decisions.
  EXPECT_EQ(d_ns.per_device.size(), 4u);
  EXPECT_EQ(d_na.per_device.size(), 4u);
  // The no-exits ablation must not enable any exits.
  for (const auto& dd : d_ne.per_device) {
    EXPECT_TRUE(dd.plan.policy.exits.empty());
  }
  // The frozen-surgery ablation must not enable exits either.
  for (const auto& dd : d_ns.per_device) {
    EXPECT_TRUE(dd.plan.policy.exits.empty());
  }
}

TEST(Joint, ObjectiveHistoryImproves) {
  const ProblemInstance instance(clusters::small_lab());
  JointReport report;
  JointOptions o = fast_opts();
  o.max_iterations = 5;
  JointOptimizer(o).optimize(instance, &report);
  // The kept objective is the minimum of the history.
  double best = report.objective_history.front();
  for (double v : report.objective_history) best = std::min(best, v);
  EXPECT_TRUE(std::isfinite(best));
}

TEST(Joint, HandlesOverloadByKeepingWorkLocalOrShedding) {
  // Crank arrival rates so offloading everything is impossible; the joint
  // optimizer must still return a finite (possibly partially local) plan or
  // at worst a complete decision.
  clusters::CampusOptions copts;
  copts.num_devices = 8;
  copts.num_servers = 1;
  copts.mean_arrival_rate = 12.0;
  copts.seed = 5;
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);
  EXPECT_EQ(d.per_device.size(), 8u);
  // Every stable prediction should be positive; unstable ones are permitted
  // under genuine overload but the decision must remain well-formed.
  for (const auto& p : d.predicted) {
    if (p.stable) {
      EXPECT_GT(p.expected_latency, 0.0);
    }
  }
}

TEST(Joint, DeadlineObjectiveDoesNotLoseSatisfaction) {
  // On a deadline-tight cluster, optimizing for deadline satisfaction must
  // score at least as well on that metric as optimizing for mean latency.
  clusters::CampusOptions copts;
  copts.num_devices = 8;
  copts.num_servers = 2;
  copts.deadline = 0.12;  // tight
  copts.seed = 9;
  const ProblemInstance instance(clusters::campus(copts));

  JointOptions latency_opts = fast_opts();
  JointOptions deadline_opts = fast_opts();
  deadline_opts.objective = JointObjective::kDeadlineSatisfaction;

  const auto by_latency = JointOptimizer(latency_opts).optimize(instance);
  const auto by_deadline = JointOptimizer(deadline_opts).optimize(instance);
  const double sat_latency =
      predicted_deadline_satisfaction(instance, by_latency);
  const double sat_deadline =
      predicted_deadline_satisfaction(instance, by_deadline);
  EXPECT_GE(sat_deadline, sat_latency - 1e-9);
}

TEST(Joint, ReportSolveTimePositive) {
  const ProblemInstance instance(clusters::small_lab());
  JointReport report;
  JointOptimizer(fast_opts()).optimize(instance, &report);
  EXPECT_GT(report.solve_seconds, 0.0);
  EXPECT_LT(report.solve_seconds, 30.0);
}

}  // namespace
}  // namespace scalpel
