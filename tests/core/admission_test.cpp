#include "core/admission.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "profile/latency_model.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

ClusterTopology one_device(double rate) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "c", mbps(100.0), ms(1.0)});
  Device d;
  d.name = "dev";
  d.compute = profiles::smartphone();
  d.energy = profiles::energy_phone();
  d.cell = cell;
  d.model = "tiny_cnn";
  d.arrival_rate = rate;
  t.add_device(d);
  EdgeServer s;
  s.name = "srv";
  s.compute = profiles::edge_gpu_t4();
  t.add_server(s);
  return t;
}

TEST(Admission, LocalRateBoundMatchesServiceTime) {
  const ProblemInstance inst(one_device(1.0));
  DeviceDecision dd;
  dd.plan.device_only = true;
  const double service = LatencyModel::graph_latency(
      inst.bundle_for(0).graph, inst.topology().device(0).compute);
  const double bound = admission::max_sustainable_rate(inst, 0, dd, 1.0);
  EXPECT_NEAR(bound, 1.0 / service, 1.0 / service * 1e-9);
  // Headroom scales the bound linearly.
  EXPECT_NEAR(admission::max_sustainable_rate(inst, 0, dd, 0.5), bound * 0.5,
              bound * 1e-9);
}

TEST(Admission, OffloadBoundTakesBottleneckStage) {
  const ProblemInstance inst(one_device(1.0));
  DeviceDecision dd;
  dd.plan.partition_after = 0;
  dd.server = 0;
  dd.compute_share = 1.0;
  dd.bandwidth = mbps(1.0);  // starved uplink dominates
  const auto model = build_plan_model(inst, 0, dd);
  const double s_up =
      static_cast<double>(model.breakdown().upload_bytes) / dd.bandwidth;
  const double bound = admission::max_sustainable_rate(inst, 0, dd, 1.0);
  EXPECT_NEAR(bound, 1.0 / s_up, 1.0 / s_up * 1e-6);
}

TEST(Admission, SustainableRateConsistentWithEvaluator) {
  // Rates just below the bound must evaluate stable; just above, unstable.
  const ProblemInstance probe(one_device(1.0));
  DeviceDecision dd;
  dd.plan.device_only = true;
  const double bound = admission::max_sustainable_rate(probe, 0, dd, 1.0);

  const ProblemInstance under(one_device(bound * 0.95));
  const ProblemInstance over(one_device(bound * 1.05));
  EXPECT_TRUE(evaluate_device(under, 0, dd).stable);
  EXPECT_FALSE(evaluate_device(over, 0, dd).stable);
}

TEST(Admission, ThrottleRestoresStability) {
  // Overloaded lab: device_only is unstable for cam0. Throttling to the
  // sustainable rates must yield a stable system on the same decision.
  const ProblemInstance inst(clusters::small_lab());
  Decision local;
  local.per_device.resize(4);
  for (auto& dd : local.per_device) dd.plan.device_only = true;
  evaluate_decision(inst, local);
  ASSERT_FALSE(std::isfinite(local.mean_latency));

  const auto plan = admission::propose_throttle(inst, local, 0.9);
  EXPECT_TRUE(plan.throttled);
  EXPECT_LT(plan.admitted_fraction, 1.0);
  EXPECT_GT(plan.admitted_fraction, 0.0);

  const ProblemInstance throttled(
      admission::throttled_topology(inst, plan));
  Decision again;
  again.per_device = local.per_device;
  evaluate_decision(throttled, again);
  EXPECT_TRUE(std::isfinite(again.mean_latency));
}

TEST(Admission, StableSystemIsNotThrottled) {
  const ProblemInstance inst(clusters::small_lab());
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  const auto joint = JointOptimizer(o).optimize(inst);
  ASSERT_TRUE(std::isfinite(joint.mean_latency));
  const auto plan = admission::propose_throttle(inst, joint, 0.99);
  EXPECT_FALSE(plan.throttled);
  EXPECT_NEAR(plan.admitted_fraction, 1.0, 1e-9);
}

TEST(Admission, FixedPointConvergesFast) {
  // Under the current rate-independent stability bounds the cluster-level
  // fixed point must land after one refinement round, and must agree with
  // the one-shot proposal.
  const ProblemInstance inst(clusters::small_lab());
  Decision local;
  local.per_device.resize(4);
  for (auto& dd : local.per_device) dd.plan.device_only = true;
  evaluate_decision(inst, local);
  ASSERT_FALSE(std::isfinite(local.mean_latency));

  const auto fp = admission::propose_throttle_fixed_point(inst, local, 0.9);
  EXPECT_TRUE(fp.throttled);
  EXPECT_LE(fp.iterations, 2u);
  const auto one = admission::propose_throttle(inst, local, 0.9);
  ASSERT_EQ(fp.admitted_rate.size(), one.admitted_rate.size());
  for (std::size_t i = 0; i < fp.admitted_rate.size(); ++i) {
    EXPECT_NEAR(fp.admitted_rate[i], one.admitted_rate[i],
                1e-9 * (1.0 + one.admitted_rate[i]));
  }
}

TEST(Admission, FixedPointIsIdempotent) {
  // The fixed-point plan, applied to the topology, needs no further
  // throttling — the evaluator agrees it is stable.
  const ProblemInstance inst(clusters::small_lab());
  Decision local;
  local.per_device.resize(4);
  for (auto& dd : local.per_device) dd.plan.device_only = true;
  evaluate_decision(inst, local);

  const auto fp = admission::propose_throttle_fixed_point(inst, local, 0.9);
  const ProblemInstance throttled(admission::throttled_topology(inst, fp));
  Decision again;
  again.per_device = local.per_device;
  evaluate_decision(throttled, again);
  EXPECT_TRUE(std::isfinite(again.mean_latency));

  const auto re = admission::propose_throttle_fixed_point(throttled, again,
                                                          0.9);
  EXPECT_FALSE(re.throttled);
  EXPECT_NEAR(re.admitted_fraction, 1.0, 1e-9);
}

TEST(Admission, ValidatesHeadroom) {
  const ProblemInstance inst(one_device(1.0));
  DeviceDecision dd;
  dd.plan.device_only = true;
  EXPECT_THROW(admission::max_sustainable_rate(inst, 0, dd, 0.0),
               ContractViolation);
  EXPECT_THROW(admission::max_sustainable_rate(inst, 0, dd, 1.5),
               ContractViolation);
}

}  // namespace
}  // namespace scalpel
