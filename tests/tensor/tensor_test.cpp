#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{3, 4, 5};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 60);
  EXPECT_EQ(s.bytes(), 240);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s.to_string(), "[3x4x5]");
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, RejectsNonPositiveDims) {
  EXPECT_THROW((Shape{0, 3}), ContractViolation);
  EXPECT_THROW((Shape{3, -1}), ContractViolation);
}

TEST(Shape, EmptyShapeHasZeroNumel) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FullFillsValue) {
  auto t = Tensor::full(Shape{4}, 2.5f);
  EXPECT_DOUBLE_EQ(t.sum(), 10.0);
}

TEST(Tensor, ChwIndexingRoundTrips) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  t.at(0, 0, 0) = 1.0f;
  EXPECT_EQ(t.at(1, 2, 3), 7.0f);
  EXPECT_EQ(t.at(0, 0, 0), 1.0f);
  // Flat layout: ((c*H)+h)*W + w
  EXPECT_EQ(t.at((1 * 3 + 2) * 4 + 3), 7.0f);
}

TEST(Tensor, ChwIndexingBoundsChecked) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_THROW(t.at(2, 0, 0), ContractViolation);
  EXPECT_THROW(t.at(0, 3, 0), ContractViolation);
  EXPECT_THROW(t.at(0, 0, 4), ContractViolation);
  EXPECT_THROW(t.at(-1, 0, 0), ContractViolation);
}

TEST(Tensor, ChwAccessorRequiresRank3) {
  Tensor t(Shape{6});
  EXPECT_THROW(t.at(0, 0, 0), ContractViolation);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < 6; ++i) t.at(i) = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{6});
  EXPECT_EQ(r.shape(), (Shape{6}));
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(r.at(i), static_cast<float>(i));
}

TEST(Tensor, ReshapeRejectsCountMismatch) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshaped(Shape{7}), ContractViolation);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  const auto t1 = Tensor::randn(Shape{100}, a);
  const auto t2 = Tensor::randn(Shape{100}, b);
  EXPECT_EQ(max_abs_diff(t1, t2), 0.0);
}

TEST(Tensor, RandnApproxMoments) {
  Rng rng(7);
  const auto t = Tensor::randn(Shape{100, 100}, rng, 2.0f);
  double sum = 0.0;
  double sq = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sum += t.at(i);
    sq += static_cast<double>(t.at(i)) * t.at(i);
  }
  const double mean = sum / static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sq / static_cast<double>(t.numel()), 4.0, 0.2);
}

TEST(Tensor, AllFiniteDetectsNan) {
  Tensor t(Shape{3});
  EXPECT_TRUE(t.all_finite());
  t.at(1) = std::nanf("");
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, AbsMax) {
  Tensor t(Shape{3});
  t.at(0) = -5.0f;
  t.at(1) = 2.0f;
  EXPECT_DOUBLE_EQ(t.abs_max(), 5.0);
}

TEST(Tensor, MaxAbsDiffRequiresMatchingShapes) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_THROW(max_abs_diff(a, b), ContractViolation);
}

TEST(Tensor, MaxAbsDiffComputes) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor b = Tensor::full(Shape{4}, 1.0f);
  b.at(2) = 3.0f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

}  // namespace
}  // namespace scalpel
