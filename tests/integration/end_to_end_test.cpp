// End-to-end flows: optimize -> evaluate -> simulate, across schemes. These
// assert the relationships the paper's evaluation is built on.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "core/joint.hpp"
#include "core/objective.hpp"
#include "core/online.hpp"
#include "edge/builders.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace scalpel {
namespace {

JointOptions fast_opts() {
  JointOptions o;
  o.max_iterations = 3;
  o.dp_coverage_bins = 50;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

SimMetrics simulate(const ProblemInstance& inst, const Decision& d,
                    double horizon = 60.0, std::uint64_t seed = 1) {
  Simulator::Options opts;
  opts.horizon = horizon;
  opts.warmup = horizon * 0.1;
  opts.seed = seed;
  Simulator sim(inst, d, opts);
  return sim.run();
}

TEST(EndToEnd, JointDecisionSurvivesSimulation) {
  const ProblemInstance inst(clusters::small_lab());
  const auto joint = JointOptimizer(fast_opts()).optimize(inst);
  ASSERT_TRUE(std::isfinite(joint.mean_latency));
  const auto m = simulate(inst, joint);
  ASSERT_GT(m.completed, 100u);
  // The DES must confirm stability: measured mean below a small multiple of
  // the (conservative) analytical prediction.
  EXPECT_LT(m.latency.mean(), joint.mean_latency * 2.0);
  EXPECT_GT(m.deadline_satisfaction, 0.8);
}

TEST(EndToEnd, SimulatorAgreesOnSchemeOrdering) {
  // The DES must reproduce the analytical ranking between the joint scheme
  // and a clearly-worse baseline.
  const ProblemInstance inst(clusters::small_lab());
  const auto joint = JointOptimizer(fast_opts()).optimize(inst);
  const auto ns = baselines::neurosurgeon(inst);
  ASSERT_TRUE(std::isfinite(joint.mean_latency));
  ASSERT_TRUE(std::isfinite(ns.mean_latency));
  const auto mj = simulate(inst, joint, 90.0);
  const auto mn = simulate(inst, ns, 90.0);
  // Joint <= neurosurgeon analytically; allow DES noise but require it not
  // to be dramatically reversed.
  EXPECT_LT(mj.latency.mean(), mn.latency.mean() * 1.3);
}

TEST(EndToEnd, UnstableBaselineShowsRunawayLatencyInDes) {
  // device_only is analytically unstable on the small lab (cam0 overload).
  const ProblemInstance inst(clusters::small_lab());
  const auto local = baselines::device_only(inst);
  EXPECT_TRUE(std::isinf(local.mean_latency));
  const auto short_run = simulate(inst, local, 30.0, 5);
  const auto long_run = simulate(inst, local, 120.0, 5);
  // A growing queue shows up as latency increasing with the horizon.
  EXPECT_GT(long_run.latency.mean(), short_run.latency.mean());
}

TEST(EndToEnd, AccuracyFloorsHoldInSimulation) {
  const ProblemInstance inst(clusters::small_lab());
  const auto joint = JointOptimizer(fast_opts()).optimize(inst);
  const auto m = simulate(inst, joint, 120.0);
  // Aggregate measured accuracy must respect the weighted floors closely
  // (each device's plan was constrained individually).
  for (std::size_t i = 0; i < m.per_device.size(); ++i) {
    if (m.per_device[i].completed < 50) continue;
    const double measured =
        m.per_device[i].accuracy_sum /
        static_cast<double>(m.per_device[i].completed);
    EXPECT_GE(measured,
              inst.topology().device(static_cast<DeviceId>(i)).min_accuracy -
                  0.03)
        << "device " << i;
  }
}

TEST(EndToEnd, CampusScalePipeline) {
  clusters::CampusOptions copts;
  copts.num_devices = 12;
  copts.num_servers = 3;
  copts.seed = 3;
  const ProblemInstance inst(clusters::campus(copts));
  const auto joint = JointOptimizer(fast_opts()).optimize(inst);
  ASSERT_EQ(joint.per_device.size(), 12u);
  const auto m = simulate(inst, joint, 40.0);
  EXPECT_GT(m.completed, 200u);
  EXPECT_TRUE(std::isfinite(m.latency.p99()));
}

TEST(EndToEnd, OnlineAdaptationBeatsStaticUnderBandwidthDrop) {
  // Gilbert-style bandwidth collapse; the adaptive controller re-optimizes,
  // the static decision suffers.
  const auto topo = clusters::small_lab();
  const ProblemInstance inst(topo);
  const auto static_decision = JointOptimizer(fast_opts()).optimize(inst);

  const double good = topo.cell(0).bandwidth;
  const double bad = mbps(4.0);
  BandwidthTrace trace({{0.0, good}, {30.0, bad}});

  // Static run.
  Simulator::Options opts;
  opts.horizon = 90.0;
  opts.warmup = 5.0;
  opts.seed = 11;
  Simulator static_sim(inst, static_decision, opts);
  static_sim.set_cell_trace(0, trace);
  const auto static_m = static_sim.run();

  // Adaptive run.
  OnlineController::Options copts2;
  copts2.hysteresis = 0.2;
  copts2.joint = fast_opts();
  OnlineController controller(topo, copts2);
  Simulator::Options aopts = opts;
  aopts.control_interval = 5.0;
  Simulator adaptive_sim(inst, static_decision, aopts);
  adaptive_sim.set_cell_trace(0, trace);
  adaptive_sim.set_controller(
      [&](double, const std::vector<double>& bw,
          const std::vector<bool>& alive) -> std::optional<Decision> {
        if (controller.observe(bw, alive)) return controller.decision();
        return std::nullopt;
      });
  const auto adaptive_m = adaptive_sim.run();

  EXPECT_GT(controller.reoptimizations(), 0u);
  EXPECT_LT(adaptive_m.latency.p99(), static_m.latency.p99());
}

}  // namespace
}  // namespace scalpel
