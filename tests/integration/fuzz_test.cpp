// Randomized end-to-end invariants: across random cluster topologies, the
// optimizer must produce decisions that respect every structural constraint,
// and the surrounding machinery (evaluator, simulator, serializer) must
// accept them. These sweeps are the repo's regression net for optimizer
// edge cases that hand-written instances miss.

#include <gtest/gtest.h>

#include <cmath>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "core/serialize.hpp"
#include "edge/builders.hpp"
#include "sim/simulator.hpp"

namespace scalpel {
namespace {

JointOptions fast_opts() {
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

class FuzzTopologyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTopologyTest, JointDecisionRespectsAllInvariants) {
  clusters::CampusOptions copts;
  copts.seed = GetParam();
  copts.num_devices = 6 + (GetParam() % 7);
  copts.num_servers = 2 + (GetParam() % 3);
  copts.mean_arrival_rate = 0.5 + 0.25 * static_cast<double>(GetParam() % 8);
  copts.server_speed_cov = 0.1 * static_cast<double>(GetParam() % 10);
  const ProblemInstance instance(clusters::campus(copts));
  const auto& topo = instance.topology();

  const auto d = JointOptimizer(fast_opts()).optimize(instance);
  ASSERT_EQ(d.per_device.size(), topo.devices().size());

  // Structural invariants per device.
  std::vector<double> cell_bw(topo.cells().size(), 0.0);
  std::vector<double> server_share(topo.servers().size(), 0.0);
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const auto& dd = d.per_device[i];
    if (dd.plan.device_only) continue;
    // Cut must be a clean cut of the device's model.
    const auto& g = instance.bundle_for(static_cast<DeviceId>(i)).graph;
    bool found = false;
    for (const auto& c : g.clean_cuts()) {
      if (c.after == dd.plan.partition_after) found = true;
    }
    EXPECT_TRUE(found) << "device " << i;
    EXPECT_GE(dd.server, 0);
    EXPECT_LT(dd.server, static_cast<int>(topo.servers().size()));
    EXPECT_GT(dd.bandwidth, 0.0);
    EXPECT_GT(dd.compute_share, 0.0);
    EXPECT_LE(dd.compute_share, 1.0);
    cell_bw[static_cast<std::size_t>(
        topo.device(static_cast<DeviceId>(i)).cell)] += dd.bandwidth;
    server_share[static_cast<std::size_t>(dd.server)] += dd.compute_share;
    // Exit indices must be valid for the model's candidate list.
    const auto& cands =
        instance.bundle_for(static_cast<DeviceId>(i)).candidates;
    for (const auto& e : dd.plan.policy.exits) {
      EXPECT_LT(e.candidate, cands.size());
    }
  }
  for (std::size_t c = 0; c < cell_bw.size(); ++c) {
    EXPECT_LE(cell_bw[c],
              topo.cell(static_cast<CellId>(c)).bandwidth * (1.0 + 1e-6));
  }
  for (double s : server_share) EXPECT_LE(s, 1.0 + 1e-6);

  // Evaluation invariants: accuracy floors honored whenever the decision is
  // stable for that device.
  for (std::size_t i = 0; i < d.predicted.size(); ++i) {
    if (d.predicted[i].stable) {
      EXPECT_GE(d.predicted[i].expected_accuracy,
                topo.device(static_cast<DeviceId>(i)).min_accuracy - 1e-6)
          << "device " << i;
    }
  }

  // Serialization round-trip re-evaluates to the same objective.
  const auto text = serialize::to_json(d).dump();
  Decision restored = serialize::decision_from_json(Json::parse(text));
  evaluate_decision(instance, restored);
  if (std::isfinite(d.mean_latency)) {
    EXPECT_NEAR(restored.mean_latency, d.mean_latency,
                d.mean_latency * 1e-9);
  }

  // The simulator must accept and run the decision without violating
  // conservation.
  Simulator::Options sopts;
  sopts.horizon = 8.0;
  sopts.warmup = 1.0;
  sopts.seed = GetParam();
  Simulator sim(instance, d, sopts);
  const auto m = sim.run();
  EXPECT_GE(m.arrived, m.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTopologyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace scalpel
