// Randomized end-to-end invariants: across random cluster topologies, the
// optimizer must produce decisions that respect every structural constraint,
// and the surrounding machinery (evaluator, simulator, serializer) must
// accept them. These sweeps are the repo's regression net for optimizer
// edge cases that hand-written instances miss.

#include <gtest/gtest.h>

#include <cmath>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "core/serialize.hpp"
#include "edge/builders.hpp"
#include "sim/event_queue.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

JointOptions fast_opts() {
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

class FuzzTopologyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTopologyTest, JointDecisionRespectsAllInvariants) {
  clusters::CampusOptions copts;
  copts.seed = GetParam();
  copts.num_devices = 6 + (GetParam() % 7);
  copts.num_servers = 2 + (GetParam() % 3);
  copts.mean_arrival_rate = 0.5 + 0.25 * static_cast<double>(GetParam() % 8);
  copts.server_speed_cov = 0.1 * static_cast<double>(GetParam() % 10);
  const ProblemInstance instance(clusters::campus(copts));
  const auto& topo = instance.topology();

  const auto d = JointOptimizer(fast_opts()).optimize(instance);
  ASSERT_EQ(d.per_device.size(), topo.devices().size());

  // Structural invariants per device.
  std::vector<double> cell_bw(topo.cells().size(), 0.0);
  std::vector<double> server_share(topo.servers().size(), 0.0);
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const auto& dd = d.per_device[i];
    if (dd.plan.device_only) continue;
    // Cut must be a clean cut of the device's model.
    const auto& g = instance.bundle_for(static_cast<DeviceId>(i)).graph;
    bool found = false;
    for (const auto& c : g.clean_cuts()) {
      if (c.after == dd.plan.partition_after) found = true;
    }
    EXPECT_TRUE(found) << "device " << i;
    EXPECT_GE(dd.server, 0);
    EXPECT_LT(dd.server, static_cast<int>(topo.servers().size()));
    EXPECT_GT(dd.bandwidth, 0.0);
    EXPECT_GT(dd.compute_share, 0.0);
    EXPECT_LE(dd.compute_share, 1.0);
    cell_bw[static_cast<std::size_t>(
        topo.device(static_cast<DeviceId>(i)).cell)] += dd.bandwidth;
    server_share[static_cast<std::size_t>(dd.server)] += dd.compute_share;
    // Exit indices must be valid for the model's candidate list.
    const auto& cands =
        instance.bundle_for(static_cast<DeviceId>(i)).candidates;
    for (const auto& e : dd.plan.policy.exits) {
      EXPECT_LT(e.candidate, cands.size());
    }
  }
  for (std::size_t c = 0; c < cell_bw.size(); ++c) {
    EXPECT_LE(cell_bw[c],
              topo.cell(static_cast<CellId>(c)).bandwidth * (1.0 + 1e-6));
  }
  for (double s : server_share) EXPECT_LE(s, 1.0 + 1e-6);

  // Evaluation invariants: accuracy floors honored whenever the decision is
  // stable for that device.
  for (std::size_t i = 0; i < d.predicted.size(); ++i) {
    if (d.predicted[i].stable) {
      EXPECT_GE(d.predicted[i].expected_accuracy,
                topo.device(static_cast<DeviceId>(i)).min_accuracy - 1e-6)
          << "device " << i;
    }
  }

  // Serialization round-trip re-evaluates to the same objective.
  const auto text = serialize::to_json(d).dump();
  Decision restored = serialize::decision_from_json(Json::parse(text));
  evaluate_decision(instance, restored);
  if (std::isfinite(d.mean_latency)) {
    EXPECT_NEAR(restored.mean_latency, d.mean_latency,
                d.mean_latency * 1e-9);
  }

  // The simulator must accept and run the decision without violating
  // conservation.
  Simulator::Options sopts;
  sopts.horizon = 8.0;
  sopts.warmup = 1.0;
  sopts.seed = GetParam();
  Simulator sim(instance, d, sopts);
  const auto m = sim.run();
  EXPECT_GE(m.arrived, m.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTopologyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// Fault-schedule fuzz: random crash/recover interleavings (including
// zero-duration outages and crash-at-t=0) under every retry policy. Whatever
// the schedule throws at it, the simulator must preserve conservation
//   arrived == completed_all + failed_all + in_flight_end
// keep availability in [0, 1], and never emit a negative latency.
class FuzzFaultTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzFaultTest, RandomScheduleKeepsInvariants) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 4 + (seed % 5);
  copts.num_servers = 2 + (seed % 2);
  const ProblemInstance instance(clusters::campus(copts));
  const auto& topo = instance.topology();
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  // Random schedule: per server and per link, a handful of down/up pairs
  // with exponential spacing, sometimes zero-width, sometimes at t=0.
  Rng rng(seed * 7919 + 13);
  std::vector<FaultEvent> events;
  const double horizon = 20.0;
  for (std::size_t s = 0; s < topo.servers().size(); ++s) {
    double t = rng.uniform() < 0.25 ? 0.0 : rng.exponential(0.3);
    while (t < horizon) {
      const double width =
          rng.uniform() < 0.2 ? 0.0 : rng.exponential(0.8);
      events.push_back({t, FaultTarget::Server,
                        static_cast<std::int32_t>(s), false});
      events.push_back({t + width, FaultTarget::Server,
                        static_cast<std::int32_t>(s), true});
      t += width + rng.exponential(0.3);
    }
  }
  for (std::size_t c = 0; c < topo.cells().size(); ++c) {
    if (rng.uniform() < 0.5) continue;
    const double t = rng.exponential(0.2) * horizon * 0.5;
    events.push_back({t, FaultTarget::Link,
                      static_cast<std::int32_t>(c), false});
    events.push_back({t + rng.exponential(2.0), FaultTarget::Link,
                      static_cast<std::int32_t>(c), true});
  }

  Simulator::Options sopts;
  sopts.horizon = horizon;
  sopts.warmup = 1.0;
  sopts.seed = seed;
  sopts.faults.schedule = FaultSchedule(events);
  const FaultPolicy policies[] = {FaultPolicy::Drop, FaultPolicy::RetryOnDevice,
                                  FaultPolicy::RetryOffload};
  sopts.faults.policy = policies[seed % 3];
  sopts.faults.max_retries = 1 + seed % 4;
  sopts.faults.retry_backoff = 0.1 + 0.1 * static_cast<double>(seed % 3);
  sopts.faults.retry_timeout = 5.0;

  const auto m = Simulator(instance, d, sopts).run();
  EXPECT_EQ(m.arrived,
            m.completed_all + m.failed_all + m.shed_all + m.in_flight_end)
      << "policy=" << static_cast<int>(sopts.faults.policy);
  EXPECT_EQ(m.shed_all, 0u);  // no overload options: nothing may be shed
  EXPECT_GE(m.availability, 0.0);
  EXPECT_LE(m.availability, 1.0);
  if (!m.latency.empty()) {
    EXPECT_GE(m.latency.min(), 0.0);
  }
  if (!m.outage_latency.empty()) {
    EXPECT_GE(m.outage_latency.min(), 0.0);
  }
  EXPECT_LE(m.outage_latency.count(), m.latency.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFaultTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

// Overload fuzz: random bounded-queue limits, shedding policy, admission
// gates and scripted rate bursts layered on top of a random fault schedule.
// Whatever is shed, the full conservation identity
//   arrived == completed_all + failed_all + shed_all + in_flight_end
// must hold, and the replicated runner's per-replication counters must be
// bit-identical across thread counts even while tasks are being dropped.
class FuzzOverloadTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzOverloadTest, SheddingKeepsConservation) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 4 + (seed % 4);
  copts.num_servers = 2;
  copts.mean_arrival_rate = 1.0 + 0.5 * static_cast<double>(seed % 4);
  const ProblemInstance instance(clusters::campus(copts));
  const auto& topo = instance.topology();
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Rng rng(seed * 104729 + 7);
  Simulator::Options sopts;
  sopts.horizon = 15.0;
  sopts.warmup = 1.0;
  sopts.seed = seed;
  const OverloadPolicy opolicies[] = {OverloadPolicy::Block,
                                      OverloadPolicy::ShedNewest,
                                      OverloadPolicy::ShedExpired};
  sopts.overload.policy = opolicies[seed % 3];
  sopts.overload.device_queue_limit = 2 + seed % 10;
  sopts.overload.upload_queue_limit = rng.uniform() < 0.3 ? 0 : 1 + seed % 6;
  sopts.overload.server_queue_limit = rng.uniform() < 0.3 ? 0 : 1 + seed % 6;
  double t = 1.0 + rng.exponential(2.0);
  for (std::uint64_t b = 0; b <= seed % 3; ++b) {
    const double width = 1.0 + rng.exponential(3.0);
    sopts.rate_bursts.push_back(
        RateBurst{t, t + width, 4.0 + 20.0 * rng.uniform()});
    t += width + rng.exponential(2.0);
  }
  if (rng.uniform() < 0.7) {
    const double down = 2.0 + rng.exponential(3.0);
    sopts.faults.schedule = FaultSchedule::server_crash(
        static_cast<std::int32_t>(seed % topo.servers().size()), down,
        down + rng.exponential(3.0));
  }
  const FaultPolicy policies[] = {FaultPolicy::Drop,
                                  FaultPolicy::RetryOnDevice,
                                  FaultPolicy::RetryOffload};
  sopts.faults.policy = policies[(seed / 3) % 3];

  Simulator sim(instance, d, sopts);
  // A random per-device admission gate guarantees shedding activity even
  // when the random limits never fill.
  std::vector<double> gate;
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    gate.push_back(0.3 + 0.5 * rng.uniform());
  }
  sim.set_admission(gate);
  const auto m = sim.run();
  EXPECT_EQ(m.arrived,
            m.completed_all + m.failed_all + m.shed_all + m.in_flight_end)
      << "overload policy=" << static_cast<int>(sopts.overload.policy)
      << " fault policy=" << static_cast<int>(sopts.faults.policy);
  EXPECT_GT(m.shed_all, 0u);
  EXPECT_GT(m.completed, 0u);
  if (!m.latency.empty()) {
    EXPECT_GE(m.latency.min(), 0.0);
  }
}

TEST_P(FuzzOverloadTest, ReplicatedCountersThreadCountInvariant) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 4;
  copts.num_servers = 2;
  copts.mean_arrival_rate = 2.0;
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  ScenarioRunner::Options ropts;
  ropts.replications = 4;
  ropts.require_completions = false;
  ropts.sim.horizon = 10.0;
  ropts.sim.warmup = 1.0;
  ropts.sim.seed = seed;
  ropts.sim.overload.policy =
      seed % 2 ? OverloadPolicy::ShedNewest : OverloadPolicy::ShedExpired;
  ropts.sim.overload.device_queue_limit = 3;
  ropts.sim.overload.upload_queue_limit = 2;
  ropts.sim.overload.server_queue_limit = 2;
  ropts.sim.rate_bursts.push_back(RateBurst{2.0, 8.0, 30.0});
  ropts.sim.faults.schedule = FaultSchedule::server_crash(0, 4.0, 6.0);

  ropts.threads = 1;
  const auto m1 = ScenarioRunner(instance, d, ropts).run();
  ropts.threads = 4;
  const auto m4 = ScenarioRunner(instance, d, ropts).run();

  // The burst over tight limits must actually shed — otherwise this checks
  // nothing new over the fault fuzz.
  EXPECT_GT(m1.shed + m1.expired, 0u);
  EXPECT_EQ(m1.arrived, m4.arrived);
  EXPECT_EQ(m1.shed, m4.shed);
  EXPECT_EQ(m1.expired, m4.expired);
  ASSERT_EQ(m1.replications.size(), m4.replications.size());
  for (std::size_t r = 0; r < m1.replications.size(); ++r) {
    const auto& a = m1.replications[r];
    const auto& b = m4.replications[r];
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.expired, b.expired);
    EXPECT_EQ(a.arrived,
              a.completed_all + a.failed_all + a.shed_all + a.in_flight_end);
    if (!a.latency.empty()) {
      EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOverloadTest,
                         ::testing::Values(7, 19, 31, 43, 57, 71, 83, 97));

// ---------------------------------------------------------------------------
// Event-queue fuzz: the calendar queue against the std::priority_queue-backed
// reference. Two layers: raw op streams (queue-level oracle on adversarial
// time distributions) and full simulations on random topologies with faults
// and overload in play (every event the DES can generate, both impls, same
// answer). Complements the pinned scenarios in sim/perf_equivalence_test.cpp
// with randomized coverage.

class FuzzQueueTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzQueueTest, OpStreamMatchesHeapOracle) {
  const std::uint64_t seed = GetParam();
  EventQueue cal(EventQueueImpl::kCalendar);
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  Rng rng(seed * 7919 + 1);
  double now = 0.0;
  for (int step = 0; step < 6000; ++step) {
    // Bursty phases: long push runs then long drain runs, plus clustered
    // timestamps — the access pattern that defeats naive bucket widths.
    const bool push_phase = ((step / 64) + seed) % 3 != 0;
    if ((push_phase && rng.uniform() < 0.8) || cal.empty()) {
      double t = now;
      const double v = rng.uniform();
      if (v < 0.3) {
        t = now + rng.exponential(1.0);
      } else if (v < 0.6) {
        t = now + 1e-6 * rng.exponential(1.0);  // micro-spaced cluster
      } else if (v < 0.8) {
        t = now;  // exact tie, seq break
      } else {
        t = now + 500.0 + 100.0 * rng.uniform();  // far outlier
      }
      cal.push(t, static_cast<std::uint32_t>(step % 5), step,
               static_cast<std::uint64_t>(step));
      heap.push(t, static_cast<std::uint32_t>(step % 5), step,
                static_cast<std::uint64_t>(step));
    } else {
      const SimEvent a = cal.pop_min();
      const SimEvent b = heap.pop_min();
      ASSERT_EQ(a.time, b.time) << "seed " << seed << " step " << step;
      ASSERT_EQ(a.seq, b.seq) << "seed " << seed << " step " << step;
      ASSERT_EQ(a.a, b.a);
      ASSERT_GE(a.time, now);
      now = a.time;
    }
    ASSERT_EQ(cal.size(), heap.size());
  }
  while (!cal.empty()) {
    const SimEvent a = cal.pop_min();
    const SimEvent b = heap.pop_min();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(heap.empty());
}

TEST_P(FuzzQueueTest, RandomScenarioBitIdenticalAcrossQueueImpls) {
  const std::uint64_t seed = GetParam();
  clusters::CampusOptions copts;
  copts.seed = seed;
  copts.num_devices = 4 + (seed % 5);
  copts.num_servers = 2 + (seed % 2);
  copts.mean_arrival_rate = 1.0 + 0.5 * static_cast<double>(seed % 5);
  const ProblemInstance instance(clusters::campus(copts));
  const auto d = JointOptimizer(fast_opts()).optimize(instance);

  Simulator::Options sopts;
  sopts.horizon = 25.0;
  sopts.warmup = 2.0;
  sopts.seed = seed;
  if (seed % 2) {
    sopts.faults.schedule = FaultSchedule::server_crash(
        0, 5.0 + static_cast<double>(seed % 4), 12.0);
  }
  if (seed % 3 == 0) {
    sopts.overload.policy = OverloadPolicy::ShedNewest;
    sopts.overload.device_queue_limit = 3;
    sopts.overload.server_queue_limit = 2;
    sopts.rate_bursts.push_back(RateBurst{3.0, 8.0, 14.0});
  }

  sopts.event_queue = EventQueueImpl::kBinaryHeap;
  const SimMetrics heap_m = Simulator(instance, d, sopts).run();
  sopts.event_queue = EventQueueImpl::kCalendar;
  const SimMetrics cal_m = Simulator(instance, d, sopts).run();

  EXPECT_GT(heap_m.arrived, 0u);
  EXPECT_EQ(heap_m.arrived, cal_m.arrived);
  EXPECT_EQ(heap_m.completed, cal_m.completed);
  EXPECT_EQ(heap_m.failed, cal_m.failed);
  EXPECT_EQ(heap_m.shed, cal_m.shed);
  EXPECT_EQ(heap_m.expired, cal_m.expired);
  EXPECT_EQ(heap_m.deadline_satisfaction, cal_m.deadline_satisfaction);
  EXPECT_EQ(heap_m.events_processed, cal_m.events_processed);
  EXPECT_EQ(heap_m.in_flight_end, cal_m.in_flight_end);
  if (!heap_m.latency.empty()) {
    EXPECT_EQ(heap_m.latency.mean(), cal_m.latency.mean());
    EXPECT_EQ(heap_m.latency.max(), cal_m.latency.max());
  }
  ASSERT_EQ(heap_m.per_device.size(), cal_m.per_device.size());
  for (std::size_t i = 0; i < heap_m.per_device.size(); ++i) {
    EXPECT_EQ(heap_m.per_device[i].completed, cal_m.per_device[i].completed);
    EXPECT_EQ(heap_m.per_device[i].failed, cal_m.per_device[i].failed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQueueTest,
                         ::testing::Values(2, 11, 23, 37, 53, 67, 89, 101));

}  // namespace
}  // namespace scalpel
