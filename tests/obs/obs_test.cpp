// Observability building blocks in isolation: the ring-buffered TaskTracer
// and its exporters (Chrome trace JSON must survive a round trip through the
// project's own JSON parser), the metrics registry, and the controller
// decision audit log.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace scalpel {
namespace {

TraceEvent ev(double t, std::uint64_t task, TraceEventType type,
              std::uint8_t arg = 0) {
  TraceEvent e;
  e.time = t;
  e.task = task;
  e.device = 0;
  e.type = type;
  e.arg = arg;
  return e;
}

TEST(TaskTracer, DisabledRecordsNothing) {
  TaskTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(1.0, 0, 0, -1, TraceEventType::kArrive);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TaskTracer, RingOverflowKeepsNewestAndCountsDropped) {
  TaskTracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(static_cast<double>(i), static_cast<std::uint64_t>(i), 0,
                  -1, TraceEventType::kArrive);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.recorded(), 10u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the surviving tail: tasks 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].task, 6 + i);
  }
}

TEST(TaskTracer, ResetRearmsAndClears) {
  TaskTracer tracer(2);
  tracer.record(0.0, 0, 0, -1, TraceEventType::kArrive);
  tracer.reset(8);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.capacity(), 8u);
  tracer.reset(0);
  EXPECT_FALSE(tracer.enabled());
}

TEST(TraceExport, ChromeJsonRoundTripsThroughParser) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0.001, 7, TraceEventType::kArrive));
  events.push_back(ev(0.002, 7, TraceEventType::kExecStart,
                      static_cast<std::uint8_t>(TraceStage::kDevice)));
  events.push_back(ev(0.004, 7, TraceEventType::kExecEnd,
                      static_cast<std::uint8_t>(TraceStage::kDevice)));
  events.push_back(ev(0.005, 7, TraceEventType::kComplete));

  const Json doc = trace_to_chrome_json(events);
  const Json parsed = Json::parse(doc.dump_pretty());
  const Json& arr = parsed.at("traceEvents");
  ASSERT_EQ(arr.size(), 4u);
  // The exec pair renders as a B/E duration span on pid=device, tid=task.
  EXPECT_EQ(arr.at(1).at("ph").as_string(), "B");
  EXPECT_EQ(arr.at(2).at("ph").as_string(), "E");
  EXPECT_EQ(arr.at(1).at("name").as_string(), "device-exec");
  EXPECT_EQ(arr.at(1).at("tid").as_int(), 7);
  EXPECT_DOUBLE_EQ(arr.at(1).at("ts").as_number(), 2000.0);  // µs
  // Instants keep the lifecycle name and thread scope.
  EXPECT_EQ(arr.at(0).at("ph").as_string(), "i");
  EXPECT_EQ(arr.at(0).at("args").at("event").as_string(), "arrive");
  EXPECT_EQ(arr.at(3).at("args").at("event").as_string(), "complete");
}

TEST(TraceExport, TracerOverloadReportsDrops) {
  TaskTracer tracer(1);
  tracer.record(0.0, 0, 0, -1, TraceEventType::kArrive);
  tracer.record(1.0, 1, 0, -1, TraceEventType::kArrive);
  const Json doc = Json::parse(trace_to_chrome_json(tracer).dump());
  EXPECT_EQ(doc.at("droppedEvents").as_int(), 1);
  EXPECT_EQ(doc.at("traceEvents").size(), 1u);
}

TEST(TraceExport, TableHasOneRowPerEvent) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0.5, 1, TraceEventType::kArrive));
  events.push_back(ev(0.75, 1, TraceEventType::kShed));
  const Table t = trace_to_table(events);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("arrive"), std::string::npos);
  EXPECT_NE(csv.find("shed"), std::string::npos);
}

TEST(TraceExport, EventCountsIndexByType) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0.0, 0, TraceEventType::kArrive));
  events.push_back(ev(0.0, 1, TraceEventType::kArrive));
  events.push_back(ev(1.0, 0, TraceEventType::kComplete));
  const auto counts = trace_event_counts(events);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceEventType::kArrive)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceEventType::kComplete)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceEventType::kFail)], 0u);
}

TEST(MetricsRegistry, HandlesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a.count");
  a.inc();
  // Later insertions must not invalidate the earlier handle.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  a.inc(2);
  EXPECT_EQ(reg.counter("a.count").value(), 3u);
  Gauge& g = reg.gauge("g.depth");
  g.set(4.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g.depth").value(), 4.5);
}

TEST(MetricsRegistry, HistogramQuantilesInterpolate) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("lat", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.p50(), 50.0, 1.5);
  EXPECT_NEAR(h.p95(), 95.0, 1.5);
  EXPECT_NEAR(h.p99(), 99.0, 1.5);
  EXPECT_EQ(h.total(), 100u);
  // Re-requesting returns the same histogram, not a fresh one.
  EXPECT_EQ(reg.histogram("lat", 0.0, 1.0, 2).total(), 100u);
}

TEST(MetricsRegistry, JsonExportRoundTrips) {
  MetricsRegistry reg;
  reg.counter("sim.task.arrived").inc(12);
  reg.gauge("sim.availability").set(0.75);
  reg.histogram("sim.task.latency_seconds", 0.0, 1.0, 10).add(0.25);
  const Json doc = Json::parse(reg.to_json().dump_pretty());
  EXPECT_EQ(doc.at("counters").at("sim.task.arrived").as_int(), 12);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sim.availability").as_number(), 0.75);
  const Json& h = doc.at("histograms").at("sim.task.latency_seconds");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_EQ(h.at("bins").size(), 10u);
}

TEST(AuditLog, StampsRecordsWithTheAdvancedClock) {
  DecisionAuditLog log;
  log.advance_time(12.5);
  AuditRecord r;
  r.cause = AuditCause::kRungDown;
  r.detail = "device 0 rate 9.10/5.00 tasks/s";
  log.append(r);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log.records().front().time, 12.5);
  EXPECT_EQ(std::string(audit_cause_name(log.records().front().cause)),
            "rung_down");
}

TEST(AuditLog, EvictsOldestBeyondCapacity) {
  DecisionAuditLog log(2);
  for (int i = 0; i < 3; ++i) {
    log.advance_time(static_cast<double>(i));
    log.append(AuditRecord{});
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_DOUBLE_EQ(log.records().front().time, 1.0);
}

TEST(AuditLog, WraparoundKeepsExactlyCapacityNewestInOrder) {
  DecisionAuditLog log(4);
  // Push far past capacity, several wraps' worth, with distinguishable
  // payloads so eviction order is observable, not just counts.
  for (int i = 0; i < 19; ++i) {
    log.advance_time(static_cast<double>(i));
    AuditRecord r;
    r.cause = AuditCause::kResolve;
    r.detail = "obs " + std::to_string(i);
    log.append(r);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 15u);
  // Survivors are the newest four, oldest-first.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(log.records()[k].time, static_cast<double>(15 + k));
    EXPECT_EQ(log.records()[k].detail, "obs " + std::to_string(15 + k));
  }
}

TEST(AuditLog, ExportsStayWellFormedAfterOverflow) {
  DecisionAuditLog log(3);
  for (int i = 0; i < 10; ++i) {
    log.advance_time(static_cast<double>(i));
    AuditRecord r;
    r.cause = i % 2 == 0 ? AuditCause::kRungDown : AuditCause::kRungUp;
    r.rung_before = static_cast<std::size_t>(i);
    r.rung_after = static_cast<std::size_t>(i + 1);
    log.append(r);
  }
  // JSON round-trips through the parser and holds only the survivors.
  const Json doc = Json::parse(log.to_json().dump_pretty());
  ASSERT_EQ(doc.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at(0).at("time").as_number(), 7.0);
  EXPECT_EQ(doc.at(2).at("cause").as_string(), "rung_up");
  EXPECT_DOUBLE_EQ(doc.at(2).at("rung_after").as_number(), 10.0);
  // Table view: one row per surviving record (plus header in CSV form).
  EXPECT_EQ(log.to_table().rows(), 3u);
}

TEST(AuditLog, ClearResetsRecordsAndDropCounter) {
  DecisionAuditLog log(2);
  for (int i = 0; i < 5; ++i) log.append(AuditRecord{});
  EXPECT_EQ(log.dropped(), 3u);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.dropped(), 0u);
  log.append(AuditRecord{});
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(AuditLog, NamesNewRobustnessCauses) {
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kTelemetryRejected)),
            "telemetry_rejected");
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kSolverTimeout)),
            "solver_timeout");
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kPlanRejected)),
            "plan_rejected");
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kFallbackApplied)),
            "fallback_applied");
}

TEST(AuditLog, JsonExportRoundTrips) {
  DecisionAuditLog log;
  log.advance_time(3.0);
  AuditRecord r;
  r.cause = AuditCause::kThrottleOn;
  r.detail = "ladder exhausted";
  r.rung_before = 4;
  r.rung_after = 4;
  r.admit_before = 1.0;
  r.admit_after = 0.6;
  log.append(r);
  const Json doc = Json::parse(log.to_json().dump_pretty());
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.at(0).at("cause").as_string(), "throttle_on");
  EXPECT_DOUBLE_EQ(doc.at(0).at("admit_after").as_number(), 0.6);
  EXPECT_DOUBLE_EQ(doc.at(0).at("time").as_number(), 3.0);
}

TEST(MetricsRegistry, HistogramQuantileBinEdgesInterpolate) {
  // 100 bins of width 1, one sample per bin at midpoint position: the j-th
  // sample resolves to exactly j + 0.5 under the in-bin midpoint convention.
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("edge", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // q=0 / q=1 are the first and last samples INSIDE their bins — the old
  // code snapped them to the outer bin boundaries (0.0 and 100.0), biasing
  // extreme percentiles outward by half a bin step.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.5);
  // p50 with an even count interpolates midway between samples 49 and 50.
  EXPECT_DOUBLE_EQ(h.p50(), 50.0);
  // Continuous rank: q=0.99 over 100 samples is rank 98.01, interpolating
  // just past sample 98.
  EXPECT_NEAR(h.p99(), 98.51, 1e-9);
}

TEST(MetricsRegistry, HistogramQuantileSingleSample) {
  // One sample in one bin: every quantile is that sample's in-bin midpoint,
  // never the bin's lower or upper edge.
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("single", 0.0, 10.0, 10);
  h.add(5.2);  // lands in bin [5, 6)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.5);
}

TEST(MetricsRegistry, HistogramQuantileSkewedMassStaysInsideBins) {
  // 9 samples in the first bin, 1 in the last: p50 stays inside bin 0 and
  // p100 inside the last bin; no quantile escapes the occupied bins.
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("skew", 0.0, 10.0, 10);
  for (int i = 0; i < 9; ++i) h.add(0.5);
  h.add(9.5);
  const double p50 = h.p50();
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 1.0);
  EXPECT_GT(h.quantile(1.0), 9.0);
  EXPECT_LT(h.quantile(1.0), 10.0);
}

EngineSample es(double t, std::uint64_t done, std::uint64_t met,
                std::uint64_t total) {
  EngineSample s;
  s.time = t;
  s.arrived = done + 3;
  s.completed = done;
  s.deadline_met = met;
  s.deadline_total = total;
  s.in_flight = 3.0;
  s.queue_depth = 1.0;
  return s;
}

TEST(TimeSeriesRecorder, ColumnsFreezeWithSourcesAndSampleRows) {
  TimeSeriesRecorder rec(8);
  double price = 1.5;
  std::uint64_t epochs = 0;
  rec.register_gauge("ctrl.price", [&] { return price; });
  rec.register_counter("ctrl.epochs", [&] {
    return static_cast<double>(epochs);
  });
  rec.sample(es(1.0, 10, 9, 10));
  epochs = 2;
  price = 2.5;
  rec.sample(es(2.0, 20, 18, 20));

  ASSERT_EQ(rec.size(), 2u);
  // Layout: time first, then built-in engine columns, then sources in
  // registration order.
  EXPECT_EQ(rec.columns().front(), "time");
  const std::size_t price_col = rec.column_index("ctrl.price");
  const std::size_t epoch_col = rec.column_index("ctrl.epochs");
  EXPECT_FALSE(rec.cumulative()[price_col]);
  EXPECT_TRUE(rec.cumulative()[epoch_col]);
  EXPECT_TRUE(rec.cumulative()[rec.column_index("sim.completed")]);
  EXPECT_FALSE(rec.cumulative()[rec.column_index("sim.in_flight")]);
  EXPECT_DOUBLE_EQ(rec.value(0, price_col), 1.5);
  EXPECT_DOUBLE_EQ(rec.value(1, price_col), 2.5);
  EXPECT_DOUBLE_EQ(rec.value(1, epoch_col), 2.0);
  EXPECT_DOUBLE_EQ(rec.last_time(), 2.0);
}

TEST(TimeSeriesRecorder, RingEvictsOldestAndWindowDeltaDifferences) {
  TimeSeriesRecorder rec(4);
  for (int i = 1; i <= 6; ++i) {
    rec.sample(es(static_cast<double>(i),
                  static_cast<std::uint64_t>(10 * i),
                  static_cast<std::uint64_t>(9 * i),
                  static_cast<std::uint64_t>(10 * i)));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  // Oldest retained row is sample 3 (time 3.0).
  EXPECT_DOUBLE_EQ(rec.value(0, 0), 3.0);
  const std::size_t done = rec.column_index("sim.completed");
  // Trailing 2 s window: newest (60 at t=6) minus the newest row with
  // time <= 4 (40 at t=4).
  EXPECT_DOUBLE_EQ(rec.window_delta(done, 2.0), 20.0);
  // Window covering more than the retained series falls back to the
  // run-start baseline of 0.
  EXPECT_DOUBLE_EQ(rec.window_delta(done, 100.0), 60.0);
}

TEST(TimeSeriesRecorder, CursorBaseRowMatchesSearchEverywhere) {
  TimeSeriesRecorder rec(8);
  std::uint64_t cursors[3] = {0, 0, 0};
  const double windows[3] = {1.5, 4.0, 100.0};
  for (int i = 1; i <= 24; ++i) {
    rec.sample(es(0.5 * i, static_cast<std::uint64_t>(i),
                  static_cast<std::uint64_t>(i),
                  static_cast<std::uint64_t>(i)));
    // The cursor variant must agree with the binary search at every step,
    // through ring wrap and eviction of rows the cursor pointed into.
    for (int w = 0; w < 3; ++w) {
      EXPECT_EQ(rec.window_base_row_from(&cursors[w], windows[w]),
                rec.window_base_row(windows[w]))
          << "sample " << i << " window " << windows[w];
    }
  }
}

TEST(TimeSeriesRecorder, ClearKeepsSourcesAndExportsRoundTrip) {
  TimeSeriesRecorder rec(4);
  rec.register_gauge("ctrl.price", [] { return 7.0; });
  rec.sample(es(1.0, 1, 1, 1));
  rec.clear();
  EXPECT_TRUE(rec.empty());
  // Sources survive clear(): the next sample re-freezes the same layout.
  rec.sample(es(2.0, 2, 2, 2));
  EXPECT_DOUBLE_EQ(rec.value(0, rec.column_index("ctrl.price")), 7.0);

  const Json doc = Json::parse(rec.to_json().dump_pretty());
  EXPECT_EQ(doc.at("columns").size(), rec.columns().size());
  ASSERT_EQ(doc.at("rows").size(), 1u);
  EXPECT_DOUBLE_EQ(doc.at("rows").at(0).at(0).as_number(), 2.0);
  EXPECT_EQ(rec.to_table().rows(), 1u);
}

TEST(SloMonitor, BurnRateMathAndTransitionsHitTheAuditLog) {
  TimeSeriesRecorder rec(64);
  DecisionAuditLog audit;
  SloMonitor slo(&rec, &audit);
  SloSpec spec;
  spec.name = "deadline";
  spec.good = "sim.deadline_met";
  spec.total = "sim.deadline_total";
  spec.objective = 0.9;
  spec.windows = {{4.0, 1.0}};
  slo.add(spec);

  // Healthy phase: 100% of deadlines met, burn 0, no alert.
  std::uint64_t met = 0;
  std::uint64_t total = 0;
  double t = 0.0;
  for (int i = 0; i < 8; ++i) {
    t += 1.0;
    met += 10;
    total += 10;
    rec.sample(es(t, total, met, total));
    slo.evaluate();
  }
  EXPECT_FALSE(slo.alerting(0));
  EXPECT_DOUBLE_EQ(slo.burn_rate(0, 0), 0.0);

  // Degraded phase: 20% of deadlines missed burns the 10% error budget at
  // exactly 2.0x, crossing the 1.0x threshold.
  for (int i = 0; i < 8; ++i) {
    t += 1.0;
    met += 8;
    total += 10;
    rec.sample(es(t, total, met, total));
    slo.evaluate();
  }
  EXPECT_TRUE(slo.alerting(0));
  EXPECT_NEAR(slo.burn_rate(0, 0), 2.0, 1e-9);
  EXPECT_EQ(slo.alerts_started(), 1u);

  // Recovery: burn recedes below threshold, alert stops.
  for (int i = 0; i < 8; ++i) {
    t += 1.0;
    met += 10;
    total += 10;
    rec.sample(es(t, total, met, total));
    slo.evaluate();
  }
  EXPECT_FALSE(slo.alerting(0));
  EXPECT_EQ(slo.alerts_stopped(), 1u);

  // Both transitions landed in the audit log, stamped with recorder time
  // and carrying the human-readable burn summary.
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit.records()[0].cause, AuditCause::kSloBurnStart);
  EXPECT_EQ(audit.records()[1].cause, AuditCause::kSloBurnStop);
  EXPECT_NE(audit.records()[0].detail.find("slo deadline"),
            std::string::npos);
  EXPECT_GT(audit.records()[1].time, audit.records()[0].time);
}

TEST(SloMonitor, AllWindowsMustBurnBeforeAlerting) {
  // Fast 2 s window at 1.0x plus sustained 16 s window at 0.5x: a short
  // blip trips the fast window but not the sustained one — no alert.
  TimeSeriesRecorder rec(64);
  SloMonitor slo(&rec);
  SloSpec spec;
  spec.name = "deadline";
  spec.good = "sim.deadline_met";
  spec.total = "sim.deadline_total";
  spec.objective = 0.9;
  spec.windows = {{2.0, 1.0}, {16.0, 0.5}};
  slo.add(spec);

  std::uint64_t met = 0;
  std::uint64_t total = 0;
  double t = 0.0;
  for (int i = 0; i < 16; ++i) {
    t += 1.0;
    met += 10;
    total += 10;
    rec.sample(es(t, total, met, total));
    slo.evaluate();
  }
  // One bad second: the 2 s window burns at 1.0x+, the 16 s window barely.
  t += 1.0;
  met += 5;
  total += 10;
  rec.sample(es(t, total, met, total));
  slo.evaluate();
  EXPECT_GE(slo.burn_rate(0, 0), 1.0);
  EXPECT_LT(slo.burn_rate(0, 1), 0.5);
  EXPECT_FALSE(slo.alerting(0));
  EXPECT_EQ(slo.alerts_started(), 0u);
}

CtrlSpan span(double t, std::uint64_t corr, CtrlSpanEvent event) {
  CtrlSpan s;
  s.time = t;
  s.corr = corr;
  s.epoch = 3;
  s.price = 0.25;
  s.from = 0;
  s.to = 2;
  s.event = event;
  s.msg = 1;
  return s;
}

TEST(CtrlTracer, DisabledRecordsNothingEnabledRingEvicts) {
  CtrlTracer off;
  EXPECT_FALSE(off.enabled());
  off.record(span(0.0, 1, CtrlSpanEvent::kSent));
  EXPECT_EQ(off.recorded(), 0u);

  CtrlTracer tracer(3);
  for (int i = 0; i < 7; ++i) {
    tracer.record(span(static_cast<double>(i),
                       static_cast<std::uint64_t>(i), CtrlSpanEvent::kSent));
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 4u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].corr, 4 + i);  // newest three, oldest first
  }
  tracer.reset(0);
  EXPECT_FALSE(tracer.enabled());
}

TEST(CtrlSpans, ChromeEventsCarryCausalIdentityAndCounts) {
  std::vector<CtrlSpan> spans;
  spans.push_back(span(0.010, 42, CtrlSpanEvent::kSent));
  spans.push_back(span(0.020, 42, CtrlSpanEvent::kDropped));
  spans.push_back(span(0.030, 42, CtrlSpanEvent::kRegrant));
  spans.push_back(span(0.040, 42, CtrlSpanEvent::kDelivered));
  spans.push_back(span(0.040, 42, CtrlSpanEvent::kAdopted));

  const Json arr = Json::parse(ctrl_spans_to_chrome_events(spans).dump());
  ASSERT_EQ(arr.size(), 5u);
  // All events of one causal chain share pid=kCtrlChromePid and tid=corr,
  // so Chrome renders mint -> drop -> re-grant -> adopt as one lane.
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr.at(i).at("pid").as_int(), kCtrlChromePid);
    EXPECT_EQ(arr.at(i).at("tid").as_int(), 42);
    EXPECT_EQ(arr.at(i).at("args").at("epoch").as_int(), 3);
    EXPECT_DOUBLE_EQ(arr.at(i).at("args").at("price").as_number(), 0.25);
  }
  EXPECT_DOUBLE_EQ(arr.at(0).at("ts").as_number(), 10000.0);  // µs
  EXPECT_EQ(arr.at(2).at("args").at("span").as_string(), "regrant");
  EXPECT_EQ(arr.at(2).at("name").as_string(), "slice_grant:regrant");

  const auto counts = ctrl_span_counts(spans);
  EXPECT_EQ(counts[static_cast<std::size_t>(CtrlSpanEvent::kSent)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(CtrlSpanEvent::kAdopted)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(CtrlSpanEvent::kDeadLetter)], 0u);
}

TEST(CtrlSpans, MergedTraceSplicesTaskAndCtrlLanes) {
  TaskTracer tasks(8);
  tasks.record(0.001, 7, 0, -1, TraceEventType::kArrive);
  CtrlTracer ctrl(8);
  ctrl.record(span(0.002, 9, CtrlSpanEvent::kSent));
  const Json doc = Json::parse(merged_trace_to_chrome_json(tasks, ctrl).dump());
  const Json& arr = doc.at("traceEvents");
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(doc.at("droppedEvents").as_int(), 0);
  EXPECT_EQ(doc.at("droppedSpans").as_int(), 0);
  // Task lane keeps its device pid; the ctrl lane sits at kCtrlChromePid.
  EXPECT_LT(arr.at(0).at("pid").as_int(), kCtrlChromePid);
  EXPECT_EQ(arr.at(1).at("pid").as_int(), kCtrlChromePid);
  const Table t = ctrl_spans_to_table(ctrl.snapshot());
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace scalpel
