// Observability building blocks in isolation: the ring-buffered TaskTracer
// and its exporters (Chrome trace JSON must survive a round trip through the
// project's own JSON parser), the metrics registry, and the controller
// decision audit log.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace scalpel {
namespace {

TraceEvent ev(double t, std::uint64_t task, TraceEventType type,
              std::uint8_t arg = 0) {
  TraceEvent e;
  e.time = t;
  e.task = task;
  e.device = 0;
  e.type = type;
  e.arg = arg;
  return e;
}

TEST(TaskTracer, DisabledRecordsNothing) {
  TaskTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(1.0, 0, 0, -1, TraceEventType::kArrive);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TaskTracer, RingOverflowKeepsNewestAndCountsDropped) {
  TaskTracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(static_cast<double>(i), static_cast<std::uint64_t>(i), 0,
                  -1, TraceEventType::kArrive);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.recorded(), 10u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the surviving tail: tasks 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].task, 6 + i);
  }
}

TEST(TaskTracer, ResetRearmsAndClears) {
  TaskTracer tracer(2);
  tracer.record(0.0, 0, 0, -1, TraceEventType::kArrive);
  tracer.reset(8);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.capacity(), 8u);
  tracer.reset(0);
  EXPECT_FALSE(tracer.enabled());
}

TEST(TraceExport, ChromeJsonRoundTripsThroughParser) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0.001, 7, TraceEventType::kArrive));
  events.push_back(ev(0.002, 7, TraceEventType::kExecStart,
                      static_cast<std::uint8_t>(TraceStage::kDevice)));
  events.push_back(ev(0.004, 7, TraceEventType::kExecEnd,
                      static_cast<std::uint8_t>(TraceStage::kDevice)));
  events.push_back(ev(0.005, 7, TraceEventType::kComplete));

  const Json doc = trace_to_chrome_json(events);
  const Json parsed = Json::parse(doc.dump_pretty());
  const Json& arr = parsed.at("traceEvents");
  ASSERT_EQ(arr.size(), 4u);
  // The exec pair renders as a B/E duration span on pid=device, tid=task.
  EXPECT_EQ(arr.at(1).at("ph").as_string(), "B");
  EXPECT_EQ(arr.at(2).at("ph").as_string(), "E");
  EXPECT_EQ(arr.at(1).at("name").as_string(), "device-exec");
  EXPECT_EQ(arr.at(1).at("tid").as_int(), 7);
  EXPECT_DOUBLE_EQ(arr.at(1).at("ts").as_number(), 2000.0);  // µs
  // Instants keep the lifecycle name and thread scope.
  EXPECT_EQ(arr.at(0).at("ph").as_string(), "i");
  EXPECT_EQ(arr.at(0).at("args").at("event").as_string(), "arrive");
  EXPECT_EQ(arr.at(3).at("args").at("event").as_string(), "complete");
}

TEST(TraceExport, TracerOverloadReportsDrops) {
  TaskTracer tracer(1);
  tracer.record(0.0, 0, 0, -1, TraceEventType::kArrive);
  tracer.record(1.0, 1, 0, -1, TraceEventType::kArrive);
  const Json doc = Json::parse(trace_to_chrome_json(tracer).dump());
  EXPECT_EQ(doc.at("droppedEvents").as_int(), 1);
  EXPECT_EQ(doc.at("traceEvents").size(), 1u);
}

TEST(TraceExport, TableHasOneRowPerEvent) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0.5, 1, TraceEventType::kArrive));
  events.push_back(ev(0.75, 1, TraceEventType::kShed));
  const Table t = trace_to_table(events);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("arrive"), std::string::npos);
  EXPECT_NE(csv.find("shed"), std::string::npos);
}

TEST(TraceExport, EventCountsIndexByType) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0.0, 0, TraceEventType::kArrive));
  events.push_back(ev(0.0, 1, TraceEventType::kArrive));
  events.push_back(ev(1.0, 0, TraceEventType::kComplete));
  const auto counts = trace_event_counts(events);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceEventType::kArrive)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceEventType::kComplete)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceEventType::kFail)], 0u);
}

TEST(MetricsRegistry, HandlesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a.count");
  a.inc();
  // Later insertions must not invalidate the earlier handle.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  a.inc(2);
  EXPECT_EQ(reg.counter("a.count").value(), 3u);
  Gauge& g = reg.gauge("g.depth");
  g.set(4.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g.depth").value(), 4.5);
}

TEST(MetricsRegistry, HistogramQuantilesInterpolate) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("lat", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.p50(), 50.0, 1.5);
  EXPECT_NEAR(h.p95(), 95.0, 1.5);
  EXPECT_NEAR(h.p99(), 99.0, 1.5);
  EXPECT_EQ(h.total(), 100u);
  // Re-requesting returns the same histogram, not a fresh one.
  EXPECT_EQ(reg.histogram("lat", 0.0, 1.0, 2).total(), 100u);
}

TEST(MetricsRegistry, JsonExportRoundTrips) {
  MetricsRegistry reg;
  reg.counter("sim.task.arrived").inc(12);
  reg.gauge("sim.availability").set(0.75);
  reg.histogram("sim.task.latency_seconds", 0.0, 1.0, 10).add(0.25);
  const Json doc = Json::parse(reg.to_json().dump_pretty());
  EXPECT_EQ(doc.at("counters").at("sim.task.arrived").as_int(), 12);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sim.availability").as_number(), 0.75);
  const Json& h = doc.at("histograms").at("sim.task.latency_seconds");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_EQ(h.at("bins").size(), 10u);
}

TEST(AuditLog, StampsRecordsWithTheAdvancedClock) {
  DecisionAuditLog log;
  log.advance_time(12.5);
  AuditRecord r;
  r.cause = AuditCause::kRungDown;
  r.detail = "device 0 rate 9.10/5.00 tasks/s";
  log.append(r);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log.records().front().time, 12.5);
  EXPECT_EQ(std::string(audit_cause_name(log.records().front().cause)),
            "rung_down");
}

TEST(AuditLog, EvictsOldestBeyondCapacity) {
  DecisionAuditLog log(2);
  for (int i = 0; i < 3; ++i) {
    log.advance_time(static_cast<double>(i));
    log.append(AuditRecord{});
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_DOUBLE_EQ(log.records().front().time, 1.0);
}

TEST(AuditLog, WraparoundKeepsExactlyCapacityNewestInOrder) {
  DecisionAuditLog log(4);
  // Push far past capacity, several wraps' worth, with distinguishable
  // payloads so eviction order is observable, not just counts.
  for (int i = 0; i < 19; ++i) {
    log.advance_time(static_cast<double>(i));
    AuditRecord r;
    r.cause = AuditCause::kResolve;
    r.detail = "obs " + std::to_string(i);
    log.append(r);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 15u);
  // Survivors are the newest four, oldest-first.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(log.records()[k].time, static_cast<double>(15 + k));
    EXPECT_EQ(log.records()[k].detail, "obs " + std::to_string(15 + k));
  }
}

TEST(AuditLog, ExportsStayWellFormedAfterOverflow) {
  DecisionAuditLog log(3);
  for (int i = 0; i < 10; ++i) {
    log.advance_time(static_cast<double>(i));
    AuditRecord r;
    r.cause = i % 2 == 0 ? AuditCause::kRungDown : AuditCause::kRungUp;
    r.rung_before = static_cast<std::size_t>(i);
    r.rung_after = static_cast<std::size_t>(i + 1);
    log.append(r);
  }
  // JSON round-trips through the parser and holds only the survivors.
  const Json doc = Json::parse(log.to_json().dump_pretty());
  ASSERT_EQ(doc.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at(0).at("time").as_number(), 7.0);
  EXPECT_EQ(doc.at(2).at("cause").as_string(), "rung_up");
  EXPECT_DOUBLE_EQ(doc.at(2).at("rung_after").as_number(), 10.0);
  // Table view: one row per surviving record (plus header in CSV form).
  EXPECT_EQ(log.to_table().rows(), 3u);
}

TEST(AuditLog, ClearResetsRecordsAndDropCounter) {
  DecisionAuditLog log(2);
  for (int i = 0; i < 5; ++i) log.append(AuditRecord{});
  EXPECT_EQ(log.dropped(), 3u);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.dropped(), 0u);
  log.append(AuditRecord{});
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(AuditLog, NamesNewRobustnessCauses) {
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kTelemetryRejected)),
            "telemetry_rejected");
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kSolverTimeout)),
            "solver_timeout");
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kPlanRejected)),
            "plan_rejected");
  EXPECT_EQ(std::string(audit_cause_name(AuditCause::kFallbackApplied)),
            "fallback_applied");
}

TEST(AuditLog, JsonExportRoundTrips) {
  DecisionAuditLog log;
  log.advance_time(3.0);
  AuditRecord r;
  r.cause = AuditCause::kThrottleOn;
  r.detail = "ladder exhausted";
  r.rung_before = 4;
  r.rung_after = 4;
  r.admit_before = 1.0;
  r.admit_after = 0.6;
  log.append(r);
  const Json doc = Json::parse(log.to_json().dump_pretty());
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.at(0).at("cause").as_string(), "throttle_on");
  EXPECT_DOUBLE_EQ(doc.at(0).at("admit_after").as_number(), 0.6);
  EXPECT_DOUBLE_EQ(doc.at(0).at("time").as_number(), 3.0);
}

}  // namespace
}  // namespace scalpel
