// Profile calibration: derives a ComputeProfile for *this machine* by timing
// the real kernels, then checks how well the roofline latency model predicts
// measured whole-model execution. This is the path a deployment would use to
// fit profiles for its actual devices instead of the presets.
//
//   $ ./examples/calibrate_profile

#include <chrono>
#include <functional>
#include <cstdio>

#include "nn/executor.hpp"
#include "nn/kernels.hpp"
#include "nn/models.hpp"
#include "profile/latency_model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace scalpel;

namespace {

double time_seconds(const std::function<void()>& fn, int reps) {
  // One warmup, then best-of timing to shed scheduler noise.
  fn();
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, dt);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== Calibrating a ComputeProfile for this machine ==\n\n");
  Rng rng(7);

  // 1. Measure effective conv throughput with a representative im2col+GEMM
  // workload (64ch 3x3 over 28x28).
  const auto conv_in = Tensor::randn(Shape{64, 28, 28}, rng);
  const auto conv_w = Tensor::randn(Shape{64, 64, 3, 3}, rng);
  const auto conv_b = Tensor::zeros(Shape{64});
  const std::int64_t conv_flops = 2 * 3 * 3 * 64 * 28 * 28 * 64;
  const double conv_t = time_seconds(
      [&] { kernels::conv2d(conv_in, conv_w, conv_b, 1, 1, nullptr); }, 5);
  const double conv_gflops = static_cast<double>(conv_flops) / conv_t / 1e9;

  // 2. Measure memory-bound throughput with ReLU over a large tensor.
  const auto big = Tensor::randn(Shape{64, 128, 128}, rng);
  const double relu_t = time_seconds([&] { kernels::relu(big); }, 5);
  const double mem_gbs =
      2.0 * static_cast<double>(big.numel()) * 4.0 / relu_t / 1e9;

  // 3. Measure per-layer dispatch overhead with a tiny op.
  const auto tiny = Tensor::randn(Shape{1, 4, 4}, rng);
  const double overhead = time_seconds([&] { kernels::relu(tiny); }, 20);

  ComputeProfile calibrated;
  calibrated.name = "this_machine";
  calibrated.peak_flops = gflops(conv_gflops / 0.55);  // invert conv eff.
  calibrated.mem_bw = mem_gbs * 1e9;
  calibrated.layer_overhead = overhead;
  calibrated.efficiency = profiles::edge_cpu().efficiency;

  std::printf("measured: conv %.2f GFLOP/s, memory %.2f GB/s, "
              "dispatch %.1f us\n\n",
              conv_gflops, mem_gbs, overhead * 1e6);

  // 4. Validate: predicted vs measured whole-model forward latency.
  Table t({"model", "measured ms", "predicted ms", "ratio"});
  for (const char* name : {"lenet5", "tiny_cnn"}) {
    const auto g = models::by_name(name);
    const Executor ex(g, 3);
    const auto input = Tensor::randn(g.node(0).out_shape, rng, 0.5f);
    const double measured = time_seconds([&] { ex.run(input); }, 10);
    const double predicted = LatencyModel::graph_latency(g, calibrated);
    t.add_row({name, Table::num(to_ms(measured), 3),
               Table::num(to_ms(predicted), 3),
               Table::num(predicted / measured, 2)});
  }
  // Mobilenet at reduced resolution exercises dwconv-heavy prediction.
  {
    const auto g = models::mobilenet_v1(10, 64);
    const Executor ex(g, 3);
    const auto input = Tensor::randn(g.node(0).out_shape, rng, 0.5f);
    const double measured = time_seconds([&] { ex.run(input); }, 3);
    const double predicted = LatencyModel::graph_latency(g, calibrated);
    t.add_row({"mobilenet_v1@64", Table::num(to_ms(measured), 3),
               Table::num(to_ms(predicted), 3),
               Table::num(predicted / measured, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("A ratio within ~2x across models of very different op mixes\n"
              "is the expected fidelity for a two-parameter roofline; the\n"
              "optimizer's decisions depend on latency *ratios* between\n"
              "devices, which calibrate out shared modelling error.\n");
  return 0;
}
