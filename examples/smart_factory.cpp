// Smart-factory scenario: a campus-scale deployment (dozens of heterogeneous
// devices, several edge servers) with per-workload deadlines. Optimizes with
// every scheme, validates with the simulator, and exports the comparison as
// CSV for plotting.
//
//   $ ./examples/smart_factory [num_devices] [num_servers]

#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "baselines/baselines.hpp"
#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace scalpel;

int main(int argc, char** argv) {
  clusters::CampusOptions copts;
  copts.num_devices = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                               : 24;
  copts.num_servers = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                               : 4;
  copts.mean_arrival_rate = 1.5;
  copts.deadline = ms(300.0);
  copts.seed = 2026;

  std::printf("== Smart factory: %zu devices, %zu edge servers ==\n\n",
              copts.num_devices, copts.num_servers);
  const ProblemInstance instance(clusters::campus(copts));

  Table t({"scheme", "pred. mean ms", "DES mean ms", "DES p95 ms",
           "DES p99 ms", "deadline sat.", "accuracy", "offload frac."});
  auto evaluate = [&](const Decision& d) {
    Simulator::Options sopts;
    sopts.horizon = 30.0;
    sopts.warmup = 3.0;
    sopts.seed = 5;
    Simulator sim(instance, d, sopts);
    const auto m = sim.run();
    t.add_row({d.scheme,
               std::isfinite(d.mean_latency)
                   ? Table::num(to_ms(d.mean_latency), 1)
                   : "unstable",
               m.completed ? Table::num(to_ms(m.latency.mean()), 1) : "-",
               m.completed ? Table::num(to_ms(m.latency.p95()), 1) : "-",
               m.completed ? Table::num(to_ms(m.latency.p99()), 1) : "-",
               Table::num(m.deadline_satisfaction, 3),
               Table::num(m.measured_accuracy, 3),
               Table::num(m.offload_fraction, 2)});
  };

  for (const auto& name : baselines::names()) {
    std::printf("optimizing %s...\n", name.c_str());
    evaluate(baselines::by_name(instance, name));
  }
  std::printf("optimizing joint...\n");
  JointReport report;
  const JointOptimizer optimizer;
  Decision joint = optimizer.optimize(instance, &report);
  evaluate(joint);

  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("joint solve: %.2fs, %zu rounds, %zu surgery configurations\n",
              report.solve_seconds, report.iterations,
              report.surgery_evaluations);
  const std::string csv_path = "smart_factory_results.csv";
  if (write_csv(t, csv_path)) {
    std::printf("results exported to %s\n", csv_path.c_str());
  }

  // Per-device plan digest for the joint decision.
  std::size_t local = 0;
  std::size_t offload = 0;
  std::size_t total_exits = 0;
  for (const auto& dd : joint.per_device) {
    (dd.plan.device_only ? local : offload) += 1;
    total_exits += dd.plan.policy.exits.size();
  }
  std::printf("\njoint plan digest: %zu local, %zu offloading, "
              "%.1f exits/device avg\n",
              local, offload,
              static_cast<double>(total_exits) /
                  static_cast<double>(joint.per_device.size()));
  return 0;
}
