// scalpel_cli — file-driven front end to the library: generate cluster
// configs, optimize them with any scheme, and simulate decisions, all
// through JSON files so the pieces compose in shell pipelines.
//
//   scalpel_cli topology --preset small_lab --out topo.json
//   scalpel_cli topology --preset campus --devices 24 --servers 4
//       --seed 7 --out topo.json
//   scalpel_cli optimize --topology topo.json --scheme joint
//       --out decision.json
//   scalpel_cli simulate --topology topo.json --decision decision.json
//       --horizon 60 --reps 16 --threads 8
//   scalpel_cli admission --topology topo.json [--decision decision.json]
//       --headroom 0.9 --rungs 4
//   scalpel_cli trace --topology topo.json --decision decision.json
//       --overload 2.0 --out trace.json --audit-out audit.json
//       --metrics-out metrics.json
//   scalpel_cli validate-trace --trace trace.json --metrics metrics.json
//   scalpel_cli distributed --topology topo.json --drop 0.2 --coord-mtbf 10
//   scalpel_cli models

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "baselines/baselines.hpp"
#include "core/admission.hpp"
#include "core/joint.hpp"
#include "ctrl/plane.hpp"
#include "core/objective.hpp"
#include "core/online.hpp"
#include "core/serialize.hpp"
#include "edge/builders.hpp"
#include "nn/models.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/metrics_export.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace scalpel;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  scalpel_cli topology --preset small_lab|campus "
               "[--devices N] [--servers M] [--seed S] --out FILE\n"
               "  scalpel_cli optimize --topology FILE "
               "[--scheme joint|device_only|edge_only|neurosurgeon|"
               "local_multi_exit|random] [--objective latency|deadline] "
               "--out FILE\n"
               "  scalpel_cli simulate --topology FILE --decision FILE "
               "[--horizon SECONDS] [--warmup SECONDS] [--seed S] "
               "[--reps N] [--threads T] [--shards K] "
               "[--metrics-out FILE(.json|.csv)]\n"
               "  scalpel_cli admission --topology FILE [--decision FILE] "
               "[--scheme joint|...] [--headroom H] [--rungs N]\n"
               "  scalpel_cli trace --topology FILE [--decision FILE] "
               "--out FILE(.json|.csv) [--overload F] [--controller on|off] "
               "[--horizon S] [--warmup S] [--seed S] [--capacity N] "
               "[--audit-out FILE(.json|.csv)] [--metrics-out FILE]\n"
               "  scalpel_cli validate-trace --trace FILE.json "
               "--metrics FILE.json\n"
               "  scalpel_cli distributed --topology FILE [--ticks N] "
               "[--delay S] [--jitter S] [--drop P] [--coord-mtbf S] "
               "[--coord-mttr S] [--horizon S] [--seed S] "
               "[--span-capacity N] [--obs-interval S] "
               "[--audit-out FILE(.json|.csv)] [--trace-out FILE.json] "
               "[--metrics-out FILE(.json|.csv)] "
               "[--timeseries-out FILE(.json|.csv)]\n"
               "  scalpel_cli obs-report [--topology FILE] [--horizon S] "
               "[--seed S] [--overload F] [--drop P] [--delay S] "
               "[--jitter S] [--coord-mtbf S] [--coord-mttr S] "
               "[--obs-interval S] [--span-capacity N] [--capacity N] "
               "[--trace-out FILE.json] [--timeseries-out FILE(.json|.csv)] "
               "[--metrics-out FILE(.json|.csv)] "
               "[--audit-out FILE(.json|.csv)]\n"
               "  scalpel_cli models\n");
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) usage();
    flags[arg.substr(2)] = argv[++i];
  }
  return flags;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Numeric flags go through the strict whole-token parser (util/flags.hpp):
// "--reps -3", "--threads 8x", and "--tolerance banana" all die with a
// one-line reason and exit 2 instead of wrapping through unsigned conversion
// or silently becoming 0.
constexpr std::uint64_t kNoSizeLimit =
    std::numeric_limits<std::uint64_t>::max();
constexpr double kNoDoubleLimit = std::numeric_limits<double>::infinity();

std::uint64_t size_flag(const std::map<std::string, std::string>& flags,
                        const std::string& key, std::uint64_t fallback,
                        std::uint64_t min_value,
                        std::uint64_t max_value = kNoSizeLimit) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  std::uint64_t value = 0;
  std::string err;
  if (!scalpel::flags::parse_size(it->second, min_value, max_value, &value,
                                  &err)) {
    std::fprintf(stderr, "error: --%s: %s\n", key.c_str(), err.c_str());
    std::exit(2);
  }
  return value;
}

double double_flag(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback, double min_value,
                   double max_value = kNoDoubleLimit) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  double value = 0.0;
  std::string err;
  if (!scalpel::flags::parse_double(it->second, min_value, max_value, &value,
                                    &err)) {
    std::fprintf(stderr, "error: --%s: %s\n", key.c_str(), err.c_str());
    std::exit(2);
  }
  return value;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << content;
}

int cmd_topology(const std::map<std::string, std::string>& flags) {
  const std::string preset = flag_or(flags, "preset", "small_lab");
  ClusterTopology topo;
  if (preset == "small_lab") {
    topo = clusters::small_lab();
  } else if (preset == "campus") {
    clusters::CampusOptions opts;
    opts.num_devices =
        static_cast<std::size_t>(size_flag(flags, "devices", 24, 1, 1u << 20));
    opts.num_servers =
        static_cast<std::size_t>(size_flag(flags, "servers", 4, 1, 1u << 16));
    opts.seed = size_flag(flags, "seed", 42, 0);
    topo = clusters::campus(opts);
  } else {
    std::fprintf(stderr, "error: unknown preset %s\n", preset.c_str());
    return 1;
  }
  const std::string out = flag_or(flags, "out", "");
  if (out.empty()) usage();
  write_file(out, serialize::to_json(topo).dump_pretty() + "\n");
  std::printf("wrote %s (%zu devices, %zu servers, %zu cells)\n", out.c_str(),
              topo.devices().size(), topo.servers().size(),
              topo.cells().size());
  return 0;
}

int cmd_optimize(const std::map<std::string, std::string>& flags) {
  const std::string topo_path = flag_or(flags, "topology", "");
  const std::string out = flag_or(flags, "out", "");
  if (topo_path.empty() || out.empty()) usage();
  const auto topo =
      serialize::topology_from_json(Json::parse(read_file(topo_path)));
  const ProblemInstance instance(topo);

  const std::string scheme = flag_or(flags, "scheme", "joint");
  Decision decision;
  if (scheme == "joint") {
    JointOptions opts;
    if (flag_or(flags, "objective", "latency") == "deadline") {
      opts.objective = JointObjective::kDeadlineSatisfaction;
    }
    JointReport report;
    decision = JointOptimizer(opts).optimize(instance, &report);
    std::printf("joint solve: %.2fs, %zu rounds\n", report.solve_seconds,
                report.iterations);
  } else {
    decision = baselines::by_name(instance, scheme);
  }
  write_file(out, serialize::to_json(decision).dump_pretty() + "\n");
  std::printf("scheme=%s mean_latency=%s deadline_sat=%.3f -> %s\n",
              decision.scheme.c_str(),
              std::isfinite(decision.mean_latency)
                  ? (std::to_string(to_ms(decision.mean_latency)) + " ms")
                        .c_str()
                  : "unstable",
              predicted_deadline_satisfaction(instance, decision),
              out.c_str());
  return 0;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  const std::string topo_path = flag_or(flags, "topology", "");
  const std::string decision_path = flag_or(flags, "decision", "");
  if (topo_path.empty() || decision_path.empty()) usage();

  // All numeric flags are validated before any file I/O so a typo'd command
  // fails on the typo, not on whatever half-built state came first.
  Simulator::Options opts;
  opts.horizon = double_flag(flags, "horizon", 60.0, 1e-6);
  opts.warmup = double_flag(flags, "warmup", opts.horizon * 0.1, 0.0);
  opts.seed = size_flag(flags, "seed", 1, 0);
  const auto reps =
      static_cast<std::size_t>(size_flag(flags, "reps", 1, 1, 1u << 20));
  // --threads 0 is an error (what would zero workers mean?); the flag being
  // absent means "one worker per hardware core".
  const auto threads =
      static_cast<std::size_t>(size_flag(flags, "threads", 0, 1, 4096));
  const auto shards =
      static_cast<std::size_t>(size_flag(flags, "shards", 0, 1, 4096));

  const auto topo =
      serialize::topology_from_json(Json::parse(read_file(topo_path)));
  const ProblemInstance instance(topo);
  Decision decision =
      serialize::decision_from_json(Json::parse(read_file(decision_path)));
  evaluate_decision(instance, decision);

  const std::string metrics_out = flag_or(flags, "metrics-out", "");

  if (reps <= 1 && shards == 0) {
    Simulator sim(instance, decision, opts);
    const auto m = sim.run();
    std::printf("completed=%zu mean=%.2fms p95=%.2fms p99=%.2fms "
                "deadline_sat=%.3f accuracy=%.3f offload=%.2f "
                "energy=%.1fmJ/task\n",
                m.completed, to_ms(m.latency.mean()), to_ms(m.latency.p95()),
                to_ms(m.latency.p99()), m.deadline_satisfaction,
                m.measured_accuracy, m.offload_fraction,
                m.mean_task_energy * 1e3);
    if (!metrics_out.empty()) {
      if (!write_sim_metrics(m, metrics_out)) return 1;
      std::printf("wrote metrics to %s\n", metrics_out.c_str());
    }
    return 0;
  }

  // Replicated run: deterministic per-replication substreams, aggregated
  // into mean ± 95% CI (bit-identical for any --threads value).
  ScenarioRunner::Options ro;
  ro.replications = reps;
  ro.threads = threads;
  ro.shards = shards;
  ro.sim = opts;
  const auto agg = ScenarioRunner(instance, decision, ro).run();
  const auto mean = summarize(agg.mean_latency);
  const auto p95 = summarize(agg.p95_latency);
  const auto p99 = summarize(agg.p99_latency);
  const auto sat = summarize(agg.deadline_satisfaction);
  const auto acc = summarize(agg.accuracy);
  const auto off = summarize(agg.offload_fraction);
  const auto energy = summarize(agg.task_energy);
  std::printf("reps=%zu completed=%zu mean=%.2f±%.2fms p95=%.2f±%.2fms "
              "p99=%.2f±%.2fms deadline_sat=%.3f±%.3f accuracy=%.3f±%.3f "
              "offload=%.2f±%.2f energy=%.1f±%.1fmJ/task\n",
              reps, agg.completed, to_ms(mean.mean), to_ms(mean.ci95),
              to_ms(p95.mean), to_ms(p95.ci95), to_ms(p99.mean),
              to_ms(p99.ci95), sat.mean, sat.ci95, acc.mean, acc.ci95,
              off.mean, off.ci95, energy.mean * 1e3, energy.ci95 * 1e3);
  if (!metrics_out.empty()) {
    const bool csv = metrics_out.size() >= 4 &&
                     metrics_out.compare(metrics_out.size() - 4, 4, ".csv") ==
                         0;
    if (csv) {
      // One row of headline scalars per replication; the full nested detail
      // needs the JSON form.
      Table t({"rep", "arrived", "completed", "failed", "shed", "expired",
               "mean_latency_s", "p95_s", "p99_s", "deadline_sat",
               "accuracy"});
      for (std::size_t r = 0; r < agg.replications.size(); ++r) {
        const auto& m = agg.replications[r];
        t.add_row({Table::num(static_cast<std::int64_t>(r)),
                   Table::num(static_cast<std::int64_t>(m.arrived)),
                   Table::num(static_cast<std::int64_t>(m.completed)),
                   Table::num(static_cast<std::int64_t>(m.failed)),
                   Table::num(static_cast<std::int64_t>(m.shed)),
                   Table::num(static_cast<std::int64_t>(m.expired)),
                   Table::num(m.latency.empty() ? 0.0 : m.latency.mean(), 6),
                   Table::num(m.latency.empty() ? 0.0 : m.latency.p95(), 6),
                   Table::num(m.latency.empty() ? 0.0 : m.latency.p99(), 6),
                   Table::num(m.deadline_satisfaction, 4),
                   Table::num(m.measured_accuracy, 4)});
      }
      write_file(metrics_out, t.to_csv());
    } else {
      write_file(metrics_out,
                 replicated_metrics_to_json(agg).dump_pretty() + "\n");
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}

// Admission report: how much load each device can sustain under a decision,
// what the cluster-level throttle plan would admit, and the precomputed
// surgery-based degradation ladder the online controller would walk under
// sustained overload.
int cmd_admission(const std::map<std::string, std::string>& flags) {
  const std::string topo_path = flag_or(flags, "topology", "");
  if (topo_path.empty()) usage();
  const auto topo =
      serialize::topology_from_json(Json::parse(read_file(topo_path)));
  const ProblemInstance instance(topo);

  Decision decision;
  const std::string decision_path = flag_or(flags, "decision", "");
  if (!decision_path.empty()) {
    decision =
        serialize::decision_from_json(Json::parse(read_file(decision_path)));
    evaluate_decision(instance, decision);
  } else {
    const std::string scheme = flag_or(flags, "scheme", "joint");
    decision = scheme == "joint"
                   ? JointOptimizer(JointOptions{}).optimize(instance)
                   : baselines::by_name(instance, scheme);
  }
  const double headroom = double_flag(flags, "headroom", 0.9, 1e-6, 1.0);

  std::printf("admission report for scheme=%s (headroom %.2f)\n\n",
              decision.scheme.c_str(), headroom);
  const auto plan =
      admission::propose_throttle_fixed_point(instance, decision, headroom);
  Table load({"device", "offered /s", "sustainable /s", "admitted /s",
              "admit frac"});
  for (std::size_t i = 0; i < decision.per_device.size(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    const auto& dev = topo.device(id);
    const double sustainable = admission::max_sustainable_rate(
        instance, id, decision.per_device[i], 1.0);
    load.add_row({dev.name, Table::num(dev.arrival_rate, 2),
                  Table::num(sustainable, 2),
                  Table::num(plan.admitted_rate[i], 2),
                  Table::num(dev.arrival_rate > 0.0
                                 ? plan.admitted_rate[i] / dev.arrival_rate
                                 : 1.0,
                             3)});
  }
  std::printf("%s\n", load.to_string().c_str());
  std::printf("throttle plan: %s (fixed point in %zu iteration%s)\n\n",
              plan.throttled ? "throttled" : "all load admitted",
              plan.iterations, plan.iterations == 1 ? "" : "s");

  LadderOptions lo;
  lo.rungs = static_cast<std::size_t>(size_flag(flags, "rungs", 4, 1, 64));
  const auto ladder = build_degradation_ladder(instance, decision, lo);
  std::printf("degradation ladder (rung 0 = deployed plan):\n");
  Table lt({"rung", "accuracy floor", "predicted accuracy",
            "min sustainable /s", "quantized uploads"});
  for (std::size_t k = 0; k < ladder.size(); ++k) {
    double min_sustain = 1e18;
    bool quantized = false;
    for (std::size_t i = 0; i < ladder[k].plans.size(); ++i) {
      min_sustain = std::min(min_sustain, ladder[k].sustainable[i]);
      quantized = quantized || ladder[k].plans[i].quantize_upload;
    }
    lt.add_row({Table::num(static_cast<std::int64_t>(k)),
                Table::num(ladder[k].accuracy_floor, 3),
                Table::num(ladder[k].predicted_accuracy, 3),
                std::isfinite(min_sustain) ? Table::num(min_sustain, 2)
                                           : "unbounded",
                quantized ? "yes" : "no"});
  }
  std::printf("%s\n", lt.to_string().c_str());
  return 0;
}

// One traced simulation run: per-task lifecycle events to a Chrome-trace
// JSON (or CSV), plus optionally the controller's decision audit log and the
// full SimMetrics, all reconcilable against each other. `--overload F`
// multiplies every device's arrival rate while the controller stays anchored
// to the nominal topology — the F17 setup — so an overload run's rung walk
// is visible in both the audit log and the event stream.
int cmd_trace(const std::map<std::string, std::string>& flags) {
  const std::string topo_path = flag_or(flags, "topology", "");
  const std::string out = flag_or(flags, "out", "");
  if (topo_path.empty() || out.empty()) usage();
  const auto deployed_topo =
      serialize::topology_from_json(Json::parse(read_file(topo_path)));

  const double overload = double_flag(flags, "overload", 1.0, 1e-6, 1e3);
  ClusterTopology offered_topo = deployed_topo;
  if (overload != 1.0) {
    for (const auto& d : deployed_topo.devices()) {
      offered_topo.set_device_arrival_rate(d.id,
                                           d.arrival_rate * overload);
    }
  }
  const ProblemInstance instance(offered_topo);

  Simulator::Options opts;
  opts.horizon = double_flag(flags, "horizon", 60.0, 1e-6);
  opts.warmup = double_flag(flags, "warmup", opts.horizon * 0.1, 0.0);
  opts.seed = size_flag(flags, "seed", 1, 0);
  opts.trace_capacity = static_cast<std::size_t>(
      size_flag(flags, "capacity", 1048576, 1, 1u << 28));
  const bool with_controller = flag_or(flags, "controller", "on") == "on";

  Decision decision;
  const std::string decision_path = flag_or(flags, "decision", "");
  OnlineController ctl(deployed_topo);
  if (with_controller) {
    // Bounded queues + expiry shedding so the ladder has something to save.
    opts.overload.policy = OverloadPolicy::ShedExpired;
    opts.overload.device_queue_limit = 32;
    opts.overload.upload_queue_limit = 8;
    opts.overload.server_queue_limit = 8;
    opts.control_interval = 1.0;
    decision = ctl.decision();
  } else if (!decision_path.empty()) {
    decision =
        serialize::decision_from_json(Json::parse(read_file(decision_path)));
  } else {
    decision = JointOptimizer(JointOptions{}).optimize(instance);
  }
  evaluate_decision(instance, decision);

  Simulator sim(instance, decision, opts);
  if (with_controller) {
    sim.set_controller([&](double now, const std::vector<double>& bw,
                           const std::vector<bool>& alive,
                           const std::vector<double>& offered,
                           const std::vector<double>& depth) {
      ctl.audit_log().advance_time(now);
      ControlAction a;
      if (ctl.observe(bw, alive, offered, depth)) {
        a.decision = ctl.decision();
        a.admit_fraction = ctl.admit_fraction();
      }
      return a;
    });
  }
  const auto m = sim.run();

  if (!write_trace(sim.trace(), out)) return 1;
  std::printf("wrote %llu events to %s (%llu overwritten in the ring)\n",
              static_cast<unsigned long long>(sim.trace().size()),
              out.c_str(),
              static_cast<unsigned long long>(sim.trace().dropped()));
  std::printf("conservation: arrived=%zu completed_all=%zu failed_all=%zu "
              "shed_all=%zu in_flight_end=%zu\n",
              m.arrived, m.completed_all, m.failed_all, m.shed_all,
              m.in_flight_end);
  if (with_controller) {
    std::printf("controller: %zu audit records, %zu reoptimizations, "
                "%zu degradations, %zu recoveries, final rung %zu\n",
                ctl.audit_log().size(), ctl.reoptimizations(),
                ctl.degradations(), ctl.recoveries(), ctl.current_rung());
    const std::string audit_out = flag_or(flags, "audit-out", "");
    if (!audit_out.empty()) {
      const bool csv = audit_out.size() >= 4 &&
                       audit_out.compare(audit_out.size() - 4, 4, ".csv") ==
                           0;
      write_file(audit_out,
                 csv ? ctl.audit_log().to_table().to_csv()
                     : ctl.audit_log().to_json().dump_pretty() + "\n");
      std::printf("wrote audit log to %s\n", audit_out.c_str());
    }
  }
  const std::string metrics_out = flag_or(flags, "metrics-out", "");
  if (!metrics_out.empty()) {
    if (!write_sim_metrics(m, metrics_out)) return 1;
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}

// Round-trips an exported trace + metrics pair through the JSON parser and
// checks that the per-task events reconcile exactly with the simulator's
// conservation counters. A merged trace (control-plane spans spliced next to
// the task events) additionally reconciles the span stream against the
// ctrl.* counters in the metrics file. Exit 0 = PASS; used by ci.sh's fast
// tier.
int cmd_validate_trace(const std::map<std::string, std::string>& flags) {
  const std::string trace_path = flag_or(flags, "trace", "");
  const std::string metrics_path = flag_or(flags, "metrics", "");
  if (trace_path.empty() || metrics_path.empty()) usage();
  const Json trace = Json::parse(read_file(trace_path));
  const Json metrics = Json::parse(read_file(metrics_path));

  if (trace.contains("droppedEvents") &&
      trace.at("droppedEvents").as_int() != 0) {
    std::fprintf(stderr,
                 "FAIL: trace is truncated (%lld events overwritten); "
                 "re-record with a larger --capacity\n",
                 static_cast<long long>(trace.at("droppedEvents").as_int()));
    return 1;
  }
  if (trace.contains("droppedSpans") &&
      trace.at("droppedSpans").as_int() != 0) {
    std::fprintf(stderr,
                 "FAIL: control-plane spans truncated (%lld overwritten); "
                 "re-record with a larger --span-capacity\n",
                 static_cast<long long>(trace.at("droppedSpans").as_int()));
    return 1;
  }

  std::map<std::string, std::int64_t> counts;
  std::map<std::string, std::int64_t> span_counts;
  std::int64_t span_events = 0;
  const Json& events = trace.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& args = events.at(i).at("args");
    // Control-plane spans carry args.span (and a correlation id); task
    // lifecycle events carry args.event even for B/E span phases.
    if (args.contains("span")) {
      ++span_counts[args.at("span").as_string()];
      ++span_events;
      continue;
    }
    ++counts[args.at("event").as_string()];
  }
  auto count = [&](const char* name) {
    const auto it = counts.find(name);
    return it == counts.end() ? std::int64_t{0} : it->second;
  };

  const Json& c = metrics.at("conservation");
  const std::int64_t arrived = c.at("arrived").as_int();
  const std::int64_t completed = c.at("completed_all").as_int();
  const std::int64_t failed = c.at("failed_all").as_int();
  const std::int64_t shed = c.at("shed_all").as_int();
  const std::int64_t in_flight = c.at("in_flight_end").as_int();

  bool ok = true;
  auto check = [&](const char* what, std::int64_t got, std::int64_t want) {
    if (got != want) {
      std::fprintf(stderr, "FAIL: %s: trace says %lld, metrics say %lld\n",
                   what, static_cast<long long>(got),
                   static_cast<long long>(want));
      ok = false;
    }
  };
  check("arrived", count("arrive"), arrived);
  check("completed_all", count("complete"), completed);
  check("failed_all", count("fail"), failed);
  check("shed_all", count("shed") + count("expire"), shed);
  check("terminal events",
        count("complete") + count("fail") + count("shed") + count("expire") +
            in_flight,
        count("arrive"));
  if (arrived != completed + failed + shed + in_flight) {
    std::fprintf(stderr,
                 "FAIL: metrics conservation broken: %lld != %lld + %lld + "
                 "%lld + %lld\n",
                 static_cast<long long>(arrived),
                 static_cast<long long>(completed),
                 static_cast<long long>(failed), static_cast<long long>(shed),
                 static_cast<long long>(in_flight));
    ok = false;
  }
  // Control-plane reconciliation, when both sides carry it: span stream vs
  // the ctrl.* counters published by the plane, plus the fabric conservation
  // law (#sent == #dropped + #delivered + #dead_letter + in_flight).
  if (span_events > 0 && metrics.contains("ctrl")) {
    const Json& ctrl = metrics.at("ctrl").at("counters");
    auto span_count = [&](const char* name) {
      const auto it = span_counts.find(name);
      return it == span_counts.end() ? std::int64_t{0} : it->second;
    };
    auto ctr = [&](const char* name) {
      return ctrl.contains(name) ? ctrl.at(name).as_int() : std::int64_t{0};
    };
    const std::int64_t fabric_in_flight =
        metrics.at("ctrl").at("gauges").contains("ctrl.in_flight")
            ? static_cast<std::int64_t>(metrics.at("ctrl")
                                            .at("gauges")
                                            .at("ctrl.in_flight")
                                            .as_number())
            : 0;
    check("ctrl sent spans", span_count("sent"), ctr("ctrl.msg.sent"));
    check("ctrl delivered spans", span_count("delivered"),
          ctr("ctrl.msg.delivered"));
    check("ctrl dropped spans", span_count("dropped"),
          ctr("ctrl.msg.dropped"));
    check("ctrl dead-letter spans", span_count("dead_letter"),
          ctr("ctrl.msg.dropped_dead") + ctr("ctrl.dead_letters"));
    check("ctrl adopted spans", span_count("adopted"),
          ctr("ctrl.adoptions"));
    check("ctrl stale-rejection spans", span_count("rejected_stale"),
          ctr("ctrl.epochs_rejected"));
    check("ctrl re-grant spans", span_count("regrant"),
          ctr("ctrl.regrants"));
    // Fabric-level conservation: routing dead letters (a down recipient
    // after a successful delivery) already appear as delivered spans, so
    // only the fabric-side share (queue wiped with a dead endpoint) joins
    // the outcome sum.
    check("ctrl fabric conservation", span_count("sent"),
          span_count("dropped") + span_count("delivered") +
              ctr("ctrl.msg.dropped_dead") + fabric_in_flight);
    if (!ok) return 1;
  }
  if (!ok) return 1;
  std::printf("PASS: %zu trace events reconcile with the conservation "
              "counters (arrived=%lld completed=%lld failed=%lld shed=%lld "
              "in_flight_end=%lld",
              events.size(), static_cast<long long>(arrived),
              static_cast<long long>(completed),
              static_cast<long long>(failed), static_cast<long long>(shed),
              static_cast<long long>(in_flight));
  if (span_events > 0) {
    std::printf("; %lld control-plane spans reconcile with the ctrl.* "
                "counters",
                static_cast<long long>(span_events));
  }
  std::printf(")\n");
  return 0;
}

// Distributed control-plane report: convergence of the per-cell controllers
// over a lossy fabric (part 1), then a failover DES where the coordinator
// endpoint itself crashes on an MTBF/MTTR process and the cells fall back to
// validated local autonomy (part 2). Exercises src/ctrl end to end from the
// command line; the chaos CI slice smoke-tests it.
int cmd_distributed(const std::map<std::string, std::string>& flags) {
  const std::string topo_path = flag_or(flags, "topology", "");
  if (topo_path.empty()) usage();
  // All numeric flags are validated before any file I/O (same contract as
  // cmd_simulate: a typo'd command fails on the typo).
  const auto ticks =
      static_cast<int>(size_flag(flags, "ticks", 40, 1, 1u << 20));
  const double delay = double_flag(flags, "delay", 0.2, 0.0, 1e3);
  const double jitter = double_flag(flags, "jitter", 0.5, 0.0, 1e3);
  const double drop = double_flag(flags, "drop", 0.05, 0.0, 0.999);
  const double coord_mtbf = double_flag(flags, "coord-mtbf", 10.0, 0.0, 1e9);
  const double coord_mttr = double_flag(flags, "coord-mttr", 4.0, 1e-6, 1e9);
  const double horizon = double_flag(flags, "horizon", 60.0, 1e-6);
  const std::uint64_t seed = size_flag(flags, "seed", 19, 0);
  const auto span_capacity = static_cast<std::size_t>(
      size_flag(flags, "span-capacity", 1u << 16, 1, 1u << 26));
  const double obs_interval =
      double_flag(flags, "obs-interval", 0.5, 1e-6, 1.0);
  const std::string audit_out = flag_or(flags, "audit-out", "");
  const std::string trace_out = flag_or(flags, "trace-out", "");
  const std::string metrics_out = flag_or(flags, "metrics-out", "");
  const std::string timeseries_out = flag_or(flags, "timeseries-out", "");

  const auto topo =
      serialize::topology_from_json(Json::parse(read_file(topo_path)));
  const ProblemInstance instance(topo);

  // Same optimizer budget for the centralized reference and the cells'
  // local solves, so the reported gap is a fair protocol cost.
  JointOptions joint;
  joint.max_iterations = 2;
  joint.dp_coverage_bins = 40;
  joint.theta_grid = {0.0, 0.3, 0.6};
  Decision central = JointOptimizer(joint).optimize(instance);
  evaluate_decision(instance, central);

  ControlFabricOptions fabric;
  fabric.delay = delay;
  fabric.jitter = jitter;
  fabric.drop_prob = drop;
  auto make_opts = [&](FaultSchedule faults) {
    DistributedPlaneOptions po;
    po.fabric = fabric;
    po.cell.joint = joint;
    po.controller_faults = std::move(faults);
    po.seed = seed;
    po.span_capacity = span_capacity;
    return po;
  };
  auto observe = [&](double t) {
    Observation o;
    o.time = t;
    for (const auto& cell : topo.cells()) {
      o.cell_bandwidth.push_back(cell.bandwidth);
    }
    o.server_alive.assign(topo.servers().size(), true);
    return o;
  };

  // Part 1: static workload; how fast does tatonnement settle and how close
  // is the merged plan to the centralized solve?
  DistributedControlPlane plane(topo, make_opts({}));
  int converged_at = -1;
  for (int t = 0; t < ticks; ++t) {
    (void)plane.tick(observe(static_cast<double>(t)));
    if (converged_at < 0 && plane.converged()) converged_at = t;
  }
  Decision merged = plane.merged();
  evaluate_decision(instance, merged);
  const double gap = merged.mean_latency / central.mean_latency - 1.0;
  std::printf(
      "convergence: fabric delay=%.2fs jitter=%.2fs drop=%.2f over %d "
      "ticks\n  converged=%s epoch=%llu rounds=%llu msgs "
      "sent=%llu dropped=%llu\n  merged-plan gap vs centralized: %.2f%%\n",
      delay, jitter, drop, ticks, converged_at < 0 ? "NO" : "yes",
      static_cast<unsigned long long>(plane.coordinator().epoch()),
      static_cast<unsigned long long>(plane.coordinator().realloc_rounds()),
      static_cast<unsigned long long>(plane.fabric().sent()),
      static_cast<unsigned long long>(plane.fabric().dropped()),
      100.0 * gap);
  if (converged_at >= 0) {
    std::printf("  first fully-adopted epoch at tick %d\n", converged_at);
  }

  // Part 2: DES failover — the coordinator endpoint crashes; the cells keep
  // steering on local autonomy and must beat the frozen plan's deadline sat.
  Simulator::Options so;
  so.horizon = horizon;
  so.warmup = horizon * 0.1;
  so.seed = seed + 1;
  so.control_interval = 1.0;
  Simulator frozen_sim(instance, central, so);
  const SimMetrics frozen = frozen_sim.run();

  FaultSchedule coord_faults;
  if (coord_mtbf > 0.0) {
    coord_faults = FaultSchedule::exponential_servers(
        1, coord_mtbf, coord_mttr, horizon, Rng(seed + 2));
  }
  if (!trace_out.empty()) {
    so.trace_capacity = static_cast<std::size_t>(
        size_flag(flags, "capacity", 1048576, 1, 1u << 28));
  }
  DistributedControlPlane chaos(topo, make_opts(std::move(coord_faults)));
  TimeSeriesRecorder recorder(1u << 16);
  if (!timeseries_out.empty()) {
    chaos.register_sources(recorder);
    so.obs_interval = obs_interval;
    so.recorder = &recorder;
  }
  Simulator sim(instance, central, so);
  sim.set_controller(chaos.callback());
  const SimMetrics m = sim.run();
  std::printf(
      "failover: coordinator MTBF=%s MTTR=%.1fs over %.0fs horizon\n"
      "  deadline sat %.3f (frozen centralized plan: %.3f)\n"
      "  coordinator crashes=%llu losses=%llu rejoins=%llu local "
      "solves=%llu\n  stale-price events=%llu epochs rejected=%llu dead "
      "letters=%llu\n",
      coord_mtbf > 0.0 ? (Table::num(coord_mtbf, 1) + "s").c_str()
                       : "off",
      coord_mttr, horizon, m.deadline_satisfaction,
      frozen.deadline_satisfaction,
      static_cast<unsigned long long>(chaos.coordinator_crashes()),
      static_cast<unsigned long long>(chaos.coordinator_losses()),
      static_cast<unsigned long long>(chaos.rejoins()),
      static_cast<unsigned long long>(chaos.local_solves()),
      static_cast<unsigned long long>(chaos.stale_events()),
      static_cast<unsigned long long>(chaos.epochs_rejected()),
      static_cast<unsigned long long>(chaos.dead_letters()));

  if (!audit_out.empty()) {
    const bool csv =
        audit_out.size() >= 4 &&
        audit_out.compare(audit_out.size() - 4, 4, ".csv") == 0;
    write_file(audit_out, csv ? chaos.audit_log().to_table().to_csv()
                              : chaos.audit_log().to_json().dump_pretty() +
                                    "\n");
    std::printf("wrote %zu audit records to %s\n", chaos.audit_log().size(),
                audit_out.c_str());
  }
  if (!trace_out.empty()) {
    const Json merged_doc =
        merged_trace_to_chrome_json(sim.trace(), chaos.ctrl_trace());
    write_file(trace_out, merged_doc.dump_pretty() + "\n");
    std::printf("wrote %zu task events + %zu control-plane spans to %s\n",
                sim.trace().size(), chaos.ctrl_trace().size(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const bool csv =
        metrics_out.size() >= 4 &&
        metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
    if (csv) {
      if (!write_sim_metrics(m, metrics_out)) return 1;
    } else {
      Json doc = sim_metrics_to_json(m);
      MetricsRegistry ctrl_registry;
      chaos.publish_metrics(ctrl_registry);
      doc.set("ctrl", ctrl_registry.to_json());
      write_file(metrics_out, doc.dump_pretty() + "\n");
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!timeseries_out.empty()) {
    if (!recorder.write(timeseries_out)) return 1;
    std::printf("wrote %zu time-series samples to %s\n", recorder.size(),
                timeseries_out.c_str());
  }
  return 0;
}

// One-stop observability report: a lossy-fabric distributed failover run
// with causal span tracing, windowed time-series telemetry, and SLO
// burn-rate monitoring all enabled. Emits a single Chrome trace with task
// events and control-plane spans on the shared clock (grant minted -> lost
// -> re-granted via anti-entropy -> adopted, reconstructable per correlation
// id), the sampled time series, and a metrics file whose ctrl.* section
// reconciles with the span stream — the triple validate-trace checks.
int cmd_obs_report(const std::map<std::string, std::string>& flags) {
  const double horizon = double_flag(flags, "horizon", 24.0, 1e-6);
  const std::uint64_t seed = size_flag(flags, "seed", 19, 0);
  const double overload = double_flag(flags, "overload", 1.0, 1e-6, 1e3);
  const double drop = double_flag(flags, "drop", 0.15, 0.0, 0.999);
  const double delay = double_flag(flags, "delay", 0.05, 0.0, 1e3);
  const double jitter = double_flag(flags, "jitter", 0.1, 0.0, 1e3);
  const double coord_mtbf = double_flag(flags, "coord-mtbf", 6.0, 0.0, 1e9);
  const double coord_mttr = double_flag(flags, "coord-mttr", 2.0, 1e-6, 1e9);
  const double obs_interval =
      double_flag(flags, "obs-interval", 0.5, 1e-6, 1.0);
  const auto span_capacity = static_cast<std::size_t>(
      size_flag(flags, "span-capacity", 1u << 16, 1, 1u << 26));
  const auto capacity = static_cast<std::size_t>(
      size_flag(flags, "capacity", 1048576, 1, 1u << 28));
  const std::string trace_out = flag_or(flags, "trace-out", "");
  const std::string timeseries_out = flag_or(flags, "timeseries-out", "");
  const std::string metrics_out = flag_or(flags, "metrics-out", "");
  const std::string audit_out = flag_or(flags, "audit-out", "");

  const std::string topo_path = flag_or(flags, "topology", "");
  ClusterTopology topo = topo_path.empty()
                             ? clusters::small_lab()
                             : serialize::topology_from_json(
                                   Json::parse(read_file(topo_path)));
  if (overload != 1.0) {
    const auto devices = topo.devices();  // copy: the loop mutates topo
    for (const auto& d : devices) {
      topo.set_device_arrival_rate(d.id, d.arrival_rate * overload);
    }
  }
  const ProblemInstance instance(topo);

  JointOptions joint;
  joint.max_iterations = 2;
  joint.dp_coverage_bins = 40;
  joint.theta_grid = {0.0, 0.3, 0.6};
  Decision central = JointOptimizer(joint).optimize(instance);
  evaluate_decision(instance, central);

  DistributedPlaneOptions po;
  po.fabric.delay = delay;
  po.fabric.jitter = jitter;
  po.fabric.drop_prob = drop;
  po.cell.joint = joint;
  po.seed = seed;
  po.span_capacity = span_capacity;
  if (coord_mtbf > 0.0) {
    po.controller_faults = FaultSchedule::exponential_servers(
        1, coord_mtbf, coord_mttr, horizon, Rng(seed + 2));
  }
  DistributedControlPlane plane(topo, std::move(po));

  TimeSeriesRecorder recorder(1u << 16);
  plane.register_sources(recorder);
  SloMonitor slo(&recorder, &plane.audit_log());
  SloSpec spec;
  spec.name = "deadline";
  spec.good = "sim.deadline_met";
  spec.total = "sim.deadline_total";
  spec.objective = 0.9;
  spec.windows = {{10.0, 1.0}, {60.0, 0.5}};
  slo.add(spec);

  Simulator::Options so;
  so.horizon = horizon;
  so.warmup = horizon * 0.1;
  so.seed = seed + 1;
  so.control_interval = 1.0;
  so.trace_capacity = capacity;
  so.obs_interval = obs_interval;
  so.recorder = &recorder;
  so.slo = &slo;
  Simulator sim(instance, central, so);
  sim.set_controller(plane.callback());
  const SimMetrics m = sim.run();

  const auto spans = plane.ctrl_trace().snapshot();
  const auto span_tally = ctrl_span_counts(spans);
  auto tally = [&](CtrlSpanEvent e) {
    return static_cast<unsigned long long>(
        span_tally[static_cast<std::size_t>(e)]);
  };
  std::printf(
      "obs-report: horizon=%.0fs drop=%.2f coordinator MTBF=%.1fs\n"
      "  deadline sat %.3f, %zu time-series samples (%zu columns), "
      "%zu spans\n"
      "  spans: sent=%llu delivered=%llu dropped=%llu dead_letter=%llu "
      "regrant=%llu adopted=%llu rejected_stale=%llu\n"
      "  slo[deadline]: alerts started=%llu stopped=%llu burn=%.2fx/%.2fx "
      "(10s/60s windows, objective 0.9)\n",
      horizon, drop, coord_mtbf, m.deadline_satisfaction, recorder.size(),
      recorder.columns().size(), spans.size(),
      tally(CtrlSpanEvent::kSent), tally(CtrlSpanEvent::kDelivered),
      tally(CtrlSpanEvent::kDropped), tally(CtrlSpanEvent::kDeadLetter),
      tally(CtrlSpanEvent::kRegrant), tally(CtrlSpanEvent::kAdopted),
      tally(CtrlSpanEvent::kRejectedStale),
      static_cast<unsigned long long>(slo.alerts_started()),
      static_cast<unsigned long long>(slo.alerts_stopped()),
      slo.specs() > 0 ? slo.burn_rate(0, 0) : 0.0,
      slo.specs() > 0 ? slo.burn_rate(0, 1) : 0.0);

  if (!trace_out.empty()) {
    const Json merged_doc =
        merged_trace_to_chrome_json(sim.trace(), plane.ctrl_trace());
    write_file(trace_out, merged_doc.dump_pretty() + "\n");
    std::printf("wrote %zu task events + %zu spans to %s\n",
                sim.trace().size(), spans.size(), trace_out.c_str());
  }
  if (!timeseries_out.empty()) {
    if (!recorder.write(timeseries_out)) return 1;
    std::printf("wrote %zu samples to %s\n", recorder.size(),
                timeseries_out.c_str());
  }
  if (!metrics_out.empty()) {
    const bool csv =
        metrics_out.size() >= 4 &&
        metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
    if (csv) {
      if (!write_sim_metrics(m, metrics_out)) return 1;
    } else {
      Json doc = sim_metrics_to_json(m);
      MetricsRegistry ctrl_registry;
      plane.publish_metrics(ctrl_registry);
      doc.set("ctrl", ctrl_registry.to_json());
      doc.set("slo", slo.to_json());
      write_file(metrics_out, doc.dump_pretty() + "\n");
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!audit_out.empty()) {
    const bool csv =
        audit_out.size() >= 4 &&
        audit_out.compare(audit_out.size() - 4, 4, ".csv") == 0;
    write_file(audit_out, csv ? plane.audit_log().to_table().to_csv()
                              : plane.audit_log().to_json().dump_pretty() +
                                    "\n");
    std::printf("wrote %zu audit records to %s\n", plane.audit_log().size(),
                audit_out.c_str());
  }
  return 0;
}

int cmd_models() {
  for (const auto& name : models::zoo_names()) {
    const auto g = models::by_name(name);
    std::printf("%-14s %3zu layers  %8.2f GFLOPs  %7.2f Mparams  %zu cuts\n",
                name.c_str(), g.size(),
                static_cast<double>(g.total_flops()) / 1e9,
                static_cast<double>(g.total_params()) / 1e6,
                g.clean_cuts().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "topology") return cmd_topology(parse_flags(argc, argv, 2));
    if (cmd == "optimize") return cmd_optimize(parse_flags(argc, argv, 2));
    if (cmd == "simulate") return cmd_simulate(parse_flags(argc, argv, 2));
    if (cmd == "admission") return cmd_admission(parse_flags(argc, argv, 2));
    if (cmd == "trace") return cmd_trace(parse_flags(argc, argv, 2));
    if (cmd == "validate-trace") {
      return cmd_validate_trace(parse_flags(argc, argv, 2));
    }
    if (cmd == "distributed") {
      return cmd_distributed(parse_flags(argc, argv, 2));
    }
    if (cmd == "obs-report") {
      return cmd_obs_report(parse_flags(argc, argv, 2));
    }
    if (cmd == "models") return cmd_models();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
