// Online adaptation scenario: wireless bandwidth swings between a good and a
// congested state while inference traffic flows. Runs the same deployment
// twice through the simulator — once frozen to the initial decision, once
// with the hysteresis-gated OnlineController re-optimizing live — and prints
// the timeline of re-optimizations.
//
//   $ ./examples/adaptive_offloading

#include <cstdio>
#include <vector>

#include "core/joint.hpp"
#include "core/online.hpp"
#include "edge/builders.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace scalpel;

int main() {
  std::printf("== Adaptive offloading under bandwidth dynamics ==\n\n");
  const auto topo = clusters::small_lab();
  const ProblemInstance instance(topo);
  const double good = topo.cell(0).bandwidth;

  Rng rng(99);
  const auto trace =
      BandwidthTrace::gilbert(good, mbps(16.0), 18.0, 10.0, 150.0, rng);
  std::printf("bandwidth trace (Gilbert good/bad):\n");
  for (const auto& seg : trace.segments()) {
    std::printf("  t=%6.1fs  %5.1f Mbps\n", seg.start,
                seg.bandwidth * 8.0 / 1e6);
  }
  std::printf("\n");

  const JointOptimizer optimizer;
  const Decision initial = optimizer.optimize(instance);

  struct Run {
    const char* name;
    SimMetrics metrics;
    std::vector<double> reopt_times;
  };
  std::vector<Run> runs;

  for (const bool adaptive : {false, true}) {
    Simulator::Options opts;
    opts.horizon = 150.0;
    opts.warmup = 5.0;
    opts.seed = 17;
    if (adaptive) opts.control_interval = 5.0;
    Simulator sim(instance, initial, opts);
    sim.set_cell_trace(0, trace);

    OnlineController::Options copts;
    copts.hysteresis = 0.25;
    OnlineController controller(topo, copts);
    std::vector<double> reopts;
    if (adaptive) {
      sim.set_controller([&](double now, const std::vector<double>& bw,
                             const std::vector<bool>& alive)
                             -> std::optional<Decision> {
        if (controller.observe(bw, alive)) {
          reopts.push_back(now);
          return controller.decision();
        }
        return std::nullopt;
      });
    }
    runs.push_back(Run{adaptive ? "adaptive" : "static", sim.run(),
                       std::move(reopts)});
  }

  Table t({"run", "mean ms", "p95 ms", "p99 ms", "deadline sat.",
           "re-optimizations"});
  for (const auto& r : runs) {
    t.add_row({r.name, Table::num(to_ms(r.metrics.latency.mean()), 1),
               Table::num(to_ms(r.metrics.latency.p95()), 1),
               Table::num(to_ms(r.metrics.latency.p99()), 1),
               Table::num(r.metrics.deadline_satisfaction, 3),
               Table::num(static_cast<std::int64_t>(r.reopt_times.size()))});
  }
  std::printf("%s\n", t.to_string().c_str());

  for (const auto& r : runs) {
    if (r.reopt_times.empty()) continue;
    std::printf("%s re-optimized at:", r.name);
    for (double ts : r.reopt_times) std::printf(" %.0fs", ts);
    std::printf("\n");
  }
  return 0;
}
