// Video analytics scenario: a fleet of smart cameras runs MobileNet-class
// classification on every frame. This example goes end-to-end *through real
// tensors*: it optimizes the surgery plan analytically, then executes the
// resulting multi-exit model on synthetic frames with the real kernels,
// showing early exits firing and the per-frame FLOPs saved.
//
//   $ ./examples/video_analytics

#include <cstdio>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "nn/models.hpp"
#include "surgery/multi_exit_runtime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace scalpel;

namespace {

ClusterTopology camera_fleet() {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "rooftop_ap", mbps(60.0), ms(3.0)});
  for (int i = 0; i < 3; ++i) {
    Device cam;
    cam.name = "cam" + std::to_string(i);
    cam.compute = profiles::iot_camera();
    cam.energy = profiles::energy_iot();
    cam.cell = cell;
    cam.model = "mobilenet_v1";
    cam.arrival_rate = 2.0;  // 2 fps analytics per camera
    cam.deadline = ms(250.0);
    cam.min_accuracy = 0.60;
    t.add_device(cam);
  }
  EdgeServer srv;
  srv.name = "street-cabinet-t4";
  srv.compute = profiles::edge_gpu_t4();
  srv.backhaul_rtt = ms(1.0);
  t.add_server(srv);
  t.validate();
  return t;
}

}  // namespace

int main() {
  std::printf("== Video analytics: camera fleet with multi-exit MobileNet ==\n\n");
  const ProblemInstance instance(camera_fleet());

  // 1. Optimize jointly.
  const JointOptimizer optimizer;
  const Decision decision = optimizer.optimize(instance);
  const auto& dd = decision.per_device[0];
  std::printf("per-camera plan: %s, %zu exits, E[latency]=%.1f ms, "
              "E[accuracy]=%.3f\n\n",
              dd.plan.device_only
                  ? "on-camera"
                  : ("cut@" + std::to_string(dd.plan.partition_after)).c_str(),
              dd.plan.policy.exits.size(),
              to_ms(decision.predicted[0].expected_latency),
              decision.predicted[0].expected_accuracy);

  // 2. Execute a surgered model on real frames. The demo uses the 10-class
  // tiny_cnn stand-in: with untrained heads, a 1000-way softmax never
  // clears a confidence threshold (it stays near-uniform), while a 10-way
  // head exercises the exit mechanics realistically and keeps the demo
  // fast. The exit structure mirrors the optimized plan.
  Graph demo_model = models::tiny_cnn(10, 32);
  ExitCandidateOptions copts;
  copts.num_classes = 10;
  copts.min_spacing = 0.0;
  const auto demo_cands = find_exit_candidates(demo_model, copts);
  // Map the optimized policy onto the demo model's candidate list by index.
  ExitPolicy policy;
  for (const auto& e : dd.plan.policy.exits) {
    if (e.candidate < demo_cands.size()) {
      policy.exits.push_back({e.candidate, e.theta});
    }
  }
  if (policy.exits.empty() && !demo_cands.empty()) {
    policy.exits.push_back({0, 0.0});
  }
  ThreadPool pool(4);
  const MultiExitRuntime runtime(demo_model, demo_cands, policy, 2024, &pool);
  std::printf("executing %zu synthetic frames through the surgered model "
              "(%zu exits enabled)...\n",
              std::size_t{20}, runtime.enabled_exits());

  Rng rng(7);
  Table t({"frame", "exit taken", "confidence", "MFLOPs run", "% of full"});
  const double full =
      static_cast<double>(demo_model.total_flops()) / 1e6;
  std::size_t early = 0;
  for (int f = 0; f < 20; ++f) {
    const auto frame =
        Tensor::randn(demo_model.node(0).out_shape, rng, 0.6f);
    const auto r = runtime.infer(frame);
    if (r.exit_index >= 0) ++early;
    const double mflops = static_cast<double>(r.executed_flops) / 1e6;
    t.add_row({Table::num(std::int64_t{f}),
               r.exit_index < 0 ? "final"
                                : "exit " + std::to_string(r.exit_index),
               Table::num(r.confidence, 3), Table::num(mflops, 1),
               Table::num(100.0 * mflops / full, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("%zu/20 frames exited early.\n", early);
  std::printf("(Heads are random-initialized here, so exit decisions follow\n"
              "confidence structure, not trained semantics — the latency\n"
              "mechanics are what this example demonstrates.)\n");
  return 0;
}
