# Drives the CLI through its full topology -> optimize -> simulate pipeline.
execute_process(COMMAND ${CLI} topology --preset small_lab
                        --out ${WORK_DIR}/smoke_topo.json
                RESULT_VARIABLE r1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "cli topology failed")
endif()
execute_process(COMMAND ${CLI} optimize --topology ${WORK_DIR}/smoke_topo.json
                        --scheme joint --out ${WORK_DIR}/smoke_decision.json
                RESULT_VARIABLE r2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "cli optimize failed")
endif()
execute_process(COMMAND ${CLI} simulate --topology ${WORK_DIR}/smoke_topo.json
                        --decision ${WORK_DIR}/smoke_decision.json
                        --horizon 10
                RESULT_VARIABLE r3)
if(NOT r3 EQUAL 0)
  message(FATAL_ERROR "cli simulate failed")
endif()
