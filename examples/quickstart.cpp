// Quickstart: build a small heterogeneous edge deployment, run the joint
// model-surgery + resource-allocation optimizer, compare against the
// baselines, and validate the analytical prediction with the discrete-event
// simulator.
//
//   $ ./examples/quickstart

#include <cmath>
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace scalpel;

namespace {

void describe_decision(const ProblemInstance& instance, const Decision& d) {
  Table t({"device", "model", "plan", "exits", "server", "share", "bw(Mbps)",
           "E[lat] ms", "E[acc]"});
  const auto& topo = instance.topology();
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const auto& dev = topo.device(static_cast<DeviceId>(i));
    const auto& dd = d.per_device[i];
    std::string plan = dd.plan.device_only
                           ? "local"
                           : "cut@" + std::to_string(dd.plan.partition_after);
    t.add_row({dev.name, dev.model, plan,
               std::to_string(dd.plan.policy.exits.size()),
               dd.plan.device_only ? "-" : topo.server(dd.server).name,
               dd.plan.device_only ? "-" : Table::num(dd.compute_share, 3),
               dd.plan.device_only
                   ? "-"
                   : Table::num(dd.bandwidth * 8.0 / 1e6, 1),
               Table::num(to_ms(d.predicted[i].expected_latency), 2),
               Table::num(d.predicted[i].expected_accuracy, 3)});
  }
  std::printf("%s", t.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("== Scalpel quickstart ==\n\n");
  const ClusterTopology topo = clusters::small_lab();
  const ProblemInstance instance(topo);

  std::printf("Cluster: %zu devices, %zu servers, %zu cells\n\n",
              topo.devices().size(), topo.servers().size(),
              topo.cells().size());

  // 1. Jointly optimize surgery + allocation.
  JointReport report;
  const JointOptimizer optimizer;
  Decision joint = optimizer.optimize(instance, &report);
  std::printf("Joint decision (solved in %.3fs, %zu rounds):\n",
              report.solve_seconds, report.iterations);
  describe_decision(instance, joint);

  // 2. Compare with the baselines on predicted mean latency.
  std::printf("\nScheme comparison (analytical prediction):\n");
  Table cmp({"scheme", "mean latency ms", "deadline sat."});
  auto add_scheme = [&](const Decision& d) {
    cmp.add_row({d.scheme,
                 std::isfinite(d.mean_latency)
                     ? Table::num(to_ms(d.mean_latency), 2)
                     : "unstable",
                 Table::num(predicted_deadline_satisfaction(instance, d), 3)});
  };
  add_scheme(baselines::device_only(instance));
  add_scheme(baselines::edge_only(instance));
  add_scheme(baselines::neurosurgeon(instance));
  add_scheme(baselines::local_multi_exit(instance));
  add_scheme(joint);
  std::printf("%s", cmp.to_string().c_str());

  // 3. Validate with the discrete-event simulator.
  Simulator::Options opts;
  opts.horizon = 30.0;
  opts.warmup = 3.0;
  Simulator sim(instance, joint, opts);
  const SimMetrics m = sim.run();
  std::printf("\nDES validation of the joint decision (%.0fs horizon):\n",
              m.horizon);
  std::printf("  completed tasks : %zu\n", m.completed);
  std::printf("  mean latency    : %.2f ms (predicted %.2f ms)\n",
              to_ms(m.latency.mean()), to_ms(joint.mean_latency));
  std::printf("  p99 latency     : %.2f ms\n", to_ms(m.latency.p99()));
  std::printf("  deadline sat.   : %.3f\n", m.deadline_satisfaction);
  std::printf("  accuracy        : %.3f\n", m.measured_accuracy);
  std::printf("  offload fraction: %.3f\n", m.offload_fraction);
  return 0;
}
