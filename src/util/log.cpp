#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace scalpel {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

void emit(LogLevel level, const char* tag, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[scalpel %s] %s\n", tag, msg.c_str());
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_debug(const std::string& msg) { emit(LogLevel::kDebug, "debug", msg); }
void log_info(const std::string& msg) { emit(LogLevel::kInfo, "info", msg); }
void log_warn(const std::string& msg) { emit(LogLevel::kWarn, "warn", msg); }
void log_error(const std::string& msg) { emit(LogLevel::kError, "error", msg); }

}  // namespace scalpel
