#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace scalpel {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;
std::mutex g_mutex;
LogCapture* g_capture = nullptr;        // guarded by g_mutex
thread_local double t_sim_time = -1.0;  // < 0 means "not in a simulation"

void load_level_from_env() {
  const char* env = std::getenv("SCALPEL_LOG_LEVEL");
  if (!env) return;
  LogLevel level;
  if (parse_log_level(env, &level)) {
    g_level.store(level, std::memory_order_relaxed);
  } else {
    std::fprintf(stderr,
                 "[scalpel warn] ignoring unrecognized SCALPEL_LOG_LEVEL=%s "
                 "(expected debug|info|warn|error|off or 0-4)\n",
                 env);
  }
}

LogLevel effective_level() {
  std::call_once(g_env_once, load_level_from_env);
  return g_level.load(std::memory_order_relaxed);
}

/// "HH:MM:SS.mmm" local wall time, for correlating logs across processes.
std::string wall_stamp() {
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
#if defined(_WIN32)
  localtime_s(&tm, &t);
#else
  localtime_r(&t, &tm);
#endif
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

void emit(LogLevel level, const char* tag, const std::string& msg) {
  if (level < effective_level()) return;
  std::string suffix;
  if (t_sim_time >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " t=%.3fs", t_sim_time);
    suffix = buf;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_capture) {
    // Wall time omitted so captured lines are assertable byte-for-byte.
    detail_log_capture_append("[scalpel " + std::string(tag) + suffix + "] " +
                              msg);
    return;
  }
  std::fprintf(stderr, "[scalpel %s %s%s] %s\n", tag, wall_stamp().c_str(),
               suffix.c_str(), msg.c_str());
}

}  // namespace

void detail_log_capture_append(const std::string& line) {
  LogCapture* cap = g_capture;  // caller holds g_mutex
  if (cap->size_ < cap->capacity_) {
    cap->ring_[cap->head_] = line;
    ++cap->size_;
  } else {
    cap->ring_[cap->head_] = line;
    ++cap->dropped_;
  }
  cap->head_ = cap->head_ + 1 == cap->capacity_ ? 0 : cap->head_ + 1;
}

bool parse_log_level(const std::string& text, LogLevel* out) {
  std::string lower;
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") *out = LogLevel::kDebug;
  else if (lower == "info" || lower == "1") *out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning" || lower == "2")
    *out = LogLevel::kWarn;
  else if (lower == "error" || lower == "3") *out = LogLevel::kError;
  else if (lower == "off" || lower == "none" || lower == "4")
    *out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, [] {});  // explicit setting beats the env var
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return effective_level(); }

void set_log_sim_time(double now) { t_sim_time = now; }
void clear_log_sim_time() { t_sim_time = -1.0; }

void log_debug(const std::string& msg) { emit(LogLevel::kDebug, "debug", msg); }
void log_info(const std::string& msg) { emit(LogLevel::kInfo, "info", msg); }
void log_warn(const std::string& msg) { emit(LogLevel::kWarn, "warn", msg); }
void log_error(const std::string& msg) { emit(LogLevel::kError, "error", msg); }

LogCapture::LogCapture(std::size_t capacity)
    : ring_(capacity ? capacity : 1), capacity_(capacity ? capacity : 1) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  previous_ = g_capture;
  g_capture = this;
}

LogCapture::~LogCapture() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_capture = previous_;
}

std::vector<std::string> LogCapture::entries() const {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<std::string> out;
  out.reserve(size_);
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::uint64_t LogCapture::dropped() const {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return dropped_;
}

bool LogCapture::contains(const std::string& needle) const {
  for (const auto& line : entries()) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

void LogCapture::clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace scalpel
