#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace scalpel {

Json Json::null() { return Json(); }

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  SCALPEL_REQUIRE(std::isfinite(v), "JSON numbers must be finite");
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  SCALPEL_REQUIRE(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  SCALPEL_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  const double v = as_number();
  const double r = std::round(v);
  SCALPEL_REQUIRE(std::abs(v - r) < 1e-9 && std::abs(v) < 9.0e15,
                  "JSON number is not an exact integer");
  return static_cast<std::int64_t>(r);
}

const std::string& Json::as_string() const {
  SCALPEL_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return keys_.size();
  SCALPEL_REQUIRE(false, "JSON size() on a scalar");
}

const Json& Json::at(std::size_t i) const {
  SCALPEL_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  SCALPEL_REQUIRE(i < array_.size(), "JSON array index out of range");
  return array_[i];
}

Json& Json::push_back(Json v) {
  SCALPEL_REQUIRE(kind_ == Kind::kArray, "push_back on non-array JSON");
  array_.push_back(std::move(v));
  return array_.back();
}

bool Json::contains(const std::string& key) const {
  SCALPEL_REQUIRE(kind_ == Kind::kObject, "contains() on non-object JSON");
  return members_.count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  SCALPEL_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  const auto it = members_.find(key);
  SCALPEL_REQUIRE(it != members_.end(), "missing JSON key: " + key);
  return it->second;
}

Json& Json::set(const std::string& key, Json v) {
  SCALPEL_REQUIRE(kind_ == Kind::kObject, "set() on non-object JSON");
  auto it = members_.find(key);
  if (it == members_.end()) {
    keys_.push_back(key);
    it = members_.emplace(key, std::move(v)).first;
  } else {
    it->second = std::move(v);
  }
  return it->second;
}

const std::vector<std::string>& Json::keys() const {
  SCALPEL_REQUIRE(kind_ == Kind::kObject, "keys() on non-object JSON");
  return keys_;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return number_ == other.number_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject:
      return keys_ == other.keys_ && members_ == other.members_;
  }
  return false;
}

namespace {

void escape_into(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void number_into(double v, std::string* out) {
  // Integers print without a fraction; everything else round-trips via %.17g.
  if (std::abs(v) < 9.0e15 && v == std::round(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

}  // namespace

void Json::write(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : "";
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: *out += "null"; return;
    case Kind::kBool: *out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: number_into(number_, out); return;
    case Kind::kString: escape_into(string_, out); return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      *out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].write(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += nl;
      }
      *out += closing_pad;
      *out += "]";
      return;
    }
    case Kind::kObject: {
      if (keys_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      *out += nl;
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        *out += pad;
        escape_into(keys_[i], out);
        *out += kv_sep;
        members_.at(keys_[i]).write(out, indent, depth + 1);
        if (i + 1 < keys_.size()) *out += ",";
        *out += nl;
      }
      *out += closing_pad;
      *out += "}";
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(&out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(&out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    SCALPEL_REQUIRE(false, "JSON parse error at offset " +
                               std::to_string(pos_) + ": " + msg);
  }
  void require(bool cond, const char* msg) const {
    if (!cond) fail(msg);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char ch = peek();
    ++pos_;
    return ch;
  }
  void expect(char ch) {
    if (take() != ch) fail(std::string("expected '") + ch + "'");
  }
  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        require(consume_literal("true"), "bad literal");
        return Json::boolean(true);
      case 'f':
        require(consume_literal("false"), "bad literal");
        return Json::boolean(false);
      case 'n':
        require(consume_literal("null"), "bad literal");
        return Json::null();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char ch = take();
      if (ch == '}') return obj;
      require(ch == ',', "expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char ch = take();
      if (ch == ']') return arr;
      require(ch == ',', "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char ch = take();
      if (ch == '"') return out;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start, "expected a number");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    require(end == tok.c_str() + tok.size(), "malformed number");
    require(std::isfinite(v), "number out of range");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace scalpel
