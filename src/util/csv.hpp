#pragma once

#include <string>

namespace scalpel {
class Table;

/// Write a table to a CSV file; creates/truncates `path`. Returns false (and
/// logs) on I/O failure rather than throwing — bench binaries treat CSV export
/// as best-effort.
bool write_csv(const Table& table, const std::string& path);

}  // namespace scalpel
