#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scalpel {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SCALPEL_REQUIRE(!stop_, "submit on stopped thread pool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size() + 1);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  std::size_t lo = begin + chunk;  // first chunk runs on the caller
  for (std::size_t c = 1; c < chunks && lo < end; ++c) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
    lo = hi;
  }
  // An exception (from the caller's chunk or an early future) must not
  // unwind past the remaining futures: their tasks capture `fn` by
  // reference into this frame. Drain every future first, then rethrow.
  std::exception_ptr first_error;
  try {
    fn(begin, std::min(end, begin + chunk));
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace scalpel
