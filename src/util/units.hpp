#pragma once

#include <cstdint>

namespace scalpel {

// The codebase carries all latencies in seconds, all sizes in bytes, all
// rates in units/second, as plain doubles. These helpers keep call sites
// legible ("mbps(20)" rather than "20e6 / 8").

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;

/// Megabits/second -> bytes/second.
constexpr double mbps(double v) { return v * 1e6 / 8.0; }
/// Gigabits/second -> bytes/second.
constexpr double gbps(double v) { return v * 1e9 / 8.0; }
/// GFLOP/s -> FLOP/s.
constexpr double gflops(double v) { return v * 1e9; }
/// Milliseconds -> seconds.
constexpr double ms(double v) { return v * kMilli; }
/// Kilobytes / megabytes -> bytes.
constexpr double kib(double v) { return v * 1024.0; }
constexpr double mib(double v) { return v * 1024.0 * 1024.0; }

/// Seconds -> milliseconds (for printing).
constexpr double to_ms(double seconds) { return seconds * 1e3; }

}  // namespace scalpel
