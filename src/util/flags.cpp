#include "util/flags.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace scalpel::flags {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

bool parse_size(const std::string& text, std::uint64_t min_value,
                std::uint64_t max_value, std::uint64_t* out,
                std::string* error) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    set_error(error, "'" + text + "' is not a non-negative integer");
    return false;
  }
  if (value < min_value || value > max_value) {
    set_error(error, "'" + text + "' is out of range [" +
                         std::to_string(min_value) + ", " +
                         std::to_string(max_value) + "]");
    return false;
  }
  *out = value;
  return true;
}

bool parse_double(const std::string& text, double min_value, double max_value,
                  double* out, std::string* error) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty() ||
      !std::isfinite(value)) {
    set_error(error, "'" + text + "' is not a finite number");
    return false;
  }
  if (value < min_value || value > max_value) {
    set_error(error, "'" + text + "' is out of range [" +
                         fmt_double(min_value) + ", " + fmt_double(max_value) +
                         "]");
    return false;
  }
  *out = value;
  return true;
}

}  // namespace scalpel::flags
