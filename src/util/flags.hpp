#pragma once

#include <cstdint>
#include <string>

namespace scalpel::flags {

/// Strict whole-token numeric parsing for command-line flags. Unlike
/// std::stoul/atof — which accept "8abc", silently wrap negatives through
/// unsigned conversion, and turn garbage into 0 — these reject anything that
/// is not entirely a number within the caller's bounds, and report a one-line
/// human-readable reason instead of throwing.
///
/// On success: *out is set, true returned. On failure: *out untouched,
/// *error set (when non-null), false returned. Never throws.

/// Parses an unsigned integer in [min_value, max_value]. Leading '+'/'-',
/// whitespace, hex prefixes, and trailing junk are all rejected.
bool parse_size(const std::string& text, std::uint64_t min_value,
                std::uint64_t max_value, std::uint64_t* out,
                std::string* error);

/// Parses a finite decimal in [min_value, max_value]. The bounds may be
/// infinite (they only clamp the accepted range, not the syntax); the parsed
/// value itself must be finite — "inf"/"nan" are rejected.
bool parse_double(const std::string& text, double min_value, double max_value,
                  double* out, std::string* error);

}  // namespace scalpel::flags
