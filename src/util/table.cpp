#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace scalpel {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SCALPEL_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SCALPEL_REQUIRE(cells.size() == headers_.size(),
                  "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::mean_ci(double mean, double ci95, int precision) {
  return num(mean, precision) + " ± " + num(ci95, precision);
}

std::string Table::to_string() const {
  // Display width, not byte count: multi-byte UTF-8 sequences (e.g. the "±"
  // in mean_ci cells) occupy one terminal column but several bytes.
  auto display_width = [](const std::string& s) {
    std::size_t w = 0;
    for (unsigned char ch : s) {
      if ((ch & 0xc0) != 0x80) ++w;  // skip UTF-8 continuation bytes
    }
    return w;
  };
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = display_width(headers_[c]);
    for (const auto& r : rows_) {
      widths[c] = std::max(widths[c], display_width(r[c]));
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c] << std::string(widths[c] - display_width(cells[c]), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << quote(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

}  // namespace scalpel
