#include "util/csv.hpp"

#include <fstream>

#include "util/log.hpp"
#include "util/table.hpp"

namespace scalpel {

bool write_csv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("could not open CSV output file: " + path);
    return false;
  }
  out << table.to_csv();
  return static_cast<bool>(out);
}

}  // namespace scalpel
