#pragma once

#include <cstddef>
#include <vector>

namespace scalpel {

/// Streaming mean/variance via Welford's algorithm; O(1) memory.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }
  /// Coefficient of variation (stddev / mean); 0 if mean is 0.
  double cov() const;
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample reservoir with exact quantiles. Suited to the sample counts in this
/// repo (up to a few million latency samples per run).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }
  /// Append every sample of `other` (replication fan-in). Merge order does
  /// not affect any statistic except the raw values() ordering.
  void merge(const Samples& other);

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Half-width of the 95% Student-t confidence interval on the mean; 0 for
  /// fewer than two samples. Uses the t distribution (not the normal
  /// approximation) because replication counts are small (often 8-30).
  double ci95_halfwidth() const;
  double min() const;
  double max() const;
  /// Exact quantile with linear interpolation; q in [0, 1]. Requires data.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Point summary of a set of per-replication scalars: what a reconstructed
/// figure cell reports ("mean ± 95% CI over n replications").
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  // half-width, Student-t

  /// True when `value` lies inside [mean - ci95, mean + ci95].
  bool covers(double value) const;
};

Summary summarize(const Samples& samples);
Summary summarize(const std::vector<double>& xs);

/// Two-sided 97.5% Student-t critical value for `df` degrees of freedom
/// (exact table through df=30, normal limit beyond). Exposed so tests and
/// documentation can state the CI formula precisely.
double t_critical_975(std::size_t df);

/// Fixed-bin histogram over [lo, hi); under/overflow captured at the edges.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace scalpel
