#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace scalpel {

/// Deterministic, cross-platform PRNG (xoshiro256**). We deliberately avoid
/// std::mt19937 + std::*_distribution because distribution outputs are
/// implementation-defined; every simulation in this repo must reproduce
/// bit-identically across toolchains.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double exponential(double lambda);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal such that the *result* has the given mean and coefficient of
  /// variation. Handy for heterogeneity knobs ("server speeds with CoV 0.4").
  double lognormal_mean_cov(double mean, double cov);

  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  std::int64_t poisson(double mean);

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-entity randomness).
  /// Consumes one draw from this stream, so the result depends on how many
  /// values were drawn before the call. For scheduling-independent streams
  /// use substream() instead.
  Rng split();

  /// Derive the seed of substream `stream_id` from a base seed. Pure
  /// SplitMix64-based function of (seed, stream_id): the result never
  /// depends on draw history, thread scheduling, or how many other
  /// substreams were derived — the contract the replicated-simulation
  /// runner's bit-identical aggregation rests on. Golden values are pinned
  /// in tests/util/rng_test.cpp; do not change without updating them.
  static std::uint64_t substream_seed(std::uint64_t seed,
                                      std::uint64_t stream_id);

  /// Independent stream `stream_id` derived from this generator's
  /// *construction seed* (not its current state): r.substream(k) is the same
  /// generator no matter how much r has been used or jumped.
  Rng substream(std::uint64_t stream_id) const;

  /// Advance 2^128 steps (the xoshiro256** jump polynomial): partitions one
  /// stream into non-overlapping blocks of 2^128 draws for callers that
  /// prefer jumping over reseeding.
  void jump();

  /// The seed this generator was constructed with (substream derivation key).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace scalpel
