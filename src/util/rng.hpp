#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace scalpel {

/// Deterministic, cross-platform PRNG (xoshiro256**). We deliberately avoid
/// std::mt19937 + std::*_distribution because distribution outputs are
/// implementation-defined; every simulation in this repo must reproduce
/// bit-identically across toolchains.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double exponential(double lambda);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal such that the *result* has the given mean and coefficient of
  /// variation. Handy for heterogeneity knobs ("server speeds with CoV 0.4").
  double lognormal_mean_cov(double mean, double cov);

  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  std::int64_t poisson(double mean);

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-entity randomness).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace scalpel
