#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scalpel {

/// Fixed-size thread pool used by the NN kernels and the parameter-sweep
/// benches. Tasks are type-erased closures; `parallel_for` provides the
/// common blocked-index pattern with static chunking (deterministic work
/// assignment, which keeps kernel timings stable run-to-run).
class ThreadPool {
 public:
  /// n == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end), split into contiguous chunks across the
  /// pool (the calling thread works too). Blocks until all chunks finish.
  /// Exceptions from any chunk propagate to the caller.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed, hardware-sized).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace scalpel
