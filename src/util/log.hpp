#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scalpel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; defaults to kInfo, or to the value of the
/// SCALPEL_LOG_LEVEL environment variable when set (one of debug, info,
/// warn, error, off — case-insensitive — or the numeric levels 0-4; read
/// once at first use). set_log_level() overrides the environment.
/// Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name/number as accepted by SCALPEL_LOG_LEVEL; returns
/// false (leaving `out` untouched) on unrecognized input.
bool parse_log_level(const std::string& text, LogLevel* out);

/// Simulation clock shown in log lines as "t=<seconds>s". Thread-local so
/// parallel replications each stamp their own clock; negative clears it
/// (wall-clock-only lines). Simulators set this as their event loop
/// advances.
void set_log_sim_time(double now);
void clear_log_sim_time();

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

void detail_log_capture_append(const std::string& line);

/// RAII test helper: while alive, log lines at or above the current level
/// land in a bounded ring buffer instead of stderr (formatted exactly as
/// they would have printed, minus the wall timestamp so assertions are
/// reproducible). Captures nest; the innermost active capture wins.
class LogCapture {
 public:
  explicit LogCapture(std::size_t capacity = 256);
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  /// Captured lines, oldest first (at most `capacity`).
  std::vector<std::string> entries() const;
  /// Lines overwritten because the ring was full.
  std::uint64_t dropped() const;
  /// True if any captured line contains `needle`.
  bool contains(const std::string& needle) const;
  void clear();

 private:
  friend void detail_log_capture_append(const std::string& line);
  std::vector<std::string> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  LogCapture* previous_ = nullptr;
};

}  // namespace scalpel
