#pragma once

#include <string>

namespace scalpel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; defaults to kInfo. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace scalpel
