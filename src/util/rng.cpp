#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace scalpel {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the full 256-bit state from splitmix64, per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SCALPEL_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SCALPEL_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::exponential(double lambda) {
  SCALPEL_REQUIRE(lambda > 0.0, "exponential rate must be positive");
  // Inversion; 1-u in (0,1] avoids log(0).
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller without caching the second variate: determinism beats the
  // factor-of-two cost at the call volumes we see.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793238462643383279502884 * u2);
  return mean + stddev * z;
}

double Rng::lognormal_mean_cov(double mean, double cov) {
  SCALPEL_REQUIRE(mean > 0.0, "lognormal mean must be positive");
  SCALPEL_REQUIRE(cov >= 0.0, "lognormal CoV must be non-negative");
  if (cov == 0.0) return mean;
  const double sigma2 = std::log(1.0 + cov * cov);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::int64_t Rng::poisson(double mean) {
  SCALPEL_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  SCALPEL_REQUIRE(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    SCALPEL_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  SCALPEL_REQUIRE(total > 0.0, "categorical needs a positive total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t Rng::substream_seed(std::uint64_t seed,
                                  std::uint64_t stream_id) {
  // Domain-separate from the root stream (substream 0 must not replay the
  // parent), fold in the stream id at golden-ratio stride, then run two
  // SplitMix64 finalizations so adjacent ids avalanche into unrelated seeds.
  std::uint64_t s = (seed ^ 0x8e9c5c2f3a1db4d7ULL) +
                    stream_id * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  return a ^ rotl(b, 23);
}

Rng Rng::substream(std::uint64_t stream_id) const {
  return Rng(substream_seed(seed_, stream_id));
}

void Rng::jump() {
  // Jump polynomial published with xoshiro256**: equivalent to 2^128 calls
  // to next_u64().
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      next_u64();
    }
  }
  state_ = acc;
}

}  // namespace scalpel
