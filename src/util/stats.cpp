#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace scalpel {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::cov() const {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

double RunningStat::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(n_));
}

double t_critical_975(std::size_t df) {
  SCALPEL_REQUIRE(df >= 1, "t critical value needs df >= 1");
  // Two-sided 95% (upper-tail 0.975) quantiles of Student's t.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  constexpr std::size_t kTableSize = sizeof(kTable) / sizeof(kTable[0]);
  if (df <= kTableSize) return kTable[df - 1];
  return 1.959963984540054;  // normal limit
}

void Samples::merge(const Samples& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  SCALPEL_REQUIRE(!xs_.empty(), "mean of empty sample set");
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::variance() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return s / static_cast<double>(xs_.size() - 1);
}

double Samples::stddev() const { return std::sqrt(variance()); }

double Samples::ci95_halfwidth() const {
  if (xs_.size() < 2) return 0.0;
  return t_critical_975(xs_.size() - 1) * stddev() /
         std::sqrt(static_cast<double>(xs_.size()));
}

double Samples::min() const {
  SCALPEL_REQUIRE(!xs_.empty(), "min of empty sample set");
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  SCALPEL_REQUIRE(!xs_.empty(), "max of empty sample set");
  return *std::max_element(xs_.begin(), xs_.end());
}

double Samples::quantile(double q) const {
  SCALPEL_REQUIRE(!xs_.empty(), "quantile of empty sample set");
  SCALPEL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

bool Summary::covers(double value) const {
  return value >= mean - ci95 && value <= mean + ci95;
}

Summary summarize(const Samples& samples) {
  Summary s;
  s.n = samples.count();
  if (s.n == 0) return s;
  s.mean = samples.mean();
  s.stddev = samples.stddev();
  s.ci95 = samples.ci95_halfwidth();
  return s;
}

Summary summarize(const std::vector<double>& xs) {
  Samples s;
  s.reserve(xs.size());
  for (double x : xs) s.add(x);
  return summarize(s);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SCALPEL_REQUIRE(hi > lo, "histogram needs hi > lo");
  SCALPEL_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace scalpel
