#pragma once

#include <string>
#include <vector>

namespace scalpel {

/// Console table writer used by every bench binary so reproduced tables and
/// figure series print with a single, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);
  /// "mean ± ci" cell for replicated measurements (both at `precision`).
  static std::string mean_ci(double mean, double ci95, int precision = 2);

  /// Render with aligned columns and a header rule.
  std::string to_string() const;
  /// Render as CSV (RFC-4180-ish quoting).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scalpel
