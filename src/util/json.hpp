#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace scalpel {

/// Minimal JSON document model + parser + writer. Exists so decisions,
/// cluster descriptions and experiment configs can cross process boundaries
/// (CLI configs, deployment handoff) without external dependencies.
///
/// Supported: objects, arrays, strings (with \" \\ \/ \b \f \n \r \t \uXXXX
/// for BMP code points), numbers (doubles), booleans, null. Object key
/// order is preserved on write via insertion order.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json null();
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw ContractViolation on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  // number, checked integral within 2^53
  const std::string& as_string() const;

  // --- Array ---
  std::size_t size() const;  // array or object
  const Json& at(std::size_t i) const;
  Json& push_back(Json v);  // returns ref to the stored element

  // --- Object ---
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  /// Insert-or-assign; returns ref to the stored element.
  Json& set(const std::string& key, Json v);
  /// Keys in insertion order.
  const std::vector<std::string>& keys() const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  std::string dump_pretty() const;

  /// Parse a complete JSON document; throws ContractViolation with a
  /// position-annotated message on malformed input.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void write(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::string> keys_;
  std::map<std::string, Json> members_;
};

}  // namespace scalpel
