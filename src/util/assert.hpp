#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace scalpel {

/// Thrown by SCALPEL_REQUIRE on contract violation. Using an exception (rather
/// than abort) keeps violations testable and lets callers recover from bad
/// configuration values.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + cond + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}

}  // namespace scalpel

/// Precondition / invariant check that is always on (config & geometry checks
/// are cheap relative to the work they guard).
#define SCALPEL_REQUIRE(cond, msg)                                  \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::scalpel::contract_fail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                               \
  } while (0)
