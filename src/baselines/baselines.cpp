#include "baselines/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/objective.hpp"
#include "profile/latency_model.hpp"
#include "sched/offloading.hpp"
#include "surgery/exit_setting.hpp"
#include "surgery/partition.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel::baselines {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Equal uplink split among a cell's offloading devices.
std::vector<double> equal_bandwidth(const ProblemInstance& instance,
                                    const std::vector<SurgeryPlan>& plans) {
  const auto& topo = instance.topology();
  std::vector<double> bw(plans.size(), 0.0);
  for (const auto& cell : topo.cells()) {
    std::vector<DeviceId> offloaders;
    for (DeviceId d : topo.devices_in_cell(cell.id)) {
      if (!plans[static_cast<std::size_t>(d)].device_only) {
        offloaders.push_back(d);
      }
    }
    for (DeviceId d : offloaders) {
      bw[static_cast<std::size_t>(d)] =
          cell.bandwidth / static_cast<double>(offloaders.size());
    }
  }
  return bw;
}

/// Offloading statistics for fixed plans: per-device offload probability,
/// upload bytes, and conditional server busy time on every server.
struct OffloadStats {
  std::vector<double> p_off;
  std::vector<std::int64_t> bytes;
  std::vector<std::vector<double>> s_cond;  // [device][server]
};

OffloadStats offload_stats(const ProblemInstance& instance,
                           const std::vector<SurgeryPlan>& plans,
                           const std::vector<double>& bandwidth) {
  const auto& topo = instance.topology();
  const std::size_t n = plans.size();
  const std::size_t m = topo.servers().size();
  OffloadStats st;
  st.p_off.assign(n, 0.0);
  st.bytes.assign(n, 0);
  st.s_cond.assign(n, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    if (plans[i].device_only) continue;
    const auto id = static_cast<DeviceId>(i);
    const auto& dev = topo.device(id);
    const auto& bundle = instance.bundle_for(id);
    for (std::size_t j = 0; j < m; ++j) {
      LinkSpec link;
      link.bandwidth = std::max(bandwidth[i], 1.0);
      link.rtt = topo.path_rtt(id, static_cast<ServerId>(j));
      const PlanModel pm(bundle.graph, bundle.candidates, plans[i],
                         bundle.accuracy, dev.compute,
                         topo.server(static_cast<ServerId>(j)).compute, link);
      if (j == 0) {
        st.p_off[i] = pm.breakdown().offload_prob;
        st.bytes[i] = pm.breakdown().upload_bytes;
      }
      st.s_cond[i][j] = pm.breakdown().offload_prob > 0.0
                            ? pm.breakdown().expected_server_time /
                                  pm.breakdown().offload_prob
                            : 1e-9;
    }
  }
  return st;
}

/// Builds the offloading problem over the offloading subset; returns the
/// index map from problem rows to device ids.
std::vector<std::size_t> build_problem(const ProblemInstance& instance,
                                       const std::vector<SurgeryPlan>& plans,
                                       const std::vector<double>& bandwidth,
                                       const OffloadStats& st,
                                       OffloadingProblem* prob) {
  const auto& topo = instance.topology();
  const std::size_t m = topo.servers().size();
  std::vector<std::size_t> rows;
  prob->capacity.assign(m, 1.0);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (plans[i].device_only || st.p_off[i] <= 0.0) continue;
    const auto id = static_cast<DeviceId>(i);
    rows.push_back(i);
    prob->rate.push_back(topo.device(id).arrival_rate * st.p_off[i]);
    std::vector<double> base(m, 0.0);
    std::vector<double> work(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      base[j] = transfer_latency(st.bytes[i], bandwidth[i],
                                 topo.path_rtt(id, static_cast<ServerId>(j)));
      work[j] = std::max(st.s_cond[i][j], 1e-9);
    }
    prob->base_latency.push_back(std::move(base));
    prob->work.push_back(std::move(work));
  }
  return rows;
}

/// Assembles and evaluates a Decision from plans + assignment. Shares come
/// from the Kleinrock split (epsilon floor keeps the evaluator from throwing
/// on overloaded servers — they surface as unstable instead).
Decision finalize(const ProblemInstance& instance, const std::string& scheme,
                  const std::vector<SurgeryPlan>& plans,
                  const std::vector<double>& bandwidth,
                  const std::vector<int>& server_of_rows,
                  const std::vector<std::size_t>& rows,
                  const OffloadingProblem& prob) {
  Decision d;
  d.scheme = scheme;
  d.per_device.resize(plans.size());
  std::vector<double> shares;
  if (!rows.empty()) shares = kleinrock_shares(prob, server_of_rows);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    d.per_device[i].plan = plans[i];
  }
  for (std::size_t k = 0; k < rows.size(); ++k) {
    auto& dd = d.per_device[rows[k]];
    dd.server = server_of_rows[k];
    dd.compute_share = std::clamp(shares[k], 1e-9, 1.0);
    dd.bandwidth = bandwidth[rows[k]];
  }
  // Devices whose plan offloads but never made it into the problem (zero
  // offload probability) fall back to device-only semantics.
  for (std::size_t i = 0; i < plans.size(); ++i) {
    auto& dd = d.per_device[i];
    if (!dd.plan.device_only && dd.server < 0) dd.plan.device_only = true;
  }
  evaluate_decision(instance, d);
  return d;
}

/// Common pipeline: fixed plans -> equal bandwidth -> greedy servers with
/// Kleinrock shares.
Decision allocate_greedy(const ProblemInstance& instance,
                         const std::string& scheme,
                         const std::vector<SurgeryPlan>& plans) {
  const auto bandwidth = equal_bandwidth(instance, plans);
  const auto st = offload_stats(instance, plans, bandwidth);
  OffloadingProblem prob;
  const auto rows = build_problem(instance, plans, bandwidth, st, &prob);
  std::vector<int> assign;
  if (!rows.empty()) {
    const auto solution = greedy_offloading(prob);
    assign = solution.server_of;
  }
  return finalize(instance, scheme, plans, bandwidth, assign, rows, prob);
}

SurgeryPlan offload_all_plan() {
  SurgeryPlan p;
  p.partition_after = 0;  // cut right after the input node
  return p;
}

}  // namespace

Decision device_only(const ProblemInstance& instance) {
  const std::size_t n = instance.topology().devices().size();
  std::vector<SurgeryPlan> plans(n);
  for (auto& p : plans) p.device_only = true;
  Decision d;
  d.scheme = "device_only";
  d.per_device.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.per_device[i].plan = plans[i];
  evaluate_decision(instance, d);
  return d;
}

Decision edge_only(const ProblemInstance& instance) {
  const std::size_t n = instance.topology().devices().size();
  std::vector<SurgeryPlan> plans(n, offload_all_plan());
  return allocate_greedy(instance, "edge_only", plans);
}

Decision neurosurgeon(const ProblemInstance& instance) {
  const auto& topo = instance.topology();
  const std::size_t n = topo.devices().size();
  const std::size_t m = topo.servers().size();

  // Partition against the fastest server at the expected fair share.
  std::size_t fastest = 0;
  for (std::size_t j = 1; j < m; ++j) {
    if (topo.server(static_cast<ServerId>(j)).compute.peak_flops >
        topo.server(static_cast<ServerId>(fastest)).compute.peak_flops) {
      fastest = j;
    }
  }
  const double fair_share =
      std::min(1.0, static_cast<double>(m) / static_cast<double>(n));

  std::vector<SurgeryPlan> all_offload(n, offload_all_plan());
  const auto bandwidth = equal_bandwidth(instance, all_offload);

  std::vector<SurgeryPlan> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<DeviceId>(i);
    const auto& dev = topo.device(id);
    const auto& bundle = instance.bundle_for(id);
    LinkSpec link;
    link.bandwidth = bandwidth[i];
    link.rtt = topo.path_rtt(id, static_cast<ServerId>(fastest));
    const auto choice = optimal_partition(
        bundle.graph, dev.compute,
        topo.server(static_cast<ServerId>(fastest)).compute.scaled(fair_share),
        link);
    plans[i].device_only = choice.device_only;
    plans[i].partition_after = choice.device_only ? 0 : choice.cut_after;
  }
  return allocate_greedy(instance, "neurosurgeon", plans);
}

Decision local_multi_exit(const ProblemInstance& instance) {
  const auto& topo = instance.topology();
  const std::size_t n = topo.devices().size();
  std::vector<SurgeryPlan> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<DeviceId>(i);
    const auto& dev = topo.device(id);
    const auto& bundle = instance.bundle_for(id);
    ExitSettingOptions es;
    es.min_accuracy = dev.min_accuracy;
    const auto r = dp_exit_setting(bundle.graph, bundle.candidates,
                                   bundle.accuracy, dev.compute, es);
    plans[i].device_only = true;
    if (r.feasible) plans[i].policy = r.policy;
  }
  Decision d;
  d.scheme = "local_multi_exit";
  d.per_device.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.per_device[i].plan = plans[i];
  evaluate_decision(instance, d);
  return d;
}

Decision random_scheme(const ProblemInstance& instance, std::uint64_t seed) {
  Rng rng(seed);
  const auto& topo = instance.topology();
  const std::size_t n = topo.devices().size();
  const std::size_t m = topo.servers().size();
  std::vector<SurgeryPlan> plans(n);
  std::vector<int> forced_server(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& bundle = instance.bundle_for(static_cast<DeviceId>(i));
    const auto cuts = bundle.graph.clean_cuts();
    const auto pick = rng.uniform_int(0, static_cast<std::int64_t>(cuts.size()));
    if (pick == static_cast<std::int64_t>(cuts.size())) {
      plans[i].device_only = true;
    } else {
      plans[i].partition_after = cuts[static_cast<std::size_t>(pick)].after;
      forced_server[i] = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    }
  }
  const auto bandwidth = equal_bandwidth(instance, plans);
  const auto st = offload_stats(instance, plans, bandwidth);
  OffloadingProblem prob;
  const auto rows = build_problem(instance, plans, bandwidth, st, &prob);
  std::vector<int> assign;
  assign.reserve(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    assign.push_back(forced_server[rows[k]]);
  }
  return finalize(instance, "random", plans, bandwidth, assign, rows, prob);
}

Decision small_exhaustive(const ProblemInstance& instance) {
  const auto& topo = instance.topology();
  const std::size_t n = topo.devices().size();
  const std::size_t m = topo.servers().size();
  SCALPEL_REQUIRE(n <= 4, "small_exhaustive limited to <= 4 devices");

  // Option space per device: device-only, or (cut, server) over a small
  // subsampled cut set.
  struct Option {
    SurgeryPlan plan;
    int server = -1;
  };
  std::vector<std::vector<Option>> options(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& bundle = instance.bundle_for(static_cast<DeviceId>(i));
    Option local;
    local.plan.device_only = true;
    options[i].push_back(local);
    auto cuts = bundle.graph.clean_cuts();
    // Subsample to keep the joint enumeration tractable.
    const std::size_t stride = std::max<std::size_t>(1, cuts.size() / 6);
    for (std::size_t c = 0; c < cuts.size(); c += stride) {
      for (std::size_t j = 0; j < m; ++j) {
        Option o;
        o.plan.partition_after = cuts[c].after;
        o.server = static_cast<int>(j);
        options[i].push_back(o);
      }
    }
  }

  std::vector<std::size_t> idx(n, 0);
  Decision best;
  best.scheme = "small_exhaustive";
  double best_obj = kInf;
  for (;;) {
    std::vector<SurgeryPlan> plans(n);
    for (std::size_t i = 0; i < n; ++i) plans[i] = options[i][idx[i]].plan;
    const auto bandwidth = equal_bandwidth(instance, plans);
    const auto st = offload_stats(instance, plans, bandwidth);
    OffloadingProblem prob;
    const auto rows = build_problem(instance, plans, bandwidth, st, &prob);
    std::vector<int> assign;
    for (std::size_t k = 0; k < rows.size(); ++k) {
      assign.push_back(options[rows[k]][idx[rows[k]]].server);
    }
    Decision d = finalize(instance, "small_exhaustive", plans, bandwidth,
                          assign, rows, prob);
    if (d.mean_latency < best_obj) {
      best_obj = d.mean_latency;
      best = std::move(d);
    }
    std::size_t k = 0;
    while (k < n && ++idx[k] == options[k].size()) {
      idx[k] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return best;
}

std::vector<std::string> names() {
  return {"device_only", "edge_only", "neurosurgeon", "local_multi_exit",
          "random"};
}

Decision by_name(const ProblemInstance& instance, const std::string& name,
                 std::uint64_t seed) {
  if (name == "device_only") return device_only(instance);
  if (name == "edge_only") return edge_only(instance);
  if (name == "neurosurgeon") return neurosurgeon(instance);
  if (name == "local_multi_exit") return local_multi_exit(instance);
  if (name == "random") return random_scheme(instance, seed);
  SCALPEL_REQUIRE(false, "unknown baseline: " + name);
}

}  // namespace scalpel::baselines
