#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"

namespace scalpel {

/// Comparison schemes from the evaluation. Each produces a Decision through
/// the same types and is scored by the same evaluator/simulator as the joint
/// optimizer, so differences are attributable to the scheme alone.
namespace baselines {

/// Everything runs on the device; no exits, no offloading.
Decision device_only(const ProblemInstance& instance);

/// Raw input uploaded, whole model on the edge (cloud/edge-only): cut after
/// the input node; equal bandwidth split per cell; greedy server choice with
/// Kleinrock shares.
Decision edge_only(const ProblemInstance& instance);

/// Neurosurgeon: per-device optimal partition (no exits) under equal
/// bandwidth split; greedy server choice with Kleinrock shares. Partition
/// adapts to the allocation once (no joint iteration).
Decision neurosurgeon(const ProblemInstance& instance);

/// Local multi-exit: exit setting optimized for the device (DP), but
/// everything executes on-device (no offloading).
Decision local_multi_exit(const ProblemInstance& instance);

/// Uniformly random clean cut and random server, equal splits. Seeded.
Decision random_scheme(const ProblemInstance& instance, std::uint64_t seed);

/// Exhaustive joint optimum over (cut x server) with no exits, equal
/// bandwidth, Kleinrock shares — tractable reference for small clusters.
Decision small_exhaustive(const ProblemInstance& instance);

/// All comparison schemes by name, in canonical bench order (excludes
/// small_exhaustive, which is exponential).
std::vector<std::string> names();
Decision by_name(const ProblemInstance& instance, const std::string& name,
                 std::uint64_t seed = 1);

}  // namespace baselines
}  // namespace scalpel
