#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"
#include "tensor/tensor.hpp"

namespace scalpel {
class ThreadPool;

/// Runs a Graph forward with deterministic, seed-derived weights. Supports
/// whole-model execution as well as *partitioned* execution (prefix on one
/// machine, suffix on another) — the property tests assert that running
/// prefix + suffix across any clean cut reproduces the full-model output
/// exactly, which is what makes model surgery semantically safe.
class Executor {
 public:
  /// Materializes weights for every weighted node from `weight_seed`.
  /// `pool` may be nullptr for serial kernels; the Executor does not own it.
  Executor(const Graph& graph, std::uint64_t weight_seed,
           ThreadPool* pool = nullptr);

  const Graph& graph() const { return *graph_; }

  /// Full forward pass; returns the output of the last node.
  Tensor run(const Tensor& input) const;

  /// Runs nodes [0 .. upto] and returns node `upto`'s output.
  Tensor run_prefix(const Tensor& input, NodeId upto) const;

  /// Runs nodes (after .. upto], with `boundary` standing in for the output
  /// of node `after`. Every node in the range must consume only nodes in the
  /// range or node `after` itself (i.e. `after` must be a clean cut).
  Tensor run_range(const Tensor& boundary, NodeId after, NodeId upto) const;

  /// Weight tensors for a node (layout documented per kernel in kernels.hpp).
  const std::vector<Tensor>& weights(NodeId id) const;

 private:
  Tensor eval_node(NodeId id, const std::vector<const Tensor*>& ins) const;

  const Graph* graph_;
  ThreadPool* pool_;
  std::vector<std::vector<Tensor>> weights_;  // indexed by node id
};

}  // namespace scalpel
