#include "nn/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace scalpel::kernels {
namespace {

std::int64_t out_dim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                     std::int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// im2col for one input: rows = in_c*kh*kw, cols = out_h*out_w.
void im2col(const Tensor& input, std::int64_t kernel, std::int64_t stride,
            std::int64_t pad, std::int64_t out_h, std::int64_t out_w,
            std::vector<float>& cols) {
  const auto c_in = input.shape()[0];
  const auto h_in = input.shape()[1];
  const auto w_in = input.shape()[2];
  cols.assign(static_cast<std::size_t>(c_in * kernel * kernel * out_h * out_w),
              0.0f);
  const float* in = input.data();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
        float* dst = cols.data() + row * out_h * out_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= h_in) {
            dst += out_w;
            continue;
          }
          const float* src = in + (c * h_in + ih) * w_in;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride - pad + kw;
            *dst++ = (iw >= 0 && iw < w_in) ? src[iw] : 0.0f;
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, const float* bias, float* c,
          std::int64_t m, std::int64_t k, std::int64_t n, ThreadPool* pool) {
  SCALPEL_REQUIRE(m > 0 && k > 0 && n > 0, "gemm dims must be positive");
  auto run_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* crow = c + i * static_cast<std::size_t>(n);
      const float init = bias ? bias[i] : 0.0f;
      std::fill(crow, crow + n, init);
      const float* arow = a + i * static_cast<std::size_t>(k);
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  };
  // Threading pays only when there is real work per row.
  if (pool && m >= 4 && k * n >= 16 * 1024) {
    pool->parallel_for(0, static_cast<std::size_t>(m), run_rows);
  } else {
    run_rows(0, static_cast<std::size_t>(m));
  }
}

Tensor conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
              std::int64_t stride, std::int64_t pad, ThreadPool* pool) {
  SCALPEL_REQUIRE(input.shape().rank() == 3, "conv2d expects CHW input");
  SCALPEL_REQUIRE(weights.shape().rank() == 4, "conv2d weights [oc,ic,kh,kw]");
  const auto c_in = input.shape()[0];
  const auto c_out = weights.shape()[0];
  const auto kernel = weights.shape()[2];
  SCALPEL_REQUIRE(weights.shape()[1] == c_in, "conv2d channel mismatch");
  SCALPEL_REQUIRE(weights.shape()[3] == kernel, "conv2d expects square kernel");
  SCALPEL_REQUIRE(bias.numel() == c_out, "conv2d bias size mismatch");

  const auto out_h = out_dim(input.shape()[1], kernel, stride, pad);
  const auto out_w = out_dim(input.shape()[2], kernel, stride, pad);
  SCALPEL_REQUIRE(out_h > 0 && out_w > 0, "conv2d output must be non-empty");

  std::vector<float> cols;
  im2col(input, kernel, stride, pad, out_h, out_w, cols);

  Tensor out(Shape{c_out, out_h, out_w});
  gemm(weights.data(), cols.data(), bias.data(), out.data(), c_out,
       c_in * kernel * kernel, out_h * out_w, pool);
  return out;
}

Tensor dwconv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
                std::int64_t stride, std::int64_t pad, ThreadPool* pool) {
  SCALPEL_REQUIRE(input.shape().rank() == 3, "dwconv2d expects CHW input");
  SCALPEL_REQUIRE(weights.shape().rank() == 3, "dwconv2d weights [c,kh,kw]");
  const auto c = input.shape()[0];
  const auto kernel = weights.shape()[1];
  SCALPEL_REQUIRE(weights.shape()[0] == c, "dwconv2d channel mismatch");
  SCALPEL_REQUIRE(bias.numel() == c, "dwconv2d bias size mismatch");

  const auto h_in = input.shape()[1];
  const auto w_in = input.shape()[2];
  const auto out_h = out_dim(h_in, kernel, stride, pad);
  const auto out_w = out_dim(w_in, kernel, stride, pad);
  Tensor out(Shape{c, out_h, out_w});

  auto run_channels = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ci = lo; ci < hi; ++ci) {
      const auto cc = static_cast<std::int64_t>(ci);
      const float* in = input.data() + cc * h_in * w_in;
      const float* w = weights.data() + cc * kernel * kernel;
      float* dst = out.data() + cc * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          float acc = bias.at(cc);
          for (std::int64_t kh = 0; kh < kernel; ++kh) {
            const std::int64_t ih = oh * stride - pad + kh;
            if (ih < 0 || ih >= h_in) continue;
            for (std::int64_t kw = 0; kw < kernel; ++kw) {
              const std::int64_t iw = ow * stride - pad + kw;
              if (iw < 0 || iw >= w_in) continue;
              acc += in[ih * w_in + iw] * w[kh * kernel + kw];
            }
          }
          dst[oh * out_w + ow] = acc;
        }
      }
    }
  };
  if (pool && c >= 8) {
    pool->parallel_for(0, static_cast<std::size_t>(c), run_channels);
  } else {
    run_channels(0, static_cast<std::size_t>(c));
  }
  return out;
}

Tensor fc(const Tensor& input, const Tensor& weights, const Tensor& bias,
          ThreadPool* pool) {
  SCALPEL_REQUIRE(weights.shape().rank() == 2, "fc weights [units, in]");
  const auto units = weights.shape()[0];
  const auto in_dim = weights.shape()[1];
  SCALPEL_REQUIRE(input.numel() == in_dim, "fc input size mismatch");
  SCALPEL_REQUIRE(bias.numel() == units, "fc bias size mismatch");
  Tensor out(Shape{units});
  gemm(weights.data(), input.data(), bias.data(), out.data(), units, in_dim, 1,
       pool);
  return out;
}

Tensor maxpool2d(const Tensor& input, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad) {
  SCALPEL_REQUIRE(input.shape().rank() == 3, "maxpool expects CHW input");
  const auto c = input.shape()[0];
  const auto h_in = input.shape()[1];
  const auto w_in = input.shape()[2];
  const auto out_h = out_dim(h_in, kernel, stride, pad);
  const auto out_w = out_dim(w_in, kernel, stride, pad);
  Tensor out(Shape{c, out_h, out_w});
  for (std::int64_t cc = 0; cc < c; ++cc) {
    const float* in = input.data() + cc * h_in * w_in;
    float* dst = out.data() + cc * out_h * out_w;
    for (std::int64_t oh = 0; oh < out_h; ++oh) {
      for (std::int64_t ow = 0; ow < out_w; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::int64_t kh = 0; kh < kernel; ++kh) {
          for (std::int64_t kw = 0; kw < kernel; ++kw) {
            const std::int64_t ih = oh * stride - pad + kh;
            const std::int64_t iw = ow * stride - pad + kw;
            if (ih >= 0 && ih < h_in && iw >= 0 && iw < w_in) {
              best = std::max(best, in[ih * w_in + iw]);
            }
          }
        }
        dst[oh * out_w + ow] = best;
      }
    }
  }
  return out;
}

Tensor avgpool2d(const Tensor& input, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad) {
  SCALPEL_REQUIRE(input.shape().rank() == 3, "avgpool expects CHW input");
  const auto c = input.shape()[0];
  const auto h_in = input.shape()[1];
  const auto w_in = input.shape()[2];
  const auto out_h = out_dim(h_in, kernel, stride, pad);
  const auto out_w = out_dim(w_in, kernel, stride, pad);
  Tensor out(Shape{c, out_h, out_w});
  for (std::int64_t cc = 0; cc < c; ++cc) {
    const float* in = input.data() + cc * h_in * w_in;
    float* dst = out.data() + cc * out_h * out_w;
    for (std::int64_t oh = 0; oh < out_h; ++oh) {
      for (std::int64_t ow = 0; ow < out_w; ++ow) {
        float acc = 0.0f;
        std::int64_t count = 0;
        for (std::int64_t kh = 0; kh < kernel; ++kh) {
          for (std::int64_t kw = 0; kw < kernel; ++kw) {
            const std::int64_t ih = oh * stride - pad + kh;
            const std::int64_t iw = ow * stride - pad + kw;
            if (ih >= 0 && ih < h_in && iw >= 0 && iw < w_in) {
              acc += in[ih * w_in + iw];
              ++count;
            }
          }
        }
        dst[oh * out_w + ow] = count ? acc / static_cast<float>(count) : 0.0f;
      }
    }
  }
  return out;
}

Tensor global_avgpool(const Tensor& input) {
  SCALPEL_REQUIRE(input.shape().rank() == 3, "gavgpool expects CHW input");
  const auto c = input.shape()[0];
  const auto spatial = input.shape()[1] * input.shape()[2];
  Tensor out(Shape{c});
  for (std::int64_t cc = 0; cc < c; ++cc) {
    const float* in = input.data() + cc * spatial;
    double acc = 0.0;
    for (std::int64_t i = 0; i < spatial; ++i) acc += in[i];
    out.at(cc) = static_cast<float>(acc / static_cast<double>(spatial));
  }
  return out;
}

Tensor relu(const Tensor& input) {
  Tensor out = input;
  float* p = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) p[i] = std::max(0.0f, p[i]);
  return out;
}

Tensor batchnorm(const Tensor& input, const Tensor& params, float eps) {
  SCALPEL_REQUIRE(input.shape().rank() == 3, "batchnorm expects CHW input");
  const auto c = input.shape()[0];
  SCALPEL_REQUIRE(params.shape().rank() == 2 && params.shape()[0] == 4 &&
                      params.shape()[1] == c,
                  "batchnorm params must be [4, C]");
  const float* gamma = params.data();
  const float* beta = params.data() + c;
  const float* mean = params.data() + 2 * c;
  const float* var = params.data() + 3 * c;
  const auto spatial = input.shape()[1] * input.shape()[2];
  Tensor out(input.shape());
  for (std::int64_t cc = 0; cc < c; ++cc) {
    SCALPEL_REQUIRE(var[cc] >= 0.0f, "batchnorm variance must be >= 0");
    const float scale = gamma[cc] / std::sqrt(var[cc] + eps);
    const float shift = beta[cc] - scale * mean[cc];
    const float* in = input.data() + cc * spatial;
    float* dst = out.data() + cc * spatial;
    for (std::int64_t i = 0; i < spatial; ++i) dst[i] = scale * in[i] + shift;
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  SCALPEL_REQUIRE(a.shape() == b.shape(), "add shape mismatch");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out.at(i) = a.at(i) + b.at(i);
  }
  return out;
}

Tensor concat_channels(const std::vector<Tensor>& inputs) {
  SCALPEL_REQUIRE(inputs.size() >= 2, "concat needs >= two inputs");
  std::int64_t channels = 0;
  for (const auto& t : inputs) {
    SCALPEL_REQUIRE(t.shape().rank() == 3, "concat expects CHW inputs");
    SCALPEL_REQUIRE(t.shape()[1] == inputs[0].shape()[1] &&
                        t.shape()[2] == inputs[0].shape()[2],
                    "concat spatial mismatch");
    channels += t.shape()[0];
  }
  Tensor out(Shape{channels, inputs[0].shape()[1], inputs[0].shape()[2]});
  float* dst = out.data();
  for (const auto& t : inputs) {
    std::copy(t.data(), t.data() + t.numel(), dst);
    dst += t.numel();
  }
  return out;
}

Tensor softmax(const Tensor& input) {
  Tensor out(input.shape());
  float maxv = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    maxv = std::max(maxv, input.at(i));
  }
  double total = 0.0;
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float e = std::exp(input.at(i) - maxv);
    out.at(i) = e;
    total += e;
  }
  SCALPEL_REQUIRE(total > 0.0, "softmax normalizer must be positive");
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out.at(i) = static_cast<float>(out.at(i) / total);
  }
  return out;
}

QuantizedTensor quantize_int8(const Tensor& input) {
  SCALPEL_REQUIRE(input.numel() > 0, "cannot quantize an empty tensor");
  QuantizedTensor q;
  q.shape = input.shape();
  q.data.resize(static_cast<std::size_t>(input.numel()));
  const double absmax = input.abs_max();
  q.scale = absmax > 0.0 ? static_cast<float>(absmax / 127.0) : 1.0f;
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float scaled = input.at(i) / q.scale;
    const float clamped = std::clamp(scaled, -127.0f, 127.0f);
    q.data[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(std::lround(clamped));
  }
  return q;
}

Tensor dequantize_int8(const QuantizedTensor& q) {
  Tensor out(q.shape);
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    out.at(static_cast<std::int64_t>(i)) =
        static_cast<float>(q.data[i]) * q.scale;
  }
  return out;
}

}  // namespace scalpel::kernels
