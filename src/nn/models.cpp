#include "nn/models.hpp"

#include "util/assert.hpp"

namespace scalpel::models {
namespace {

/// Small builder helper: tracks the "current" node in a chain while still
/// allowing explicit branching (used by ResNet blocks).
class Chain {
 public:
  explicit Chain(Graph& g) : g_(g) {}

  NodeId input(Shape shape) {
    cur_ = g_.add(LayerSpec::input(std::move(shape)));
    return cur_;
  }
  NodeId conv(std::int64_t c, std::int64_t k, std::int64_t s, std::int64_t p,
              const std::string& name) {
    cur_ = g_.add(LayerSpec::conv(c, k, s, p, name), {cur_});
    return cur_;
  }
  NodeId dwconv(std::int64_t k, std::int64_t s, std::int64_t p,
                const std::string& name) {
    cur_ = g_.add(LayerSpec::dwconv(k, s, p, name), {cur_});
    return cur_;
  }
  NodeId bn(const std::string& name) {
    cur_ = g_.add(LayerSpec::batchnorm(name), {cur_});
    return cur_;
  }
  NodeId relu(const std::string& name) {
    cur_ = g_.add(LayerSpec::relu(name), {cur_});
    return cur_;
  }
  NodeId maxpool(std::int64_t k, std::int64_t s, const std::string& name,
                 std::int64_t p = 0) {
    cur_ = g_.add(LayerSpec::maxpool(k, s, name, p), {cur_});
    return cur_;
  }
  NodeId avgpool(std::int64_t k, std::int64_t s, const std::string& name) {
    cur_ = g_.add(LayerSpec::avgpool(k, s, name), {cur_});
    return cur_;
  }
  NodeId gavg(const std::string& name) {
    cur_ = g_.add(LayerSpec::global_avgpool(name), {cur_});
    return cur_;
  }
  NodeId flatten(const std::string& name) {
    cur_ = g_.add(LayerSpec::flatten(name), {cur_});
    return cur_;
  }
  NodeId fc(std::int64_t units, const std::string& name) {
    cur_ = g_.add(LayerSpec::fc(units, name), {cur_});
    return cur_;
  }
  NodeId softmax(const std::string& name) {
    cur_ = g_.add(LayerSpec::softmax(name), {cur_});
    return cur_;
  }
  NodeId add_from(NodeId other, const std::string& name) {
    cur_ = g_.add(LayerSpec::add(name), {cur_, other});
    return cur_;
  }
  NodeId at() const { return cur_; }
  void jump_to(NodeId id) { cur_ = id; }

 private:
  Graph& g_;
  NodeId cur_ = -1;
};

}  // namespace

Graph lenet5(std::int64_t num_classes) {
  Graph g("lenet5");
  Chain c(g);
  c.input(Shape{1, 28, 28});
  c.conv(6, 5, 1, 2, "conv1");
  c.relu("relu1");
  c.maxpool(2, 2, "pool1");
  c.conv(16, 5, 1, 0, "conv2");
  c.relu("relu2");
  c.maxpool(2, 2, "pool2");
  c.flatten("flatten");
  c.fc(120, "fc1");
  c.relu("relu3");
  c.fc(84, "fc2");
  c.relu("relu4");
  c.fc(num_classes, "fc3");
  c.softmax("softmax");
  return g;
}

Graph alexnet(std::int64_t num_classes, std::int64_t resolution) {
  Graph g("alexnet");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  c.conv(96, 11, 4, 2, "conv1");
  c.relu("relu1");
  c.maxpool(3, 2, "pool1");
  c.conv(256, 5, 1, 2, "conv2");
  c.relu("relu2");
  c.maxpool(3, 2, "pool2");
  c.conv(384, 3, 1, 1, "conv3");
  c.relu("relu3");
  c.conv(384, 3, 1, 1, "conv4");
  c.relu("relu4");
  c.conv(256, 3, 1, 1, "conv5");
  c.relu("relu5");
  c.maxpool(3, 2, "pool5");
  c.flatten("flatten");
  c.fc(4096, "fc6");
  c.relu("relu6");
  c.fc(4096, "fc7");
  c.relu("relu7");
  c.fc(num_classes, "fc8");
  c.softmax("softmax");
  return g;
}

Graph vgg16(std::int64_t num_classes, std::int64_t resolution) {
  Graph g("vgg16");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  const std::vector<std::vector<std::int64_t>> blocks = {
      {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}};
  int layer = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::int64_t ch : blocks[b]) {
      ++layer;
      c.conv(ch, 3, 1, 1, "conv" + std::to_string(layer));
      c.relu("relu" + std::to_string(layer));
    }
    c.maxpool(2, 2, "pool" + std::to_string(b + 1));
  }
  c.flatten("flatten");
  c.fc(4096, "fc1");
  c.relu("relu_fc1");
  c.fc(4096, "fc2");
  c.relu("relu_fc2");
  c.fc(num_classes, "fc3");
  c.softmax("softmax");
  return g;
}

namespace {

/// Shared ResNet builder. `blocks_per_stage` selects the depth variant;
/// `bottleneck` switches BasicBlock (3x3 + 3x3) to Bottleneck
/// (1x1 reduce + 3x3 + 1x1 expand x4).
Graph resnet_like(const std::string& name,
                  const std::vector<int>& blocks_per_stage, bool bottleneck,
                  std::int64_t num_classes, std::int64_t resolution) {
  Graph g(name);
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  c.conv(64, 7, 2, 3, "conv1");
  c.bn("bn1");
  c.relu("relu1");
  c.maxpool(3, 2, "pool1", 1);

  const std::int64_t expansion = bottleneck ? 4 : 1;
  std::int64_t channels = 64;
  int block_idx = 0;
  for (std::size_t stage = 0; stage < blocks_per_stage.size(); ++stage) {
    const std::int64_t width = 64 << stage;        // inner width
    const std::int64_t out_ch = width * expansion;  // block output channels
    for (int blk = 0; blk < blocks_per_stage[stage]; ++blk) {
      ++block_idx;
      const std::string tag = "b" + std::to_string(block_idx);
      const std::int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
      const NodeId shortcut_src = c.at();
      if (bottleneck) {
        c.conv(width, 1, 1, 0, tag + "_conv1");
        c.bn(tag + "_bn1");
        c.relu(tag + "_relu1");
        c.conv(width, 3, stride, 1, tag + "_conv2");
        c.bn(tag + "_bn2");
        c.relu(tag + "_relu2");
        c.conv(out_ch, 1, 1, 0, tag + "_conv3");
        c.bn(tag + "_bn3");
      } else {
        c.conv(out_ch, 3, stride, 1, tag + "_conv1");
        c.bn(tag + "_bn1");
        c.relu(tag + "_relu1");
        c.conv(out_ch, 3, 1, 1, tag + "_conv2");
        c.bn(tag + "_bn2");
      }
      const NodeId main_path = c.at();
      NodeId shortcut = shortcut_src;
      if (stride != 1 || channels != out_ch) {
        c.jump_to(shortcut_src);
        c.conv(out_ch, 1, stride, 0, tag + "_down");
        c.bn(tag + "_down_bn");
        shortcut = c.at();
      }
      c.jump_to(main_path);
      c.add_from(shortcut, tag + "_add");
      c.relu(tag + "_out");
      channels = out_ch;
    }
  }
  c.gavg("gavg");
  c.fc(num_classes, "fc");
  c.softmax("softmax");
  return g;
}

/// VGG-style plain stack: conv/relu blocks separated by 2x2 maxpools, then
/// the 4096-4096-classes head.
Graph vgg_like(const std::string& name,
               const std::vector<std::vector<std::int64_t>>& blocks,
               std::int64_t num_classes, std::int64_t resolution) {
  Graph g(name);
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  int layer = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::int64_t ch : blocks[b]) {
      ++layer;
      c.conv(ch, 3, 1, 1, "conv" + std::to_string(layer));
      c.relu("relu" + std::to_string(layer));
    }
    c.maxpool(2, 2, "pool" + std::to_string(b + 1));
  }
  c.flatten("flatten");
  c.fc(4096, "fc1");
  c.relu("relu_fc1");
  c.fc(4096, "fc2");
  c.relu("relu_fc2");
  c.fc(num_classes, "fc3");
  c.softmax("softmax");
  return g;
}

}  // namespace

Graph resnet18(std::int64_t num_classes, std::int64_t resolution) {
  return resnet_like("resnet18", {2, 2, 2, 2}, /*bottleneck=*/false,
                     num_classes, resolution);
}

Graph resnet34(std::int64_t num_classes, std::int64_t resolution) {
  return resnet_like("resnet34", {3, 4, 6, 3}, /*bottleneck=*/false,
                     num_classes, resolution);
}

Graph resnet50(std::int64_t num_classes, std::int64_t resolution) {
  return resnet_like("resnet50", {3, 4, 6, 3}, /*bottleneck=*/true,
                     num_classes, resolution);
}

Graph vgg19(std::int64_t num_classes, std::int64_t resolution) {
  return vgg_like("vgg19",
                  {{64, 64},
                   {128, 128},
                   {256, 256, 256, 256},
                   {512, 512, 512, 512},
                   {512, 512, 512, 512}},
                  num_classes, resolution);
}

Graph googlenet(std::int64_t num_classes, std::int64_t resolution) {
  Graph g("googlenet");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  c.conv(64, 7, 2, 3, "conv1");
  c.relu("relu1");
  c.maxpool(3, 2, "pool1", 1);
  c.conv(64, 1, 1, 0, "conv2a");
  c.relu("relu2a");
  c.conv(192, 3, 1, 1, "conv2b");
  c.relu("relu2b");
  c.maxpool(3, 2, "pool2", 1);

  int idx = 0;
  // Inception module: 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1, channel concat.
  auto inception = [&](std::int64_t c1, std::int64_t r3, std::int64_t c3,
                       std::int64_t r5, std::int64_t c5, std::int64_t cp) {
    ++idx;
    const std::string tag = "inc" + std::to_string(idx);
    const NodeId in = c.at();
    c.conv(c1, 1, 1, 0, tag + "_b1");
    c.relu(tag + "_b1r");
    const NodeId b1 = c.at();
    c.jump_to(in);
    c.conv(r3, 1, 1, 0, tag + "_b2a");
    c.relu(tag + "_b2ar");
    c.conv(c3, 3, 1, 1, tag + "_b2b");
    c.relu(tag + "_b2br");
    const NodeId b2 = c.at();
    c.jump_to(in);
    c.conv(r5, 1, 1, 0, tag + "_b3a");
    c.relu(tag + "_b3ar");
    c.conv(c5, 5, 1, 2, tag + "_b3b");
    c.relu(tag + "_b3br");
    const NodeId b3 = c.at();
    c.jump_to(in);
    c.maxpool(3, 1, tag + "_b4p", 1);
    c.conv(cp, 1, 1, 0, tag + "_b4c");
    c.relu(tag + "_b4r");
    const NodeId b4 = c.at();
    c.jump_to(g.add(LayerSpec::concat(tag + "_cat"), {b1, b2, b3, b4}));
  };

  inception(64, 96, 128, 16, 32, 32);    // 3a
  inception(128, 128, 192, 32, 96, 64);  // 3b
  c.maxpool(3, 2, "pool3", 1);
  inception(192, 96, 208, 16, 48, 64);   // 4a
  inception(160, 112, 224, 24, 64, 64);  // 4b
  inception(128, 128, 256, 24, 64, 64);  // 4c
  inception(112, 144, 288, 32, 64, 64);  // 4d
  inception(256, 160, 320, 32, 128, 128);  // 4e
  c.maxpool(3, 2, "pool4", 1);
  inception(256, 160, 320, 32, 128, 128);  // 5a
  inception(384, 192, 384, 48, 128, 128);  // 5b
  c.gavg("gavg");
  c.fc(num_classes, "fc");
  c.softmax("softmax");
  return g;
}

Graph squeezenet(std::int64_t num_classes, std::int64_t resolution) {
  Graph g("squeezenet");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  c.conv(96, 7, 2, 0, "conv1");
  c.relu("relu1");
  c.maxpool(3, 2, "pool1");

  int fire_idx = 1;
  auto fire = [&](std::int64_t squeeze, std::int64_t expand1,
                  std::int64_t expand3) {
    ++fire_idx;
    const std::string tag = "fire" + std::to_string(fire_idx);
    c.conv(squeeze, 1, 1, 0, tag + "_squeeze");
    c.relu(tag + "_srelu");
    const NodeId squeezed = c.at();
    c.conv(expand1, 1, 1, 0, tag + "_e1");
    c.relu(tag + "_e1relu");
    const NodeId left = c.at();
    c.jump_to(squeezed);
    c.conv(expand3, 3, 1, 1, tag + "_e3");
    c.relu(tag + "_e3relu");
    const NodeId right = c.at();
    c.jump_to(left);
    // Channel concat of the two expand branches.
    c.jump_to(g.add(LayerSpec::concat(tag + "_concat"), {left, right}));
  };

  fire(16, 64, 64);    // fire2
  fire(16, 64, 64);    // fire3
  fire(32, 128, 128);  // fire4
  c.maxpool(3, 2, "pool4");
  fire(32, 128, 128);  // fire5
  fire(48, 192, 192);  // fire6
  fire(48, 192, 192);  // fire7
  fire(64, 256, 256);  // fire8
  c.maxpool(3, 2, "pool8");
  fire(64, 256, 256);  // fire9
  c.conv(num_classes, 1, 1, 0, "conv10");
  c.relu("relu10");
  c.gavg("gavg");
  c.softmax("softmax");
  return g;
}

Graph mobilenet_v1(std::int64_t num_classes, std::int64_t resolution) {
  Graph g("mobilenet_v1");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  c.conv(32, 3, 2, 1, "conv1");
  c.bn("bn1");
  c.relu("relu1");
  struct Block {
    std::int64_t out_ch;
    std::int64_t stride;
  };
  const std::vector<Block> blocks = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1}};
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::string tag = "ds" + std::to_string(i + 1);
    c.dwconv(3, blocks[i].stride, 1, tag + "_dw");
    c.bn(tag + "_dwbn");
    c.relu(tag + "_dwrelu");
    c.conv(blocks[i].out_ch, 1, 1, 0, tag + "_pw");
    c.bn(tag + "_pwbn");
    c.relu(tag + "_pwrelu");
  }
  c.gavg("gavg");
  c.fc(num_classes, "fc");
  c.softmax("softmax");
  return g;
}

Graph tiny_yolo(std::int64_t anchors_times_preds, std::int64_t resolution) {
  Graph g("tiny_yolo");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  const std::vector<std::int64_t> channels = {16, 32, 64, 128, 256, 512};
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const std::string idx = std::to_string(i + 1);
    c.conv(channels[i], 3, 1, 1, "conv" + idx);
    c.bn("bn" + idx);
    c.relu("relu" + idx);
    // The last pool keeps resolution (stride 1, pad via kernel trick is
    // omitted; standard tiny-yolo uses a stride-1 maxpool here).
    if (i + 1 < channels.size()) {
      c.maxpool(2, 2, "pool" + idx);
    } else {
      c.maxpool(2, 1, "pool" + idx, 1);
    }
  }
  c.conv(1024, 3, 1, 1, "conv7");
  c.bn("bn7");
  c.relu("relu7");
  c.conv(1024, 3, 1, 1, "conv8");
  c.bn("bn8");
  c.relu("relu8");
  c.conv(anchors_times_preds, 1, 1, 0, "detect");
  return g;
}

Graph tiny_cnn(std::int64_t num_classes, std::int64_t resolution) {
  Graph g("tiny_cnn");
  Chain c(g);
  c.input(Shape{3, resolution, resolution});
  c.conv(16, 3, 1, 1, "conv1");
  c.relu("relu1");
  c.maxpool(2, 2, "pool1");
  c.conv(32, 3, 1, 1, "conv2");
  c.relu("relu2");
  c.maxpool(2, 2, "pool2");
  c.conv(64, 3, 1, 1, "conv3");
  c.relu("relu3");
  c.maxpool(2, 2, "pool3");
  c.flatten("flatten");
  c.fc(128, "fc1");
  c.relu("relu_fc1");
  c.fc(num_classes, "fc2");
  c.softmax("softmax");
  return g;
}

std::vector<Graph> zoo() {
  std::vector<Graph> z;
  for (const auto& name : zoo_names()) z.push_back(by_name(name));
  return z;
}

Graph by_name(const std::string& name) {
  if (name == "lenet5") return lenet5();
  if (name == "alexnet") return alexnet();
  if (name == "vgg16") return vgg16();
  if (name == "vgg19") return vgg19();
  if (name == "resnet18") return resnet18();
  if (name == "resnet34") return resnet34();
  if (name == "resnet50") return resnet50();
  if (name == "googlenet") return googlenet();
  if (name == "squeezenet") return squeezenet();
  if (name == "mobilenet_v1") return mobilenet_v1();
  if (name == "tiny_yolo") return tiny_yolo();
  if (name == "tiny_cnn") return tiny_cnn();
  SCALPEL_REQUIRE(false, "unknown model name: " + name);
}

std::vector<std::string> zoo_names() {
  return {"lenet5",     "alexnet",  "vgg16",      "vgg19",
          "resnet18",   "resnet34", "resnet50",   "googlenet",
          "squeezenet", "mobilenet_v1", "tiny_yolo", "tiny_cnn"};
}

}  // namespace scalpel::models
