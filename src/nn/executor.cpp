#include "nn/executor.hpp"

#include <cmath>
#include <optional>

#include "nn/kernels.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {
namespace {

/// He-style fan-in initialization keeps activations bounded through deep
/// stacks so partition-equality tests exercise realistic numeric ranges.
Tensor init_weight(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(std::max<std::int64_t>(1, fan_in)));
  return Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace

Executor::Executor(const Graph& graph, std::uint64_t weight_seed,
                   ThreadPool* pool)
    : graph_(&graph), pool_(pool), weights_(graph.size()) {
  Rng master(weight_seed);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    // Every node draws from its own stream so weights do not depend on what
    // other layers exist (stable across surgery).
    Rng rng = master.split();
    const auto& node = graph.node(static_cast<NodeId>(i));
    if (!node.spec.has_weights()) continue;
    const auto& in_shape =
        graph.node(node.inputs.at(0)).out_shape;
    switch (node.spec.kind) {
      case LayerKind::kConv: {
        const auto k = node.spec.kernel;
        const auto fan_in = in_shape[0] * k * k;
        weights_[i].push_back(init_weight(
            Shape{node.spec.out_channels, in_shape[0], k, k}, fan_in, rng));
        weights_[i].push_back(Tensor::zeros(Shape{node.spec.out_channels}));
        break;
      }
      case LayerKind::kDWConv: {
        const auto k = node.spec.kernel;
        weights_[i].push_back(
            init_weight(Shape{in_shape[0], k, k}, k * k, rng));
        weights_[i].push_back(Tensor::zeros(Shape{in_shape[0]}));
        break;
      }
      case LayerKind::kFC: {
        const auto fan_in = in_shape.numel();
        weights_[i].push_back(
            init_weight(Shape{node.spec.units, fan_in}, fan_in, rng));
        weights_[i].push_back(Tensor::zeros(Shape{node.spec.units}));
        break;
      }
      case LayerKind::kBatchNorm: {
        const auto c = in_shape[0];
        Tensor params(Shape{4, c});
        for (std::int64_t cc = 0; cc < c; ++cc) {
          params.at(0 * c + cc) = 1.0f + 0.05f * static_cast<float>(rng.normal());
          params.at(1 * c + cc) = 0.05f * static_cast<float>(rng.normal());
          params.at(2 * c + cc) = 0.05f * static_cast<float>(rng.normal());
          params.at(3 * c + cc) =
              1.0f + 0.1f * static_cast<float>(rng.uniform());
        }
        weights_[i].push_back(std::move(params));
        break;
      }
      default:
        SCALPEL_REQUIRE(false, "unexpected weighted layer kind");
    }
  }
}

const std::vector<Tensor>& Executor::weights(NodeId id) const {
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < weights_.size(),
                  "weights node id out of range");
  return weights_[static_cast<std::size_t>(id)];
}

Tensor Executor::eval_node(NodeId id,
                           const std::vector<const Tensor*>& ins) const {
  const auto& node = graph_->node(id);
  const auto& w = weights_[static_cast<std::size_t>(id)];
  switch (node.spec.kind) {
    case LayerKind::kInput:
      SCALPEL_REQUIRE(false, "input node is never evaluated");
    case LayerKind::kConv:
      return kernels::conv2d(*ins[0], w[0], w[1], node.spec.stride,
                             node.spec.pad, pool_);
    case LayerKind::kDWConv:
      return kernels::dwconv2d(*ins[0], w[0], w[1], node.spec.stride,
                               node.spec.pad, pool_);
    case LayerKind::kFC:
      return kernels::fc(*ins[0], w[0], w[1], pool_);
    case LayerKind::kMaxPool:
      return kernels::maxpool2d(*ins[0], node.spec.kernel, node.spec.stride,
                                node.spec.pad);
    case LayerKind::kAvgPool:
      return kernels::avgpool2d(*ins[0], node.spec.kernel, node.spec.stride,
                                node.spec.pad);
    case LayerKind::kGlobalAvgPool:
      return kernels::global_avgpool(*ins[0]);
    case LayerKind::kReLU:
      return kernels::relu(*ins[0]);
    case LayerKind::kBatchNorm:
      return kernels::batchnorm(*ins[0], w[0]);
    case LayerKind::kAdd:
      return kernels::add(*ins[0], *ins[1]);
    case LayerKind::kConcat: {
      std::vector<Tensor> copies;
      copies.reserve(ins.size());
      for (const Tensor* t : ins) copies.push_back(*t);
      return kernels::concat_channels(copies);
    }
    case LayerKind::kFlatten:
      return ins[0]->reshaped(node.out_shape);
    case LayerKind::kSoftmax:
      return kernels::softmax(*ins[0]);
  }
  SCALPEL_REQUIRE(false, "unreachable layer kind");
}

Tensor Executor::run(const Tensor& input) const {
  return run_prefix(input, graph_->output());
}

Tensor Executor::run_prefix(const Tensor& input, NodeId upto) const {
  SCALPEL_REQUIRE(graph_->size() > 0, "cannot run an empty graph");
  SCALPEL_REQUIRE(graph_->node(0).spec.kind == LayerKind::kInput,
                  "graph must start with an input node");
  SCALPEL_REQUIRE(input.shape() == graph_->node(0).out_shape,
                  "input shape mismatch: got " + input.shape().to_string() +
                      ", model wants " +
                      graph_->node(0).out_shape.to_string());
  if (upto == 0) return input;  // prefix up to the input node is identity
  return run_range(input, 0, upto);
}

Tensor Executor::run_range(const Tensor& boundary, NodeId after,
                           NodeId upto) const {
  SCALPEL_REQUIRE(after >= 0 && upto > after, "run_range needs after < upto");
  SCALPEL_REQUIRE(static_cast<std::size_t>(upto) < graph_->size(),
                  "run_range upto out of range");
  SCALPEL_REQUIRE(boundary.shape() == graph_->node(after).out_shape,
                  "boundary shape mismatch at node " + std::to_string(after));

  std::vector<std::optional<Tensor>> outputs(graph_->size());
  outputs[static_cast<std::size_t>(after)] = boundary;

  // Track remaining consumers within the range so activations free eagerly.
  std::vector<int> pending(graph_->size(), 0);
  for (NodeId v = after + 1; v <= upto; ++v) {
    for (NodeId u : graph_->node(v).inputs) {
      SCALPEL_REQUIRE(u >= after,
                      "run_range crosses a non-clean cut at node " +
                          std::to_string(v));
      ++pending[static_cast<std::size_t>(u)];
    }
  }
  ++pending[static_cast<std::size_t>(upto)];  // keep the result alive

  for (NodeId v = after + 1; v <= upto; ++v) {
    const auto& node = graph_->node(v);
    std::vector<const Tensor*> ins;
    ins.reserve(node.inputs.size());
    for (NodeId u : node.inputs) {
      SCALPEL_REQUIRE(outputs[static_cast<std::size_t>(u)].has_value(),
                      "dangling dependency during run_range");
      ins.push_back(&*outputs[static_cast<std::size_t>(u)]);
    }
    outputs[static_cast<std::size_t>(v)] = eval_node(v, ins);
    for (NodeId u : node.inputs) {
      if (--pending[static_cast<std::size_t>(u)] == 0) {
        outputs[static_cast<std::size_t>(u)].reset();
      }
    }
  }
  return *outputs[static_cast<std::size_t>(upto)];
}

}  // namespace scalpel
