#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace scalpel {

/// Operator taxonomy. Covers every op used by the model zoo (AlexNet, VGG-16,
/// ResNet-18, MobileNetV1, TinyYOLO, LeNet-5) plus the synthesized exit heads.
enum class LayerKind {
  kInput,
  kConv,        // standard 2-D convolution (+bias)
  kDWConv,      // depthwise 2-D convolution (+bias)
  kFC,          // fully connected (+bias)
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kReLU,
  kBatchNorm,   // inference-mode affine normalization
  kAdd,         // elementwise residual add (two inputs)
  kConcat,      // channel concat (>= two inputs)
  kFlatten,
  kSoftmax,
};

const char* layer_kind_name(LayerKind kind);

/// Immutable description of one operator. Geometry (kernel/stride/pad/units)
/// lives here; connectivity lives in Graph.
struct LayerSpec {
  LayerKind kind = LayerKind::kInput;
  std::string name;

  // Conv / DWConv / pooling geometry.
  std::int64_t out_channels = 0;  // kConv only
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  // FC.
  std::int64_t units = 0;

  // kInput: the activation shape fed into the network.
  Shape input_shape;

  /// Output shape given input shapes (validates arity + geometry).
  Shape out_shape(const std::vector<Shape>& inputs) const;

  /// Forward FLOPs (multiply-add counted as 2 FLOPs, matching the convention
  /// used by the model-zoo reference numbers).
  std::int64_t flops(const std::vector<Shape>& inputs) const;

  /// Learnable parameter count (weights + bias; BN counts its 4 per-channel
  /// vectors as stored parameters, matching framework `num_params` dumps).
  std::int64_t param_count(const std::vector<Shape>& inputs) const;

  /// True if this op carries weights that the executor must materialize.
  bool has_weights() const;

  // --- Named constructors keep model-builder code legible. ---
  static LayerSpec input(Shape shape, std::string name = "input");
  static LayerSpec conv(std::int64_t out_channels, std::int64_t kernel,
                        std::int64_t stride, std::int64_t pad,
                        std::string name);
  static LayerSpec dwconv(std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad, std::string name);
  static LayerSpec fc(std::int64_t units, std::string name);
  static LayerSpec maxpool(std::int64_t kernel, std::int64_t stride,
                           std::string name, std::int64_t pad = 0);
  static LayerSpec avgpool(std::int64_t kernel, std::int64_t stride,
                           std::string name, std::int64_t pad = 0);
  static LayerSpec global_avgpool(std::string name);
  static LayerSpec relu(std::string name);
  static LayerSpec batchnorm(std::string name);
  static LayerSpec add(std::string name);
  static LayerSpec concat(std::string name);
  static LayerSpec flatten(std::string name);
  static LayerSpec softmax(std::string name);
};

}  // namespace scalpel
