#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace scalpel::models {

// Reference model zoo. Layer configurations follow the published
// architectures; the analytics tests assert the resulting FLOP/parameter
// counts against the well-known reference numbers (within tolerance for
// off-by-one spatial rounding). `resolution` scales the input so runtime
// tests can execute real forward passes cheaply; canonical values are the
// defaults.

/// LeNet-5 on 1x28x28 (MNIST).
Graph lenet5(std::int64_t num_classes = 10);

/// AlexNet on 3x224x224 (~1.45 GFLOPs, ~61 M params at 224).
Graph alexnet(std::int64_t num_classes = 1000, std::int64_t resolution = 224);

/// VGG-16 on 3x224x224 (~30.9 GFLOPs, ~138 M params at 224).
Graph vgg16(std::int64_t num_classes = 1000, std::int64_t resolution = 224);

/// ResNet-18 on 3x224x224 (~3.6 GFLOPs, ~11.7 M params at 224).
Graph resnet18(std::int64_t num_classes = 1000, std::int64_t resolution = 224);

/// ResNet-34 on 3x224x224 (~7.3 GFLOPs, ~21.8 M params at 224).
Graph resnet34(std::int64_t num_classes = 1000, std::int64_t resolution = 224);

/// ResNet-50 (bottleneck blocks) on 3x224x224 (~8.2 GFLOPs, ~25.6 M params).
Graph resnet50(std::int64_t num_classes = 1000, std::int64_t resolution = 224);

/// VGG-19 on 3x224x224 (~39 GFLOPs, ~143.7 M params at 224).
Graph vgg19(std::int64_t num_classes = 1000, std::int64_t resolution = 224);

/// GoogLeNet / Inception-v1 on 3x224x224 (~3 GFLOPs, ~6.6 M params;
/// auxiliary classifiers omitted — inference-time architecture). Each
/// inception module runs four parallel branches joined by channel concat,
/// the heaviest multi-branch stress test of the clean-cut machinery.
Graph googlenet(std::int64_t num_classes = 1000,
                std::int64_t resolution = 224);

/// SqueezeNet 1.0 (fire modules: squeeze 1x1 -> parallel 1x1/3x3 expand
/// with channel concat) on 3x224x224 (~1.4 GFLOPs, ~1.25 M params).
/// Exercises the multi-branch concat path of the graph/cut machinery.
Graph squeezenet(std::int64_t num_classes = 1000,
                 std::int64_t resolution = 224);

/// MobileNetV1 (1.0x) on 3x224x224 (~1.14 GFLOPs, ~4.2 M params at 224).
Graph mobilenet_v1(std::int64_t num_classes = 1000,
                   std::int64_t resolution = 224);

/// Tiny-YOLO-v2 (VOC) backbone + detection head on 3x416x416
/// (~7.5 GFLOPs, ~15.8 M params). Ends with the 1x1 detection conv
/// (5 anchors x 25 predictions = 125 channels; no softmax).
Graph tiny_yolo(std::int64_t anchors_times_preds = 125,
                std::int64_t resolution = 416);

/// A small straight CNN used by unit tests and quickstart examples:
/// conv/relu/pool x3 + fc head on 3x32x32. Cheap enough to execute in tests.
Graph tiny_cnn(std::int64_t num_classes = 10, std::int64_t resolution = 32);

/// The canonical evaluation set used by the benches (canonical resolutions).
std::vector<Graph> zoo();

/// Lookup by name ("lenet5", "alexnet", "vgg16", "resnet18", "mobilenet_v1",
/// "tiny_yolo", "tiny_cnn"). Throws on unknown name.
Graph by_name(const std::string& name);

/// Names accepted by by_name, in zoo order.
std::vector<std::string> zoo_names();

}  // namespace scalpel::models
