#include "nn/layer.hpp"

#include "util/assert.hpp"

namespace scalpel {
namespace {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad) {
  const std::int64_t out = (in + 2 * pad - kernel) / stride + 1;
  SCALPEL_REQUIRE(out > 0, "convolution/pool output dimension must be positive");
  return out;
}

void require_chw(const Shape& s, const char* what) {
  SCALPEL_REQUIRE(s.rank() == 3, std::string(what) + " expects a CHW input");
}

}  // namespace

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv: return "conv";
    case LayerKind::kDWConv: return "dwconv";
    case LayerKind::kFC: return "fc";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kGlobalAvgPool: return "gavgpool";
    case LayerKind::kReLU: return "relu";
    case LayerKind::kBatchNorm: return "bn";
    case LayerKind::kAdd: return "add";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kFlatten: return "flatten";
    case LayerKind::kSoftmax: return "softmax";
  }
  return "?";
}

Shape LayerSpec::out_shape(const std::vector<Shape>& inputs) const {
  switch (kind) {
    case LayerKind::kInput:
      SCALPEL_REQUIRE(inputs.empty(), "input layer takes no inputs");
      return input_shape;
    case LayerKind::kConv: {
      SCALPEL_REQUIRE(inputs.size() == 1, "conv takes one input");
      require_chw(inputs[0], "conv");
      const auto h = conv_out_dim(inputs[0][1], kernel, stride, pad);
      const auto w = conv_out_dim(inputs[0][2], kernel, stride, pad);
      return Shape{out_channels, h, w};
    }
    case LayerKind::kDWConv: {
      SCALPEL_REQUIRE(inputs.size() == 1, "dwconv takes one input");
      require_chw(inputs[0], "dwconv");
      const auto h = conv_out_dim(inputs[0][1], kernel, stride, pad);
      const auto w = conv_out_dim(inputs[0][2], kernel, stride, pad);
      return Shape{inputs[0][0], h, w};
    }
    case LayerKind::kFC: {
      SCALPEL_REQUIRE(inputs.size() == 1, "fc takes one input");
      SCALPEL_REQUIRE(inputs[0].rank() == 1, "fc expects a flat input");
      return Shape{units};
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      SCALPEL_REQUIRE(inputs.size() == 1, "pool takes one input");
      require_chw(inputs[0], "pool");
      const auto h = conv_out_dim(inputs[0][1], kernel, stride, pad);
      const auto w = conv_out_dim(inputs[0][2], kernel, stride, pad);
      return Shape{inputs[0][0], h, w};
    }
    case LayerKind::kGlobalAvgPool:
      SCALPEL_REQUIRE(inputs.size() == 1, "gavgpool takes one input");
      require_chw(inputs[0], "gavgpool");
      return Shape{inputs[0][0]};
    case LayerKind::kReLU:
    case LayerKind::kBatchNorm:
    case LayerKind::kSoftmax:
      SCALPEL_REQUIRE(inputs.size() == 1, "unary op takes one input");
      return inputs[0];
    case LayerKind::kAdd: {
      SCALPEL_REQUIRE(inputs.size() == 2, "add takes two inputs");
      SCALPEL_REQUIRE(inputs[0] == inputs[1], "add inputs must match shape");
      return inputs[0];
    }
    case LayerKind::kConcat: {
      SCALPEL_REQUIRE(inputs.size() >= 2, "concat takes >= two inputs");
      std::int64_t channels = 0;
      for (const auto& s : inputs) {
        require_chw(s, "concat");
        SCALPEL_REQUIRE(s[1] == inputs[0][1] && s[2] == inputs[0][2],
                        "concat inputs must share spatial dims");
        channels += s[0];
      }
      return Shape{channels, inputs[0][1], inputs[0][2]};
    }
    case LayerKind::kFlatten: {
      SCALPEL_REQUIRE(inputs.size() == 1, "flatten takes one input");
      return Shape{inputs[0].numel()};
    }
  }
  SCALPEL_REQUIRE(false, "unreachable layer kind");
}

std::int64_t LayerSpec::flops(const std::vector<Shape>& inputs) const {
  const Shape out = out_shape(inputs);
  switch (kind) {
    case LayerKind::kInput:
      return 0;
    case LayerKind::kConv:
      // 2 * K^2 * Cin * Hout * Wout * Cout (MAC = 2 FLOPs).
      return 2 * kernel * kernel * inputs[0][0] * out[1] * out[2] * out[0];
    case LayerKind::kDWConv:
      return 2 * kernel * kernel * out[0] * out[1] * out[2];
    case LayerKind::kFC:
      return 2 * inputs[0].numel() * units;
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
      return out.numel() * kernel * kernel;
    case LayerKind::kGlobalAvgPool:
      return inputs[0].numel();
    case LayerKind::kReLU:
    case LayerKind::kAdd:
      return out.numel();
    case LayerKind::kBatchNorm:
      return 2 * out.numel();  // scale + shift
    case LayerKind::kConcat:
    case LayerKind::kFlatten:
      return 0;  // pure data movement
    case LayerKind::kSoftmax:
      return 5 * out.numel();  // exp + sum + div, coarse
  }
  SCALPEL_REQUIRE(false, "unreachable layer kind");
}

std::int64_t LayerSpec::param_count(const std::vector<Shape>& inputs) const {
  switch (kind) {
    case LayerKind::kConv:
      return kernel * kernel * inputs[0][0] * out_channels + out_channels;
    case LayerKind::kDWConv:
      return kernel * kernel * inputs[0][0] + inputs[0][0];
    case LayerKind::kFC:
      return inputs[0].numel() * units + units;
    case LayerKind::kBatchNorm:
      return 4 * inputs[0][0];  // gamma, beta, running mean, running var
    default:
      return 0;
  }
}

bool LayerSpec::has_weights() const {
  return kind == LayerKind::kConv || kind == LayerKind::kDWConv ||
         kind == LayerKind::kFC || kind == LayerKind::kBatchNorm;
}

LayerSpec LayerSpec::input(Shape shape, std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kInput;
  s.name = std::move(name);
  s.input_shape = std::move(shape);
  return s;
}

LayerSpec LayerSpec::conv(std::int64_t out_channels, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad,
                          std::string name) {
  SCALPEL_REQUIRE(out_channels > 0 && kernel > 0 && stride > 0 && pad >= 0,
                  "invalid conv geometry");
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.name = std::move(name);
  s.out_channels = out_channels;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec LayerSpec::dwconv(std::int64_t kernel, std::int64_t stride,
                            std::int64_t pad, std::string name) {
  SCALPEL_REQUIRE(kernel > 0 && stride > 0 && pad >= 0,
                  "invalid dwconv geometry");
  LayerSpec s;
  s.kind = LayerKind::kDWConv;
  s.name = std::move(name);
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec LayerSpec::fc(std::int64_t units, std::string name) {
  SCALPEL_REQUIRE(units > 0, "fc units must be positive");
  LayerSpec s;
  s.kind = LayerKind::kFC;
  s.name = std::move(name);
  s.units = units;
  return s;
}

LayerSpec LayerSpec::maxpool(std::int64_t kernel, std::int64_t stride,
                             std::string name, std::int64_t pad) {
  LayerSpec s;
  s.kind = LayerKind::kMaxPool;
  s.name = std::move(name);
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec LayerSpec::avgpool(std::int64_t kernel, std::int64_t stride,
                             std::string name, std::int64_t pad) {
  LayerSpec s;
  s.kind = LayerKind::kAvgPool;
  s.name = std::move(name);
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec LayerSpec::global_avgpool(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kGlobalAvgPool;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::relu(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kReLU;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::batchnorm(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kBatchNorm;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::add(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kAdd;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::concat(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kConcat;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::flatten(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kFlatten;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::softmax(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kSoftmax;
  s.name = std::move(name);
  return s;
}

}  // namespace scalpel
