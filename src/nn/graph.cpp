#include "nn/graph.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace scalpel {

NodeId Graph::add(LayerSpec spec, std::vector<NodeId> inputs) {
  std::vector<Shape> in_shapes;
  in_shapes.reserve(inputs.size());
  for (NodeId id : inputs) {
    SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                    "graph node input must reference an earlier node");
    in_shapes.push_back(nodes_[static_cast<std::size_t>(id)].out_shape);
  }
  if (!spec.name.empty()) {
    SCALPEL_REQUIRE(!find(spec.name).has_value(),
                    "duplicate node name: " + spec.name);
  }
  Node n;
  n.out_shape = spec.out_shape(in_shapes);
  n.flops = spec.flops(in_shapes);
  n.params = spec.param_count(in_shapes);
  n.spec = std::move(spec);
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  const std::int64_t prev = prefix_flops_.empty() ? 0 : prefix_flops_.back();
  prefix_flops_.push_back(prev + nodes_.back().flops);
  return static_cast<NodeId>(nodes_.size() - 1);
}

const Graph::Node& Graph::node(NodeId id) const {
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                  "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId Graph::output() const {
  SCALPEL_REQUIRE(!nodes_.empty(), "graph is empty");
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::int64_t Graph::total_flops() const {
  return prefix_flops_.empty() ? 0 : prefix_flops_.back();
}

std::int64_t Graph::total_params() const {
  std::int64_t p = 0;
  for (const auto& n : nodes_) p += n.params;
  return p;
}

std::int64_t Graph::prefix_flops(NodeId k) const {
  SCALPEL_REQUIRE(k >= 0 && static_cast<std::size_t>(k) < nodes_.size(),
                  "prefix_flops node id out of range");
  return prefix_flops_[static_cast<std::size_t>(k)];
}

std::int64_t Graph::range_flops(NodeId after, NodeId upto) const {
  SCALPEL_REQUIRE(after <= upto, "range_flops needs after <= upto");
  const std::int64_t hi = prefix_flops(upto);
  const std::int64_t lo = after < 0 ? 0 : prefix_flops(after);
  return hi - lo;
}

std::vector<Graph::CutPoint> Graph::clean_cuts() const {
  std::vector<CutPoint> cuts;
  // For a cut after node k, every edge (u -> v) with u <= k < v must have
  // u == k. Equivalently: max over consumers v > k of any producer u < k
  // must not exist. Scan consumers once, tracking for each node the furthest
  // consumer; a cut after k is clean iff no node u < k has a consumer > k.
  const auto n = static_cast<NodeId>(nodes_.size());
  std::vector<NodeId> last_consumer(nodes_.size());
  for (NodeId v = 0; v < n; ++v) {
    last_consumer[static_cast<std::size_t>(v)] = v;  // node live until itself
    for (NodeId u : nodes_[static_cast<std::size_t>(v)].inputs) {
      last_consumer[static_cast<std::size_t>(u)] =
          std::max(last_consumer[static_cast<std::size_t>(u)], v);
    }
  }
  // max_live[k] = max over u <= k-1 of last_consumer[u].
  NodeId max_live = -1;
  for (NodeId k = 0; k + 1 < n; ++k) {
    const bool clean = max_live <= k;
    if (clean) {
      cuts.push_back(CutPoint{
          k, nodes_[static_cast<std::size_t>(k)].out_shape.bytes(),
          prefix_flops(k)});
    }
    max_live = std::max(max_live, last_consumer[static_cast<std::size_t>(k)]);
  }
  return cuts;
}

bool Graph::is_clean_cut(NodeId after) const {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (after < 0 || after + 1 >= n) return false;
  // Clean iff no edge (u -> v) with u < after crosses past the cut; edges
  // sourced at `after` itself are the single transferred activation.
  for (NodeId v = after + 1; v < n; ++v) {
    for (NodeId u : nodes_[static_cast<std::size_t>(v)].inputs) {
      if (u < after) return false;
    }
  }
  return true;
}

std::optional<NodeId> Graph::find(const std::string& node_name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].spec.name == node_name) return static_cast<NodeId>(i);
  }
  return std::nullopt;
}

std::string Graph::summary() const {
  std::ostringstream out;
  out << name_ << ": " << nodes_.size() << " layers, "
      << static_cast<double>(total_flops()) / 1e6 << " MFLOPs, "
      << static_cast<double>(total_params()) / 1e6 << " M params\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& nd = nodes_[i];
    out << "  [" << i << "] " << layer_kind_name(nd.spec.kind) << " "
        << nd.spec.name << " -> " << nd.out_shape.to_string() << ", "
        << static_cast<double>(nd.flops) / 1e6 << " MFLOPs\n";
  }
  return out.str();
}

}  // namespace scalpel
