#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace scalpel {
class ThreadPool;

/// Low-level NN kernels. All operate on CHW float tensors, batch size 1.
/// Each kernel has a straightforward definition-style implementation in the
/// test suite (`tests/nn/kernels_reference.hpp`) it is verified against.
namespace kernels {

/// C[m x n] = A[m x k] * B[k x n] + broadcast bias[m] (bias may be null).
/// Blocked over m and threaded via `pool` (pass nullptr for serial).
void gemm(const float* a, const float* b, const float* bias, float* c,
          std::int64_t m, std::int64_t k, std::int64_t n, ThreadPool* pool);

/// Standard convolution via im2col + GEMM.
/// weights layout: [out_c, in_c, kh, kw]; bias: [out_c].
Tensor conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
              std::int64_t stride, std::int64_t pad, ThreadPool* pool);

/// Depthwise convolution. weights layout: [c, kh, kw]; bias: [c].
Tensor dwconv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
                std::int64_t stride, std::int64_t pad, ThreadPool* pool);

/// Fully connected: y = W x + b. weights layout: [units, in]; bias: [units].
Tensor fc(const Tensor& input, const Tensor& weights, const Tensor& bias,
          ThreadPool* pool);

/// Pooling with optional symmetric zero padding. Average pooling uses
/// count-exclude-pad semantics (only in-bounds elements enter the mean).
Tensor maxpool2d(const Tensor& input, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad = 0);
Tensor avgpool2d(const Tensor& input, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad = 0);
Tensor global_avgpool(const Tensor& input);
Tensor relu(const Tensor& input);
/// Inference batch-norm: y = gamma * (x - mean) / sqrt(var + eps) + beta.
/// params layout: [4, C] rows = gamma, beta, mean, var.
Tensor batchnorm(const Tensor& input, const Tensor& params, float eps = 1e-5f);
Tensor add(const Tensor& a, const Tensor& b);
Tensor concat_channels(const std::vector<Tensor>& inputs);
Tensor softmax(const Tensor& input);

/// Symmetric per-tensor INT8 quantization: returns round(x / scale) clamped
/// to [-127, 127], stored in a byte buffer, with the scale chosen as
/// max|x| / 127. Used by the quantized-upload surgery extension — the
/// activation crossing the partition cut ships at 1/4 the bytes.
struct QuantizedTensor {
  Shape shape;
  std::vector<std::int8_t> data;
  float scale = 1.0f;
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data.size()) + 4;  // payload + scale
  }
};

QuantizedTensor quantize_int8(const Tensor& input);
Tensor dequantize_int8(const QuantizedTensor& q);

}  // namespace kernels
}  // namespace scalpel
