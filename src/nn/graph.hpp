#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace scalpel {

using NodeId = std::int32_t;

/// DNN dataflow graph. Nodes may only reference earlier nodes, so insertion
/// order *is* a topological order — this keeps partitioning, prefix-cost and
/// execution logic simple and is how every model builder in the zoo works.
class Graph {
 public:
  struct Node {
    LayerSpec spec;
    std::vector<NodeId> inputs;
    Shape out_shape;              // computed at insertion
    std::int64_t flops = 0;       // computed at insertion
    std::int64_t params = 0;      // computed at insertion
  };

  explicit Graph(std::string name = "model") : name_(std::move(name)) {}

  /// Append a node; all inputs must be existing node ids. Returns the new id.
  NodeId add(LayerSpec spec, std::vector<NodeId> inputs = {});

  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  const std::string& name() const { return name_; }

  /// Last node — the model's final output (builders end with softmax).
  NodeId output() const;

  /// Total forward FLOPs / learnable parameters over all nodes.
  std::int64_t total_flops() const;
  std::int64_t total_params() const;

  /// FLOPs of nodes with id <= k (prefix cost of executing up to node k).
  std::int64_t prefix_flops(NodeId k) const;

  /// FLOPs of the subrange (after, ..., upto] in insertion order.
  std::int64_t range_flops(NodeId after, NodeId upto) const;

  /// A *clean cut* after node k means every dataflow edge crossing the cut
  /// originates at node k itself — i.e. one activation tensor fully captures
  /// the network state, so the model can be split there and the two halves
  /// run on different machines with a single transfer.
  struct CutPoint {
    NodeId after;                 // cut after this node
    std::int64_t activation_bytes;  // payload transferred at the cut
    std::int64_t prefix_flops;    // compute on the device side
  };

  /// All clean cuts, in depth order. Always includes a virtual cut after the
  /// input node (id 0, "offload everything") when the input layer exists.
  std::vector<CutPoint> clean_cuts() const;

  /// True iff a cut after node `after` is clean (see CutPoint). Equivalent
  /// to membership in clean_cuts() but allocation-free and early-exiting —
  /// the PlanModel constructor validates every plan with it on a hot path.
  bool is_clean_cut(NodeId after) const;

  /// Find node by name; nullopt if absent. Names must be unique per graph.
  std::optional<NodeId> find(const std::string& node_name) const;

  /// Human-readable per-layer summary (used by bench_t1_models).
  std::string summary() const;

  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::int64_t> prefix_flops_;  // inclusive prefix sums
};

}  // namespace scalpel
