#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace scalpel {

namespace {

constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(TraceEventType::kComplete) + 1;

/// Duration-pair begin types and the track name their B/E span renders as.
bool span_begin(const TraceEvent& ev, std::string* name) {
  switch (ev.type) {
    case TraceEventType::kExecStart:
      *name = ev.arg == static_cast<std::uint8_t>(TraceStage::kServer)
                  ? "server-exec"
                  : "device-exec";
      return true;
    case TraceEventType::kUploadStart:
      *name = "upload";
      return true;
    default:
      return false;
  }
}

bool span_end(const TraceEvent& ev, std::string* name) {
  switch (ev.type) {
    case TraceEventType::kExecEnd:
      *name = ev.arg == static_cast<std::uint8_t>(TraceStage::kServer)
                  ? "server-exec"
                  : "device-exec";
      return true;
    case TraceEventType::kUploadEnd:
      *name = "upload";
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrive: return "arrive";
    case TraceEventType::kEnqueue: return "enqueue";
    case TraceEventType::kDispatch: return "dispatch";
    case TraceEventType::kExecStart: return "exec_start";
    case TraceEventType::kExecEnd: return "exec_end";
    case TraceEventType::kUploadStart: return "upload_start";
    case TraceEventType::kUploadEnd: return "upload_end";
    case TraceEventType::kRetry: return "retry";
    case TraceEventType::kResteer: return "resteer";
    case TraceEventType::kShed: return "shed";
    case TraceEventType::kExpire: return "expire";
    case TraceEventType::kFail: return "fail";
    case TraceEventType::kComplete: return "complete";
  }
  return "unknown";
}

const char* trace_stage_name(TraceStage stage) {
  switch (stage) {
    case TraceStage::kDevice: return "device";
    case TraceStage::kUpload: return "upload";
    case TraceStage::kServer: return "server";
  }
  return "unknown";
}

void TaskTracer::reset(std::size_t capacity) {
  capacity_ = capacity;
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> TaskTracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event first: once wrapped, it sits at head_ (the next overwrite).
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

Json trace_to_chrome_json(const std::vector<TraceEvent>& events) {
  Json doc = Json::object();
  doc.set("displayTimeUnit", Json::string("ms"));
  Json& arr = doc.set("traceEvents", Json::array());
  for (const auto& ev : events) {
    Json e = Json::object();
    std::string span;
    if (span_begin(ev, &span)) {
      e.set("name", Json::string(span));
      e.set("ph", Json::string("B"));
    } else if (span_end(ev, &span)) {
      e.set("name", Json::string(span));
      e.set("ph", Json::string("E"));
    } else {
      e.set("name", Json::string(trace_event_name(ev.type)));
      e.set("ph", Json::string("i"));
      e.set("s", Json::string("t"));  // thread-scoped instant
    }
    e.set("ts", Json::number(ev.time * 1e6));  // chrome traces use µs
    e.set("pid", Json::number(static_cast<double>(ev.device)));
    e.set("tid", Json::number(static_cast<double>(ev.task)));
    Json args = Json::object();
    args.set("event", Json::string(trace_event_name(ev.type)));
    if (ev.server >= 0) {
      args.set("server", Json::number(static_cast<double>(ev.server)));
    }
    if (ev.type == TraceEventType::kRetry) {
      args.set("attempt", Json::number(static_cast<double>(ev.arg)));
    } else if (ev.type == TraceEventType::kEnqueue ||
               ev.type == TraceEventType::kDispatch ||
               ev.type == TraceEventType::kExecStart ||
               ev.type == TraceEventType::kExecEnd) {
      args.set("stage", Json::string(trace_stage_name(
                            static_cast<TraceStage>(ev.arg))));
    }
    e.set("args", std::move(args));
    arr.push_back(std::move(e));
  }
  return doc;
}

Json trace_to_chrome_json(const TaskTracer& tracer) {
  Json doc = trace_to_chrome_json(tracer.snapshot());
  doc.set("droppedEvents",
          Json::number(static_cast<double>(tracer.dropped())));
  return doc;
}

Table trace_to_table(const std::vector<TraceEvent>& events) {
  Table t({"time_s", "task", "device", "server", "event", "arg"});
  for (const auto& ev : events) {
    t.add_row({Table::num(ev.time, 6),
               Table::num(static_cast<std::int64_t>(ev.task)),
               Table::num(static_cast<std::int64_t>(ev.device)),
               Table::num(static_cast<std::int64_t>(ev.server)),
               trace_event_name(ev.type),
               Table::num(static_cast<std::int64_t>(ev.arg))});
  }
  return t;
}

bool write_trace(const TaskTracer& tracer, const std::string& path) {
  const bool csv = path.size() >= 4 &&
                   path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("could not open trace output file: " + path);
    return false;
  }
  if (csv) {
    out << trace_to_table(tracer.snapshot()).to_csv();
  } else {
    out << trace_to_chrome_json(tracer).dump_pretty() << "\n";
  }
  return static_cast<bool>(out);
}

std::vector<std::size_t> trace_event_counts(
    const std::vector<TraceEvent>& events) {
  std::vector<std::size_t> counts(kNumEventTypes, 0);
  for (const auto& ev : events) {
    const auto idx = static_cast<std::size_t>(ev.type);
    SCALPEL_REQUIRE(idx < counts.size(), "unknown trace event type");
    ++counts[idx];
  }
  return counts;
}

std::vector<TraceEvent> reconcile_trace(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return std::tie(x.time, x.task, x.type, x.arg, x.device,
                                     x.server) < std::tie(y.time, y.task,
                                                          y.type, y.arg,
                                                          y.device, y.server);
                   });
  return events;
}

}  // namespace scalpel
