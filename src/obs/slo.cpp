#include "obs/slo.hpp"

#include <cstdio>

#include "obs/audit.hpp"
#include "obs/timeseries.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"

namespace scalpel {

namespace {

std::string format_burns(const SloSpec& spec,
                         const std::vector<double>& burns) {
  std::string rates;
  std::string windows;
  char buf[64];
  for (std::size_t w = 0; w < spec.windows.size(); ++w) {
    if (w != 0) {
      rates += "/";
      windows += "/";
    }
    std::snprintf(buf, sizeof(buf), "%.2fx", burns[w]);
    rates += buf;
    std::snprintf(buf, sizeof(buf), "%gs", spec.windows[w].seconds);
    windows += buf;
  }
  std::snprintf(buf, sizeof(buf), " (objective %g)", spec.objective);
  return "slo " + spec.name + ": burn " + rates + " over " + windows +
         " windows" + buf;
}

}  // namespace

void SloMonitor::add(SloSpec spec) {
  SCALPEL_REQUIRE(spec.objective < 1.0,
                  "SloSpec: objective must leave an error budget (< 1)");
  SCALPEL_REQUIRE(!spec.windows.empty(), "SloSpec: at least one burn window");
  for (const auto& w : spec.windows) {
    SCALPEL_REQUIRE(w.seconds > 0.0, "SloWindow: window must be positive");
  }
  State st;
  st.burns.assign(spec.windows.size(), 0.0);
  st.cursors.assign(spec.windows.size(), 0);
  st.spec = std::move(spec);
  states_.push_back(std::move(st));
}

void SloMonitor::evaluate() {
  SCALPEL_REQUIRE(recorder_ != nullptr, "SloMonitor: no recorder attached");
  if (recorder_->empty()) return;
  for (auto& st : states_) {
    if (!st.resolved) {
      st.good_col = recorder_->column_index(st.spec.good);
      st.total_col = recorder_->column_index(st.spec.total);
      st.resolved = true;
    }
    bool all_burning = true;
    for (std::size_t w = 0; w < st.spec.windows.size(); ++w) {
      const auto& win = st.spec.windows[w];
      // One baseline lookup per window, shared by both columns; the cursor
      // makes it a forward step rather than a search on every sample.
      const std::size_t base =
          recorder_->window_base_row_from(&st.cursors[w], win.seconds);
      const double total = recorder_->delta_from(base, st.total_col);
      double burn = 0.0;
      if (total > 0.0) {
        const double good = recorder_->delta_from(base, st.good_col);
        const double bad_fraction = 1.0 - good / total;
        burn = bad_fraction / (1.0 - st.spec.objective);
      }
      st.burns[w] = burn;
      if (burn < win.burn_threshold) all_burning = false;
    }
    if (all_burning != st.alerting) {
      st.alerting = all_burning;
      if (all_burning) {
        ++alerts_started_;
      } else {
        ++alerts_stopped_;
      }
      if (audit_ != nullptr) {
        audit_->advance_time(recorder_->last_time());
        AuditRecord rec;
        rec.cause = all_burning ? AuditCause::kSloBurnStart
                                : AuditCause::kSloBurnStop;
        rec.detail = format_burns(st.spec, st.burns);
        audit_->append(std::move(rec));
      }
    }
  }
}

Json SloMonitor::to_json() const {
  Json arr = Json::array();
  for (const auto& st : states_) {
    Json s = Json::object();
    s.set("name", Json::string(st.spec.name));
    s.set("good", Json::string(st.spec.good));
    s.set("total", Json::string(st.spec.total));
    s.set("objective", Json::number(st.spec.objective));
    s.set("alerting", Json::boolean(st.alerting));
    Json wins = Json::array();
    for (std::size_t w = 0; w < st.spec.windows.size(); ++w) {
      Json jw = Json::object();
      jw.set("seconds", Json::number(st.spec.windows[w].seconds));
      jw.set("threshold", Json::number(st.spec.windows[w].burn_threshold));
      jw.set("burn", Json::number(st.burns[w]));
      wins.push_back(std::move(jw));
    }
    s.set("windows", std::move(wins));
    arr.push_back(std::move(s));
  }
  Json doc = Json::object();
  doc.set("slos", std::move(arr));
  doc.set("alerts_started",
          Json::number(static_cast<double>(alerts_started_)));
  doc.set("alerts_stopped",
          Json::number(static_cast<double>(alerts_stopped_)));
  return doc;
}

}  // namespace scalpel
