#include "obs/audit.hpp"

#include "util/json.hpp"
#include "util/table.hpp"

namespace scalpel {

const char* audit_cause_name(AuditCause cause) {
  switch (cause) {
    case AuditCause::kInitialSolve: return "initial_solve";
    case AuditCause::kResolve: return "resolve";
    case AuditCause::kFailover: return "failover";
    case AuditCause::kRungDown: return "rung_down";
    case AuditCause::kRungUp: return "rung_up";
    case AuditCause::kThrottleOn: return "throttle_on";
    case AuditCause::kThrottleAdjust: return "throttle_adjust";
    case AuditCause::kThrottleOff: return "throttle_off";
    case AuditCause::kTelemetryRejected: return "telemetry_rejected";
    case AuditCause::kSolverTimeout: return "solver_timeout";
    case AuditCause::kPlanRejected: return "plan_rejected";
    case AuditCause::kFallbackApplied: return "fallback_applied";
    case AuditCause::kCoordinatorLost: return "coordinator_lost";
    case AuditCause::kLocalAutonomy: return "local_autonomy";
    case AuditCause::kRejoin: return "rejoin";
    case AuditCause::kStalePrice: return "stale_price";
    case AuditCause::kEpochRejected: return "epoch_rejected";
    case AuditCause::kSloBurnStart: return "slo_burn_start";
    case AuditCause::kSloBurnStop: return "slo_burn_stop";
  }
  return "unknown";
}

void DecisionAuditLog::append(AuditRecord record) {
  record.time = now_;
  if (max_records_ > 0 && records_.size() >= max_records_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

void DecisionAuditLog::clear() {
  records_.clear();
  dropped_ = 0;
}

Json DecisionAuditLog::to_json() const {
  Json arr = Json::array();
  for (const auto& r : records_) {
    Json o = Json::object();
    o.set("time", Json::number(r.time));
    o.set("cause", Json::string(audit_cause_name(r.cause)));
    o.set("detail", Json::string(r.detail));
    o.set("plan_before", Json::string(r.plan_before));
    o.set("plan_after", Json::string(r.plan_after));
    o.set("rung_before", Json::number(static_cast<double>(r.rung_before)));
    o.set("rung_after", Json::number(static_cast<double>(r.rung_after)));
    o.set("accuracy_before", Json::number(r.accuracy_before));
    o.set("accuracy_after", Json::number(r.accuracy_after));
    o.set("admit_before", Json::number(r.admit_before));
    o.set("admit_after", Json::number(r.admit_after));
    arr.push_back(std::move(o));
  }
  return arr;
}

Table DecisionAuditLog::to_table() const {
  Table t({"time s", "cause", "detail", "rung", "accuracy", "admit"});
  for (const auto& r : records_) {
    t.add_row({Table::num(r.time, 2), audit_cause_name(r.cause), r.detail,
               Table::num(static_cast<std::int64_t>(r.rung_before)) + "->" +
                   Table::num(static_cast<std::int64_t>(r.rung_after)),
               Table::num(r.accuracy_before, 3) + "->" +
                   Table::num(r.accuracy_after, 3),
               Table::num(r.admit_before, 2) + "->" +
                   Table::num(r.admit_after, 2)});
  }
  return t;
}

}  // namespace scalpel
