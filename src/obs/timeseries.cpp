#include "obs/timeseries.hpp"

#include <fstream>

#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace scalpel {

namespace {

/// Built-in engine columns, laid out before any registered source. "time"
/// is always column 0 so exports and window lookups have a fixed anchor.
const char* const kEngineColumns[] = {
    "time",           "sim.arrived",    "sim.completed",
    "sim.failed",     "sim.shed",       "sim.expired",
    "sim.deadline_met", "sim.deadline_total", "sim.in_flight",
    "sim.queue_depth",
};
constexpr std::size_t kNumEngineColumns =
    sizeof(kEngineColumns) / sizeof(kEngineColumns[0]);
// time is neither; arrived..deadline_total are cumulative counters;
// in_flight and queue_depth are gauges.
constexpr std::size_t kFirstCumulative = 1;
constexpr std::size_t kLastCumulative = 7;  // sim.deadline_total

}  // namespace

void TimeSeriesRecorder::register_gauge(std::string name,
                                        std::function<double()> fn) {
  SCALPEL_REQUIRE(columns_.empty(),
                  "TimeSeriesRecorder: register before the first sample");
  sources_.push_back({std::move(name), std::move(fn), false});
}

void TimeSeriesRecorder::register_counter(std::string name,
                                          std::function<double()> fn) {
  SCALPEL_REQUIRE(columns_.empty(),
                  "TimeSeriesRecorder: register before the first sample");
  sources_.push_back({std::move(name), std::move(fn), true});
}

void TimeSeriesRecorder::freeze_columns() {
  columns_.clear();
  cumulative_.clear();
  columns_.reserve(kNumEngineColumns + sources_.size());
  for (std::size_t i = 0; i < kNumEngineColumns; ++i) {
    columns_.emplace_back(kEngineColumns[i]);
    cumulative_.push_back(i >= kFirstCumulative && i <= kLastCumulative);
  }
  for (const auto& src : sources_) {
    columns_.push_back(src.name);
    cumulative_.push_back(src.is_counter);
  }
  data_.assign(capacity_ * columns_.size(), 0.0);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void TimeSeriesRecorder::sample(const EngineSample& s) {
  if (capacity_ == 0) return;
  if (columns_.empty()) freeze_columns();
  double* row = &data_[head_ * columns_.size()];
  row[0] = s.time;
  row[1] = static_cast<double>(s.arrived);
  row[2] = static_cast<double>(s.completed);
  row[3] = static_cast<double>(s.failed);
  row[4] = static_cast<double>(s.shed);
  row[5] = static_cast<double>(s.expired);
  row[6] = static_cast<double>(s.deadline_met);
  row[7] = static_cast<double>(s.deadline_total);
  row[8] = s.in_flight;
  row[9] = s.queue_depth;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    row[kNumEngineColumns + i] = sources_[i].fn();
  }
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (size_ < capacity_) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::size_t TimeSeriesRecorder::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  SCALPEL_REQUIRE(false, "TimeSeriesRecorder: unknown column " + name);
  return 0;
}

const double* TimeSeriesRecorder::row_ptr(std::size_t row) const {
  SCALPEL_REQUIRE(row < size_, "TimeSeriesRecorder: row out of range");
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  return &data_[((start + row) % capacity_) * columns_.size()];
}

double TimeSeriesRecorder::value(std::size_t row, std::size_t col) const {
  SCALPEL_REQUIRE(col < columns_.size(),
                  "TimeSeriesRecorder: column out of range");
  return row_ptr(row)[col];
}

double TimeSeriesRecorder::last_time() const {
  if (size_ == 0) return 0.0;
  return row_ptr(size_ - 1)[0];
}

std::size_t TimeSeriesRecorder::window_base_row(double window) const {
  if (size_ == 0) return kNoBaseRow;
  const double cutoff = row_ptr(size_ - 1)[0] - window;
  // Newest retained row with time <= cutoff; absent (window reaches past the
  // series) the baseline is the run-start value 0. Sample times are
  // nondecreasing, so binary-search for the first row past the cutoff —
  // evaluate() calls this on every sample, and a linear scan over the
  // retained rows would make sampling cost grow with the window span. The
  // ring index is unwrapped with a compare-subtract rather than row_ptr's
  // modulo: this loop runs ~10 probes per sample in steady state.
  const std::size_t ncols = columns_.size();
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  std::size_t lo = 0;
  std::size_t hi = size_;  // first row with time > cutoff
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::size_t idx = start + mid;
    if (idx >= capacity_) idx -= capacity_;
    if (data_[idx * ncols] <= cutoff) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? kNoBaseRow : lo - 1;
}

double TimeSeriesRecorder::delta_from(std::size_t base_row,
                                      std::size_t col) const {
  if (size_ == 0) return 0.0;
  SCALPEL_REQUIRE(col < columns_.size(),
                  "TimeSeriesRecorder: column out of range");
  const double base = base_row == kNoBaseRow ? 0.0 : row_ptr(base_row)[col];
  return row_ptr(size_ - 1)[col] - base;
}

double TimeSeriesRecorder::window_delta(std::size_t col, double window) const {
  if (size_ == 0) return 0.0;
  return delta_from(window_base_row(window), col);
}

std::size_t TimeSeriesRecorder::window_base_row_from(std::uint64_t* cursor,
                                                     double window) const {
  if (size_ == 0) return kNoBaseRow;
  const std::size_t ncols = columns_.size();
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  const std::uint64_t oldest = dropped_;  // absolute ordinal of row 0
  const std::uint64_t newest = oldest + size_ - 1;
  const auto time_at = [&](std::uint64_t abs) {
    std::size_t idx = start + static_cast<std::size_t>(abs - oldest);
    if (idx >= capacity_) idx -= capacity_;
    return data_[idx * ncols];
  };
  const double cutoff = time_at(newest) - window;
  std::uint64_t a = *cursor;
  if (a < oldest) a = oldest;  // baseline candidate was evicted
  if (a > newest) a = newest;
  while (a < newest && time_at(a + 1) <= cutoff) ++a;
  *cursor = a;
  if (time_at(a) > cutoff) return kNoBaseRow;
  return static_cast<std::size_t>(a - oldest);
}

void TimeSeriesRecorder::clear() {
  columns_.clear();
  cumulative_.clear();
  data_.clear();
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

Json TimeSeriesRecorder::to_json() const {
  Json doc = Json::object();
  Json cols = Json::array();
  for (const auto& name : columns_) cols.push_back(Json::string(name));
  doc.set("columns", std::move(cols));
  Json rows = Json::array();
  for (std::size_t r = 0; r < size_; ++r) {
    const double* row = row_ptr(r);
    Json jr = Json::array();
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      jr.push_back(Json::number(row[c]));
    }
    rows.push_back(std::move(jr));
  }
  doc.set("rows", std::move(rows));
  doc.set("dropped", Json::number(static_cast<double>(dropped_)));
  return doc;
}

Table TimeSeriesRecorder::to_table() const {
  Table t(columns_);
  for (std::size_t r = 0; r < size_; ++r) {
    const double* row = row_ptr(r);
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(Table::num(row[c], 6));
    }
    t.add_row(cells);
  }
  return t;
}

bool TimeSeriesRecorder::write(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("could not open time-series output file: " + path);
    return false;
  }
  if (csv) {
    out << to_table().to_csv();
  } else {
    out << to_json().dump_pretty() << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace scalpel
