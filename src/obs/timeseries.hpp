#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace scalpel {
class Json;
class Table;

/// Engine-side signals captured at every sample instant. POD and declared
/// here (not in src/sim) so obs stays a leaf library: both engines fill one
/// of these from their own state and hand it over. Counters are cumulative
/// since run start; gauges are instantaneous. All values are exact integers
/// (stored as doubles), so summation order cannot perturb them — the basis
/// for bit-identical series across shard x thread configurations.
struct EngineSample {
  double time = 0.0;
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t deadline_met = 0;    // counted completions within deadline
  std::uint64_t deadline_total = 0;  // counted terminals with a deadline
  double in_flight = 0.0;            // tasks alive at the sample instant
  double queue_depth = 0.0;          // tasks buffered across every device
};

/// Fixed-interval windowed snapshots of engine signals plus caller-registered
/// sources (per-cell slices and prices, controller rung, epochs minted, dead
/// letters, ...). Row-major storage in one ring preallocated at the first
/// sample, so steady-state sampling never allocates; once full the oldest
/// rows are overwritten (dropped() reports how many). The engines drive the
/// cadence — the single loop from a scheduled event, the sharded engine at
/// epoch barriers on the same exact time grid — so a recorder fed by either
/// engine holds bit-identical rows.
class TimeSeriesRecorder {
 public:
  /// `capacity` is the maximum retained rows (ring, oldest evicted).
  explicit TimeSeriesRecorder(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  /// Registers a caller-polled column, sampled after the built-in engine
  /// columns in registration order. Counter columns are expected to be
  /// cumulative and non-decreasing (window_delta() differences them);
  /// gauge columns are instantaneous. Must be called before the first
  /// sample() — the column set freezes when storage is laid out.
  void register_gauge(std::string name, std::function<double()> fn);
  void register_counter(std::string name, std::function<double()> fn);

  /// Records one row: the engine sample plus every registered source.
  void sample(const EngineSample& s);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }
  /// Column names in storage order ("time" first, then the built-in engine
  /// columns, then registered sources).
  const std::vector<std::string>& columns() const { return columns_; }
  /// True for columns holding cumulative counts (window_delta applies).
  const std::vector<bool>& cumulative() const { return cumulative_; }
  std::size_t column_index(const std::string& name) const;  // REQUIREs found

  /// value(row, col) with row 0 = oldest retained sample.
  double value(std::size_t row, std::size_t col) const;
  double last_time() const;

  /// Delta of a cumulative column across the trailing `window` seconds:
  /// value at the newest sample minus the value at the newest sample with
  /// time <= last_time() - window (run-start baseline 0 when the window
  /// covers the whole retained series). Returns 0 with no samples.
  double window_delta(std::size_t col, double window) const;

  /// Baseline row for a trailing window: the newest retained row with
  /// time <= last_time() - window, or kNoBaseRow when the window reaches
  /// past the retained series (run-start baseline 0). Lets callers reading
  /// several columns over the same window search once and difference many —
  /// SloMonitor::evaluate runs on every sample, so the search cost matters.
  static constexpr std::size_t kNoBaseRow = static_cast<std::size_t>(-1);
  std::size_t window_base_row(double window) const;
  /// last-row value of `col` minus its value at `base_row` (kNoBaseRow -> 0).
  double delta_from(std::size_t base_row, std::size_t col) const;
  /// Cursor-advancing variant for periodic callers (SloMonitor evaluates on
  /// every sample): `cursor` is an absolute sample ordinal (survives ring
  /// eviction; start at 0) that only ever moves forward, so steady-state
  /// cost is O(1) adjacent probes instead of a binary search whose scattered
  /// row reads miss cache on every call. Same result as window_base_row.
  std::size_t window_base_row_from(std::uint64_t* cursor,
                                   double window) const;

  void clear();  // drops rows and the column layout; keeps sources

  /// {"columns": [...], "rows": [[...], ...], "dropped": n}.
  Json to_json() const;
  /// One row per sample, one column per series, for CSV export.
  Table to_table() const;
  /// Writes JSON (or CSV with a ".csv" suffix); false + log on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Source {
    std::string name;
    std::function<double()> fn;
    bool is_counter = false;
  };

  void freeze_columns();
  const double* row_ptr(std::size_t row) const;

  std::size_t capacity_;
  std::vector<Source> sources_;
  std::vector<std::string> columns_;
  std::vector<bool> cumulative_;
  std::vector<double> data_;  // ring of size_ rows x columns_.size()
  std::size_t head_ = 0;      // next write row
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace scalpel
