#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalpel {
class Json;
class Table;

/// Per-task lifecycle event kinds recorded by the TaskTracer. One simulated
/// task emits kArrive exactly once and exactly one terminal event (kComplete,
/// kFail, kShed or kExpire), so a complete trace reconciles with the
/// simulator's conservation counters:
///   #kArrive == #kComplete + #kFail + #kShed + #kExpire + in_flight_end.
enum class TraceEventType : std::uint8_t {
  kArrive = 0,    // task created at its device
  kEnqueue,       // admitted into a stage queue (arg = TraceStage)
  kDispatch,      // popped from a queue into a service slot (arg = TraceStage)
  kExecStart,     // compute begins (arg = TraceStage: device or server)
  kExecEnd,       // compute ends (arg = TraceStage)
  kUploadStart,   // uplink transfer begins occupying the fluid slot
  kUploadEnd,     // uplink transfer drained (before the RTT)
  kRetry,         // fault-policy re-dispatch scheduled (arg = attempt number)
  kResteer,       // fault-policy device-fallback re-execution
  kShed,          // dropped by the overload policy or admission gate
  kExpire,        // dropped because the deadline is provably unreachable
  kFail,          // dropped by the fault policy
  kComplete,      // finished; result delivered
};

/// Pipeline stage tag carried in TraceEvent::arg for stage-shaped events.
enum class TraceStage : std::uint8_t { kDevice = 0, kUpload = 1, kServer = 2 };

/// Short stable names ("arrive", "exec_start", ...) used by every exporter.
const char* trace_event_name(TraceEventType type);
const char* trace_stage_name(TraceStage stage);

/// One fixed-size trace record. POD on purpose: recording is a struct copy
/// into a preallocated ring, never an allocation.
struct TraceEvent {
  double time = 0.0;        // sim seconds (may differ from recording order
                            // only for scheduled exec-start stamps)
  std::uint64_t task = 0;   // per-run task id, assigned at arrival
  std::int32_t device = -1;
  std::int32_t server = -1;  // -1 when the event has no server side
  TraceEventType type = TraceEventType::kArrive;
  std::uint8_t arg = 0;      // TraceStage or retry attempt, by event type

  bool operator==(const TraceEvent& other) const {
    return time == other.time && task == other.task &&
           device == other.device && server == other.server &&
           type == other.type && arg == other.arg;
  }
};

/// Bounded per-run event recorder. Disabled (capacity 0) it is a single
/// predictable branch per record() call — cheap enough to leave the
/// instrumentation hooks compiled into the simulator hot path. Enabled, it
/// writes into a ring buffer preallocated at construction: recording never
/// allocates, and once full the oldest events are overwritten (dropped()
/// reports how many were lost, so exporters can flag truncated traces).
class TaskTracer {
 public:
  TaskTracer() = default;  // disabled
  explicit TaskTracer(std::size_t capacity) { reset(capacity); }

  /// Re-arms the tracer with a new capacity (0 disables); clears all events.
  void reset(std::size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  std::size_t size() const { return size_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  /// Total record() calls accepted (size() + dropped()).
  std::uint64_t recorded() const { return size_ + dropped_; }

  void record(double time, std::uint64_t task, std::int32_t device,
              std::int32_t server, TraceEventType type, std::uint8_t arg = 0) {
    if (capacity_ == 0) return;  // disabled: the whole hot path is this branch
    TraceEvent& slot = ring_[head_];
    slot.time = time;
    slot.task = task;
    slot.device = device;
    slot.server = server;
    slot.type = type;
    slot.arg = arg;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    if (size_ < capacity_) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  /// Events in recording order, oldest first (allocates; not for hot paths).
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format):
/// device compute, upload, and server compute phases become B/E duration
/// pairs on pid=device / tid=task tracks; everything else is an instant
/// event. Timestamps are microseconds of sim time.
Json trace_to_chrome_json(const std::vector<TraceEvent>& events);
Json trace_to_chrome_json(const TaskTracer& tracer);

/// Flat tabular view (time_s, task, device, server, event, arg) for CSV
/// export via write_csv().
Table trace_to_table(const std::vector<TraceEvent>& events);

/// Writes the Chrome trace JSON to `path`; returns false (and logs) on I/O
/// failure. A ".csv" suffix switches to the tabular CSV form instead.
bool write_trace(const TaskTracer& tracer, const std::string& path);

/// Per-type event counts of a trace (index by TraceEventType).
std::vector<std::size_t> trace_event_counts(
    const std::vector<TraceEvent>& events);

/// Canonical order for comparing traces of equivalent runs that recorded
/// events in different orders (e.g. the single-loop simulator vs. the
/// sharded one, whose per-shard rings interleave differently): stable sort
/// by (time, task, type, arg, device, server). Two runs are trace-equivalent
/// iff their reconciled streams compare equal element-wise.
std::vector<TraceEvent> reconcile_trace(std::vector<TraceEvent> events);

}  // namespace scalpel
