#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalpel {
class DecisionAuditLog;
class Json;
class TimeSeriesRecorder;

/// One burn-rate evaluation window. The burn rate is the fraction of the
/// error budget consumed per unit budget: with objective 0.9, a window where
/// 20% of tasks missed their deadline burns at (0.20 / 0.10) = 2.0x. A
/// threshold of 1.0 means "alert when the budget is being spent exactly as
/// fast as it accrues"; production policies typically pair a short window at
/// a high threshold (fast detection) with a long window at a lower one
/// (sustained-burn confirmation), alerting only when BOTH fire.
struct SloWindow {
  double seconds = 10.0;
  double burn_threshold = 1.0;
};

/// Declarative SLO over two cumulative counter columns of a
/// TimeSeriesRecorder: good/total >= objective, e.g. deadline-met over
/// deadline-total >= 0.9.
struct SloSpec {
  std::string name;        // e.g. "deadline"
  std::string good;        // cumulative counter column, e.g. sim.deadline_met
  std::string total;       // cumulative counter column, e.g. sim.deadline_total
  double objective = 0.9;  // must be < 1 (a zero error budget cannot burn)
  std::vector<SloWindow> windows;
};

/// Multi-window burn-rate alerting evaluated over a TimeSeriesRecorder.
/// evaluate() is called by the engines right after every recorder sample; it
/// recomputes each spec's per-window burn rates from window_delta() and
/// flips the spec's alert state when ALL windows sit at or above their
/// thresholds (and back when any window recedes). Transitions append
/// kSloBurnStart / kSloBurnStop records to the attached DecisionAuditLog, so
/// a burn shows up in the same flight recorder as the controller decisions
/// that caused — or should have cured — it. Deterministic: state depends
/// only on recorder contents, so alert streams are bit-identical wherever
/// the series are.
class SloMonitor {
 public:
  /// `audit` may be null (alert states still tracked, nothing logged).
  explicit SloMonitor(const TimeSeriesRecorder* recorder,
                      DecisionAuditLog* audit = nullptr)
      : recorder_(recorder), audit_(audit) {}

  /// Registers a spec; REQUIREs objective < 1 and at least one window.
  /// Column names are resolved lazily at the first evaluate() (the recorder
  /// freezes its column set at its first sample).
  void add(SloSpec spec);

  /// Recomputes burn rates and alert states from the recorder's current
  /// contents. No-op until the recorder has at least one sample.
  void evaluate();

  std::size_t specs() const { return states_.size(); }
  const SloSpec& spec(std::size_t i) const { return states_.at(i).spec; }
  bool alerting(std::size_t i) const { return states_.at(i).alerting; }
  /// Burn rate of spec i's window w as of the last evaluate().
  double burn_rate(std::size_t i, std::size_t w) const {
    return states_.at(i).burns.at(w);
  }
  std::uint64_t alerts_started() const { return alerts_started_; }
  std::uint64_t alerts_stopped() const { return alerts_stopped_; }

  /// Per-spec {name, objective, alerting, windows: [{seconds, threshold,
  /// burn}], starts, stops} for reports.
  Json to_json() const;

 private:
  struct State {
    SloSpec spec;
    std::size_t good_col = 0;
    std::size_t total_col = 0;
    bool resolved = false;
    bool alerting = false;
    std::vector<double> burns;  // one per window, last evaluate()
    // Per-window baseline cursors (absolute sample ordinals) so the
    // per-sample window lookup is an O(1) forward step, not a search.
    std::vector<std::uint64_t> cursors;
  };

  const TimeSeriesRecorder* recorder_;
  DecisionAuditLog* audit_;
  std::vector<State> states_;
  std::uint64_t alerts_started_ = 0;
  std::uint64_t alerts_stopped_ = 0;
};

}  // namespace scalpel
