#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace scalpel {
class Json;
class Table;

/// Lifecycle stations a control-plane message (or the grant it carries)
/// passes through. One send records kSent exactly once and then exactly one
/// fabric outcome — kDropped, kDelivered, or a fabric-side kDeadLetter (the
/// queue wiped when its endpoint died) — so a complete span stream
/// reconciles with the fabric's counters:
///   #kSent == #kDropped + #kDelivered + #fabric kDeadLetter + in_flight.
/// A routing-side kDeadLetter (recipient down at delivery time) annotates a
/// message that already carries a kDelivered span; the two populations are
/// told apart by the ctrl.msg.dropped_dead vs ctrl.dead_letters counters.
/// kDelayed, kAdopted, kRejectedStale, and kRegrant annotate that skeleton:
/// jittered transit, cell-side grant adoption, split-brain rejections, and
/// coordinator anti-entropy re-grants (which reuse the original grant's
/// correlation id, so mint -> drop -> re-grant -> adopt reads as one causal
/// chain on a single id).
enum class CtrlSpanEvent : std::uint8_t {
  kSent = 0,       // handed to the fabric (seq assigned)
  kDelayed,        // transit picked up a nonzero jitter draw
  kDropped,        // the fabric's drop coin ate it
  kDelivered,      // surfaced by ControlFabric::deliver
  kDeadLetter,     // recipient endpoint was down (in fabric or at routing)
  kAdopted,        // cell adopted the carried grant (epoch outranked)
  kRejectedStale,  // cell bounced the grant off the epoch guard
  kRegrant,        // coordinator anti-entropy re-grant (same corr, same epoch)
};

/// Short stable names ("sent", "adopted", ...) used by every exporter.
const char* ctrl_span_name(CtrlSpanEvent event);

/// One fixed-size control-plane span record. POD on purpose: recording is a
/// struct copy into a preallocated ring, never an allocation, and never an
/// RNG draw — span tracing is purely observational and cannot shift the
/// fabric's deterministic substreams.
struct CtrlSpan {
  double time = 0.0;        // sim seconds
  std::uint64_t corr = 0;   // correlation id minted at the originating send
  std::uint64_t epoch = 0;  // epoch carried by the message
  double price = 0.0;       // mean payload value (slice / demand share)
  std::int32_t from = -1;   // fabric endpoint ids (0 = coordinator)
  std::int32_t to = -1;
  CtrlSpanEvent event = CtrlSpanEvent::kSent;
  std::uint8_t msg = 0;  // CtrlMsgType of the carrying message

  bool operator==(const CtrlSpan& other) const {
    return time == other.time && corr == other.corr &&
           epoch == other.epoch && price == other.price &&
           from == other.from && to == other.to && event == other.event &&
           msg == other.msg;
  }
};

/// Bounded span recorder, ring-buffered exactly like TaskTracer: disabled
/// (capacity 0) every record() is a single predictable branch; enabled, it
/// writes into a preallocated ring and overwrites oldest-first once full.
class CtrlTracer {
 public:
  CtrlTracer() = default;  // disabled
  explicit CtrlTracer(std::size_t capacity) { reset(capacity); }

  /// Re-arms the tracer with a new capacity (0 disables); clears all spans.
  void reset(std::size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  /// Spans overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t recorded() const { return size_ + dropped_; }

  void record(const CtrlSpan& span) {
    if (capacity_ == 0) return;  // disabled: the whole hot path is this branch
    ring_[head_] = span;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    if (size_ < capacity_) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  /// Spans in recording order, oldest first (allocates; not for hot paths).
  std::vector<CtrlSpan> snapshot() const;

 private:
  std::vector<CtrlSpan> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The pid control-plane spans render under in Chrome trace JSON — a lane of
/// its own, far above any device id, so one timeline shows task lifecycles
/// per device next to the control-plane message flow.
constexpr std::int64_t kCtrlChromePid = 1 << 20;

/// Chrome trace-event fragments for control-plane spans: instant events on
/// pid=kCtrlChromePid / tid=corr, each carrying corr, epoch, price, from,
/// to, msg type, and span event in args. Returned as a bare event array so
/// callers can splice it next to task events.
Json ctrl_spans_to_chrome_events(const std::vector<CtrlSpan>& spans);

/// One merged Chrome trace document: task lifecycle events and control-plane
/// spans on the shared sim-time clock (µs). droppedEvents / droppedSpans
/// carry the two rings' overwrite counts so truncation is detectable.
Json merged_trace_to_chrome_json(const TaskTracer& tasks,
                                 const CtrlTracer& spans);

/// Flat tabular view (time_s, corr, epoch, price, from, to, msg, event) for
/// CSV export.
Table ctrl_spans_to_table(const std::vector<CtrlSpan>& spans);

/// Per-event counts of a span stream (index by CtrlSpanEvent).
std::vector<std::size_t> ctrl_span_counts(const std::vector<CtrlSpan>& spans);

}  // namespace scalpel
