#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace scalpel {

namespace {

/// Value of the j-th sample (0-indexed) of a histogram under the midpoint
/// convention: the c samples in a bin sit at evenly spaced positions strictly
/// inside it, so the first and last samples of the population land inside
/// their bins rather than on the outer boundaries.
double sample_value(const Histogram& hist, double j) {
  double cumulative = 0.0;
  for (std::size_t i = 0; i < hist.bins(); ++i) {
    const auto c = static_cast<double>(hist.bin_count(i));
    if (c > 0.0 && j < cumulative + c) {
      const double within = ((j - cumulative) + 0.5) / c;
      return hist.bin_low(i) +
             (hist.bin_high(i) - hist.bin_low(i)) * within;
    }
    cumulative += c;
  }
  return hist.bin_high(hist.bins() - 1);
}

}  // namespace

double HistogramMetric::quantile(double q) const {
  SCALPEL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::size_t n = hist_.total();
  if (n == 0) return 0.0;
  // Continuous rank over the n samples (0-indexed), interpolating between
  // the two straddling samples. q=0 and q=1 resolve to the first/last
  // sample's in-bin midpoint position — previously they snapped to the raw
  // bin boundary, biasing extreme percentiles outward by half a bin step.
  const double rank = q * static_cast<double>(n - 1);
  const double lo_j = std::floor(rank);
  const double hi_j = std::ceil(rank);
  const double lo_v = sample_value(hist_, lo_j);
  if (hi_j == lo_j) return lo_v;
  const double hi_v = sample_value(hist_, hi_j);
  return lo_v + (hi_v - lo_v) * (rank - lo_j);
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, HistogramMetric(lo, hi, bins)).first;
  }
  return it->second;
}

Json MetricsRegistry::to_json() const {
  Json doc = Json::object();
  Json& counters = doc.set("counters", Json::object());
  for (const auto& [name, c] : counters_) {
    counters.set(name, Json::number(static_cast<double>(c.value())));
  }
  Json& gauges = doc.set("gauges", Json::object());
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, Json::number(g.value()));
  }
  Json& hists = doc.set("histograms", Json::object());
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry.set("count", Json::number(static_cast<double>(h.total())));
    entry.set("p50", Json::number(h.p50()));
    entry.set("p95", Json::number(h.p95()));
    entry.set("p99", Json::number(h.p99()));
    Json bins = Json::array();
    for (std::size_t i = 0; i < h.histogram().bins(); ++i) {
      Json bin = Json::array();
      bin.push_back(Json::number(h.histogram().bin_low(i)));
      bin.push_back(Json::number(h.histogram().bin_high(i)));
      bin.push_back(
          Json::number(static_cast<double>(h.histogram().bin_count(i))));
      bins.push_back(std::move(bin));
    }
    entry.set("bins", std::move(bins));
    hists.set(name, std::move(entry));
  }
  return doc;
}

Table MetricsRegistry::to_table() const {
  Table t({"metric", "kind", "value"});
  for (const auto& [name, c] : counters_) {
    t.add_row({name, "counter",
               Table::num(static_cast<std::int64_t>(c.value()))});
  }
  for (const auto& [name, g] : gauges_) {
    t.add_row({name, "gauge", Table::num(g.value(), 6)});
  }
  for (const auto& [name, h] : histograms_) {
    t.add_row({name + ".count", "histogram",
               Table::num(static_cast<std::int64_t>(h.total()))});
    t.add_row({name + ".p50", "histogram", Table::num(h.p50(), 6)});
    t.add_row({name + ".p95", "histogram", Table::num(h.p95(), 6)});
    t.add_row({name + ".p99", "histogram", Table::num(h.p99(), 6)});
  }
  return t;
}

}  // namespace scalpel
