#include "obs/span.hpp"

#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace scalpel {

namespace {

constexpr std::size_t kNumSpanEvents =
    static_cast<std::size_t>(CtrlSpanEvent::kRegrant) + 1;

/// obs sits below src/ctrl, so the message-type names are mirrored here by
/// value (CtrlMsgType: 0 = load report, 1 = slice grant, 2 = heartbeat)
/// instead of including ctrl/message.hpp. The span tests pin the mapping.
const char* ctrl_msg_type_name(std::uint8_t msg) {
  switch (msg) {
    case 0: return "load_report";
    case 1: return "slice_grant";
    case 2: return "heartbeat";
    default: return "unknown";
  }
}

}  // namespace

const char* ctrl_span_name(CtrlSpanEvent event) {
  switch (event) {
    case CtrlSpanEvent::kSent: return "sent";
    case CtrlSpanEvent::kDelayed: return "delayed";
    case CtrlSpanEvent::kDropped: return "dropped";
    case CtrlSpanEvent::kDelivered: return "delivered";
    case CtrlSpanEvent::kDeadLetter: return "dead_letter";
    case CtrlSpanEvent::kAdopted: return "adopted";
    case CtrlSpanEvent::kRejectedStale: return "rejected_stale";
    case CtrlSpanEvent::kRegrant: return "regrant";
  }
  return "unknown";
}

void CtrlTracer::reset(std::size_t capacity) {
  capacity_ = capacity;
  ring_.assign(capacity, CtrlSpan{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<CtrlSpan> CtrlTracer::snapshot() const {
  std::vector<CtrlSpan> out;
  out.reserve(size_);
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

Json ctrl_spans_to_chrome_events(const std::vector<CtrlSpan>& spans) {
  Json arr = Json::array();
  for (const auto& sp : spans) {
    Json e = Json::object();
    e.set("name", Json::string(std::string(ctrl_msg_type_name(sp.msg)) + ":" +
                               ctrl_span_name(sp.event)));
    e.set("ph", Json::string("i"));
    e.set("s", Json::string("t"));  // thread-scoped instant
    e.set("ts", Json::number(sp.time * 1e6));  // shared µs clock
    e.set("pid", Json::number(static_cast<double>(kCtrlChromePid)));
    e.set("tid", Json::number(static_cast<double>(sp.corr)));
    Json args = Json::object();
    args.set("span", Json::string(ctrl_span_name(sp.event)));
    args.set("msg", Json::string(ctrl_msg_type_name(sp.msg)));
    args.set("corr", Json::number(static_cast<double>(sp.corr)));
    args.set("epoch", Json::number(static_cast<double>(sp.epoch)));
    args.set("price", Json::number(sp.price));
    args.set("from", Json::number(static_cast<double>(sp.from)));
    args.set("to", Json::number(static_cast<double>(sp.to)));
    e.set("args", std::move(args));
    arr.push_back(std::move(e));
  }
  return arr;
}

Json merged_trace_to_chrome_json(const TaskTracer& tasks,
                                 const CtrlTracer& spans) {
  const Json task_doc = trace_to_chrome_json(tasks.snapshot());
  const Json& task_events = task_doc.at("traceEvents");
  Json doc = Json::object();
  doc.set("displayTimeUnit", Json::string("ms"));
  Json& arr = doc.set("traceEvents", Json::array());
  for (std::size_t i = 0; i < task_events.size(); ++i) {
    arr.push_back(task_events.at(i));
  }
  const Json ctrl = ctrl_spans_to_chrome_events(spans.snapshot());
  for (std::size_t i = 0; i < ctrl.size(); ++i) {
    arr.push_back(ctrl.at(i));
  }
  doc.set("droppedEvents",
          Json::number(static_cast<double>(tasks.dropped())));
  doc.set("droppedSpans",
          Json::number(static_cast<double>(spans.dropped())));
  return doc;
}

Table ctrl_spans_to_table(const std::vector<CtrlSpan>& spans) {
  Table t({"time_s", "corr", "epoch", "price", "from", "to", "msg", "span"});
  for (const auto& sp : spans) {
    t.add_row({Table::num(sp.time, 6),
               Table::num(static_cast<std::int64_t>(sp.corr)),
               Table::num(static_cast<std::int64_t>(sp.epoch)),
               Table::num(sp.price, 6),
               Table::num(static_cast<std::int64_t>(sp.from)),
               Table::num(static_cast<std::int64_t>(sp.to)),
               ctrl_msg_type_name(sp.msg), ctrl_span_name(sp.event)});
  }
  return t;
}

std::vector<std::size_t> ctrl_span_counts(const std::vector<CtrlSpan>& spans) {
  std::vector<std::size_t> counts(kNumSpanEvents, 0);
  for (const auto& sp : spans) {
    const auto idx = static_cast<std::size_t>(sp.event);
    SCALPEL_REQUIRE(idx < counts.size(), "unknown ctrl span event");
    ++counts[idx];
  }
  return counts;
}

}  // namespace scalpel
