#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/stats.hpp"

namespace scalpel {
class Json;
class Table;

/// Monotonic event counter. Obtain once from the registry, then inc() on the
/// hot path — no name lookup per event.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, availability, rung, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bin latency histogram with quantile estimates. Backed by the
/// bounded stats::Histogram so recording is O(1) and allocation-free;
/// quantiles interpolate linearly inside the hit bin (the underflow/overflow
/// edge bins clamp to the configured range, so choose [lo, hi) to cover the
/// latencies of interest).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : hist_(lo, hi, bins) {}

  void add(double x) { hist_.add(x); }
  const Histogram& histogram() const { return hist_; }
  std::size_t total() const { return hist_.total(); }
  /// Approximate quantile; q in [0, 1]. Returns 0 with no samples.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  Histogram hist_;
};

/// Name-keyed registry the simulator, admission gate, and fault machinery
/// publish into. Names are dot-separated, lowercase, unit-suffixed where a
/// unit applies (e.g. "sim.task.latency_seconds"); see README
/// "Observability" for the scheme. Lookup happens once at wiring time (the
/// returned references stay valid for the registry's lifetime — std::map
/// never moves its nodes); export iterates in sorted name order so emitted
/// documents are deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramMetric>& histograms() const {
    return histograms_;
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// p50, p95, p99, bins: [[lo, hi, count], ...]}}} with sorted keys.
  Json to_json() const;
  /// Flat (metric, kind, value) rows for CSV/console export; histograms
  /// expand to .p50/.p95/.p99/.count rows.
  Table to_table() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace scalpel
