#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

namespace scalpel {
class Json;
class Table;

/// Why a controller changed (or confirmed) its deployment.
enum class AuditCause {
  kInitialSolve = 0,  // first decision() access
  kResolve,           // bandwidth drift crossed the hysteresis band
  kFailover,          // server/link liveness flipped
  kRungDown,          // degradation ladder stepped down (cheaper surgery)
  kRungUp,            // ladder stepped back up on recovery
  kThrottleOn,        // bottom-rung admission gate engaged from open
  kThrottleAdjust,    // gate retuned while already engaged
  kThrottleOff,       // gate released
  kTelemetryRejected, // sanitizer held/rejected part of an observation
  kSolverTimeout,     // re-solve exceeded its budget or threw
  kPlanRejected,      // validate_plan refused a solver/fallback output
  kFallbackApplied,   // fallback chain adopted a survival plan
  kCoordinatorLost,   // heartbeat timeout: cell lost the global coordinator
  kLocalAutonomy,     // cell adopted a validated local plan while partitioned
  kRejoin,            // first coordinator message after a loss
  kStalePrice,        // grant/price aged past freshness; discount applied
  kEpochRejected,     // plan/grant carried an epoch <= last adopted
  kSloBurnStart,      // SloMonitor: every burn window crossed its threshold
  kSloBurnStop,       // SloMonitor: burn receded below the alerting point
};

const char* audit_cause_name(AuditCause cause);

/// One controller decision, with enough before/after context to attribute a
/// simulated outcome (an F16 failover dip, an F17 rung walk) to the exact
/// observation that caused it. Plan summaries are strings on purpose: the
/// log is a flight recorder, not a decision store, and keeping it decoupled
/// from core's Decision lets obs sit below every other library.
struct AuditRecord {
  double time = 0.0;  // sim seconds fed via DecisionAuditLog::advance_time
  AuditCause cause = AuditCause::kInitialSolve;
  std::string detail;        // trigger, e.g. "cell 2 bandwidth -41%"
  std::string plan_before;   // summary, e.g. "joint rung=0 offload=3/4"
  std::string plan_after;
  std::size_t rung_before = 0;
  std::size_t rung_after = 0;
  double accuracy_before = 0.0;  // predicted, rate-weighted
  double accuracy_after = 0.0;
  double admit_before = 1.0;  // mean admission fraction (1 = gate open)
  double admit_after = 1.0;
};

/// Append-only, bounded decision log. Controllers stamp records with the
/// last advance_time() value, so a simulator callback wires the clock with
/// one call per tick; records beyond `max_records` evict the oldest.
class DecisionAuditLog {
 public:
  explicit DecisionAuditLog(std::size_t max_records = 4096)
      : max_records_(max_records) {}

  void advance_time(double now) { now_ = now; }
  double time() const { return now_; }

  /// Stamps `record.time` with the current clock and appends.
  void append(AuditRecord record);

  const std::deque<AuditRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  /// Records evicted because the log was full.
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Array of record objects (sorted field order) for machine consumption.
  Json to_json() const;
  /// Console/CSV view: time, cause, detail, rung, accuracy, admit columns.
  Table to_table() const;

 private:
  std::deque<AuditRecord> records_;
  std::size_t max_records_;
  std::uint64_t dropped_ = 0;
  double now_ = 0.0;
};

}  // namespace scalpel
