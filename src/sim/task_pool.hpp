#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "surgery/plan.hpp"
#include "util/assert.hpp"

namespace scalpel {

/// Index of a pooled in-flight task; stable for the task's whole lifetime
/// and recycled (LIFO) after its terminal event.
using TaskIndex = std::uint32_t;
constexpr TaskIndex kNoTask = 0xffffffffu;

/// Structure-of-arrays pool of in-flight task records. Replaces the former
/// per-arrival std::make_shared<Task>: acquiring a slot is a free-list pop
/// (amortized zero allocations in steady state), releasing recycles it, and
/// hot fields live in contiguous parallel arrays instead of scattered
/// control blocks — the same preallocate-and-reuse idiom the trace ring in
/// src/obs/trace.cpp established for the observability path.
///
/// All arrays are indexed by TaskIndex and grow in lockstep. A slot's fields
/// are only meaningful between acquire() and release(); the simulator owns
/// the discipline that no scheduled event outlives its task (terminal events
/// release, and nothing re-references a released index).
class TaskPool {
 public:
  std::vector<std::uint64_t> id;       // per-run trace id
  std::vector<double> arrival;         // sim seconds
  std::vector<double> difficulty;      // sampled once; reused by re-executions
  std::vector<double> rtt;
  std::vector<double> bw_weight;
  std::vector<double> cpu_weight;
  std::vector<double> device_done;     // phase timestamps (energy accounting)
  std::vector<double> upload_done;
  std::vector<TaskPhases> phases;
  std::vector<std::int32_t> device;
  std::vector<std::int32_t> server;    // -1 = device-only
  std::vector<std::uint16_t> retries;  // re-dispatch attempts so far
  std::vector<std::uint8_t> flags;

  enum : std::uint8_t {
    kCounted = 1,  // arrived after warmup -> contributes to metrics
    kFaulted = 2,  // lost a server/link at least once
  };

  bool counted(TaskIndex t) const { return (flags[t] & kCounted) != 0; }
  bool faulted(TaskIndex t) const { return (flags[t] & kFaulted) != 0; }

  TaskIndex acquire() {
    TaskIndex t;
    if (!free_.empty()) {
      t = free_.back();
      free_.pop_back();
    } else {
      t = static_cast<TaskIndex>(id.size());
      SCALPEL_REQUIRE(t != kNoTask, "task pool exhausted the index space");
      grow();
    }
    // Recycled slots carry the previous occupant's values; reset everything
    // the arrival path does not unconditionally overwrite.
    device_done[t] = 0.0;
    upload_done[t] = 0.0;
    retries[t] = 0;
    flags[t] = 0;
    ++live_;
    return t;
  }

  void release(TaskIndex t) {
    SCALPEL_REQUIRE(live_ > 0, "task pool release without a live task");
    free_.push_back(t);
    --live_;
  }

  /// Live (acquired, unreleased) tasks.
  std::size_t live() const { return live_; }
  /// Slots ever created (live + free).
  std::size_t capacity() const { return id.size(); }

  void reserve(std::size_t n) {
    id.reserve(n);
    arrival.reserve(n);
    difficulty.reserve(n);
    rtt.reserve(n);
    bw_weight.reserve(n);
    cpu_weight.reserve(n);
    device_done.reserve(n);
    upload_done.reserve(n);
    phases.reserve(n);
    device.reserve(n);
    server.reserve(n);
    retries.reserve(n);
    flags.reserve(n);
  }

 private:
  void grow() {
    id.emplace_back();
    arrival.emplace_back();
    difficulty.emplace_back();
    rtt.emplace_back();
    bw_weight.emplace_back();
    cpu_weight.emplace_back();
    device_done.emplace_back();
    upload_done.emplace_back();
    phases.emplace_back();
    device.emplace_back(-1);
    server.emplace_back(-1);
    retries.emplace_back();
    flags.emplace_back();
  }

  std::vector<TaskIndex> free_;
  std::size_t live_ = 0;
};

/// FIFO of task indices backed by one flat vector with a head cursor —
/// push_back/pop_front are amortized O(1) with no per-node allocation
/// (std::deque allocates a chunk per block). erase() is O(n) but only runs
/// on the cold shed/fault paths.
class IndexDeque {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  void push_back(TaskIndex t) { buf_.push_back(t); }

  TaskIndex front() const {
    SCALPEL_REQUIRE(!empty(), "front of empty IndexDeque");
    return buf_[head_];
  }

  TaskIndex pop_front() {
    SCALPEL_REQUIRE(!empty(), "pop from empty IndexDeque");
    const TaskIndex t = buf_[head_++];
    // Compact once the dead prefix dominates, keeping memory bounded by the
    // high-water live size.
    if (head_ >= 64 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return t;
  }

  /// Removes the element at live position `pos` (0 = front), preserving
  /// FIFO order of the rest. Cold path (shedding / fault victims).
  void erase_at(std::size_t pos) {
    SCALPEL_REQUIRE(pos < size(), "IndexDeque erase out of range");
    buf_.erase(buf_.begin() + static_cast<std::ptrdiff_t>(head_ + pos));
  }

  TaskIndex at(std::size_t pos) const {
    SCALPEL_REQUIRE(pos < size(), "IndexDeque index out of range");
    return buf_[head_ + pos];
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  std::vector<TaskIndex> buf_;
  std::size_t head_ = 0;
};

}  // namespace scalpel
