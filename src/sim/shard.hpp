#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "sim/compiled_device.hpp"
#include "sim/epoch.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace scalpel {

struct ShardCore;  // per-shard event engine, private to shard.cpp

/// Deterministic partition of a topology into simulation shards. Cells are
/// split into contiguous blocks (devices follow their cell, and so does the
/// cell's uplink); each server joins the shard of its nearest cell by path
/// RTT (ties to the lowest cell id). Any (cell, server) pair with zero path
/// RTT is merged into one shard — conservative parallel execution needs a
/// strictly positive minimum cross-shard delay.
///
/// `lookahead` is that minimum: the smallest path RTT over all cross-shard
/// (cell, server) pairs, +inf when no pair crosses. It depends only on the
/// topology, never on the Decision, so it stays valid under online replans
/// that retarget devices to any server.
struct ShardPlan {
  std::vector<std::int32_t> cell_shard;    // by CellId
  std::vector<std::int32_t> server_shard;  // by ServerId
  std::vector<std::int32_t> device_shard;  // by DeviceId (= its cell's shard)
  std::size_t num_shards = 1;              // after zero-RTT merging
  double lookahead = 0.0;                  // seconds; +inf if nothing crosses

  /// Pure function of (topology, requested): identical for any thread count.
  static ShardPlan build(const ClusterTopology& topo, std::size_t requested);
};

struct ShardOptions {
  /// Requested shard count; clamped to the cell count and reduced by
  /// zero-RTT merging (see ShardPlan). 1 degenerates to a single serial
  /// event loop with barrier-split bookkeeping.
  std::size_t shards = 2;
  /// Worker threads the epochs fan out on; 0 = one per hardware core,
  /// 1 = run shards sequentially on the calling thread (still the same
  /// results — the determinism bar is bit-identity across both knobs).
  std::size_t threads = 1;
};

/// Cell-sharded conservative-lookahead twin of Simulator for metro-scale
/// topologies: each shard owns a contiguous block of cells (devices + cell
/// uplinks) plus a server partition, and runs its own event loop over its
/// own EventQueue/TaskPool/tracer between epoch barriers. Barriers sit on
/// every scripted global event (fault transitions, bandwidth change-points,
/// controller and series ticks) and at most `lookahead` apart; a serial
/// reduction phase at each barrier delivers cross-shard task envelopes,
/// applies faults/bandwidth, and runs the controller — in the single loop's
/// exact tie-break order.
///
/// Determinism bar (enforced by tests/sim/shard_equivalence_test.cpp): for a
/// fixed seed, SimMetrics, the metrics registry, and the reconciled trace
/// are bit-identical to the single-loop Simulator for ANY shard count and
/// ANY thread count. Order-sensitive floating-point accumulation is made
/// exact by logging per-shard MetricRecords and replaying the
/// deterministically merged log through the single loop's arithmetic.
/// The one documented exception: scripted event times exactly colliding
/// with continuous-time task events (a measure-zero coincidence) may resolve
/// in a different order than the single loop's seq tiebreak.
class ShardedSimulator {
 public:
  ShardedSimulator(const ProblemInstance& instance, Decision decision,
                   Simulator::Options options, ShardOptions shard_options);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  void set_cell_trace(CellId cell, BandwidthTrace trace);
  void set_controller(Simulator::Controller controller);
  void set_controller(Simulator::RichController controller);
  void set_controller(Simulator::ObservingController controller);
  void set_admission(std::vector<double> fraction);

  /// Runs to the horizon. Single-use, like Simulator.
  SimMetrics run();

  /// Merged per-task lifecycle trace of the finished run in the canonical
  /// reconciled order (see reconcile_trace); empty unless
  /// Options::trace_capacity > 0. Compare against
  /// reconcile_trace(single_loop.trace().snapshot()).
  std::vector<TraceEvent> trace_events() const;

  /// Merged registry: per-shard counters summed by name plus the replayed
  /// latency histogram and end-of-run gauges — name-for-name and
  /// value-for-value identical to the single-loop Simulator's registry.
  const MetricsRegistry& registry() const { return registry_; }

  const ShardPlan& plan() const { return plan_; }
  /// Epoch barriers the run synchronized on (available after run()).
  std::size_t barriers_run() const { return barriers_run_; }

 private:
  friend struct ShardCore;

  void apply_decision(const Decision& decision);
  void seed_initial_events();
  std::vector<EpochBarrier> build_agenda() const;
  void run_epochs(ThreadPool* pool, double barrier);
  void serial_phase(const EpochBarrier& barrier);
  void deliver_envelopes();
  void on_fault_event(const FaultEvent& ev, double bt);
  void on_server_down(ServerId s, double bt);
  void on_link_down(CellId c, double bt);
  /// handle_fault with cross-shard awareness: migrates the task row to its
  /// device's home shard first (fault policies re-enter the device stage),
  /// then runs the ordinary policy logic there. Serial-phase only.
  void serial_handle_fault(ShardCore& owner, TaskIndex task);
  TaskIndex migrate_task(ShardCore& from, ShardCore& to, TaskIndex task);
  /// Global fluid slot -> resource; slots are [0, #cells) cell uplinks, then
  /// servers — the same layout kFluidWake events carry in `a`.
  FluidResource* fluid_at(std::size_t slot);
  void controller_tick(double bt);
  /// Serial-phase twin of Simulator::obs_tick — runs last at an obs barrier.
  void obs_sample(double bt);
  void replay_metric_records(const std::vector<MetricRecord>& merged);
  void finalize_metrics();

  const ProblemInstance* instance_;
  Decision decision_;
  Simulator::Options options_;
  ShardOptions shard_options_;
  ShardPlan plan_;

  // --- shared world state: written only in serial phases or by the owning
  // shard on disjoint per-device/per-resource slots, read freely mid-epoch.
  std::vector<CompiledDevice> devices_;           // by DeviceId
  std::vector<Rng> rngs_;                         // by DeviceId
  std::vector<Rng> admit_rngs_;                   // by DeviceId
  std::vector<std::unique_ptr<FluidResource>> cell_links_;  // by CellId
  std::vector<std::unique_ptr<FluidResource>> servers_;     // by ServerId
  std::vector<std::optional<BandwidthTrace>> traces_;
  Simulator::ObservingController controller_;
  /// Telemetry impairment model; same construction as the single loop
  /// (pure function of options + seed), sampled only in the serial phase's
  /// controller tick, so readings are thread- and shard-count-invariant.
  std::unique_ptr<TelemetryChannel> channel_;
  std::vector<double> admit_fraction_;
  std::vector<std::size_t> arrivals_since_tick_;
  double last_controller_tick_ = 0.0;
  std::vector<bool> server_up_;
  std::vector<bool> link_up_;
  std::size_t down_servers_ = 0;
  std::size_t down_links_ = 0;
  PlanModelCache cache_;

  std::vector<std::unique_ptr<ShardCore>> cores_;

  // --- serial-phase accounting (single-threaded by construction).
  std::vector<MetricRecord> serial_log_;
  TaskTracer serial_tracer_;
  std::uint64_t serial_seq_ = 0;
  std::size_t serial_events_ = 0;      // scripted dispatches (events_processed)
  double serial_last_time_ = 0.0;      // last barrier that dispatched anything
  std::size_t barriers_run_ = 0;

  SimMetrics metrics_;
  MetricsRegistry registry_;
  Counter* ctr_arrived_ = nullptr;
  Counter* ctr_completed_ = nullptr;
  Counter* ctr_failed_ = nullptr;
  Counter* ctr_shed_ = nullptr;
  Counter* ctr_expired_ = nullptr;
  Counter* ctr_retry_ = nullptr;
  Counter* ctr_resteer_ = nullptr;
  Counter* ctr_gate_refused_ = nullptr;
  Counter* ctr_server_down_ = nullptr;
  Counter* ctr_link_down_ = nullptr;
  HistogramMetric* hist_latency_ = nullptr;
};

}  // namespace scalpel
