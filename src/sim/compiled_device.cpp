#include "sim/compiled_device.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace scalpel {
namespace {

void append_raw(std::string& key, const void* p, std::size_t n) {
  key.append(static_cast<const char*>(p), n);
}

void append_f64(std::string& key, double v) { append_raw(key, &v, sizeof v); }

void append_u64(std::string& key, std::uint64_t v) {
  append_raw(key, &v, sizeof v);
}

void append_profile(std::string& key, const ComputeProfile& p) {
  key.append(p.name);
  key.push_back('\0');
  append_f64(key, p.peak_flops);
  append_f64(key, p.mem_bw);
  append_f64(key, p.layer_overhead);
  for (const auto& [kind, eff] : p.efficiency) {
    append_u64(key, static_cast<std::uint64_t>(kind));
    append_f64(key, eff);
  }
}

/// Serializes every value PlanModel construction reads. Two equal keys imply
/// bitwise-identical compiled models, so sharing one instance is exact.
std::string cache_key(const ModelBundle& bundle, const SurgeryPlan& plan,
                      const ComputeProfile& device,
                      const ComputeProfile& server, const LinkSpec& link,
                      const DifficultyModel& difficulty) {
  std::string key;
  key.reserve(160);
  // The bundle (graph + candidates + accuracy model) is shared per model
  // name and outlives every PlanModel, so its address is its identity.
  append_u64(key, reinterpret_cast<std::uintptr_t>(&bundle));
  append_u64(key, static_cast<std::uint64_t>(plan.partition_after));
  append_u64(key, (plan.device_only ? 1u : 0u) |
                      (plan.quantize_upload ? 2u : 0u));
  append_u64(key, plan.policy.exits.size());
  for (const auto& e : plan.policy.exits) {
    append_u64(key, e.candidate);
    append_f64(key, e.theta);
  }
  append_profile(key, device);
  append_profile(key, server);
  append_f64(key, link.bandwidth);
  append_f64(key, link.rtt);
  append_f64(key, difficulty.a());
  append_f64(key, difficulty.b());
  return key;
}

}  // namespace

std::shared_ptr<const PlanModel> PlanModelCache::get_or_compile(
    const ModelBundle& bundle, const SurgeryPlan& plan,
    const ComputeProfile& device, const ComputeProfile& server,
    const LinkSpec& link, const DifficultyModel& difficulty) {
  const std::string key =
      cache_key(bundle, plan, device, server, link, difficulty);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto model = std::make_shared<const PlanModel>(
      bundle.graph, bundle.candidates, plan, bundle.accuracy, device, server,
      link, difficulty);
  cache_.emplace(std::move(key), model);
  return model;
}

void compile_device_decision(const ProblemInstance& instance, DeviceId dev,
                             const DeviceDecision& dd, CompiledDevice& cd,
                             PlanModelCache* cache) {
  const auto& device = instance.topology().device(dev);
  const auto& bundle = instance.bundle_for(dev);
  cd.device_only = dd.plan.device_only;
  LinkSpec link;
  if (dd.plan.device_only) {
    link.bandwidth = 1.0;
    cd.server = -1;
    cd.share = 0.0;
    cd.bandwidth = 0.0;
    cd.rtt = 0.0;
  } else {
    SCALPEL_REQUIRE(dd.server >= 0, "offloading decision needs a server");
    SCALPEL_REQUIRE(dd.bandwidth > 0.0 && dd.compute_share > 0.0,
                    "offloading decision needs positive grants");
    cd.server = dd.server;
    cd.share = dd.compute_share;
    cd.bandwidth = dd.bandwidth;
    cd.rtt = instance.topology().path_rtt(dev, dd.server);
    link.bandwidth = dd.bandwidth;
    link.rtt = cd.rtt;
  }
  const ComputeProfile& server_profile =
      dd.plan.device_only ? device.compute
                          : instance.topology().server(dd.server).compute;
  if (cache != nullptr) {
    cd.plan = cache->get_or_compile(bundle, dd.plan, device.compute,
                                    server_profile, link, device.difficulty);
  } else {
    cd.plan = std::make_shared<const PlanModel>(
        bundle.graph, bundle.candidates, dd.plan, bundle.accuracy,
        device.compute, server_profile, link, device.difficulty);
  }
  if (dd.plan.device_only) {
    cd.fallback.reset();
  } else {
    // Same surgery with the cut disabled: what the device runs when a fault
    // strands its offloaded stream.
    SurgeryPlan local = dd.plan;
    local.device_only = true;
    LinkSpec no_link;
    no_link.bandwidth = 1.0;
    if (cache != nullptr) {
      cd.fallback =
          cache->get_or_compile(bundle, local, device.compute, device.compute,
                                no_link, device.difficulty);
    } else {
      cd.fallback = std::make_shared<const PlanModel>(
          bundle.graph, bundle.candidates, local, bundle.accuracy,
          device.compute, device.compute, no_link, device.difficulty);
    }
  }
}

}  // namespace scalpel
