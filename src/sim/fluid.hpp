#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace scalpel {

/// Work-conserving generalized-processor-sharing resource in fluid
/// approximation: active jobs split the capacity in proportion to their
/// weights, so an idle grantee's capacity flows to the busy ones (this is
/// what the analytical model cannot see and the DES adds). Used for both
/// cell uplinks (demand = bytes) and edge servers (demand = busy-seconds).
class FluidResource {
 public:
  explicit FluidResource(double capacity);

  /// Change capacity at `now` (bandwidth traces); progress is settled first.
  void set_capacity(double now, double capacity);
  double capacity() const { return capacity_; }

  /// Add a job; `done(now)` fires from complete_due when it finishes.
  void add_job(double now, double demand, double weight,
               std::function<void(double)> done);

  bool idle() const { return jobs_.empty(); }
  std::size_t active_jobs() const { return jobs_.size(); }

  /// Absolute time of the earliest completion; +inf when idle.
  double next_completion() const;

  /// Mutation counter; the simulator tags scheduled wake-ups with it and
  /// drops stale ones.
  std::uint64_t epoch() const { return epoch_; }

  /// Settle progress to `now` and fire every job due (remaining ~ 0).
  void complete_due(double now);

  /// Settle progress to `now` and drop every active job without firing its
  /// completion (fault injection: the resource crashed; callers fail or
  /// resteer the owning tasks themselves). Bumps the epoch so armed
  /// wake-ups go stale.
  void clear(double now);

  /// Total time the resource was non-idle (utilization accounting).
  double busy_time(double now) const;

 private:
  void advance(double now);

  struct Job {
    double remaining = 0.0;
    double weight = 0.0;
    std::function<void(double)> done;
  };

  double capacity_;
  double last_update_ = 0.0;
  double weight_sum_ = 0.0;
  std::vector<Job> jobs_;
  std::uint64_t epoch_ = 0;
  double busy_accum_ = 0.0;
};

}  // namespace scalpel
