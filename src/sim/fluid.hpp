#pragma once

#include <cstdint>
#include <vector>

namespace scalpel {

/// Receiver of fluid-job completions. complete_due() hands back the opaque
/// per-job tag instead of invoking a stored std::function — job records stay
/// POD, add_job never allocates in steady state, and the dispatch is one
/// virtual call on the (single) sink rather than a type-erased callable per
/// job. The simulator encodes (pipeline stage, task index) into the tag.
class FluidSink {
 public:
  virtual void fluid_job_done(std::uint64_t tag, double now) = 0;

 protected:
  // Virtual so concrete sinks (which are polymorphic via fluid_job_done)
  // satisfy -Wnon-virtual-dtor; still protected — sinks are never owned or
  // deleted through this interface.
  virtual ~FluidSink() = default;
};

/// Work-conserving generalized-processor-sharing resource in fluid
/// approximation: active jobs split the capacity in proportion to their
/// weights, so an idle grantee's capacity flows to the busy ones (this is
/// what the analytical model cannot see and the DES adds). Used for both
/// cell uplinks (demand = bytes) and edge servers (demand = busy-seconds).
class FluidResource {
 public:
  explicit FluidResource(double capacity);

  /// Change capacity at `now` (bandwidth traces); progress is settled first.
  void set_capacity(double now, double capacity);
  double capacity() const { return capacity_; }

  /// Add a job; its `tag` is handed to the sink when it finishes.
  void add_job(double now, double demand, double weight, std::uint64_t tag);

  bool idle() const { return jobs_.empty(); }
  std::size_t active_jobs() const { return jobs_.size(); }

  /// Absolute time of the earliest completion; +inf when idle.
  double next_completion() const;

  /// Mutation counter; the simulator tags scheduled wake-ups with it and
  /// drops stale ones.
  std::uint64_t epoch() const { return epoch_; }

  /// Settle progress to `now` and fire sink.fluid_job_done for every job due
  /// (remaining ~ 0), in add order. The sink may add new jobs to this
  /// resource from inside the callback.
  void complete_due(double now, FluidSink& sink);

  /// Settle progress to `now` and drop every active job without firing its
  /// completion (fault injection: the resource crashed; callers fail or
  /// resteer the owning tasks themselves). Bumps the epoch so armed
  /// wake-ups go stale.
  void clear(double now);

  /// Total time the resource was non-idle (utilization accounting).
  double busy_time(double now) const;

 private:
  void advance(double now);

  struct Job {
    double remaining = 0.0;
    double weight = 0.0;
    std::uint64_t tag = 0;
  };

  double capacity_;
  double last_update_ = 0.0;
  double weight_sum_ = 0.0;
  std::vector<Job> jobs_;
  std::vector<std::uint64_t> due_scratch_;  // reused by complete_due
  std::uint64_t epoch_ = 0;
  double busy_accum_ = 0.0;
};

}  // namespace scalpel
