#include "sim/epoch.hpp"

#include <cmath>
#include <cstddef>
#include <map>

#include "util/assert.hpp"

namespace scalpel {

std::vector<MetricRecord> merge_metric_records(
    const std::vector<const std::vector<MetricRecord>*>& logs) {
  std::size_t total = 0;
  for (const auto* log : logs) total += log->size();
  std::vector<MetricRecord> merged;
  merged.reserve(total);
  // Linear k-way merge: the shard count is small (<= a few dozen), so a
  // cursor scan beats heap bookkeeping, and each input is already sorted
  // (shards append in processing order; the serial log in serial_seq order).
  std::vector<std::size_t> cursor(logs.size(), 0);
  while (merged.size() < total) {
    std::size_t best = logs.size();
    for (std::size_t i = 0; i < logs.size(); ++i) {
      if (cursor[i] >= logs[i]->size()) continue;
      if (best == logs.size() ||
          metric_record_before((*logs[i])[cursor[i]],
                               (*logs[best])[cursor[best]])) {
        best = i;
      }
    }
    SCALPEL_REQUIRE(best < logs.size(), "metric-record merge lost an input");
    merged.push_back((*logs[best])[cursor[best]]);
    ++cursor[best];
  }
  return merged;
}

std::vector<EpochBarrier> build_epoch_barriers(
    double horizon, double lookahead, double control_interval,
    bool has_controller, double series_window,
    const std::vector<double>& fault_times,
    const std::vector<std::vector<double>>& bandwidth_times,
    double obs_interval) {
  SCALPEL_REQUIRE(horizon > 0.0, "horizon must be positive");
  // Exact-keyed map: scripted times are reproduced with the very same
  // floating-point recurrences the single loop's rescheduling produces, so
  // coincident categories (e.g. a fault scheduled on a controller tick)
  // merge into one barrier exactly.
  std::map<double, EpochBarrier> agenda;
  auto at = [&agenda](double t) -> EpochBarrier& {
    EpochBarrier& b = agenda[t];
    b.time = t;
    return b;
  };

  for (std::size_t f = 0; f < fault_times.size(); ++f) {
    if (fault_times[f] > horizon) continue;
    at(fault_times[f]).fault_events.push_back(f);
  }
  // Cells in ascending order, segments in ascending order — the single
  // loop's construction-time seeding order, which is its tiebreak at equal
  // times.
  for (std::size_t c = 0; c < bandwidth_times.size(); ++c) {
    for (std::size_t s = 0; s < bandwidth_times[c].size(); ++s) {
      const double t = bandwidth_times[c][s];
      if (t <= 0.0 || t > horizon) continue;
      at(t).bandwidth_changes.emplace_back(static_cast<std::int32_t>(c), s);
    }
  }
  if (has_controller && control_interval > 0.0) {
    // t_{k+1} = t_k + interval, matching schedule(now_ + interval) where
    // now_ is the exact previous tick time.
    for (double t = control_interval; t <= horizon; t += control_interval) {
      at(t).controller = true;
    }
  }
  if (series_window > 0.0) {
    for (double t = series_window; t <= horizon; t += series_window) {
      at(t).series = true;
    }
  }
  if (obs_interval > 0.0) {
    for (double t = obs_interval; t <= horizon; t += obs_interval) {
      at(t).obs = true;
    }
  }
  at(horizon);  // the final barrier, scripted or not

  std::vector<EpochBarrier> barriers;
  barriers.reserve(agenda.size());
  if (lookahead > 0.0 && std::isfinite(lookahead)) {
    // Conservative-lookahead fill: a cross-shard task travels at least
    // `lookahead` seconds, so with consecutive barriers at most that far
    // apart no envelope can fire inside the epoch that created it.
    double prev = 0.0;
    for (const auto& [t, barrier] : agenda) {
      while (t - prev > lookahead) {
        prev += lookahead;
        if (prev >= t) break;
        EpochBarrier filler;
        filler.time = prev;
        barriers.push_back(std::move(filler));
      }
      barriers.push_back(barrier);
      prev = t;
    }
  } else {
    for (const auto& [t, barrier] : agenda) barriers.push_back(barrier);
  }
  return barriers;
}

}  // namespace scalpel
