#include "sim/fluid.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace scalpel {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Completion slack: fluid progress is exact arithmetic over rationals the
// doubles only approximate; a job within this many demand-units of zero is
// done.
constexpr double kEps = 1e-9;
}  // namespace

FluidResource::FluidResource(double capacity) : capacity_(capacity) {
  SCALPEL_REQUIRE(capacity > 0.0, "fluid capacity must be positive");
}

void FluidResource::advance(double now) {
  SCALPEL_REQUIRE(now >= last_update_ - 1e-12,
                  "fluid resource time went backwards");
  const double dt = std::max(0.0, now - last_update_);
  if (dt > 0.0 && !jobs_.empty() && weight_sum_ > 0.0) {
    busy_accum_ += dt;
    for (auto& j : jobs_) {
      const double rate = capacity_ * j.weight / weight_sum_;
      j.remaining -= rate * dt;
    }
  }
  last_update_ = now;
}

void FluidResource::set_capacity(double now, double capacity) {
  SCALPEL_REQUIRE(capacity > 0.0, "fluid capacity must be positive");
  advance(now);
  capacity_ = capacity;
  ++epoch_;
}

void FluidResource::add_job(double now, double demand, double weight,
                            std::uint64_t tag) {
  SCALPEL_REQUIRE(demand > 0.0, "fluid job demand must be positive");
  SCALPEL_REQUIRE(weight > 0.0, "fluid job weight must be positive");
  advance(now);
  jobs_.push_back(Job{demand, weight, tag});
  weight_sum_ += weight;
  ++epoch_;
}

double FluidResource::next_completion() const {
  if (jobs_.empty() || weight_sum_ <= 0.0) return kInf;
  double soonest = kInf;
  for (const auto& j : jobs_) {
    const double rate = capacity_ * j.weight / weight_sum_;
    soonest = std::min(soonest, std::max(0.0, j.remaining) / rate);
  }
  return last_update_ + soonest;
}

void FluidResource::complete_due(double now, FluidSink& sink) {
  advance(now);
  // Collect first, then fire: the sink may add jobs to this resource from
  // inside the callback. due_scratch_ is a member so the steady state
  // allocates nothing (complete_due never nests on one resource).
  due_scratch_.clear();
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    // Convert the absolute slack to demand units via this job's rate.
    const double rate = capacity_ * it->weight / weight_sum_;
    if (it->remaining <= kEps * std::max(1.0, rate)) {
      due_scratch_.push_back(it->tag);
      weight_sum_ -= it->weight;
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (!due_scratch_.empty()) ++epoch_;
  if (jobs_.empty()) weight_sum_ = 0.0;  // clear accumulated fp drift
  for (std::uint64_t tag : due_scratch_) sink.fluid_job_done(tag, now);
}

void FluidResource::clear(double now) {
  advance(now);
  if (!jobs_.empty()) ++epoch_;
  jobs_.clear();
  weight_sum_ = 0.0;
}

double FluidResource::busy_time(double now) const {
  double extra = 0.0;
  if (!jobs_.empty() && now > last_update_) extra = now - last_update_;
  return busy_accum_ + extra;
}

}  // namespace scalpel
