#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "core/observation.hpp"
#include "edge/dynamics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/compiled_device.hpp"
#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"
#include "sim/task_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace scalpel {
class SloMonitor;
class TimeSeriesRecorder;

/// Per-device and aggregate results of a simulation run.
struct DeviceMetrics {
  Samples latency;                // seconds, post-warmup completions
  std::size_t arrived = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;         // dropped by the fault policy
  std::size_t shed = 0;           // dropped by the overload policy (full
                                  // queue or admission gate), post-warmup
  std::size_t expired = 0;        // dropped because the deadline was provably
                                  // unreachable (ShedExpired), post-warmup
  std::size_t resteered = 0;      // re-executed on-device after a fault
  std::size_t retries = 0;        // re-dispatch attempts after a fault
  std::size_t deadline_met = 0;   // among completed with a deadline
  /// Deadline-bearing tasks that completed, failed, or were shed/expired —
  /// a dropped task is a miss, so shedding cannot inflate satisfaction.
  std::size_t deadline_total = 0;
  double accuracy_sum = 0.0;      // sum of per-task correctness probability
  double energy_sum = 0.0;        // joules across completed tasks
  std::size_t offloaded = 0;
  std::vector<std::size_t> exit_histogram;  // index 0 = final exit, then exits
};

/// Windowed time series of system state (for transient plots and
/// Little's-law checks).
struct TimeSeries {
  double window = 1.0;                 // seconds per sample
  std::vector<double> tasks_in_flight;  // time-average per window
  std::vector<double> completion_rate;  // completions/s per window
  /// Mean correctness probability of the window's completions (0 for an
  /// empty window) — shows accuracy dips and recovery through a burst.
  std::vector<double> mean_accuracy;
  std::vector<double> shed_rate;        // overload drops/s per window
};

struct SimMetrics {
  std::vector<DeviceMetrics> per_device;
  TimeSeries series;
  Samples latency;                 // aggregate
  std::size_t arrived = 0;
  std::size_t completed = 0;
  double deadline_satisfaction = 1.0;  // over deadline-bearing tasks
  double measured_accuracy = 0.0;      // expectation-based
  double mean_task_energy = 0.0;       // joules per completed task
  std::vector<double> server_utilization;  // busy fraction per server
  double offload_fraction = 0.0;
  double horizon = 0.0;
  // --- fault injection (all zero/1.0 without a FaultSchedule) ---
  std::size_t failed = 0;     // post-warmup tasks dropped by the fault policy
  std::size_t retried = 0;    // post-warmup re-dispatch attempts
  std::size_t resteered = 0;  // post-warmup device-fallback re-executions
  // --- overload control (all zero without queue bounds / gate / expiry) ---
  std::size_t shed = 0;       // post-warmup overload-policy drops
  std::size_t expired = 0;    // post-warmup deadline-expiry drops
  /// Mean over servers of the up-fraction of [0, horizon] per the schedule.
  double availability = 1.0;
  /// Latencies of counted completions that either survived a fault or
  /// finished while some server/link was down (p99-during-outage etc.).
  Samples outage_latency;
  /// Whole-run conservation counters (warmup tasks included):
  ///   arrived == completed_all + failed_all + shed_all + in_flight_end
  /// Overload drops (shed + expired) are accounted separately from the
  /// fault path so queue pressure and hardware failures stay attributable.
  std::size_t completed_all = 0;
  std::size_t failed_all = 0;
  std::size_t shed_all = 0;
  std::size_t in_flight_end = 0;
  /// Discrete events dispatched by the run's inner loop (arrivals, phase
  /// completions, fluid wake-ups, controller/series ticks, ...). The
  /// denominator of the ns/event and allocations/event figures BENCH_simcore
  /// tracks; identical across event-queue implementations and thread counts
  /// for a fixed seed.
  std::size_t events_processed = 0;
};

/// What to do with a task in flight on a crashed server or severed link.
enum class FaultPolicy {
  Drop,           // fail the task (counted, never completed)
  RetryOnDevice,  // re-execute the whole task on the device, device-only plan
  RetryOffload,   // back off and re-dispatch through the *current* plan
                  // (bounded retries + timeout; pairs with an online
                  // controller that excludes dead servers)
};

struct FaultOptions {
  FaultPolicy policy = FaultPolicy::RetryOnDevice;
  std::size_t max_retries = 3;  // per-task re-dispatch budget (RetryOffload)
  double retry_backoff = 0.5;   // seconds before a re-dispatch attempt
  /// A retrying task older than this (since arrival) is failed instead of
  /// re-dispatched — degraded service must stay bounded.
  double retry_timeout = 30.0;
  FaultSchedule schedule;
};

/// Which task a full bounded queue sacrifices (queues stay unbounded until a
/// limit is configured in OverloadOptions).
enum class OverloadPolicy {
  Block,        // blocked-calls-cleared: the entrant is refused (tail drop)
  ShedNewest,   // the youngest task (queued or entrant, by arrival time) is
                // shed — invested work in older tasks is preserved
  ShedExpired,  // like ShedNewest, but additionally a task whose best-case
                // remaining path already overruns its deadline is dropped at
                // enqueue/dispatch instead of wasting device/server time
};

/// Bounded-queue overload protection. A limit of 0 leaves that queue
/// unbounded; with all limits 0 and the default policy the simulator
/// behaves exactly as before. Deadline-expiry shedding (ShedExpired) also
/// works with unbounded queues.
struct OverloadOptions {
  OverloadPolicy policy = OverloadPolicy::Block;
  std::size_t device_queue_limit = 0;  // tasks waiting/being computed on-device
  std::size_t upload_queue_limit = 0;  // tasks waiting behind the uplink slot
  std::size_t server_queue_limit = 0;  // tasks waiting behind the server slot
};

/// Deterministic offered-load modulation: while now is in [start, end) every
/// device's arrival rate is multiplied by `factor` (bursts compose
/// multiplicatively). Unlike burst_factor's random MMPP, this scripts a
/// reproducible burst-and-recover trace.
struct RateBurst {
  double start = 0.0;
  double end = 0.0;
  double factor = 1.0;
};

/// What a (rich) controller tick asks of the simulator: optionally swap the
/// deployment plan, optionally (re)set the per-device admission gate — the
/// probability in [0, 1] that a new arrival is admitted (an empty vector
/// clears the gate). Refused arrivals are shed and count as deadline misses.
struct ControlAction {
  std::optional<Decision> decision;
  std::optional<std::vector<double>> admit_fraction;
};

/// Trace-driven discrete-event simulator of the edge deployment executing a
/// Decision: FCFS device queues, fluid-GPS shared cell uplinks, fluid-GPS
/// shared servers, Poisson arrivals, per-task difficulty driving the exits.
/// Validates the analytical objective (M/M/1-style predictions) and exposes
/// effects the closed form cannot (work-conserving spare capacity, transient
/// overload, bandwidth dynamics).
///
/// The inner loop is engineered for throughput (scoreboard: BENCH_simcore):
/// events are POD records dispatched through one switch (no std::function on
/// the per-event path — only the per-tick controller callback stays type-
/// erased), the default event queue is a calendar queue, and task records
/// live in a recycled structure-of-arrays pool (TaskPool). Determinism bar:
/// for a fixed seed, aggregates and traces are bit-identical for any thread
/// count and for either event-queue implementation.
class Simulator : private FluidSink {
 public:
  struct Options {
    double horizon = 60.0;      // simulated seconds
    double warmup = 5.0;        // metrics ignore tasks arriving before this
    std::uint64_t seed = 7;
    /// If set, the controller callback runs every interval with the observed
    /// per-cell bandwidths; returning a Decision swaps the deployment plan.
    double control_interval = 0.0;  // 0 disables
    /// Markov-modulated arrival burstiness in [0, 1): each device flips
    /// between a high state (rate x (1+f)) and a low state (rate x (1-f))
    /// with exponential holding times of mean burst_hold seconds. 0 keeps
    /// plain Poisson arrivals (and identical RNG streams).
    double burst_factor = 0.0;
    double burst_hold = 2.0;
    /// Time-series sampling window (seconds); 0 disables recording.
    double series_window = 0.0;
    /// Hard-failure script and in-flight-task policy (empty = no faults).
    FaultOptions faults;
    /// Bounded queues + shedding policy (defaults leave behavior unchanged).
    OverloadOptions overload;
    /// Scripted offered-load multipliers (empty = none).
    std::vector<RateBurst> rate_bursts;
    /// Per-task event tracing: ring-buffer capacity in events (0 disables;
    /// a disabled tracer costs one branch per lifecycle hook). Size the ring
    /// from the expected event volume — roughly 8-10 events per offloaded
    /// task — or accept oldest-first overwrites (trace().dropped()).
    std::size_t trace_capacity = 0;
    /// Event-queue implementation. kBinaryHeap is the pre-calendar reference
    /// kept for differential testing; both pop the identical (time, seq)
    /// sequence, so runs are bit-identical either way (enforced by
    /// tests/sim/perf_equivalence_test.cpp).
    EventQueueImpl event_queue = EventQueueImpl::kCalendar;
    /// Impairments on what the controller observes (delay/drop/noise/
    /// quantization on bandwidth, drop/flip on liveness). The default
    /// pass-through skips channel construction entirely, so runs without it
    /// stay bit-identical; with a channel, every signal draws from its own
    /// substream of seed (independent of the arrival/admission streams) and
    /// the channel is sampled only on the controller-tick path, so sharded
    /// runs remain bit-identical to the single loop.
    TelemetryChannelOptions telemetry;
    /// Observability sampling cadence (seconds); 0 disables. Every
    /// obs_interval the engine snapshots its counters plus all sources
    /// registered on `recorder` and, if set, evaluates `slo`. Sampling sits
    /// on the exact same time grid in both engines (a scheduled event here,
    /// the epoch barrier in the sharded engine), ordered after the
    /// controller/series ticks of a coinciding instant, so recorded series
    /// are bit-identical across shard x thread counts. Requires
    /// obs_interval <= control_interval (when a controller is attached) and
    /// <= series_window (when the series is on) so that ordering holds.
    double obs_interval = 0.0;
    /// Borrowed sink for obs samples; must outlive the run. Null disables
    /// sampling regardless of obs_interval.
    TimeSeriesRecorder* recorder = nullptr;
    /// Optional burn-rate monitor evaluated right after each sample.
    SloMonitor* slo = nullptr;
  };

  using Controller = std::function<std::optional<Decision>(
      double now, const std::vector<double>& cell_bandwidth,
      const std::vector<bool>& server_alive)>;

  /// Overload-aware controller: additionally sees the per-device offered
  /// rate (arrivals/s since the last tick) and instantaneous queue depth
  /// (device backlog + upload + server queues), and may drive the admission
  /// gate as well as the plan.
  using RichController = std::function<ControlAction(
      double now, const std::vector<double>& cell_bandwidth,
      const std::vector<bool>& server_alive,
      const std::vector<double>& offered_rate,
      const std::vector<double>& queue_depth)>;

  /// Observation-struct controller: sees everything RichController does plus
  /// the telemetry-freshness fields the channel model fills in — the shape
  /// OnlineController::observe(const Observation&) consumes directly. The
  /// other controller signatures are adapters over this one.
  using ObservingController = std::function<ControlAction(const Observation&)>;

  Simulator(const ProblemInstance& instance, Decision decision,
            Options options);
  ~Simulator();

  /// Attach a bandwidth trace to a cell (defaults to constant at the
  /// topology's configured bandwidth).
  void set_cell_trace(CellId cell, BandwidthTrace trace);

  /// Attach an online controller (requires options.control_interval > 0).
  void set_controller(Controller controller);
  void set_controller(RichController controller);
  void set_controller(ObservingController controller);

  /// Static per-device admission gate: each arrival at device i is admitted
  /// with probability fraction[i] (Bernoulli on a dedicated RNG substream so
  /// the arrival/difficulty streams stay identical to an ungated run).
  /// Refused arrivals are shed. An empty vector clears the gate.
  void set_admission(std::vector<double> fraction);

  SimMetrics run();

  /// Per-task lifecycle events of the (finished or in-progress) run; empty
  /// unless Options::trace_capacity > 0. Events appear in causal recording
  /// order; a fixed seed yields a bit-identical stream.
  const TaskTracer& trace() const { return tracer_; }

  /// Structured counters/gauges/histograms the run publishes into (always
  /// on; counters cover the whole run including warmup, matching the
  /// SimMetrics conservation fields). See README "Observability" for names.
  const MetricsRegistry& registry() const { return registry_; }

 private:
  /// Dispatch tags of the POD event records (SimEvent::kind).
  enum class EvKind : std::uint32_t {
    kArrival,      // a = device
    kDeviceDone,   // b = task index
    kServerArrive, // b = task index (upload drained + RTT elapsed)
    kRedispatch,   // b = task index (fault-policy retry backoff elapsed)
    kFluidWake,    // a = fluid slot (cells, then servers), b = armed epoch
    kFaultEvent,   // b = index into the fault schedule's event list
    kController,
    kSeries,
    kObsSample,    // time-series recorder + SLO evaluation cadence
    kBandwidth,    // a = cell, b = segment index of its trace
  };

  void schedule(double t, EvKind kind, std::int32_t a = -1,
                std::uint64_t b = 0);
  void dispatch(const SimEvent& ev);
  // FluidSink: tag encodes (stage, task) — see tag helpers in simulator.cpp.
  void fluid_job_done(std::uint64_t tag, double now) override;
  void on_arrival(DeviceId dev);
  void finish_device_phase(TaskIndex task);
  void start_upload(TaskIndex task);
  void begin_upload_job(TaskIndex task);
  void advance_upload_queue(DeviceId dev);
  void start_server_phase(TaskIndex task);
  void begin_server_job(TaskIndex task);
  void advance_server_chain(DeviceId dev, ServerId server);
  void complete(TaskIndex task, double now);
  void fail(TaskIndex task, double now);
  // Overload control.
  void shed(TaskIndex task, double now, bool expired);
  void settle_in_flight(double now);
  bool deadline_expired(TaskIndex task, double best_case_remaining) const;
  double best_case_offload_remaining(TaskIndex task) const;
  /// Admit `task` into `queue` honoring `limit` under the overload policy.
  /// Returns false when the entrant itself was shed. `server_stage` selects
  /// the best-case-remaining estimate used for expiry decisions.
  bool enqueue_bounded(IndexDeque& queue, TaskIndex task, std::size_t limit,
                       bool server_stage);
  double burst_multiplier() const;
  void arm_fluid(std::size_t slot);
  void apply_decision(const Decision& decision);
  void compile_device(DeviceId dev);
  void controller_tick();
  void series_tick();
  void obs_tick();
  // Fault injection.
  void on_fault_event(const FaultEvent& ev);
  void on_server_down(ServerId s);
  void on_link_down(CellId c);
  void handle_fault(TaskIndex task);
  void resteer_local(TaskIndex task);
  void redispatch(TaskIndex task);
  bool any_outage() const { return down_servers_ > 0 || down_links_ > 0; }

  const ProblemInstance* instance_;
  Decision decision_;
  Options options_;

  EventQueue events_;
  double now_ = 0.0;
  std::size_t events_processed_ = 0;

  std::vector<std::unique_ptr<FluidResource>> cell_links_;
  std::vector<std::unique_ptr<FluidResource>> servers_;
  /// Flat wake-up view: slots [0, #cells) are the cell links, then servers.
  std::vector<FluidResource*> fluids_;
  std::vector<std::optional<BandwidthTrace>> traces_;
  ObservingController controller_;
  /// Telemetry impairment model between ground truth and the controller;
  /// null when Options::telemetry is pass-through.
  std::unique_ptr<TelemetryChannel> channel_;
  /// Per-device admission probability (empty = admit everything).
  std::vector<double> admit_fraction_;
  /// Arrivals per device since the last controller tick (offered-load signal).
  std::vector<std::size_t> arrivals_since_tick_;
  double last_controller_tick_ = 0.0;

  std::vector<std::unique_ptr<CompiledDevice>> devices_;
  /// Recycled structure-of-arrays records of every task in flight.
  TaskPool tasks_;
  // Liveness state driven by the fault schedule (everything starts up).
  std::vector<bool> server_up_;
  std::vector<bool> link_up_;
  std::size_t down_servers_ = 0;
  std::size_t down_links_ = 0;
  SimMetrics metrics_;
  // Time-series accumulators.
  std::int64_t in_flight_ = 0;
  double in_flight_integral_ = 0.0;
  double in_flight_last_t_ = 0.0;
  std::size_t window_completions_ = 0;
  double window_accuracy_sum_ = 0.0;
  std::size_t window_shed_ = 0;
  std::vector<std::unique_ptr<Rng>> rngs_;  // per device
  /// Separate per-device streams for admission-gate coin flips, so gating
  /// never perturbs the arrival/difficulty streams shared across schemes.
  std::vector<std::unique_ptr<Rng>> admit_rngs_;
  // Observability: the tracer rings lifecycle events; the registry carries
  // whole-run counters the SimMetrics conservation fields are copied from.
  TaskTracer tracer_;
  MetricsRegistry registry_;
  Counter* ctr_arrived_ = nullptr;
  Counter* ctr_completed_ = nullptr;
  Counter* ctr_failed_ = nullptr;
  Counter* ctr_shed_ = nullptr;
  Counter* ctr_expired_ = nullptr;
  Counter* ctr_retry_ = nullptr;
  Counter* ctr_resteer_ = nullptr;
  Counter* ctr_gate_refused_ = nullptr;
  Counter* ctr_server_down_ = nullptr;
  Counter* ctr_link_down_ = nullptr;
  Counter* ctr_deadline_met_ = nullptr;
  Counter* ctr_deadline_total_ = nullptr;
  HistogramMetric* hist_latency_ = nullptr;
};

/// Builds the telemetry channel for a run: nullptr when `opts` is
/// pass-through, else a channel seeded from a dedicated substream of the run
/// seed. Shared by Simulator and ShardedSimulator so both engines derive
/// bit-identical channel streams for the same seed.
std::unique_ptr<TelemetryChannel> make_telemetry_channel(
    const TelemetryChannelOptions& opts, const ClusterTopology& topo,
    std::uint64_t seed);

}  // namespace scalpel
