#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "surgery/plan.hpp"

namespace scalpel {

/// A task migrating from its device's shard to its target server's shard at
/// an epoch barrier: the full structure-of-arrays row of the task, plus the
/// absolute time its kServerArrive fires in the receiving shard. POD so the
/// outbox/inbox exchange is a memcpy-class operation.
///
/// Envelopes exist because the upload drain happens where the device lives
/// while the server stage happens where the server lives. Conservative
/// lookahead makes the handoff safe: a cross-shard task always travels for
/// its path RTT, and epochs are never longer than the minimum cross-shard
/// RTT, so an envelope created inside epoch k can only fire at or after the
/// barrier ending epoch k — by which time it has been delivered.
struct TaskEnvelope {
  double arrive_time = 0.0;  // upload drain + rtt (absolute sim seconds)
  std::uint64_t id = 0;
  double arrival = 0.0;
  double difficulty = 0.0;
  double rtt = 0.0;
  double bw_weight = 0.0;
  double cpu_weight = 0.0;
  double device_done = 0.0;
  TaskPhases phases;
  std::int32_t device = -1;
  std::int32_t server = -1;
  std::uint16_t retries = 0;
  std::uint8_t flags = 0;
};

/// Kind of one order-sensitive accounting record. Integer counters merge by
/// addition across shards, but Samples vectors, energy/accuracy sums, the
/// in-flight integral, and the windowed time series are all sensitive to the
/// order floating-point accumulation happens in. Every shard therefore logs
/// its arrivals/terminals as MetricRecords and the coordinator replays the
/// deterministically merged log through the exact single-loop accumulation
/// arithmetic — bit-identical for any shard or thread count.
enum class MetricRecordKind : std::uint8_t {
  kArrival = 0,  // in-flight +1 (logged only when the time series is on)
  kComplete,
  kFail,
  kShed,
  kExpire,
  kSeries,  // window boundary (serial phase; carries no task fields)
};

/// Sort key position of records the serial reduction phase emits. Serial
/// records carry the global serial counter (they replay in exactly the order
/// the serial phase executed, which mirrors the single loop's seq order:
/// scripted events schedule before task events). Mid-epoch records carry
/// kMidEpochSeq, sorting after every serial record at an equal timestamp —
/// matching the single loop, where a task event at a barrier's exact time has
/// a larger seq than the scripted event that defined the barrier.
constexpr std::uint64_t kMidEpochSeq =
    std::numeric_limits<std::uint64_t>::max();

struct MetricRecord {
  double time = 0.0;
  std::uint64_t serial_seq = kMidEpochSeq;
  std::uint64_t id = 0;            // task id; tiebreak at equal times
  double latency = 0.0;            // kComplete only
  double correct_prob = 0.0;       // kComplete only
  double energy = 0.0;             // kComplete only (device-side joules)
  std::int32_t device = -1;
  std::int32_t exit_slot = 0;      // kComplete only: exit histogram slot
  MetricRecordKind kind = MetricRecordKind::kArrival;
  std::uint8_t flags = 0;

  enum : std::uint8_t {
    kCounted = 1,          // arrived post-warmup: contributes to DeviceMetrics
    kOutageOrFaulted = 2,  // completion during an outage or after a fault
    kOffloaded = 4,
  };
};

/// Partial order matching the single-loop processing order everywhere the
/// sharded simulator guarantees bit-identity: time, then serial-phase order.
/// Deliberately NOT refined further — one event's cascade can emit several
/// records at the identical timestamp (an upload drain advancing the queue
/// can shed multiple expired tasks at one `now`), and the single loop folds
/// those in cascade order, which is exactly the per-shard log order. The
/// merge is therefore *stable*: ties keep the earliest input log and preserve
/// each log's internal order. Equal-time mid-epoch records from different
/// shards are the measure-zero cross-shard coincidence covered by the
/// tie-break caveat in EXPERIMENTS.md.
inline bool metric_record_before(const MetricRecord& a,
                                 const MetricRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.serial_seq < b.serial_seq;
}

/// K-way merge of per-shard record logs (each already nondecreasing in the
/// sort key, because shards log in processing order) into one globally
/// ordered stream.
std::vector<MetricRecord> merge_metric_records(
    const std::vector<const std::vector<MetricRecord>*>& logs);

/// One synchronization point of the sharded run. Scripted global events
/// (fault transitions, bandwidth change-points, controller and series ticks)
/// happen here, in the serial reduction phase, in exactly this order:
/// envelope delivery, faults, bandwidth, controller, series — the same order
/// the single loop's (time, seq) tiebreak yields for events seeded at
/// construction vs. rescheduled ticks.
struct EpochBarrier {
  double time = 0.0;
  bool controller = false;
  bool series = false;
  /// Observability sample due at `time` (runs last in the serial phase,
  /// after the controller and series ticks — the single loop's seq order).
  bool obs = false;
  /// Indices into the fault schedule's event list due exactly at `time`.
  std::vector<std::size_t> fault_events;
  /// (cell, segment) bandwidth change-points due exactly at `time`.
  std::vector<std::pair<std::int32_t, std::size_t>> bandwidth_changes;

  bool scripted() const {
    return controller || series || obs || !fault_events.empty() ||
           !bandwidth_changes.empty();
  }
};

/// Builds the barrier agenda: every scripted event time (computed with the
/// exact floating-point recurrences the single loop uses when rescheduling
/// ticks), the horizon as the final barrier, and filler barriers so no two
/// consecutive barriers are more than `lookahead` apart. An infinite
/// lookahead (no cross-shard pairs) inserts no fillers.
std::vector<EpochBarrier> build_epoch_barriers(
    double horizon, double lookahead, double control_interval,
    bool has_controller, double series_window,
    const std::vector<double>& fault_times,
    const std::vector<std::vector<double>>& bandwidth_times,
    double obs_interval = 0.0);

}  // namespace scalpel
