#include "sim/metrics_export.hpp"

#include <fstream>

#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace scalpel {

namespace {

Json samples_summary_json(const Samples& s) {
  Json o = Json::object();
  o.set("count", Json::number(static_cast<double>(s.count())));
  if (!s.empty()) {
    o.set("mean", Json::number(s.mean()));
    o.set("p50", Json::number(s.p50()));
    o.set("p95", Json::number(s.p95()));
    o.set("p99", Json::number(s.p99()));
    o.set("min", Json::number(s.min()));
    o.set("max", Json::number(s.max()));
  }
  return o;
}

Json summary_json(const Summary& s) {
  Json o = Json::object();
  o.set("n", Json::number(static_cast<double>(s.n)));
  o.set("mean", Json::number(s.mean));
  o.set("stddev", Json::number(s.stddev));
  o.set("ci95", Json::number(s.ci95));
  return o;
}

void set_count(Json& o, const char* key, std::size_t v) {
  o.set(key, Json::number(static_cast<double>(v)));
}

}  // namespace

Json sim_metrics_to_json(const SimMetrics& m) {
  Json o = Json::object();
  set_count(o, "arrived", m.arrived);
  set_count(o, "completed", m.completed);
  set_count(o, "failed", m.failed);
  set_count(o, "shed", m.shed);
  set_count(o, "expired", m.expired);
  set_count(o, "retried", m.retried);
  set_count(o, "resteered", m.resteered);
  o.set("deadline_satisfaction", Json::number(m.deadline_satisfaction));
  o.set("measured_accuracy", Json::number(m.measured_accuracy));
  o.set("mean_task_energy", Json::number(m.mean_task_energy));
  o.set("offload_fraction", Json::number(m.offload_fraction));
  o.set("availability", Json::number(m.availability));
  o.set("horizon", Json::number(m.horizon));
  o.set("latency", samples_summary_json(m.latency));
  o.set("outage_latency", samples_summary_json(m.outage_latency));

  Json conservation = Json::object();
  set_count(conservation, "arrived", m.arrived);
  set_count(conservation, "completed_all", m.completed_all);
  set_count(conservation, "failed_all", m.failed_all);
  set_count(conservation, "shed_all", m.shed_all);
  set_count(conservation, "in_flight_end", m.in_flight_end);
  o.set("conservation", std::move(conservation));

  Json util = Json::array();
  for (double u : m.server_utilization) util.push_back(Json::number(u));
  o.set("server_utilization", std::move(util));

  Json devices = Json::array();
  for (const auto& dm : m.per_device) {
    Json d = Json::object();
    set_count(d, "arrived", dm.arrived);
    set_count(d, "completed", dm.completed);
    set_count(d, "failed", dm.failed);
    set_count(d, "shed", dm.shed);
    set_count(d, "expired", dm.expired);
    set_count(d, "resteered", dm.resteered);
    set_count(d, "retries", dm.retries);
    set_count(d, "deadline_met", dm.deadline_met);
    set_count(d, "deadline_total", dm.deadline_total);
    set_count(d, "offloaded", dm.offloaded);
    d.set("latency", samples_summary_json(dm.latency));
    Json exits = Json::array();
    for (std::size_t e : dm.exit_histogram) {
      exits.push_back(Json::number(static_cast<double>(e)));
    }
    d.set("exit_histogram", std::move(exits));
    devices.push_back(std::move(d));
  }
  o.set("per_device", std::move(devices));

  if (!m.series.tasks_in_flight.empty()) {
    Json series = Json::object();
    series.set("window", Json::number(m.series.window));
    auto arr = [](const std::vector<double>& xs) {
      Json a = Json::array();
      for (double x : xs) a.push_back(Json::number(x));
      return a;
    };
    series.set("tasks_in_flight", arr(m.series.tasks_in_flight));
    series.set("completion_rate", arr(m.series.completion_rate));
    series.set("mean_accuracy", arr(m.series.mean_accuracy));
    series.set("shed_rate", arr(m.series.shed_rate));
    o.set("series", std::move(series));
  }
  return o;
}

Table sim_metrics_to_table(const SimMetrics& m) {
  Table t({"metric", "value"});
  auto count = [&](const char* name, std::size_t v) {
    t.add_row({name, Table::num(static_cast<std::int64_t>(v))});
  };
  auto real = [&](const char* name, double v) {
    t.add_row({name, Table::num(v, 6)});
  };
  count("arrived", m.arrived);
  count("completed", m.completed);
  count("failed", m.failed);
  count("shed", m.shed);
  count("expired", m.expired);
  count("retried", m.retried);
  count("resteered", m.resteered);
  count("completed_all", m.completed_all);
  count("failed_all", m.failed_all);
  count("shed_all", m.shed_all);
  count("in_flight_end", m.in_flight_end);
  real("deadline_satisfaction", m.deadline_satisfaction);
  real("measured_accuracy", m.measured_accuracy);
  real("mean_task_energy", m.mean_task_energy);
  real("offload_fraction", m.offload_fraction);
  real("availability", m.availability);
  real("horizon", m.horizon);
  if (!m.latency.empty()) {
    real("latency_mean_s", m.latency.mean());
    real("latency_p50_s", m.latency.p50());
    real("latency_p95_s", m.latency.p95());
    real("latency_p99_s", m.latency.p99());
  }
  return t;
}

Json replicated_metrics_to_json(const ReplicatedMetrics& agg) {
  Json o = Json::object();
  set_count(o, "replications", agg.replications.size());
  set_count(o, "arrived", agg.arrived);
  set_count(o, "completed", agg.completed);
  set_count(o, "failed", agg.failed);
  set_count(o, "shed", agg.shed);
  set_count(o, "expired", agg.expired);
  Json summaries = Json::object();
  summaries.set("mean_latency", summary_json(summarize(agg.mean_latency)));
  summaries.set("p95_latency", summary_json(summarize(agg.p95_latency)));
  summaries.set("p99_latency", summary_json(summarize(agg.p99_latency)));
  summaries.set("deadline_satisfaction",
                summary_json(summarize(agg.deadline_satisfaction)));
  summaries.set("accuracy", summary_json(summarize(agg.accuracy)));
  summaries.set("task_energy", summary_json(summarize(agg.task_energy)));
  summaries.set("offload_fraction",
                summary_json(summarize(agg.offload_fraction)));
  summaries.set("throughput", summary_json(summarize(agg.throughput)));
  summaries.set("availability", summary_json(summarize(agg.availability)));
  summaries.set("failed_fraction",
                summary_json(summarize(agg.failed_fraction)));
  summaries.set("shed_fraction", summary_json(summarize(agg.shed_fraction)));
  o.set("summaries", std::move(summaries));
  Json reps = Json::array();
  for (const auto& m : agg.replications) {
    reps.push_back(sim_metrics_to_json(m));
  }
  o.set("per_replication", std::move(reps));
  return o;
}

bool write_sim_metrics(const SimMetrics& m, const std::string& path) {
  const bool csv = path.size() >= 4 &&
                   path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("could not open metrics output file: " + path);
    return false;
  }
  if (csv) {
    out << sim_metrics_to_table(m).to_csv();
  } else {
    out << sim_metrics_to_json(m).dump_pretty() << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace scalpel
