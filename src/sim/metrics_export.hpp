#pragma once

#include <string>

namespace scalpel {
class Json;
class Table;
struct SimMetrics;
struct ReplicatedMetrics;

/// Machine-readable views of simulation results, so benches and the CLI can
/// hand full metrics (including the shed/expired/failover counters the
/// console one-liner omits) to downstream tooling.

/// Full SimMetrics as a JSON object: scalars, conservation counters, latency
/// quantiles, per-device breakdown, utilization and time series.
Json sim_metrics_to_json(const SimMetrics& m);

/// Flat (metric, value) rows of the aggregate scalars (per-device and series
/// data excluded) for CSV export.
Table sim_metrics_to_table(const SimMetrics& m);

/// Replicated aggregate: per-metric mean ± 95% CI summaries plus the
/// per-replication SimMetrics array.
Json replicated_metrics_to_json(const ReplicatedMetrics& agg);

/// Writes metrics to `path`; a ".csv" suffix selects the tabular form,
/// anything else gets pretty JSON. Returns false (and logs) on I/O failure.
bool write_sim_metrics(const SimMetrics& m, const std::string& path);

}  // namespace scalpel
