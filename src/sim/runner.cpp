#include "sim/runner.hpp"

#include <memory>
#include <string>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scalpel {

ScenarioRunner::ScenarioRunner(const ProblemInstance& instance,
                               Decision decision, Options options)
    : instance_(&instance), decision_(std::move(decision)),
      options_(std::move(options)) {
  SCALPEL_REQUIRE(options_.replications > 0,
                  "runner needs at least one replication");
  SCALPEL_REQUIRE(options_.sim.horizon > 0.0, "horizon must be positive");
  SCALPEL_REQUIRE(
      options_.sim.warmup >= 0.0 && options_.sim.warmup < options_.sim.horizon,
      "warmup must lie inside the horizon");
}

std::uint64_t ScenarioRunner::replication_seed(std::uint64_t base_seed,
                                               std::size_t r) {
  return Rng::substream_seed(base_seed, static_cast<std::uint64_t>(r));
}

ReplicatedMetrics ScenarioRunner::run() const {
  const std::size_t n = options_.replications;
  // Results land in a pre-sized slot per replication id; the aggregation
  // below is then a fixed-order fold, independent of completion order.
  std::vector<std::unique_ptr<SimMetrics>> results(n);
  const bool tracing = options_.sim.trace_capacity > 0;
  std::vector<std::vector<TraceEvent>> traces(tracing ? n : 0);

  auto run_one = [&](std::size_t r) {
    Simulator::Options o = options_.sim;
    o.seed = replication_seed(options_.sim.seed, r);
    if (options_.shards > 0) {
      ShardOptions sopts;
      sopts.shards = options_.shards;
      sopts.threads = options_.shard_threads;
      ShardedSimulator sim(*instance_, decision_, o, sopts);
      if (options_.configure_sharded) options_.configure_sharded(sim, r);
      results[r] = std::make_unique<SimMetrics>(sim.run());
      // Already the canonical reconciled order (single-loop snapshots are
      // raw rings; reconcile either side before comparing streams).
      if (tracing) traces[r] = sim.trace_events();
      return;
    }
    Simulator sim(*instance_, decision_, o);
    if (options_.configure) options_.configure(sim, r);
    results[r] = std::make_unique<SimMetrics>(sim.run());
    if (tracing) traces[r] = sim.trace().snapshot();
  };

  if (n == 1 || options_.threads == 1) {
    for (std::size_t r = 0; r < n; ++r) run_one(r);
  } else {
    ThreadPool pool(options_.threads);
    pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) run_one(r);
    });
  }

  ReplicatedMetrics agg;
  agg.replications.reserve(n);
  // Trace slots were filled by replication id, so this is already the
  // thread-count-independent order.
  agg.traces = std::move(traces);
  for (std::size_t r = 0; r < n; ++r) {
    SimMetrics& m = *results[r];
    if (options_.require_completions) {
      SCALPEL_REQUIRE(m.completed > 0,
                      "replication " + std::to_string(r) +
                          " finished zero post-warmup tasks; lengthen the "
                          "horizon or shrink the warmup");
    }
    agg.arrived += m.arrived;
    agg.completed += m.completed;
    agg.failed += m.failed;
    agg.shed += m.shed;
    agg.expired += m.expired;
    agg.availability.add(m.availability);
    if (m.completed + m.failed > 0) {
      agg.failed_fraction.add(static_cast<double>(m.failed) /
                              static_cast<double>(m.completed + m.failed));
    }
    const std::size_t settled = m.completed + m.failed + m.shed + m.expired;
    if (settled > 0) {
      agg.shed_fraction.add(static_cast<double>(m.shed + m.expired) /
                            static_cast<double>(settled));
    }
    if (m.completed > 0) {
      agg.mean_latency.add(m.latency.mean());
      agg.p50_latency.add(m.latency.p50());
      agg.p95_latency.add(m.latency.p95());
      agg.p99_latency.add(m.latency.p99());
      agg.deadline_satisfaction.add(m.deadline_satisfaction);
      agg.accuracy.add(m.measured_accuracy);
      agg.task_energy.add(m.mean_task_energy);
      agg.offload_fraction.add(m.offload_fraction);
      agg.throughput.add(static_cast<double>(m.completed) /
                         (options_.sim.horizon - options_.sim.warmup));
    }
    agg.replications.push_back(std::move(m));
  }
  return agg;
}

}  // namespace scalpel
