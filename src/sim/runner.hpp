#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace scalpel {

/// Replication-level aggregates of a fan-out of independent simulator runs.
/// Each Samples member holds ONE scalar per replication (e.g. that
/// replication's mean latency), indexed in replication order regardless of
/// which thread ran it — so every derived statistic is bit-identical for any
/// thread count. Pass any member to summarize() for mean / stddev / 95% CI.
struct ReplicatedMetrics {
  std::vector<SimMetrics> replications;  // indexed by replication id

  Samples mean_latency;           // seconds
  Samples p50_latency;            // seconds
  Samples p95_latency;            // seconds
  Samples p99_latency;            // seconds
  Samples deadline_satisfaction;  // fraction in [0, 1]
  Samples accuracy;               // expectation-based, [0, 1]
  Samples task_energy;            // joules per completed task
  Samples offload_fraction;       // fraction in [0, 1]
  Samples throughput;             // post-warmup completions per second
  Samples availability;           // schedule-implied server up-fraction
  Samples failed_fraction;        // failed / (completed + failed), post-warmup
  /// (shed + expired) / (completed + failed + shed + expired), post-warmup.
  Samples shed_fraction;

  std::size_t arrived = 0;    // total across replications
  std::size_t completed = 0;  // total across replications
  std::size_t failed = 0;     // post-warmup fault-policy drops, total
  std::size_t shed = 0;       // post-warmup overload drops, total
  std::size_t expired = 0;    // post-warmup deadline-expiry drops, total

  /// Per-replication event traces, indexed by replication id (empty unless
  /// Options::sim.trace_capacity > 0). Each trace is the bit-identical
  /// stream the replication's seed produces, regardless of thread count.
  std::vector<std::vector<TraceEvent>> traces;

  Summary latency_summary() const { return summarize(mean_latency); }
};

/// Fans N independent replications of one (instance, decision) scenario out
/// across a thread pool. Replication r simulates with the substream seed
/// derived from (options.sim.seed, r) — a pure function, so the aggregate is
/// bit-identical whether the fan-out runs on 1 thread or 64, and any single
/// replication can be re-run alone for debugging.
class ScenarioRunner {
 public:
  struct Options {
    std::size_t replications = 8;
    /// Worker threads for the fan-out; 0 means one per hardware core.
    std::size_t threads = 0;
    /// Template for every replication; `sim.seed` is the *base* seed each
    /// replication substreams from, not the seed any replication runs with.
    Simulator::Options sim;
    /// Reject replications whose post-warmup completion count is zero
    /// instead of silently aggregating empty Samples (the classic
    /// short-horizon footgun).
    bool require_completions = true;
    /// Per-replication setup hook, called after construction and before
    /// run() with the replication id — the place to attach controllers,
    /// traces, or an admission gate. Must be thread-safe across
    /// replications (it runs on the fan-out workers) and deterministic in
    /// the replication id for reproducible aggregates.
    std::function<void(Simulator&, std::size_t)> configure;
    /// > 0 runs every replication on the cell-sharded engine
    /// (ShardedSimulator) with this shard count instead of the single-loop
    /// Simulator. The results are bit-identical either way (that's the
    /// sharding determinism bar); the sharded path is for metro-scale
    /// topologies where one event loop is the bottleneck.
    std::size_t shards = 0;
    /// Worker threads inside each sharded replication (ShardOptions::
    /// threads). Defaults to 1: the fan-out already parallelizes across
    /// replications, so per-replication threading only pays off when
    /// replications < cores.
    std::size_t shard_threads = 1;
    /// Sharded-path twin of `configure` (same contract).
    std::function<void(ShardedSimulator&, std::size_t)> configure_sharded;
  };

  ScenarioRunner(const ProblemInstance& instance, Decision decision,
                 Options options);

  /// Runs all replications (blocking) and aggregates in replication order.
  ReplicatedMetrics run() const;

  /// The seed replication `r` simulates with. Exposed so a failing
  /// replication can be reproduced with a plain single-run Simulator.
  static std::uint64_t replication_seed(std::uint64_t base_seed,
                                        std::size_t r);

 private:
  const ProblemInstance* instance_;
  Decision decision_;
  Options options_;
};

}  // namespace scalpel
