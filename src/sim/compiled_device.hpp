#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "sim/task_pool.hpp"
#include "surgery/plan.hpp"

namespace scalpel {

/// FIFO serialization chain of one (device, server) stream: a device's
/// offloaded tasks targeting one server occupy at most one fluid slot on that
/// server, so a burst cannot multiply its granted weight by queueing several
/// jobs. Chains are per-(device, server) — not per-device — so streams to
/// different servers (possible after an online replan moves the device) never
/// serialize against each other; each chain's state lives entirely with the
/// server that owns it, which is what lets the sharded simulator place it in
/// the server's shard.
struct ServerChain {
  ServerId server = -1;
  IndexDeque queue;
  bool serving = false;
  TaskIndex serving_task = kNoTask;
};

/// Per-device compiled state shared by the single-loop Simulator and the
/// cell-sharded ShardedSimulator: the PlanModel the tasks sample from plus
/// the decision's resource grants and the device-side queue/stage state.
struct CompiledDevice {
  std::shared_ptr<const PlanModel> plan;
  /// Device-only variant of `plan` (same exit policy) used when a fault
  /// resteers a task back onto the device. Null when plan is device-only.
  std::shared_ptr<const PlanModel> fallback;
  bool device_only = true;
  ServerId server = -1;
  double share = 0.0;
  double bandwidth = 0.0;
  double rtt = 0.0;
  double busy_until = 0.0;  // FCFS device queue (deterministic service)
  /// Tasks waiting for or occupying the device compute stage (the stage is a
  /// deterministic schedule, not a deque, so the bound counts commitments).
  std::size_t device_backlog = 0;
  // MMPP arrival modulation state (used when options.burst_factor > 0).
  bool burst_high = false;
  double burst_state_until = 0.0;
  IndexDeque upload_queue;
  bool uploading = false;
  TaskIndex uploading_task = kNoTask;  // the job occupying the fluid slot
  /// Per-(device, server) serialization chains, created on first use. A
  /// device targets one server at a time, so this stays tiny (it only grows
  /// when an online replan retargets the device mid-run).
  std::vector<ServerChain> chains;
  /// Per-device arrival counter; task id = (device << 32) | arrival_seq, a
  /// scheme that is invariant to how devices are partitioned into shards.
  std::uint32_t arrival_seq = 0;

  ServerChain& chain_for(ServerId s) {
    for (auto& ch : chains) {
      if (ch.server == s) return ch;
    }
    chains.push_back(ServerChain{});
    chains.back().server = s;
    return chains.back();
  }

  ServerChain* find_chain(ServerId s) {
    for (auto& ch : chains) {
      if (ch.server == s) return &ch;
    }
    return nullptr;
  }

  /// Tasks waiting in or occupying any server chain (queue-depth signal).
  std::size_t server_stage_depth() const {
    std::size_t n = 0;
    for (const auto& ch : chains) {
      n += ch.queue.size() + (ch.serving_task != kNoTask ? 1 : 0);
    }
    return n;
  }
};

/// Task id scheme shared by both simulators: high word = device, low word =
/// per-device arrival sequence. Shard-partition invariant by construction.
inline std::uint64_t make_task_id(DeviceId dev, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dev)) << 32) |
         seq;
}

/// Value-keyed memoization of PlanModel compilation. A metro-scale topology
/// has millions of devices but only a handful of distinct (model, compute
/// class, plan, grant) combinations; sharing the compiled PlanModel turns
/// construction from minutes of repeated work into a hash lookup per device.
/// The key serializes every input PlanModel construction reads (bundle
/// identity, plan content, both compute profiles, link, difficulty), so a
/// hit is semantically exact, never heuristic.
class PlanModelCache {
 public:
  std::shared_ptr<const PlanModel> get_or_compile(
      const ModelBundle& bundle, const SurgeryPlan& plan,
      const ComputeProfile& device, const ComputeProfile& server,
      const LinkSpec& link, const DifficultyModel& difficulty);

  std::size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, std::shared_ptr<const PlanModel>> cache_;
};

/// Compiles `dd` into `cd` exactly as the single-loop simulator always has
/// (plan + device-only fallback, grants, rtt). With a non-null `cache` the
/// PlanModels are shared across identical devices.
void compile_device_decision(const ProblemInstance& instance, DeviceId dev,
                             const DeviceDecision& dd, CompiledDevice& cd,
                             PlanModelCache* cache);

}  // namespace scalpel
