#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "core/objective.hpp"
#include "surgery/plan.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace scalpel {

/// One inference task in flight.
struct Simulator::Task {
  std::uint64_t id = 0;  // per-run trace id, assigned at arrival
  DeviceId device = -1;
  double arrival = 0.0;
  double difficulty = 0.0;  // sampled once; re-used by fault re-executions
  TaskPhases phases;
  bool counted = false;   // arrived after warmup -> contributes to metrics
  // Decision parameters captured at arrival (plan swaps must not corrupt
  // tasks already in flight).
  ServerId server = -1;
  double rtt = 0.0;
  double bw_weight = 0.0;
  double cpu_weight = 0.0;
  // Phase timestamps for energy accounting.
  double device_done = 0.0;
  double upload_done = 0.0;
  // Fault bookkeeping.
  std::size_t retries = 0;  // re-dispatch attempts so far
  bool faulted = false;     // lost a server/link at least once
};

/// Per-device compiled state: the PlanModel the tasks sample from plus the
/// decision's resource grants. The upload/server sub-queues keep a device's
/// stream FIFO within its granted share — one device's burst occupies one
/// fluid slot, so it cannot multiply its weight by queueing several jobs.
struct Simulator::CompiledDevice {
  std::unique_ptr<PlanModel> plan;
  /// Device-only variant of `plan` (same exit policy) used when a fault
  /// resteers a task back onto the device. Null when plan is device-only.
  std::unique_ptr<PlanModel> fallback;
  bool device_only = true;
  ServerId server = -1;
  double share = 0.0;
  double bandwidth = 0.0;
  double rtt = 0.0;
  double busy_until = 0.0;  // FCFS device queue (deterministic service)
  /// Tasks waiting for or occupying the device compute stage (the stage is a
  /// deterministic schedule, not a deque, so the bound counts commitments).
  std::size_t device_backlog = 0;
  // MMPP arrival modulation state (used when options.burst_factor > 0).
  bool burst_high = false;
  double burst_state_until = 0.0;
  std::deque<std::shared_ptr<Task>> upload_queue;
  bool uploading = false;
  std::shared_ptr<Task> uploading_task;  // the job occupying the fluid slot
  std::deque<std::shared_ptr<Task>> server_queue;
  bool serving = false;
  std::shared_ptr<Task> serving_task;
};

Simulator::Simulator(const ProblemInstance& instance, Decision decision,
                     Options options)
    : instance_(&instance), decision_(std::move(decision)),
      options_(std::move(options)) {
  SCALPEL_REQUIRE(options_.horizon > 0.0, "horizon must be positive");
  SCALPEL_REQUIRE(options_.warmup >= 0.0 && options_.warmup < options_.horizon,
                  "warmup must lie inside the horizon");
  SCALPEL_REQUIRE(options_.faults.retry_backoff > 0.0 &&
                      options_.faults.retry_timeout > 0.0,
                  "fault retry backoff/timeout must be positive");
  const auto& topo = instance_->topology();
  SCALPEL_REQUIRE(decision_.per_device.size() == topo.devices().size(),
                  "decision must cover every device");
  for (const auto& ev : options_.faults.schedule.events()) {
    const auto limit = ev.target == FaultTarget::Server
                           ? topo.servers().size()
                           : topo.cells().size();
    SCALPEL_REQUIRE(ev.id >= 0 && static_cast<std::size_t>(ev.id) < limit,
                    "fault event targets an unknown server/cell");
  }

  for (const auto& rb : options_.rate_bursts) {
    SCALPEL_REQUIRE(rb.factor > 0.0 && rb.start >= 0.0 && rb.end >= rb.start,
                    "rate burst needs a positive factor and an ordered window");
  }

  Rng master(options_.seed);
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    rngs_.push_back(std::make_unique<Rng>(master.next_u64()));
    devices_.push_back(std::make_unique<CompiledDevice>());
  }
  // Admission-gate streams are drawn *after* every device stream so a gated
  // run sees the identical arrival/difficulty realizations as an ungated one.
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    admit_rngs_.push_back(std::make_unique<Rng>(master.next_u64()));
  }
  arrivals_since_tick_.assign(topo.devices().size(), 0);
  for (const auto& cell : topo.cells()) {
    cell_links_.push_back(std::make_unique<FluidResource>(cell.bandwidth));
    traces_.push_back(std::nullopt);
  }
  for (std::size_t j = 0; j < topo.servers().size(); ++j) {
    servers_.push_back(std::make_unique<FluidResource>(1.0));
  }
  server_up_.assign(topo.servers().size(), true);
  link_up_.assign(topo.cells().size(), true);
  apply_decision(decision_);
  metrics_.per_device.resize(topo.devices().size());

  // Observability wiring: the tracer ring is preallocated here so record()
  // never allocates, and every registry handle is resolved once (metric
  // names are listed in README "Observability").
  tracer_.reset(options_.trace_capacity);
  ctr_arrived_ = &registry_.counter("sim.task.arrived");
  ctr_completed_ = &registry_.counter("sim.task.completed");
  ctr_failed_ = &registry_.counter("sim.task.failed");
  ctr_shed_ = &registry_.counter("sim.task.shed");
  ctr_expired_ = &registry_.counter("sim.task.expired");
  ctr_retry_ = &registry_.counter("sim.task.retry");
  ctr_resteer_ = &registry_.counter("sim.task.resteer");
  ctr_gate_refused_ = &registry_.counter("sim.gate.refused");
  ctr_server_down_ = &registry_.counter("sim.fault.server_down");
  ctr_link_down_ = &registry_.counter("sim.fault.link_down");
  hist_latency_ = &registry_.histogram("sim.task.latency_seconds", 0.0,
                                       10.0, 200);
}

Simulator::~Simulator() = default;

void Simulator::set_cell_trace(CellId cell, BandwidthTrace trace) {
  SCALPEL_REQUIRE(cell >= 0 &&
                      static_cast<std::size_t>(cell) < traces_.size(),
                  "cell id out of range");
  traces_[static_cast<std::size_t>(cell)] = std::move(trace);
}

void Simulator::set_controller(Controller controller) {
  set_controller(RichController(
      [inner = std::move(controller)](
          double now, const std::vector<double>& bw,
          const std::vector<bool>& alive, const std::vector<double>&,
          const std::vector<double>&) {
        ControlAction action;
        action.decision = inner(now, bw, alive);
        return action;
      }));
}

void Simulator::set_controller(RichController controller) {
  SCALPEL_REQUIRE(options_.control_interval > 0.0,
                  "controller needs control_interval > 0");
  controller_ = std::move(controller);
}

void Simulator::set_admission(std::vector<double> fraction) {
  if (!fraction.empty()) {
    SCALPEL_REQUIRE(fraction.size() == devices_.size(),
                    "admission gate must cover every device");
    for (double f : fraction) {
      SCALPEL_REQUIRE(f >= 0.0 && f <= 1.0,
                      "admission fraction must be in [0, 1]");
    }
  }
  admit_fraction_ = std::move(fraction);
}

void Simulator::schedule(double t, std::function<void()> fn) {
  if (t > options_.horizon) return;
  events_.push(Event{t, event_seq_++, std::move(fn)});
}

void Simulator::compile_device(DeviceId dev) {
  const auto i = static_cast<std::size_t>(dev);
  const auto& dd = decision_.per_device[i];
  const auto& device = instance_->topology().device(dev);
  const auto& bundle = instance_->bundle_for(dev);
  auto& cd = *devices_[i];
  cd.device_only = dd.plan.device_only;
  LinkSpec link;
  if (dd.plan.device_only) {
    link.bandwidth = 1.0;
    cd.server = -1;
    cd.share = 0.0;
    cd.bandwidth = 0.0;
    cd.rtt = 0.0;
  } else {
    SCALPEL_REQUIRE(dd.server >= 0, "offloading decision needs a server");
    SCALPEL_REQUIRE(dd.bandwidth > 0.0 && dd.compute_share > 0.0,
                    "offloading decision needs positive grants");
    cd.server = dd.server;
    cd.share = dd.compute_share;
    cd.bandwidth = dd.bandwidth;
    cd.rtt = instance_->topology().path_rtt(dev, dd.server);
    link.bandwidth = dd.bandwidth;
    link.rtt = cd.rtt;
  }
  cd.plan = std::make_unique<PlanModel>(
      bundle.graph, bundle.candidates, dd.plan, bundle.accuracy,
      device.compute,
      dd.plan.device_only
          ? device.compute
          : instance_->topology().server(dd.server).compute,
      link, device.difficulty);
  if (dd.plan.device_only) {
    cd.fallback.reset();
  } else {
    // Same surgery with the cut disabled: what the device runs when a fault
    // strands its offloaded stream.
    SurgeryPlan local = dd.plan;
    local.device_only = true;
    LinkSpec no_link;
    no_link.bandwidth = 1.0;
    cd.fallback = std::make_unique<PlanModel>(
        bundle.graph, bundle.candidates, local, bundle.accuracy,
        device.compute, device.compute, no_link, device.difficulty);
  }
}

void Simulator::apply_decision(const Decision& decision) {
  SCALPEL_REQUIRE(
      decision.per_device.size() == instance_->topology().devices().size(),
      "decision must cover every device");
  decision_ = decision;
  for (std::size_t i = 0; i < decision_.per_device.size(); ++i) {
    compile_device(static_cast<DeviceId>(i));
  }
}

void Simulator::settle_in_flight(double now) {
  in_flight_integral_ += static_cast<double>(in_flight_) *
                         (now - in_flight_last_t_);
  in_flight_last_t_ = now;
}

double Simulator::burst_multiplier() const {
  double factor = 1.0;
  for (const auto& rb : options_.rate_bursts) {
    if (now_ >= rb.start && now_ < rb.end) factor *= rb.factor;
  }
  return factor;
}

bool Simulator::deadline_expired(const std::shared_ptr<Task>& task,
                                 double best_case_remaining) const {
  if (options_.overload.policy != OverloadPolicy::ShedExpired) return false;
  const double deadline =
      instance_->topology().device(task->device).deadline;
  if (deadline <= 0.0) return false;  // best effort never expires
  return now_ + best_case_remaining > task->arrival + deadline + 1e-12;
}

double Simulator::best_case_offload_remaining(
    const std::shared_ptr<Task>& task) const {
  // Most optimistic rest-of-pipeline time: the whole cell uplink to itself,
  // no queueing anywhere, the server at full capacity. Only a task late even
  // under these assumptions is *provably* late.
  const auto& device = instance_->topology().device(task->device);
  const double cap =
      cell_links_[static_cast<std::size_t>(device.cell)]->capacity();
  const double upload =
      cap > 0.0 ? static_cast<double>(task->phases.upload_bytes) / cap : 0.0;
  return upload + task->rtt + task->phases.server_time;
}

bool Simulator::enqueue_bounded(std::deque<std::shared_ptr<Task>>& queue,
                                const std::shared_ptr<Task>& task,
                                std::size_t limit) {
  if (limit == 0 || queue.size() < limit) {
    queue.push_back(task);
    return true;
  }
  const bool server_stage = &queue == &devices_[static_cast<std::size_t>(
                                          task->device)]->server_queue;
  auto remaining = [&](const std::shared_ptr<Task>& t) {
    return server_stage ? t->phases.server_time
                        : best_case_offload_remaining(t);
  };
  switch (options_.overload.policy) {
    case OverloadPolicy::Block:
      // Blocked-calls-cleared: the entrant is refused.
      shed(task, now_, false);
      return false;
    case OverloadPolicy::ShedExpired:
      // Prefer sacrificing a task that is already provably late.
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (deadline_expired(*it, remaining(*it))) {
          const auto victim = *it;
          queue.erase(it);
          shed(victim, now_, true);
          queue.push_back(task);
          return true;
        }
      }
      [[fallthrough]];
    case OverloadPolicy::ShedNewest: {
      // Shed the youngest task by arrival time, preserving the work already
      // invested in older ones (retried/resteered tasks reorder queues, so
      // the entrant is not always the youngest).
      auto youngest = queue.begin();
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if ((*it)->arrival > (*youngest)->arrival) youngest = it;
      }
      if ((*youngest)->arrival > task->arrival) {
        const auto victim = *youngest;
        queue.erase(youngest);
        shed(victim, now_, false);
        queue.push_back(task);
        return true;
      }
      shed(task, now_, false);
      return false;
    }
  }
  return false;  // unreachable
}

void Simulator::on_arrival(DeviceId dev) {
  const auto i = static_cast<std::size_t>(dev);
  const auto& device = instance_->topology().device(dev);
  auto& rng = *rngs_[i];

  auto& cd = *devices_[i];

  // Schedule the next arrival first (Poisson, or Markov-modulated when
  // burstiness is configured; scripted bursts scale the rate directly).
  double rate = device.arrival_rate * burst_multiplier();
  if (options_.burst_factor > 0.0) {
    SCALPEL_REQUIRE(options_.burst_factor < 1.0,
                    "burst_factor must be in [0, 1)");
    while (now_ >= cd.burst_state_until) {
      cd.burst_high = !cd.burst_high;
      cd.burst_state_until = std::max(now_, cd.burst_state_until) +
                             rng.exponential(1.0 / options_.burst_hold);
    }
    rate *= cd.burst_high ? (1.0 + options_.burst_factor)
                          : (1.0 - options_.burst_factor);
  }
  const double next = now_ + rng.exponential(rate);
  schedule(next, [this, dev] { on_arrival(dev); });
  auto task = std::make_shared<Task>();
  task->id = next_task_id_++;
  task->device = dev;
  task->arrival = now_;
  task->counted = now_ >= options_.warmup;
  task->difficulty = device.difficulty.sample(rng);
  task->phases = cd.plan->phases_for(task->difficulty);
  task->server = cd.server;
  task->rtt = cd.rtt;
  task->bw_weight = cd.bandwidth;
  task->cpu_weight = cd.share;

  ++metrics_.per_device[i].arrived;
  ctr_arrived_->inc();
  ++arrivals_since_tick_[i];
  settle_in_flight(now_);
  ++in_flight_;
  tracer_.record(now_, task->id, dev, task->server, TraceEventType::kArrive);

  // Runtime admission gate: a refused arrival is shed before consuming any
  // device time (its difficulty draw above keeps the RNG streams aligned
  // with an ungated run; the coin comes from a dedicated stream).
  if (!admit_fraction_.empty() &&
      admit_rngs_[i]->uniform() > admit_fraction_[i]) {
    ctr_gate_refused_->inc();
    shed(task, now_, false);
    return;
  }

  // FCFS device queue with deterministic service: the finish time is known
  // at arrival.
  const double start = std::max(now_, cd.busy_until);

  // Deadline expiry at the door: the device wait is exact and the offload
  // remainder is bounded below, so lateness here is provable (ShedExpired).
  double best_case = (start - now_) + task->phases.device_time;
  if (task->phases.offloaded) best_case += best_case_offload_remaining(task);
  if (deadline_expired(task, best_case)) {
    shed(task, now_, true);
    return;
  }

  // Bounded device stage. Its schedule is committed at enqueue (events
  // already posted), so every policy refuses the entrant here — which at
  // arrival time is always the youngest task anyway.
  const std::size_t limit = options_.overload.device_queue_limit;
  if (limit > 0 && cd.device_backlog >= limit) {
    shed(task, now_, false);
    return;
  }
  ++cd.device_backlog;
  tracer_.record(now_, task->id, dev, -1, TraceEventType::kEnqueue,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  // The device stage schedule is committed here, so the exec-start stamp is
  // known now even though it may lie in the future.
  tracer_.record(start, task->id, dev, -1, TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  const double finish = start + task->phases.device_time;
  cd.busy_until = finish;
  schedule(finish, [this, task] { finish_device_phase(task); });
}

void Simulator::finish_device_phase(const std::shared_ptr<Task>& task) {
  auto& cd = *devices_[static_cast<std::size_t>(task->device)];
  if (cd.device_backlog > 0) --cd.device_backlog;
  task->device_done = now_;
  tracer_.record(now_, task->id, task->device, -1, TraceEventType::kExecEnd,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  if (!task->phases.offloaded) {
    complete(task, now_);
    return;
  }
  start_upload(task);
}

void Simulator::start_upload(const std::shared_ptr<Task>& task) {
  auto& cd = *devices_[static_cast<std::size_t>(task->device)];
  if (deadline_expired(task, best_case_offload_remaining(task))) {
    shed(task, now_, true);
    return;
  }
  if (cd.uploading) {
    if (enqueue_bounded(cd.upload_queue, task,
                        options_.overload.upload_queue_limit)) {
      tracer_.record(now_, task->id, task->device, task->server,
                     TraceEventType::kEnqueue,
                     static_cast<std::uint8_t>(TraceStage::kUpload));
    }
    return;
  }
  cd.uploading = true;
  begin_upload_job(task);
}

void Simulator::advance_upload_queue(DeviceId dev) {
  auto& cd = *devices_[static_cast<std::size_t>(dev)];
  if (cd.upload_queue.empty()) {
    cd.uploading = false;
    return;
  }
  auto next = cd.upload_queue.front();
  cd.upload_queue.pop_front();
  tracer_.record(now_, next->id, next->device, next->server,
                 TraceEventType::kDispatch,
                 static_cast<std::uint8_t>(TraceStage::kUpload));
  begin_upload_job(next);
}

void Simulator::begin_upload_job(const std::shared_ptr<Task>& task) {
  const auto& device = instance_->topology().device(task->device);
  const auto cell = static_cast<std::size_t>(device.cell);
  // A dead link or dead target server fails the transfer before it starts.
  if (!link_up_[cell] ||
      !server_up_[static_cast<std::size_t>(task->server)]) {
    advance_upload_queue(task->device);
    handle_fault(task);
    return;
  }
  // A task that queued past its provable deadline is dropped before it
  // occupies the uplink slot (ShedExpired).
  if (deadline_expired(task, best_case_offload_remaining(task))) {
    advance_upload_queue(task->device);
    shed(task, now_, true);
    return;
  }
  auto* link = cell_links_[cell].get();
  auto& owner = *devices_[static_cast<std::size_t>(task->device)];
  owner.uploading_task = task;
  tracer_.record(now_, task->id, task->device, task->server,
                 TraceEventType::kUploadStart);
  link->add_job(now_, static_cast<double>(task->phases.upload_bytes),
                task->bw_weight, [this, task](double t) {
                  tracer_.record(t, task->id, task->device, task->server,
                                 TraceEventType::kUploadEnd);
                  // Propagation/setup delay after the transfer drains.
                  schedule(t + task->rtt,
                           [this, task] { start_server_phase(task); });
                  // Head-of-line advance for this device's upload stream.
                  devices_[static_cast<std::size_t>(task->device)]
                      ->uploading_task.reset();
                  advance_upload_queue(task->device);
                });
  arm_fluid(link);
}

void Simulator::start_server_phase(const std::shared_ptr<Task>& task) {
  SCALPEL_REQUIRE(task->server >= 0, "offloaded task lost its server");
  // The server may have crashed while the upload or rtt was in progress.
  if (!server_up_[static_cast<std::size_t>(task->server)]) {
    handle_fault(task);
    return;
  }
  task->upload_done = now_;
  if (task->phases.server_time <= 0.0) {
    complete(task, now_);
    return;
  }
  auto& cd = *devices_[static_cast<std::size_t>(task->device)];
  if (deadline_expired(task, task->phases.server_time)) {
    shed(task, now_, true);
    return;
  }
  if (cd.serving) {
    if (enqueue_bounded(cd.server_queue, task,
                        options_.overload.server_queue_limit)) {
      tracer_.record(now_, task->id, task->device, task->server,
                     TraceEventType::kEnqueue,
                     static_cast<std::uint8_t>(TraceStage::kServer));
    }
    return;
  }
  cd.serving = true;
  begin_server_job(task);
}

void Simulator::advance_server_queue(DeviceId dev) {
  auto& cd = *devices_[static_cast<std::size_t>(dev)];
  if (cd.server_queue.empty()) {
    cd.serving = false;
    return;
  }
  auto next = cd.server_queue.front();
  cd.server_queue.pop_front();
  tracer_.record(now_, next->id, next->device, next->server,
                 TraceEventType::kDispatch,
                 static_cast<std::uint8_t>(TraceStage::kServer));
  begin_server_job(next);
}

void Simulator::begin_server_job(const std::shared_ptr<Task>& task) {
  if (!server_up_[static_cast<std::size_t>(task->server)]) {
    advance_server_queue(task->device);
    handle_fault(task);
    return;
  }
  // Never start server work whose result is provably past the deadline.
  if (deadline_expired(task, task->phases.server_time)) {
    advance_server_queue(task->device);
    shed(task, now_, true);
    return;
  }
  auto* server = servers_[static_cast<std::size_t>(task->server)].get();
  auto& owner = *devices_[static_cast<std::size_t>(task->device)];
  owner.serving_task = task;
  tracer_.record(now_, task->id, task->device, task->server,
                 TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kServer));
  server->add_job(now_, task->phases.server_time, task->cpu_weight,
                  [this, task](double t) {
                    tracer_.record(t, task->id, task->device, task->server,
                                   TraceEventType::kExecEnd,
                                   static_cast<std::uint8_t>(
                                       TraceStage::kServer));
                    devices_[static_cast<std::size_t>(task->device)]
                        ->serving_task.reset();
                    complete(task, t);
                    advance_server_queue(task->device);
                  });
  arm_fluid(server);
}

void Simulator::on_fault_event(const FaultEvent& ev) {
  if (ev.target == FaultTarget::Server) {
    const auto s = static_cast<std::size_t>(ev.id);
    if (ev.up) {
      if (!server_up_[s]) {
        server_up_[s] = true;
        --down_servers_;
      }
    } else if (server_up_[s]) {
      on_server_down(ev.id);
    }
  } else {
    const auto c = static_cast<std::size_t>(ev.id);
    if (ev.up) {
      if (!link_up_[c]) {
        link_up_[c] = true;
        --down_links_;
      }
    } else if (link_up_[c]) {
      on_link_down(ev.id);
    }
  }
}

void Simulator::on_server_down(ServerId s) {
  server_up_[static_cast<std::size_t>(s)] = false;
  ++down_servers_;
  ctr_server_down_->inc();
  // Every fluid job on this server belongs to a task targeting it; drop them
  // all at once, then fail/resteer the owners.
  servers_[static_cast<std::size_t>(s)]->clear(now_);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto& cd = *devices_[i];
    std::vector<std::shared_ptr<Task>> victims;
    for (auto it = cd.server_queue.begin(); it != cd.server_queue.end();) {
      if ((*it)->server == s) {
        victims.push_back(*it);
        it = cd.server_queue.erase(it);
      } else {
        ++it;
      }
    }
    if (cd.serving_task && cd.serving_task->server == s) {
      victims.insert(victims.begin(), cd.serving_task);
      cd.serving_task.reset();
      advance_server_queue(static_cast<DeviceId>(i));
    }
    for (auto& v : victims) handle_fault(v);
  }
}

void Simulator::on_link_down(CellId c) {
  link_up_[static_cast<std::size_t>(c)] = false;
  ++down_links_;
  ctr_link_down_->inc();
  cell_links_[static_cast<std::size_t>(c)]->clear(now_);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (instance_->topology().device(static_cast<DeviceId>(i)).cell != c) {
      continue;
    }
    auto& cd = *devices_[i];
    std::vector<std::shared_ptr<Task>> victims;
    if (cd.uploading_task) {
      victims.push_back(cd.uploading_task);
      cd.uploading_task.reset();
    }
    for (auto& t : cd.upload_queue) victims.push_back(t);
    cd.upload_queue.clear();
    cd.uploading = false;
    for (auto& v : victims) handle_fault(v);
  }
}

void Simulator::handle_fault(const std::shared_ptr<Task>& task) {
  task->faulted = true;
  switch (options_.faults.policy) {
    case FaultPolicy::Drop:
      fail(task, now_);
      return;
    case FaultPolicy::RetryOnDevice:
      resteer_local(task);
      return;
    case FaultPolicy::RetryOffload: {
      const auto& f = options_.faults;
      if (task->retries >= f.max_retries ||
          now_ + f.retry_backoff - task->arrival > f.retry_timeout) {
        fail(task, now_);
        return;
      }
      ++task->retries;
      ctr_retry_->inc();
      if (task->counted) {
        ++metrics_.per_device[static_cast<std::size_t>(task->device)].retries;
      }
      tracer_.record(now_, task->id, task->device, task->server,
                     TraceEventType::kRetry,
                     static_cast<std::uint8_t>(
                         std::min<std::size_t>(task->retries, 255)));
      schedule(now_ + f.retry_backoff, [this, task] { redispatch(task); });
      return;
    }
  }
}

void Simulator::resteer_local(const std::shared_ptr<Task>& task) {
  auto& cd = *devices_[static_cast<std::size_t>(task->device)];
  // Re-execute the whole task on the device under the device-only variant of
  // its plan (the partial server-side work is lost with the server).
  PlanModel* fb = cd.fallback ? cd.fallback.get() : cd.plan.get();
  task->phases = fb->phases_for(task->difficulty);
  task->server = -1;
  task->rtt = 0.0;
  task->bw_weight = 0.0;
  task->cpu_weight = 0.0;
  const double start = std::max(now_, cd.busy_until);
  if (deadline_expired(task, (start - now_) + task->phases.device_time)) {
    shed(task, now_, true);
    return;
  }
  ctr_resteer_->inc();
  if (task->counted) {
    ++metrics_.per_device[static_cast<std::size_t>(task->device)].resteered;
  }
  tracer_.record(now_, task->id, task->device, -1, TraceEventType::kResteer);
  ++cd.device_backlog;
  cd.busy_until = start + task->phases.device_time;
  tracer_.record(start, task->id, task->device, -1, TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  schedule(cd.busy_until, [this, task] { finish_device_phase(task); });
}

void Simulator::redispatch(const std::shared_ptr<Task>& task) {
  // Re-enter the pipeline end-to-end under the device's *current* plan — by
  // now an online controller may have re-solved around the failure. If the
  // plan no longer offloads, this degenerates to a device re-execution.
  auto& cd = *devices_[static_cast<std::size_t>(task->device)];
  task->phases = cd.plan->phases_for(task->difficulty);
  task->server = cd.server;
  task->rtt = cd.rtt;
  task->bw_weight = cd.bandwidth;
  task->cpu_weight = cd.share;
  const double start = std::max(now_, cd.busy_until);
  double best_case = (start - now_) + task->phases.device_time;
  if (task->phases.offloaded) best_case += best_case_offload_remaining(task);
  if (deadline_expired(task, best_case)) {
    shed(task, now_, true);
    return;
  }
  ++cd.device_backlog;
  cd.busy_until = start + task->phases.device_time;
  tracer_.record(start, task->id, task->device, -1, TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  schedule(cd.busy_until, [this, task] { finish_device_phase(task); });
}

void Simulator::shed(const std::shared_ptr<Task>& task, double now,
                     bool expired) {
  settle_in_flight(now);
  --in_flight_;
  (expired ? ctr_expired_ : ctr_shed_)->inc();
  ++window_shed_;
  tracer_.record(now, task->id, task->device, task->server,
                 expired ? TraceEventType::kExpire : TraceEventType::kShed);
  if (!task->counted) return;
  auto& dm = metrics_.per_device[static_cast<std::size_t>(task->device)];
  if (expired) {
    ++dm.expired;
  } else {
    ++dm.shed;
  }
  // A shed deadline-bearing task is a miss — overload protection must never
  // look better than the overload it protects against.
  const auto& device = instance_->topology().device(task->device);
  if (device.deadline > 0.0) ++dm.deadline_total;
}

void Simulator::fail(const std::shared_ptr<Task>& task, double now) {
  settle_in_flight(now);
  --in_flight_;
  ctr_failed_->inc();
  tracer_.record(now, task->id, task->device, task->server,
                 TraceEventType::kFail);
  if (!task->counted) return;
  auto& dm = metrics_.per_device[static_cast<std::size_t>(task->device)];
  ++dm.failed;
  // A dropped deadline-bearing task is a miss, not a statistical no-show —
  // otherwise shedding load would inflate deadline satisfaction.
  const auto& device = instance_->topology().device(task->device);
  if (device.deadline > 0.0) ++dm.deadline_total;
}

void Simulator::complete(const std::shared_ptr<Task>& task, double now) {
  settle_in_flight(now);
  --in_flight_;
  ++window_completions_;
  window_accuracy_sum_ += task->phases.correct_prob;
  ctr_completed_->inc();
  tracer_.record(now, task->id, task->device, task->server,
                 TraceEventType::kComplete);
  if (!task->counted) return;
  const auto i = static_cast<std::size_t>(task->device);
  auto& dm = metrics_.per_device[i];
  const double latency = now - task->arrival;
  dm.latency.add(latency);
  hist_latency_->add(latency);
  ++dm.completed;
  if (task->faulted || any_outage()) metrics_.outage_latency.add(latency);
  const auto& device = instance_->topology().device(task->device);
  if (device.deadline > 0.0) {
    ++dm.deadline_total;
    if (latency <= device.deadline) ++dm.deadline_met;
  }
  dm.accuracy_sum += task->phases.correct_prob;
  // Device-side energy: active while computing, transmitting while the
  // upload drains, idling while the server works.
  const double upload_dur =
      task->phases.offloaded ? task->upload_done - task->device_done : 0.0;
  const double idle_dur =
      task->phases.offloaded ? now - task->upload_done : 0.0;
  dm.energy_sum += device.energy.task_energy(task->phases.device_time,
                                             upload_dur, idle_dur);
  if (task->phases.offloaded) ++dm.offloaded;
  const std::size_t slot =
      task->phases.exit_index < 0
          ? 0
          : static_cast<std::size_t>(task->phases.exit_index) + 1;
  if (dm.exit_histogram.size() <= slot) dm.exit_histogram.resize(slot + 1, 0);
  ++dm.exit_histogram[slot];
}

void Simulator::series_tick() {
  // Settle the in-flight integral at the window boundary.
  settle_in_flight(now_);
  metrics_.series.tasks_in_flight.push_back(in_flight_integral_ /
                                            options_.series_window);
  in_flight_integral_ = 0.0;
  metrics_.series.completion_rate.push_back(
      static_cast<double>(window_completions_) / options_.series_window);
  metrics_.series.mean_accuracy.push_back(
      window_completions_
          ? window_accuracy_sum_ / static_cast<double>(window_completions_)
          : 0.0);
  metrics_.series.shed_rate.push_back(static_cast<double>(window_shed_) /
                                      options_.series_window);
  window_completions_ = 0;
  window_accuracy_sum_ = 0.0;
  window_shed_ = 0;
  schedule(now_ + options_.series_window, [this] { series_tick(); });
}

void Simulator::controller_tick() {
  std::vector<double> bw(cell_links_.size());
  for (std::size_t c = 0; c < cell_links_.size(); ++c) {
    bw[c] = cell_links_[c]->capacity();
  }
  // Load signals: offered rate since the last tick plus instantaneous queue
  // depth across the device's whole pipeline.
  const double span = std::max(now_ - last_controller_tick_, 1e-12);
  std::vector<double> offered(devices_.size(), 0.0);
  std::vector<double> qdepth(devices_.size(), 0.0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    offered[i] = static_cast<double>(arrivals_since_tick_[i]) / span;
    const auto& cd = *devices_[i];
    qdepth[i] = static_cast<double>(
        cd.device_backlog + cd.upload_queue.size() +
        (cd.uploading_task ? 1 : 0) + cd.server_queue.size() +
        (cd.serving_task ? 1 : 0));
  }
  ControlAction action = controller_(now_, bw, server_up_, offered, qdepth);
  if (action.decision) apply_decision(*action.decision);
  if (action.admit_fraction) set_admission(*action.admit_fraction);
  arrivals_since_tick_.assign(devices_.size(), 0);
  last_controller_tick_ = now_;
  schedule(now_ + options_.control_interval, [this] { controller_tick(); });
}

void Simulator::arm_fluid(FluidResource* resource) {
  const double t = resource->next_completion();
  if (!std::isfinite(t)) return;
  const auto epoch = resource->epoch();
  // Fluid completions may land beyond the horizon; in-flight tasks are
  // simply abandoned there.
  schedule(std::max(t, now_), [this, resource, epoch] {
    if (resource->epoch() != epoch) return;  // stale wake-up
    resource->complete_due(now_);
    arm_fluid(resource);
  });
}

SimMetrics Simulator::run() {
  const auto& topo = instance_->topology();

  // Fault-schedule transitions are scheduled first so a crash at time t
  // precedes any arrival at the same timestamp.
  for (const auto& ev : options_.faults.schedule.events()) {
    schedule(ev.time, [this, ev] { on_fault_event(ev); });
  }
  // Seed arrivals.
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    const auto dev = static_cast<DeviceId>(i);
    const double first =
        rngs_[i]->exponential(topo.device(dev).arrival_rate);
    schedule(first, [this, dev] { on_arrival(dev); });
  }
  // Bandwidth trace change-points.
  for (std::size_t c = 0; c < traces_.size(); ++c) {
    if (!traces_[c]) continue;
    auto* link = cell_links_[c].get();
    for (const auto& seg : traces_[c]->segments()) {
      if (seg.start <= 0.0) {
        link->set_capacity(0.0, seg.bandwidth);
        continue;
      }
      const double bw = seg.bandwidth;
      schedule(seg.start, [this, link, bw] {
        link->set_capacity(now_, bw);
        arm_fluid(link);
      });
    }
  }
  // Controller ticks.
  if (controller_) {
    schedule(options_.control_interval, [this] { controller_tick(); });
  }
  // Time-series sampling.
  if (options_.series_window > 0.0) {
    metrics_.series.window = options_.series_window;
    schedule(options_.series_window, [this] { series_tick(); });
  }

  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    SCALPEL_REQUIRE(ev.time >= now_ - 1e-9, "event time went backwards");
    now_ = std::max(now_, ev.time);
    if (now_ > options_.horizon) break;
    set_log_sim_time(now_);  // log lines carry the event-loop clock
    ev.fn();
  }
  clear_log_sim_time();

  // Aggregate. The whole-run conservation fields come straight from the
  // registry counters — the registry is the single source of truth for
  // event counts; SimMetrics is the reporting view.
  metrics_.horizon = options_.horizon;
  metrics_.completed_all = ctr_completed_->value();
  metrics_.failed_all = ctr_failed_->value();
  metrics_.shed_all = ctr_shed_->value() + ctr_expired_->value();
  metrics_.in_flight_end = static_cast<std::size_t>(std::max<std::int64_t>(
      0, in_flight_));
  std::size_t deadline_met = 0;
  std::size_t deadline_total = 0;
  double acc_sum = 0.0;
  double energy_sum = 0.0;
  std::size_t offloaded = 0;
  for (const auto& dm : metrics_.per_device) {
    metrics_.arrived += dm.arrived;
    metrics_.completed += dm.completed;
    metrics_.failed += dm.failed;
    metrics_.shed += dm.shed;
    metrics_.expired += dm.expired;
    metrics_.retried += dm.retries;
    metrics_.resteered += dm.resteered;
    for (double v : dm.latency.values()) metrics_.latency.add(v);
    deadline_met += dm.deadline_met;
    deadline_total += dm.deadline_total;
    acc_sum += dm.accuracy_sum;
    energy_sum += dm.energy_sum;
    offloaded += dm.offloaded;
  }
  metrics_.deadline_satisfaction =
      deadline_total ? static_cast<double>(deadline_met) /
                           static_cast<double>(deadline_total)
                     : 1.0;
  metrics_.measured_accuracy =
      metrics_.completed ? acc_sum / static_cast<double>(metrics_.completed)
                         : 0.0;
  metrics_.mean_task_energy =
      metrics_.completed ? energy_sum / static_cast<double>(metrics_.completed)
                         : 0.0;
  metrics_.offload_fraction =
      metrics_.completed
          ? static_cast<double>(offloaded) /
                static_cast<double>(metrics_.completed)
          : 0.0;
  for (const auto& s : servers_) {
    metrics_.server_utilization.push_back(
        s->busy_time(std::min(now_, options_.horizon)) / options_.horizon);
  }
  if (!options_.faults.schedule.empty() && !servers_.empty()) {
    double avail = 0.0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      avail += options_.faults.schedule.server_availability(
          static_cast<std::int32_t>(s), options_.horizon);
    }
    metrics_.availability = avail / static_cast<double>(servers_.size());
  }
  registry_.gauge("sim.task.in_flight_end")
      .set(static_cast<double>(metrics_.in_flight_end));
  registry_.gauge("sim.availability").set(metrics_.availability);
  registry_.gauge("sim.horizon_seconds").set(options_.horizon);
  // Whole-run conservation: every arrival is accounted for exactly once.
  SCALPEL_REQUIRE(metrics_.arrived == metrics_.completed_all +
                                          metrics_.failed_all +
                                          metrics_.shed_all +
                                          metrics_.in_flight_end,
                  "task conservation violated");
  return metrics_;
}

}  // namespace scalpel
