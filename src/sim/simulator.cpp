#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "core/objective.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "surgery/plan.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace scalpel {
namespace {

// FluidSink tag layout: stage in the top bit, task index below. Stage 0 is
// an uplink transfer, stage 1 a server execution.
constexpr std::uint64_t kServerStageBit = 1ull << 32;

inline std::uint64_t upload_tag(TaskIndex t) { return t; }
inline std::uint64_t server_tag(TaskIndex t) { return kServerStageBit | t; }

// Substream tag for the telemetry channel's RNG, derived from the run seed
// with Rng::substream_seed — NOT drawn from the master stream, so attaching
// a channel never perturbs the device/admission streams (shared verbatim
// with ShardedSimulator; the channel streams must match bit-for-bit).
constexpr std::uint64_t kTelemetryStreamTag = 0x54454c454d455452ull;  // "TELEMETR"

}  // namespace

std::unique_ptr<TelemetryChannel> make_telemetry_channel(
    const TelemetryChannelOptions& opts, const ClusterTopology& topo,
    std::uint64_t seed) {
  if (opts.pass_through()) return nullptr;
  std::vector<double> initial_bw;
  for (const auto& c : topo.cells()) initial_bw.push_back(c.bandwidth);
  return std::make_unique<TelemetryChannel>(
      opts, std::move(initial_bw), topo.servers().size(),
      Rng::substream_seed(seed, kTelemetryStreamTag));
}

Simulator::Simulator(const ProblemInstance& instance, Decision decision,
                     Options options)
    : instance_(&instance), decision_(std::move(decision)),
      options_(std::move(options)), events_(options_.event_queue) {
  SCALPEL_REQUIRE(options_.horizon > 0.0, "horizon must be positive");
  SCALPEL_REQUIRE(options_.warmup >= 0.0 && options_.warmup < options_.horizon,
                  "warmup must lie inside the horizon");
  SCALPEL_REQUIRE(options_.faults.retry_backoff > 0.0 &&
                      options_.faults.retry_timeout > 0.0,
                  "fault retry backoff/timeout must be positive");
  const auto& topo = instance_->topology();
  SCALPEL_REQUIRE(decision_.per_device.size() == topo.devices().size(),
                  "decision must cover every device");
  for (const auto& ev : options_.faults.schedule.events()) {
    const auto limit = ev.target == FaultTarget::Server
                           ? topo.servers().size()
                           : topo.cells().size();
    SCALPEL_REQUIRE(ev.id >= 0 && static_cast<std::size_t>(ev.id) < limit,
                    "fault event targets an unknown server/cell");
  }

  for (const auto& rb : options_.rate_bursts) {
    SCALPEL_REQUIRE(rb.factor > 0.0 && rb.start >= 0.0 && rb.end >= rb.start,
                    "rate burst needs a positive factor and an ordered window");
  }

  Rng master(options_.seed);
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    rngs_.push_back(std::make_unique<Rng>(master.next_u64()));
    devices_.push_back(std::make_unique<CompiledDevice>());
  }
  // Admission-gate streams are drawn *after* every device stream so a gated
  // run sees the identical arrival/difficulty realizations as an ungated one.
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    admit_rngs_.push_back(std::make_unique<Rng>(master.next_u64()));
  }
  arrivals_since_tick_.assign(topo.devices().size(), 0);
  for (const auto& cell : topo.cells()) {
    cell_links_.push_back(std::make_unique<FluidResource>(cell.bandwidth));
    traces_.push_back(std::nullopt);
  }
  for (std::size_t j = 0; j < topo.servers().size(); ++j) {
    servers_.push_back(std::make_unique<FluidResource>(1.0));
  }
  for (auto& l : cell_links_) fluids_.push_back(l.get());
  for (auto& s : servers_) fluids_.push_back(s.get());
  server_up_.assign(topo.servers().size(), true);
  link_up_.assign(topo.cells().size(), true);
  channel_ = make_telemetry_channel(options_.telemetry, topo, options_.seed);
  apply_decision(decision_);
  metrics_.per_device.resize(topo.devices().size());
  // Pool warm start: enough slots for every device to have a handful of
  // tasks in flight before the first growth stalls the inner loop.
  tasks_.reserve(topo.devices().size() * 8);

  // Observability wiring: the tracer ring is preallocated here so record()
  // never allocates, and every registry handle is resolved once (metric
  // names are listed in README "Observability").
  tracer_.reset(options_.trace_capacity);
  ctr_arrived_ = &registry_.counter("sim.task.arrived");
  ctr_completed_ = &registry_.counter("sim.task.completed");
  ctr_failed_ = &registry_.counter("sim.task.failed");
  ctr_shed_ = &registry_.counter("sim.task.shed");
  ctr_expired_ = &registry_.counter("sim.task.expired");
  ctr_retry_ = &registry_.counter("sim.task.retry");
  ctr_resteer_ = &registry_.counter("sim.task.resteer");
  ctr_gate_refused_ = &registry_.counter("sim.gate.refused");
  ctr_server_down_ = &registry_.counter("sim.fault.server_down");
  ctr_link_down_ = &registry_.counter("sim.fault.link_down");
  ctr_deadline_met_ = &registry_.counter("sim.task.deadline_met");
  ctr_deadline_total_ = &registry_.counter("sim.task.deadline_total");
  hist_latency_ = &registry_.histogram("sim.task.latency_seconds", 0.0,
                                       10.0, 200);
}

Simulator::~Simulator() = default;

void Simulator::set_cell_trace(CellId cell, BandwidthTrace trace) {
  SCALPEL_REQUIRE(cell >= 0 &&
                      static_cast<std::size_t>(cell) < traces_.size(),
                  "cell id out of range");
  traces_[static_cast<std::size_t>(cell)] = std::move(trace);
}

void Simulator::set_controller(Controller controller) {
  set_controller(RichController(
      [inner = std::move(controller)](
          double now, const std::vector<double>& bw,
          const std::vector<bool>& alive, const std::vector<double>&,
          const std::vector<double>&) {
        ControlAction action;
        action.decision = inner(now, bw, alive);
        return action;
      }));
}

void Simulator::set_controller(RichController controller) {
  set_controller(ObservingController(
      [inner = std::move(controller)](const Observation& o) {
        return inner(o.time, o.cell_bandwidth, o.server_alive, o.offered_rate,
                     o.queue_depth);
      }));
}

void Simulator::set_controller(ObservingController controller) {
  SCALPEL_REQUIRE(options_.control_interval > 0.0,
                  "controller needs control_interval > 0");
  controller_ = std::move(controller);
}

void Simulator::set_admission(std::vector<double> fraction) {
  if (!fraction.empty()) {
    SCALPEL_REQUIRE(fraction.size() == devices_.size(),
                    "admission gate must cover every device");
    for (double f : fraction) {
      SCALPEL_REQUIRE(f >= 0.0 && f <= 1.0,
                      "admission fraction must be in [0, 1]");
    }
  }
  admit_fraction_ = std::move(fraction);
}

void Simulator::schedule(double t, EvKind kind, std::int32_t a,
                         std::uint64_t b) {
  if (t > options_.horizon) return;
  events_.push(t, static_cast<std::uint32_t>(kind), a, b);
}

void Simulator::compile_device(DeviceId dev) {
  const auto i = static_cast<std::size_t>(dev);
  compile_device_decision(*instance_, dev, decision_.per_device[i],
                          *devices_[i], /*cache=*/nullptr);
}

void Simulator::apply_decision(const Decision& decision) {
  SCALPEL_REQUIRE(
      decision.per_device.size() == instance_->topology().devices().size(),
      "decision must cover every device");
  decision_ = decision;
  for (std::size_t i = 0; i < decision_.per_device.size(); ++i) {
    compile_device(static_cast<DeviceId>(i));
  }
}

void Simulator::settle_in_flight(double now) {
  in_flight_integral_ += static_cast<double>(in_flight_) *
                         (now - in_flight_last_t_);
  in_flight_last_t_ = now;
}

double Simulator::burst_multiplier() const {
  double factor = 1.0;
  for (const auto& rb : options_.rate_bursts) {
    if (now_ >= rb.start && now_ < rb.end) factor *= rb.factor;
  }
  return factor;
}

bool Simulator::deadline_expired(TaskIndex task,
                                 double best_case_remaining) const {
  if (options_.overload.policy != OverloadPolicy::ShedExpired) return false;
  const double deadline =
      instance_->topology().device(tasks_.device[task]).deadline;
  if (deadline <= 0.0) return false;  // best effort never expires
  return now_ + best_case_remaining >
         tasks_.arrival[task] + deadline + 1e-12;
}

double Simulator::best_case_offload_remaining(TaskIndex task) const {
  // Most optimistic rest-of-pipeline time: the whole cell uplink to itself,
  // no queueing anywhere, the server at full capacity. Only a task late even
  // under these assumptions is *provably* late.
  const auto& device = instance_->topology().device(tasks_.device[task]);
  const double cap =
      cell_links_[static_cast<std::size_t>(device.cell)]->capacity();
  const double upload =
      cap > 0.0
          ? static_cast<double>(tasks_.phases[task].upload_bytes) / cap
          : 0.0;
  return upload + tasks_.rtt[task] + tasks_.phases[task].server_time;
}

bool Simulator::enqueue_bounded(IndexDeque& queue, TaskIndex task,
                                std::size_t limit, bool server_stage) {
  if (limit == 0 || queue.size() < limit) {
    queue.push_back(task);
    return true;
  }
  auto remaining = [&](TaskIndex t) {
    return server_stage ? tasks_.phases[t].server_time
                        : best_case_offload_remaining(t);
  };
  switch (options_.overload.policy) {
    case OverloadPolicy::Block:
      // Blocked-calls-cleared: the entrant is refused.
      shed(task, now_, false);
      return false;
    case OverloadPolicy::ShedExpired:
      // Prefer sacrificing a task that is already provably late.
      for (std::size_t pos = 0; pos < queue.size(); ++pos) {
        const TaskIndex t = queue.at(pos);
        if (deadline_expired(t, remaining(t))) {
          queue.erase_at(pos);
          shed(t, now_, true);
          queue.push_back(task);
          return true;
        }
      }
      [[fallthrough]];
    case OverloadPolicy::ShedNewest: {
      // Shed the youngest task by arrival time, preserving the work already
      // invested in older ones (retried/resteered tasks reorder queues, so
      // the entrant is not always the youngest).
      std::size_t youngest = 0;
      for (std::size_t pos = 0; pos < queue.size(); ++pos) {
        if (tasks_.arrival[queue.at(pos)] >
            tasks_.arrival[queue.at(youngest)]) {
          youngest = pos;
        }
      }
      if (tasks_.arrival[queue.at(youngest)] > tasks_.arrival[task]) {
        const TaskIndex victim = queue.at(youngest);
        queue.erase_at(youngest);
        shed(victim, now_, false);
        queue.push_back(task);
        return true;
      }
      shed(task, now_, false);
      return false;
    }
  }
  return false;  // unreachable
}

void Simulator::on_arrival(DeviceId dev) {
  const auto i = static_cast<std::size_t>(dev);
  const auto& device = instance_->topology().device(dev);
  auto& rng = *rngs_[i];

  auto& cd = *devices_[i];

  // Schedule the next arrival first (Poisson, or Markov-modulated when
  // burstiness is configured; scripted bursts scale the rate directly).
  double rate = device.arrival_rate * burst_multiplier();
  if (options_.burst_factor > 0.0) {
    SCALPEL_REQUIRE(options_.burst_factor < 1.0,
                    "burst_factor must be in [0, 1)");
    while (now_ >= cd.burst_state_until) {
      cd.burst_high = !cd.burst_high;
      cd.burst_state_until = std::max(now_, cd.burst_state_until) +
                             rng.exponential(1.0 / options_.burst_hold);
    }
    rate *= cd.burst_high ? (1.0 + options_.burst_factor)
                          : (1.0 - options_.burst_factor);
  }
  const double next = now_ + rng.exponential(rate);
  schedule(next, EvKind::kArrival, dev);
  const TaskIndex task = tasks_.acquire();
  tasks_.id[task] = make_task_id(dev, cd.arrival_seq++);
  tasks_.device[task] = dev;
  tasks_.arrival[task] = now_;
  if (now_ >= options_.warmup) tasks_.flags[task] |= TaskPool::kCounted;
  tasks_.difficulty[task] = device.difficulty.sample(rng);
  tasks_.phases[task] = cd.plan->phases_for(tasks_.difficulty[task]);
  tasks_.server[task] = cd.server;
  tasks_.rtt[task] = cd.rtt;
  tasks_.bw_weight[task] = cd.bandwidth;
  tasks_.cpu_weight[task] = cd.share;

  ++metrics_.per_device[i].arrived;
  ctr_arrived_->inc();
  ++arrivals_since_tick_[i];
  settle_in_flight(now_);
  ++in_flight_;
  tracer_.record(now_, tasks_.id[task], dev, tasks_.server[task],
                 TraceEventType::kArrive);

  // Runtime admission gate: a refused arrival is shed before consuming any
  // device time (its difficulty draw above keeps the RNG streams aligned
  // with an ungated run; the coin comes from a dedicated stream).
  if (!admit_fraction_.empty() &&
      admit_rngs_[i]->uniform() > admit_fraction_[i]) {
    ctr_gate_refused_->inc();
    shed(task, now_, false);
    return;
  }

  // FCFS device queue with deterministic service: the finish time is known
  // at arrival.
  const double start = std::max(now_, cd.busy_until);

  // Deadline expiry at the door: the device wait is exact and the offload
  // remainder is bounded below, so lateness here is provable (ShedExpired).
  double best_case = (start - now_) + tasks_.phases[task].device_time;
  if (tasks_.phases[task].offloaded) {
    best_case += best_case_offload_remaining(task);
  }
  if (deadline_expired(task, best_case)) {
    shed(task, now_, true);
    return;
  }

  // Bounded device stage. Its schedule is committed at enqueue (events
  // already posted), so every policy refuses the entrant here — which at
  // arrival time is always the youngest task anyway.
  const std::size_t limit = options_.overload.device_queue_limit;
  if (limit > 0 && cd.device_backlog >= limit) {
    shed(task, now_, false);
    return;
  }
  ++cd.device_backlog;
  tracer_.record(now_, tasks_.id[task], dev, -1, TraceEventType::kEnqueue,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  // The device stage schedule is committed here, so the exec-start stamp is
  // known now even though it may lie in the future.
  tracer_.record(start, tasks_.id[task], dev, -1, TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  const double finish = start + tasks_.phases[task].device_time;
  cd.busy_until = finish;
  schedule(finish, EvKind::kDeviceDone, -1, task);
}

void Simulator::finish_device_phase(TaskIndex task) {
  auto& cd = *devices_[static_cast<std::size_t>(tasks_.device[task])];
  if (cd.device_backlog > 0) --cd.device_backlog;
  tasks_.device_done[task] = now_;
  tracer_.record(now_, tasks_.id[task], tasks_.device[task], -1,
                 TraceEventType::kExecEnd,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  if (!tasks_.phases[task].offloaded) {
    complete(task, now_);
    return;
  }
  start_upload(task);
}

void Simulator::start_upload(TaskIndex task) {
  auto& cd = *devices_[static_cast<std::size_t>(tasks_.device[task])];
  if (deadline_expired(task, best_case_offload_remaining(task))) {
    shed(task, now_, true);
    return;
  }
  if (cd.uploading) {
    if (enqueue_bounded(cd.upload_queue, task,
                        options_.overload.upload_queue_limit, false)) {
      tracer_.record(now_, tasks_.id[task], tasks_.device[task],
                     tasks_.server[task], TraceEventType::kEnqueue,
                     static_cast<std::uint8_t>(TraceStage::kUpload));
    }
    return;
  }
  cd.uploading = true;
  begin_upload_job(task);
}

void Simulator::advance_upload_queue(DeviceId dev) {
  auto& cd = *devices_[static_cast<std::size_t>(dev)];
  if (cd.upload_queue.empty()) {
    cd.uploading = false;
    return;
  }
  const TaskIndex next = cd.upload_queue.pop_front();
  tracer_.record(now_, tasks_.id[next], tasks_.device[next],
                 tasks_.server[next], TraceEventType::kDispatch,
                 static_cast<std::uint8_t>(TraceStage::kUpload));
  begin_upload_job(next);
}

void Simulator::begin_upload_job(TaskIndex task) {
  const auto& device = instance_->topology().device(tasks_.device[task]);
  const auto cell = static_cast<std::size_t>(device.cell);
  // A dead link or dead target server fails the transfer before it starts.
  if (!link_up_[cell] ||
      !server_up_[static_cast<std::size_t>(tasks_.server[task])]) {
    advance_upload_queue(tasks_.device[task]);
    handle_fault(task);
    return;
  }
  // A task that queued past its provable deadline is dropped before it
  // occupies the uplink slot (ShedExpired).
  if (deadline_expired(task, best_case_offload_remaining(task))) {
    advance_upload_queue(tasks_.device[task]);
    shed(task, now_, true);
    return;
  }
  auto* link = cell_links_[cell].get();
  auto& owner = *devices_[static_cast<std::size_t>(tasks_.device[task])];
  owner.uploading_task = task;
  tracer_.record(now_, tasks_.id[task], tasks_.device[task],
                 tasks_.server[task], TraceEventType::kUploadStart);
  link->add_job(now_, static_cast<double>(tasks_.phases[task].upload_bytes),
                tasks_.bw_weight[task], upload_tag(task));
  arm_fluid(cell);
}

void Simulator::start_server_phase(TaskIndex task) {
  SCALPEL_REQUIRE(tasks_.server[task] >= 0, "offloaded task lost its server");
  // The server may have crashed while the upload or rtt was in progress.
  if (!server_up_[static_cast<std::size_t>(tasks_.server[task])]) {
    handle_fault(task);
    return;
  }
  tasks_.upload_done[task] = now_;
  if (tasks_.phases[task].server_time <= 0.0) {
    complete(task, now_);
    return;
  }
  auto& cd = *devices_[static_cast<std::size_t>(tasks_.device[task])];
  if (deadline_expired(task, tasks_.phases[task].server_time)) {
    shed(task, now_, true);
    return;
  }
  auto& chain = cd.chain_for(tasks_.server[task]);
  if (chain.serving) {
    if (enqueue_bounded(chain.queue, task,
                        options_.overload.server_queue_limit, true)) {
      tracer_.record(now_, tasks_.id[task], tasks_.device[task],
                     tasks_.server[task], TraceEventType::kEnqueue,
                     static_cast<std::uint8_t>(TraceStage::kServer));
    }
    return;
  }
  chain.serving = true;
  begin_server_job(task);
}

void Simulator::advance_server_chain(DeviceId dev, ServerId server) {
  auto& cd = *devices_[static_cast<std::size_t>(dev)];
  auto& chain = cd.chain_for(server);
  if (chain.queue.empty()) {
    chain.serving = false;
    return;
  }
  const TaskIndex next = chain.queue.pop_front();
  tracer_.record(now_, tasks_.id[next], tasks_.device[next],
                 tasks_.server[next], TraceEventType::kDispatch,
                 static_cast<std::uint8_t>(TraceStage::kServer));
  begin_server_job(next);
}

void Simulator::begin_server_job(TaskIndex task) {
  if (!server_up_[static_cast<std::size_t>(tasks_.server[task])]) {
    advance_server_chain(tasks_.device[task], tasks_.server[task]);
    handle_fault(task);
    return;
  }
  // Never start server work whose result is provably past the deadline.
  if (deadline_expired(task, tasks_.phases[task].server_time)) {
    advance_server_chain(tasks_.device[task], tasks_.server[task]);
    shed(task, now_, true);
    return;
  }
  const auto srv = static_cast<std::size_t>(tasks_.server[task]);
  auto* server = servers_[srv].get();
  auto& owner =
      devices_[static_cast<std::size_t>(tasks_.device[task])]->chain_for(
          tasks_.server[task]);
  owner.serving_task = task;
  tracer_.record(now_, tasks_.id[task], tasks_.device[task],
                 tasks_.server[task], TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kServer));
  server->add_job(now_, tasks_.phases[task].server_time,
                  tasks_.cpu_weight[task], server_tag(task));
  arm_fluid(cell_links_.size() + srv);
}

void Simulator::fluid_job_done(std::uint64_t tag, double now) {
  const TaskIndex task = static_cast<TaskIndex>(tag & 0xffffffffu);
  if ((tag & kServerStageBit) == 0) {
    // Uplink transfer drained.
    tracer_.record(now, tasks_.id[task], tasks_.device[task],
                   tasks_.server[task], TraceEventType::kUploadEnd);
    // Propagation/setup delay after the transfer drains.
    schedule(now + tasks_.rtt[task], EvKind::kServerArrive, -1, task);
    // Head-of-line advance for this device's upload stream.
    const DeviceId dev = tasks_.device[task];
    devices_[static_cast<std::size_t>(dev)]->uploading_task = kNoTask;
    advance_upload_queue(dev);
    return;
  }
  // Server execution finished.
  tracer_.record(now, tasks_.id[task], tasks_.device[task],
                 tasks_.server[task], TraceEventType::kExecEnd,
                 static_cast<std::uint8_t>(TraceStage::kServer));
  const DeviceId dev = tasks_.device[task];
  const ServerId srv = tasks_.server[task];
  devices_[static_cast<std::size_t>(dev)]->chain_for(srv).serving_task =
      kNoTask;
  complete(task, now);  // releases the pool slot; read fields before this
  advance_server_chain(dev, srv);
}

void Simulator::on_fault_event(const FaultEvent& ev) {
  if (ev.target == FaultTarget::Server) {
    const auto s = static_cast<std::size_t>(ev.id);
    if (ev.up) {
      if (!server_up_[s]) {
        server_up_[s] = true;
        --down_servers_;
      }
    } else if (server_up_[s]) {
      on_server_down(ev.id);
    }
  } else {
    const auto c = static_cast<std::size_t>(ev.id);
    if (ev.up) {
      if (!link_up_[c]) {
        link_up_[c] = true;
        --down_links_;
      }
    } else if (link_up_[c]) {
      on_link_down(ev.id);
    }
  }
}

void Simulator::on_server_down(ServerId s) {
  server_up_[static_cast<std::size_t>(s)] = false;
  ++down_servers_;
  ctr_server_down_->inc();
  // Every fluid job on this server belongs to a task targeting it; drop them
  // all at once, then fail/resteer the owners.
  servers_[static_cast<std::size_t>(s)]->clear(now_);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    ServerChain* chain = devices_[i]->find_chain(s);
    if (chain == nullptr) continue;
    // Every task in this (device, server) chain targets the dead server:
    // the one in service first (it lost real progress), then the queue in
    // FIFO order. The chain goes idle — nothing is left to advance to.
    std::vector<TaskIndex> victims;
    if (chain->serving_task != kNoTask) {
      victims.push_back(chain->serving_task);
      chain->serving_task = kNoTask;
    }
    while (!chain->queue.empty()) victims.push_back(chain->queue.pop_front());
    chain->serving = false;
    for (TaskIndex v : victims) handle_fault(v);
  }
}

void Simulator::on_link_down(CellId c) {
  link_up_[static_cast<std::size_t>(c)] = false;
  ++down_links_;
  ctr_link_down_->inc();
  cell_links_[static_cast<std::size_t>(c)]->clear(now_);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (instance_->topology().device(static_cast<DeviceId>(i)).cell != c) {
      continue;
    }
    auto& cd = *devices_[i];
    std::vector<TaskIndex> victims;
    if (cd.uploading_task != kNoTask) {
      victims.push_back(cd.uploading_task);
      cd.uploading_task = kNoTask;
    }
    for (std::size_t pos = 0; pos < cd.upload_queue.size(); ++pos) {
      victims.push_back(cd.upload_queue.at(pos));
    }
    cd.upload_queue.clear();
    cd.uploading = false;
    for (TaskIndex v : victims) handle_fault(v);
  }
}

void Simulator::handle_fault(TaskIndex task) {
  tasks_.flags[task] |= TaskPool::kFaulted;
  switch (options_.faults.policy) {
    case FaultPolicy::Drop:
      fail(task, now_);
      return;
    case FaultPolicy::RetryOnDevice:
      resteer_local(task);
      return;
    case FaultPolicy::RetryOffload: {
      const auto& f = options_.faults;
      if (tasks_.retries[task] >= f.max_retries ||
          now_ + f.retry_backoff - tasks_.arrival[task] > f.retry_timeout) {
        fail(task, now_);
        return;
      }
      ++tasks_.retries[task];
      ctr_retry_->inc();
      if (tasks_.counted(task)) {
        ++metrics_.per_device[static_cast<std::size_t>(tasks_.device[task])]
              .retries;
      }
      tracer_.record(now_, tasks_.id[task], tasks_.device[task],
                     tasks_.server[task], TraceEventType::kRetry,
                     static_cast<std::uint8_t>(
                         std::min<std::size_t>(tasks_.retries[task], 255)));
      schedule(now_ + f.retry_backoff, EvKind::kRedispatch, -1, task);
      return;
    }
  }
}

void Simulator::resteer_local(TaskIndex task) {
  auto& cd = *devices_[static_cast<std::size_t>(tasks_.device[task])];
  // Re-execute the whole task on the device under the device-only variant of
  // its plan (the partial server-side work is lost with the server).
  const PlanModel* fb = cd.fallback ? cd.fallback.get() : cd.plan.get();
  tasks_.phases[task] = fb->phases_for(tasks_.difficulty[task]);
  tasks_.server[task] = -1;
  tasks_.rtt[task] = 0.0;
  tasks_.bw_weight[task] = 0.0;
  tasks_.cpu_weight[task] = 0.0;
  const double start = std::max(now_, cd.busy_until);
  if (deadline_expired(task,
                       (start - now_) + tasks_.phases[task].device_time)) {
    shed(task, now_, true);
    return;
  }
  ctr_resteer_->inc();
  if (tasks_.counted(task)) {
    ++metrics_.per_device[static_cast<std::size_t>(tasks_.device[task])]
          .resteered;
  }
  tracer_.record(now_, tasks_.id[task], tasks_.device[task], -1,
                 TraceEventType::kResteer);
  ++cd.device_backlog;
  cd.busy_until = start + tasks_.phases[task].device_time;
  tracer_.record(start, tasks_.id[task], tasks_.device[task], -1,
                 TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  schedule(cd.busy_until, EvKind::kDeviceDone, -1, task);
}

void Simulator::redispatch(TaskIndex task) {
  // Re-enter the pipeline end-to-end under the device's *current* plan — by
  // now an online controller may have re-solved around the failure. If the
  // plan no longer offloads, this degenerates to a device re-execution.
  auto& cd = *devices_[static_cast<std::size_t>(tasks_.device[task])];
  tasks_.phases[task] = cd.plan->phases_for(tasks_.difficulty[task]);
  tasks_.server[task] = cd.server;
  tasks_.rtt[task] = cd.rtt;
  tasks_.bw_weight[task] = cd.bandwidth;
  tasks_.cpu_weight[task] = cd.share;
  const double start = std::max(now_, cd.busy_until);
  double best_case = (start - now_) + tasks_.phases[task].device_time;
  if (tasks_.phases[task].offloaded) {
    best_case += best_case_offload_remaining(task);
  }
  if (deadline_expired(task, best_case)) {
    shed(task, now_, true);
    return;
  }
  ++cd.device_backlog;
  cd.busy_until = start + tasks_.phases[task].device_time;
  tracer_.record(start, tasks_.id[task], tasks_.device[task], -1,
                 TraceEventType::kExecStart,
                 static_cast<std::uint8_t>(TraceStage::kDevice));
  schedule(cd.busy_until, EvKind::kDeviceDone, -1, task);
}

void Simulator::shed(TaskIndex task, double now, bool expired) {
  settle_in_flight(now);
  --in_flight_;
  (expired ? ctr_expired_ : ctr_shed_)->inc();
  ++window_shed_;
  tracer_.record(now, tasks_.id[task], tasks_.device[task],
                 tasks_.server[task],
                 expired ? TraceEventType::kExpire : TraceEventType::kShed);
  if (!tasks_.counted(task)) {
    tasks_.release(task);
    return;
  }
  auto& dm = metrics_.per_device[static_cast<std::size_t>(tasks_.device[task])];
  if (expired) {
    ++dm.expired;
  } else {
    ++dm.shed;
  }
  // A shed deadline-bearing task is a miss — overload protection must never
  // look better than the overload it protects against.
  const auto& device = instance_->topology().device(tasks_.device[task]);
  if (device.deadline > 0.0) {
    ++dm.deadline_total;
    ctr_deadline_total_->inc();
  }
  tasks_.release(task);
}

void Simulator::fail(TaskIndex task, double now) {
  settle_in_flight(now);
  --in_flight_;
  ctr_failed_->inc();
  tracer_.record(now, tasks_.id[task], tasks_.device[task],
                 tasks_.server[task], TraceEventType::kFail);
  if (!tasks_.counted(task)) {
    tasks_.release(task);
    return;
  }
  auto& dm = metrics_.per_device[static_cast<std::size_t>(tasks_.device[task])];
  ++dm.failed;
  // A dropped deadline-bearing task is a miss, not a statistical no-show —
  // otherwise shedding load would inflate deadline satisfaction.
  const auto& device = instance_->topology().device(tasks_.device[task]);
  if (device.deadline > 0.0) {
    ++dm.deadline_total;
    ctr_deadline_total_->inc();
  }
  tasks_.release(task);
}

void Simulator::complete(TaskIndex task, double now) {
  settle_in_flight(now);
  --in_flight_;
  ++window_completions_;
  window_accuracy_sum_ += tasks_.phases[task].correct_prob;
  ctr_completed_->inc();
  tracer_.record(now, tasks_.id[task], tasks_.device[task],
                 tasks_.server[task], TraceEventType::kComplete);
  if (!tasks_.counted(task)) {
    tasks_.release(task);
    return;
  }
  const auto i = static_cast<std::size_t>(tasks_.device[task]);
  auto& dm = metrics_.per_device[i];
  const double latency = now - tasks_.arrival[task];
  dm.latency.add(latency);
  hist_latency_->add(latency);
  ++dm.completed;
  if (tasks_.faulted(task) || any_outage()) {
    metrics_.outage_latency.add(latency);
  }
  const auto& device = instance_->topology().device(tasks_.device[task]);
  if (device.deadline > 0.0) {
    ++dm.deadline_total;
    ctr_deadline_total_->inc();
    if (latency <= device.deadline) {
      ++dm.deadline_met;
      ctr_deadline_met_->inc();
    }
  }
  const TaskPhases& phases = tasks_.phases[task];
  dm.accuracy_sum += phases.correct_prob;
  // Device-side energy: active while computing, transmitting while the
  // upload drains, idling while the server works.
  const double upload_dur =
      phases.offloaded ? tasks_.upload_done[task] - tasks_.device_done[task]
                       : 0.0;
  const double idle_dur =
      phases.offloaded ? now - tasks_.upload_done[task] : 0.0;
  dm.energy_sum += device.energy.task_energy(phases.device_time, upload_dur,
                                             idle_dur);
  if (phases.offloaded) ++dm.offloaded;
  const std::size_t slot =
      phases.exit_index < 0 ? 0
                            : static_cast<std::size_t>(phases.exit_index) + 1;
  if (dm.exit_histogram.size() <= slot) dm.exit_histogram.resize(slot + 1, 0);
  ++dm.exit_histogram[slot];
  tasks_.release(task);
}

void Simulator::series_tick() {
  // Settle the in-flight integral at the window boundary.
  settle_in_flight(now_);
  metrics_.series.tasks_in_flight.push_back(in_flight_integral_ /
                                            options_.series_window);
  in_flight_integral_ = 0.0;
  metrics_.series.completion_rate.push_back(
      static_cast<double>(window_completions_) / options_.series_window);
  metrics_.series.mean_accuracy.push_back(
      window_completions_
          ? window_accuracy_sum_ / static_cast<double>(window_completions_)
          : 0.0);
  metrics_.series.shed_rate.push_back(static_cast<double>(window_shed_) /
                                      options_.series_window);
  window_completions_ = 0;
  window_accuracy_sum_ = 0.0;
  window_shed_ = 0;
  schedule(now_ + options_.series_window, EvKind::kSeries);
}

void Simulator::controller_tick() {
  Observation o;
  o.time = now_;
  o.cell_bandwidth.resize(cell_links_.size());
  for (std::size_t c = 0; c < cell_links_.size(); ++c) {
    o.cell_bandwidth[c] = cell_links_[c]->capacity();
  }
  o.server_alive = server_up_;
  // Load signals: offered rate since the last tick plus instantaneous queue
  // depth across the device's whole pipeline. These are controller-side
  // estimates, not cluster telemetry — the channel model does not touch them.
  const double span = std::max(now_ - last_controller_tick_, 1e-12);
  o.offered_rate.assign(devices_.size(), 0.0);
  o.queue_depth.assign(devices_.size(), 0.0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    o.offered_rate[i] = static_cast<double>(arrivals_since_tick_[i]) / span;
    const auto& cd = *devices_[i];
    o.queue_depth[i] = static_cast<double>(cd.device_backlog +
                                           cd.upload_queue.size() +
                                           (cd.uploading_task != kNoTask ? 1
                                                                         : 0) +
                                           cd.server_stage_depth());
  }
  if (channel_) {
    channel_->sample(now_, o.cell_bandwidth, o.server_alive, o.bw_fresh,
                     o.bw_age, o.alive_fresh);
  }
  ControlAction action = controller_(o);
  if (action.decision) apply_decision(*action.decision);
  if (action.admit_fraction) set_admission(*action.admit_fraction);
  arrivals_since_tick_.assign(devices_.size(), 0);
  last_controller_tick_ = now_;
  schedule(now_ + options_.control_interval, EvKind::kController);
}

void Simulator::obs_tick() {
  EngineSample s;
  s.time = now_;
  s.arrived = ctr_arrived_->value();
  s.completed = ctr_completed_->value();
  s.failed = ctr_failed_->value();
  s.shed = ctr_shed_->value();
  s.expired = ctr_expired_->value();
  s.deadline_met = ctr_deadline_met_->value();
  s.deadline_total = ctr_deadline_total_->value();
  s.in_flight = static_cast<double>(std::max<std::int64_t>(0, in_flight_));
  double depth = 0.0;
  for (const auto& dev : devices_) {
    const auto& cd = *dev;
    depth += static_cast<double>(cd.device_backlog + cd.upload_queue.size() +
                                 (cd.uploading_task != kNoTask ? 1 : 0) +
                                 cd.server_stage_depth());
  }
  s.queue_depth = depth;
  options_.recorder->sample(s);
  if (options_.slo != nullptr) options_.slo->evaluate();
  schedule(now_ + options_.obs_interval, EvKind::kObsSample);
}

void Simulator::arm_fluid(std::size_t slot) {
  FluidResource* resource = fluids_[slot];
  const double t = resource->next_completion();
  if (!std::isfinite(t)) return;
  // Fluid completions may land beyond the horizon; in-flight tasks are
  // simply abandoned there.
  schedule(std::max(t, now_), EvKind::kFluidWake,
           static_cast<std::int32_t>(slot), resource->epoch());
}

void Simulator::dispatch(const SimEvent& ev) {
  switch (static_cast<EvKind>(ev.kind)) {
    case EvKind::kArrival:
      on_arrival(static_cast<DeviceId>(ev.a));
      return;
    case EvKind::kDeviceDone:
      finish_device_phase(static_cast<TaskIndex>(ev.b));
      return;
    case EvKind::kServerArrive:
      start_server_phase(static_cast<TaskIndex>(ev.b));
      return;
    case EvKind::kRedispatch:
      redispatch(static_cast<TaskIndex>(ev.b));
      return;
    case EvKind::kFluidWake: {
      const std::size_t slot = static_cast<std::size_t>(ev.a);
      FluidResource* resource = fluids_[slot];
      if (resource->epoch() != ev.b) return;  // stale wake-up
      resource->complete_due(now_, *this);
      arm_fluid(slot);
      return;
    }
    case EvKind::kFaultEvent:
      on_fault_event(
          options_.faults.schedule.events()[static_cast<std::size_t>(ev.b)]);
      return;
    case EvKind::kController:
      controller_tick();
      return;
    case EvKind::kSeries:
      series_tick();
      return;
    case EvKind::kObsSample:
      obs_tick();
      return;
    case EvKind::kBandwidth: {
      const auto c = static_cast<std::size_t>(ev.a);
      const auto& seg =
          traces_[c]->segments()[static_cast<std::size_t>(ev.b)];
      cell_links_[c]->set_capacity(now_, seg.bandwidth);
      arm_fluid(c);
      return;
    }
  }
  SCALPEL_REQUIRE(false, "unknown simulator event kind");
}

SimMetrics Simulator::run() {
  const auto& topo = instance_->topology();

  // Fault-schedule transitions are scheduled first so a crash at time t
  // precedes any arrival at the same timestamp.
  const auto& fault_events = options_.faults.schedule.events();
  for (std::size_t f = 0; f < fault_events.size(); ++f) {
    schedule(fault_events[f].time, EvKind::kFaultEvent, -1, f);
  }
  // Seed arrivals.
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    const auto dev = static_cast<DeviceId>(i);
    const double first =
        rngs_[i]->exponential(topo.device(dev).arrival_rate);
    schedule(first, EvKind::kArrival, dev);
  }
  // Bandwidth trace change-points.
  for (std::size_t c = 0; c < traces_.size(); ++c) {
    if (!traces_[c]) continue;
    auto* link = cell_links_[c].get();
    const auto& segs = traces_[c]->segments();
    for (std::size_t s = 0; s < segs.size(); ++s) {
      if (segs[s].start <= 0.0) {
        link->set_capacity(0.0, segs[s].bandwidth);
        continue;
      }
      schedule(segs[s].start, EvKind::kBandwidth,
               static_cast<std::int32_t>(c), s);
    }
  }
  // Controller ticks.
  if (controller_) {
    schedule(options_.control_interval, EvKind::kController);
  }
  // Time-series sampling.
  if (options_.series_window > 0.0) {
    metrics_.series.window = options_.series_window;
    schedule(options_.series_window, EvKind::kSeries);
  }
  // Observability sampling — seeded last so at a coinciding grid time the
  // controller and series ticks (scheduled earlier, hence lower seq)
  // dispatch first, matching the sharded engine's serial-phase order of
  // controller tick -> series -> obs sample. The interval caps keep that
  // induction valid at every later collision.
  if (options_.obs_interval > 0.0 && options_.recorder != nullptr) {
    SCALPEL_REQUIRE(!controller_ ||
                        options_.obs_interval <= options_.control_interval,
                    "obs_interval must not exceed control_interval");
    SCALPEL_REQUIRE(options_.series_window == 0.0 ||
                        options_.obs_interval <= options_.series_window,
                    "obs_interval must not exceed series_window");
    schedule(options_.obs_interval, EvKind::kObsSample);
  }

  while (!events_.empty()) {
    const SimEvent ev = events_.pop_min();
    SCALPEL_REQUIRE(ev.time >= now_ - 1e-9, "event time went backwards");
    now_ = std::max(now_, ev.time);
    if (now_ > options_.horizon) break;
    set_log_sim_time(now_);  // log lines carry the event-loop clock
    ++events_processed_;
    dispatch(ev);
  }
  clear_log_sim_time();

  // Aggregate. The whole-run conservation fields come straight from the
  // registry counters — the registry is the single source of truth for
  // event counts; SimMetrics is the reporting view.
  metrics_.horizon = options_.horizon;
  metrics_.events_processed = events_processed_;
  metrics_.completed_all = ctr_completed_->value();
  metrics_.failed_all = ctr_failed_->value();
  metrics_.shed_all = ctr_shed_->value() + ctr_expired_->value();
  metrics_.in_flight_end = static_cast<std::size_t>(std::max<std::int64_t>(
      0, in_flight_));
  std::size_t deadline_met = 0;
  std::size_t deadline_total = 0;
  double acc_sum = 0.0;
  double energy_sum = 0.0;
  std::size_t offloaded = 0;
  for (const auto& dm : metrics_.per_device) {
    metrics_.arrived += dm.arrived;
    metrics_.completed += dm.completed;
    metrics_.failed += dm.failed;
    metrics_.shed += dm.shed;
    metrics_.expired += dm.expired;
    metrics_.retried += dm.retries;
    metrics_.resteered += dm.resteered;
    for (double v : dm.latency.values()) metrics_.latency.add(v);
    deadline_met += dm.deadline_met;
    deadline_total += dm.deadline_total;
    acc_sum += dm.accuracy_sum;
    energy_sum += dm.energy_sum;
    offloaded += dm.offloaded;
  }
  metrics_.deadline_satisfaction =
      deadline_total ? static_cast<double>(deadline_met) /
                           static_cast<double>(deadline_total)
                     : 1.0;
  metrics_.measured_accuracy =
      metrics_.completed ? acc_sum / static_cast<double>(metrics_.completed)
                         : 0.0;
  metrics_.mean_task_energy =
      metrics_.completed ? energy_sum / static_cast<double>(metrics_.completed)
                         : 0.0;
  metrics_.offload_fraction =
      metrics_.completed
          ? static_cast<double>(offloaded) /
                static_cast<double>(metrics_.completed)
          : 0.0;
  for (const auto& s : servers_) {
    metrics_.server_utilization.push_back(
        s->busy_time(std::min(now_, options_.horizon)) / options_.horizon);
  }
  if (!options_.faults.schedule.empty() && !servers_.empty()) {
    double avail = 0.0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      avail += options_.faults.schedule.server_availability(
          static_cast<std::int32_t>(s), options_.horizon);
    }
    metrics_.availability = avail / static_cast<double>(servers_.size());
  }
  registry_.gauge("sim.task.in_flight_end")
      .set(static_cast<double>(metrics_.in_flight_end));
  registry_.gauge("sim.availability").set(metrics_.availability);
  registry_.gauge("sim.horizon_seconds").set(options_.horizon);
  registry_.gauge("sim.events_processed")
      .set(static_cast<double>(metrics_.events_processed));
  // Pool-discipline check: the conservation identity below equates arrivals
  // with terminal events; live() catching in_flight_end proves no task slot
  // leaked or double-released either.
  SCALPEL_REQUIRE(tasks_.live() == metrics_.in_flight_end,
                  "task pool live count diverged from in-flight accounting");
  // Whole-run conservation: every arrival is accounted for exactly once.
  SCALPEL_REQUIRE(metrics_.arrived == metrics_.completed_all +
                                          metrics_.failed_all +
                                          metrics_.shed_all +
                                          metrics_.in_flight_end,
                  "task conservation violated");
  return metrics_;
}

}  // namespace scalpel
