#include "sim/shard.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

// Same FluidSink tag layout as the single-loop simulator: stage in the top
// bit, task index below.
constexpr std::uint64_t kShardServerStageBit = 1ull << 32;

inline std::uint64_t upload_tag(TaskIndex t) { return t; }
inline std::uint64_t server_tag(TaskIndex t) { return kShardServerStageBit | t; }

/// Key of a (device, server) chain in its server-shard's chain map. The
/// single loop keeps chains inside CompiledDevice; the sharded simulator
/// moves them to the server's shard so a device with in-flight tasks to
/// servers in two shards (possible after an online replan) never has two
/// shards mutating its CompiledDevice concurrently.
inline std::uint64_t chain_key(DeviceId dev, ServerId srv) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dev)) << 32) |
         static_cast<std::uint32_t>(srv);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardPlan

ShardPlan ShardPlan::build(const ClusterTopology& topo, std::size_t requested) {
  const auto& cells = topo.cells();
  const auto& servers = topo.servers();
  SCALPEL_REQUIRE(!cells.empty(), "shard plan needs at least one cell");

  ShardPlan p;
  const std::size_t want =
      std::max<std::size_t>(1, std::min(requested, cells.size()));

  // Contiguous cell blocks: cell c -> shard c * want / C (monotone, balanced
  // within one).
  p.cell_shard.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    p.cell_shard[c] = static_cast<std::int32_t>(c * want / cells.size());
  }

  // Each server joins the shard of its nearest cell by path RTT, ties to the
  // lowest cell id — a pure function of the topology.
  p.server_shard.resize(servers.size());
  for (std::size_t s = 0; s < servers.size(); ++s) {
    std::size_t best = 0;
    double best_rtt = cells[0].rtt + servers[s].backhaul_rtt;
    for (std::size_t c = 1; c < cells.size(); ++c) {
      const double rtt = cells[c].rtt + servers[s].backhaul_rtt;
      if (rtt < best_rtt) {
        best = c;
        best_rtt = rtt;
      }
    }
    p.server_shard[s] = p.cell_shard[best];
  }

  // Merge any shards joined by a zero-RTT (cell, server) pair: conservative
  // execution needs a strictly positive minimum cross-shard delay.
  std::vector<std::int32_t> parent(want);
  for (std::size_t i = 0; i < want; ++i) parent[i] = static_cast<std::int32_t>(i);
  auto find = [&parent](std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t s = 0; s < servers.size(); ++s) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].rtt + servers[s].backhaul_rtt > 0.0) continue;
      const std::int32_t a = find(p.cell_shard[c]);
      const std::int32_t b = find(p.server_shard[s]);
      if (a != b) parent[static_cast<std::size_t>(b)] = a;
    }
  }
  // Compact relabel in order of first appearance over cells (server labels
  // are cell labels, so scanning cells covers every root).
  std::vector<std::int32_t> compact(want, -1);
  std::int32_t next = 0;
  for (auto& label : p.cell_shard) {
    const std::int32_t root = find(label);
    if (compact[static_cast<std::size_t>(root)] < 0) {
      compact[static_cast<std::size_t>(root)] = next++;
    }
    label = compact[static_cast<std::size_t>(root)];
  }
  for (auto& label : p.server_shard) {
    label = compact[static_cast<std::size_t>(find(label))];
    SCALPEL_REQUIRE(label >= 0, "server shard label escaped the relabel");
  }
  p.num_shards = static_cast<std::size_t>(next);

  p.device_shard.resize(topo.devices().size());
  for (std::size_t d = 0; d < p.device_shard.size(); ++d) {
    p.device_shard[d] =
        p.cell_shard[static_cast<std::size_t>(topo.devices()[d].cell)];
  }

  // Lookahead: the minimum path RTT over all cross-shard (cell, server)
  // pairs. Decision-independent, so it survives online replans.
  p.lookahead = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < servers.size(); ++s) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (p.server_shard[s] == p.cell_shard[c]) continue;
      p.lookahead =
          std::min(p.lookahead, cells[c].rtt + servers[s].backhaul_rtt);
    }
  }
  SCALPEL_REQUIRE(!std::isfinite(p.lookahead) || p.lookahead > 0.0,
                  "zero-RTT cross-shard pair survived shard merging");
  return p;
}

// ---------------------------------------------------------------------------
// ShardCore: one shard's event engine. Every handler is a line-for-line port
// of the Simulator member of the same name; divergences are (a) order-
// sensitive floating-point folds become MetricRecords replayed later, (b)
// (device, server) chains live in the server-shard's map, (c) the upload
// drain hands cross-shard tasks to the outbox instead of scheduling
// kServerArrive locally.

struct ShardCore final : FluidSink {
  enum class Ev : std::uint32_t {
    kArrival,       // a = device
    kDeviceDone,    // b = task index
    kServerArrive,  // b = task index (upload drained + RTT elapsed)
    kRedispatch,    // b = task index (fault-policy retry backoff elapsed)
    kFluidWake,     // a = *global* fluid slot (cells, then servers), b = epoch
    // Cross-shard offload whose target server is scripted down at the arrival
    // instant: the fault fires on the device's shard, replacing the single
    // loop's kServerArrive -> !server_up_ -> handle_fault (one event either
    // way, so events_processed stays identical).
    kOffloadFault,  // b = task index
  };

  explicit ShardCore(EventQueueImpl impl) : events(impl) {}

  ShardedSimulator* g = nullptr;
  std::int32_t sid = 0;
  std::vector<DeviceId> my_devices;  // ascending global id

  EventQueue events;
  TaskPool tasks;
  /// (device, server) chains owned by this shard's servers (chain_key).
  std::unordered_map<std::uint64_t, ServerChain> chains;
  TaskTracer tracer;
  MetricsRegistry registry;
  Counter* ctr_arrived = nullptr;
  Counter* ctr_completed = nullptr;
  Counter* ctr_failed = nullptr;
  Counter* ctr_shed = nullptr;
  Counter* ctr_expired = nullptr;
  Counter* ctr_retry = nullptr;
  Counter* ctr_resteer = nullptr;
  Counter* ctr_gate_refused = nullptr;
  Counter* ctr_deadline_met = nullptr;
  Counter* ctr_deadline_total = nullptr;
  std::vector<MetricRecord> log;
  std::vector<TaskEnvelope> outbox;

  double now = 0.0;
  /// Last *popped* event time — the utilization clock. `now` is bumped to
  /// every barrier so serial-phase work uses the right clock, but the single
  /// loop's now_ only advances on pops, and server busy-time settles at that.
  double last_event_time = 0.0;
  std::size_t events_processed = 0;
  /// Set by the coordinator around serial phases: traces and records emitted
  /// while true go to the global serial streams (ordered by serial_seq).
  bool serial_mode = false;

  const ClusterTopology& topo() const { return g->instance_->topology(); }
  bool series_on() const { return g->options_.series_window > 0.0; }

  void schedule(double t, Ev kind, std::int32_t a = -1, std::uint64_t b = 0) {
    if (t > g->options_.horizon) return;
    events.push(t, static_cast<std::uint32_t>(kind), a, b);
  }

  void trace_rec(double t, std::uint64_t id, std::int32_t dev,
                 std::int32_t srv, TraceEventType type, std::uint8_t arg = 0) {
    (serial_mode ? g->serial_tracer_ : tracer)
        .record(t, id, dev, srv, type, arg);
  }

  void push_record(MetricRecord r) {
    if (serial_mode) {
      r.serial_seq = g->serial_seq_++;
      g->serial_log_.push_back(r);
    } else {
      r.serial_seq = kMidEpochSeq;
      log.push_back(r);
    }
  }

  void record_arrival(TaskIndex task) {
    if (!series_on()) return;  // in-flight integral is the only consumer
    MetricRecord r;
    r.time = now;
    r.id = tasks.id[task];
    r.device = tasks.device[task];
    r.kind = MetricRecordKind::kArrival;
    push_record(r);
  }

  /// kFail / kShed / kExpire records (kComplete carries more and is emitted
  /// inline in complete_task).
  void record_terminal(MetricRecordKind kind, TaskIndex task, double at) {
    const bool counted = tasks.counted(task);
    if (!counted && !series_on()) return;
    MetricRecord r;
    r.time = at;
    r.id = tasks.id[task];
    r.device = tasks.device[task];
    r.kind = kind;
    if (counted) r.flags |= MetricRecord::kCounted;
    push_record(r);
  }

  ServerChain& chain_for(DeviceId dev, ServerId srv) {
    return chains[chain_key(dev, srv)];
  }

  double burst_multiplier() const {
    double factor = 1.0;
    for (const auto& rb : g->options_.rate_bursts) {
      if (now >= rb.start && now < rb.end) factor *= rb.factor;
    }
    return factor;
  }

  bool deadline_expired(TaskIndex task, double best_case_remaining) const {
    if (g->options_.overload.policy != OverloadPolicy::ShedExpired) {
      return false;
    }
    const double deadline = topo().device(tasks.device[task]).deadline;
    if (deadline <= 0.0) return false;  // best effort never expires
    return now + best_case_remaining > tasks.arrival[task] + deadline + 1e-12;
  }

  double best_case_offload_remaining(TaskIndex task) const {
    const auto& device = topo().device(tasks.device[task]);
    const double cap =
        g->cell_links_[static_cast<std::size_t>(device.cell)]->capacity();
    const double upload =
        cap > 0.0
            ? static_cast<double>(tasks.phases[task].upload_bytes) / cap
            : 0.0;
    return upload + tasks.rtt[task] + tasks.phases[task].server_time;
  }

  bool enqueue_bounded(IndexDeque& queue, TaskIndex task, std::size_t limit,
                       bool server_stage) {
    if (limit == 0 || queue.size() < limit) {
      queue.push_back(task);
      return true;
    }
    auto remaining = [&](TaskIndex t) {
      return server_stage ? tasks.phases[t].server_time
                          : best_case_offload_remaining(t);
    };
    switch (g->options_.overload.policy) {
      case OverloadPolicy::Block:
        shed_task(task, now, false);
        return false;
      case OverloadPolicy::ShedExpired:
        for (std::size_t pos = 0; pos < queue.size(); ++pos) {
          const TaskIndex t = queue.at(pos);
          if (deadline_expired(t, remaining(t))) {
            queue.erase_at(pos);
            shed_task(t, now, true);
            queue.push_back(task);
            return true;
          }
        }
        [[fallthrough]];
      case OverloadPolicy::ShedNewest: {
        std::size_t youngest = 0;
        for (std::size_t pos = 0; pos < queue.size(); ++pos) {
          if (tasks.arrival[queue.at(pos)] >
              tasks.arrival[queue.at(youngest)]) {
            youngest = pos;
          }
        }
        if (tasks.arrival[queue.at(youngest)] > tasks.arrival[task]) {
          const TaskIndex victim = queue.at(youngest);
          queue.erase_at(youngest);
          shed_task(victim, now, false);
          queue.push_back(task);
          return true;
        }
        shed_task(task, now, false);
        return false;
      }
    }
    return false;  // unreachable
  }

  void on_arrival(DeviceId dev) {
    const auto i = static_cast<std::size_t>(dev);
    const auto& device = topo().device(dev);
    auto& rng = g->rngs_[i];
    auto& cd = g->devices_[i];

    double rate = device.arrival_rate * burst_multiplier();
    if (g->options_.burst_factor > 0.0) {
      SCALPEL_REQUIRE(g->options_.burst_factor < 1.0,
                      "burst_factor must be in [0, 1)");
      while (now >= cd.burst_state_until) {
        cd.burst_high = !cd.burst_high;
        cd.burst_state_until =
            std::max(now, cd.burst_state_until) +
            rng.exponential(1.0 / g->options_.burst_hold);
      }
      rate *= cd.burst_high ? (1.0 + g->options_.burst_factor)
                            : (1.0 - g->options_.burst_factor);
    }
    const double next = now + rng.exponential(rate);
    schedule(next, Ev::kArrival, dev);
    const TaskIndex task = tasks.acquire();
    tasks.id[task] = make_task_id(dev, cd.arrival_seq++);
    tasks.device[task] = dev;
    tasks.arrival[task] = now;
    if (now >= g->options_.warmup) tasks.flags[task] |= TaskPool::kCounted;
    tasks.difficulty[task] = device.difficulty.sample(rng);
    tasks.phases[task] = cd.plan->phases_for(tasks.difficulty[task]);
    tasks.server[task] = cd.server;
    tasks.rtt[task] = cd.rtt;
    tasks.bw_weight[task] = cd.bandwidth;
    tasks.cpu_weight[task] = cd.share;

    ++g->metrics_.per_device[i].arrived;
    ctr_arrived->inc();
    ++g->arrivals_since_tick_[i];
    record_arrival(task);
    trace_rec(now, tasks.id[task], dev, tasks.server[task],
              TraceEventType::kArrive);

    if (!g->admit_fraction_.empty() &&
        g->admit_rngs_[i].uniform() > g->admit_fraction_[i]) {
      ctr_gate_refused->inc();
      shed_task(task, now, false);
      return;
    }

    const double start = std::max(now, cd.busy_until);
    double best_case = (start - now) + tasks.phases[task].device_time;
    if (tasks.phases[task].offloaded) {
      best_case += best_case_offload_remaining(task);
    }
    if (deadline_expired(task, best_case)) {
      shed_task(task, now, true);
      return;
    }

    const std::size_t limit = g->options_.overload.device_queue_limit;
    if (limit > 0 && cd.device_backlog >= limit) {
      shed_task(task, now, false);
      return;
    }
    ++cd.device_backlog;
    trace_rec(now, tasks.id[task], dev, -1, TraceEventType::kEnqueue,
              static_cast<std::uint8_t>(TraceStage::kDevice));
    trace_rec(start, tasks.id[task], dev, -1, TraceEventType::kExecStart,
              static_cast<std::uint8_t>(TraceStage::kDevice));
    const double finish = start + tasks.phases[task].device_time;
    cd.busy_until = finish;
    schedule(finish, Ev::kDeviceDone, -1, task);
  }

  void finish_device_phase(TaskIndex task) {
    auto& cd = g->devices_[static_cast<std::size_t>(tasks.device[task])];
    if (cd.device_backlog > 0) --cd.device_backlog;
    tasks.device_done[task] = now;
    trace_rec(now, tasks.id[task], tasks.device[task], -1,
              TraceEventType::kExecEnd,
              static_cast<std::uint8_t>(TraceStage::kDevice));
    if (!tasks.phases[task].offloaded) {
      complete_task(task, now);
      return;
    }
    start_upload(task);
  }

  void start_upload(TaskIndex task) {
    auto& cd = g->devices_[static_cast<std::size_t>(tasks.device[task])];
    if (deadline_expired(task, best_case_offload_remaining(task))) {
      shed_task(task, now, true);
      return;
    }
    if (cd.uploading) {
      if (enqueue_bounded(cd.upload_queue, task,
                          g->options_.overload.upload_queue_limit, false)) {
        trace_rec(now, tasks.id[task], tasks.device[task], tasks.server[task],
                  TraceEventType::kEnqueue,
                  static_cast<std::uint8_t>(TraceStage::kUpload));
      }
      return;
    }
    cd.uploading = true;
    begin_upload_job(task);
  }

  void advance_upload_queue(DeviceId dev) {
    auto& cd = g->devices_[static_cast<std::size_t>(dev)];
    if (cd.upload_queue.empty()) {
      cd.uploading = false;
      return;
    }
    const TaskIndex next = cd.upload_queue.pop_front();
    trace_rec(now, tasks.id[next], tasks.device[next], tasks.server[next],
              TraceEventType::kDispatch,
              static_cast<std::uint8_t>(TraceStage::kUpload));
    begin_upload_job(next);
  }

  void begin_upload_job(TaskIndex task) {
    const auto& device = topo().device(tasks.device[task]);
    const auto cell = static_cast<std::size_t>(device.cell);
    if (!g->link_up_[cell] ||
        !g->server_up_[static_cast<std::size_t>(tasks.server[task])]) {
      advance_upload_queue(tasks.device[task]);
      handle_fault(task);
      return;
    }
    if (deadline_expired(task, best_case_offload_remaining(task))) {
      advance_upload_queue(tasks.device[task]);
      shed_task(task, now, true);
      return;
    }
    auto* link = g->cell_links_[cell].get();
    auto& owner = g->devices_[static_cast<std::size_t>(tasks.device[task])];
    owner.uploading_task = task;
    trace_rec(now, tasks.id[task], tasks.device[task], tasks.server[task],
              TraceEventType::kUploadStart);
    link->add_job(now, static_cast<double>(tasks.phases[task].upload_bytes),
                  tasks.bw_weight[task], upload_tag(task));
    arm_fluid(cell);
  }

  void start_server_phase(TaskIndex task) {
    SCALPEL_REQUIRE(tasks.server[task] >= 0, "offloaded task lost its server");
    // The server may have crashed while the upload or RTT was in progress.
    // Reachable only for same-shard offloads: cross-shard envelopes are sent
    // only when the fault schedule says the server is up at the arrival
    // instant, and liveness changes only at barriers the arrival epoch has
    // already applied.
    if (!g->server_up_[static_cast<std::size_t>(tasks.server[task])]) {
      handle_fault(task);
      return;
    }
    tasks.upload_done[task] = now;
    if (tasks.phases[task].server_time <= 0.0) {
      complete_task(task, now);
      return;
    }
    if (deadline_expired(task, tasks.phases[task].server_time)) {
      shed_task(task, now, true);
      return;
    }
    auto& chain = chain_for(tasks.device[task], tasks.server[task]);
    if (chain.serving) {
      if (enqueue_bounded(chain.queue, task,
                          g->options_.overload.server_queue_limit, true)) {
        trace_rec(now, tasks.id[task], tasks.device[task], tasks.server[task],
                  TraceEventType::kEnqueue,
                  static_cast<std::uint8_t>(TraceStage::kServer));
      }
      return;
    }
    chain.serving = true;
    begin_server_job(task);
  }

  void advance_server_chain(DeviceId dev, ServerId server) {
    auto& chain = chain_for(dev, server);
    if (chain.queue.empty()) {
      chain.serving = false;
      return;
    }
    const TaskIndex next = chain.queue.pop_front();
    trace_rec(now, tasks.id[next], tasks.device[next], tasks.server[next],
              TraceEventType::kDispatch,
              static_cast<std::uint8_t>(TraceStage::kServer));
    begin_server_job(next);
  }

  void begin_server_job(TaskIndex task) {
    if (!g->server_up_[static_cast<std::size_t>(tasks.server[task])]) {
      advance_server_chain(tasks.device[task], tasks.server[task]);
      handle_fault(task);
      return;
    }
    if (deadline_expired(task, tasks.phases[task].server_time)) {
      advance_server_chain(tasks.device[task], tasks.server[task]);
      shed_task(task, now, true);
      return;
    }
    const auto srv = static_cast<std::size_t>(tasks.server[task]);
    auto* server = g->servers_[srv].get();
    auto& owner = chain_for(tasks.device[task], tasks.server[task]);
    owner.serving_task = task;
    trace_rec(now, tasks.id[task], tasks.device[task], tasks.server[task],
              TraceEventType::kExecStart,
              static_cast<std::uint8_t>(TraceStage::kServer));
    server->add_job(now, tasks.phases[task].server_time,
                    tasks.cpu_weight[task], server_tag(task));
    arm_fluid(g->cell_links_.size() + srv);
  }

  void fluid_job_done(std::uint64_t tag, double at) override {
    const TaskIndex task = static_cast<TaskIndex>(tag & 0xffffffffu);
    if ((tag & kShardServerStageBit) == 0) {
      // Uplink transfer drained.
      trace_rec(at, tasks.id[task], tasks.device[task], tasks.server[task],
                TraceEventType::kUploadEnd);
      const DeviceId dev = tasks.device[task];
      const ServerId srv = tasks.server[task];
      const double t_arrive = at + tasks.rtt[task];
      if (g->plan_.server_shard[static_cast<std::size_t>(srv)] == sid) {
        // Same shard: the single loop's path verbatim.
        schedule(t_arrive, Ev::kServerArrive, -1, task);
      } else if (t_arrive > g->options_.horizon) {
        // The single loop drops the kServerArrive event past the horizon and
        // strands the task in flight; keep the slot live here too.
      } else if (!g->options_.faults.schedule.server_up(srv, t_arrive)) {
        // The target is scripted down at the arrival instant (liveness only
        // changes at barriers, all applied before t_arrive's epoch), so the
        // arrival would fault on the remote shard against a device this shard
        // owns. Fault locally instead — one event, like the single loop's
        // kServerArrive.
        schedule(t_arrive, Ev::kOffloadFault, -1, task);
      } else {
        TaskEnvelope env;
        env.arrive_time = t_arrive;
        env.id = tasks.id[task];
        env.arrival = tasks.arrival[task];
        env.difficulty = tasks.difficulty[task];
        env.rtt = tasks.rtt[task];
        env.bw_weight = tasks.bw_weight[task];
        env.cpu_weight = tasks.cpu_weight[task];
        env.device_done = tasks.device_done[task];
        env.phases = tasks.phases[task];
        env.device = dev;
        env.server = srv;
        env.retries = tasks.retries[task];
        env.flags = tasks.flags[task];
        outbox.push_back(env);
        tasks.release(task);
      }
      g->devices_[static_cast<std::size_t>(dev)].uploading_task = kNoTask;
      advance_upload_queue(dev);
      return;
    }
    // Server execution finished.
    trace_rec(at, tasks.id[task], tasks.device[task], tasks.server[task],
              TraceEventType::kExecEnd,
              static_cast<std::uint8_t>(TraceStage::kServer));
    const DeviceId dev = tasks.device[task];
    const ServerId srv = tasks.server[task];
    chain_for(dev, srv).serving_task = kNoTask;
    complete_task(task, at);  // releases the pool slot; read fields before
    advance_server_chain(dev, srv);
  }

  void handle_fault(TaskIndex task) {
    tasks.flags[task] |= TaskPool::kFaulted;
    switch (g->options_.faults.policy) {
      case FaultPolicy::Drop:
        fail_task(task, now);
        return;
      case FaultPolicy::RetryOnDevice:
        resteer_local(task);
        return;
      case FaultPolicy::RetryOffload: {
        const auto& f = g->options_.faults;
        if (tasks.retries[task] >= f.max_retries ||
            now + f.retry_backoff - tasks.arrival[task] > f.retry_timeout) {
          fail_task(task, now);
          return;
        }
        ++tasks.retries[task];
        ctr_retry->inc();
        if (tasks.counted(task)) {
          ++g->metrics_
                .per_device[static_cast<std::size_t>(tasks.device[task])]
                .retries;
        }
        trace_rec(now, tasks.id[task], tasks.device[task], tasks.server[task],
                  TraceEventType::kRetry,
                  static_cast<std::uint8_t>(
                      std::min<std::size_t>(tasks.retries[task], 255)));
        schedule(now + f.retry_backoff, Ev::kRedispatch, -1, task);
        return;
      }
    }
  }

  void resteer_local(TaskIndex task) {
    // Mid-epoch faults are always device-local (see start_server_phase); the
    // serial phase migrates cross-shard victims home before calling in here.
    SCALPEL_REQUIRE(
        g->plan_.device_shard[static_cast<std::size_t>(tasks.device[task])] ==
            sid,
        "resteer on a shard that does not own the device");
    auto& cd = g->devices_[static_cast<std::size_t>(tasks.device[task])];
    PlanModel const* fb = cd.fallback ? cd.fallback.get() : cd.plan.get();
    tasks.phases[task] = fb->phases_for(tasks.difficulty[task]);
    tasks.server[task] = -1;
    tasks.rtt[task] = 0.0;
    tasks.bw_weight[task] = 0.0;
    tasks.cpu_weight[task] = 0.0;
    const double start = std::max(now, cd.busy_until);
    if (deadline_expired(task,
                         (start - now) + tasks.phases[task].device_time)) {
      shed_task(task, now, true);
      return;
    }
    ctr_resteer->inc();
    if (tasks.counted(task)) {
      ++g->metrics_.per_device[static_cast<std::size_t>(tasks.device[task])]
            .resteered;
    }
    trace_rec(now, tasks.id[task], tasks.device[task], -1,
              TraceEventType::kResteer);
    ++cd.device_backlog;
    cd.busy_until = start + tasks.phases[task].device_time;
    trace_rec(start, tasks.id[task], tasks.device[task], -1,
              TraceEventType::kExecStart,
              static_cast<std::uint8_t>(TraceStage::kDevice));
    schedule(cd.busy_until, Ev::kDeviceDone, -1, task);
  }

  void redispatch(TaskIndex task) {
    SCALPEL_REQUIRE(
        g->plan_.device_shard[static_cast<std::size_t>(tasks.device[task])] ==
            sid,
        "redispatch on a shard that does not own the device");
    auto& cd = g->devices_[static_cast<std::size_t>(tasks.device[task])];
    tasks.phases[task] = cd.plan->phases_for(tasks.difficulty[task]);
    tasks.server[task] = cd.server;
    tasks.rtt[task] = cd.rtt;
    tasks.bw_weight[task] = cd.bandwidth;
    tasks.cpu_weight[task] = cd.share;
    const double start = std::max(now, cd.busy_until);
    double best_case = (start - now) + tasks.phases[task].device_time;
    if (tasks.phases[task].offloaded) {
      best_case += best_case_offload_remaining(task);
    }
    if (deadline_expired(task, best_case)) {
      shed_task(task, now, true);
      return;
    }
    ++cd.device_backlog;
    cd.busy_until = start + tasks.phases[task].device_time;
    trace_rec(start, tasks.id[task], tasks.device[task], -1,
              TraceEventType::kExecStart,
              static_cast<std::uint8_t>(TraceStage::kDevice));
    schedule(cd.busy_until, Ev::kDeviceDone, -1, task);
  }

  /// Mirrors the single loop's registry-side deadline accounting (shed/fail/
  /// miss all count as deadline_total; only an on-time completion counts as
  /// met). Integer counters merge by addition, so per-core increments here
  /// are safe for any shard/thread count.
  void count_deadline(TaskIndex task, double latency, bool completed) {
    if (!tasks.counted(task)) return;
    const double deadline = topo().device(tasks.device[task]).deadline;
    if (deadline <= 0.0) return;
    ctr_deadline_total->inc();
    if (completed && latency <= deadline) ctr_deadline_met->inc();
  }

  void shed_task(TaskIndex task, double at, bool expired) {
    (expired ? ctr_expired : ctr_shed)->inc();
    trace_rec(at, tasks.id[task], tasks.device[task], tasks.server[task],
              expired ? TraceEventType::kExpire : TraceEventType::kShed);
    record_terminal(expired ? MetricRecordKind::kExpire
                            : MetricRecordKind::kShed,
                    task, at);
    count_deadline(task, 0.0, false);
    tasks.release(task);
  }

  void fail_task(TaskIndex task, double at) {
    ctr_failed->inc();
    trace_rec(at, tasks.id[task], tasks.device[task], tasks.server[task],
              TraceEventType::kFail);
    record_terminal(MetricRecordKind::kFail, task, at);
    count_deadline(task, 0.0, false);
    tasks.release(task);
  }

  void complete_task(TaskIndex task, double at) {
    ctr_completed->inc();
    count_deadline(task, at - tasks.arrival[task], true);
    trace_rec(at, tasks.id[task], tasks.device[task], tasks.server[task],
              TraceEventType::kComplete);
    const bool counted = tasks.counted(task);
    if (counted || series_on()) {
      MetricRecord r;
      r.time = at;
      r.id = tasks.id[task];
      r.device = tasks.device[task];
      r.kind = MetricRecordKind::kComplete;
      const TaskPhases& phases = tasks.phases[task];
      r.latency = at - tasks.arrival[task];
      r.correct_prob = phases.correct_prob;
      const auto& device = topo().device(tasks.device[task]);
      const double upload_dur =
          phases.offloaded
              ? tasks.upload_done[task] - tasks.device_done[task]
              : 0.0;
      const double idle_dur =
          phases.offloaded ? at - tasks.upload_done[task] : 0.0;
      r.energy =
          device.energy.task_energy(phases.device_time, upload_dur, idle_dur);
      r.exit_slot = phases.exit_index < 0 ? 0 : phases.exit_index + 1;
      if (counted) r.flags |= MetricRecord::kCounted;
      if (tasks.faulted(task) ||
          g->down_servers_ > 0 || g->down_links_ > 0) {
        r.flags |= MetricRecord::kOutageOrFaulted;
      }
      if (phases.offloaded) r.flags |= MetricRecord::kOffloaded;
      push_record(r);
    }
    tasks.release(task);
  }

  void arm_fluid(std::size_t slot) {
    FluidResource* resource = g->fluid_at(slot);
    const double t = resource->next_completion();
    if (!std::isfinite(t)) return;
    schedule(std::max(t, now), Ev::kFluidWake,
             static_cast<std::int32_t>(slot), resource->epoch());
  }

  void dispatch(const SimEvent& ev) {
    switch (static_cast<Ev>(ev.kind)) {
      case Ev::kArrival:
        on_arrival(static_cast<DeviceId>(ev.a));
        return;
      case Ev::kDeviceDone:
        finish_device_phase(static_cast<TaskIndex>(ev.b));
        return;
      case Ev::kServerArrive:
        start_server_phase(static_cast<TaskIndex>(ev.b));
        return;
      case Ev::kRedispatch:
        redispatch(static_cast<TaskIndex>(ev.b));
        return;
      case Ev::kFluidWake: {
        const std::size_t slot = static_cast<std::size_t>(ev.a);
        FluidResource* resource = g->fluid_at(slot);
        if (resource->epoch() != ev.b) return;  // stale wake-up
        resource->complete_due(now, *this);
        arm_fluid(slot);
        return;
      }
      case Ev::kOffloadFault:
        handle_fault(static_cast<TaskIndex>(ev.b));
        return;
    }
    SCALPEL_REQUIRE(false, "unknown shard event kind");
  }

  /// Processes every event strictly before `barrier`; the first event at or
  /// past it goes back with its original seq (push_raw), preserving the
  /// (time, seq) total order. Deferred peeks are not dispatches, so
  /// events_processed matches the single loop's count.
  void run_until(double barrier) {
    while (!events.empty()) {
      const SimEvent ev = events.pop_min();
      if (ev.time >= barrier) {
        events.push_raw(ev);
        return;
      }
      SCALPEL_REQUIRE(ev.time >= now - 1e-9, "event time went backwards");
      now = std::max(now, ev.time);
      last_event_time = now;
      ++events_processed;
      dispatch(ev);
    }
  }

  /// After the final (horizon) barrier: everything left fires at exactly the
  /// horizon (schedule() drops anything later; run_until deferred anything
  /// at/after the barrier).
  void drain_all() {
    while (!events.empty()) {
      const SimEvent ev = events.pop_min();
      SCALPEL_REQUIRE(ev.time >= now - 1e-9, "event time went backwards");
      now = std::max(now, ev.time);
      last_event_time = now;
      ++events_processed;
      dispatch(ev);
    }
  }
};

// ---------------------------------------------------------------------------
// ShardedSimulator

FluidResource* ShardedSimulator::fluid_at(std::size_t slot) {
  return slot < cell_links_.size()
             ? cell_links_[slot].get()
             : servers_[slot - cell_links_.size()].get();
}

ShardedSimulator::ShardedSimulator(const ProblemInstance& instance,
                                   Decision decision,
                                   Simulator::Options options,
                                   ShardOptions shard_options)
    : instance_(&instance), decision_(std::move(decision)),
      options_(std::move(options)), shard_options_(shard_options) {
  SCALPEL_REQUIRE(options_.horizon > 0.0, "horizon must be positive");
  SCALPEL_REQUIRE(options_.warmup >= 0.0 && options_.warmup < options_.horizon,
                  "warmup must lie inside the horizon");
  SCALPEL_REQUIRE(options_.faults.retry_backoff > 0.0 &&
                      options_.faults.retry_timeout > 0.0,
                  "fault retry backoff/timeout must be positive");
  const auto& topo = instance_->topology();
  SCALPEL_REQUIRE(decision_.per_device.size() == topo.devices().size(),
                  "decision must cover every device");
  for (const auto& ev : options_.faults.schedule.events()) {
    const auto limit = ev.target == FaultTarget::Server
                           ? topo.servers().size()
                           : topo.cells().size();
    SCALPEL_REQUIRE(ev.id >= 0 && static_cast<std::size_t>(ev.id) < limit,
                    "fault event targets an unknown server/cell");
  }
  for (const auto& rb : options_.rate_bursts) {
    SCALPEL_REQUIRE(rb.factor > 0.0 && rb.start >= 0.0 && rb.end >= rb.start,
                    "rate burst needs a positive factor and an ordered window");
  }

  plan_ = ShardPlan::build(topo, shard_options_.shards);

  // Exactly the single loop's stream layout: one master Rng, device streams
  // drawn in global device order, then every admission stream — identical
  // realizations for any shard count.
  Rng master(options_.seed);
  rngs_.reserve(topo.devices().size());
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    rngs_.emplace_back(master.next_u64());
  }
  admit_rngs_.reserve(topo.devices().size());
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    admit_rngs_.emplace_back(master.next_u64());
  }
  devices_.resize(topo.devices().size());
  arrivals_since_tick_.assign(topo.devices().size(), 0);
  for (const auto& cell : topo.cells()) {
    cell_links_.push_back(std::make_unique<FluidResource>(cell.bandwidth));
    traces_.push_back(std::nullopt);
  }
  for (std::size_t j = 0; j < topo.servers().size(); ++j) {
    servers_.push_back(std::make_unique<FluidResource>(1.0));
  }
  server_up_.assign(topo.servers().size(), true);
  link_up_.assign(topo.cells().size(), true);
  channel_ = make_telemetry_channel(options_.telemetry, topo, options_.seed);
  apply_decision(decision_);
  metrics_.per_device.resize(topo.devices().size());

  cores_.reserve(plan_.num_shards);
  for (std::size_t s = 0; s < plan_.num_shards; ++s) {
    auto core = std::make_unique<ShardCore>(options_.event_queue);
    core->g = this;
    core->sid = static_cast<std::int32_t>(s);
    for (std::size_t d = 0; d < topo.devices().size(); ++d) {
      if (plan_.device_shard[d] == core->sid) {
        core->my_devices.push_back(static_cast<DeviceId>(d));
      }
    }
    core->tasks.reserve(core->my_devices.size() * 8);
    core->tracer.reset(options_.trace_capacity);
    core->ctr_arrived = &core->registry.counter("sim.task.arrived");
    core->ctr_completed = &core->registry.counter("sim.task.completed");
    core->ctr_failed = &core->registry.counter("sim.task.failed");
    core->ctr_shed = &core->registry.counter("sim.task.shed");
    core->ctr_expired = &core->registry.counter("sim.task.expired");
    core->ctr_retry = &core->registry.counter("sim.task.retry");
    core->ctr_resteer = &core->registry.counter("sim.task.resteer");
    core->ctr_gate_refused = &core->registry.counter("sim.gate.refused");
    core->ctr_deadline_met = &core->registry.counter("sim.task.deadline_met");
    core->ctr_deadline_total =
        &core->registry.counter("sim.task.deadline_total");
    cores_.push_back(std::move(core));
  }

  serial_tracer_.reset(options_.trace_capacity);
  // Master registry carries the merged truth; resolving every name here keeps
  // its key set identical to the single-loop registry even for untouched
  // counters.
  ctr_arrived_ = &registry_.counter("sim.task.arrived");
  ctr_completed_ = &registry_.counter("sim.task.completed");
  ctr_failed_ = &registry_.counter("sim.task.failed");
  ctr_shed_ = &registry_.counter("sim.task.shed");
  ctr_expired_ = &registry_.counter("sim.task.expired");
  ctr_retry_ = &registry_.counter("sim.task.retry");
  ctr_resteer_ = &registry_.counter("sim.task.resteer");
  ctr_gate_refused_ = &registry_.counter("sim.gate.refused");
  registry_.counter("sim.task.deadline_met");
  registry_.counter("sim.task.deadline_total");
  ctr_server_down_ = &registry_.counter("sim.fault.server_down");
  ctr_link_down_ = &registry_.counter("sim.fault.link_down");
  hist_latency_ = &registry_.histogram("sim.task.latency_seconds", 0.0,
                                       10.0, 200);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::set_cell_trace(CellId cell, BandwidthTrace trace) {
  SCALPEL_REQUIRE(cell >= 0 &&
                      static_cast<std::size_t>(cell) < traces_.size(),
                  "cell id out of range");
  traces_[static_cast<std::size_t>(cell)] = std::move(trace);
}

void ShardedSimulator::set_controller(Simulator::Controller controller) {
  set_controller(Simulator::RichController(
      [inner = std::move(controller)](
          double now, const std::vector<double>& bw,
          const std::vector<bool>& alive, const std::vector<double>&,
          const std::vector<double>&) {
        ControlAction action;
        action.decision = inner(now, bw, alive);
        return action;
      }));
}

void ShardedSimulator::set_controller(Simulator::RichController controller) {
  set_controller(Simulator::ObservingController(
      [inner = std::move(controller)](const Observation& o) {
        return inner(o.time, o.cell_bandwidth, o.server_alive, o.offered_rate,
                     o.queue_depth);
      }));
}

void ShardedSimulator::set_controller(
    Simulator::ObservingController controller) {
  SCALPEL_REQUIRE(options_.control_interval > 0.0,
                  "controller needs control_interval > 0");
  controller_ = std::move(controller);
}

void ShardedSimulator::set_admission(std::vector<double> fraction) {
  if (!fraction.empty()) {
    SCALPEL_REQUIRE(fraction.size() == devices_.size(),
                    "admission gate must cover every device");
    for (double f : fraction) {
      SCALPEL_REQUIRE(f >= 0.0 && f <= 1.0,
                      "admission fraction must be in [0, 1]");
    }
  }
  admit_fraction_ = std::move(fraction);
}

void ShardedSimulator::apply_decision(const Decision& decision) {
  SCALPEL_REQUIRE(
      decision.per_device.size() == instance_->topology().devices().size(),
      "decision must cover every device");
  if (&decision != &decision_) decision_ = decision;
  for (std::size_t i = 0; i < decision_.per_device.size(); ++i) {
    compile_device_decision(*instance_, static_cast<DeviceId>(i),
                            decision_.per_device[i], devices_[i], &cache_);
  }
}

std::vector<EpochBarrier> ShardedSimulator::build_agenda() const {
  std::vector<double> fault_times;
  fault_times.reserve(options_.faults.schedule.events().size());
  for (const auto& ev : options_.faults.schedule.events()) {
    fault_times.push_back(ev.time);
  }
  std::vector<std::vector<double>> bandwidth_times(traces_.size());
  for (std::size_t c = 0; c < traces_.size(); ++c) {
    if (!traces_[c]) continue;
    for (const auto& seg : traces_[c]->segments()) {
      bandwidth_times[c].push_back(seg.start);
    }
  }
  return build_epoch_barriers(options_.horizon, plan_.lookahead,
                              options_.control_interval,
                              static_cast<bool>(controller_),
                              options_.series_window, fault_times,
                              bandwidth_times,
                              options_.recorder != nullptr
                                  ? options_.obs_interval
                                  : 0.0);
}

void ShardedSimulator::seed_initial_events() {
  const auto& topo = instance_->topology();
  // First arrivals in global device order — each from its own stream, but the
  // order still matters for the one-draw-per-device discipline.
  for (std::size_t i = 0; i < topo.devices().size(); ++i) {
    const auto dev = static_cast<DeviceId>(i);
    const double first =
        rngs_[i].exponential(topo.device(dev).arrival_rate);
    cores_[static_cast<std::size_t>(plan_.device_shard[i])]->schedule(
        first, ShardCore::Ev::kArrival, dev);
  }
  // Bandwidth segments starting at/before zero take effect immediately; the
  // rest are barrier work.
  for (std::size_t c = 0; c < traces_.size(); ++c) {
    if (!traces_[c]) continue;
    for (const auto& seg : traces_[c]->segments()) {
      if (seg.start <= 0.0) cell_links_[c]->set_capacity(0.0, seg.bandwidth);
    }
  }
}

void ShardedSimulator::run_epochs(ThreadPool* pool, double barrier) {
  if (pool == nullptr || cores_.size() == 1) {
    for (auto& core : cores_) core->run_until(barrier);
    return;
  }
  pool->parallel_for(0, cores_.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) cores_[i]->run_until(barrier);
  });
}

void ShardedSimulator::deliver_envelopes() {
  std::vector<TaskEnvelope> all;
  for (auto& core : cores_) {
    if (core->outbox.empty()) continue;
    all.insert(all.end(), core->outbox.begin(), core->outbox.end());
    core->outbox.clear();
  }
  if (all.empty()) return;
  // Shard-count-invariant delivery order; ties beyond (time, id) cannot occur
  // (ids are unique).
  std::sort(all.begin(), all.end(),
            [](const TaskEnvelope& x, const TaskEnvelope& y) {
              return x.arrive_time != y.arrive_time
                         ? x.arrive_time < y.arrive_time
                         : x.id < y.id;
            });
  for (const auto& env : all) {
    ShardCore& v =
        *cores_[static_cast<std::size_t>(
            plan_.server_shard[static_cast<std::size_t>(env.server)])];
    const TaskIndex t = v.tasks.acquire();
    v.tasks.id[t] = env.id;
    v.tasks.arrival[t] = env.arrival;
    v.tasks.difficulty[t] = env.difficulty;
    v.tasks.rtt[t] = env.rtt;
    v.tasks.bw_weight[t] = env.bw_weight;
    v.tasks.cpu_weight[t] = env.cpu_weight;
    v.tasks.device_done[t] = env.device_done;
    v.tasks.phases[t] = env.phases;
    v.tasks.device[t] = env.device;
    v.tasks.server[t] = env.server;
    v.tasks.retries[t] = env.retries;
    v.tasks.flags[t] = env.flags;
    v.schedule(env.arrive_time, ShardCore::Ev::kServerArrive, -1, t);
  }
}

TaskIndex ShardedSimulator::migrate_task(ShardCore& from, ShardCore& to,
                                         TaskIndex task) {
  if (&from == &to) return task;
  const TaskIndex t = to.tasks.acquire();
  to.tasks.id[t] = from.tasks.id[task];
  to.tasks.arrival[t] = from.tasks.arrival[task];
  to.tasks.difficulty[t] = from.tasks.difficulty[task];
  to.tasks.rtt[t] = from.tasks.rtt[task];
  to.tasks.bw_weight[t] = from.tasks.bw_weight[task];
  to.tasks.cpu_weight[t] = from.tasks.cpu_weight[task];
  to.tasks.device_done[t] = from.tasks.device_done[task];
  to.tasks.upload_done[t] = from.tasks.upload_done[task];
  to.tasks.phases[t] = from.tasks.phases[task];
  to.tasks.device[t] = from.tasks.device[task];
  to.tasks.server[t] = from.tasks.server[task];
  to.tasks.retries[t] = from.tasks.retries[task];
  to.tasks.flags[t] = from.tasks.flags[task];
  from.tasks.release(task);
  return t;
}

void ShardedSimulator::serial_handle_fault(ShardCore& owner, TaskIndex task) {
  // Fault policies re-enter the device stage, so the task must live on its
  // device's shard first; then the core's ordinary handler runs (its clock is
  // already at the barrier).
  ShardCore& home =
      *cores_[static_cast<std::size_t>(
          plan_.device_shard[static_cast<std::size_t>(
              owner.tasks.device[task])])];
  const TaskIndex local = migrate_task(owner, home, task);
  home.handle_fault(local);
}

void ShardedSimulator::on_fault_event(const FaultEvent& ev, double bt) {
  if (ev.target == FaultTarget::Server) {
    const auto s = static_cast<std::size_t>(ev.id);
    if (ev.up) {
      if (!server_up_[s]) {
        server_up_[s] = true;
        --down_servers_;
      }
    } else if (server_up_[s]) {
      on_server_down(ev.id, bt);
    }
  } else {
    const auto c = static_cast<std::size_t>(ev.id);
    if (ev.up) {
      if (!link_up_[c]) {
        link_up_[c] = true;
        --down_links_;
      }
    } else if (link_up_[c]) {
      on_link_down(ev.id, bt);
    }
  }
}

void ShardedSimulator::on_server_down(ServerId s, double bt) {
  server_up_[static_cast<std::size_t>(s)] = false;
  ++down_servers_;
  ctr_server_down_->inc();
  servers_[static_cast<std::size_t>(s)]->clear(bt);
  ShardCore& v =
      *cores_[static_cast<std::size_t>(
          plan_.server_shard[static_cast<std::size_t>(s)])];
  // Global device order, exactly like the single loop's sweep.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const auto it = v.chains.find(chain_key(static_cast<DeviceId>(i), s));
    if (it == v.chains.end()) continue;
    ServerChain& chain = it->second;
    std::vector<TaskIndex> victims;
    if (chain.serving_task != kNoTask) {
      victims.push_back(chain.serving_task);
      chain.serving_task = kNoTask;
    }
    while (!chain.queue.empty()) victims.push_back(chain.queue.pop_front());
    chain.serving = false;
    for (TaskIndex vt : victims) serial_handle_fault(v, vt);
  }
}

void ShardedSimulator::on_link_down(CellId c, double bt) {
  link_up_[static_cast<std::size_t>(c)] = false;
  ++down_links_;
  ctr_link_down_->inc();
  cell_links_[static_cast<std::size_t>(c)]->clear(bt);
  ShardCore& d =
      *cores_[static_cast<std::size_t>(
          plan_.cell_shard[static_cast<std::size_t>(c)])];
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (instance_->topology().device(static_cast<DeviceId>(i)).cell != c) {
      continue;
    }
    auto& cd = devices_[i];
    std::vector<TaskIndex> victims;
    if (cd.uploading_task != kNoTask) {
      victims.push_back(cd.uploading_task);
      cd.uploading_task = kNoTask;
    }
    for (std::size_t pos = 0; pos < cd.upload_queue.size(); ++pos) {
      victims.push_back(cd.upload_queue.at(pos));
    }
    cd.upload_queue.clear();
    cd.uploading = false;
    for (TaskIndex vt : victims) serial_handle_fault(d, vt);
  }
}

void ShardedSimulator::controller_tick(double bt) {
  Observation o;
  o.time = bt;
  o.cell_bandwidth.resize(cell_links_.size());
  for (std::size_t c = 0; c < cell_links_.size(); ++c) {
    o.cell_bandwidth[c] = cell_links_[c]->capacity();
  }
  o.server_alive = server_up_;
  const double span = std::max(bt - last_controller_tick_, 1e-12);
  // Server-stage depth is scattered across the server shards' chain maps;
  // sum it per device first (integer adds, so map order is irrelevant).
  std::vector<std::size_t> server_depth(devices_.size(), 0);
  for (const auto& core : cores_) {
    for (const auto& [key, chain] : core->chains) {
      server_depth[static_cast<std::size_t>(key >> 32)] +=
          chain.queue.size() + (chain.serving_task != kNoTask ? 1 : 0);
    }
  }
  o.offered_rate.assign(devices_.size(), 0.0);
  o.queue_depth.assign(devices_.size(), 0.0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    o.offered_rate[i] = static_cast<double>(arrivals_since_tick_[i]) / span;
    const auto& cd = devices_[i];
    o.queue_depth[i] = static_cast<double>(cd.device_backlog +
                                           cd.upload_queue.size() +
                                           (cd.uploading_task != kNoTask ? 1
                                                                         : 0) +
                                           server_depth[i]);
  }
  // Serial phase only: one channel sample per tick, in tick order — the
  // identical draw sequence the single loop consumes, for any shard/thread
  // count.
  if (channel_) {
    channel_->sample(bt, o.cell_bandwidth, o.server_alive, o.bw_fresh,
                     o.bw_age, o.alive_fresh);
  }
  ControlAction action = controller_(o);
  if (action.decision) apply_decision(*action.decision);
  if (action.admit_fraction) set_admission(*action.admit_fraction);
  arrivals_since_tick_.assign(devices_.size(), 0);
  last_controller_tick_ = bt;
}

void ShardedSimulator::serial_phase(const EpochBarrier& b) {
  for (auto& core : cores_) {
    core->now = b.time;  // serial work runs on the barrier clock
    core->serial_mode = true;
  }
  // The single loop's (time, seq) order at a shared timestamp: envelopes only
  // schedule (no observable effect ordering), then construction-seeded fault
  // events, then bandwidth change-points, then the controller tick, then the
  // series boundary.
  deliver_envelopes();
  const auto& fault_events = options_.faults.schedule.events();
  for (const std::size_t idx : b.fault_events) {
    ++serial_events_;
    serial_last_time_ = b.time;
    on_fault_event(fault_events[idx], b.time);
  }
  for (const auto& [cell, seg_idx] : b.bandwidth_changes) {
    ++serial_events_;
    serial_last_time_ = b.time;
    const auto c = static_cast<std::size_t>(cell);
    const auto& seg = traces_[c]->segments()[seg_idx];
    cell_links_[c]->set_capacity(b.time, seg.bandwidth);
    cores_[static_cast<std::size_t>(plan_.cell_shard[c])]->arm_fluid(c);
  }
  if (b.controller && controller_) {
    ++serial_events_;
    serial_last_time_ = b.time;
    controller_tick(b.time);
  }
  if (b.series && options_.series_window > 0.0) {
    ++serial_events_;
    serial_last_time_ = b.time;
    MetricRecord r;
    r.time = b.time;
    r.serial_seq = serial_seq_++;
    r.kind = MetricRecordKind::kSeries;
    serial_log_.push_back(r);
  }
  if (b.obs && options_.obs_interval > 0.0 && options_.recorder != nullptr) {
    ++serial_events_;
    serial_last_time_ = b.time;
    obs_sample(b.time);
  }
  for (auto& core : cores_) core->serial_mode = false;
}

void ShardedSimulator::obs_sample(double bt) {
  // Counter sums and the live-task count are integers, so per-core addition
  // order cannot perturb them; queue depth is the controller tick's integer
  // computation. The resulting EngineSample is bit-identical to the single
  // loop's obs_tick at the same grid time.
  EngineSample s;
  s.time = bt;
  std::size_t live = 0;
  for (const auto& core : cores_) {
    s.arrived += core->ctr_arrived->value();
    s.completed += core->ctr_completed->value();
    s.failed += core->ctr_failed->value();
    s.shed += core->ctr_shed->value();
    s.expired += core->ctr_expired->value();
    s.deadline_met += core->ctr_deadline_met->value();
    s.deadline_total += core->ctr_deadline_total->value();
    live += core->tasks.live();
  }
  s.in_flight = static_cast<double>(live);
  std::vector<std::size_t> server_depth(devices_.size(), 0);
  for (const auto& core : cores_) {
    for (const auto& [key, chain] : core->chains) {
      server_depth[static_cast<std::size_t>(key >> 32)] +=
          chain.queue.size() + (chain.serving_task != kNoTask ? 1 : 0);
    }
  }
  double depth = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const auto& cd = devices_[i];
    depth += static_cast<double>(cd.device_backlog + cd.upload_queue.size() +
                                 (cd.uploading_task != kNoTask ? 1 : 0) +
                                 server_depth[i]);
  }
  s.queue_depth = depth;
  options_.recorder->sample(s);
  if (options_.slo != nullptr) options_.slo->evaluate();
}

void ShardedSimulator::replay_metric_records(
    const std::vector<MetricRecord>& merged) {
  const auto& topo = instance_->topology();
  const bool series_on = options_.series_window > 0.0;
  if (series_on) metrics_.series.window = options_.series_window;
  // The single loop's accumulators, fed the identical value sequence in the
  // identical order — bit-identical floating-point results.
  std::int64_t in_flight = 0;
  double in_flight_integral = 0.0;
  double in_flight_last_t = 0.0;
  std::size_t window_completions = 0;
  double window_accuracy_sum = 0.0;
  std::size_t window_shed = 0;
  auto settle = [&](double t) {
    in_flight_integral += static_cast<double>(in_flight) *
                          (t - in_flight_last_t);
    in_flight_last_t = t;
  };
  for (const MetricRecord& r : merged) {
    const bool counted = (r.flags & MetricRecord::kCounted) != 0;
    switch (r.kind) {
      case MetricRecordKind::kArrival:
        settle(r.time);
        ++in_flight;
        break;
      case MetricRecordKind::kSeries:
        settle(r.time);
        metrics_.series.tasks_in_flight.push_back(in_flight_integral /
                                                  options_.series_window);
        in_flight_integral = 0.0;
        metrics_.series.completion_rate.push_back(
            static_cast<double>(window_completions) /
            options_.series_window);
        metrics_.series.mean_accuracy.push_back(
            window_completions
                ? window_accuracy_sum /
                      static_cast<double>(window_completions)
                : 0.0);
        metrics_.series.shed_rate.push_back(
            static_cast<double>(window_shed) / options_.series_window);
        window_completions = 0;
        window_accuracy_sum = 0.0;
        window_shed = 0;
        break;
      case MetricRecordKind::kComplete: {
        if (series_on) {
          settle(r.time);
          --in_flight;
          ++window_completions;
          window_accuracy_sum += r.correct_prob;
        }
        if (!counted) break;
        auto& dm = metrics_.per_device[static_cast<std::size_t>(r.device)];
        dm.latency.add(r.latency);
        hist_latency_->add(r.latency);
        ++dm.completed;
        if ((r.flags & MetricRecord::kOutageOrFaulted) != 0) {
          metrics_.outage_latency.add(r.latency);
        }
        const auto& device = topo.device(r.device);
        if (device.deadline > 0.0) {
          ++dm.deadline_total;
          if (r.latency <= device.deadline) ++dm.deadline_met;
        }
        dm.accuracy_sum += r.correct_prob;
        dm.energy_sum += r.energy;
        if ((r.flags & MetricRecord::kOffloaded) != 0) ++dm.offloaded;
        const auto slot = static_cast<std::size_t>(r.exit_slot);
        if (dm.exit_histogram.size() <= slot) {
          dm.exit_histogram.resize(slot + 1, 0);
        }
        ++dm.exit_histogram[slot];
        break;
      }
      case MetricRecordKind::kFail: {
        if (series_on) {
          settle(r.time);
          --in_flight;
        }
        if (!counted) break;
        auto& dm = metrics_.per_device[static_cast<std::size_t>(r.device)];
        ++dm.failed;
        if (topo.device(r.device).deadline > 0.0) ++dm.deadline_total;
        break;
      }
      case MetricRecordKind::kShed:
      case MetricRecordKind::kExpire: {
        if (series_on) {
          settle(r.time);
          --in_flight;
          ++window_shed;
        }
        if (!counted) break;
        auto& dm = metrics_.per_device[static_cast<std::size_t>(r.device)];
        if (r.kind == MetricRecordKind::kExpire) {
          ++dm.expired;
        } else {
          ++dm.shed;
        }
        if (topo.device(r.device).deadline > 0.0) ++dm.deadline_total;
        break;
      }
    }
  }
}

void ShardedSimulator::finalize_metrics() {
  metrics_.horizon = options_.horizon;
  std::size_t events = serial_events_;
  for (const auto& core : cores_) events += core->events_processed;
  metrics_.events_processed = events;
  metrics_.completed_all = ctr_completed_->value();
  metrics_.failed_all = ctr_failed_->value();
  metrics_.shed_all = ctr_shed_->value() + ctr_expired_->value();
  const std::uint64_t arrived_all = ctr_arrived_->value();
  const std::uint64_t terminal =
      metrics_.completed_all + metrics_.failed_all + metrics_.shed_all;
  SCALPEL_REQUIRE(arrived_all >= terminal,
                  "terminal events outnumber arrivals");
  metrics_.in_flight_end = static_cast<std::size_t>(arrived_all - terminal);
  std::size_t deadline_met = 0;
  std::size_t deadline_total = 0;
  double acc_sum = 0.0;
  double energy_sum = 0.0;
  std::size_t offloaded = 0;
  for (const auto& dm : metrics_.per_device) {
    metrics_.arrived += dm.arrived;
    metrics_.completed += dm.completed;
    metrics_.failed += dm.failed;
    metrics_.shed += dm.shed;
    metrics_.expired += dm.expired;
    metrics_.retried += dm.retries;
    metrics_.resteered += dm.resteered;
    for (double v : dm.latency.values()) metrics_.latency.add(v);
    deadline_met += dm.deadline_met;
    deadline_total += dm.deadline_total;
    acc_sum += dm.accuracy_sum;
    energy_sum += dm.energy_sum;
    offloaded += dm.offloaded;
  }
  metrics_.deadline_satisfaction =
      deadline_total ? static_cast<double>(deadline_met) /
                           static_cast<double>(deadline_total)
                     : 1.0;
  metrics_.measured_accuracy =
      metrics_.completed ? acc_sum / static_cast<double>(metrics_.completed)
                         : 0.0;
  metrics_.mean_task_energy =
      metrics_.completed ? energy_sum / static_cast<double>(metrics_.completed)
                         : 0.0;
  metrics_.offload_fraction =
      metrics_.completed
          ? static_cast<double>(offloaded) /
                static_cast<double>(metrics_.completed)
          : 0.0;
  // The single loop settles utilization at its final now_ — the last *popped*
  // event's time. Barrier bookkeeping bumps core->now past that, so the
  // popped-event clocks (and the last dispatching barrier) are tracked
  // separately.
  double t_end = serial_last_time_;
  for (const auto& core : cores_) {
    t_end = std::max(t_end, core->last_event_time);
  }
  for (const auto& s : servers_) {
    metrics_.server_utilization.push_back(
        s->busy_time(std::min(t_end, options_.horizon)) / options_.horizon);
  }
  if (!options_.faults.schedule.empty() && !servers_.empty()) {
    double avail = 0.0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      avail += options_.faults.schedule.server_availability(
          static_cast<std::int32_t>(s), options_.horizon);
    }
    metrics_.availability = avail / static_cast<double>(servers_.size());
  }
  registry_.gauge("sim.task.in_flight_end")
      .set(static_cast<double>(metrics_.in_flight_end));
  registry_.gauge("sim.availability").set(metrics_.availability);
  registry_.gauge("sim.horizon_seconds").set(options_.horizon);
  registry_.gauge("sim.events_processed")
      .set(static_cast<double>(metrics_.events_processed));
  std::size_t live = 0;
  for (const auto& core : cores_) live += core->tasks.live();
  SCALPEL_REQUIRE(live == metrics_.in_flight_end,
                  "task pool live count diverged from in-flight accounting");
  SCALPEL_REQUIRE(metrics_.arrived == metrics_.completed_all +
                                          metrics_.failed_all +
                                          metrics_.shed_all +
                                          metrics_.in_flight_end,
                  "task conservation violated");
}

SimMetrics ShardedSimulator::run() {
  if (options_.obs_interval > 0.0 && options_.recorder != nullptr) {
    SCALPEL_REQUIRE(!controller_ ||
                        options_.obs_interval <= options_.control_interval,
                    "obs_interval must not exceed control_interval");
    SCALPEL_REQUIRE(options_.series_window == 0.0 ||
                        options_.obs_interval <= options_.series_window,
                    "obs_interval must not exceed series_window");
  }
  seed_initial_events();
  const std::vector<EpochBarrier> barriers = build_agenda();

  std::unique_ptr<ThreadPool> pool;
  if (cores_.size() > 1 && shard_options_.threads != 1) {
    pool = std::make_unique<ThreadPool>(shard_options_.threads);
  }

  for (const EpochBarrier& b : barriers) {
    run_epochs(pool.get(), b.time);
    serial_phase(b);
    ++barriers_run_;
  }
  // Everything left fires at exactly the horizon (the final barrier). Any
  // envelope it would create has arrive_time > horizon and is kept in flight
  // instead, so the outboxes stay empty.
  run_epochs(pool.get(), std::numeric_limits<double>::infinity());
  for (const auto& core : cores_) {
    SCALPEL_REQUIRE(core->outbox.empty(),
                    "cross-shard envelope created after the final barrier");
  }

  // Merge the per-shard streams into the single loop's exact accounting.
  std::vector<const std::vector<MetricRecord>*> logs;
  logs.reserve(cores_.size() + 1);
  for (const auto& core : cores_) logs.push_back(&core->log);
  logs.push_back(&serial_log_);
  replay_metric_records(merge_metric_records(logs));
  for (const auto& core : cores_) {
    for (const auto& [name, counter] : core->registry.counters()) {
      registry_.counter(name).inc(counter.value());
    }
  }
  finalize_metrics();
  return metrics_;
}

std::vector<TraceEvent> ShardedSimulator::trace_events() const {
  std::vector<TraceEvent> all;
  for (const auto& core : cores_) {
    const auto snap = core->tracer.snapshot();
    all.insert(all.end(), snap.begin(), snap.end());
  }
  const auto serial = serial_tracer_.snapshot();
  all.insert(all.end(), serial.begin(), serial.end());
  return reconcile_trace(std::move(all));
}

}  // namespace scalpel
