#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace scalpel {

/// One scheduled simulator event. POD on purpose: the inner loop moves these
/// by value, so scheduling never allocates and dispatch never goes through a
/// type-erased callable (the former std::function<void()> event payload cost
/// a heap allocation plus an indirect call per event — see BENCH_simcore).
/// `kind` is an opaque dispatch tag the simulator switches on; `a` and `b`
/// carry the operands (device / resource slot / task index / epoch).
struct SimEvent {
  double time = 0.0;
  std::uint64_t seq = 0;   // push order; total-order tiebreak at equal times
  std::uint32_t kind = 0;  // dispatch tag, opaque to the queue
  std::int32_t a = -1;     // small operand (device id, resource slot, cell)
  std::uint64_t b = 0;     // wide operand (task index, epoch, segment index)
};

/// Strict total order on (time, seq): seq is unique per queue, so two events
/// never compare equal and every queue implementation pops the exact same
/// sequence — the bit-identical-determinism bar for swapping implementations.
inline bool sim_event_before(const SimEvent& x, const SimEvent& y) {
  return x.time != y.time ? x.time < y.time : x.seq < y.seq;
}

/// Reference implementation: std::priority_queue over (time, seq). Kept as
/// the differential-test oracle for CalendarEventQueue and selectable via
/// Simulator::Options::event_queue (test-only; the calendar queue is the
/// production pick).
class BinaryHeapEventQueue {
 public:
  void push(const SimEvent& ev) { heap_.push(ev); }
  SimEvent pop_min();
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const SimEvent& x, const SimEvent& y) const {
      return sim_event_before(y, x);
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
};

/// Calendar queue (Brown 1988): a ring of time buckets of width `width_`
/// seconds, scanned in time order. push is O(1); pop scans the current
/// "day" bucket and, with the resize policy holding mean occupancy near one
/// event per bucket, is O(1) amortized — versus O(log n) heap sift-downs
/// with poor locality. Pop order is exactly min (time, seq), so a run is
/// bit-identical to one driven by BinaryHeapEventQueue (enforced by the
/// perf-equivalence suite and the fuzz oracle in fuzz_test).
///
/// The width is re-estimated at every resize from the sim-time gap between
/// recently popped events (the rate the event horizon actually advances at),
/// falling back to spreading the current contents evenly before any pops
/// have happened. Far-future events (e.g. committed finish times of a
/// saturated device queue) sit untouched in their buckets until the scan
/// reaches them; if a whole ring revolution finds nothing due, the queue
/// jumps straight to the global minimum instead of spinning over empty days.
class CalendarEventQueue {
 public:
  CalendarEventQueue() { init(kMinBuckets, 1.0); }

  void push(const SimEvent& ev);
  SimEvent pop_min();
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static constexpr std::size_t kMinBuckets = 16;

  std::uint64_t day_of(double t) const {
    return static_cast<std::uint64_t>(t * inv_width_);
  }
  void init(std::size_t nbuckets, double width);
  /// Re-estimates the width and redistributes every event over `nbuckets`.
  void rebucket(std::size_t nbuckets);
  /// Finds the global minimum event (sparse-tail fallback and rebucket
  /// re-anchor); returns bucket and slot of the minimum.
  void find_global_min(std::size_t* bucket, std::size_t* slot) const;
  SimEvent take(std::size_t bucket, std::size_t slot);

  /// Sentinel for min_day_ entries of empty buckets: later than any day.
  static constexpr std::uint64_t kNoDay = ~std::uint64_t{0};

  std::vector<std::vector<SimEvent>> buckets_;
  /// Stale-low bound on the earliest day among each bucket's events (kNoDay
  /// when known empty): push() tightens it downward exactly, take() leaves
  /// it stale, and a pop probe that finds nothing due repairs it from the
  /// scan it just did. The pop scan probes this flat array — one integer
  /// compare per day — instead of walking every bucket's contents;
  /// far-future events alias all over the ring, so without the cache each
  /// probed day costs a content scan. That dominated pop cost whenever
  /// sparse periodic events (telemetry samples, controller ticks) sat whole
  /// quiet zones ahead of the frontier. Purely an accelerator: a bucket
  /// whose bound is past the scan day cannot hold a due event, so pop order
  /// is unchanged.
  std::vector<std::uint64_t> min_day_;
  std::size_t mask_ = 0;        // buckets_.size() - 1 (power of two)
  double width_ = 1.0;          // seconds per bucket
  double inv_width_ = 1.0;
  std::uint64_t cur_day_ = 0;   // absolute day the scan pointer is on
  std::size_t size_ = 0;
  // Pop-rate stats since the last rebucket, feeding the width estimate.
  std::uint64_t pops_since_resize_ = 0;
  double first_pop_time_ = 0.0;
  double last_pop_time_ = 0.0;
};

/// Which event-queue implementation a Simulator run uses. kBinaryHeap is
/// retained for differential testing only — by construction both pop the
/// identical sequence, and tests/sim/perf_equivalence_test.cpp holds the two
/// to bit-identical metrics, traces, and conservation counters.
enum class EventQueueImpl : std::uint8_t { kCalendar = 0, kBinaryHeap = 1 };

/// Facade the simulator schedules through: assigns the monotonically
/// increasing `seq` tiebreak and forwards to the selected implementation.
class EventQueue {
 public:
  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kCalendar)
      : impl_(impl) {}

  void push(double time, std::uint32_t kind, std::int32_t a, std::uint64_t b) {
    SimEvent ev{time, seq_++, kind, a, b};
    if (impl_ == EventQueueImpl::kCalendar) {
      calendar_.push(ev);
    } else {
      heap_.push(ev);
    }
  }
  /// Re-inserts an already-sequenced event unchanged. The sharded simulator
  /// bounds each epoch by popping the queue minimum and pushing it back when
  /// it lies at/past the barrier — keeping the original seq preserves the
  /// (time, seq) total order that the determinism bar rests on.
  void push_raw(const SimEvent& ev) {
    if (impl_ == EventQueueImpl::kCalendar) {
      calendar_.push(ev);
    } else {
      heap_.push(ev);
    }
  }
  SimEvent pop_min() {
    return impl_ == EventQueueImpl::kCalendar ? calendar_.pop_min()
                                              : heap_.pop_min();
  }
  bool empty() const {
    return impl_ == EventQueueImpl::kCalendar ? calendar_.empty()
                                              : heap_.empty();
  }
  std::size_t size() const {
    return impl_ == EventQueueImpl::kCalendar ? calendar_.size()
                                              : heap_.size();
  }

 private:
  EventQueueImpl impl_;
  CalendarEventQueue calendar_;
  BinaryHeapEventQueue heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace scalpel
