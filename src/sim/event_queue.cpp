#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace scalpel {

SimEvent BinaryHeapEventQueue::pop_min() {
  SCALPEL_REQUIRE(!heap_.empty(), "pop from empty event queue");
  SimEvent out = heap_.top();
  heap_.pop();
  return out;
}

void CalendarEventQueue::init(std::size_t nbuckets, double width) {
  buckets_.assign(nbuckets, {});
  min_day_.assign(nbuckets, kNoDay);
  mask_ = nbuckets - 1;
  width_ = width;
  inv_width_ = 1.0 / width;
  cur_day_ = 0;
  pops_since_resize_ = 0;
  first_pop_time_ = 0.0;
  last_pop_time_ = 0.0;
}

void CalendarEventQueue::push(const SimEvent& ev) {
  SCALPEL_REQUIRE(ev.time >= 0.0 && std::isfinite(ev.time),
                  "event time must be finite and non-negative");
  const std::uint64_t day = day_of(ev.time);
  const std::size_t idx = day & mask_;
  buckets_[idx].push_back(ev);
  if (day < min_day_[idx]) min_day_[idx] = day;
  ++size_;
  // An event behind the scan pointer (possible only before the first pop or
  // at a rounding boundary) rewinds the pointer so it cannot be skipped.
  if (day < cur_day_) cur_day_ = day;
  if (size_ > 2 * buckets_.size()) rebucket(buckets_.size() * 2);
}

SimEvent CalendarEventQueue::take(std::size_t bucket, std::size_t slot) {
  auto& b = buckets_[bucket];
  SimEvent out = b[slot];
  b[slot] = b.back();
  b.pop_back();
  --size_;
  ++pops_since_resize_;
  if (pops_since_resize_ == 1) first_pop_time_ = out.time;
  last_pop_time_ = out.time;
  return out;
}

void CalendarEventQueue::find_global_min(std::size_t* bucket,
                                         std::size_t* slot) const {
  std::size_t bb = 0;
  std::size_t bs = 0;
  bool found = false;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto& b = buckets_[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!found || sim_event_before(b[j], buckets_[bb][bs])) {
        bb = i;
        bs = j;
        found = true;
      }
    }
  }
  SCALPEL_REQUIRE(found, "find_global_min on empty calendar");
  *bucket = bb;
  *slot = bs;
}

SimEvent CalendarEventQueue::pop_min() {
  SCALPEL_REQUIRE(size_ > 0, "pop from empty event queue");
  for (std::size_t step = 0; step <= mask_; ++step) {
    const std::size_t idx = cur_day_ & mask_;
    // One integer compare decides whether this day's bucket can hold a due
    // event; empty buckets and buckets holding only future-revolution
    // events are skipped without touching their contents. min_day_ is a
    // stale-low bound (take() does not refresh it), so a skip is always
    // sound and a false probe repairs the bound below.
    if (min_day_[idx] > cur_day_) {
      ++cur_day_;
      continue;
    }
    // Candidates are this bucket's events belonging to the current day (the
    // same bucket also holds events whole ring-revolutions in the future);
    // the earliest (time, seq) among them is the global minimum because
    // every earlier day has already been drained.
    const auto& b = buckets_[idx];
    std::size_t best = b.size();
    std::uint64_t bucket_min = kNoDay;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t day = day_of(b[j].time);
      bucket_min = std::min(bucket_min, day);
      if (day <= cur_day_ &&
          (best == b.size() || sim_event_before(b[j], b[best]))) {
        best = j;
      }
    }
    if (best != b.size()) {
      SimEvent out = take(idx, best);
      if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
        rebucket(buckets_.size() / 2);
      }
      return out;
    }
    // Nothing due: the scan already computed the true bucket minimum, so
    // tighten the stale bound for free before moving on.
    min_day_[idx] = bucket_min;
    ++cur_day_;
  }
  // A full revolution found nothing due: the contents are sparse and far
  // ahead. Jump the pointer to the global minimum instead of spinning.
  std::size_t bucket = 0;
  std::size_t slot = 0;
  find_global_min(&bucket, &slot);
  cur_day_ = day_of(buckets_[bucket][slot].time);
  SimEvent out = take(bucket, slot);
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
    rebucket(buckets_.size() / 2);
  }
  return out;
}

void CalendarEventQueue::rebucket(std::size_t nbuckets) {
  // Width estimate: the mean sim-time gap between recently popped events is
  // the rate the frontier advances at; a handful of those gaps per bucket
  // keeps the due bucket short without stranding the scan in empty days.
  double width = 0.0;
  if (pops_since_resize_ >= 8 && last_pop_time_ > first_pop_time_) {
    width = 4.0 * (last_pop_time_ - first_pop_time_) /
            static_cast<double>(pops_since_resize_);
  }
  std::vector<SimEvent> all;
  all.reserve(size_);
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (auto& b : buckets_) {
    for (const auto& ev : b) {
      if (!any) {
        lo = hi = ev.time;
        any = true;
      } else {
        lo = std::min(lo, ev.time);
        hi = std::max(hi, ev.time);
      }
      all.push_back(ev);
    }
    b.clear();
  }
  if (width <= 0.0 && any && hi > lo && !all.empty()) {
    width = (hi - lo) / static_cast<double>(all.size());  // startup fallback
  }
  if (width <= 0.0 || !std::isfinite(width)) width = 1.0;
  width = std::max(width, 1e-9);
  init(nbuckets, width);
  size_ = all.size();
  for (const auto& ev : all) {
    const std::uint64_t day = day_of(ev.time);
    const std::size_t idx = day & mask_;
    buckets_[idx].push_back(ev);
    if (day < min_day_[idx]) min_day_[idx] = day;
  }
  // Re-anchor the scan pointer on the earliest surviving event so the new
  // day grid starts exactly where the old one left off.
  if (any) {
    std::size_t bucket = 0;
    std::size_t slot = 0;
    find_global_min(&bucket, &slot);
    cur_day_ = day_of(buckets_[bucket][slot].time);
  }
}

}  // namespace scalpel
