#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "ctrl/cell.hpp"
#include "ctrl/coordinator.hpp"
#include "ctrl/fabric.hpp"
#include "edge/dynamics.hpp"
#include "obs/audit.hpp"
#include "sim/simulator.hpp"

namespace scalpel {
class MetricsRegistry;
class TimeSeriesRecorder;

struct DistributedPlaneOptions {
  ControlFabricOptions fabric;
  CoordinatorOptions coordinator;
  CellControllerOptions cell;
  /// Controller liveness script, reusing FaultSchedule with
  /// FaultTarget::Server ids as *endpoint* ids: 0 = the coordinator,
  /// 1 + k = cell k's controller. Independent of the data-plane fault
  /// script — servers and their controllers fail separately.
  FaultSchedule controller_faults;
  /// Seed for the fabric's per-link RNG substreams (dedicated stream tag;
  /// never collides with workload or telemetry substreams).
  std::uint64_t seed = 1;
  /// Control-plane span ring capacity; 0 disables span tracing. Recording
  /// is purely observational (no RNG draws), so a traced plane replays
  /// bit-identically to an untraced one.
  std::size_t span_capacity = 0;
};

/// The distributed control plane: per-cell controllers and a global
/// coordinator exchanging typed messages over a deterministic faulty
/// fabric, packaged behind the engines' ObservingController seam. Both
/// engines invoke the callback identically at control ticks, so the whole
/// plane — message delays, drops, crashes, epochs — is bit-identical
/// between the single loop and any shard x thread configuration by
/// construction.
///
/// Per tick: endpoint liveness transitions (crash wipes volatile state and
/// the victim's in-flight messages; restart replays the endpoint's own
/// state log), due-message delivery in deterministic (deliver_at, seq)
/// order, a coordinator round, then cell rounds in index order. Changed
/// cell plans merge into one global Decision; the merge clamps per-server
/// global share sums to 1 and per-cell bandwidth sums to observed capacity,
/// so a split-brain mix of slice epochs can squeeze a cell but never
/// produce an unroutable or oversubscribed plan.
class DistributedControlPlane {
 public:
  DistributedControlPlane(const ClusterTopology& topology,
                          DistributedPlaneOptions opts);

  /// One control window. Returns the merged plan when any cell's local
  /// decisions changed (and on the first tick), nothing otherwise.
  ControlAction tick(const Observation& o);

  /// Adapter for Simulator/ShardedSimulator::set_controller.
  Simulator::ObservingController callback();

  const Decision& merged() const { return merged_; }
  const ProblemInstance& instance() const { return instance_; }
  const ControlFabric& fabric() const { return fabric_; }
  const GlobalCoordinator& coordinator() const { return coord_; }
  const std::vector<CellController>& cells() const { return cells_; }

  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t plan_changes() const { return plan_changes_; }
  std::uint64_t coordinator_crashes() const { return coordinator_crashes_; }
  std::uint64_t controller_crashes() const { return controller_crashes_; }
  /// Due messages discarded because their recipient was down.
  std::uint64_t dead_letters() const { return dead_letters_; }
  /// True once the coordinator's tatonnement settled and every live cell
  /// adopted the final epoch.
  bool converged() const;
  std::uint64_t coordinator_losses() const;
  std::uint64_t rejoins() const;
  std::uint64_t stale_events() const;
  std::uint64_t epochs_rejected() const;
  std::uint64_t local_solves() const;
  std::uint64_t cell_fallbacks() const;

  DecisionAuditLog& audit_log() { return audit_; }
  const DecisionAuditLog& audit_log() const { return audit_; }

  /// Span ring for the whole plane (fabric, coordinator, cells all record
  /// into it); empty when span_capacity was 0.
  const CtrlTracer& ctrl_trace() const { return ctrl_trace_; }

  /// Publishes the plane's counters into `registry` as ctrl.* metrics
  /// (absolute values via set_value). Call once, after the run — the
  /// registry then reconciles against the plane's own accessors exactly.
  void publish_metrics(MetricsRegistry& registry) const;

  /// Registers live gauges/counters (ctrl.epoch, per-cell slice + price,
  /// dead letters, fabric drops, re-grants) on a time-series recorder. Call
  /// before the run's first sample.
  void register_sources(TimeSeriesRecorder& recorder);

 private:
  void apply_liveness(double now);
  void route(const CtrlMessage& msg, double now);
  void merge(const Observation& o);

  DistributedPlaneOptions opts_;
  ProblemInstance instance_;
  ControlFabric fabric_;
  GlobalCoordinator coord_;
  std::vector<CellController> cells_;
  std::vector<bool> endpoint_up_;  // [0] coordinator, [1 + k] cell k
  Decision merged_;
  bool merged_valid_ = false;
  std::uint64_t ticks_ = 0;
  std::uint64_t plan_changes_ = 0;
  std::uint64_t coordinator_crashes_ = 0;
  std::uint64_t controller_crashes_ = 0;
  std::uint64_t dead_letters_ = 0;
  DecisionAuditLog audit_;
  CtrlTracer ctrl_trace_;
};

}  // namespace scalpel
