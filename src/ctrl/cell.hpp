#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/failover.hpp"
#include "core/instance.hpp"
#include "core/joint.hpp"
#include "ctrl/fabric.hpp"
#include "obs/audit.hpp"

namespace scalpel {

struct CellControllerOptions {
  /// Seconds without any coordinator message before the cell declares the
  /// coordinator lost and enters validated local autonomy.
  double heartbeat_timeout = 3.0;
  /// Seconds between load reports to the coordinator.
  double report_interval = 1.0;
  /// A slice grant older than this is stale: the cell keeps operating (it
  /// never blocks on the coordinator) but only trusts `stale_discount` of
  /// the granted capacity — bounded staleness, priced conservatively.
  /// Heartbeats carrying the adopted epoch re-anchor freshness, so a live
  /// converged coordinator keeps its cells permanently fresh.
  double fresh_for = 5.0;
  double stale_discount = 0.75;
  /// A newly adopted grant re-solves only when some server's slice moved by
  /// more than this (absolute) — the distributed analogue of the online
  /// controller's bandwidth hysteresis.
  double slice_hysteresis = 0.02;
  /// Re-solve when the observed cell uplink drifts from the value used at
  /// the last local solve by more than this relative factor.
  double bandwidth_hysteresis = 0.25;
  /// Watchdog applied to every local solve (budget, validate_plan on the
  /// cell's sub-instance).
  failover::GuardOptions guard;
  JointOptions joint;
  /// Test seam: replaces JointOptimizer for the cell's local solves.
  std::function<Decision(const ProblemInstance&, const JointOptions&)> solver;
};

/// One cell's controller in the distributed plane: solves the joint
/// surgery+allocation problem on its own sub-topology — its cell, its
/// devices, and every live server scaled down to the capacity slice the
/// coordinator granted — and never needs a global view. Local shares map
/// back exactly: a share sigma of a server scaled by phi equals a global
/// share sigma*phi of the full server under GPS, so the merged global plan
/// is feasible whenever every cell's local plan is.
///
/// Robustness contract: every local solve runs under the PR 8 watchdog
/// (failover::guarded_attempt) and a last-good -> device-only fallback
/// chain, so the cell's devices always have a routable plan; coordinator
/// silence beyond heartbeat_timeout flips the cell into audited local
/// autonomy; grant staleness discounts usable capacity instead of blocking;
/// grants carrying an epoch <= the last adopted one are rejected
/// (split-brain guard). Crash wipes volatile state; restart replays the
/// cell's own append-only state log.
class CellController {
 public:
  CellController(const ProblemInstance& global, CellId cell,
                 CellControllerOptions opts, DecisionAuditLog* audit);

  /// Ingests a delivered message. Any coordinator message is a sign of
  /// life; kSliceGrant additionally adopts the slice (epoch permitting).
  void receive(const CtrlMessage& msg, double now);

  /// One control window: staleness/liveness checks, local re-solve when
  /// triggered, load report on cadence. Returns true when the cell's local
  /// decisions changed.
  bool tick(double now, double cell_bandwidth,
            const std::vector<bool>& server_alive, ControlFabric& fabric);

  /// Crash: volatile state (plan, slice, epoch, anchors) is lost; the state
  /// log survives. While down the cell's devices keep executing the last
  /// plan the plane merged — the data plane outlives its controller.
  void crash();
  /// Restart at `now`: replays the state log, with a fresh heartbeat grace
  /// window so a restart doesn't instantly declare the coordinator lost.
  void restart(double now);

  bool has_plan() const { return has_plan_; }
  CellId cell() const { return cell_; }
  const std::vector<DeviceId>& members() const { return members_; }
  /// Adopted decisions for members(), same order, in *global* share space.
  const std::vector<DeviceDecision>& local() const { return local_; }

  bool autonomous() const { return autonomous_; }
  bool stale() const { return stale_; }
  std::uint64_t adopted_epoch() const { return adopted_epoch_; }
  std::uint64_t local_solves() const { return local_solves_; }
  std::uint64_t fallbacks() const { return fallbacks_; }
  std::uint64_t epochs_rejected() const { return epochs_rejected_; }
  std::uint64_t coordinator_losses() const { return coordinator_losses_; }
  std::uint64_t rejoins() const { return rejoins_; }
  std::uint64_t stale_transitions() const { return stale_transitions_; }
  std::uint64_t restarts() const { return restarts_; }
  /// Grants adopted past the epoch guard (each records a kAdopted span).
  std::uint64_t adoptions() const { return adoptions_; }

  /// Mean per-server capacity slice the cell currently holds — the "price"
  /// signal the coordinator's tatonnement converges.
  double slice_mean() const;
  /// Fraction of the granted slice the cell trusts right now (1 fresh,
  /// stale_discount stale).
  double effective_price() const {
    return stale_ ? opts_.stale_discount : 1.0;
  }

  /// Attaches a span recorder (nullptr detaches); purely observational.
  void set_tracer(CtrlTracer* tracer) { tracer_ = tracer; }

 private:
  struct LogEntry {
    std::uint64_t epoch = 0;
    std::vector<double> slice;
    double granted_at = 0.0;
    std::vector<DeviceDecision> local;
    bool has_plan = false;
  };

  Decision run_solver(const ProblemInstance& sub) const;
  /// Guarded local solve on the scaled sub-topology; adopts on success,
  /// walks the per-cell fallback chain on failure. Returns true when
  /// local_ changed.
  bool local_solve(double now, AuditCause cause, std::string detail);
  /// Members pointing at dead or zero-slice servers drop to device-only
  /// (the kept-last-good repair step of the fallback chain).
  bool repair_local(const std::vector<bool>& server_alive);
  void append_log();
  std::string tag() const;  // "cell k: " audit prefix

  const ProblemInstance* global_;
  CellId cell_;
  CellControllerOptions opts_;
  DecisionAuditLog* audit_;
  CtrlTracer* tracer_ = nullptr;
  std::vector<DeviceId> members_;
  std::size_t num_servers_ = 0;

  // Volatile state (cleared by crash()).
  std::vector<double> slice_;      // per server, as granted
  std::uint64_t adopted_epoch_ = 0;
  double granted_at_ = 0.0;        // the assumed t=0 split counts as granted
  double last_coord_seen_ = 0.0;
  bool autonomous_ = false;
  bool stale_ = false;
  bool has_plan_ = false;
  std::vector<DeviceDecision> local_;
  double observed_bw_ = 0.0;
  double solved_bw_ = 0.0;
  std::vector<double> solved_slice_;
  std::vector<bool> solved_alive_;
  double next_report_ = 0.0;
  bool pending_solve_ = false;

  // Stable state + counters. The corr mint counter is stable on purpose:
  // ids survive crashes, so a post-restart report can never reuse a
  // pre-crash correlation id.
  std::vector<LogEntry> log_;
  std::uint64_t corr_counter_ = 0;
  std::uint64_t adoptions_ = 0;
  std::uint64_t local_solves_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t epochs_rejected_ = 0;
  std::uint64_t coordinator_losses_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t stale_transitions_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace scalpel
