#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/message.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace scalpel {

/// Fills a CtrlSpan from a message: corr/epoch/endpoints/type plus the mean
/// payload value as the span's price (a grant's mean phi share, a report's
/// mean demand — the one scalar worth putting on a timeline).
CtrlSpan ctrl_span_of(const CtrlMessage& msg, double time,
                      CtrlSpanEvent event);

/// Impairments on the control-message fabric, mirroring the telemetry
/// channel's contract: all-zero means a perfect fabric (deliver on the next
/// tick, nothing lost, FIFO per link).
struct ControlFabricOptions {
  /// Base propagation delay applied to every message (seconds).
  double delay = 0.0;
  /// Additional uniform [0, jitter) delay per message — jitter larger than
  /// the send cadence reorders messages across sends.
  double jitter = 0.0;
  /// Per-message loss probability.
  double drop_prob = 0.0;

  bool pass_through() const {
    return delay == 0.0 && jitter == 0.0 && drop_prob == 0.0;
  }
};

/// Deterministic lossy/delayed/reordering transport for control messages.
/// Every directed (from, to) link draws from its own Rng substream derived
/// from the construction seed, and every send consumes exactly two draws
/// (drop coin, jitter) whether or not the impairments are enabled — so the
/// in-flight set is a pure function of (options, seed, send sequence) and
/// the sharded engine replays it bit-identically to the single loop.
class ControlFabric {
 public:
  ControlFabric(ControlFabricOptions opts, std::size_t num_endpoints,
                std::uint64_t seed);

  /// Queues `msg` (from/to/type/epoch/payload filled by the caller) at time
  /// `now`. Assigns seq and deliver_at; a dropped message still consumes its
  /// draws and its seq so loss never shifts another link's stream.
  void send(CtrlMessage msg, double now);

  /// Removes and returns every in-flight message with deliver_at <= now,
  /// sorted by (deliver_at, seq). The caller routes them (and drops those
  /// addressed to endpoints that are down — see drop_for_dead()).
  std::vector<CtrlMessage> deliver(double now);

  /// Discards in-flight messages addressed to `endpoint` (called when the
  /// endpoint crashes: its queue dies with it). `now` only stamps the
  /// dead-letter spans.
  void drop_for_dead(int endpoint, double now = 0.0);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  /// In-flight messages discarded because their recipient crashed.
  std::uint64_t dropped_dead() const { return dropped_dead_; }
  std::size_t in_flight() const { return in_flight_.size(); }
  const ControlFabricOptions& options() const { return opts_; }

  /// Attaches a span recorder (nullptr detaches). Recording is purely
  /// observational — no RNG draws, no behavior change — so a traced fabric
  /// replays bit-identically to an untraced one.
  void set_tracer(CtrlTracer* tracer) { tracer_ = tracer; }

 private:
  CtrlTracer* tracer_ = nullptr;
  ControlFabricOptions opts_;
  std::size_t num_endpoints_;
  std::vector<Rng> link_rng_;  // one substream per directed (from, to) link
  std::vector<CtrlMessage> in_flight_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_dead_ = 0;
};

}  // namespace scalpel
