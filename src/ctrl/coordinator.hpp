#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/fabric.hpp"

namespace scalpel {

struct CoordinatorOptions {
  /// Seconds between reallocation rounds (grants go out only when the slice
  /// matrix actually moved).
  double realloc_interval = 1.0;
  /// Seconds between heartbeats to every cell (cells read any coordinator
  /// message as a sign of life; explicit heartbeats cover converged phases
  /// when no grants flow).
  double heartbeat_interval = 1.0;
  /// Damping of the tatonnement: phi' = (1 - alpha) * phi + alpha * target.
  /// With static demand the per-round contraction factor is exactly
  /// (1 - alpha), so max|delta phi| decays geometrically — the convergence
  /// guarantee ConvergesGeometricallyOnStaticWorkload pins down.
  double alpha = 0.5;
  /// Converged when max|delta phi| stays below this across a round.
  double converge_eps = 1e-3;
  /// Slice floor: a cell with no demand keeps this much of each server so
  /// it can re-enter later (a zero slice would lock it out of offloading
  /// forever — its local solver would never see server capacity again).
  /// Folded into the tatonnement target (reserve floor per cell, split the
  /// residual proportionally) so the fixed point respects the floor and the
  /// iteration actually converges instead of limit-cycling on the clamp.
  double min_slice = 0.005;
};

/// The slow global tier of the distributed control plane: aggregates the
/// cells' per-server demand reports and reallocates each server's capacity
/// across cells by damped proportional tatonnement. Epoch-numbered grants
/// make adoption split-brain-safe, and the epoch counter plus the slice
/// matrix live in an append-only state log that survives crashes — a
/// restarted coordinator resumes from its last logged epoch instead of
/// re-issuing epoch numbers it already used.
class GlobalCoordinator {
 public:
  GlobalCoordinator(std::size_t num_cells, std::size_t num_servers,
                    CoordinatorOptions opts);

  /// Ingests a delivered message (kLoadReport; everything else ignored).
  void receive(const CtrlMessage& msg);

  /// Runs reallocation/heartbeat cadences due at `now`, sending grants and
  /// heartbeats through `fabric`.
  void tick(double now, ControlFabric& fabric);

  /// Crash: volatile state (demand reports, cadence anchors) is lost.
  /// The state log is stable storage and survives.
  void crash();
  /// Restart at `now`: replays the state log (epoch + slice matrix).
  void restart(double now);

  std::uint64_t epoch() const { return epoch_; }
  /// Grant-issuing reallocation rounds so far (the convergence metric).
  std::uint64_t realloc_rounds() const { return realloc_rounds_; }
  bool converged() const { return converged_; }
  double last_max_delta() const { return last_max_delta_; }
  const std::vector<std::vector<double>>& slices() const { return phi_; }
  /// Targeted anti-entropy re-grants issued (lagging report echoes).
  std::uint64_t regrants() const { return regrants_; }

  /// Attaches a span recorder (nullptr detaches); purely observational.
  void set_tracer(CtrlTracer* tracer) { tracer_ = tracer; }

 private:
  struct LogEntry {
    std::uint64_t epoch = 0;
    std::vector<std::vector<double>> phi;
  };

  void send_grants(double now, ControlFabric& fabric);

  CoordinatorOptions opts_;
  std::size_t num_cells_;
  std::size_t num_servers_;
  CtrlTracer* tracer_ = nullptr;

  // Volatile state (cleared by crash()).
  std::vector<std::vector<double>> phi_;  // [cell][server] capacity slice
  std::vector<std::vector<double>> demand_;  // last report per cell
  std::vector<bool> has_demand_;
  std::vector<bool> lagging_;  // report echoed an epoch behind: re-grant
  double next_realloc_ = 0.0;
  double next_heartbeat_ = 0.0;
  bool converged_ = false;
  double last_max_delta_ = 0.0;

  // Stable state. The corr mint counter and per-cell grant corrs survive
  // crashes: ids are never reused, and a post-restart anti-entropy re-grant
  // continues the causal chain the pre-crash grant started.
  std::uint64_t epoch_ = 0;
  std::uint64_t realloc_rounds_ = 0;
  std::uint64_t corr_counter_ = 0;
  std::uint64_t regrants_ = 0;
  std::vector<std::uint64_t> grant_corr_;  // last full-grant corr per cell
  std::vector<LogEntry> log_;
};

}  // namespace scalpel
