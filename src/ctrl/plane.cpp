#include "ctrl/plane.hpp"

#include <algorithm>

#include "core/objective.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/assert.hpp"

namespace scalpel {

DistributedControlPlane::DistributedControlPlane(
    const ClusterTopology& topology, DistributedPlaneOptions opts)
    : opts_(std::move(opts)),
      instance_(topology),
      fabric_(opts_.fabric, 1 + topology.cells().size(), opts_.seed),
      coord_(topology.cells().size(), topology.servers().size(),
             opts_.coordinator) {
  const std::size_t num_cells = topology.cells().size();
  cells_.reserve(num_cells);
  for (std::size_t k = 0; k < num_cells; ++k) {
    cells_.emplace_back(instance_, static_cast<CellId>(k), opts_.cell,
                        &audit_);
  }
  endpoint_up_.assign(1 + num_cells, true);
  if (opts_.span_capacity > 0) {
    ctrl_trace_.reset(opts_.span_capacity);
    fabric_.set_tracer(&ctrl_trace_);
    coord_.set_tracer(&ctrl_trace_);
    for (auto& cell : cells_) cell.set_tracer(&ctrl_trace_);
  }
}

void DistributedControlPlane::apply_liveness(double now) {
  for (std::size_t e = 0; e < endpoint_up_.size(); ++e) {
    const bool up =
        opts_.controller_faults.server_up(static_cast<std::int32_t>(e), now);
    if (up == endpoint_up_[e]) continue;
    endpoint_up_[e] = up;
    if (!up) {
      // The endpoint's queue dies with it: in-flight messages addressed to
      // it are gone, and its volatile state is wiped. Its state log is
      // stable storage and survives for the restart.
      fabric_.drop_for_dead(static_cast<int>(e), now);
      if (e == 0) {
        ++coordinator_crashes_;
        coord_.crash();
      } else {
        ++controller_crashes_;
        cells_[e - 1].crash();
      }
    } else {
      if (e == 0) {
        coord_.restart(now);
      } else {
        cells_[e - 1].restart(now);
      }
    }
  }
}

void DistributedControlPlane::route(const CtrlMessage& msg, double now) {
  if (msg.to < 0 || static_cast<std::size_t>(msg.to) >= endpoint_up_.size()) {
    return;
  }
  if (!endpoint_up_[static_cast<std::size_t>(msg.to)]) {
    ++dead_letters_;
    if (ctrl_trace_.enabled()) {
      ctrl_trace_.record(ctrl_span_of(msg, now, CtrlSpanEvent::kDeadLetter));
    }
    return;
  }
  if (msg.to == 0) {
    coord_.receive(msg);
  } else {
    cells_[static_cast<std::size_t>(msg.to) - 1].receive(msg, now);
  }
}

void DistributedControlPlane::merge(const Observation& o) {
  const auto& topo = instance_.topology();
  const std::size_t n = topo.devices().size();
  if (merged_.per_device.size() != n) {
    merged_.per_device.assign(n, DeviceDecision{});
    for (auto& dd : merged_.per_device) dd.plan.device_only = true;
  }
  merged_.scheme = "distributed";
  for (const auto& cell : cells_) {
    if (!cell.has_plan()) continue;
    const auto& members = cell.members();
    const auto& local = cell.local();
    for (std::size_t j = 0; j < members.size(); ++j) {
      merged_.per_device[static_cast<std::size_t>(members[j])] = local[j];
    }
  }
  // Physical-capacity clamp. Cells validate locally against their slice,
  // but a split-brain mix of epochs (cell A on epoch 5's row, partitioned
  // cell B still on epoch 3's) can make per-server sums exceed 1. The
  // actuator squeezes shares proportionally — the same thing GPS weights
  // would do physically — so the merged plan always evaluates cleanly.
  std::vector<double> share(topo.servers().size(), 0.0);
  std::vector<double> grant(topo.cells().size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& dd = merged_.per_device[i];
    if (dd.plan.device_only) continue;
    share[static_cast<std::size_t>(dd.server)] += dd.compute_share;
    grant[static_cast<std::size_t>(
        topo.device(static_cast<DeviceId>(i)).cell)] += dd.bandwidth;
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto& dd = merged_.per_device[i];
    if (dd.plan.device_only) continue;
    const double s = share[static_cast<std::size_t>(dd.server)];
    if (s > 1.0) dd.compute_share /= s;
    const auto cell = static_cast<std::size_t>(
        topo.device(static_cast<DeviceId>(i)).cell);
    const double cap = cell < o.cell_bandwidth.size()
                           ? o.cell_bandwidth[cell]
                           : topo.cell(static_cast<CellId>(cell)).bandwidth;
    if (grant[cell] > cap) dd.bandwidth *= cap / grant[cell];
  }
  evaluate_decision(instance_, merged_);
  merged_valid_ = true;
}

ControlAction DistributedControlPlane::tick(const Observation& o) {
  const double now = o.time;
  ++ticks_;
  audit_.advance_time(now);
  SCALPEL_REQUIRE(o.cell_bandwidth.size() == cells_.size(),
                  "observation must cover every cell");

  apply_liveness(now);
  for (const CtrlMessage& msg : fabric_.deliver(now)) route(msg, now);
  if (endpoint_up_[0]) coord_.tick(now, fabric_);

  // The believed uplinks feed the cells' sub-problems and the merged
  // evaluation alike (the same conditions-adoption the centralized
  // controller performs).
  auto& mutable_topo = instance_.mutable_topology();
  for (std::size_t c = 0; c < o.cell_bandwidth.size(); ++c) {
    SCALPEL_REQUIRE(o.cell_bandwidth[c] > 0.0,
                    "observed bandwidth must be positive");
    mutable_topo.set_cell_bandwidth(static_cast<CellId>(c),
                                    o.cell_bandwidth[c]);
  }

  bool changed = false;
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    if (!endpoint_up_[1 + k]) continue;
    changed |= cells_[k].tick(now, o.cell_bandwidth[k], o.server_alive,
                              fabric_);
  }

  ControlAction action;
  if (changed || !merged_valid_) {
    merge(o);
    ++plan_changes_;
    action.decision = merged_;
  }
  return action;
}

Simulator::ObservingController DistributedControlPlane::callback() {
  return [this](const Observation& o) { return tick(o); };
}

bool DistributedControlPlane::converged() const {
  if (!coord_.converged()) return false;
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    if (!endpoint_up_[1 + k]) continue;
    if (cells_[k].adopted_epoch() != coord_.epoch()) return false;
  }
  return true;
}

std::uint64_t DistributedControlPlane::coordinator_losses() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.coordinator_losses();
  return total;
}

std::uint64_t DistributedControlPlane::rejoins() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.rejoins();
  return total;
}

std::uint64_t DistributedControlPlane::stale_events() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.stale_transitions();
  return total;
}

std::uint64_t DistributedControlPlane::epochs_rejected() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.epochs_rejected();
  return total;
}

std::uint64_t DistributedControlPlane::local_solves() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.local_solves();
  return total;
}

std::uint64_t DistributedControlPlane::cell_fallbacks() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.fallbacks();
  return total;
}

void DistributedControlPlane::publish_metrics(MetricsRegistry& registry)
    const {
  registry.counter("ctrl.msg.sent").inc(fabric_.sent());
  registry.counter("ctrl.msg.delivered").inc(fabric_.delivered());
  registry.counter("ctrl.msg.dropped").inc(fabric_.dropped());
  registry.counter("ctrl.msg.dropped_dead").inc(fabric_.dropped_dead());
  registry.counter("ctrl.dead_letters").inc(dead_letters_);
  registry.counter("ctrl.epochs_minted").inc(coord_.epoch());
  registry.counter("ctrl.realloc_rounds").inc(coord_.realloc_rounds());
  registry.counter("ctrl.regrants").inc(coord_.regrants());
  std::uint64_t adoptions = 0;
  for (const auto& c : cells_) adoptions += c.adoptions();
  registry.counter("ctrl.adoptions").inc(adoptions);
  registry.counter("ctrl.epochs_rejected").inc(epochs_rejected());
  registry.counter("ctrl.stale_events").inc(stale_events());
  registry.counter("ctrl.coordinator_losses").inc(coordinator_losses());
  registry.counter("ctrl.rejoins").inc(rejoins());
  registry.counter("ctrl.local_solves").inc(local_solves());
  registry.counter("ctrl.cell_fallbacks").inc(cell_fallbacks());
  registry.counter("ctrl.coordinator_crashes").inc(coordinator_crashes_);
  registry.counter("ctrl.controller_crashes").inc(controller_crashes_);
  registry.counter("ctrl.plan_changes").inc(plan_changes_);
  registry.counter("ctrl.ticks").inc(ticks_);
  registry.counter("ctrl.spans.recorded").inc(ctrl_trace_.recorded());
  registry.counter("ctrl.spans.dropped").inc(ctrl_trace_.dropped());
  registry.gauge("ctrl.in_flight")
      .set(static_cast<double>(fabric_.in_flight()));
  registry.gauge("ctrl.converged").set(converged() ? 1.0 : 0.0);
}

void DistributedControlPlane::register_sources(TimeSeriesRecorder& recorder) {
  recorder.register_gauge("ctrl.epoch", [this] {
    return static_cast<double>(coord_.epoch());
  });
  recorder.register_counter("ctrl.dead_letters", [this] {
    return static_cast<double>(dead_letters_);
  });
  recorder.register_counter("ctrl.msg.dropped", [this] {
    return static_cast<double>(fabric_.dropped());
  });
  recorder.register_counter("ctrl.regrants", [this] {
    return static_cast<double>(coord_.regrants());
  });
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    const std::string base = "ctrl.cell" + std::to_string(k);
    const CellController* cell = &cells_[k];
    recorder.register_gauge(base + ".slice",
                            [cell] { return cell->slice_mean(); });
    recorder.register_gauge(base + ".price",
                            [cell] { return cell->effective_price(); });
  }
}

}  // namespace scalpel
